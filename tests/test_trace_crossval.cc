/**
 * @file
 * Synthetic-vs-captured cross-validation battery — the frontend
 * equivalence proof behind the real-trace subsystem.
 *
 * SyntheticTrace never consults the cache hierarchy, so capturing a
 * workload's reference stream and replaying it through the LAPTR1
 * path must be *bit-identical* to the live run: same end-of-run
 * metrics JSON, same epoch-stream serialization, reference for
 * reference. This battery holds that equivalence
 *
 *  - per region kind (mixes and duplicate-benchmark workloads
 *    spanning the generator's behaviours),
 *  - across all seven inclusion-policy configurations, where the
 *    policy *ranking* (by EPI and by throughput) must also agree
 *    between frontends,
 *  - between the two store backends (an mmap'd file and the
 *    in-memory "stressor:" synthesis), and
 *  - under the campaign engine, including mid-job checkpoint/resume
 *    over trace workloads.
 *
 * A divergence anywhere here means the replay frontend is not a
 * faithful peer of the generators — the one property that makes
 * trace-based results comparable with every synthetic result in the
 * repo.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <string>
#include <unistd.h>
#include <vector>

#include "campaign/engine.hh"
#include "campaign/spec.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "stats/stats_engine.hh"
#include "trace/format.hh"
#include "trace/resolve.hh"
#include "trace/stressors.hh"
#include "workloads/capture.hh"
#include "workloads/mixes.hh"

namespace lap
{
namespace
{

struct PolicyCase
{
    const char *slug;
    PolicyKind policy;
    PlacementKind placement;
    bool hybrid;
};

/** The full policy matrix (mirrors the golden/differential suites). */
const PolicyCase kPolicies[] = {
    {"inclusive", PolicyKind::Inclusive, PlacementKind::Default,
     false},
    {"noni", PolicyKind::NonInclusive, PlacementKind::Default, false},
    {"ex", PolicyKind::Exclusive, PlacementKind::Default, false},
    {"flex", PolicyKind::Flexclusion, PlacementKind::Default, false},
    {"dswitch", PolicyKind::Dswitch, PlacementKind::Default, false},
    {"lap", PolicyKind::Lap, PlacementKind::Default, false},
    {"lhybrid", PolicyKind::Lap, PlacementKind::Lhybrid, true},
};

SimConfig
smallConfig()
{
    SimConfig cfg;
    cfg.numCores = 2;
    cfg.l1Size = 4 * 1024;
    cfg.l2Size = 32 * 1024;
    cfg.llcSize = 256 * 1024;
    cfg.warmupRefs = 3'000;
    cfg.measureRefs = 12'000;
    cfg.epochStatsInterval = 2'000;
    return cfg;
}

void
applyPolicy(SimConfig &cfg, const PolicyCase &c)
{
    cfg.policy = c.policy;
    cfg.placement = c.placement;
    cfg.hybridLlc = c.hybrid;
}

std::string
uniquePath(const std::string &tag)
{
    return "/tmp/lapsim_crossval_" + tag + "_"
        + std::to_string(::getpid());
}

/** A Table III / MIXn mix cut down to the 2-core test machine. */
MixSpec
twoCoreMix(MixSpec mix)
{
    mix.benchmarks.resize(2);
    return mix;
}

/**
 * The full observable surface of a finished run: every metric field
 * (bit-exact doubles included — JSON formatting is deterministic)
 * plus the complete serialized epoch stream.
 */
std::string
summarize(Simulator &sim, const Metrics &m)
{
    std::string out = metricsToJson(m);
    out += '\n';
    if (const StatsEngine *engine = sim.statsEngine()) {
        if (const EpochSampler *sampler = engine->sampler()) {
            for (const EpochRecord &record : sampler->records()) {
                out += epochToJson(record);
                out += '\n';
            }
        }
    }
    return out;
}

struct RunSummary
{
    std::string text;
    double epi = 0.0;
    double throughput = 0.0;
};

RunSummary
runLive(const SimConfig &cfg, const std::vector<WorkloadSpec> &specs)
{
    Simulator sim(cfg);
    const Metrics m = sim.run(specs);
    return {summarize(sim, m), m.epi, m.throughput};
}

RunSummary
runReplay(SimConfig cfg, const std::string &trace_spec)
{
    cfg.tracePath = trace_spec;
    Simulator sim(cfg);
    const Metrics m = sim.runTrace();
    return {summarize(sim, m), m.epi, m.throughput};
}

/** Captures @p specs exactly as the live run consumes them and
 *  writes the LAPTR1 file; returns its path. */
std::string
captureToFile(const SimConfig &cfg,
              const std::vector<WorkloadSpec> &specs,
              const std::string &tag)
{
    const TraceData data = captureMultiProgrammed(
        specs, cfg.seedSalt, cfg.warmupRefs + cfg.measureRefs);
    const std::string path = uniquePath(tag) + ".laptr";
    writeTraceFile(path, data);
    return path;
}

/** The captured stream must equal the live generator's, reference
 *  for reference — capture is enumeration, not approximation. */
TEST(TraceCrossval, CapturedStreamEqualsLiveGenerator)
{
    const auto specs = resolveMix(twoCoreMix(tableThreeMixes()[0]));
    const std::uint64_t salt = 42;
    const TraceData data = captureMultiProgrammed(specs, salt, 500);

    auto fresh = buildMultiProgrammed(specs, salt);
    ASSERT_EQ(data.coreCount(), fresh.size());
    for (std::uint32_t c = 0; c < data.coreCount(); ++c) {
        ASSERT_EQ(data.cores[c].size(), 500u);
        EXPECT_DOUBLE_EQ(data.coreMlp[c], specs[c].mlp);
        for (std::uint64_t i = 0; i < 500; ++i) {
            const MemRef want = fresh[c]->next();
            const MemRef got = toMemRef(data.cores[c][i]);
            ASSERT_EQ(got.addr, want.addr) << c << ":" << i;
            ASSERT_EQ(got.type, want.type) << c << ":" << i;
            ASSERT_EQ(got.gapInstrs, want.gapInstrs) << c << ":" << i;
            ASSERT_EQ(got.site, want.site) << c << ":" << i;
        }
    }
}

class CrossvalPolicies : public ::testing::TestWithParam<PolicyCase>
{
};

/** Per policy: replaying a workload's own captured trace must be
 *  bit-identical to the live run in metrics and epoch stream. */
TEST_P(CrossvalPolicies, ReplayIsBitIdenticalToLive)
{
    const PolicyCase &c = GetParam();
    SimConfig cfg = smallConfig();
    applyPolicy(cfg, c);
    const auto specs =
        resolveMix(twoCoreMix(tableThreeMixes()[5])); // WH1
    const std::string path = captureToFile(cfg, specs, c.slug);

    const RunSummary live = runLive(cfg, specs);
    const RunSummary replay = runReplay(cfg, path);
    std::remove(path.c_str());

    EXPECT_EQ(live.text, replay.text)
        << c.slug << ": trace replay diverged from the live run";
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, CrossvalPolicies, ::testing::ValuesIn(kPolicies),
    [](const ::testing::TestParamInfo<PolicyCase> &info) {
        return std::string(info.param.slug);
    });

/** The policy ranking a trace-based study reports must match the
 *  synthetic study's: same EPI order, same throughput order. */
TEST(TraceCrossval, PolicyRankingMatchesBetweenFrontends)
{
    SimConfig base = smallConfig();
    const auto specs =
        resolveMix(twoCoreMix(tableThreeMixes()[5])); // WH1
    // One capture serves all policies: the stream is
    // policy-independent, which is exactly what makes cross-policy
    // ratios controlled.
    const std::string path = captureToFile(base, specs, "ranking");

    std::vector<double> live_epi, replay_epi;
    std::vector<double> live_ipc, replay_ipc;
    for (const PolicyCase &c : kPolicies) {
        SimConfig cfg = base;
        applyPolicy(cfg, c);
        const RunSummary live = runLive(cfg, specs);
        const RunSummary replay = runReplay(cfg, path);
        live_epi.push_back(live.epi);
        replay_epi.push_back(replay.epi);
        live_ipc.push_back(live.throughput);
        replay_ipc.push_back(replay.throughput);
    }
    std::remove(path.c_str());

    auto ranking = [](const std::vector<double> &values) {
        std::vector<std::size_t> order(values.size());
        std::iota(order.begin(), order.end(), 0);
        std::stable_sort(order.begin(), order.end(),
                         [&values](std::size_t a, std::size_t b) {
                             return values[a] < values[b];
                         });
        return order;
    };
    EXPECT_EQ(ranking(live_epi), ranking(replay_epi))
        << "EPI policy ranking diverged between frontends";
    EXPECT_EQ(ranking(live_ipc), ranking(replay_ipc))
        << "throughput policy ranking diverged between frontends";
}

/** Region-kind coverage: every generator behaviour a mix can contain
 *  (streaming, pointer-chasing, loop-dominant, mixed) replays
 *  bit-identically under the LAP policy. */
TEST(TraceCrossval, RegionKindsReplayBitIdentically)
{
    SimConfig cfg = smallConfig();
    cfg.policy = PolicyKind::Lap;
    cfg.warmupRefs = 2'000;
    cfg.measureRefs = 8'000;

    std::vector<std::pair<std::string, std::vector<WorkloadSpec>>>
        workloads;
    workloads.emplace_back(
        "WL1", resolveMix(twoCoreMix(tableThreeMixes()[0])));
    workloads.emplace_back(
        "WH1", resolveMix(twoCoreMix(tableThreeMixes()[5])));
    workloads.emplace_back("MIX1",
                           resolveMix(randomMixes(1, 2)[0]));
    for (const char *bench :
         {"mcf", "omnetpp", "libquantum", "astar"}) {
        workloads.emplace_back(
            bench, resolveMix(duplicateMix(bench, 2)));
    }

    for (const auto &[tag, specs] : workloads) {
        const std::string path = captureToFile(cfg, specs, tag);
        const RunSummary live = runLive(cfg, specs);
        const RunSummary replay = runReplay(cfg, path);
        std::remove(path.c_str());
        EXPECT_EQ(live.text, replay.text)
            << tag << ": trace replay diverged from the live run";
    }
}

/** The two store backends are interchangeable: a "stressor:" spec
 *  (in-memory synthesis) and a LAPTR1 file of the same generator
 *  output produce identical runs. */
TEST(TraceCrossval, FileAndStressorSpecsAreEquivalent)
{
    SimConfig cfg = smallConfig();
    cfg.policy = PolicyKind::Lap;
    cfg.seedSalt = 9;

    for (const std::string &name : stressorNames()) {
        const TraceData data = buildStressorTrace(
            name, cfg.numCores, cfg.warmupRefs + cfg.measureRefs,
            cfg.seedSalt);
        const std::string path = uniquePath(name) + ".laptr";
        writeTraceFile(path, data);
        const RunSummary from_file = runReplay(cfg, path);
        const RunSummary from_spec =
            runReplay(cfg, "stressor:" + name);
        std::remove(path.c_str());
        EXPECT_EQ(from_file.text, from_spec.text)
            << name << ": file and in-memory replay diverged";
    }
}

/** Wrapping is well-defined: a trace shorter than the run replays
 *  its stream cyclically and still completes deterministically. */
TEST(TraceCrossval, ShortTraceWrapsDeterministically)
{
    SimConfig cfg = smallConfig();
    const TraceData data = buildStressorTrace(
        "mixed_hot_scan", cfg.numCores, 4'000, 1);
    const std::string path = uniquePath("wrap") + ".laptr";
    writeTraceFile(path, data);
    const RunSummary a = runReplay(cfg, path);
    const RunSummary b = runReplay(cfg, path);
    std::remove(path.c_str());
    EXPECT_EQ(a.text, b.text);
}

/** All five stressors run as campaign workloads with mid-job
 *  checkpointing on, and a resumed campaign skips them as done. */
TEST(TraceCrossval, StressorCampaignWithMidJobRestore)
{
    CampaignSpec spec;
    spec.name = "crossval";
    spec.base = smallConfig();
    spec.base.warmupRefs = 1'000;
    spec.base.measureRefs = 4'000;
    spec.policies = {PolicyKind::NonInclusive, PolicyKind::Lap};
    for (const std::string &name : stressorNames())
        spec.workloads.push_back(
            CampaignWorkload::trace("stressor:" + name));

    const std::string out = uniquePath("campaign") + ".jsonl";
    std::remove(out.c_str());
    EngineOptions options;
    options.jobs = 2;
    options.outPath = out;
    options.midJobRestore = true;
    options.checkpointEvery = 3'000;

    const CampaignResult first = runCampaign(spec, options);
    EXPECT_EQ(first.jobs.size(), 10u);
    EXPECT_EQ(first.countWithStatus(JobStatus::Ok), 10u);

    // Resume against the completed log: everything is done already.
    const CampaignResult second = runCampaign(spec, options);
    EXPECT_EQ(second.countWithStatus(JobStatus::Skipped), 10u);
    std::remove(out.c_str());
}

/** A trace whose stream count disagrees with the run's core count is
 *  refused up front with a geometry diagnostic. */
TEST(TraceCrossval, CoreCountMismatchIsRejected)
{
    SimConfig cfg = smallConfig();
    const TraceData data = buildStressorTrace("gups", 4, 200, 0);
    const std::string path = uniquePath("geom") + ".laptr";
    writeTraceFile(path, data);
    cfg.tracePath = path;
    try {
        const ScopedFatalThrow guard;
        Simulator sim(cfg);
        sim.runTrace();
        FAIL() << "core-count mismatch accepted";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what())
                      .find("holds 4 per-core streams"),
                  std::string::npos)
            << err.what();
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace lap
