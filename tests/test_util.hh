/**
 * @file
 * Shared helpers for the test suite: tiny hierarchies whose flows
 * can be reasoned about block-by-block, and a scripted trace source.
 */

#ifndef LAPSIM_TESTS_TEST_UTIL_HH
#define LAPSIM_TESTS_TEST_UTIL_HH

#include <memory>
#include <vector>

#include "core/policy_factory.hh"
#include "cpu/trace.hh"
#include "hierarchy/hierarchy.hh"
#include "sim/auditor.hh"

namespace lap::test
{

/**
 * A small hierarchy: 2 cores, 512B 2-way L1, 2KB 4-way L2, 8KB
 * 4-way LLC (2 banks). Small enough that eviction behaviour is easy
 * to force, large enough to be a real three-level hierarchy.
 */
inline HierarchyParams
tinyParams(std::uint32_t cores = 2)
{
    HierarchyParams hp;
    hp.numCores = cores;
    hp.l1.name = "l1";
    hp.l1.sizeBytes = 512;
    hp.l1.assoc = 2;
    hp.l1.readLatency = 2;
    hp.l1.writeLatency = 2;

    hp.l2.name = "l2";
    hp.l2.sizeBytes = 2048;
    hp.l2.assoc = 4;
    hp.l2.readLatency = 4;
    hp.l2.writeLatency = 4;

    hp.llc.name = "llc";
    hp.llc.sizeBytes = 8192;
    hp.llc.assoc = 4;
    hp.llc.banks = 2;
    hp.llc.dataTech = MemTech::STTRAM;
    hp.llc.readLatency = 8;
    hp.llc.writeLatency = 33;
    return hp;
}

/** tinyParams with a hybrid LLC: 1 SRAM way + 3 STT ways per set. */
inline HierarchyParams
tinyHybridParams(std::uint32_t cores = 2)
{
    HierarchyParams hp = tinyParams(cores);
    hp.llc.sramWays = 1;
    hp.llc.readLatency = 8;
    hp.llc.writeLatency = 8;
    hp.llc.sttWriteLatency = 33;
    return hp;
}

/**
 * A hierarchy with a fail-fast HierarchyAuditor riding along, so
 * every existing hierarchy test doubles as an invariant test.
 * Behaves like the std::unique_ptr<CacheHierarchy> it replaced.
 */
struct TestHierarchy
{
    std::unique_ptr<CacheHierarchy> hierarchy;
    std::unique_ptr<HierarchyAuditor> auditor;

    CacheHierarchy &operator*() { return *hierarchy; }
    const CacheHierarchy &operator*() const { return *hierarchy; }
    CacheHierarchy *operator->() { return hierarchy.get(); }
    const CacheHierarchy *operator->() const { return hierarchy.get(); }
    CacheHierarchy *get() { return hierarchy.get(); }

    /** Detaches the auditor (for tests that corrupt state on purpose). */
    void dropAuditor() { auditor.reset(); }
};

/** Builds a tiny hierarchy with the given policy, under audit. */
inline TestHierarchy
tinyHierarchy(PolicyKind kind, HierarchyParams hp = tinyParams(),
              std::unique_ptr<PlacementPolicy> placement = nullptr)
{
    PolicyTuning tuning;
    tuning.epochCycles = 10'000;
    tuning.leaderPeriod = 2; // tiny caches: every set is a leader
    const std::uint64_t sets = hp.llc.sizeBytes
        / (static_cast<std::uint64_t>(hp.llc.assoc) * hp.llc.blockBytes);
    TestHierarchy th;
    th.hierarchy = std::make_unique<CacheHierarchy>(
        hp, makeInclusionPolicy(kind, sets, tuning),
        std::move(placement));
    AuditorConfig ac;
    ac.mode = AuditMode::FailFast;
#ifdef NDEBUG
    ac.interval = 8;
#else
    ac.interval = 1;
#endif
    th.auditor =
        std::make_unique<HierarchyAuditor>(*th.hierarchy, kind, ac);
    return th;
}

/** Block-granular address helper: block index -> byte address. */
inline Addr
blockAddr(std::uint64_t block_index)
{
    return block_index * 64;
}

/** Issues a demand read of block @p index on @p core. */
inline CacheHierarchy::AccessResult
readBlock(CacheHierarchy &h, CoreId core, std::uint64_t index,
          Cycle now = 0)
{
    return h.access(core, blockAddr(index), AccessType::Read, now);
}

/** Issues a demand write of block @p index on @p core. */
inline CacheHierarchy::AccessResult
writeBlock(CacheHierarchy &h, CoreId core, std::uint64_t index,
           Cycle now = 0)
{
    return h.access(core, blockAddr(index), AccessType::Write, now);
}

/**
 * Touches enough distinct blocks mapping to the same L1/L2 sets to
 * force @p index out of both private levels of @p core, without
 * touching the LLC set of @p index more than necessary. With the
 * tiny geometry every level is small, so simply reading a window of
 * other blocks congruent modulo the L2 set count works.
 */
inline void
evictFromPrivate(CacheHierarchy &h, CoreId core, std::uint64_t index,
                 std::uint64_t scratch_base = 1000)
{
    const std::uint64_t l2_sets = h.l2(core).numSets();
    const std::uint32_t ways =
        h.l2(core).assoc() + h.l1(core).assoc() + 1;
    for (std::uint32_t i = 1; i <= ways; ++i) {
        // Congruent to `index` mod the L2 (and L1) set count, far
        // away in the address space.
        const std::uint64_t other = index + (scratch_base + i) * l2_sets;
        readBlock(h, core, other);
    }
}

/** Scripted trace source for driver tests. */
class ScriptTrace : public TraceSource
{
  public:
    explicit ScriptTrace(std::vector<MemRef> refs)
        : refs_(std::move(refs))
    {
    }

    MemRef
    next() override
    {
        MemRef ref = refs_[cursor_ % refs_.size()];
        cursor_++;
        return ref;
    }

    void reset() override { cursor_ = 0; }

  private:
    std::vector<MemRef> refs_;
    std::size_t cursor_ = 0;
};

} // namespace lap::test

#endif // LAPSIM_TESTS_TEST_UTIL_HH
