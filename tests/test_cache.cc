/**
 * @file
 * Unit tests for the Cache mechanism: geometry, lookups, insertion
 * and eviction, loop-aware victim priority, hybrid way partitions,
 * energy counters, and bank timing.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/inspector.hh"

namespace lap
{
namespace
{

CacheParams
smallParams()
{
    CacheParams p;
    p.name = "t";
    p.sizeBytes = 4096; // 16 sets x 4 ways x 64B
    p.assoc = 4;
    p.dataTech = MemTech::STTRAM;
    return p;
}

CacheParams
hybridParams()
{
    CacheParams p = smallParams();
    p.sramWays = 1;
    return p;
}

/** Block addresses mapping to set 0 of the small cache. */
Addr
set0Block(std::uint64_t i)
{
    return i * 16; // 16 sets
}

TEST(Cache, Geometry)
{
    Cache c(smallParams());
    EXPECT_EQ(c.numSets(), 16u);
    EXPECT_EQ(c.assoc(), 4u);
    EXPECT_EQ(c.blockAddrOf(0x1000), 0x40u);
    EXPECT_EQ(c.setIndexOf(0x40), 0u);
    EXPECT_EQ(c.setIndexOf(0x41), 1u);
    EXPECT_FALSE(c.isHybrid());
}

TEST(Cache, RejectsBadGeometry)
{
    CacheParams p = smallParams();
    p.blockBytes = 48;
    EXPECT_DEATH(Cache{p}, "");
    p = smallParams();
    p.sramWays = 8; // > assoc
    EXPECT_DEATH(Cache{p}, "");
}

TEST(Cache, MissThenHit)
{
    Cache c(smallParams());
    EXPECT_FALSE(c.access(5, AccessType::Read));
    EXPECT_EQ(c.stats().readMisses, 1u);

    c.insert(5, {});
    BlockView blk = c.access(5, AccessType::Read);
    ASSERT_TRUE(blk);
    EXPECT_EQ(blk.blockAddr(), 5u);
    EXPECT_EQ(c.stats().readHits, 1u);
    EXPECT_EQ(c.stats().dataReads[1], 1u); // STT region
}

TEST(Cache, WriteHitSetsDirtyAndClearsLoopBit)
{
    Cache c(smallParams());
    Cache::InsertAttrs attrs;
    attrs.loopBit = true;
    c.insert(5, attrs);
    BlockView blk = c.access(5, AccessType::Write);
    ASSERT_TRUE(blk);
    EXPECT_TRUE(blk.dirty());
    EXPECT_FALSE(blk.loopBit()); // Fig 10(a)
    EXPECT_EQ(c.stats().writeHits, 1u);
    EXPECT_EQ(c.stats().dataWrites[1], 2u); // insert + write
}

TEST(Cache, ProbeHasNoSideEffects)
{
    Cache c(smallParams());
    c.insert(5, {});
    const auto stats_before = c.stats().tagAccesses;
    EXPECT_TRUE(c.probe(5));
    EXPECT_FALSE(c.probe(6));
    EXPECT_EQ(c.stats().tagAccesses, stats_before);
}

TEST(Cache, InsertEvictsLruWhenFull)
{
    Cache c(smallParams());
    for (std::uint64_t i = 0; i < 4; ++i)
        c.insert(set0Block(i), {});
    // Touch block 0 so block 1 is LRU.
    c.access(set0Block(0), AccessType::Read);

    auto result = c.insert(set0Block(9), {});
    EXPECT_TRUE(result.eviction.valid);
    EXPECT_EQ(result.eviction.blockAddr, set0Block(1));
    EXPECT_EQ(c.stats().evictionsClean, 1u);
}

TEST(Cache, EvictionCarriesBlockState)
{
    Cache c(smallParams());
    Cache::InsertAttrs attrs;
    attrs.dirty = true;
    attrs.loopBit = true;
    attrs.version = 77;
    attrs.fillState = FillState::FillUntouched;
    c.insert(set0Block(0), attrs);
    for (std::uint64_t i = 1; i < 4; ++i)
        c.insert(set0Block(i), {});

    auto result = c.insert(set0Block(4), {});
    ASSERT_TRUE(result.eviction.valid);
    EXPECT_TRUE(result.eviction.dirty);
    EXPECT_TRUE(result.eviction.loopBit);
    EXPECT_EQ(result.eviction.version, 77u);
    EXPECT_EQ(result.eviction.fillState, FillState::FillUntouched);
    EXPECT_EQ(c.stats().evictionsDirty, 1u);
}

TEST(Cache, InsertOfPresentBlockDies)
{
    Cache c(smallParams());
    c.insert(5, {});
    EXPECT_DEATH(c.insert(5, {}), "already-present");
}

TEST(Cache, LoopAwareVictimPriority)
{
    // Fig 9 priority: invalid, then LRU non-loop, then LRU loop.
    Cache c(smallParams());
    Cache::InsertAttrs loop;
    loop.loopBit = true;
    c.insert(set0Block(0), loop); // LRU, but a loop-block
    c.insert(set0Block(1), {});   // non-loop
    c.insert(set0Block(2), loop);
    c.insert(set0Block(3), {}); // MRU non-loop

    Cache::InsertAttrs incoming;
    incoming.loopAwareVictim = true;
    auto result = c.insert(set0Block(7), incoming);
    ASSERT_TRUE(result.eviction.valid);
    // LRU non-loop block is way 1, even though way 0 is older.
    EXPECT_EQ(result.eviction.blockAddr, set0Block(1));
}

TEST(Cache, LoopAwareFallsBackToLoopBlocks)
{
    Cache c(smallParams());
    Cache::InsertAttrs loop;
    loop.loopBit = true;
    for (std::uint64_t i = 0; i < 4; ++i)
        c.insert(set0Block(i), loop);
    Cache::InsertAttrs incoming;
    incoming.loopAwareVictim = true;
    auto result = c.insert(set0Block(9), incoming);
    ASSERT_TRUE(result.eviction.valid);
    EXPECT_EQ(result.eviction.blockAddr, set0Block(0)); // LRU loop
}

TEST(Cache, InvalidWayPreferredOverVictim)
{
    Cache c(smallParams());
    c.insert(set0Block(0), {});
    auto result = c.insert(set0Block(1), {});
    EXPECT_FALSE(result.eviction.valid);
    EXPECT_EQ(c.stats().fills, 2u);
}

TEST(Cache, WriteBlockSemantics)
{
    Cache c(smallParams());
    Cache::InsertAttrs attrs;
    attrs.loopBit = true;
    c.insert(5, attrs);
    BlockView blk = c.probe(5);
    c.writeBlock(blk, 42);
    EXPECT_TRUE(blk.dirty());
    EXPECT_EQ(blk.version(), 42u);
    EXPECT_FALSE(blk.loopBit());
    EXPECT_EQ(c.stats().dataWrites[1], 2u);

    blk.setLoopBit(true);
    c.writeBlock(blk, 43, /*keep_loop_bit=*/true);
    EXPECT_TRUE(blk.loopBit());
}

TEST(Cache, InvalidateBlock)
{
    Cache c(smallParams());
    c.insert(5, {});
    c.invalidateBlock(c.probe(5));
    EXPECT_FALSE(c.probe(5));
    EXPECT_EQ(c.stats().invalidations, 1u);
}

TEST(Cache, HybridRegions)
{
    Cache c(hybridParams());
    EXPECT_TRUE(c.isHybrid());
    EXPECT_EQ(c.wayTech(0), MemTech::SRAM);
    EXPECT_EQ(c.wayTech(1), MemTech::STTRAM);
    EXPECT_EQ(c.regionBytes(MemTech::SRAM), 1024u);
    EXPECT_EQ(c.regionBytes(MemTech::STTRAM), 3072u);
}

TEST(Cache, UniformRegionBytes)
{
    Cache c(smallParams());
    EXPECT_EQ(c.regionBytes(MemTech::STTRAM), 4096u);
    EXPECT_EQ(c.regionBytes(MemTech::SRAM), 0u);
}

TEST(Cache, HybridInsertRangeTargetsRegion)
{
    Cache c(hybridParams());
    auto result = c.insert(set0Block(0), {}, 0, 1); // SRAM way only
    EXPECT_EQ(result.region, MemTech::SRAM);
    EXPECT_EQ(c.stats().dataWrites[0], 1u);
    EXPECT_EQ(c.stats().dataWrites[1], 0u);

    result = c.insert(set0Block(1), {}, 1, Cache::kAllWays);
    EXPECT_EQ(result.region, MemTech::STTRAM);
    EXPECT_EQ(c.stats().dataWrites[1], 1u);
}

TEST(Cache, HybridRegionEvictionWithinRange)
{
    Cache c(hybridParams());
    c.insert(set0Block(0), {}, 0, 1);
    auto result = c.insert(set0Block(1), {}, 0, 1);
    ASSERT_TRUE(result.eviction.valid);
    EXPECT_EQ(result.eviction.blockAddr, set0Block(0));
    EXPECT_EQ(result.eviction.region, MemTech::SRAM);
}

TEST(Cache, MruLoopWay)
{
    Cache c(smallParams());
    Cache::InsertAttrs loop;
    loop.loopBit = true;
    c.insert(set0Block(0), loop);
    c.insert(set0Block(1), {});
    c.insert(set0Block(2), loop); // most recent loop-block
    EXPECT_EQ(c.mruLoopWay(0, 0, 4), 2u);
    EXPECT_EQ(c.mruLoopWay(1, 0, 4), Cache::kAllWays);
}

TEST(Cache, HasInvalidWay)
{
    Cache c(smallParams());
    EXPECT_TRUE(c.hasInvalidWay(0, 0, 4));
    for (std::uint64_t i = 0; i < 4; ++i)
        c.insert(set0Block(i), {});
    EXPECT_FALSE(c.hasInvalidWay(0, 0, 4));
}

TEST(Cache, BankReservationSerializes)
{
    CacheParams p = smallParams();
    p.banks = 2;
    Cache c(p);
    // Set 0 -> bank 0; set 1 -> bank 1.
    EXPECT_EQ(c.bankOf(0), 0u);
    EXPECT_EQ(c.bankOf(1), 1u);

    EXPECT_EQ(c.reserveBank(0, 100, 33), 100u);
    EXPECT_EQ(c.reserveBank(0, 100, 33), 133u); // queued behind
    EXPECT_EQ(c.reserveBank(1, 100, 33), 100u); // other bank free
    EXPECT_EQ(c.reserveBank(0, 200, 8), 200u);  // after busy window
}

TEST(Cache, WriteOccupancyPerRegion)
{
    CacheParams p = hybridParams();
    p.writeLatency = 8;
    p.sttWriteLatency = 33;
    Cache c(p);
    EXPECT_EQ(c.writeOccupancy(MemTech::SRAM), 8u);
    EXPECT_EQ(c.writeOccupancy(MemTech::STTRAM), 33u);

    CacheParams stt = smallParams();
    stt.writeLatency = 33;
    Cache u(stt);
    EXPECT_EQ(u.writeOccupancy(MemTech::STTRAM), 33u);
}

TEST(Cache, EnergyCountersSplit)
{
    Cache c(hybridParams());
    c.insert(set0Block(0), {}, 0, 1);                // SRAM write
    c.insert(set0Block(1), {}, 1, Cache::kAllWays);  // STT write
    c.access(set0Block(0), AccessType::Read);        // SRAM read
    c.access(set0Block(1), AccessType::Read);        // STT read

    const auto sram = c.stats().energyCounters(MemTech::SRAM);
    const auto stt = c.stats().energyCounters(MemTech::STTRAM);
    EXPECT_EQ(sram.dataReads, 1u);
    EXPECT_EQ(sram.dataWrites, 1u);
    EXPECT_EQ(stt.dataReads, 1u);
    EXPECT_EQ(stt.dataWrites, 1u);
    EXPECT_EQ(sram.tagAccesses, 2u);
    EXPECT_EQ(stt.tagAccesses, 0u); // tags counted once, SRAM side
}

TEST(Cache, ResetStatsKeepsContents)
{
    Cache c(smallParams());
    c.insert(5, {});
    c.resetStats();
    EXPECT_EQ(c.stats().fills, 0u);
    EXPECT_TRUE(c.probe(5));
}

TEST(Cache, InspectorVisitsValidOnly)
{
    Cache c(smallParams());
    c.insert(1, {});
    c.insert(2, {});
    int count = 0;
    CacheInspector(c).forEachValid([&](const BlockInfo &) { count++; });
    EXPECT_EQ(count, 2);
    EXPECT_EQ(CacheInspector(c).validBlockCount(), 2u);
}

} // namespace
} // namespace lap
