/**
 * @file
 * Unit tests for the replacement engine, including the eligibility
 * masks used by the loop-block-aware victim filter and the hybrid
 * way partitions.
 */

#include <gtest/gtest.h>

#include "cache/replacement.hh"
#include "cache/tag_store.hh"

namespace lap
{
namespace
{

/** One-set tag store with every way holding a valid block. */
TagStore
filledSet(std::uint32_t ways)
{
    TagStore ts(1, ways);
    for (std::uint32_t w = 0; w < ways; ++w)
        ts.install(w, w, false, false, 0, FillState::NotFill,
                   CohState::Invalid, 0);
    return ts;
}

TEST(Lru, VictimIsLeastRecentlyTouched)
{
    Replacement lru(ReplKind::Lru);
    TagStore ts = filledSet(4);
    for (std::uint32_t w = 0; w < 4; ++w)
        lru.onFill(ts, w);
    lru.onHit(ts, 0); // order now: 1, 2, 3, 0
    EXPECT_EQ(lru.victimAmong(ts, 0, 0b1111), 1u);
    lru.onHit(ts, 1);
    EXPECT_EQ(lru.victimAmong(ts, 0, 0b1111), 2u);
}

TEST(Lru, VictimHonorsEligibilityMask)
{
    Replacement lru(ReplKind::Lru);
    TagStore ts = filledSet(4);
    for (std::uint32_t w = 0; w < 4; ++w)
        lru.onFill(ts, w); // LRU order = way 0 oldest
    EXPECT_EQ(lru.victimAmong(ts, 0, 0b1100), 2u);
    EXPECT_EQ(lru.victimAmong(ts, 0, 0b1000), 3u);
}

TEST(Lru, MruIsMostRecentlyTouched)
{
    Replacement lru(ReplKind::Lru);
    TagStore ts = filledSet(4);
    for (std::uint32_t w = 0; w < 4; ++w)
        lru.onFill(ts, w);
    EXPECT_EQ(lru.mruAmong(ts, 0, 0b1111), 3u);
    lru.onHit(ts, 1);
    EXPECT_EQ(lru.mruAmong(ts, 0, 0b1111), 1u);
    EXPECT_EQ(lru.mruAmong(ts, 0, 0b1101), 3u);
}

TEST(Lru, ClockAdvancesOnTouch)
{
    Replacement lru(ReplKind::Lru);
    TagStore ts(1, 1);
    const auto before = lru.clock();
    lru.onFill(ts, 0);
    lru.onHit(ts, 0);
    EXPECT_EQ(lru.clock(), before + 2);
}

TEST(Rrip, FillInsertsLongReuse)
{
    Replacement rrip(ReplKind::Rrip);
    TagStore ts(1, 1);
    rrip.onFill(ts, 0);
    EXPECT_EQ(ts.rrpv(0), 2);
    rrip.onHit(ts, 0);
    EXPECT_EQ(ts.rrpv(0), 0);
}

TEST(Rrip, VictimPrefersDistantRrpv)
{
    Replacement rrip(ReplKind::Rrip);
    TagStore ts = filledSet(4);
    for (std::uint32_t w = 0; w < 4; ++w)
        rrip.onFill(ts, w);
    ts.setRrpv(2, 3);
    EXPECT_EQ(rrip.victimAmong(ts, 0, 0b1111), 2u);
}

TEST(Rrip, AgesUntilVictimFound)
{
    Replacement rrip(ReplKind::Rrip);
    TagStore ts = filledSet(4);
    for (std::uint32_t w = 0; w < 4; ++w) {
        rrip.onFill(ts, w);
        rrip.onHit(ts, w); // all rrpv = 0
    }
    const auto victim = rrip.victimAmong(ts, 0, 0b1111);
    EXPECT_LT(victim, 4u);
    // Aging must have advanced everyone to the max.
    for (std::uint32_t w = 0; w < 4; ++w)
        EXPECT_EQ(ts.rrpv(w), 3);
}

TEST(Rrip, MruIsSmallestRrpv)
{
    Replacement rrip(ReplKind::Rrip);
    TagStore ts = filledSet(4);
    for (std::uint32_t w = 0; w < 4; ++w)
        rrip.onFill(ts, w);
    ts.setRrpv(3, 0);
    EXPECT_EQ(rrip.mruAmong(ts, 0, 0b1111), 3u);
}

TEST(Random, VictimAlwaysEligible)
{
    Replacement rnd(ReplKind::Random, 7);
    TagStore ts = filledSet(8);
    for (int i = 0; i < 200; ++i) {
        const auto v = rnd.victimAmong(ts, 0, 0b10100100);
        EXPECT_TRUE(v == 2 || v == 5 || v == 7);
    }
}

TEST(Random, SingleCandidate)
{
    Replacement rnd(ReplKind::Random, 7);
    TagStore ts = filledSet(4);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(rnd.victimAmong(ts, 0, 0b0100), 2u);
}

TEST(Replacement, NamesEachKind)
{
    EXPECT_EQ(Replacement(ReplKind::Lru).name(), "LRU");
    EXPECT_EQ(Replacement(ReplKind::Rrip).name(), "RRIP");
    EXPECT_EQ(Replacement(ReplKind::Random).name(), "Random");
}

/** Every algorithm must pick only eligible ways. */
class AnyPolicy : public ::testing::TestWithParam<ReplKind>
{
};

TEST_P(AnyPolicy, VictimRespectsMask)
{
    Replacement policy(GetParam(), 11);
    TagStore ts = filledSet(8);
    for (std::uint32_t w = 0; w < 8; ++w)
        policy.onFill(ts, w);
    for (std::uint64_t mask :
         {0b1ULL, 0b10000000ULL, 0b01010101ULL, 0b11110000ULL}) {
        const auto v = policy.victimAmong(ts, 0, mask);
        EXPECT_TRUE(mask & (1ULL << v))
            << toString(GetParam()) << " mask " << mask;
        const auto m = policy.mruAmong(ts, 0, mask);
        EXPECT_TRUE(mask & (1ULL << m));
    }
}

TEST_P(AnyPolicy, DiesWithEmptyMask)
{
    Replacement policy(GetParam(), 11);
    TagStore ts = filledSet(4);
    EXPECT_DEATH(policy.victimAmong(ts, 0, 0), "");
}

INSTANTIATE_TEST_SUITE_P(AllKinds, AnyPolicy,
                         ::testing::Values(ReplKind::Lru, ReplKind::Rrip,
                                           ReplKind::Random));

} // namespace
} // namespace lap
