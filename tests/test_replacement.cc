/**
 * @file
 * Unit tests for the replacement policies, including the eligibility
 * masks used by the loop-block-aware victim filter and the hybrid
 * way partitions.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/replacement.hh"

namespace lap
{
namespace
{

std::vector<CacheBlock>
validSet(std::size_t ways)
{
    std::vector<CacheBlock> set(ways);
    for (std::size_t i = 0; i < ways; ++i) {
        set[i].valid = true;
        set[i].blockAddr = i;
    }
    return set;
}

TEST(Lru, VictimIsLeastRecentlyTouched)
{
    LruPolicy lru;
    auto set = validSet(4);
    for (auto &blk : set)
        lru.onFill(blk);
    lru.onHit(set[0]); // order now: 1, 2, 3, 0
    EXPECT_EQ(lru.victimAmong(set, 0b1111), 1u);
    lru.onHit(set[1]);
    EXPECT_EQ(lru.victimAmong(set, 0b1111), 2u);
}

TEST(Lru, VictimHonorsEligibilityMask)
{
    LruPolicy lru;
    auto set = validSet(4);
    for (auto &blk : set)
        lru.onFill(blk); // LRU order = way 0 oldest
    EXPECT_EQ(lru.victimAmong(set, 0b1100), 2u);
    EXPECT_EQ(lru.victimAmong(set, 0b1000), 3u);
}

TEST(Lru, MruIsMostRecentlyTouched)
{
    LruPolicy lru;
    auto set = validSet(4);
    for (auto &blk : set)
        lru.onFill(blk);
    EXPECT_EQ(lru.mruAmong(set, 0b1111), 3u);
    lru.onHit(set[1]);
    EXPECT_EQ(lru.mruAmong(set, 0b1111), 1u);
    EXPECT_EQ(lru.mruAmong(set, 0b1101), 3u);
}

TEST(Lru, ClockAdvancesOnTouch)
{
    LruPolicy lru;
    CacheBlock blk;
    const auto before = lru.clock();
    lru.onFill(blk);
    lru.onHit(blk);
    EXPECT_EQ(lru.clock(), before + 2);
}

TEST(Rrip, FillInsertsLongReuse)
{
    RripPolicy rrip;
    CacheBlock blk;
    rrip.onFill(blk);
    EXPECT_EQ(blk.rrpv, 2);
    rrip.onHit(blk);
    EXPECT_EQ(blk.rrpv, 0);
}

TEST(Rrip, VictimPrefersDistantRrpv)
{
    RripPolicy rrip;
    auto set = validSet(4);
    for (auto &blk : set)
        rrip.onFill(blk);
    set[2].rrpv = 3;
    EXPECT_EQ(rrip.victimAmong(set, 0b1111), 2u);
}

TEST(Rrip, AgesUntilVictimFound)
{
    RripPolicy rrip;
    auto set = validSet(4);
    for (auto &blk : set) {
        rrip.onFill(blk);
        rrip.onHit(blk); // all rrpv = 0
    }
    const auto victim = rrip.victimAmong(set, 0b1111);
    EXPECT_LT(victim, 4u);
    // Aging must have advanced everyone to the max.
    for (const auto &blk : set)
        EXPECT_EQ(blk.rrpv, 3);
}

TEST(Rrip, MruIsSmallestRrpv)
{
    RripPolicy rrip;
    auto set = validSet(4);
    for (auto &blk : set)
        rrip.onFill(blk);
    set[3].rrpv = 0;
    EXPECT_EQ(rrip.mruAmong(set, 0b1111), 3u);
}

TEST(Random, VictimAlwaysEligible)
{
    RandomPolicy rnd(7);
    auto set = validSet(8);
    for (int i = 0; i < 200; ++i) {
        const auto v = rnd.victimAmong(set, 0b10100100);
        EXPECT_TRUE(v == 2 || v == 5 || v == 7);
    }
}

TEST(Random, SingleCandidate)
{
    RandomPolicy rnd(7);
    auto set = validSet(4);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(rnd.victimAmong(set, 0b0100), 2u);
}

TEST(Factory, BuildsEachKind)
{
    EXPECT_EQ(makeReplacementPolicy(ReplKind::Lru, 1)->name(), "LRU");
    EXPECT_EQ(makeReplacementPolicy(ReplKind::Rrip, 1)->name(), "RRIP");
    EXPECT_EQ(makeReplacementPolicy(ReplKind::Random, 1)->name(),
              "Random");
}

/** Every policy must pick only eligible ways. */
class AnyPolicy : public ::testing::TestWithParam<ReplKind>
{
};

TEST_P(AnyPolicy, VictimRespectsMask)
{
    auto policy = makeReplacementPolicy(GetParam(), 11);
    auto set = validSet(8);
    for (auto &blk : set)
        policy->onFill(blk);
    for (std::uint64_t mask :
         {0b1ULL, 0b10000000ULL, 0b01010101ULL, 0b11110000ULL}) {
        const auto v = policy->victimAmong(set, mask);
        EXPECT_TRUE(mask & (1ULL << v))
            << toString(GetParam()) << " mask " << mask;
        const auto m = policy->mruAmong(set, mask);
        EXPECT_TRUE(mask & (1ULL << m));
    }
}

TEST_P(AnyPolicy, DiesWithEmptyMask)
{
    auto policy = makeReplacementPolicy(GetParam(), 11);
    auto set = validSet(4);
    EXPECT_DEATH(policy->victimAmong(set, 0), "");
}

INSTANTIATE_TEST_SUITE_P(AllKinds, AnyPolicy,
                         ::testing::Values(ReplKind::Lru, ReplKind::Rrip,
                                           ReplKind::Random));

} // namespace
} // namespace lap
