/**
 * @file
 * Property tests of the Chrome trace_event emitter.
 *
 * Eight seeded-random configurations (policy, core count, coherence,
 * epoch interval — same seeding style as test_auditor_fuzz) drive
 * random traffic through a hierarchy with the full probe stack
 * attached: trace emitter, epoch sampler feeding the epoch lane, and
 * a fail-fast auditor feeding the audit lane. Whatever events come
 * out must satisfy the trace_event contract the viewers rely on:
 *
 *  - timestamps are monotone non-decreasing per lane ("tid"),
 *  - duration events are balanced ('E' never without an open 'B',
 *    nothing left open at the end),
 *  - every event sits on a known lane with a name and category,
 *  - the rendered document is valid JSON (the campaign JSONL reader
 *    must parse it).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "campaign/jsonl.hh"
#include "common/rng.hh"
#include "sim/auditor.hh"
#include "sim/simulator.hh"
#include "stats/stats_engine.hh"
#include "test_util.hh"
#include "workloads/mixes.hh"

namespace lap
{
namespace
{

using test::tinyParams;

/** Lane-by-lane trace_event contract check. */
void
expectWellFormed(const TraceEmitter &trace)
{
    Cycle last_ts[TraceEmitter::kNumLanes] = {};
    int open[TraceEmitter::kNumLanes] = {};
    for (const TraceEvent &ev : trace.events()) {
        ASSERT_LT(ev.tid, TraceEmitter::kNumLanes);
        ASSERT_TRUE(ev.ph == 'B' || ev.ph == 'E' || ev.ph == 'i')
            << "unknown phase '" << ev.ph << "'";
        EXPECT_FALSE(ev.name.empty());
        EXPECT_FALSE(ev.cat.empty());
        EXPECT_GE(ev.ts, last_ts[ev.tid])
            << "lane " << ev.tid << " went backwards at '" << ev.name
            << "'";
        last_ts[ev.tid] = ev.ts;
        if (ev.ph == 'B')
            ++open[ev.tid];
        if (ev.ph == 'E') {
            ASSERT_GT(open[ev.tid], 0)
                << "'E' without an open 'B' on lane " << ev.tid;
            --open[ev.tid];
        }
    }
    for (std::uint32_t lane = 0; lane < TraceEmitter::kNumLanes;
         ++lane)
        EXPECT_EQ(open[lane], 0)
            << "unclosed 'B' left on lane " << lane;
}

constexpr PolicyKind kPolicies[] = {
    PolicyKind::Inclusive, PolicyKind::NonInclusive,
    PolicyKind::Exclusive, PolicyKind::Flexclusion,
    PolicyKind::Dswitch,   PolicyKind::LapLru,
    PolicyKind::LapLoop,   PolicyKind::Lap,
};

class TraceEventFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TraceEventFuzz, RandomConfigEmitsWellFormedTrace)
{
    Rng rng(GetParam());

    // Seed-derived configuration, one policy per seed so all eight
    // policies are covered across the suite.
    const PolicyKind kind = kPolicies[rng.below(8)];
    const std::uint32_t cores = rng.chance(0.5) ? 1u : 2u;
    HierarchyParams hp = tinyParams(cores);
    hp.coherence = cores == 2 && rng.chance(0.5);
    const std::uint64_t epoch_interval = 500 + rng.below(2'000);

    PolicyTuning tuning;
    tuning.epochCycles = 10'000;
    tuning.leaderPeriod = 2;
    const std::uint64_t sets = hp.llc.sizeBytes
        / (static_cast<std::uint64_t>(hp.llc.assoc)
           * hp.llc.blockBytes);
    CacheHierarchy hier(hp, makeInclusionPolicy(kind, sets, tuning));

    TraceEmitter trace(hier);
    EpochSampler sampler(hier, epoch_interval);
    sampler.setEpochCallback(
        [&trace](const EpochRecord &rec) { trace.noteEpoch(rec); });

    AuditorConfig ac;
    ac.mode = AuditMode::FailFast;
    ac.interval = 64;
    HierarchyAuditor auditor(hier, kind, ac);
    auditor.setAuditPassCallback(
        [&trace](std::uint64_t txn, std::uint64_t violations) {
            trace.noteAuditPass(txn, violations);
        });

    Cycle now = 0;
    while (hier.transactionCount() < 30'000) {
        const CoreId core = static_cast<CoreId>(rng.below(cores));
        const std::uint64_t base = hp.coherence || cores == 1
            ? 0
            : static_cast<std::uint64_t>(core) << 16;
        const std::uint64_t idx =
            rng.chance(0.6) ? rng.below(96) : rng.below(512);
        if (rng.chance(1.0 / 8192)) {
            hier.resetStats(); // emits a stats-reset instant
        } else {
            const AccessType type = rng.chance(0.3)
                ? AccessType::Write
                : AccessType::Read;
            hier.access(core, (base + idx) * 64, type, now);
        }
        now += rng.below(16) + 1;
    }
    sampler.finish();

    // The epoch lane must have fired: the run spans many intervals.
    EXPECT_FALSE(sampler.records().empty());
    EXPECT_FALSE(trace.events().empty());
    expectWellFormed(trace);

    // The rendered document is one valid JSON object the campaign
    // reader can parse.
    JsonRow doc;
    ASSERT_TRUE(parseJsonObject(trace.render(), doc));
    EXPECT_EQ(rowValue(doc, "displayTimeUnit"), "ms");
    EXPECT_FALSE(rowValue(doc, "traceEvents.0.name").empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceEventFuzz,
                         ::testing::Values(0xE001, 0xE002, 0xE003,
                                           0xE004, 0xE005, 0xE006,
                                           0xE007, 0xE008));

/** End to end: --trace-events writes a parseable file. */
TEST(TraceEvents, SimulatorWritesParseableTraceFile)
{
    const std::string path =
        ::testing::TempDir() + "lapsim_trace_test.json";

    SimConfig cfg;
    cfg.numCores = 2;
    cfg.l1Size = 4 * 1024;
    cfg.l2Size = 32 * 1024;
    cfg.llcSize = 256 * 1024;
    cfg.warmupRefs = 5'000;
    cfg.measureRefs = 30'000;
    cfg.policy = PolicyKind::Dswitch; // exercises the duel lane
    cfg.epochStatsInterval = 5'000;
    cfg.auditInterval = 997;
    cfg.traceEventsPath = path;

    Simulator sim(cfg);
    sim.run(resolveMix(duplicateMix("mcf", 2)));

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "trace file not written: " << path;
    std::ostringstream text;
    text << in.rdbuf();

    JsonRow doc;
    ASSERT_TRUE(parseJsonObject(text.str(), doc));
    EXPECT_EQ(rowValue(doc, "displayTimeUnit"), "ms");
    EXPECT_FALSE(rowValue(doc, "traceEvents.0.ph").empty());
    std::remove(path.c_str());
}

} // namespace
} // namespace lap
