/**
 * @file
 * AddrMap property/fuzz suite: the flat open-addressing map must be
 * observationally equivalent to std::unordered_map under any
 * interleaving of insert / overwrite / find / erase / clear —
 * including across 4x growth boundaries, tombstone reuse and
 * deliberately colliding probe chains.
 *
 * Each fuzz round replays one randomized operation sequence against
 * both maps and compares every return value plus the full surviving
 * entry set (via forEach, order-independently). Iterations scale
 * with LAPSIM_FUZZ_ITERS for the nightly fuzz shard; the default is
 * sized for the regular fuzz label run.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/flat_map.hh"
#include "common/rng.hh"

namespace lap
{
namespace
{

std::uint32_t
fuzzIterations(std::uint32_t base)
{
    const char *env = std::getenv("LAPSIM_FUZZ_ITERS");
    if (env == nullptr)
        return base;
    const unsigned long parsed = std::strtoul(env, nullptr, 0);
    return parsed == 0 ? base : static_cast<std::uint32_t>(parsed);
}

/** Live entries of an AddrMap as a sorted snapshot. */
std::map<Addr, std::uint64_t>
snapshot(const AddrMap<std::uint64_t> &map)
{
    std::map<Addr, std::uint64_t> out;
    map.forEach([&](Addr key, const std::uint64_t &value) {
        const bool fresh = out.emplace(key, value).second;
        EXPECT_TRUE(fresh) << "forEach visited key " << key
                           << " twice";
    });
    return out;
}

void
expectEquivalent(const AddrMap<std::uint64_t> &map,
                 const std::unordered_map<Addr, std::uint64_t> &ref)
{
    ASSERT_EQ(map.size(), ref.size());
    const auto entries = snapshot(map);
    ASSERT_EQ(entries.size(), ref.size());
    for (const auto &[key, value] : ref) {
        const auto it = entries.find(key);
        ASSERT_NE(it, entries.end()) << "key " << key << " lost";
        EXPECT_EQ(it->second, value) << "key " << key;
    }
}

TEST(AddrMap, BasicInsertFindErase)
{
    AddrMap<std::uint64_t> map;
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(42), nullptr);

    map[42] = 7;
    EXPECT_EQ(map.size(), 1u);
    ASSERT_NE(map.find(42), nullptr);
    EXPECT_EQ(*map.find(42), 7u);

    map[42] = 9; // overwrite, not duplicate
    EXPECT_EQ(map.size(), 1u);
    EXPECT_EQ(*map.find(42), 9u);

    map.erase(42);
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(42), nullptr);
    map.erase(42); // erasing an absent key is a no-op
    EXPECT_TRUE(map.empty());
}

TEST(AddrMap, DefaultConstructsOnFirstUse)
{
    AddrMap<std::uint64_t> map;
    EXPECT_EQ(map[1000], 0u);
    map[1000] += 3;
    EXPECT_EQ(map[1000], 3u);
}

/** Growth boundaries: 64 slots quadruple at 75% load, so crossing
 *  48, 192, 768... live entries must preserve every value. */
TEST(AddrMap, SurvivesGrowthBoundaries)
{
    AddrMap<std::uint64_t> map;
    std::unordered_map<Addr, std::uint64_t> ref;
    for (Addr key = 0; key < 4'000; ++key) {
        const Addr addr = key * 64; // block-aligned like real users
        map[addr] = key;
        ref[addr] = key;
    }
    expectEquivalent(map, ref);
}

/** A tombstone-heavy workload (the loop tracker's pattern: streaks
 *  start, grow and are erased constantly) must neither lose entries
 *  nor resurrect erased ones. */
TEST(AddrMap, TombstoneChurn)
{
    AddrMap<std::uint64_t> map;
    std::unordered_map<Addr, std::uint64_t> ref;
    Rng rng(1234);
    for (std::uint32_t round = 0; round < 20'000; ++round) {
        const Addr key = rng.below(512) * 64;
        if (rng.chance(0.5)) {
            map[key] += 1;
            ref[key] += 1;
        } else {
            map.erase(key);
            ref.erase(key);
        }
    }
    expectEquivalent(map, ref);
}

/** Keys crafted to collide (same probe start after masking) force
 *  long linear probe chains through full and tombstoned slots. */
TEST(AddrMap, CollidingProbeChains)
{
    AddrMap<std::uint64_t> map;
    std::unordered_map<Addr, std::uint64_t> ref;
    // Brute-force a set of keys whose mixed hash lands in the same
    // initial 64-slot bucket.
    std::vector<Addr> colliders;
    for (Addr key = 0; colliders.size() < 40 && key < 1'000'000;
         ++key) {
        std::uint64_t x = key;
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdULL;
        x ^= x >> 33;
        x *= 0xc4ceb9fe1a85ec53ULL;
        x ^= x >> 33;
        if ((x & 63) == 17)
            colliders.push_back(key);
    }
    ASSERT_GE(colliders.size(), 40u);

    for (std::size_t i = 0; i < colliders.size(); ++i) {
        map[colliders[i]] = i;
        ref[colliders[i]] = i;
    }
    // Punch tombstones into the middle of the chain, then reinsert.
    for (std::size_t i = 0; i < colliders.size(); i += 3) {
        map.erase(colliders[i]);
        ref.erase(colliders[i]);
    }
    expectEquivalent(map, ref);
    for (std::size_t i = 0; i < colliders.size(); i += 3) {
        map[colliders[i]] = i + 1'000;
        ref[colliders[i]] = i + 1'000;
    }
    expectEquivalent(map, ref);
}

TEST(AddrMap, ClearKeepsWorking)
{
    AddrMap<std::uint64_t> map;
    std::unordered_map<Addr, std::uint64_t> ref;
    for (Addr key = 0; key < 500; ++key)
        map[key * 64] = key;
    map.clear();
    EXPECT_TRUE(map.empty());
    expectEquivalent(map, ref);
    for (Addr key = 0; key < 500; ++key) {
        map[key * 64] = key + 7;
        ref[key * 64] = key + 7;
    }
    expectEquivalent(map, ref);
}

/** The differential fuzz loop proper: randomized op sequences with
 *  per-op return-value comparison and a full-state audit at the end
 *  of every round. */
TEST(AddrMapFuzz, MatchesUnorderedMap)
{
    const std::uint32_t rounds = fuzzIterations(200);
    for (std::uint32_t round = 0; round < rounds; ++round) {
        Rng rng(0x9e3779b9u + round);
        AddrMap<std::uint64_t> map;
        std::unordered_map<Addr, std::uint64_t> ref;

        // Small key spaces maximize erase/reinsert aliasing; large
        // ones exercise growth. Alternate per round.
        const Addr key_space =
            (round % 2 == 0) ? 256 : 16'384;
        const std::uint32_t ops = 1'000 + rng.below(4'000);

        for (std::uint32_t op = 0; op < ops; ++op) {
            const Addr key = rng.below(key_space) * 64;
            switch (rng.below(4)) {
              case 0: { // insert / overwrite
                const std::uint64_t value = rng.below(1u << 30);
                map[key] = value;
                ref[key] = value;
                break;
              }
              case 1: { // read-modify-write through operator[]
                map[key] += 1;
                ref[key] += 1;
                break;
              }
              case 2: { // find
                const std::uint64_t *got = map.find(key);
                const auto it = ref.find(key);
                if (it == ref.end()) {
                    ASSERT_EQ(got, nullptr)
                        << "round " << round << " op " << op
                        << ": phantom key " << key;
                } else {
                    ASSERT_NE(got, nullptr)
                        << "round " << round << " op " << op
                        << ": lost key " << key;
                    ASSERT_EQ(*got, it->second);
                }
                break;
              }
              default: // erase
                map.erase(key);
                ref.erase(key);
                break;
            }
            ASSERT_EQ(map.size(), ref.size())
                << "round " << round << " op " << op;
        }
        expectEquivalent(map, ref);

        // Clear mid-life and keep fuzzing briefly: clear() keeps
        // capacity, so stale slot state would surface here.
        map.clear();
        ref.clear();
        for (std::uint32_t op = 0; op < 200; ++op) {
            const Addr key = rng.below(128) * 64;
            map[key] = op;
            ref[key] = op;
        }
        expectEquivalent(map, ref);
    }
}

} // namespace
} // namespace lap
