/**
 * @file
 * Tests for the JSON report writer and the CLI option parser.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include <algorithm>

#include "sim/options.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "workloads/spec2006.hh"

namespace lap
{
namespace
{

// --- JsonWriter --------------------------------------------------------

TEST(JsonWriter, BuildsFlatObject)
{
    JsonWriter w;
    w.field("name", "lap").field("x", std::uint64_t{3}).field("ok", true);
    EXPECT_EQ(w.str(), "{\"name\":\"lap\",\"x\":3,\"ok\":true}");
}

TEST(JsonWriter, EscapesStrings)
{
    EXPECT_EQ(JsonWriter::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    JsonWriter w;
    w.field("k", "v\"q");
    EXPECT_EQ(w.str(), "{\"k\":\"v\\\"q\"}");
}

TEST(JsonWriter, NestsRawObjects)
{
    JsonWriter inner;
    inner.field("a", std::uint64_t{1});
    JsonWriter outer;
    outer.raw("inner", inner.str());
    EXPECT_EQ(outer.str(), "{\"inner\":{\"a\":1}}");
}

TEST(JsonWriter, FormatsDoubles)
{
    JsonWriter w;
    w.field("pi", 3.25);
    EXPECT_EQ(w.str(), "{\"pi\":3.25}");
}

TEST(Report, ConfigRoundTripsKeyFields)
{
    SimConfig config;
    config.policy = PolicyKind::Lap;
    config.hybridLlc = true;
    const std::string json = configToJson(config);
    EXPECT_NE(json.find("\"policy\":\"LAP\""), std::string::npos);
    EXPECT_NE(json.find("\"hybridLlc\":true"), std::string::npos);
    EXPECT_NE(json.find("\"llcSize\":8388608"), std::string::npos);
}

TEST(Report, MetricsSerialize)
{
    Metrics m;
    m.epi = 0.125;
    m.llcMisses = 42;
    const std::string json = metricsToJson(m);
    EXPECT_NE(json.find("\"epi\":0.125"), std::string::npos);
    EXPECT_NE(json.find("\"llcMisses\":42"), std::string::npos);
}

TEST(Report, ExperimentCombines)
{
    const std::string json =
        experimentToJson("demo", SimConfig{}, Metrics{});
    EXPECT_EQ(json.rfind("{\"label\":\"demo\",\"config\":{", 0), 0u);
    EXPECT_NE(json.find("\"metrics\":{"), std::string::npos);
}

TEST(Report, WriteFile)
{
    const std::string path = ::testing::TempDir() + "lapsim_report.json";
    writeFile(path, "{\"x\":1}");
    std::ifstream in(path);
    std::string content;
    std::getline(in, content);
    EXPECT_EQ(content, "{\"x\":1}");
    std::remove(path.c_str());
}

TEST(Report, WriteFileFatalOnBadPath)
{
    EXPECT_DEATH(writeFile("/nonexistent-dir/x.json", "{}"),
                 "cannot open");
}

TEST(Report, DumpStatsListsAllComponents)
{
    SimConfig config;
    config.numCores = 2;
    config.l1Size = 4 * 1024;
    config.l2Size = 32 * 1024;
    config.llcSize = 256 * 1024;
    config.warmupRefs = 1000;
    config.measureRefs = 20000;
    Simulator sim(config);
    sim.run({spec2006Benchmark("mcf"), spec2006Benchmark("omnetpp")});
    const std::string dump = dumpStats(sim.hierarchy());
    for (const char *key :
         {"system.demandAccesses", "system.llcWrites.total",
          "l1.core0.readHits", "l1.core1.readHits",
          "l2.core0.fills", "llc.tagAccesses", "dram.reads"}) {
        EXPECT_NE(dump.find(key), std::string::npos) << key;
    }
    // The dump is line-oriented name/value pairs.
    EXPECT_GT(std::count(dump.begin(), dump.end(), '\n'), 40);
}

// --- CLI options -------------------------------------------------------

TEST(Options, Defaults)
{
    const CliOptions opts = parseCliOptions({});
    EXPECT_EQ(opts.workload, CliOptions::WorkloadKind::Mix);
    EXPECT_EQ(opts.mixName, "WH1");
    EXPECT_EQ(opts.config.policy, PolicyKind::NonInclusive);
    EXPECT_FALSE(opts.showHelp);
}

TEST(Options, PolicyAndMix)
{
    const CliOptions opts =
        parseCliOptions({"--policy", "lap", "--mix", "WL3"});
    EXPECT_EQ(opts.config.policy, PolicyKind::Lap);
    EXPECT_EQ(opts.mixName, "WL3");
}

TEST(Options, BenchmarksList)
{
    const CliOptions opts =
        parseCliOptions({"--benchmarks", "omnetpp,mcf"});
    EXPECT_EQ(opts.workload, CliOptions::WorkloadKind::Benchmarks);
    EXPECT_EQ(opts.benchmarks,
              (std::vector<std::string>{"omnetpp", "mcf"}));
}

TEST(Options, ParsecEnablesCoherence)
{
    const CliOptions opts =
        parseCliOptions({"--parsec", "streamcluster"});
    EXPECT_EQ(opts.workload, CliOptions::WorkloadKind::Parsec);
    EXPECT_TRUE(opts.config.coherence);
}

TEST(Options, SystemGeometry)
{
    const CliOptions opts = parseCliOptions(
        {"--cores", "8", "--llc-mb", "16", "--l2-kb", "256",
         "--llc-assoc", "8"});
    EXPECT_EQ(opts.config.numCores, 8u);
    EXPECT_EQ(opts.config.llcSize, 16u * 1024 * 1024);
    EXPECT_EQ(opts.config.l2Size, 256u * 1024);
    EXPECT_EQ(opts.config.llcAssoc, 8u);
}

TEST(Options, PlacementImpliesHybrid)
{
    const CliOptions opts =
        parseCliOptions({"--placement", "lhybrid"});
    EXPECT_EQ(opts.config.placement, PlacementKind::Lhybrid);
    EXPECT_TRUE(opts.config.hybridLlc);
}

TEST(Options, TechAndRatio)
{
    const CliOptions opts =
        parseCliOptions({"--tech", "sram", "--wr-ratio", "8"});
    EXPECT_EQ(opts.config.llcTech, MemTech::SRAM);
    EXPECT_NEAR(opts.config.stt.writeReadRatio(), 8.0, 1e-12);
}

TEST(Options, DascaAndRepl)
{
    const CliOptions opts =
        parseCliOptions({"--dasca", "--repl", "rrip"});
    EXPECT_TRUE(opts.config.deadWriteBypass);
    EXPECT_EQ(opts.config.llcRepl, ReplKind::Rrip);
}

TEST(Options, RunControl)
{
    const CliOptions opts = parseCliOptions(
        {"--refs", "123", "--warmup", "45", "--seed", "7", "--json",
         "out.json"});
    EXPECT_EQ(opts.config.measureRefs, 123u);
    EXPECT_EQ(opts.config.warmupRefs, 45u);
    EXPECT_EQ(opts.config.seedSalt, 7u);
    EXPECT_EQ(opts.jsonPath, "out.json");
}

TEST(Options, StatsFlag)
{
    EXPECT_TRUE(parseCliOptions({"--stats"}).dumpStats);
    EXPECT_FALSE(parseCliOptions({}).dumpStats);
}

TEST(Options, Help)
{
    EXPECT_TRUE(parseCliOptions({"--help"}).showHelp);
    EXPECT_TRUE(parseCliOptions({"-h"}).showHelp);
    EXPECT_NE(cliHelpText().find("--policy"), std::string::npos);
}

TEST(Options, RejectsUnknownFlag)
{
    EXPECT_DEATH(parseCliOptions({"--bogus"}), "unknown flag");
}

TEST(Options, RejectsMissingValue)
{
    EXPECT_DEATH(parseCliOptions({"--policy"}), "requires a value");
}

TEST(Options, RejectsBadNumbers)
{
    EXPECT_DEATH(parseCliOptions({"--cores", "abc"}), "expected a");
    EXPECT_DEATH(parseCliOptions({"--wr-ratio", "-1"}), "positive");
}

TEST(Options, SplitList)
{
    EXPECT_EQ(splitList("a,b,c"),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(splitList(",a,,b,"),
              (std::vector<std::string>{"a", "b"}));
    EXPECT_TRUE(splitList("").empty());
}

} // namespace
} // namespace lap
