/**
 * @file
 * Tests for the multi-core driver, the file-trace replayer, and the
 * Simulator integration layer (config -> hierarchy -> metrics).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "cpu/file_trace.hh"
#include "sim/simulator.hh"
#include "test_util.hh"
#include "workloads/mixes.hh"
#include "workloads/parsec.hh"
#include "workloads/spec2006.hh"

namespace lap
{
namespace
{

using test::ScriptTrace;

// --- MultiCoreDriver ---------------------------------------------------

TEST(Driver, RunsExactRefCounts)
{
    auto h = test::tinyHierarchy(PolicyKind::NonInclusive);
    ScriptTrace t0({{0, AccessType::Read, 4}});
    ScriptTrace t1({{64, AccessType::Read, 4}});
    MultiCoreDriver driver(*h, {&t0, &t1}, CoreParams{});
    driver.run(100);
    EXPECT_EQ(driver.core(0).memRefs(), 100u);
    EXPECT_EQ(driver.core(1).memRefs(), 100u);
}

TEST(Driver, InterleavesByLaggingCore)
{
    // Core 1's references stall on memory; core 0 hits L1. The
    // driver must still run both to completion, with core 0 far
    // ahead in retired references at equal cycle counts.
    auto h = test::tinyHierarchy(PolicyKind::NonInclusive);
    ScriptTrace fast({{0, AccessType::Read, 0}});
    std::vector<MemRef> misses;
    for (std::uint64_t i = 0; i < 64; ++i)
        misses.push_back({(1 << 20) + i * 64 * 8, AccessType::Read, 0});
    ScriptTrace slow(misses);
    MultiCoreDriver driver(*h, {&fast, &slow}, CoreParams{});
    driver.run(200);
    EXPECT_EQ(driver.core(0).memRefs(), 200u);
    EXPECT_EQ(driver.core(1).memRefs(), 200u);
    EXPECT_LT(driver.core(0).now(), driver.core(1).now());
}

TEST(Driver, MeasureResetsStatsAfterWarmup)
{
    auto h = test::tinyHierarchy(PolicyKind::NonInclusive);
    ScriptTrace t0({{0, AccessType::Read, 4}});
    ScriptTrace t1({{64, AccessType::Read, 4}});
    MultiCoreDriver driver(*h, {&t0, &t1}, CoreParams{});
    const RunResult result = driver.measure(50, 100);
    // Warmup misses were wiped; the measured window is pure L1 hits.
    EXPECT_EQ(h->stats().llcMisses, 0u);
    EXPECT_EQ(h->stats().demandAccesses, 200u);
    EXPECT_EQ(result.cores.size(), 2u);
    EXPECT_GT(result.throughput, 0.0);
    EXPECT_EQ(result.instructions,
              result.cores[0].instructions + result.cores[1].instructions);
}

TEST(Driver, RejectsMismatchedTraces)
{
    auto h = test::tinyHierarchy(PolicyKind::NonInclusive);
    ScriptTrace t0({{0, AccessType::Read, 0}});
    EXPECT_DEATH(MultiCoreDriver(*h, {&t0}, CoreParams{}), "");
}

// --- FileTrace ---------------------------------------------------------

class FileTraceTest : public ::testing::Test
{
  protected:
    std::string
    writeTrace(const std::string &content)
    {
        path_ = ::testing::TempDir() + "lapsim_trace_test.txt";
        std::ofstream out(path_);
        out << content;
        return path_;
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

TEST_F(FileTraceTest, ParsesOpsAddressesAndGaps)
{
    FileTrace t(writeTrace("# comment\n"
                           "R 0x1000 5\n"
                           "W 4096\n"
                           "r 0x40\n"));
    EXPECT_EQ(t.size(), 3u);
    MemRef a = t.next();
    EXPECT_EQ(a.type, AccessType::Read);
    EXPECT_EQ(a.addr, 0x1000u);
    EXPECT_EQ(a.gapInstrs, 5u);
    MemRef b = t.next();
    EXPECT_EQ(b.type, AccessType::Write);
    EXPECT_EQ(b.addr, 4096u);
    EXPECT_EQ(b.gapInstrs, 0u);
}

TEST_F(FileTraceTest, WrapsAtEof)
{
    FileTrace t(writeTrace("R 0 1\nW 64 2\n"));
    t.next();
    t.next();
    const MemRef again = t.next();
    EXPECT_EQ(again.addr, 0u);
    t.reset();
    EXPECT_EQ(t.next().addr, 0u);
}

TEST_F(FileTraceTest, RejectsBadInput)
{
    EXPECT_DEATH(FileTrace(writeTrace("X 0x10\n")), "unknown op");
    EXPECT_DEATH(FileTrace(writeTrace("")), "no references");
    EXPECT_DEATH(FileTrace("/nonexistent/trace.txt"), "cannot open");
}

// --- Simulator ---------------------------------------------------------

SimConfig
tinySimConfig()
{
    SimConfig cfg;
    cfg.numCores = 2;
    cfg.l1Size = 4 * 1024;
    cfg.l2Size = 32 * 1024;
    cfg.llcSize = 256 * 1024;
    cfg.warmupRefs = 20'000;
    cfg.measureRefs = 60'000;
    cfg.tuning.epochCycles = 50'000;
    return cfg;
}

TEST(Simulator, RunsEveryPolicyOnUniformStt)
{
    const auto specs = std::vector<WorkloadSpec>{
        spec2006Benchmark("omnetpp"), spec2006Benchmark("libquantum")};
    for (PolicyKind kind : allPolicyKinds()) {
        SimConfig cfg = tinySimConfig();
        cfg.policy = kind;
        Simulator sim(cfg);
        const Metrics m = sim.run(specs);
        EXPECT_GT(m.instructions, 0u) << toString(kind);
        EXPECT_GT(m.throughput, 0.0);
        EXPECT_GT(m.epi, 0.0);
        EXPECT_NEAR(m.epi, m.epiStatic + m.epiDynamic, 1e-9);
        EXPECT_GT(m.llcMisses, 0u);
    }
}

TEST(Simulator, LapEliminatesFillsExclusiveEliminatesNothingElse)
{
    const auto specs = std::vector<WorkloadSpec>{
        spec2006Benchmark("omnetpp"), spec2006Benchmark("omnetpp")};
    SimConfig cfg = tinySimConfig();

    cfg.policy = PolicyKind::Lap;
    Metrics lap = Simulator(cfg).run(specs);
    EXPECT_EQ(lap.llcWritesFill, 0u);

    cfg.policy = PolicyKind::Exclusive;
    Metrics ex = Simulator(cfg).run(specs);
    EXPECT_EQ(ex.llcWritesFill, 0u);
    EXPECT_GT(ex.llcWritesCleanVictim, 0u);

    cfg.policy = PolicyKind::NonInclusive;
    Metrics noni = Simulator(cfg).run(specs);
    EXPECT_GT(noni.llcWritesFill, 0u);
    EXPECT_EQ(noni.llcWritesCleanVictim, 0u);

    // The headline property: LAP writes less than both.
    EXPECT_LT(lap.llcWritesTotal, noni.llcWritesTotal);
    EXPECT_LT(lap.llcWritesTotal, ex.llcWritesTotal);
}

TEST(Simulator, HybridPlacementsRun)
{
    const auto specs = std::vector<WorkloadSpec>{
        spec2006Benchmark("omnetpp"), spec2006Benchmark("mcf")};
    for (PlacementKind placement :
         {PlacementKind::Default, PlacementKind::Winv,
          PlacementKind::LoopStt, PlacementKind::NloopSram,
          PlacementKind::Lhybrid}) {
        SimConfig cfg = tinySimConfig();
        cfg.policy = PolicyKind::Lap;
        cfg.hybridLlc = true;
        cfg.llcSramWays = 4;
        cfg.placement = placement;
        const Metrics m = Simulator(cfg).run(specs);
        EXPECT_GT(m.epi, 0.0) << toString(placement);
        EXPECT_GT(m.llcSramEnergy.totalNj() + m.llcSttEnergy.totalNj(),
                  0.0);
    }
}

TEST(Simulator, NonHybridRejectsLoopPlacements)
{
    SimConfig cfg = tinySimConfig();
    cfg.placement = PlacementKind::Lhybrid;
    cfg.hybridLlc = false;
    EXPECT_DEATH(Simulator{cfg}, "hybrid");
}

TEST(Simulator, MultiThreadedRunProducesCoherenceTraffic)
{
    SimConfig cfg = tinySimConfig();
    cfg.coherence = true;
    cfg.policy = PolicyKind::NonInclusive;
    Simulator sim(cfg);
    const Metrics m = sim.runMultiThreaded(parsecBenchmark("canneal"));
    EXPECT_GT(m.snoopMessages, 0u);
    EXPECT_GT(m.throughput, 0.0);
}

TEST(Simulator, SramLlcIsLeakageDominated)
{
    const auto specs = std::vector<WorkloadSpec>{
        spec2006Benchmark("omnetpp"), spec2006Benchmark("omnetpp")};
    SimConfig cfg = tinySimConfig();
    cfg.llcTech = MemTech::SRAM;
    const Metrics m = Simulator(cfg).run(specs);
    EXPECT_GT(m.epiStatic, m.epiDynamic);
}

TEST(Simulator, DeterministicMetrics)
{
    const auto specs = std::vector<WorkloadSpec>{
        spec2006Benchmark("astar"), spec2006Benchmark("milc")};
    SimConfig cfg = tinySimConfig();
    cfg.policy = PolicyKind::Lap;
    const Metrics a = Simulator(cfg).run(specs);
    const Metrics b = Simulator(cfg).run(specs);
    EXPECT_EQ(a.llcWritesTotal, b.llcWritesTotal);
    EXPECT_EQ(a.llcMisses, b.llcMisses);
    EXPECT_DOUBLE_EQ(a.epi, b.epi);
    EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
}

TEST(Simulator, EnvScaling)
{
    SimConfig cfg;
    cfg.warmupRefs = 1000;
    cfg.measureRefs = 100000;
    setenv("LAPSIM_REFS_SCALE", "0.5", 1);
    const SimConfig scaled = applyEnvScaling(cfg);
    EXPECT_EQ(scaled.warmupRefs, 500u);
    EXPECT_EQ(scaled.measureRefs, 50000u);
    unsetenv("LAPSIM_REFS_SCALE");

    setenv("LAPSIM_FAST", "1", 1);
    const SimConfig fast = applyEnvScaling(cfg);
    EXPECT_EQ(fast.measureRefs, 25000u);
    unsetenv("LAPSIM_FAST");
}

TEST(Simulator, MpkiMatchesCounts)
{
    const auto specs = std::vector<WorkloadSpec>{
        spec2006Benchmark("mcf"), spec2006Benchmark("mcf")};
    SimConfig cfg = tinySimConfig();
    const Metrics m = Simulator(cfg).run(specs);
    EXPECT_NEAR(m.llcMpki,
                1000.0 * static_cast<double>(m.llcMisses)
                    / static_cast<double>(m.instructions),
                1e-9);
}

} // namespace
} // namespace lap
