/**
 * @file
 * Fabric protocol fuzzing: randomized corruption of valid frames.
 *
 * Every round builds a valid frame for a random message, then
 * mutates it — truncation at an arbitrary offset, single-bit flips,
 * byte-range scrambles, length-field inflation — and asserts that
 * decodeFrame() either (a) still yields the original message (the
 * mutation happened to be a no-op, e.g. flipping a bit back) or (b)
 * rejects it through lap_fatal with a non-empty diagnostic. No
 * decode may crash, over-read (CI runs this suite under
 * ASan/UBSan), or silently return a *different* message than was
 * encoded: the CRC trailer makes payload corruption detectable and
 * the header validators bound everything else.
 *
 * Seeds are fixed (lap::Rng) so every failure reproduces exactly.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "fabric/protocol.hh"

using namespace lap;
using namespace lap::fabric;

namespace
{

/** Builds one valid frame for a random message shape. */
std::string
randomValidFrame(Rng &rng)
{
    ByteWriter out;
    const std::uint64_t pick = rng.below(6);
    MsgType type = MsgType::ClientHello;
    switch (pick) {
      case 0: {
        HelloMsg msg;
        msg.name = "fuzz-" + std::to_string(rng.below(1000));
        msg.encode(out);
        type = rng.chance(0.5) ? MsgType::ClientHello
                               : MsgType::WorkerHello;
        break;
      }
      case 1: {
        SubmitMsg msg;
        msg.specText = "name fuzz\nmix WL1\npolicies lap\n";
        const std::uint64_t hashes = rng.below(4);
        for (std::uint64_t i = 0; i < hashes; ++i)
            msg.doneHashes.push_back(
                std::string(16, static_cast<char>('a' + i)));
        msg.checkpointEvery = rng.next();
        msg.encode(out);
        type = MsgType::Submit;
        break;
      }
      case 2: {
        AssignMsg msg;
        msg.campaignId = rng.next();
        msg.jobIndex = rng.below(64);
        msg.jobHash = "0123456789abcdef";
        msg.specText = "name fuzz\nmix WH1\n";
        msg.checkpointEvery = rng.below(10'000);
        // Binary blob with every byte value represented.
        msg.checkpointBlob.resize(rng.below(512));
        for (char &ch : msg.checkpointBlob)
            ch = static_cast<char>(rng.below(256));
        msg.encode(out);
        type = MsgType::Assign;
        break;
      }
      case 3: {
        ResultMsg msg;
        msg.campaignId = rng.next();
        msg.jobIndex = rng.below(64);
        msg.status = rng.chance(0.9) ? 0 : 1;
        if (msg.status == 1)
            msg.error = "synthetic failure";
        msg.wallMs = rng.uniform() * 1e4;
        const std::uint64_t n = rng.below(6);
        for (std::uint64_t i = 0; i < n; ++i)
            msg.rows.push_back("{\"type\":\"epoch\",\"n\":\""
                               + std::to_string(i) + "\"}");
        msg.encode(out);
        type = MsgType::Result;
        break;
      }
      case 4: {
        HeartbeatMsg msg;
        msg.campaignId = rng.next();
        msg.jobIndex = rng.below(64);
        msg.checkpointBlob.resize(rng.below(256));
        for (char &ch : msg.checkpointBlob)
            ch = static_cast<char>(rng.below(256));
        msg.encode(out);
        type = MsgType::Heartbeat;
        break;
      }
      default: {
        CampaignDoneMsg msg;
        msg.campaignId = rng.next();
        msg.ok = rng.below(100);
        msg.failed = rng.below(4);
        msg.summary = std::string(rng.below(200), '=');
        msg.encode(out);
        type = MsgType::CampaignDone;
        break;
      }
    }
    return encodeFrame(type, out);
}

/**
 * Result of one decode attempt: accepted (with the decoded bytes for
 * comparison) or rejected with a diagnostic.
 */
struct DecodeOutcome
{
    bool accepted = false;
    std::string diagnostic;
    MsgType type = MsgType::Error;
    std::string payload;
};

DecodeOutcome
tryDecode(const std::string &bytes)
{
    DecodeOutcome outcome;
    try {
        const ScopedFatalThrow guard;
        const Frame frame = decodeFrame(bytes);
        outcome.accepted = true;
        outcome.type = frame.type;
        outcome.payload = frame.payload;
    } catch (const FatalError &err) {
        outcome.diagnostic = err.what();
    }
    return outcome;
}

} // namespace

TEST(FabricFuzz, TruncationsNeverCrashAndNeverPassAsDifferent)
{
    Rng rng(0x1a9f'0001);
    for (int round = 0; round < 400; ++round) {
        const std::string valid = randomValidFrame(rng);
        const DecodeOutcome golden = tryDecode(valid);
        ASSERT_TRUE(golden.accepted);

        // Cut at every kind of boundary: inside the header, at the
        // payload edge, inside the CRC trailer.
        const std::size_t cut = rng.below(valid.size());
        const std::string cut_bytes = valid.substr(0, cut);
        const DecodeOutcome outcome = tryDecode(cut_bytes);
        // A truncated frame can never be accepted: the total length
        // check sees fewer bytes than the header declares.
        EXPECT_FALSE(outcome.accepted)
            << "round " << round << " cut " << cut;
        EXPECT_FALSE(outcome.diagnostic.empty());
    }
}

TEST(FabricFuzz, SingleBitFlipsAreDetectedOrHarmless)
{
    Rng rng(0x1a9f'0002);
    int rejected = 0;
    const int rounds = 400;
    for (int round = 0; round < rounds; ++round) {
        const std::string valid = randomValidFrame(rng);
        const DecodeOutcome golden = tryDecode(valid);
        ASSERT_TRUE(golden.accepted);

        std::string bytes = valid;
        const std::size_t at = rng.below(bytes.size());
        bytes[at] = static_cast<char>(
            bytes[at] ^ (1u << rng.below(8)));
        const DecodeOutcome outcome = tryDecode(bytes);
        if (outcome.accepted) {
            // Only tolerable acceptance: flips confined to the type
            // byte can rename a frame to another *valid* type while
            // the CRC (payload-only) still passes. The payload must
            // be byte-identical; anything else slipped corruption
            // through.
            EXPECT_EQ(outcome.payload, golden.payload)
                << "round " << round << " offset " << at;
        } else {
            EXPECT_FALSE(outcome.diagnostic.empty());
            rejected++;
        }
    }
    // The vast majority of flips must be caught (header validators
    // or CRC); a sliver landing in the type byte may re-label.
    EXPECT_GT(rejected, rounds * 8 / 10);
}

TEST(FabricFuzz, PayloadScramblesAlwaysFailTheCrc)
{
    Rng rng(0x1a9f'0003);
    for (int round = 0; round < 300; ++round) {
        std::string bytes = randomValidFrame(rng);
        const std::size_t payload_size =
            bytes.size() - kFrameHeaderBytes - kFrameTrailerBytes;
        if (payload_size == 0)
            continue;
        // Rewrite a random span of the payload with random bytes,
        // guaranteeing at least one byte actually changes.
        const std::size_t begin =
            kFrameHeaderBytes + rng.below(payload_size);
        const std::size_t len = 1
            + rng.below(bytes.size() - kFrameTrailerBytes - begin);
        bool changed = false;
        for (std::size_t i = 0; i < len; ++i) {
            const char fresh = static_cast<char>(rng.below(256));
            changed = changed || fresh != bytes[begin + i];
            bytes[begin + i] = fresh;
        }
        if (!changed)
            bytes[begin] = static_cast<char>(bytes[begin] ^ 0xff);

        const DecodeOutcome outcome = tryDecode(bytes);
        EXPECT_FALSE(outcome.accepted) << "round " << round;
        EXPECT_NE(outcome.diagnostic.find("CRC"), std::string::npos)
            << outcome.diagnostic;
    }
}

TEST(FabricFuzz, LengthFieldInflationIsBounded)
{
    Rng rng(0x1a9f'0004);
    for (int round = 0; round < 200; ++round) {
        std::string bytes = randomValidFrame(rng);
        // Replace the u32 size field with a random value.
        const std::uint32_t fake =
            static_cast<std::uint32_t>(rng.next());
        for (int i = 0; i < 4; ++i)
            bytes[6 + i] =
                static_cast<char>((fake >> (8 * i)) & 0xff);
        const DecodeOutcome outcome = tryDecode(bytes);
        // Either the bound check fires (oversized), the total-length
        // check fires (mismatch), or — with ~2^-32 luck — the fake
        // equals the real size and the frame stays intact. Never a
        // crash, never an over-read.
        if (outcome.accepted)
            EXPECT_EQ(fake + kFrameHeaderBytes + kFrameTrailerBytes,
                      bytes.size());
        else
            EXPECT_FALSE(outcome.diagnostic.empty());
    }
}

TEST(FabricFuzz, RandomGarbageIsRejected)
{
    Rng rng(0x1a9f'0005);
    for (int round = 0; round < 400; ++round) {
        std::string bytes(rng.below(256), '\0');
        for (char &ch : bytes)
            ch = static_cast<char>(rng.below(256));
        const DecodeOutcome outcome = tryDecode(bytes);
        // 4 magic bytes + version make accidental acceptance
        // essentially impossible; random garbage must be refused
        // with a diagnostic, not crash.
        EXPECT_FALSE(outcome.accepted) << "round " << round;
        EXPECT_FALSE(outcome.diagnostic.empty());
    }
}

TEST(FabricFuzz, MessageDecodersRejectTruncatedPayloads)
{
    // Below the frame layer: feed each structured decoder a prefix
    // of its own valid payload. Every cut must fatal cleanly
    // (ByteReader bounds checks), never crash or accept.
    Rng rng(0x1a9f'0006);
    for (int round = 0; round < 200; ++round) {
        AssignMsg msg;
        msg.campaignId = rng.next();
        msg.jobIndex = rng.below(64);
        msg.jobHash = "0123456789abcdef";
        msg.specText = "name fuzz\nmix WL1\n";
        msg.checkpointBlob.assign(rng.below(128), 'b');
        ByteWriter out;
        msg.encode(out);
        const std::string payload = out.data();
        const std::size_t cut = rng.below(payload.size());
        bool accepted = false;
        try {
            const ScopedFatalThrow guard;
            ByteReader in(payload.data(), cut);
            AssignMsg::decode(in);
            accepted = true;
        } catch (const FatalError &) {
        }
        EXPECT_FALSE(accepted) << "cut " << cut;
    }
}
