/**
 * @file
 * Tests for the Lhybrid data placement and its ablation stages
 * (paper Fig 11 / Fig 25): Winv redirection, SRAM->STT loop-block
 * migration, region-steering, and end-to-end residency.
 */

#include <gtest/gtest.h>

#include "cache/inspector.hh"
#include "core/hybrid_placement.hh"
#include "test_util.hh"

namespace lap
{
namespace
{

using test::readBlock;
using test::tinyHierarchy;
using test::tinyHybridParams;
using test::writeBlock;

CacheParams
hybridCacheParams()
{
    CacheParams p;
    p.name = "hllc";
    p.sizeBytes = 4096; // 16 sets x 4 ways
    p.assoc = 4;
    p.sramWays = 1;
    p.writeLatency = 8;
    p.sttWriteLatency = 33;
    return p;
}

Addr
set0Block(std::uint64_t i)
{
    return i * 16;
}

TEST(Lhybrid, FactoriesExposeStages)
{
    EXPECT_EQ(LhybridPlacement::lhybrid()->name(), "Lhybrid");
    EXPECT_EQ(LhybridPlacement::winvOnly()->name(), "LAP+Winv");
    EXPECT_EQ(LhybridPlacement::loopSttOnly()->name(), "LAP+LoopSTT");
    EXPECT_EQ(LhybridPlacement::nloopSramOnly()->name(),
              "LAP+NloopSRAM");
    const auto full = LhybridPlacement::lhybrid();
    EXPECT_TRUE(full->flags().winv);
    EXPECT_TRUE(full->flags().loopToStt);
    EXPECT_TRUE(full->flags().nloopToSram);
}

TEST(Lhybrid, InsertTargetsSramFirst)
{
    Cache llc(hybridCacheParams());
    auto placement = LhybridPlacement::lhybrid();
    const auto out = placement->insert(llc, set0Block(0), {});
    EXPECT_EQ(out.writeRegion, MemTech::SRAM);
    EXPECT_EQ(llc.wayTech(llc.probe(set0Block(0)).way()),
              MemTech::SRAM);
}

TEST(Lhybrid, SramPressureMigratesMruLoopBlock)
{
    // Fig 11(b): SRAM full with a loop-block; inserting a new block
    // migrates the MRU loop-block to STT-RAM.
    Cache llc(hybridCacheParams());
    auto placement = LhybridPlacement::lhybrid();
    Cache::InsertAttrs loop;
    loop.loopBit = true;
    placement->insert(llc, set0Block(0), loop); // SRAM way occupied

    const auto out = placement->insert(llc, set0Block(1), {});
    EXPECT_EQ(out.migrations, 1u);
    EXPECT_FALSE(out.eviction.valid); // nothing left the cache
    // Loop-block now in STT, incoming block in SRAM.
    BlockView migrated = llc.probe(set0Block(0));
    ASSERT_TRUE(migrated);
    EXPECT_EQ(llc.wayTech(migrated.way()), MemTech::STTRAM);
    EXPECT_TRUE(migrated.loopBit());
    BlockView incoming = llc.probe(set0Block(1));
    EXPECT_EQ(llc.wayTech(incoming.way()), MemTech::SRAM);
}

TEST(Lhybrid, IncomingLoopBlockGoesToSttWhenSramHasNone)
{
    Cache llc(hybridCacheParams());
    auto placement = LhybridPlacement::lhybrid();
    placement->insert(llc, set0Block(0), {}); // non-loop in SRAM

    Cache::InsertAttrs loop;
    loop.loopBit = true;
    const auto out = placement->insert(llc, set0Block(1), loop);
    EXPECT_EQ(out.writeRegion, MemTech::STTRAM);
    EXPECT_EQ(out.migrations, 0u);
    EXPECT_EQ(llc.wayTech(llc.probe(set0Block(1)).way()),
              MemTech::STTRAM);
}

TEST(Lhybrid, NoLoopBlocksEvictsSramLruWhenSttFull)
{
    // Fig 11(c): SRAM and STT full of non-loop blocks and a
    // non-loop incoming block: the SRAM LRU block leaves the cache.
    Cache llc(hybridCacheParams());
    auto placement = LhybridPlacement::lhybrid();
    llc.insert(set0Block(10), {}, 1, Cache::kAllWays);
    llc.insert(set0Block(11), {}, 1, Cache::kAllWays);
    llc.insert(set0Block(12), {}, 1, Cache::kAllWays);
    placement->insert(llc, set0Block(0), {});
    const auto out = placement->insert(llc, set0Block(1), {});
    EXPECT_TRUE(out.eviction.valid);
    EXPECT_EQ(out.eviction.blockAddr, set0Block(0));
    EXPECT_EQ(out.migrations, 0u);
    EXPECT_FALSE(llc.probe(set0Block(0)));
}

TEST(Lhybrid, DisplacedSramBlockUsesInvalidSttEntry)
{
    // With spare STT capacity the displaced SRAM block migrates
    // instead of leaving the cache.
    Cache llc(hybridCacheParams());
    auto placement = LhybridPlacement::lhybrid();
    placement->insert(llc, set0Block(0), {});
    const auto out = placement->insert(llc, set0Block(1), {});
    EXPECT_FALSE(out.eviction.valid);
    EXPECT_EQ(out.migrations, 1u);
    BlockView moved = llc.probe(set0Block(0));
    ASSERT_TRUE(moved);
    EXPECT_EQ(llc.wayTech(moved.way()), MemTech::STTRAM);
}

TEST(Lhybrid, SttVictimSelectionIsLoopAware)
{
    // Fill STT ways with loop + non-loop blocks; the STT victim
    // must be the LRU non-loop block.
    Cache llc(hybridCacheParams());
    auto placement = LhybridPlacement::lhybrid();
    Cache::InsertAttrs loop;
    loop.loopBit = true;
    // Directly fill the three STT ways: oldest is a non-loop block.
    llc.insert(set0Block(10), {}, 1, Cache::kAllWays);
    llc.insert(set0Block(11), loop, 1, Cache::kAllWays);
    llc.insert(set0Block(12), loop, 1, Cache::kAllWays);
    // SRAM holds a loop block; a new insert migrates it into STT.
    placement->insert(llc, set0Block(0), loop);
    const auto out = placement->insert(llc, set0Block(1), {});
    EXPECT_EQ(out.migrations, 1u);
    ASSERT_TRUE(out.eviction.valid);
    EXPECT_EQ(out.eviction.blockAddr, set0Block(10)); // non-loop LRU
}

TEST(Lhybrid, WinvRedirectsDirtyHitFromSttToSram)
{
    Cache llc(hybridCacheParams());
    auto placement = LhybridPlacement::winvOnly();
    // Duplicate lives in STT.
    llc.insert(set0Block(3), {}, 1, Cache::kAllWays);
    BlockView dup = llc.probe(set0Block(3));
    ASSERT_TRUE(dup);

    Cache::InsertAttrs dirty;
    dirty.dirty = true;
    dirty.version = 9;
    PlacementOutcome out;
    ASSERT_TRUE(placement->handleDirtyVictimHit(llc, dup, dirty, out));
    EXPECT_EQ(out.writeRegion, MemTech::SRAM);
    BlockView moved = llc.probe(set0Block(3));
    ASSERT_TRUE(moved);
    EXPECT_EQ(llc.wayTech(moved.way()), MemTech::SRAM);
    EXPECT_TRUE(moved.dirty());
    EXPECT_EQ(moved.version(), 9u);
}

TEST(Lhybrid, WinvLeavesSramDuplicatesAlone)
{
    Cache llc(hybridCacheParams());
    auto placement = LhybridPlacement::winvOnly();
    llc.insert(set0Block(3), {}, 0, 1); // SRAM duplicate
    BlockView dup = llc.probe(set0Block(3));
    PlacementOutcome out;
    EXPECT_FALSE(placement->handleDirtyVictimHit(llc, dup, {}, out));
}

TEST(Lhybrid, LoopSttOnlySteersLoopBlocks)
{
    Cache llc(hybridCacheParams());
    auto placement = LhybridPlacement::loopSttOnly();
    Cache::InsertAttrs loop;
    loop.loopBit = true;
    placement->insert(llc, set0Block(0), loop);
    EXPECT_EQ(llc.wayTech(llc.probe(set0Block(0)).way()),
              MemTech::STTRAM);
    // Non-loop blocks use the whole set (uniform).
    const auto out = placement->insert(llc, set0Block(1), {});
    EXPECT_FALSE(out.eviction.valid);
}

TEST(Lhybrid, NloopSramOnlySteersNonLoopBlocks)
{
    Cache llc(hybridCacheParams());
    auto placement = LhybridPlacement::nloopSramOnly();
    placement->insert(llc, set0Block(0), {});
    EXPECT_EQ(llc.wayTech(llc.probe(set0Block(0)).way()),
              MemTech::SRAM);
    // With the single SRAM way full but STT capacity spare, the
    // displaced block spills into STT; once STT is also full the
    // SRAM LRU is evicted outright (no loop migration here).
    llc.insert(set0Block(10), {}, 1, Cache::kAllWays);
    llc.insert(set0Block(11), {}, 1, Cache::kAllWays);
    llc.insert(set0Block(12), {}, 1, Cache::kAllWays);
    const auto out = placement->insert(llc, set0Block(1), {});
    EXPECT_TRUE(out.eviction.valid);
    EXPECT_EQ(out.eviction.blockAddr, set0Block(0));
}

TEST(Lhybrid, UniformCacheFallsBackToDefault)
{
    CacheParams p = hybridCacheParams();
    p.sramWays = 0;
    p.dataTech = MemTech::STTRAM;
    Cache llc(p);
    auto placement = LhybridPlacement::lhybrid();
    const auto out = placement->insert(llc, set0Block(0), {});
    EXPECT_FALSE(out.eviction.valid);
    EXPECT_EQ(out.migrations, 0u);
}

// --- End-to-end residency through the hierarchy ------------------------

TEST(LhybridEndToEnd, LoopBlocksConcentrateInStt)
{
    auto h = tinyHierarchy(PolicyKind::Lap, tinyHybridParams(),
                           LhybridPlacement::lhybrid());
    // Cyclic read loop larger than L2 (2KB), nearly filling the LLC
    // (8KB): produces loop-blocks cycling through the LLC with
    // enough insertion pressure to exercise SRAM->STT migration.
    for (int pass = 0; pass < 16; ++pass) {
        for (std::uint64_t blk = 0; blk < 96; ++blk)
            readBlock(*h, 0, blk);
    }
    std::uint64_t loop_stt = 0, loop_sram = 0;
    auto &llc = h->llc();
    CacheInspector(llc).forEachValid([&](const BlockInfo &blk) {
        if (!blk.loopBit)
            return;
        if (llc.wayTech(blk.way) == MemTech::STTRAM)
            loop_stt++;
        else
            loop_sram++;
    });
    EXPECT_GT(loop_stt, loop_sram);
    EXPECT_GT(h->stats().llcWritesMigration, 0u);
}

TEST(LhybridEndToEnd, WriteHeavyBlocksLandInSram)
{
    auto h = tinyHierarchy(PolicyKind::Lap, tinyHybridParams(),
                           LhybridPlacement::lhybrid());
    Rng rng(3);
    // Write-intensive working set cycling through L2.
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t blk = rng.below(96);
        if (rng.chance(0.6))
            writeBlock(*h, 0, blk);
        else
            readBlock(*h, 0, blk);
    }
    const auto &ls = h->llc().stats();
    // The SRAM region (1 of 4 ways) should absorb a disproportionate
    // share of LLC data writes.
    EXPECT_GT(ls.dataWrites[0], ls.dataWrites[1]);
}

TEST(LhybridEndToEnd, AllPlacementsPreserveDataIntegrity)
{
    const auto make_placements = [] {
        std::vector<std::unique_ptr<PlacementPolicy>> v;
        v.push_back(std::make_unique<DefaultPlacement>());
        v.push_back(LhybridPlacement::winvOnly());
        v.push_back(LhybridPlacement::loopSttOnly());
        v.push_back(LhybridPlacement::nloopSramOnly());
        v.push_back(LhybridPlacement::lhybrid());
        return v;
    };
    for (auto &placement : make_placements()) {
        auto h = tinyHierarchy(PolicyKind::Lap, tinyHybridParams(),
                               std::move(placement));
        Rng rng(17);
        for (int i = 0; i < 30000; ++i) {
            const std::uint64_t blk = rng.below(256);
            // Verifier panics on stale/lost data.
            if (rng.chance(0.4))
                writeBlock(*h, 0, blk);
            else
                readBlock(*h, 0, blk);
        }
    }
}

} // namespace
} // namespace lap
