/**
 * @file
 * LAPTR1 trace-format battery: round-trip fidelity, capture-time
 * range enforcement, replay-cursor checkpointing, stressor
 * determinism — and the corruption half: malformed, truncated and
 * corrupted trace files must be refused with a *specific* diagnostic
 * and must never crash, over-read or allocate absurd amounts — CI
 * runs this suite under ASan/UBSan.
 *
 * Covers every fault the reader distinguishes: unreadable path,
 * header- and record-level truncation, foreign magic, unsupported
 * schema version, nonzero reserved bytes, zero/absurd core counts,
 * header claims the file cannot hold (including multi-GB claims,
 * which must be rejected by bounded arithmetic, not by attempting the
 * allocation), CRC failure, and the semantic faults (no records at
 * all, an empty per-core stream). Also checks the ordering contract
 * shared with the checkpoint reader: structural faults report before
 * the CRC, corruption reports before semantic complaints.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <unistd.h>

#include "common/crc32.hh"
#include "common/logging.hh"
#include "trace/format.hh"
#include "trace/reader.hh"
#include "trace/replay.hh"
#include "trace/resolve.hh"
#include "trace/stressors.hh"

namespace lap
{
namespace
{

/** Two-core fixture trace; small but multi-stream. */
TraceData
fixtureData()
{
    return buildStressorTrace("gups", 2, 50, 7);
}

void
writeAll(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

/** Attempts to open @p path and returns the fatal diagnostic. */
std::string
rejectionMessage(const std::string &path)
{
    try {
        const ScopedFatalThrow guard;
        const TraceReader reader(path);
    } catch (const FatalError &err) {
        return err.what();
    }
    return "";
}

/** Little-endian stores into a raw file image. */
void
putU32(std::string &b, std::size_t offset, std::uint32_t value)
{
    for (std::size_t i = 0; i < 4; ++i)
        b[offset + i] =
            static_cast<char>((value >> (8 * i)) & 0xff);
}

void
putU64(std::string &b, std::size_t offset, std::uint64_t value)
{
    for (std::size_t i = 0; i < 8; ++i)
        b[offset + i] =
            static_cast<char>((value >> (8 * i)) & 0xff);
}

/** Recomputes the CRC footer after a deliberate header edit, so the
 *  test reaches the check *behind* the CRC. */
void
sealCrc(std::string &b)
{
    const std::uint32_t crc =
        crc32(b.data() + kTraceMagicBytes,
              b.size() - kTraceMagicBytes - kTraceCrcBytes);
    putU32(b, b.size() - kTraceCrcBytes, crc);
}

class TraceCorruption : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        data_ = fixtureData();
        bytes_ = encodeTrace(data_);
        // Fixed header (16) + 2x count + 2x mlp = 48 for two cores.
        ASSERT_EQ(traceHeaderBytes(2), 48u);
        ASSERT_EQ(bytes_.size(),
                  48 + 100 * kTraceRecordBytes + kTraceCrcBytes);
        writeAll(path_, bytes_);
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
    }

    /** Rewrites the file as a mutated copy of the valid image. */
    void
    mutate(const std::function<void(std::string &)> &edit)
    {
        std::string copy = bytes_;
        edit(copy);
        writeAll(path_, copy);
    }

    TraceData data_;
    /** Unique per process: parallel ctest runs several suites from
     *  the same working directory, so a fixed relative name races. */
    std::string path_ = "/tmp/lapsim_trace_corruption_"
        + std::to_string(::getpid()) + ".laptr";
    std::string bytes_;
};

TEST_F(TraceCorruption, ValidFileRoundTrips)
{
    const TraceReader reader(path_);
    ASSERT_EQ(reader.coreCount(), 2u);
    for (std::uint32_t c = 0; c < 2; ++c) {
        ASSERT_EQ(reader.recordCount(c), 50u);
        EXPECT_DOUBLE_EQ(reader.coreMlp(c), data_.coreMlp[c]);
        for (std::uint64_t i = 0; i < 50; ++i) {
            const TraceRecord want = data_.cores[c][i];
            const TraceRecord got = reader.record(c, i);
            ASSERT_EQ(got.addr, want.addr) << c << ":" << i;
            ASSERT_EQ(got.site, want.site);
            ASSERT_EQ(got.gapInstrs, want.gapInstrs);
            ASSERT_EQ(got.coreId, want.coreId);
            ASSERT_EQ(got.isStore, want.isStore);
        }
    }
}

/** File and in-memory stores of the same data agree on the content
 *  CRC — that identity is what replay-cursor checkpoints pin. */
TEST_F(TraceCorruption, MemoryStoreCrcMatchesFileCrc)
{
    const TraceReader reader(path_);
    const MemoryTraceStore memory(fixtureData(), "fixture");
    EXPECT_EQ(reader.contentCrc(), memory.contentCrc());
}

TEST_F(TraceCorruption, MissingFileIsUnreadable)
{
    const std::string msg =
        rejectionMessage("/tmp/no_such_trace.laptr");
    EXPECT_NE(msg.find("cannot open trace"), std::string::npos)
        << msg;
}

TEST_F(TraceCorruption, HeaderTruncationIsReported)
{
    // Every cut inside the fixed frame yields the same diagnostic:
    // not even the magic can be trusted at these sizes.
    for (const std::size_t cut : {std::size_t{0}, std::size_t{3},
                                  std::size_t{10}, std::size_t{19}}) {
        mutate([cut](std::string &b) { b.resize(cut); });
        const std::string msg = rejectionMessage(path_);
        EXPECT_NE(msg.find("is truncated"), std::string::npos)
            << "cut=" << cut << ": " << msg;
        EXPECT_NE(msg.find("fixed header"), std::string::npos)
            << "cut=" << cut << ": " << msg;
    }
}

TEST_F(TraceCorruption, PerCoreHeaderTruncationIsReported)
{
    // Large enough for the fixed frame, too small for the two-core
    // count/mlp tables it declares.
    mutate([](std::string &b) { b.resize(30); });
    const std::string msg = rejectionMessage(path_);
    EXPECT_NE(msg.find("2-core header alone needs"),
              std::string::npos)
        << msg;
}

TEST_F(TraceCorruption, MidRecordTruncationIsReported)
{
    mutate([](std::string &b) { b.resize(b.size() - 8); });
    const std::string msg = rejectionMessage(path_);
    EXPECT_NE(msg.find("truncated mid-record"), std::string::npos)
        << msg;
}

TEST_F(TraceCorruption, WholeRecordTruncationIsReported)
{
    // A clean 16-byte cut keeps the region well-formed but leaves
    // fewer records than the header claims.
    mutate([](std::string &b) { b.resize(b.size() - 16); });
    const std::string msg = rejectionMessage(path_);
    EXPECT_NE(msg.find("but the file holds"), std::string::npos)
        << msg;
}

TEST_F(TraceCorruption, TrailingGarbageIsReported)
{
    mutate([](std::string &b) { b.append(16, '\0'); });
    const std::string msg = rejectionMessage(path_);
    EXPECT_NE(msg.find("declares 100 records but the file holds "
                       "101"),
              std::string::npos)
        << msg;
}

TEST_F(TraceCorruption, ForeignMagicIsReported)
{
    mutate([](std::string &b) { b[0] = 'X'; });
    const std::string msg = rejectionMessage(path_);
    EXPECT_NE(msg.find("is not a lapsim trace"), std::string::npos)
        << msg;
}

TEST_F(TraceCorruption, UnsupportedVersionIsReported)
{
    // The schema version is the little-endian u16 after the magic.
    mutate([](std::string &b) { b[6] = static_cast<char>(0x7f); });
    const std::string msg = rejectionMessage(path_);
    EXPECT_NE(msg.find("has schema version"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("regenerate or convert"), std::string::npos)
        << msg;
}

TEST_F(TraceCorruption, NonzeroReservedBytesAreReported)
{
    mutate([](std::string &b) {
        b[12] = 1;
        sealCrc(b);
    });
    const std::string msg = rejectionMessage(path_);
    EXPECT_NE(msg.find("nonzero reserved"), std::string::npos)
        << msg;
}

TEST_F(TraceCorruption, ZeroCoreClaimIsReported)
{
    mutate([](std::string &b) {
        putU32(b, 8, 0);
        sealCrc(b);
    });
    const std::string msg = rejectionMessage(path_);
    EXPECT_NE(msg.find("declares zero cores"), std::string::npos)
        << msg;
}

TEST_F(TraceCorruption, AbsurdCoreClaimIsReported)
{
    mutate([](std::string &b) {
        putU32(b, 8, 100'000);
        sealCrc(b);
    });
    const std::string msg = rejectionMessage(path_);
    EXPECT_NE(msg.find("declares 100000 cores"), std::string::npos)
        << msg;
}

/** A header claiming multi-GB streams in a tiny file must be refused
 *  by arithmetic alone — no overflow, no attempted allocation (ASan
 *  would flag either). */
TEST_F(TraceCorruption, MultiGbRecordClaimIsReported)
{
    mutate([](std::string &b) {
        putU64(b, kTraceFixedHeaderBytes, 1ULL << 40);
        sealCrc(b);
    });
    const std::string msg = rejectionMessage(path_);
    EXPECT_NE(msg.find("records for core 0"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("but the file holds only"), std::string::npos)
        << msg;
}

TEST_F(TraceCorruption, FlippedRecordBitFailsCrc)
{
    // Offset 60 lands in core 0's first record, past the header.
    mutate([](std::string &b) {
        b[60] = static_cast<char>(b[60] ^ 0x01);
    });
    const std::string msg = rejectionMessage(path_);
    EXPECT_NE(msg.find("failed its CRC check"), std::string::npos)
        << msg;
}

TEST_F(TraceCorruption, FlippedMlpBitFailsCrc)
{
    // The mlp table (offsets 32..47 here) is not structurally
    // validated, so damage to it must surface as corruption.
    mutate([](std::string &b) {
        b[34] = static_cast<char>(b[34] ^ 0x10);
    });
    const std::string msg = rejectionMessage(path_);
    EXPECT_NE(msg.find("failed its CRC check"), std::string::npos)
        << msg;
}

TEST_F(TraceCorruption, FlippedCrcFooterFailsCrc)
{
    mutate([](std::string &b) {
        b[b.size() - 1] = static_cast<char>(b[b.size() - 1] ^ 0xff);
    });
    const std::string msg = rejectionMessage(path_);
    EXPECT_NE(msg.find("failed its CRC check"), std::string::npos)
        << msg;
}

/** A well-formed, correctly-sealed file whose streams are all empty
 *  is a semantic fault, reported as such (not as corruption). */
TEST_F(TraceCorruption, ZeroRecordFileIsReported)
{
    std::string image(traceHeaderBytes(1) + kTraceCrcBytes, '\0');
    std::memcpy(image.data(), kTraceMagic, kTraceMagicBytes);
    image[6] = static_cast<char>(kTraceSchemaVersion);
    putU32(image, 8, 1); // one core, count 0, mlp 0
    sealCrc(image);
    writeAll(path_, image);
    const std::string msg = rejectionMessage(path_);
    EXPECT_NE(msg.find("contains no records"), std::string::npos)
        << msg;
}

TEST_F(TraceCorruption, EmptyCoreStreamIsReported)
{
    // Shift all 100 records onto core 1 (totals intact, re-sealed):
    // structurally and CRC-wise valid, semantically unusable.
    mutate([](std::string &b) {
        putU64(b, kTraceFixedHeaderBytes, 0);
        putU64(b, kTraceFixedHeaderBytes + 8, 100);
        sealCrc(b);
    });
    const std::string msg = rejectionMessage(path_);
    EXPECT_NE(msg.find("has no records for core 0"),
              std::string::npos)
        << msg;
}

/** Corruption must win over semantics: the same empty-stream edit
 *  without re-sealing reports the CRC failure, so a user never
 *  chases a phantom empty-core problem in a damaged file. */
TEST_F(TraceCorruption, CorruptionReportsCrcNotSemantics)
{
    mutate([](std::string &b) {
        putU64(b, kTraceFixedHeaderBytes, 0);
        putU64(b, kTraceFixedHeaderBytes + 8, 100);
    });
    const std::string msg = rejectionMessage(path_);
    EXPECT_NE(msg.find("failed its CRC check"), std::string::npos)
        << msg;
}

TEST_F(TraceCorruption, AtomicWriteLeavesNoTempFile)
{
    writeTraceFile(path_, data_);
    const TraceReader reader(path_);
    EXPECT_EQ(reader.coreCount(), 2u);
    std::ifstream tmp(path_ + ".tmp");
    EXPECT_FALSE(tmp.good()) << "temp file left behind";
}

// ---------------------------------------------------------------
// Capture-time range enforcement.

TEST(TracePack, RoundTripsThroughMemRef)
{
    MemRef ref;
    ref.addr = 0x1234'5678'9abcULL;
    ref.type = AccessType::Write;
    ref.gapInstrs = 1234;
    ref.site = 99;
    const TraceRecord rec = packRecord(ref, 3);
    EXPECT_EQ(rec.coreId, 3u);
    EXPECT_TRUE(rec.isStore);
    const MemRef back = toMemRef(rec);
    EXPECT_EQ(back.addr, ref.addr);
    EXPECT_EQ(back.type, ref.type);
    EXPECT_EQ(back.gapInstrs, ref.gapInstrs);
    EXPECT_EQ(back.site, ref.site);
}

TEST(TracePack, RefusesGapBeyondFormat)
{
    MemRef ref;
    ref.gapInstrs = 0x1'0000;
    try {
        const ScopedFatalThrow guard;
        packRecord(ref, 0);
        FAIL() << "oversized gap accepted";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("gap"),
                  std::string::npos)
            << err.what();
    }
}

TEST(TracePack, RefusesCoreBeyondFormat)
{
    try {
        const ScopedFatalThrow guard;
        packRecord(MemRef{}, kTraceMaxCores);
        FAIL() << "oversized core id accepted";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("core"),
                  std::string::npos)
            << err.what();
    }
}

TEST(TraceEncode, RefusesUnrepresentableData)
{
    try {
        const ScopedFatalThrow guard;
        encodeTrace(TraceData{});
        FAIL() << "zero-core trace encoded";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("zero cores"),
                  std::string::npos)
            << err.what();
    }

    TraceData empty_stream;
    empty_stream.coreMlp = {1.0};
    empty_stream.cores.resize(1);
    try {
        const ScopedFatalThrow guard;
        encodeTrace(empty_stream);
        FAIL() << "empty stream encoded";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("no records"),
                  std::string::npos)
            << err.what();
    }
}

// ---------------------------------------------------------------
// Replay cursor checkpointing.

TEST(TraceReplay, CursorSaveRestoreResumesExactly)
{
    const auto store = std::make_shared<MemoryTraceStore>(
        fixtureData(), "fixture");
    TraceReplaySource source(store, 1);
    // Advance past one wrap so both cursor and wrap count are
    // non-trivial in the snapshot.
    for (int i = 0; i < 73; ++i)
        source.next();
    EXPECT_EQ(source.wraps(), 1u);

    ByteWriter out;
    source.saveState(out);

    TraceReplaySource resumed(store, 1);
    ByteReader in(out.data());
    resumed.loadState(in);
    in.expectEnd();
    EXPECT_EQ(resumed.cursor(), source.cursor());
    EXPECT_EQ(resumed.wraps(), source.wraps());
    for (int i = 0; i < 100; ++i) {
        const MemRef want = source.next();
        const MemRef got = resumed.next();
        ASSERT_EQ(got.addr, want.addr) << i;
        ASSERT_EQ(got.type, want.type) << i;
        ASSERT_EQ(got.gapInstrs, want.gapInstrs) << i;
    }
}

TEST(TraceReplay, CursorRejectsForeignTraceContent)
{
    const auto store = std::make_shared<MemoryTraceStore>(
        fixtureData(), "fixture");
    TraceReplaySource source(store, 0);
    source.next();
    ByteWriter out;
    source.saveState(out);

    const auto other = std::make_shared<MemoryTraceStore>(
        buildStressorTrace("stencil", 2, 50, 7), "other");
    TraceReplaySource victim(other, 0);
    ByteReader in(out.data());
    try {
        const ScopedFatalThrow guard;
        victim.loadState(in);
        FAIL() << "cursor for different trace content accepted";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("trace content"),
                  std::string::npos)
            << err.what();
    }
}

// ---------------------------------------------------------------
// Stressor generators.

TEST(TraceStressors, GeneratorsAreDeterministic)
{
    for (const std::string &name : stressorNames()) {
        const std::string a =
            encodeTrace(buildStressorTrace(name, 2, 400, 11));
        const std::string b =
            encodeTrace(buildStressorTrace(name, 2, 400, 11));
        EXPECT_EQ(a, b) << name << " is not deterministic";
        const std::string c =
            encodeTrace(buildStressorTrace(name, 2, 400, 12));
        EXPECT_NE(a, c) << name << " ignores its seed";
    }
}

TEST(TraceStressors, EveryStressorFillsItsBudget)
{
    ASSERT_EQ(stressorNames().size(), 5u);
    for (const std::string &name : stressorNames()) {
        const TraceData data = buildStressorTrace(name, 3, 257, 0);
        ASSERT_EQ(data.coreCount(), 3u) << name;
        for (std::uint32_t c = 0; c < 3; ++c) {
            EXPECT_EQ(data.cores[c].size(), 257u)
                << name << " core " << c;
            EXPECT_GT(data.coreMlp[c], 0.0) << name;
        }
        // Streams of different cores must not collide: the address
        // spaces are private, like the synthetic generators'.
        EXPECT_NE(data.cores[0][0].addr, data.cores[1][0].addr)
            << name;
    }
}

TEST(TraceStressors, UnknownNameListsTheValidOnes)
{
    try {
        const ScopedFatalThrow guard;
        buildStressorTrace("bogus", 1, 10, 0);
        FAIL() << "unknown stressor accepted";
    } catch (const FatalError &err) {
        const std::string msg = err.what();
        EXPECT_NE(msg.find("bogus"), std::string::npos) << msg;
        EXPECT_NE(msg.find("gups"), std::string::npos) << msg;
        EXPECT_NE(msg.find("mixed_hot_scan"), std::string::npos)
            << msg;
    }
}

TEST(TraceResolve, SpecDispatchesStressorVsFile)
{
    EXPECT_TRUE(isStressorSpec("stressor:gups"));
    EXPECT_FALSE(isStressorSpec("/tmp/file.laptr"));
    const auto store = openTraceStore("stressor:gups", 2, 30, 5);
    EXPECT_EQ(store->coreCount(), 2u);
    EXPECT_EQ(store->recordCount(0), 30u);
    EXPECT_EQ(store->describe(), "stressor:gups");
}

} // namespace
} // namespace lap
