/**
 * @file
 * lapsim-lint acceptance battery (ctest label "lint").
 *
 * Spawns the lint binary (path injected as LAPSIM_LINT_BIN) over
 * the seeded fixtures in tests/lint/ and asserts the exact
 * diagnostics. Expected findings are derived from the fixtures
 * themselves: every "// SEED: <id>" marker demands exactly one
 * finding with that id on that line, so fixture edits can never
 * drift out of sync with the assertions. The clean-tree test runs
 * the tool over the real src/ and demands zero findings — the
 * repository itself is the ultimate fixture.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <sys/wait.h>

namespace
{

struct LintRun
{
    int exitCode = -1;
    std::string output;
};

/** Runs the lint binary with @p args; captures stdout. */
LintRun
runLint(const std::string &args)
{
    const std::string cmd = std::string(LAPSIM_LINT_BIN) + " " + args
        + " 2>/dev/null";
    LintRun run;
    std::FILE *pipe = popen(cmd.c_str(), "r");
    if (!pipe)
        return run;
    char buf[4096];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), pipe)) > 0)
        run.output.append(buf, got);
    const int status = pclose(pipe);
    if (WIFEXITED(status))
        run.exitCode = WEXITSTATUS(status);
    return run;
}

std::string
fixture(const std::string &name)
{
    return std::string(LAPSIM_LINT_FIXTURES) + "/" + name;
}

/** (line, diagnostic-id) pairs; sorted for comparison. */
using Findings = std::vector<std::pair<int, std::string>>;

/** Parses "file:line:col: error: msg [lapsim-<id>]" output lines
 *  belonging to @p path. */
Findings
parseFindings(const std::string &output, const std::string &path)
{
    Findings found;
    std::istringstream in(output);
    std::string line;
    while (std::getline(in, line)) {
        if (line.compare(0, path.size(), path) != 0)
            continue;
        const std::size_t colon = path.size();
        if (colon >= line.size() || line[colon] != ':')
            continue;
        const int lineno = std::atoi(line.c_str() + colon + 1);
        const std::size_t open = line.rfind("[lapsim-");
        const std::size_t close = line.rfind(']');
        if (open == std::string::npos || close == std::string::npos
            || close < open)
            continue;
        found.emplace_back(
            lineno, line.substr(open + 8, close - open - 8));
    }
    std::sort(found.begin(), found.end());
    return found;
}

/** Reads "// SEED: <id>" markers out of a fixture file. */
Findings
expectedFindings(const std::string &path)
{
    Findings expected;
    std::ifstream in(path);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t at = line.find("// SEED: ");
        if (at == std::string::npos)
            continue;
        std::string id = line.substr(at + 9);
        const std::size_t end = id.find_first_of(" \t");
        if (end != std::string::npos)
            id.erase(end);
        expected.emplace_back(lineno, id);
    }
    std::sort(expected.begin(), expected.end());
    return expected;
}

void
expectSeededFindings(const std::string &name)
{
    const std::string path = fixture(name);
    const Findings expected = expectedFindings(path);
    ASSERT_FALSE(expected.empty())
        << name << " carries no SEED markers";

    const LintRun run = runLint("\"" + path + "\"");
    EXPECT_EQ(run.exitCode, 1) << run.output;
    const Findings actual = parseFindings(run.output, path);
    EXPECT_EQ(actual, expected) << run.output;
}

TEST(Lint, FlagsSeededDeterminismBannedCalls)
{
    expectSeededFindings("fixture_det_banned.cc");
}

TEST(Lint, FlagsSeededUnorderedIterationAndPointerKeys)
{
    expectSeededFindings("fixture_det_unordered.cc");
}

TEST(Lint, FlagsSeededCheckpointViolations)
{
    expectSeededFindings("fixture_ckpt.hh");
}

TEST(Lint, FlagsSeededThreadSafetyViolations)
{
    expectSeededFindings("fixture_thread.hh");
}

TEST(Lint, AllowlistedFixtureIsClean)
{
    const LintRun run =
        runLint("\"" + fixture("fixture_clean.cc") + "\"");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(Lint, CleanTreeHasZeroFindings)
{
    const LintRun run =
        runLint("--src-root \"" LAPSIM_SRC_ROOT "\"");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(Lint, ChecksFlagRestrictsFamilies)
{
    // The checkpoint fixture is clean under the determinism family.
    const LintRun run = runLint("--checks determinism \""
                                + fixture("fixture_ckpt.hh") + "\"");
    EXPECT_EQ(run.exitCode, 0) << run.output;
}

TEST(Lint, ListChecksNamesEveryDiagnostic)
{
    const LintRun run = runLint("--list-checks");
    EXPECT_EQ(run.exitCode, 0);
    for (const char *id :
         {"lapsim-det-banned-call", "lapsim-det-unordered-iteration",
          "lapsim-det-pointer-key", "lapsim-ckpt-unserialized-field",
          "lapsim-ckpt-save-load-asymmetry",
          "lapsim-thread-unguarded-field",
          "lapsim-thread-unknown-guard"})
        EXPECT_NE(run.output.find(id), std::string::npos) << id;
}

TEST(Lint, UnknownOptionIsUsageError)
{
    EXPECT_EQ(runLint("--bogus").exitCode, 2);
}

} // namespace
