/**
 * @file
 * Conservation and observer-freedom tests of the epoch sampler.
 *
 * Two properties anchor the observability subsystem:
 *
 *  1. Observer-freedom: enabling the probes (epoch sampler, heat
 *     map, trace emitter) never changes simulation results. A run
 *     with every probe armed must produce counters and derived
 *     metrics identical to the bare run.
 *
 *  2. Conservation: epoch records hold counter *deltas*, so summing
 *     any counter across all epochs reproduces the end-of-run
 *     aggregate bit-exactly — no transaction is lost at epoch
 *     boundaries or the stats reset between warmup and measure.
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/simulator.hh"
#include "stats/stats_engine.hh"
#include "workloads/mixes.hh"

namespace lap
{
namespace
{

SimConfig
baseConfig()
{
    SimConfig cfg;
    cfg.numCores = 2;
    cfg.l1Size = 4 * 1024;
    cfg.l2Size = 32 * 1024;
    cfg.llcSize = 256 * 1024;
    cfg.warmupRefs = 10'000;
    cfg.measureRefs = 60'000;
    cfg.tuning.epochCycles = 50'000;
    return cfg;
}

/** One finished run, keeping the simulator alive for inspection. */
struct SimRun
{
    std::unique_ptr<Simulator> sim;
    Metrics metrics;
};

SimRun
runWith(const SimConfig &cfg)
{
    SimRun r;
    r.sim = std::make_unique<Simulator>(cfg);
    r.metrics = r.sim->run(resolveMix(duplicateMix("mcf", 2)));
    return r;
}

void
expectIdenticalMetrics(const Metrics &a, const Metrics &b)
{
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.llcHits, b.llcHits);
    EXPECT_EQ(a.llcMisses, b.llcMisses);
    EXPECT_EQ(a.llcWritesFill, b.llcWritesFill);
    EXPECT_EQ(a.llcWritesCleanVictim, b.llcWritesCleanVictim);
    EXPECT_EQ(a.llcWritesDirtyVictim, b.llcWritesDirtyVictim);
    EXPECT_EQ(a.llcWritesMigration, b.llcWritesMigration);
    EXPECT_EQ(a.llcDemandFills, b.llcDemandFills);
    EXPECT_EQ(a.llcDeadFills, b.llcDeadFills);
    EXPECT_EQ(a.snoopMessages, b.snoopMessages);
    EXPECT_EQ(a.dramReads, b.dramReads);
    EXPECT_EQ(a.dramWrites, b.dramWrites);
    // Derived doubles come from identical integer inputs, so they
    // must be bit-identical too — no tolerance.
    EXPECT_EQ(a.throughput, b.throughput);
    EXPECT_EQ(a.epi, b.epi);
    EXPECT_EQ(a.llcMpki, b.llcMpki);
}

class EpochConservation : public ::testing::TestWithParam<PolicyKind>
{
};

TEST_P(EpochConservation, ObserversNeverChangeResults)
{
    SimConfig bare = baseConfig();
    bare.policy = GetParam();
    const Metrics without = runWith(bare).metrics;

    SimConfig observed = bare;
    observed.epochStatsInterval = 7'000; // deliberately unaligned
    observed.heatStats = true;
    const Metrics with = runWith(observed).metrics;

    expectIdenticalMetrics(without, with);
}

TEST_P(EpochConservation, EpochSumsMatchEndOfRunAggregates)
{
    SimConfig cfg = baseConfig();
    cfg.policy = GetParam();
    cfg.epochStatsInterval = 7'000;

    const SimRun run = runWith(cfg);
    Simulator *sim = run.sim.get();
    const Metrics &m = run.metrics;
    ASSERT_NE(sim->statsEngine(), nullptr);
    const EpochSampler *sampler = sim->statsEngine()->sampler();
    ASSERT_NE(sampler, nullptr);
    const auto &records = sampler->records();
    ASSERT_GE(records.size(), 2u) << "expected a multi-epoch run";

    EpochRecord sum;
    std::uint64_t bank_writes = 0;
    for (const EpochRecord &rec : records) {
        sum.demandAccesses += rec.demandAccesses;
        sum.demandReads += rec.demandReads;
        sum.demandWrites += rec.demandWrites;
        sum.l1Hits += rec.l1Hits;
        sum.l2Hits += rec.l2Hits;
        sum.llcHits += rec.llcHits;
        sum.llcMisses += rec.llcMisses;
        sum.llcWritesDataFill += rec.llcWritesDataFill;
        sum.llcWritesCleanVictim += rec.llcWritesCleanVictim;
        sum.llcWritesDirtyVictim += rec.llcWritesDirtyVictim;
        sum.llcWritesMigration += rec.llcWritesMigration;
        sum.llcDemandFills += rec.llcDemandFills;
        sum.llcRedundantFills += rec.llcRedundantFills;
        sum.llcDeadFills += rec.llcDeadFills;
        sum.llcBackInvalidations += rec.llcBackInvalidations;
        sum.llcBypassedWrites += rec.llcBypassedWrites;
        sum.dramReads += rec.dramReads;
        sum.dramWrites += rec.dramWrites;
        sum.snoopMessages += rec.snoopMessages;
        for (std::uint64_t w : rec.bankWrites)
            bank_writes += w;
    }

    const HierarchyStats &hs = sim->hierarchy().stats();
    EXPECT_EQ(sum.demandAccesses, hs.demandAccesses);
    EXPECT_EQ(sum.demandReads, hs.demandReads);
    EXPECT_EQ(sum.demandWrites, hs.demandWrites);
    EXPECT_EQ(sum.l1Hits, hs.l1Hits);
    EXPECT_EQ(sum.l2Hits, hs.l2Hits);
    EXPECT_EQ(sum.llcHits, hs.llcHits);
    EXPECT_EQ(sum.llcMisses, hs.llcMisses);
    EXPECT_EQ(sum.llcWritesDataFill, hs.llcWritesDataFill);
    EXPECT_EQ(sum.llcWritesCleanVictim, hs.llcWritesCleanVictim);
    EXPECT_EQ(sum.llcWritesDirtyVictim, hs.llcWritesDirtyVictim);
    EXPECT_EQ(sum.llcWritesMigration, hs.llcWritesMigration);
    EXPECT_EQ(sum.llcDemandFills, hs.llcDemandFills);
    EXPECT_EQ(sum.llcRedundantFills, hs.llcRedundantFills);
    EXPECT_EQ(sum.llcDeadFills, hs.llcDeadFills);
    EXPECT_EQ(sum.llcBackInvalidations, hs.llcBackInvalidations);
    EXPECT_EQ(sum.llcBypassedWrites, hs.llcBypassedWrites);
    EXPECT_EQ(sum.snoopMessages, hs.snoop.totalMessages());
    EXPECT_EQ(sum.dramReads, sim->hierarchy().dram().stats().reads);
    EXPECT_EQ(sum.dramWrites, sim->hierarchy().dram().stats().writes);

    // Per-bank write pressure partitions total LLC writes too.
    EXPECT_EQ(bank_writes, hs.llcWritesTotal());

    // Cross-check against the extracted Metrics as well.
    EXPECT_EQ(sum.llcHits, m.llcHits);
    EXPECT_EQ(sum.llcMisses, m.llcMisses);
    EXPECT_EQ(sum.llcWritesTotal(), m.llcWritesTotal);
}

TEST_P(EpochConservation, EpochsPartitionTheTransactionStream)
{
    SimConfig cfg = baseConfig();
    cfg.policy = GetParam();
    cfg.epochStatsInterval = 5'000;

    const SimRun run = runWith(cfg);
    const auto &records =
        run.sim->statsEngine()->sampler()->records();
    ASSERT_FALSE(records.empty());

    for (std::size_t i = 0; i < records.size(); ++i) {
        const EpochRecord &rec = records[i];
        EXPECT_EQ(rec.index, i);
        EXPECT_LT(rec.startTxn, rec.endTxn);
        EXPECT_LE(rec.startCycle, rec.endCycle);
        if (i > 0) {
            // Contiguous, gap-free coverage of (startTxn, endTxn].
            EXPECT_EQ(rec.startTxn, records[i - 1].endTxn);
            EXPECT_GE(rec.startCycle, records[i - 1].endCycle);
        }
        // Every epoch but the final partial one spans the interval.
        if (i + 1 < records.size()) {
            EXPECT_EQ(rec.endTxn - rec.startTxn,
                      cfg.epochStatsInterval);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, EpochConservation,
    ::testing::Values(PolicyKind::NonInclusive, PolicyKind::Inclusive,
                      PolicyKind::Exclusive, PolicyKind::Dswitch,
                      PolicyKind::Lap),
    [](const ::testing::TestParamInfo<PolicyKind> &info) {
        switch (info.param) {
          case PolicyKind::Inclusive: return "inclusive";
          case PolicyKind::NonInclusive: return "noni";
          case PolicyKind::Exclusive: return "ex";
          case PolicyKind::Dswitch: return "dswitch";
          case PolicyKind::Lap: return "lap";
          default: return "other";
        }
    });

} // namespace
} // namespace lap
