/**
 * @file
 * Geometry-parameterized property tests for the Cache, and
 * workload-parameterized property tests for all SPEC/PARSEC models
 * (addresses stay inside declared regions, streams are
 * deterministic, effective-capacity behaviour matches theory).
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "cache/cache.hh"
#include "cache/inspector.hh"
#include "test_util.hh"
#include "workloads/parsec.hh"
#include "workloads/spec2006.hh"

namespace lap
{
namespace
{

// --- Cache geometry sweep ----------------------------------------------

using Geometry = std::tuple<std::uint64_t /*size*/, std::uint32_t /*assoc*/,
                            ReplKind>;

class CacheGeometry : public ::testing::TestWithParam<Geometry>
{
  protected:
    Cache
    build() const
    {
        const auto [size, assoc, repl] = GetParam();
        CacheParams p;
        p.sizeBytes = size;
        p.assoc = assoc;
        p.repl = repl;
        p.dataTech = MemTech::STTRAM;
        return Cache(p);
    }
};

TEST_P(CacheGeometry, ContentsNeverExceedCapacity)
{
    Cache c = build();
    const std::uint64_t capacity = c.numSets() * c.assoc();
    Rng rng(1);
    for (int i = 0; i < 5000; ++i) {
        const Addr blk = rng.below(4 * capacity);
        if (!c.probe(blk))
            c.insert(blk, {});
    }
    const std::uint64_t valid = CacheInspector(c).validBlockCount();
    EXPECT_LE(valid, capacity);
    EXPECT_GT(valid, capacity / 2); // heavily exercised
}

TEST_P(CacheGeometry, EveryResidentBlockIsFindable)
{
    Cache c = build();
    Rng rng(2);
    std::set<Addr> inserted;
    for (int i = 0; i < 2000; ++i) {
        const Addr blk = rng.below(1000);
        if (!c.probe(blk))
            c.insert(blk, {});
    }
    CacheInspector(c).forEachValid([&](const BlockInfo &blk) {
        const BlockView found = c.probe(blk.blockAddr);
        ASSERT_TRUE(found);
        EXPECT_EQ(found.set(), blk.set);
        EXPECT_EQ(found.way(), blk.way);
        EXPECT_EQ(c.setIndexOf(blk.blockAddr), blk.set);
    });
}

TEST_P(CacheGeometry, FillsEqualInsertions)
{
    Cache c = build();
    Rng rng(3);
    std::uint64_t insertions = 0;
    for (int i = 0; i < 3000; ++i) {
        const Addr blk = rng.below(2000);
        if (!c.probe(blk)) {
            c.insert(blk, {});
            insertions++;
        }
    }
    EXPECT_EQ(c.stats().fills, insertions);
    EXPECT_EQ(c.stats().evictionsClean + c.stats().evictionsDirty
                  + CacheInspector(c).validBlockCount(),
              insertions);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CacheGeometry,
    ::testing::Values(
        Geometry{1024, 1, ReplKind::Lru},   // direct-mapped
        Geometry{4096, 4, ReplKind::Lru},
        Geometry{4096, 4, ReplKind::Rrip},
        Geometry{4096, 4, ReplKind::Random},
        Geometry{8192, 16, ReplKind::Lru},  // single-set-heavy
        Geometry{12288, 4, ReplKind::Lru},  // non-pow2 sets
        Geometry{12288, 3, ReplKind::Rrip}),
    [](const ::testing::TestParamInfo<Geometry> &info) {
        return "s" + std::to_string(std::get<0>(info.param)) + "_a"
            + std::to_string(std::get<1>(info.param)) + "_"
            + std::string(toString(std::get<2>(info.param)));
    });

// --- Workload model properties ------------------------------------------

class SpecModel : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SpecModel, AddressesStayInsideDeclaredRegions)
{
    const WorkloadSpec spec = spec2006Benchmark(GetParam());
    const Addr base = 1ULL << 40;
    SyntheticTrace trace(spec, 0, base, 1ULL << 50);
    // Region r occupies [base + r*16GB, base + r*16GB + size).
    for (int i = 0; i < 30000; ++i) {
        const Addr addr = trace.next().addr;
        const std::uint64_t region = (addr - base) >> 34;
        ASSERT_LT(region, spec.regions.size());
        const Addr offset = (addr - base) & ((1ULL << 34) - 1);
        ASSERT_LT(offset, spec.regions[region].sizeBytes);
    }
}

TEST_P(SpecModel, WeightsArePlausiblyHonored)
{
    const WorkloadSpec spec = spec2006Benchmark(GetParam());
    const Addr base = 1ULL << 40;
    SyntheticTrace trace(spec, 0, base, 1ULL << 50);
    std::vector<std::uint64_t> hits(spec.regions.size(), 0);
    const int n = 60000;
    for (int i = 0; i < n; ++i) {
        const Addr addr = trace.next().addr;
        hits[(addr - base) >> 34]++;
    }
    double total_weight = 0.0;
    for (const auto &r : spec.regions)
        total_weight += r.weight;
    // Accesses per block visit vary per region, so compare visit
    // shares loosely (within a factor of 2 of the weight share).
    for (std::size_t r = 0; r < spec.regions.size(); ++r) {
        const double expected = spec.regions[r].weight / total_weight;
        const double seen =
            static_cast<double>(hits[r]) / static_cast<double>(n);
        EXPECT_GT(seen, expected * 0.3) << "region " << r;
        EXPECT_LT(seen, expected * 3.0) << "region " << r;
    }
}

INSTANTIATE_TEST_SUITE_P(AllSpec, SpecModel,
                         ::testing::ValuesIn(spec2006Names()));

class ParsecModel : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ParsecModel, SharedRegionsUseSharedBase)
{
    const WorkloadSpec spec = parsecBenchmark(GetParam());
    const Addr base = 1ULL << 40;
    const Addr shared = 1ULL << 50;
    SyntheticTrace trace(spec, 0, base, shared);
    bool saw_shared = false;
    for (int i = 0; i < 50000; ++i) {
        const Addr addr = trace.next().addr;
        if (addr >= shared)
            saw_shared = true;
        else
            ASSERT_GE(addr, base);
    }
    EXPECT_TRUE(saw_shared);
}

INSTANTIATE_TEST_SUITE_P(AllParsec, ParsecModel,
                         ::testing::ValuesIn(parsecNames()));

// --- Effective-capacity theory -------------------------------------------

TEST(EffectiveCapacity, ExclusionExtendsReachBeyondLlcSize)
{
    // A read loop slightly larger than the LLC (8KB = 128 blocks)
    // but within LLC + L2 (2KB = 32 blocks): exclusion can hold it
    // entirely, non-inclusion (duplicates) cannot.
    auto run = [&](PolicyKind kind) {
        auto h = test::tinyHierarchy(kind);
        std::uint64_t misses_last_pass = 0;
        for (int pass = 0; pass < 8; ++pass) {
            const auto before = h->stats().llcMisses;
            for (std::uint64_t blk = 0; blk < 144; ++blk)
                test::readBlock(*h, 0, blk);
            misses_last_pass = h->stats().llcMisses - before;
        }
        return misses_last_pass;
    };
    EXPECT_LT(run(PolicyKind::Exclusive),
              run(PolicyKind::NonInclusive));
}

} // namespace
} // namespace lap
