/**
 * @file
 * Property-based tests: random traffic through every inclusion
 * policy and LLC organisation must preserve data integrity (the
 * verifier panics on stale reads, lost writes, or memory-version
 * regressions) and a set of structural invariants.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/hybrid_placement.hh"
#include "test_util.hh"

namespace lap
{
namespace
{

using test::readBlock;
using test::tinyHierarchy;
using test::tinyHybridParams;
using test::tinyParams;
using test::writeBlock;

enum class LlcShape
{
    UniformStt,
    UniformSram,
    Hybrid,
};

const char *
toString(LlcShape s)
{
    switch (s) {
      case LlcShape::UniformStt: return "stt";
      case LlcShape::UniformSram: return "sram";
      case LlcShape::Hybrid: return "hybrid";
    }
    return "?";
}

using Combo = std::tuple<PolicyKind, LlcShape>;

class PolicyProperty : public ::testing::TestWithParam<Combo>
{
  protected:
    test::TestHierarchy
    build() const
    {
        const auto [kind, shape] = GetParam();
        HierarchyParams hp =
            shape == LlcShape::Hybrid ? tinyHybridParams() : tinyParams();
        // Cores share one address range below, so coherence is on
        // (without it only disjoint per-core spaces are legal).
        hp.coherence = true;
        if (shape == LlcShape::UniformSram) {
            hp.llc.dataTech = MemTech::SRAM;
            hp.llc.writeLatency = 8;
        }
        std::unique_ptr<PlacementPolicy> placement;
        if (shape == LlcShape::Hybrid)
            placement = LhybridPlacement::lhybrid();
        return tinyHierarchy(kind, hp, std::move(placement));
    }
};

TEST_P(PolicyProperty, RandomTrafficPreservesDataIntegrity)
{
    auto h = build();
    Rng rng(1234);
    for (int i = 0; i < 60000; ++i) {
        const CoreId core = static_cast<CoreId>(rng.below(2));
        const std::uint64_t blk = rng.below(400);
        if (rng.chance(0.35))
            writeBlock(*h, core, blk);
        else
            readBlock(*h, core, blk);
    }
    // Re-read everything once more: every value must be the newest.
    for (std::uint64_t blk = 0; blk < 400; ++blk)
        readBlock(*h, 0, blk);
}

TEST_P(PolicyProperty, StatsAreConsistent)
{
    auto h = build();
    Rng rng(99);
    for (int i = 0; i < 30000; ++i) {
        const CoreId core = static_cast<CoreId>(rng.below(2));
        const std::uint64_t blk = rng.below(300);
        if (rng.chance(0.3))
            writeBlock(*h, core, blk);
        else
            readBlock(*h, core, blk);
    }
    const auto &hs = h->stats();
    const auto &ls = h->llc().stats();

    // Demand accesses are partitioned across service levels.
    EXPECT_EQ(hs.demandAccesses,
              hs.l1Hits + hs.l2Hits + hs.llcHits + hs.llcMisses);
    EXPECT_EQ(hs.demandAccesses, hs.demandReads + hs.demandWrites);

    // Every LLC data write is classified exactly once.
    EXPECT_EQ(hs.llcWritesTotal(), ls.dataWrites[0] + ls.dataWrites[1]);

    // Fills at the cache level match classified insertions (in-place
    // dirty updates are not fills).
    EXPECT_LE(ls.fills, hs.llcWritesTotal());

    // Redundant fills can never exceed demand fills.
    EXPECT_LE(hs.llcRedundantFills, hs.llcDemandFills);
    EXPECT_LE(hs.llcDeadFills, hs.llcDemandFills);
}

TEST_P(PolicyProperty, DrainRecoversEveryWrite)
{
    auto h = build();
    Rng rng(7);
    constexpr std::uint64_t kBlocks = 200;
    for (int i = 0; i < 20000; ++i) {
        const CoreId core = static_cast<CoreId>(rng.below(2));
        const std::uint64_t blk = rng.below(kBlocks);
        if (rng.chance(0.5))
            writeBlock(*h, core, blk);
        else
            readBlock(*h, core, blk);
    }
    // Flush both cores; all dirty data funnels toward the LLC.
    h->flushPrivate(0);
    h->flushPrivate(1);
    // Every block must still be readable at its newest version.
    for (std::uint64_t blk = 0; blk < kBlocks; ++blk)
        readBlock(*h, 1, blk);
}

TEST_P(PolicyProperty, NoDuplicateTagsWithinLlc)
{
    auto h = build();
    Rng rng(31);
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t blk = rng.below(256);
        if (rng.chance(0.3))
            writeBlock(*h, 0, blk);
        else
            readBlock(*h, 0, blk);
    }
    auto &llc = h->llc();
    for (std::uint64_t set = 0; set < llc.numSets(); ++set) {
        for (std::uint32_t w1 = 0; w1 < llc.assoc(); ++w1) {
            const BlockView a = llc.blockAt(set, w1);
            if (!a.valid())
                continue;
            for (std::uint32_t w2 = w1 + 1; w2 < llc.assoc(); ++w2) {
                const BlockView b = llc.blockAt(set, w2);
                if (b.valid()) {
                    EXPECT_NE(a.blockAddr(), b.blockAddr());
                }
            }
        }
    }
}

TEST_P(PolicyProperty, DeterministicAcrossRuns)
{
    auto run = [&] {
        auto h = build();
        Rng rng(555);
        for (int i = 0; i < 10000; ++i) {
            const std::uint64_t blk = rng.below(300);
            if (rng.chance(0.4))
                writeBlock(*h, 0, blk);
            else
                readBlock(*h, 0, blk);
        }
        return std::make_tuple(h->stats().llcWritesTotal(),
                               h->stats().llcMisses,
                               h->llc().stats().tagAccesses);
    };
    EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(
    AllPoliciesAndShapes, PolicyProperty,
    ::testing::Combine(
        ::testing::Values(PolicyKind::Inclusive, PolicyKind::NonInclusive,
                          PolicyKind::Exclusive, PolicyKind::Flexclusion,
                          PolicyKind::Dswitch, PolicyKind::LapLru,
                          PolicyKind::LapLoop, PolicyKind::Lap),
        ::testing::Values(LlcShape::UniformStt, LlcShape::UniformSram,
                          LlcShape::Hybrid)),
    [](const ::testing::TestParamInfo<Combo> &info) {
        // Sanitize policy names ("Non-inclusive") into identifiers.
        std::string name = lap::toString(std::get<0>(info.param));
        for (auto &ch : name) {
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        }
        return name + "_" + toString(std::get<1>(info.param));
    });

// LAP-specific behavioural invariants under heavy loop traffic.
TEST(LapProperty, FewerWritesThanBothBaselinesOnLoopTraffic)
{
    auto run = [&](PolicyKind kind) {
        auto h = tinyHierarchy(kind);
        for (int pass = 0; pass < 10; ++pass) {
            for (std::uint64_t blk = 0; blk < 64; ++blk)
                readBlock(*h, 0, blk); // loop working set > L2, < LLC
        }
        return h->stats().llcWritesTotal();
    };
    const auto noni = run(PolicyKind::NonInclusive);
    const auto ex = run(PolicyKind::Exclusive);
    const auto lap = run(PolicyKind::Lap);
    // Pure clean loops: LAP matches non-inclusion's one write per
    // block and avoids exclusion's per-pass re-insertions.
    EXPECT_LE(lap, noni);
    EXPECT_LT(lap, ex);
}

TEST(LapProperty, HalvesWritesOnWriteOnceSweeps)
{
    // Write-allocate sweep: non-inclusion pays fill + dirty update
    // per block (the Fig 5 redundancy); LAP and exclusion pay one.
    auto run = [&](PolicyKind kind) {
        auto h = tinyHierarchy(kind);
        for (std::uint64_t blk = 0; blk < 200; ++blk)
            writeBlock(*h, 0, blk);
        h->flushPrivate(0);
        return h->stats().llcWritesTotal();
    };
    const auto noni = run(PolicyKind::NonInclusive);
    const auto ex = run(PolicyKind::Exclusive);
    const auto lap = run(PolicyKind::Lap);
    EXPECT_EQ(noni, 400u);
    EXPECT_EQ(ex, 200u);
    EXPECT_EQ(lap, 200u);
}

TEST(LapProperty, NeverFillsAndNeverInvalidatesOnHit)
{
    auto h = tinyHierarchy(PolicyKind::Lap);
    Rng rng(77);
    for (int i = 0; i < 30000; ++i) {
        const std::uint64_t blk = rng.below(200);
        if (rng.chance(0.25))
            writeBlock(*h, 0, blk);
        else
            readBlock(*h, 0, blk);
    }
    EXPECT_EQ(h->stats().llcWritesDataFill, 0u);
    EXPECT_EQ(h->stats().llcInvalidationsOnHit, 0u);
}

} // namespace
} // namespace lap
