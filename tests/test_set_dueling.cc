/**
 * @file
 * Unit tests for the set-dueling monitor used by LAP, FLEXclusion
 * and Dswitch.
 */

#include <gtest/gtest.h>

#include "hierarchy/set_dueling.hh"

namespace lap
{
namespace
{

TEST(SetDueling, TeamAssignment)
{
    SetDueling duel(128, 64, 1000);
    EXPECT_EQ(duel.teamOf(0), SetDueling::Team::LeaderA);
    EXPECT_EQ(duel.teamOf(1), SetDueling::Team::LeaderB);
    EXPECT_EQ(duel.teamOf(2), SetDueling::Team::Follower);
    EXPECT_EQ(duel.teamOf(64), SetDueling::Team::LeaderA);
    EXPECT_EQ(duel.teamOf(65), SetDueling::Team::LeaderB);
    EXPECT_EQ(duel.teamOf(127), SetDueling::Team::Follower);
}

TEST(SetDueling, PaperLeaderShare)
{
    // 1/64 of sets per team (paper Section III-B).
    SetDueling duel(8192, 64, 1000);
    int a = 0, b = 0;
    for (std::uint64_t s = 0; s < 8192; ++s) {
        if (duel.teamOf(s) == SetDueling::Team::LeaderA)
            a++;
        else if (duel.teamOf(s) == SetDueling::Team::LeaderB)
            b++;
    }
    EXPECT_EQ(a, 8192 / 64);
    EXPECT_EQ(b, 8192 / 64);
}

TEST(SetDueling, LeadersAlwaysPlayTheirTeam)
{
    SetDueling duel(128, 64, 1000);
    EXPECT_TRUE(duel.choiceIsA(0));
    EXPECT_FALSE(duel.choiceIsA(1));
    // Force B to win; leaders unchanged.
    duel.addCost(0, 100.0);
    duel.evaluateNow();
    EXPECT_FALSE(duel.aWins());
    EXPECT_TRUE(duel.choiceIsA(0));
    EXPECT_FALSE(duel.choiceIsA(1));
    EXPECT_FALSE(duel.choiceIsA(2)); // follower follows B
}

TEST(SetDueling, FollowerCostsIgnored)
{
    SetDueling duel(128, 64, 1000);
    duel.addCost(2, 1e9); // follower set
    duel.evaluateNow();
    EXPECT_EQ(duel.winner(), 0); // unchanged
}

TEST(SetDueling, WinnerIsCheaperTeam)
{
    SetDueling duel(128, 64, 1000);
    duel.addCost(0, 10.0); // team A
    duel.addCost(1, 5.0);  // team B
    duel.evaluateNow();
    EXPECT_EQ(duel.winner(), 1);

    duel.addCost(0, 1.0);
    duel.addCost(1, 2.0);
    duel.evaluateNow();
    EXPECT_EQ(duel.winner(), 0);
}

TEST(SetDueling, EpochRotationOnTick)
{
    SetDueling duel(128, 64, 1000);
    duel.addCost(0, 10.0);
    duel.addCost(1, 1.0);
    duel.tick(999);
    EXPECT_EQ(duel.winner(), 0); // not yet
    duel.tick(1000);
    EXPECT_EQ(duel.winner(), 1);
    EXPECT_EQ(duel.epochsElapsed(), 1u);
    // Counters reset at the boundary.
    EXPECT_DOUBLE_EQ(duel.costA(), 0.0);
    EXPECT_DOUBLE_EQ(duel.costB(), 0.0);
}

TEST(SetDueling, TickSkipsMissedEpochs)
{
    SetDueling duel(128, 64, 1000);
    duel.tick(5500);
    EXPECT_EQ(duel.epochsElapsed(), 1u);
    duel.tick(5999);
    EXPECT_EQ(duel.epochsElapsed(), 1u);
    duel.tick(6000);
    EXPECT_EQ(duel.epochsElapsed(), 2u);
}

TEST(SetDueling, MarginGuardsSwitchToB)
{
    SetDueling duel(128, 64, 1000);
    duel.setMargin(0.10);
    // B better but within the margin: stay with A.
    duel.addCost(0, 100.0);
    duel.addCost(1, 95.0);
    duel.evaluateNow();
    EXPECT_EQ(duel.winner(), 0);
    // B clearly better: switch.
    duel.addCost(0, 100.0);
    duel.addCost(1, 80.0);
    duel.evaluateNow();
    EXPECT_EQ(duel.winner(), 1);
    // Near-tie falls back to A (bandwidth-conserving default).
    duel.addCost(0, 100.0);
    duel.addCost(1, 99.0);
    duel.evaluateNow();
    EXPECT_EQ(duel.winner(), 0);
}

TEST(SetDueling, InitialWinnerConfigurable)
{
    SetDueling duel(128, 64, 1000, /*initial_winner=*/1);
    EXPECT_FALSE(duel.aWins());
    EXPECT_FALSE(duel.choiceIsA(2));
}

TEST(SetDueling, RejectsBadConfig)
{
    EXPECT_DEATH(SetDueling(1, 64, 1000), "");
    EXPECT_DEATH(SetDueling(128, 1, 1000), "");
    EXPECT_DEATH(SetDueling(128, 64, 0), "");
}

} // namespace
} // namespace lap
