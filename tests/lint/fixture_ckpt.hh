// lapsim-lint fixture: seeded checkpoint-completeness violations.
// Never compiled; see test_lint.cc. Exercises both record
// discovery paths: member saveState/loadState pairs and free
// save/load functions over a plain struct.

#include <cstdint>

#include "common/serial.hh"

class FixtureCounter
{
  public:
    void
    saveState(lap::ByteWriter &out) const
    {
        out.u64(hits_);
        out.u64(misses_);
        out.u64(writeOnly_);
    }

    void
    loadState(lap::ByteReader &in)
    {
        hits_ = in.u64();
        misses_ = in.u64();
    }

  private:
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writeOnly_ = 0; // SEED: ckpt-save-load-asymmetry
    std::uint64_t forgotten_ = 0; // SEED: ckpt-unserialized-field
    double scale_ = 1.0; // lapsim-lint: transient (config)
};

struct FixtureRecord
{
    std::uint64_t epoch = 0;
    std::uint64_t txns = 0;
    std::uint64_t dropped = 0; // SEED: ckpt-unserialized-field
    std::uint64_t loadOnly = 0; // SEED: ckpt-save-load-asymmetry
};

inline void
saveFixtureRecord(lap::ByteWriter &out, const FixtureRecord &rec)
{
    out.u64(rec.epoch);
    out.u64(rec.txns);
}

inline void
loadFixtureRecord(lap::ByteReader &in, FixtureRecord &rec)
{
    rec.epoch = in.u64();
    rec.txns = in.u64();
    rec.loadOnly = in.u64();
}
