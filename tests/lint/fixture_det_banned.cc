// lapsim-lint fixture: seeded det-banned-call violations.
//
// Never compiled into a target — test_lint feeds it to the lint
// binary and asserts one finding per SEED marker comment, on
// exactly the marked line.

#include <chrono>
#include <cstdlib>
#include <random>

int
fixtureRand()
{
    return rand(); // SEED: det-banned-call
}

long
fixtureClock()
{
    const auto t = std::chrono::steady_clock::now(); // SEED: det-banned-call
    return t.time_since_epoch().count();
}

unsigned
fixtureDevice()
{
    std::random_device device; // SEED: det-banned-call
    return device();
}

const char *
fixtureEnv()
{
    return std::getenv("LAPSIM_FIXTURE"); // SEED: det-banned-call
}

long
fixtureTime()
{
    return time(nullptr); // SEED: det-banned-call
}
