// lapsim-lint fixture: seeded det-unordered-iteration and
// det-pointer-key violations. Never compiled; see test_lint.cc.

#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

struct FixtureNode;

struct FixtureTable
{
    std::unordered_map<int, int> cells;
};

int
fixtureRangeFor(const FixtureTable &table)
{
    int sum = 0;
    for (const auto &cell : table.cells) // SEED: det-unordered-iteration
        sum += cell.second;
    return sum;
}

int
fixtureIteratorLoop()
{
    std::unordered_set<int> ids;
    int count = 0;
    for (auto it = ids.begin(); it != ids.end(); ++it) // SEED: det-unordered-iteration
        ++count;
    return count;
}

std::map<FixtureNode *, int> fixtureRank; // SEED: det-pointer-key

std::set<const FixtureNode *> fixtureLive; // SEED: det-pointer-key
