// lapsim-lint fixture: every would-be violation is suppressed via
// the documented conventions, so the expected finding count is
// exactly zero. Never compiled; see test_lint.cc.

#include <cstdint>
#include <cstdlib>
#include <unordered_map>

#include "common/serial.hh"

// The env var is the configuration here, read once at startup.
// lapsim-lint: allow(det-banned-call)
static const char *const fixtureHome = std::getenv("HOME");

long
fixtureSum(const std::unordered_map<int, int> &cells)
{
    long sum = 0;
    // Summation is order-independent.
    // lapsim-lint: allow(det-unordered-iteration)
    for (const auto &cell : cells)
        sum += cell.second;
    return sum;
}

class FixtureCleanCounter
{
  public:
    void
    saveState(lap::ByteWriter &out) const
    {
        out.u64(count_);
    }

    void
    loadState(lap::ByteReader &in)
    {
        count_ = in.u64();
    }

  private:
    std::uint64_t count_ = 0;
    // Derived from count_ on demand.
    double ratio_ = 0.0; // lapsim-lint: transient

    // allow(all) suppresses every family on the next line.
    // lapsim-lint: allow(all)
    std::uint64_t scratch_ = 0;
};
