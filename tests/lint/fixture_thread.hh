// lapsim-lint fixture: seeded thread-safety annotation violations.
// Never compiled; see test_lint.cc.

#include <cstdint>

#include "common/mutex.hh"
#include "common/thread_annotations.hh"

class FixtureSink
{
  public:
    void push(int value);

    void flush() LAP_REQUIRES(ghost_mutex_); // SEED: thread-unknown-guard

  private:
    lap::Mutex mutex_;
    int queueDepth_ = 0; // SEED: thread-unguarded-field
    long totalPushed_ = 0; // SEED: thread-unguarded-field
    int flushed_ LAP_GUARDED_BY(wrong_mutex_) = 0; // SEED: thread-unknown-guard
    int guarded_ LAP_GUARDED_BY(mutex_) = 0;
    /** Immutable after construction. */
    // lapsim-lint: allow(thread-unguarded-field)
    int capacity_ = 0;
};
