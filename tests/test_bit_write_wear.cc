/**
 * @file
 * Tests for the bit-level write-energy model and the cache wear
 * (endurance) tracking.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "energy/bit_write.hh"
#include "test_util.hh"

namespace lap
{
namespace
{

// --- Bit-write model ---------------------------------------------------

TEST(BitWrite, FullWriteProgramsEverything)
{
    BitWriteParams p;
    EXPECT_DOUBLE_EQ(
        expectedWriteFraction(p, BitWriteScheme::FullWrite, 0.1), 1.0);
    EXPECT_DOUBLE_EQ(
        expectedWriteFraction(p, BitWriteScheme::FullWrite, 0.9), 1.0);
}

TEST(BitWrite, MaskWritesChangedCellsOnly)
{
    BitWriteParams p;
    EXPECT_DOUBLE_EQ(
        expectedWriteFraction(p, BitWriteScheme::WriteMask, 0.3), 0.3);
    EXPECT_DOUBLE_EQ(
        expectedWriteFraction(p, BitWriteScheme::WriteMask, 0.0), 0.0);
}

TEST(BitWrite, FlipNWriteNeverWorseThanMask)
{
    BitWriteParams p;
    for (double f : {0.05, 0.15, 0.3, 0.5, 0.7, 0.9}) {
        const double mask =
            expectedWriteFraction(p, BitWriteScheme::WriteMask, f);
        const double fnw =
            expectedWriteFraction(p, BitWriteScheme::FlipNWrite, f);
        // The flag bit costs ~1/w; beyond that FNW bounds each word
        // at half its cells.
        EXPECT_LE(fnw, mask + 1.0 / p.wordBits + 1e-9) << f;
        EXPECT_GT(fnw, 0.0);
    }
}

TEST(BitWrite, FlipNWriteBoundsHighFlipWrites)
{
    BitWriteParams p;
    // At 90% flips masking writes 90% of cells; FNW inverts words
    // and writes ~10% + flags.
    const double fnw =
        expectedWriteFraction(p, BitWriteScheme::FlipNWrite, 0.9);
    EXPECT_LT(fnw, 0.2);
    // Degenerate extremes.
    EXPECT_DOUBLE_EQ(
        expectedWriteFraction(p, BitWriteScheme::FlipNWrite, 0.0), 0.0);
    EXPECT_NEAR(
        expectedWriteFraction(p, BitWriteScheme::FlipNWrite, 1.0),
        1.0 / p.wordBits, 1e-12);
}

TEST(BitWrite, FlipNWriteMatchesBinomialHandCheck)
{
    // w = 2, p = 0.5: words have k~Binom(2,0.5); programmed cells =
    // min(k, 2-k) = 0 except k=1 (prob 0.5) -> 1 cell + flag.
    BitWriteParams p;
    p.wordBits = 2;
    const double fnw =
        expectedWriteFraction(p, BitWriteScheme::FlipNWrite, 0.5);
    // E[min] = 0.5, E[flag] = P(k>0) = 0.75 -> (0.5+0.75)/2 = 0.625.
    EXPECT_NEAR(fnw, 0.625, 1e-9);
}

TEST(BitWrite, EnergyUsesClassSpecificFlipFractions)
{
    BitWriteParams p;
    WriteClassCounts counts;
    counts.fills = 100;
    counts.dirtyInserts = 100;
    const double energy = bitAwareWriteEnergy(
        p, BitWriteScheme::WriteMask, counts, 1.0);
    // 100 unrelated at 0.5 + 100 updates at 0.15.
    EXPECT_NEAR(energy, 100 * 0.5 + 100 * 0.15, 1e-9);
}

TEST(BitWrite, RejectsBadFraction)
{
    BitWriteParams p;
    EXPECT_DEATH(
        expectedWriteFraction(p, BitWriteScheme::WriteMask, 1.5), "");
}

// --- Wear tracking -----------------------------------------------------

TEST(Wear, CountsAllDataWritePaths)
{
    CacheParams params;
    params.sizeBytes = 4096;
    params.assoc = 4;
    params.dataTech = MemTech::STTRAM;
    Cache c(params);

    c.insert(5, {});                       // fill
    c.access(5, AccessType::Write);        // write hit
    c.writeBlock(c.probe(5), 9);          // victim update
    const auto wear = c.wearStats(MemTech::STTRAM);
    EXPECT_EQ(wear.totalWrites, 3u);
    EXPECT_EQ(wear.maxPerWay, 3u);
}

TEST(Wear, SurvivesStatsReset)
{
    CacheParams params;
    params.sizeBytes = 4096;
    params.assoc = 4;
    params.dataTech = MemTech::STTRAM;
    Cache c(params);
    c.insert(5, {});
    c.resetStats();
    EXPECT_EQ(c.wearStats(MemTech::STTRAM).totalWrites, 1u);
}

TEST(Wear, SplitsByRegion)
{
    CacheParams params;
    params.sizeBytes = 4096;
    params.assoc = 4;
    params.sramWays = 1;
    Cache c(params);
    c.insert(0, {}, 0, 1);                // SRAM way
    c.insert(16, {}, 1, Cache::kAllWays); // STT way
    c.insert(32, {}, 1, Cache::kAllWays);
    EXPECT_EQ(c.wearStats(MemTech::SRAM).totalWrites, 1u);
    EXPECT_EQ(c.wearStats(MemTech::STTRAM).totalWrites, 2u);
}

TEST(Wear, ImbalanceDetectsHotWays)
{
    CacheParams params;
    params.sizeBytes = 4096;
    params.assoc = 4;
    params.dataTech = MemTech::STTRAM;
    Cache c(params);
    c.insert(5, {});
    for (int i = 0; i < 99; ++i)
        c.writeBlock(c.probe(5), static_cast<std::uint64_t>(i));
    const auto wear = c.wearStats(MemTech::STTRAM);
    EXPECT_EQ(wear.maxPerWay, 100u);
    EXPECT_GT(wear.imbalance, 10.0);
}

TEST(Wear, LapWritesLessThanBaselinesEndToEnd)
{
    auto wear_of = [&](PolicyKind kind) {
        auto h = test::tinyHierarchy(kind);
        for (int pass = 0; pass < 10; ++pass) {
            for (std::uint64_t blk = 0; blk < 64; ++blk)
                test::readBlock(*h, 0, blk);
        }
        return h->llc().wearStats(MemTech::STTRAM).totalWrites;
    };
    const auto lap = wear_of(PolicyKind::Lap);
    EXPECT_LE(lap, wear_of(PolicyKind::NonInclusive));
    EXPECT_LT(lap, wear_of(PolicyKind::Exclusive));
}

} // namespace
} // namespace lap
