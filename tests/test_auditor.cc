/**
 * @file
 * HierarchyAuditor diagnostics tests.
 *
 * Each test deliberately corrupts one aspect of an otherwise healthy
 * hierarchy and asserts the auditor reports exactly that violation —
 * proving every invariant class is actually detectable rather than
 * vacuously green. A clean-traffic test pins down the zero-violation
 * baseline the corruptions are measured against.
 */

#include <gtest/gtest.h>

#include "sim/auditor.hh"
#include "test_util.hh"

namespace lap
{
namespace
{

using test::blockAddr;
using test::readBlock;
using test::tinyParams;
using test::writeBlock;

/** A hierarchy with a count-and-continue auditor for inspection. */
struct Audited
{
    std::unique_ptr<CacheHierarchy> h;
    std::unique_ptr<HierarchyAuditor> auditor;
};

Audited
makeAudited(PolicyKind kind, HierarchyParams hp = tinyParams(),
            std::uint64_t interval = 0)
{
    PolicyTuning tuning;
    tuning.epochCycles = 10'000;
    tuning.leaderPeriod = 2;
    const std::uint64_t sets = hp.llc.sizeBytes
        / (static_cast<std::uint64_t>(hp.llc.assoc) * hp.llc.blockBytes);
    Audited a;
    a.h = std::make_unique<CacheHierarchy>(
        hp, makeInclusionPolicy(kind, sets, tuning));
    AuditorConfig ac;
    ac.mode = AuditMode::Count;
    ac.interval = interval;
    ac.maxLogged = 0; // keep test output quiet
    a.auditor = std::make_unique<HierarchyAuditor>(*a.h, kind, ac);
    return a;
}

/** Asserts the auditor found @p check and nothing else. */
void
expectOnly(const HierarchyAuditor &auditor, AuditCheck check)
{
    EXPECT_TRUE(auditor.hasViolation(check))
        << "expected a " << toString(check) << " violation";
    EXPECT_EQ(auditor.violationCount(), auditor.violationsOf(check))
        << "expected only " << toString(check) << " violations";
    EXPECT_FALSE(auditor.diagnostics().empty());
    if (!auditor.diagnostics().empty()) {
        EXPECT_EQ(auditor.diagnostics().front().check, check);
    }
}

// --- Baseline ---------------------------------------------------------

TEST(Auditor, CleanTrafficHasNoViolations)
{
    for (PolicyKind kind : allPolicyKinds()) {
        auto a = makeAudited(kind);
        for (int i = 0; i < 2000; ++i) {
            const std::uint64_t blk =
                static_cast<std::uint64_t>(i * 7) % 300;
            if (i % 3 == 0)
                writeBlock(*a.h, 0, blk);
            else
                readBlock(*a.h, static_cast<CoreId>(i % 2), blk);
        }
        a.h->resetStats(); // exercise counter rebaselining
        for (int i = 0; i < 500; ++i)
            readBlock(*a.h, 0, static_cast<std::uint64_t>(i) % 100);
        a.h->flushPrivate(0);
        a.auditor->auditNow();
        EXPECT_GT(a.auditor->auditsRun(), 0u);
        EXPECT_EQ(a.auditor->violationCount(), 0u)
            << "policy " << toString(kind) << ": "
            << a.auditor->diagnostics().front().format();
    }
}

TEST(Auditor, IntervalControlsAutoAudits)
{
    auto a = makeAudited(PolicyKind::NonInclusive, tinyParams(),
                         /*interval=*/4);
    for (int i = 0; i < 8; ++i)
        readBlock(*a.h, 0, static_cast<std::uint64_t>(i));
    EXPECT_EQ(a.auditor->auditsRun(), 2u);
    EXPECT_EQ(a.auditor->violationCount(), 0u);
}

TEST(Auditor, CoexistsWithOtherObservers)
{
    auto a = makeAudited(PolicyKind::NonInclusive, tinyParams(),
                         /*interval=*/1);
    EXPECT_TRUE(a.h->hasObserver(a.auditor.get()));
    EXPECT_EQ(a.h->observerCount(), 1u);
    {
        // A second observer (a statistics probe in production)
        // attaches alongside the auditor and both get notified.
        HierarchyAuditor second(*a.h, PolicyKind::NonInclusive, {});
        EXPECT_EQ(a.h->observerCount(), 2u);
        readBlock(*a.h, 0, 1);
        EXPECT_GT(second.auditsRun(), 0u);
        EXPECT_GT(a.auditor->auditsRun(), 0u);
    }
    // Destruction removes only the departing observer.
    EXPECT_EQ(a.h->observerCount(), 1u);
    EXPECT_TRUE(a.h->hasObserver(a.auditor.get()));
}

TEST(Auditor, FailFastPanicsOnCorruption)
{
    HierarchyParams hp = tinyParams();
    PolicyTuning tuning;
    tuning.epochCycles = 10'000;
    tuning.leaderPeriod = 2;
    CacheHierarchy h(hp, makeInclusionPolicy(PolicyKind::NonInclusive,
                                             32, tuning));
    AuditorConfig ac; // FailFast, every transaction
    HierarchyAuditor auditor(h, PolicyKind::NonInclusive, ac);
    readBlock(h, 0, 1);
    h.l1(0).probe(1).setDirty(true);
    h.l1(0).probe(1).setValid(false);
    EXPECT_DEATH(readBlock(h, 0, 2), "GhostState");
}

// --- Structural corruptions -------------------------------------------

TEST(Auditor, DetectsDuplicateTagInSet)
{
    auto a = makeAudited(PolicyKind::NonInclusive);
    const std::uint64_t sets = a.h->llc().numSets();
    readBlock(*a.h, 0, 1);
    readBlock(*a.h, 0, 1 + sets); // same LLC set, different tag
    BlockView blk = a.h->llc().probe(1 + sets);
    ASSERT_TRUE(blk);
    blk.setBlockAddr(1); // now two ways of the set claim tag 1
    a.auditor->auditNow();
    expectOnly(*a.auditor, AuditCheck::DuplicateTagInSet);
}

TEST(Auditor, DetectsWrongSetIndex)
{
    auto a = makeAudited(PolicyKind::NonInclusive);
    readBlock(*a.h, 0, 2);
    BlockView blk = a.h->llc().probe(2);
    ASSERT_TRUE(blk);
    blk.setBlockAddr(3); // tag that indexes a different set
    a.auditor->auditNow();
    expectOnly(*a.auditor, AuditCheck::WrongSetIndex);
}

TEST(Auditor, DetectsGhostState)
{
    auto a = makeAudited(PolicyKind::NonInclusive);
    readBlock(*a.h, 0, 1);
    // A never-used way holding dirty state: an invalidation that
    // forgot to clear the block.
    a.h->llc().blockAt(0, 3).setDirty(true);
    a.auditor->auditNow();
    expectOnly(*a.auditor, AuditCheck::GhostState);
}

TEST(Auditor, DetectsBlockCountMismatch)
{
    auto a = makeAudited(PolicyKind::NonInclusive);
    readBlock(*a.h, 0, 5);
    // Vanishing block: valid dropped without an invalidation event.
    BlockView blk = a.h->l1(0).probe(5);
    ASSERT_TRUE(blk);
    blk.setValid(false);
    a.auditor->auditNow();
    expectOnly(*a.auditor, AuditCheck::BlockCountMismatch);
}

TEST(Auditor, DetectsVersionAhead)
{
    auto a = makeAudited(PolicyKind::NonInclusive);
    readBlock(*a.h, 0, 7);
    BlockView blk = a.h->llc().probe(7);
    ASSERT_TRUE(blk);
    blk.setVersion(999); // a write the verifier never saw
    a.auditor->auditNow();
    expectOnly(*a.auditor, AuditCheck::VersionAhead);
}

TEST(Auditor, DetectsDataLoss)
{
    auto a = makeAudited(PolicyKind::NonInclusive);
    writeBlock(*a.h, 0, 9); // dirty v1 lives only in the L1
    BlockView blk = a.h->l1(0).probe(9);
    ASSERT_TRUE(blk);
    ASSERT_TRUE(blk.dirty());
    a.h->l1(0).invalidateBlock(blk); // newest version gone everywhere
    a.auditor->auditNow();
    expectOnly(*a.auditor, AuditCheck::DataLoss);
}

TEST(Auditor, DetectsStatRegression)
{
    auto a = makeAudited(PolicyKind::NonInclusive);
    for (int i = 0; i < 50; ++i)
        readBlock(*a.h, 0, static_cast<std::uint64_t>(i));
    a.auditor->auditNow(); // snapshot
    ASSERT_EQ(a.auditor->violationCount(), 0u);
    a.h->llc().stats().tagAccesses -= 1;
    a.auditor->auditNow();
    expectOnly(*a.auditor, AuditCheck::StatRegression);
}

// --- Inclusion-policy corruptions -------------------------------------

TEST(Auditor, DetectsInclusionHole)
{
    auto a = makeAudited(PolicyKind::Inclusive);
    readBlock(*a.h, 0, 11);
    BlockView blk = a.h->llc().probe(11);
    ASSERT_TRUE(blk);
    a.h->llc().invalidateBlock(blk); // LLC copy gone, L1/L2 remain
    a.auditor->auditNow();
    expectOnly(*a.auditor, AuditCheck::InclusionHole);
    // Both the L1 and the L2 copy are now uncovered.
    EXPECT_EQ(a.auditor->violationsOf(AuditCheck::InclusionHole), 2u);
}

TEST(Auditor, DetectsExclusiveDuplicate)
{
    auto a = makeAudited(PolicyKind::Exclusive, tinyParams(/*cores=*/1));
    readBlock(*a.h, 0, 13); // exclusive: lives in L1/L2 only
    ASSERT_FALSE(a.h->llc().probe(13));
    a.h->llc().insert(13, Cache::InsertAttrs{}); // illegal duplicate
    a.auditor->auditNow();
    expectOnly(*a.auditor, AuditCheck::ExclusiveDuplicate);
}

TEST(Auditor, AcceptsLegalExclusiveRedirty)
{
    // The one legal L2/LLC overlap under exclusion: L1 kept the block
    // across its clean L2 eviction into the LLC, was written, and the
    // dirty victim re-entered the L2 above the stale LLC copy.
    auto a = makeAudited(PolicyKind::Exclusive, tinyParams(/*cores=*/1));
    readBlock(*a.h, 0, 13);
    test::evictFromPrivate(*a.h, 0, 13);
    readBlock(*a.h, 0, 13); // back up from the LLC
    a.auditor->auditNow();
    EXPECT_EQ(a.auditor->violationCount(), 0u);
}

TEST(Auditor, DetectsUnexpectedFill)
{
    auto a = makeAudited(PolicyKind::Lap);
    readBlock(*a.h, 0, 15);
    Cache::InsertAttrs attrs;
    attrs.fillState = FillState::FillUntouched; // a fill LAP forbids
    a.h->llc().insert(999, attrs);
    a.auditor->auditNow();
    expectOnly(*a.auditor, AuditCheck::UnexpectedFill);
}

TEST(Auditor, DetectsCleanBlockNotFilled)
{
    auto a = makeAudited(PolicyKind::NonInclusive);
    readBlock(*a.h, 0, 17);
    // A clean block that never came through the demand-fill path.
    a.h->llc().insert(999, Cache::InsertAttrs{});
    a.auditor->auditNow();
    expectOnly(*a.auditor, AuditCheck::CleanBlockNotFilled);
}

TEST(Auditor, DetectsPolicyStatMismatch)
{
    auto a = makeAudited(PolicyKind::Lap);
    readBlock(*a.h, 0, 19);
    a.h->stats().llcDemandFills++; // LAP never demand-fills
    a.auditor->auditNow();
    expectOnly(*a.auditor, AuditCheck::PolicyStatMismatch);
}

TEST(Auditor, DetectsLoopBitUnclassified)
{
    auto a = makeAudited(PolicyKind::NonInclusive);
    readBlock(*a.h, 0, 21);
    BlockView blk = a.h->llc().probe(21);
    ASSERT_TRUE(blk);
    blk.setLoopBit(true); // no clean trip ever classified this block
    a.auditor->auditNow();
    expectOnly(*a.auditor, AuditCheck::LoopBitUnclassified);
}

// --- Coherence corruptions --------------------------------------------

TEST(Auditor, DetectsCoherenceLeak)
{
    auto a = makeAudited(PolicyKind::NonInclusive); // snooping off
    readBlock(*a.h, 0, 23);
    BlockView blk = a.h->l1(0).probe(23);
    ASSERT_TRUE(blk);
    blk.setCoh(CohState::Shared);
    a.auditor->auditNow();
    expectOnly(*a.auditor, AuditCheck::CoherenceLeak);
}

TEST(Auditor, DetectsCoherenceExclusivityViolation)
{
    HierarchyParams hp = tinyParams(/*cores=*/2);
    hp.coherence = true;
    auto a = makeAudited(PolicyKind::NonInclusive, hp);
    readBlock(*a.h, 0, 25);
    readBlock(*a.h, 1, 25); // both cores now Shared
    BlockView blk = a.h->l1(0).probe(25);
    ASSERT_TRUE(blk);
    ASSERT_EQ(blk.coh(), CohState::Shared);
    blk.setCoh(CohState::Modified); // M while a peer still holds S
    a.auditor->auditNow();
    expectOnly(*a.auditor, AuditCheck::CoherenceExclusivity);
}

} // namespace
} // namespace lap
