/**
 * @file
 * Engine differential suite: proves the optimized hot path is
 * bit-exact against the golden-pinned reference engine.
 *
 * For every policy in the golden set this runs the full Simulator
 * with the epoch sampler attached and compares, against
 * tests/golden/<slug>.stream.json,
 *   (a) the end-of-run integer counters, and
 *   (b) an FNV-1a hash over the serialized epoch-record stream.
 * The stream hash covers every per-epoch counter delta, the sampled
 * LLC population and the set-dueling PSEL state, so any divergence
 * in *when* the engine hits, fills, evicts or migrates — not just
 * the totals — fails the test.
 *
 * The baselines were generated from the pre-SoA reference engine
 * (array-of-structs tag store, virtual policy dispatch) and must
 * never be regenerated as part of a performance change: matching
 * them is the proof that a hot-path restructuring preserved
 * behaviour. Regenerate only for an intentional *behaviour* change,
 * with tools/regen-golden.sh, and explain the diff in the commit.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "campaign/jsonl.hh"
#include "common/json.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "workloads/mixes.hh"

namespace lap
{
namespace
{

struct DiffCase
{
    const char *slug;
    PolicyKind policy;
    PlacementKind placement;
    bool hybrid;
    const char *benchmark;
};

/** Mirrors the golden-metrics matrix (one case per policy). */
const DiffCase kCases[] = {
    {"inclusive", PolicyKind::Inclusive, PlacementKind::Default, false,
     "mcf"},
    {"noni", PolicyKind::NonInclusive, PlacementKind::Default, false,
     "mcf"},
    {"ex", PolicyKind::Exclusive, PlacementKind::Default, false, "mcf"},
    {"flex", PolicyKind::Flexclusion, PlacementKind::Default, false,
     "omnetpp"},
    {"dswitch", PolicyKind::Dswitch, PlacementKind::Default, false,
     "omnetpp"},
    {"lap", PolicyKind::Lap, PlacementKind::Default, false,
     "libquantum"},
    {"lhybrid", PolicyKind::Lap, PlacementKind::Lhybrid, true,
     "libquantum"},
};

SimConfig
diffConfig(const DiffCase &c)
{
    SimConfig cfg;
    cfg.numCores = 2;
    cfg.l1Size = 4 * 1024;
    cfg.l2Size = 32 * 1024;
    cfg.llcSize = 256 * 1024;
    cfg.warmupRefs = 10'000;
    cfg.measureRefs = 50'000;
    cfg.tuning.epochCycles = 50'000;
    // Dense epochs: ~60 records over the run, each hashed below.
    cfg.epochStatsInterval = 2'000;
    cfg.policy = c.policy;
    cfg.placement = c.placement;
    cfg.hybridLlc = c.hybrid;
    return cfg;
}

/** FNV-1a 64-bit over the whole serialized stream. */
std::uint64_t
fnv1a(const std::string &text)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const char ch : text) {
        hash ^= static_cast<unsigned char>(ch);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

std::string
hex(std::uint64_t value)
{
    std::ostringstream out;
    out << "0x" << std::hex << value;
    return out.str();
}

/** Runs the case and serializes {counters, epoch-stream hash}. */
std::string
runCase(const DiffCase &c)
{
    Simulator sim(diffConfig(c));
    const Metrics m = sim.run(resolveMix(duplicateMix(c.benchmark, 2)));

    const EpochSampler *sampler = sim.statsEngine()->sampler();
    std::string stream;
    for (const EpochRecord &record : sampler->records()) {
        stream += epochToJson(record);
        stream += '\n';
    }

    JsonWriter w;
    w.field("epochs",
            static_cast<std::uint64_t>(sampler->records().size()))
        .field("streamFnv", hex(fnv1a(stream)))
        .field("instructions", m.instructions)
        .field("cycles", m.cycles)
        .field("llcHits", m.llcHits)
        .field("llcMisses", m.llcMisses)
        .field("llcWritesFill", m.llcWritesFill)
        .field("llcWritesCleanVictim", m.llcWritesCleanVictim)
        .field("llcWritesDirtyVictim", m.llcWritesDirtyVictim)
        .field("llcWritesMigration", m.llcWritesMigration)
        .field("llcDemandFills", m.llcDemandFills)
        .field("llcDeadFills", m.llcDeadFills)
        .field("snoopMessages", m.snoopMessages)
        .field("dramReads", m.dramReads)
        .field("dramWrites", m.dramWrites);
    return w.str();
}

std::string
streamGoldenPath(const DiffCase &c)
{
    return std::string(LAPSIM_GOLDEN_DIR) + "/" + c.slug
        + ".stream.json";
}

std::string
readFileOrEmpty(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return "";
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

bool
regenRequested()
{
    const char *env = std::getenv("LAPSIM_REGEN_GOLDEN");
    return env != nullptr && env[0] == '1';
}

class EngineDifferential : public ::testing::TestWithParam<DiffCase>
{
};

TEST_P(EngineDifferential, MatchesReferenceEngine)
{
    const DiffCase &c = GetParam();
    const std::string path = streamGoldenPath(c);
    const std::string fresh = runCase(c);

    if (regenRequested()) {
        writeFile(path, fresh + "\n");
        GTEST_SKIP() << "regenerated " << path;
    }

    const std::string baseline = readFileOrEmpty(path);
    ASSERT_FALSE(baseline.empty())
        << "missing reference baseline " << path
        << " — run tools/regen-golden.sh and commit the result";

    JsonRow want, got;
    ASSERT_TRUE(parseJsonObject(baseline, want)) << path;
    ASSERT_TRUE(parseJsonObject(fresh, got));

    // Every field is an integer counter or the stream hash: text
    // equality is the bit-exact comparison.
    for (const auto &[key, value] : want) {
        EXPECT_EQ(value, rowValue(got, key))
            << c.slug << ": '" << key
            << "' diverged from the reference engine";
    }
    for (const auto &[key, value] : got) {
        EXPECT_FALSE(rowValue(want, key).empty())
            << c.slug << ": new field '" << key
            << "' missing from baseline — regenerate intentionally";
    }
}

/** The epoch stream itself is deterministic run-to-run. */
TEST(EngineDifferential, StreamsAreDeterministic)
{
    EXPECT_EQ(runCase(kCases[0]), runCase(kCases[0]));
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, EngineDifferential, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<DiffCase> &info) {
        return std::string(info.param.slug);
    });

} // namespace
} // namespace lap
