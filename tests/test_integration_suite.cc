/**
 * @file
 * End-to-end integration smoke tests: every SPEC model and every
 * PARSEC model runs through the full Simulator under LAP with the
 * data-integrity verifier armed, on a scaled-down system. Catches
 * workload/policy interactions none of the unit tests construct.
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "workloads/mixes.hh"
#include "workloads/parsec.hh"
#include "workloads/spec2006.hh"

namespace lap
{
namespace
{

SimConfig
smallConfig()
{
    SimConfig cfg;
    cfg.numCores = 2;
    cfg.l1Size = 4 * 1024;
    cfg.l2Size = 32 * 1024;
    cfg.llcSize = 256 * 1024;
    cfg.warmupRefs = 10'000;
    cfg.measureRefs = 50'000;
    cfg.tuning.epochCycles = 50'000;
    // Fail-fast invariant audits ride along on every integration run.
    cfg.auditInterval = 997;
    return cfg;
}

class SpecIntegration : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SpecIntegration, RunsUnderLapWithVerification)
{
    SimConfig cfg = smallConfig();
    cfg.policy = PolicyKind::Lap;
    Simulator sim(cfg);
    const WorkloadSpec spec = spec2006Benchmark(GetParam());
    const Metrics m = sim.run({spec, spec});
    EXPECT_GT(m.instructions, 100'000u);
    EXPECT_GT(m.epi, 0.0);
    EXPECT_EQ(m.llcWritesFill, 0u); // LAP never fills
    EXPECT_GT(m.throughput, 0.0);
}

TEST_P(SpecIntegration, EnergyDecomposesExactly)
{
    SimConfig cfg = smallConfig();
    cfg.policy = PolicyKind::NonInclusive;
    Simulator sim(cfg);
    const WorkloadSpec spec = spec2006Benchmark(GetParam());
    const Metrics m = sim.run({spec, spec});
    EXPECT_NEAR(m.epi, m.epiStatic + m.epiDynamic, 1e-12);
    EXPECT_NEAR(m.llcEnergy.totalNj(),
                m.llcEnergy.staticNj + m.llcEnergy.dynamicNj, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(AllSpec, SpecIntegration,
                         ::testing::ValuesIn(spec2006Names()));

class ParsecIntegration : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ParsecIntegration, RunsCoherentUnderLap)
{
    SimConfig cfg = smallConfig();
    cfg.policy = PolicyKind::Lap;
    cfg.coherence = true;
    Simulator sim(cfg);
    const Metrics m =
        sim.runMultiThreaded(parsecBenchmark(GetParam()));
    EXPECT_GT(m.instructions, 100'000u);
    EXPECT_GT(m.epi, 0.0);
    // Broadcast snooping means traffic whenever the LLC misses.
    EXPECT_GE(m.snoopMessages, m.llcMisses);
}

INSTANTIATE_TEST_SUITE_P(AllParsec, ParsecIntegration,
                         ::testing::ValuesIn(parsecNames()));

TEST(MixIntegration, RandomMixesRunUnderEveryAdaptivePolicy)
{
    const auto mixes = randomMixes(3, 2, 77);
    for (PolicyKind kind : {PolicyKind::Flexclusion, PolicyKind::Dswitch,
                            PolicyKind::Lap}) {
        for (const auto &mix : mixes) {
            SimConfig cfg = smallConfig();
            cfg.policy = kind;
            Simulator sim(cfg);
            const Metrics m = sim.run(resolveMix(mix));
            EXPECT_GT(m.llcWritesTotal, 0u)
                << toString(kind) << " " << mix.name;
        }
    }
}

TEST(MixIntegration, SeedSaltChangesTheRunDeterministically)
{
    SimConfig a = smallConfig();
    a.policy = PolicyKind::Lap;
    SimConfig b = a;
    b.seedSalt = 1;
    const auto specs = resolveMix(duplicateMix("mcf", 2));
    const Metrics ma = Simulator(a).run(specs);
    const Metrics mb = Simulator(b).run(specs);
    const Metrics ma2 = Simulator(a).run(specs);
    EXPECT_NE(ma.llcMisses, mb.llcMisses); // salt changes the traffic
    EXPECT_EQ(ma.llcMisses, ma2.llcMisses); // but stays deterministic
}

} // namespace
} // namespace lap
