/**
 * @file
 * Additional directed hierarchy tests: flush semantics, leader-set
 * behaviour of the switching policies, epoch adaptation mid-run,
 * RRIP-based LLCs, unusual geometries, larger core counts, and
 * site propagation.
 */

#include <gtest/gtest.h>

#include "cache/inspector.hh"
#include "hierarchy/lap_policy.hh"
#include "hierarchy/switching_policies.hh"
#include "test_util.hh"

namespace lap
{
namespace
{

using test::readBlock;
using test::tinyHierarchy;
using test::tinyParams;
using test::writeBlock;

TEST(Flush, DrainsBothPrivateLevels)
{
    auto h = tinyHierarchy(PolicyKind::NonInclusive);
    Rng rng(4);
    for (int i = 0; i < 300; ++i) {
        if (rng.chance(0.5))
            writeBlock(*h, 0, rng.below(64));
        else
            readBlock(*h, 0, rng.below(64));
    }
    h->flushPrivate(0);
    EXPECT_EQ(CacheInspector(h->l1(0)).validBlockCount(), 0u);
    EXPECT_EQ(CacheInspector(h->l2(0)).validBlockCount(), 0u);
}

TEST(Flush, DirtyDataSurvivesFlush)
{
    auto h = tinyHierarchy(PolicyKind::Exclusive);
    for (std::uint64_t blk = 0; blk < 40; ++blk)
        writeBlock(*h, 0, blk);
    h->flushPrivate(0);
    // Every write must be recoverable (verifier panics otherwise).
    for (std::uint64_t blk = 0; blk < 40; ++blk)
        readBlock(*h, 1, blk);
}

TEST(Flush, DoesNotTouchOtherCores)
{
    auto h = tinyHierarchy(PolicyKind::NonInclusive);
    readBlock(*h, 1, 7);
    h->flushPrivate(0);
    EXPECT_TRUE(h->l1(1).probe(7));
}

TEST(Flush, IsIdempotent)
{
    auto h = tinyHierarchy(PolicyKind::Lap);
    writeBlock(*h, 0, 1);
    h->flushPrivate(0);
    const auto writes = h->stats().llcWritesTotal();
    h->flushPrivate(0); // nothing left to drain
    EXPECT_EQ(h->stats().llcWritesTotal(), writes);
}

TEST(SwitchingLeaders, FlexLeaderSetsBehaveDifferently)
{
    // tiny LLC has 32 sets; with leader period 2 even sets run
    // non-inclusion (fill) and odd sets run exclusion (no fill).
    auto h = tinyHierarchy(PolicyKind::Flexclusion);
    readBlock(*h, 0, 32); // maps to LLC set 0 -> noni leader
    readBlock(*h, 0, 33); // maps to LLC set 1 -> ex leader
    EXPECT_TRUE(h->llc().probe(32));
    EXPECT_FALSE(h->llc().probe(33));
}

TEST(SwitchingLeaders, DswitchAdaptsAwayFromWriteHeavyExclusion)
{
    // Generate loop traffic whose clean re-insertions punish the
    // exclusive leader sets; after an epoch the followers must run
    // non-inclusively.
    auto h = tinyHierarchy(PolicyKind::Dswitch);
    DswitchPolicy *policy = h->policy().tryAs<DswitchPolicy>();
    ASSERT_NE(policy, nullptr);
    Cycle now = 0;
    for (int pass = 0; pass < 40; ++pass) {
        for (std::uint64_t blk = 0; blk < 64; ++blk) {
            h->access(0, blk * 64, AccessType::Read, now);
            now += 10;
        }
    }
    EXPECT_GE(policy->duel().epochsElapsed(), 1u);
    EXPECT_TRUE(policy->nonInclusiveAt(2)); // follower set
}

TEST(LapDueling, FollowerReplacementCanSwitchMidRun)
{
    auto h = tinyHierarchy(PolicyKind::Lap);
    LapPolicy *policy = h->policy().tryAs<LapPolicy>();
    ASSERT_NE(policy, nullptr);
    // Drive past several epochs with mixed traffic.
    Rng rng(6);
    Cycle now = 0;
    for (int i = 0; i < 30000; ++i) {
        h->access(0, rng.below(400) * 64,
                  rng.chance(0.2) ? AccessType::Write
                                  : AccessType::Read,
                  now);
        now += 12;
    }
    EXPECT_GE(policy->duel().epochsElapsed(), 3u);
}

TEST(Geometry, RripLlcSupportsAllPolicies)
{
    for (PolicyKind kind :
         {PolicyKind::NonInclusive, PolicyKind::Exclusive,
          PolicyKind::Lap}) {
        HierarchyParams hp = tinyParams();
        hp.llc.repl = ReplKind::Rrip;
        auto h = tinyHierarchy(kind, hp);
        Rng rng(8);
        for (int i = 0; i < 20000; ++i) {
            const std::uint64_t blk = rng.below(300);
            if (rng.chance(0.3))
                writeBlock(*h, 0, blk);
            else
                readBlock(*h, 0, blk);
        }
        for (std::uint64_t blk = 0; blk < 300; ++blk)
            readBlock(*h, 0, blk); // integrity re-read
    }
}

TEST(Geometry, NonPowerOfTwoSetCount)
{
    // A 24MB-style geometry scaled down: 12KB, 4-way => 48 sets.
    HierarchyParams hp = tinyParams();
    hp.llc.sizeBytes = 12 * 1024;
    hp.coherence = true; // the final re-read comes from core 1
    auto h = tinyHierarchy(PolicyKind::NonInclusive, hp);
    EXPECT_EQ(h->llc().numSets(), 48u);
    Rng rng(2);
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t blk = rng.below(500);
        if (rng.chance(0.3))
            writeBlock(*h, 0, blk);
        else
            readBlock(*h, 0, blk);
    }
    for (std::uint64_t blk = 0; blk < 500; ++blk)
        readBlock(*h, 1, blk);
}

TEST(Geometry, EightCoreHierarchy)
{
    HierarchyParams hp = tinyParams(/*cores=*/8);
    hp.coherence = true;
    auto h = tinyHierarchy(PolicyKind::Lap, hp);
    Rng rng(5);
    for (int i = 0; i < 40000; ++i) {
        const auto core = static_cast<CoreId>(rng.below(8));
        const std::uint64_t blk = rng.below(256);
        if (rng.chance(0.3))
            writeBlock(*h, core, blk);
        else
            readBlock(*h, core, blk);
    }
    EXPECT_EQ(h->stats().snoop.broadcasts, h->stats().llcMisses);
}

TEST(Sites, PropagateToVictims)
{
    auto h = tinyHierarchy(PolicyKind::Exclusive);
    h->access(0, 64, AccessType::Read, 0, /*site=*/77);
    h->flushPrivate(0);
    ASSERT_TRUE(h->llc().probe(1));
    EXPECT_EQ(h->llc().probe(1).site(), 77u);
}

TEST(Sites, UpdatedOnRepeatedAccess)
{
    auto h = tinyHierarchy(PolicyKind::Exclusive);
    h->access(0, 64, AccessType::Read, 0, 1);
    h->access(0, 64, AccessType::Read, 0, 2); // L1 hit, new site
    EXPECT_EQ(h->l1(0).probe(1).site(), 2u);
    EXPECT_EQ(h->l2(0).probe(1).site(), 2u);
}

TEST(Counters, L1EnergyEventsTracked)
{
    auto h = tinyHierarchy(PolicyKind::NonInclusive);
    readBlock(*h, 0, 1);
    readBlock(*h, 0, 1);
    writeBlock(*h, 0, 1);
    const auto &l1 = h->l1(0).stats();
    EXPECT_EQ(l1.readHits, 1u);
    EXPECT_EQ(l1.writeHits, 1u);
    EXPECT_GE(l1.dataReads[0], 1u);
    EXPECT_GE(l1.dataWrites[0], 2u); // fill + write hit
}

TEST(Counters, LoopResidencyAndDirtyFraction)
{
    auto h = tinyHierarchy(PolicyKind::Lap);
    const CacheInspector llc(h->llc());
    EXPECT_DOUBLE_EQ(llc.loopResidency(), 0.0); // empty cache
    for (int pass = 0; pass < 4; ++pass) {
        for (std::uint64_t blk = 0; blk < 64; ++blk)
            readBlock(*h, 0, blk);
    }
    EXPECT_GT(llc.loopResidency(), 0.3);
    for (std::uint64_t blk = 0; blk < 64; ++blk)
        writeBlock(*h, 0, blk);
    h->flushPrivate(0);
    EXPECT_GT(llc.dirtyFraction(), 0.5);
}

TEST(Timing, DemandReadsQueueBehindEachOtherPerBank)
{
    auto h = tinyHierarchy(PolicyKind::NonInclusive);
    readBlock(*h, 0, 0);  // warm: LLC set 0, bank 0
    readBlock(*h, 0, 64); // warm: LLC set 0 too (64 % 32 == 0)
    test::evictFromPrivate(*h, 0, 0, 2000);
    test::evictFromPrivate(*h, 0, 64, 4000);
    // Two back-to-back LLC hits to the same bank at the same cycle:
    // the second one's service must start after the first.
    const auto first = readBlock(*h, 0, 0, 10000);
    const auto second = readBlock(*h, 1, 64, 10000);
    EXPECT_GT(second.doneAt, first.doneAt);
}

TEST(Timing, WritesDoNotStallTheIssuer)
{
    // Victim writes are posted: the demand access that triggered
    // them completes at its own latency.
    auto h = tinyHierarchy(PolicyKind::Exclusive);
    for (std::uint64_t blk = 0; blk < 64; ++blk)
        writeBlock(*h, 0, blk);
    const auto result = readBlock(*h, 0, 2000, 50000);
    // A clean DRAM fetch: ~ L1 + L2 + LLC lookup + 200.
    EXPECT_LT(result.doneAt - 50000, 300u);
}

TEST(Policy, InclusiveNeverExceedsLlcContentsUpstairs)
{
    HierarchyParams hp = tinyParams();
    hp.coherence = true; // cores share one address range below
    auto h = tinyHierarchy(PolicyKind::Inclusive, hp);
    Rng rng(12);
    for (int i = 0; i < 20000; ++i) {
        const auto core = static_cast<CoreId>(rng.below(2));
        const std::uint64_t blk = rng.below(300);
        if (rng.chance(0.3))
            writeBlock(*h, core, blk);
        else
            readBlock(*h, core, blk);
    }
    // Inclusion invariant after heavy traffic.
    for (CoreId core = 0; core < 2; ++core) {
        for (Cache *cache : {&h->l1(core), &h->l2(core)}) {
            CacheInspector(*cache).forEachValid(
                [&](const BlockInfo &blk) {
                    EXPECT_TRUE(h->llc().probe(blk.blockAddr))
                        << "upper block " << blk.blockAddr
                        << " missing from inclusive LLC";
                });
        }
    }
}

TEST(Policy, ExclusiveLlcHoldsNoUpperDuplicatesSteadyState)
{
    auto h = tinyHierarchy(PolicyKind::Exclusive);
    Rng rng(13);
    for (int i = 0; i < 20000; ++i)
        readBlock(*h, 0, rng.below(200));
    // Count duplicated blocks (present both in L2 and LLC): the
    // exclusive flows never create them (duplicates could only
    // appear transiently via mode switching, absent here).
    std::uint64_t duplicates = 0;
    CacheInspector(h->l2(0)).forEachValid([&](const BlockInfo &blk) {
        if (h->llc().probe(blk.blockAddr))
            duplicates++;
    });
    EXPECT_EQ(duplicates, 0u);
}

} // namespace
} // namespace lap
