/**
 * @file
 * Campaign engine tests: grid expansion and stable hashing,
 * serial-vs-parallel determinism, JSONL resume, failure isolation,
 * spec parsing and aggregation.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "campaign/aggregate.hh"
#include "campaign/engine.hh"
#include "campaign/jsonl.hh"
#include "campaign/sink.hh"
#include "common/logging.hh"
#include "sim/checkpoint.hh"
#include "sim/config_fields.hh"
#include "sim/simulator.hh"
#include "workloads/mixes.hh"

using namespace lap;

namespace
{

/**
 * A 16-job grid (4 mixes x 4 policies) small enough for the test
 * budget, large enough that 8 workers genuinely overlap.
 */
CampaignSpec
smallGrid()
{
    CampaignSpec spec;
    spec.name = "test-grid";
    spec.base.warmupRefs = 1'000;
    spec.base.measureRefs = 6'000;
    for (const char *mix : {"WL1", "WL2", "WH1", "WH2"})
        spec.workloads.push_back(CampaignWorkload::mix(mix));
    spec.policies = {PolicyKind::NonInclusive, PolicyKind::Exclusive,
                     PolicyKind::Dswitch, PolicyKind::Lap};
    return spec;
}

/** Unique temp path; removed in the destructor. */
class TempFile
{
  public:
    explicit TempFile(const std::string &tag)
        : path_("/tmp/lapsim_test_" + tag + "_"
                + std::to_string(::getpid()) + ".jsonl")
    {
        std::remove(path_.c_str());
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

void
expectIdenticalMetrics(const Metrics &a, const Metrics &b)
{
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.llcHits, b.llcHits);
    EXPECT_EQ(a.llcMisses, b.llcMisses);
    EXPECT_EQ(a.llcWritesTotal, b.llcWritesTotal);
    EXPECT_EQ(a.llcWritesFill, b.llcWritesFill);
    EXPECT_EQ(a.dramReads, b.dramReads);
    EXPECT_EQ(a.dramWrites, b.dramWrites);
    EXPECT_EQ(a.snoopMessages, b.snoopMessages);
    // Energy is computed per job from the counters above; exact
    // double equality is expected, not approximate.
    EXPECT_EQ(a.epi, b.epi);
    EXPECT_EQ(a.epiStatic, b.epiStatic);
    EXPECT_EQ(a.epiDynamic, b.epiDynamic);
    EXPECT_EQ(a.throughput, b.throughput);
}

/** Table III mix by name (mirrors the engine's internal lookup for
 *  the 4-core grid used here). */
MixSpec
mixByName(const std::string &name)
{
    for (const auto &mix : tableThreeMixes()) {
        if (mix.name == name)
            return mix;
    }
    ADD_FAILURE() << "unknown mix " << name;
    return {};
}

/** Truncates the JSONL file to its first @p keep lines. */
void
truncateRows(const std::string &path, std::size_t keep)
{
    std::vector<std::string> lines;
    {
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
    }
    ASSERT_GT(lines.size(), keep);
    std::ofstream trunc(path, std::ios::trunc);
    for (std::size_t i = 0; i < keep; ++i)
        trunc << lines[i] << "\n";
}

} // namespace

TEST(CampaignSpecTest, ExpansionTakesCartesianProduct)
{
    CampaignSpec spec = smallGrid();
    spec.axes.push_back({"llc-mb", {"4", "8"}});
    const auto jobs = expandCampaign(spec);
    EXPECT_EQ(jobs.size(), 4u * 4u * 2u);

    // Axis values really land in the per-job configs.
    std::size_t small = 0;
    for (const auto &job : jobs)
        small += job.config.llcSize == 4u * 1024 * 1024 ? 1 : 0;
    EXPECT_EQ(small, jobs.size() / 2);
}

TEST(CampaignSpecTest, JobHashesAreStableAndUnique)
{
    const auto jobs_a = expandCampaign(smallGrid());
    const auto jobs_b = expandCampaign(smallGrid());
    ASSERT_EQ(jobs_a.size(), jobs_b.size());

    std::set<std::string> hashes;
    for (std::size_t i = 0; i < jobs_a.size(); ++i) {
        EXPECT_EQ(jobs_a[i].hash, jobs_b[i].hash) << jobs_a[i].label;
        EXPECT_EQ(jobs_a[i].hash.size(), 16u);
        hashes.insert(jobs_a[i].hash);
    }
    EXPECT_EQ(hashes.size(), jobs_a.size()) << "hash collision";

    // The hash is content-derived: changing a config knob changes
    // it, renaming the campaign changes it.
    CampaignSpec renamed = smallGrid();
    renamed.name = "other";
    EXPECT_NE(expandCampaign(renamed)[0].hash, jobs_a[0].hash);
    CampaignSpec resized = smallGrid();
    resized.base.llcAssoc = 8;
    EXPECT_NE(expandCampaign(resized)[0].hash, jobs_a[0].hash);
}

TEST(CampaignSpecTest, SeedSaltIsPerWorkloadNotPerPolicy)
{
    CampaignSpec spec = smallGrid();
    spec.seed = 7;
    const auto jobs = expandCampaign(spec);
    // Same workload, different policies: same trace seed.
    EXPECT_EQ(jobs[0].config.seedSalt, jobs[1].config.seedSalt);
    // Different workloads: decorrelated seeds under a nonzero
    // campaign seed.
    EXPECT_NE(jobs[0].config.seedSalt,
              jobs[spec.policies.size()].config.seedSalt);

    // seed 0 preserves the base salt for every job, matching a
    // hand-rolled serial sweep of the same configs.
    const auto plain = expandCampaign(smallGrid());
    for (const auto &job : plain)
        EXPECT_EQ(job.config.seedSalt, 0u);
}

TEST(CampaignEngineTest, EightWorkersMatchSerialBitExactly)
{
    const CampaignSpec spec = smallGrid();

    EngineOptions serial;
    serial.jobs = 1;
    const CampaignResult a = runCampaign(spec, serial);

    EngineOptions parallel;
    parallel.jobs = 8;
    const CampaignResult b = runCampaign(spec, parallel);

    ASSERT_EQ(a.jobs.size(), 16u);
    ASSERT_EQ(b.jobs.size(), 16u);
    EXPECT_EQ(a.completed(), 16u);
    EXPECT_EQ(b.completed(), 16u);
    for (std::size_t i = 0; i < a.jobs.size(); ++i) {
        SCOPED_TRACE(a.jobs[i].label);
        EXPECT_EQ(a.jobs[i].hash, b.jobs[i].hash);
        expectIdenticalMetrics(a.outcomes[i].metrics,
                               b.outcomes[i].metrics);
    }
}

TEST(CampaignEngineTest, ResumeSkipsCompletedJobs)
{
    const CampaignSpec spec = smallGrid();
    TempFile out("resume");

    EngineOptions first;
    first.jobs = 4;
    first.outPath = out.path();
    const CampaignResult a = runCampaign(spec, first);
    EXPECT_EQ(a.completed(), 16u);

    EngineOptions again = first;
    again.resume = true;
    const CampaignResult b = runCampaign(spec, again);
    EXPECT_EQ(b.skipped(), 16u);
    EXPECT_EQ(b.completed(), 0u);

    // Results survive the no-op resume: still 16 ok rows.
    EXPECT_EQ(loadCompletedHashes(out.path()).size(), 16u);
}

TEST(CampaignEngineTest, ResumeAfterInterruptionRunsOnlyTheRest)
{
    const CampaignSpec spec = smallGrid();
    TempFile out("interrupt");

    EngineOptions full;
    full.jobs = 2;
    full.outPath = out.path();
    runCampaign(spec, full);

    // Simulate an interrupted campaign: keep the first 9 rows and
    // truncate the 10th mid-line (a crash mid-write).
    std::vector<std::string> lines;
    {
        std::ifstream in(out.path());
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
    }
    ASSERT_EQ(lines.size(), 16u);
    {
        std::ofstream trunc(out.path(), std::ios::trunc);
        for (std::size_t i = 0; i < 9; ++i)
            trunc << lines[i] << "\n";
        trunc << lines[9].substr(0, lines[9].size() / 2);
    }

    EngineOptions resume = full;
    resume.resume = true;
    const CampaignResult b = runCampaign(spec, resume);
    EXPECT_EQ(b.skipped(), 9u);
    EXPECT_EQ(b.completed(), 7u);

    // The finished file covers the whole grid again.
    EXPECT_EQ(loadCompletedHashes(out.path()).size(), 16u);
}

/**
 * The full mid-job kill-and-restore cycle: a campaign is killed
 * while job 9 is in flight (its snapshot exists, its result row does
 * not), then resumed on 8 workers with --restore. The resumed
 * campaign must skip the 9 archived jobs, restore job 9 from its
 * snapshot mid-flight, finish the rest fresh, produce metrics
 * bit-identical to an uninterrupted serial run for every job, and
 * clean up the consumed snapshot.
 */
TEST(CampaignEngineTest, KillAndMidJobRestoreMatchesSerialRun)
{
    const CampaignSpec spec = smallGrid();

    EngineOptions serial;
    serial.jobs = 1;
    const CampaignResult reference = runCampaign(spec, serial);
    ASSERT_EQ(reference.completed(), 16u);

    // First attempt, serial so the file order is the grid order;
    // mid-job restore on, so every job checkpoints as it runs and
    // deletes its snapshot on completion.
    TempFile out("killresume");
    EngineOptions first;
    first.jobs = 1;
    first.outPath = out.path();
    first.midJobRestore = true;
    const CampaignResult a = runCampaign(spec, first);
    ASSERT_EQ(a.completed(), 16u);
    for (const auto &job : a.jobs) {
        std::ifstream ckpt(jobCheckpointPath(out.path(), job));
        EXPECT_FALSE(ckpt.good())
            << job.label << ": completed job left its snapshot";
    }

    // Emulate the kill: jobs 0..8 made it to the archive, job 9 was
    // mid-flight. Re-create its in-flight snapshot by running its
    // exact config and dying (lap_fatal) right after the checkpoint
    // hook saved to the path the engine will look at.
    truncateRows(out.path(), 9);
    const CampaignJob &victim = reference.jobs[9];
    const std::string ckpt_path =
        jobCheckpointPath(out.path(), victim);
    {
        Simulator sim(victim.config);
        bool saved = false;
        sim.setCheckpointHook(10'000, [&](std::uint64_t) {
            if (saved)
                return;
            saved = true;
            sim.saveCheckpoint(ckpt_path);
            lap_fatal("simulated kill");
        });
        try {
            const ScopedFatalThrow guard;
            sim.run(resolveMix(mixByName(victim.workload.name)));
            FAIL() << "simulated kill did not interrupt the run";
        } catch (const FatalError &err) {
            EXPECT_NE(std::string(err.what()).find("simulated kill"),
                      std::string::npos);
        }
        EXPECT_TRUE(saved);
    }
    // The engine's validity probe accepts the planted snapshot, so
    // the resumed job below really restores instead of starting over.
    ASSERT_TRUE(checkpointIsValid(ckpt_path, victim.config));

    EngineOptions resume;
    resume.jobs = 8;
    resume.outPath = out.path();
    resume.midJobRestore = true; // implies resume
    const CampaignResult b = runCampaign(spec, resume);
    EXPECT_EQ(b.skipped(), 9u);
    EXPECT_EQ(b.completed(), 7u);
    ASSERT_EQ(b.outcomes[9].status, JobStatus::Ok);

    for (std::size_t i = 0; i < b.jobs.size(); ++i) {
        if (b.outcomes[i].status != JobStatus::Ok)
            continue;
        SCOPED_TRACE(b.jobs[i].label);
        expectIdenticalMetrics(reference.outcomes[i].metrics,
                               b.outcomes[i].metrics);
    }

    // The consumed snapshot is gone and the archive covers the grid.
    std::ifstream leftover(ckpt_path);
    EXPECT_FALSE(leftover.good()) << "snapshot not cleaned up";
    EXPECT_EQ(loadCompletedHashes(out.path()).size(), 16u);
    std::remove(ckpt_path.c_str());
}

/** An unusable snapshot (corrupted on disk by the crash) must not
 *  poison the resume: the job falls back to a fresh run, still
 *  produces reference metrics, and the junk file is cleaned up. */
TEST(CampaignEngineTest, CorruptSnapshotFallsBackToFreshRun)
{
    CampaignSpec spec;
    spec.name = "ckpt-fallback";
    spec.base.warmupRefs = 1'000;
    spec.base.measureRefs = 6'000;
    spec.workloads.push_back(CampaignWorkload::mix("WL1"));
    spec.policies = {PolicyKind::Lap};

    EngineOptions serial;
    serial.jobs = 1;
    const CampaignResult reference = runCampaign(spec, serial);
    ASSERT_EQ(reference.completed(), 1u);

    TempFile out("ckptfallback");
    const std::string ckpt_path =
        jobCheckpointPath(out.path(), reference.jobs[0]);
    {
        std::ofstream junk(ckpt_path, std::ios::binary);
        junk << "not a checkpoint at all";
    }
    ASSERT_FALSE(
        checkpointIsValid(ckpt_path, reference.jobs[0].config));

    EngineOptions resume;
    resume.jobs = 1;
    resume.outPath = out.path();
    resume.midJobRestore = true;
    const CampaignResult b = runCampaign(spec, resume);
    ASSERT_EQ(b.completed(), 1u);
    expectIdenticalMetrics(reference.outcomes[0].metrics,
                           b.outcomes[0].metrics);

    std::ifstream leftover(ckpt_path);
    EXPECT_FALSE(leftover.good()) << "junk snapshot not cleaned up";
    std::remove(ckpt_path.c_str());
}

TEST(CampaignEngineTest, FatalJobIsRecordedFailedWithoutKillingRun)
{
    CampaignSpec spec;
    spec.name = "partial";
    spec.base.warmupRefs = 500;
    spec.base.measureRefs = 2'000;
    spec.workloads.push_back(CampaignWorkload::mix("WL1"));
    spec.workloads.push_back(CampaignWorkload::mix("NO_SUCH_MIX"));
    spec.workloads.push_back(
        CampaignWorkload::duplicate("omnetpp"));

    TempFile out("failed");
    EngineOptions opts;
    opts.jobs = 3;
    opts.outPath = out.path();
    const CampaignResult result = runCampaign(spec, opts);

    ASSERT_EQ(result.jobs.size(), 3u);
    EXPECT_EQ(result.completed(), 2u);
    EXPECT_EQ(result.failed(), 1u);
    EXPECT_EQ(result.outcomes[1].status, JobStatus::Failed);
    EXPECT_NE(result.outcomes[1].error.find("unknown mix"),
              std::string::npos);

    // The failed row is archived (status "failed") but not counted
    // as completed, so a resume retries exactly that job.
    EXPECT_EQ(loadCompletedHashes(out.path()).size(), 2u);
    std::size_t failed_rows = 0;
    for (const auto &row : loadJsonl(out.path()))
        failed_rows += rowValue(row, "status") == "failed" ? 1 : 0;
    EXPECT_EQ(failed_rows, 1u);

    EngineOptions resume = opts;
    resume.resume = true;
    const CampaignResult second = runCampaign(spec, resume);
    EXPECT_EQ(second.skipped(), 2u);
    EXPECT_EQ(second.failed(), 1u);
}

TEST(CampaignEngineTest, AuditorRidesAlongPerJob)
{
    CampaignSpec spec;
    spec.name = "audited";
    spec.base.warmupRefs = 500;
    spec.base.measureRefs = 2'000;
    spec.base.auditInterval = 256; // fail-fast invariant checking
    spec.workloads.push_back(CampaignWorkload::mix("WH1"));
    spec.policies = {PolicyKind::Exclusive, PolicyKind::Lap};

    EngineOptions opts;
    opts.jobs = 2;
    const CampaignResult result = runCampaign(spec, opts);
    EXPECT_EQ(result.completed(), 2u);
}

TEST(CampaignEngineTest, EpochRowsStreamThroughSinkAndResume)
{
    CampaignSpec spec;
    spec.name = "epochs";
    spec.base.warmupRefs = 1'000;
    spec.base.measureRefs = 8'000;
    spec.base.epochStatsInterval = 2'000; // several epochs per job
    spec.workloads.push_back(CampaignWorkload::mix("WL1"));
    spec.policies = {PolicyKind::NonInclusive, PolicyKind::Lap};

    TempFile out("epochs");
    EngineOptions opts;
    opts.jobs = 2;
    opts.outPath = out.path();
    const CampaignResult result = runCampaign(spec, opts);
    ASSERT_EQ(result.completed(), 2u);

    // The sink interleaves typed rows: each job contributes its
    // epoch rows plus exactly one result row, and every epoch row
    // carries the owning job's hash and a parseable counter.
    std::set<std::string> result_hashes;
    std::size_t epoch_rows = 0;
    for (const auto &row : loadJsonl(out.path())) {
        const std::string type = rowValue(row, "type", "result");
        if (type == "result") {
            result_hashes.insert(rowValue(row, "hash"));
            continue;
        }
        ASSERT_EQ(type, "epoch");
        ++epoch_rows;
        EXPECT_TRUE(result_hashes.count(rowValue(row, "hash")) == 0)
            << "epoch row written after its result row";
        EXPECT_FALSE(rowValue(row, "llcMisses").empty());
        EXPECT_FALSE(rowValue(row, "label").empty());
    }
    EXPECT_EQ(result_hashes.size(), 2u);
    EXPECT_GE(epoch_rows, 2u * 2u) << "expected multiple epochs/job";

    // Only result rows count as completed work: a resume skips both
    // jobs even though epoch rows outnumber them.
    EXPECT_EQ(loadCompletedHashes(out.path()).size(), 2u);
    EngineOptions resume = opts;
    resume.resume = true;
    const CampaignResult second = runCampaign(spec, resume);
    EXPECT_EQ(second.skipped(), 2u);
    EXPECT_EQ(second.completed(), 0u);
}

TEST(CampaignSpecTest, ParsesSpecText)
{
    const std::string text =
        "# fig14-style sweep\n"
        "name demo\n"
        "seed 3\n"
        "set warmup 1000\n"
        "set refs 4000\n"
        "axis llc-mb 4,8\n"
        "policies noni,lap\n"
        "mix WL1,WH1\n"
        "duplicate omnetpp\n"
        "parsec streamcluster\n";
    const CampaignSpec spec = parseCampaignSpec(text);
    EXPECT_EQ(spec.name, "demo");
    EXPECT_EQ(spec.seed, 3u);
    EXPECT_EQ(spec.base.warmupRefs, 1'000u);
    EXPECT_EQ(spec.base.measureRefs, 4'000u);
    ASSERT_EQ(spec.axes.size(), 1u);
    EXPECT_EQ(spec.axes[0].field, "llc-mb");
    ASSERT_EQ(spec.workloads.size(), 4u);
    EXPECT_EQ(spec.workloads[3].kind,
              CampaignWorkload::Kind::Parsec);

    // 4 workloads x 2 policies x 2 axis values.
    EXPECT_EQ(expandCampaign(spec).size(), 16u);

    // Parsec jobs get coherence switched on.
    bool saw_parsec = false;
    for (const auto &job : expandCampaign(spec)) {
        if (job.workload.kind == CampaignWorkload::Kind::Parsec) {
            saw_parsec = true;
            EXPECT_TRUE(job.config.coherence);
        }
    }
    EXPECT_TRUE(saw_parsec);
}

TEST(CampaignSpecTest, SpecRejectsUnknownKeywordsAndFields)
{
    const ScopedFatalThrow guard;
    EXPECT_THROW(parseCampaignSpec("wibble 3\n"), FatalError);
    EXPECT_THROW(parseCampaignSpec("set no-such-field 3\n"),
                 FatalError);
    EXPECT_THROW(
        expandCampaign(parseCampaignSpec("mix WL1\naxis bogus 1,2\n")),
        FatalError);
    EXPECT_THROW(expandCampaign(CampaignSpec{}), FatalError);
}

TEST(ConfigFieldsTest, RegistryAppliesAndSerializes)
{
    SimConfig config;
    EXPECT_TRUE(applyConfigField(config, "cores", "8"));
    EXPECT_TRUE(applyConfigField(config, "llc-mb", "4"));
    EXPECT_TRUE(applyConfigField(config, "policy", "lap"));
    EXPECT_TRUE(applyConfigField(config, "tech", "sram"));
    EXPECT_TRUE(applyConfigField(config, "placement", "lhybrid"));
    EXPECT_TRUE(applyConfigField(config, "dasca", "on"));
    EXPECT_FALSE(applyConfigField(config, "not-a-field", "1"));

    EXPECT_EQ(config.numCores, 8u);
    EXPECT_EQ(config.llcSize, 4u * 1024 * 1024);
    EXPECT_EQ(config.policy, PolicyKind::Lap);
    EXPECT_EQ(config.llcTech, MemTech::SRAM);
    EXPECT_TRUE(config.hybridLlc) << "placement implies hybrid";
    EXPECT_TRUE(config.deadWriteBypass);

    EXPECT_EQ(configFieldValue(config, "cores"), "8");
    EXPECT_EQ(configFieldValue(config, "llc-kb"), "4096");

    // configKey covers every registered field and round-trips the
    // values just set.
    const std::string key = configKey(config);
    EXPECT_NE(key.find("cores=8|"), std::string::npos);
    EXPECT_NE(key.find("llc-kb=4096|"), std::string::npos);
    // Audit is observe-only and deliberately excluded.
    applyConfigField(config, "audit", "100");
    EXPECT_EQ(configKey(config), key);
}

TEST(ConfigFieldsTest, MalformedValuesAreFatal)
{
    const ScopedFatalThrow guard;
    SimConfig config;
    EXPECT_THROW(applyConfigField(config, "cores", "zero"),
                 FatalError);
    EXPECT_THROW(applyConfigField(config, "cores", "0"), FatalError);
    EXPECT_THROW(applyConfigField(config, "tech", "dram"),
                 FatalError);
    EXPECT_THROW(applyConfigField(config, "dasca", "maybe"),
                 FatalError);
}

TEST(JsonlTest, ParsesWriterOutputRoundTrip)
{
    CampaignJob job;
    job.hash = "0123456789abcdef";
    job.label = "WH1/lap \"quoted\"";
    job.workload = CampaignWorkload::mix("WH1");
    JobOutcome outcome;
    outcome.status = JobStatus::Ok;
    outcome.metrics.instructions = 123456;
    outcome.metrics.epi = 0.4375;
    outcome.wallMs = 12.5;

    JsonRow row;
    ASSERT_TRUE(
        parseJsonObject(jobToJsonRow("rt", job, outcome), row));
    EXPECT_EQ(rowValue(row, "hash"), job.hash);
    EXPECT_EQ(rowValue(row, "label"), job.label);
    EXPECT_EQ(rowValue(row, "status"), "ok");
    EXPECT_EQ(rowValue(row, "metrics.instructions"), "123456");
    EXPECT_EQ(rowValue(row, "metrics.epi"), "0.4375");
    EXPECT_EQ(rowValue(row, "config.numCores"), "4");

    JsonRow bad;
    EXPECT_FALSE(parseJsonObject("{\"a\":", bad));
    EXPECT_FALSE(parseJsonObject("not json", bad));
    JsonRow nested;
    EXPECT_TRUE(parseJsonObject(
        "{\"a\":{\"b\":[1,2]},\"c\":true}", nested));
    EXPECT_EQ(rowValue(nested, "a.b.1"), "2");
    EXPECT_EQ(rowValue(nested, "c"), "true");
}

TEST(AggregateTest, BuildsNormalizedTableFromRows)
{
    auto make_row = [](const std::string &mix, const std::string &pol,
                       double epi) {
        JsonRow row;
        row["status"] = "ok";
        row["workload"] = mix;
        row["config.policy"] = pol;
        row["metrics.epi"] = std::to_string(epi);
        return row;
    };
    std::vector<JsonRow> rows{
        make_row("WL1", "noni", 2.0), make_row("WL1", "lap", 1.0),
        make_row("WH1", "noni", 4.0), make_row("WH1", "lap", 3.0),
        // A stale duplicate earlier in the file loses to the
        // re-run appended later (resume semantics).
        make_row("WH1", "lap", 2.0),
    };

    AggregateSpec spec;
    spec.normalizeCol = "noni";
    const std::string table = aggregateRows(rows, spec).toCsv();
    EXPECT_NE(table.find("WL1,1.000,0.500"), std::string::npos)
        << table;
    EXPECT_NE(table.find("WH1,1.000,0.500"), std::string::npos)
        << table;
    EXPECT_NE(table.find("mean,1.000,0.500"), std::string::npos)
        << table;
}

TEST(LoggingTest, ScopedFatalThrowConfinesAndNests)
{
    EXPECT_FALSE(fatalThrowsOnThisThread());
    {
        const ScopedFatalThrow outer;
        EXPECT_TRUE(fatalThrowsOnThisThread());
        {
            const ScopedFatalThrow inner;
            EXPECT_TRUE(fatalThrowsOnThisThread());
            try {
                lap_fatal("boom %d", 42);
                FAIL() << "fatal did not throw";
            } catch (const FatalError &err) {
                EXPECT_NE(std::string(err.what()).find("boom 42"),
                          std::string::npos);
            }
        }
        EXPECT_TRUE(fatalThrowsOnThisThread());
    }
    EXPECT_FALSE(fatalThrowsOnThisThread());
}
