/**
 * @file
 * Checkpoint rejection battery: malformed, corrupted and mismatched
 * snapshot files must be refused with a *specific* diagnostic and
 * must never crash, over-read or mis-restore — CI runs this suite
 * under ASan/UBSan.
 *
 * Covers every fault the frame validator distinguishes: unreadable
 * path, truncation (header-level and payload-level), foreign magic,
 * unsupported schema version, CRC mismatch and a checkpoint taken
 * under a different configuration. Also checks the fault ordering
 * contract — a corrupted file reports the CRC failure, never a
 * config mismatch — and that checkpointIsValid() (the campaign
 * resume probe) answers false without raising.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <unistd.h>

#include "common/logging.hh"
#include "sim/checkpoint.hh"
#include "sim/simulator.hh"
#include "workloads/mixes.hh"

namespace lap
{
namespace
{

SimConfig
smallConfig()
{
    SimConfig cfg;
    cfg.numCores = 2;
    cfg.l1Size = 4 * 1024;
    cfg.l2Size = 32 * 1024;
    cfg.llcSize = 256 * 1024;
    cfg.warmupRefs = 2'000;
    cfg.measureRefs = 6'000;
    return cfg;
}

std::string
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

void
writeAll(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

/** Runs readCheckpointFile and returns the fatal diagnostic. */
std::string
rejectionMessage(const std::string &path, const SimConfig &config)
{
    try {
        const ScopedFatalThrow guard;
        readCheckpointFile(path, config);
    } catch (const FatalError &err) {
        return err.what();
    }
    return "";
}

class CheckpointCorruption : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        config_ = smallConfig();
        Simulator sim(config_);
        bool saved = false;
        sim.setCheckpointHook(4'000, [&](std::uint64_t) {
            if (saved)
                return;
            saved = true;
            sim.saveCheckpoint(path_);
        });
        sim.run(resolveMix(duplicateMix("mcf", 2)));
        ASSERT_TRUE(saved);
        bytes_ = readAll(path_);
        ASSERT_GT(bytes_.size(), 64u);
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
    }

    /** Rewrites the file as a mutated copy of the valid snapshot. */
    void
    mutate(const std::function<void(std::string &)> &edit)
    {
        std::string copy = bytes_;
        edit(copy);
        writeAll(path_, copy);
    }

    SimConfig config_;
    /** Unique per process: parallel ctest runs several suites from
     *  the same working directory, so a fixed relative name races. */
    std::string path_ = "/tmp/lapsim_ckpt_corruption_"
        + std::to_string(::getpid()) + ".ckpt";
    std::string bytes_;
};

TEST_F(CheckpointCorruption, ValidSnapshotIsAccepted)
{
    EXPECT_TRUE(checkpointIsValid(path_, config_));
    EXPECT_FALSE(readCheckpointFile(path_, config_).empty());
}

TEST_F(CheckpointCorruption, MissingFileIsUnreadable)
{
    const std::string msg =
        rejectionMessage("no_such_file.ckpt", config_);
    EXPECT_NE(msg.find("cannot read checkpoint"), std::string::npos)
        << msg;
    EXPECT_FALSE(checkpointIsValid("no_such_file.ckpt", config_));
}

TEST_F(CheckpointCorruption, HeaderTruncationIsReported)
{
    mutate([](std::string &b) { b.resize(10); });
    const std::string msg = rejectionMessage(path_, config_);
    EXPECT_NE(msg.find("is truncated"), std::string::npos) << msg;
    EXPECT_FALSE(checkpointIsValid(path_, config_));
}

TEST_F(CheckpointCorruption, PayloadTruncationIsReported)
{
    mutate([](std::string &b) { b.resize(b.size() / 2); });
    const std::string msg = rejectionMessage(path_, config_);
    EXPECT_NE(msg.find("is truncated"), std::string::npos) << msg;
    EXPECT_FALSE(checkpointIsValid(path_, config_));
}

TEST_F(CheckpointCorruption, TrailingGarbageIsReported)
{
    mutate([](std::string &b) { b += "extra"; });
    const std::string msg = rejectionMessage(path_, config_);
    EXPECT_NE(msg.find("is truncated"), std::string::npos) << msg;
    EXPECT_FALSE(checkpointIsValid(path_, config_));
}

TEST_F(CheckpointCorruption, ForeignMagicIsReported)
{
    mutate([](std::string &b) { b[0] = 'X'; });
    const std::string msg = rejectionMessage(path_, config_);
    EXPECT_NE(msg.find("is not a lapsim checkpoint"),
              std::string::npos)
        << msg;
    EXPECT_FALSE(checkpointIsValid(path_, config_));
}

TEST_F(CheckpointCorruption, UnsupportedVersionIsReported)
{
    // The schema version is the little-endian u32 after the magic.
    mutate([](std::string &b) { b[8] = static_cast<char>(0x7f); });
    const std::string msg = rejectionMessage(path_, config_);
    EXPECT_NE(msg.find("has schema version"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("regenerate the snapshot"), std::string::npos)
        << msg;
    EXPECT_FALSE(checkpointIsValid(path_, config_));
}

TEST_F(CheckpointCorruption, FlippedPayloadByteFailsCrc)
{
    // Offset 40 lands well inside the payload (header is 28 bytes).
    mutate([](std::string &b) {
        b[40] = static_cast<char>(b[40] ^ 0x01);
    });
    const std::string msg = rejectionMessage(path_, config_);
    EXPECT_NE(msg.find("failed its CRC check"), std::string::npos)
        << msg;
    EXPECT_FALSE(checkpointIsValid(path_, config_));
}

TEST_F(CheckpointCorruption, FlippedCrcByteFailsCrc)
{
    mutate([](std::string &b) {
        b[b.size() - 1] = static_cast<char>(b[b.size() - 1] ^ 0xff);
    });
    const std::string msg = rejectionMessage(path_, config_);
    EXPECT_NE(msg.find("failed its CRC check"), std::string::npos)
        << msg;
    EXPECT_FALSE(checkpointIsValid(path_, config_));
}

TEST_F(CheckpointCorruption, DifferentConfigurationIsReported)
{
    SimConfig other = config_;
    other.llcSize = 512 * 1024;
    const std::string msg = rejectionMessage(path_, other);
    EXPECT_NE(msg.find("different configuration"), std::string::npos)
        << msg;
    EXPECT_FALSE(checkpointIsValid(path_, other));
}

/** Corruption must win over configuration: a damaged file reports
 *  the CRC failure even when the config hash also disagrees, so a
 *  user never chases a phantom configuration diff. */
TEST_F(CheckpointCorruption, CorruptionReportsCrcNotConfig)
{
    mutate([](std::string &b) {
        b[40] = static_cast<char>(b[40] ^ 0x01);
    });
    SimConfig other = config_;
    other.llcSize = 512 * 1024;
    const std::string msg = rejectionMessage(path_, other);
    EXPECT_NE(msg.find("failed its CRC check"), std::string::npos)
        << msg;
}

/** End to end: a Simulator asked to restore a corrupted snapshot
 *  refuses before touching any simulation state. */
TEST_F(CheckpointCorruption, SimulatorRefusesCorruptedRestore)
{
    mutate([](std::string &b) {
        b[40] = static_cast<char>(b[40] ^ 0x01);
    });
    SimConfig restore = config_;
    restore.restorePath = path_;
    try {
        const ScopedFatalThrow guard;
        Simulator sim(restore);
        sim.run(resolveMix(duplicateMix("mcf", 2)));
        FAIL() << "corrupted restore was accepted";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("failed its CRC check"),
                  std::string::npos)
            << err.what();
    }
}

/** checkpoint-every without a destination is a config error. */
TEST(CheckpointConfig, PeriodicWithoutPathIsRejected)
{
    SimConfig cfg = smallConfig();
    cfg.checkpointEvery = 1'000;
    try {
        const ScopedFatalThrow guard;
        validateConfig(cfg);
        FAIL() << "checkpoint-every without checkpoint-out accepted";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("checkpoint-every"),
                  std::string::npos)
            << err.what();
    }
}

} // namespace
} // namespace lap
