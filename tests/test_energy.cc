/**
 * @file
 * Unit tests for src/energy: Table I parameters, write/read ratio
 * scaling, published design points, and the EPI arithmetic.
 */

#include <gtest/gtest.h>

#include "energy/energy_model.hh"
#include "energy/tech_params.hh"

namespace lap
{
namespace
{

TEST(TechParams, TableOneSram)
{
    const TechParams p = sramTechParams();
    EXPECT_EQ(p.tech, MemTech::SRAM);
    EXPECT_DOUBLE_EQ(p.readEnergy, 0.072);
    EXPECT_DOUBLE_EQ(p.writeEnergy, 0.056);
    EXPECT_DOUBLE_EQ(p.leakagePerTwoMb, 50.736);
    EXPECT_DOUBLE_EQ(p.areaMm2, 1.65);
}

TEST(TechParams, TableOneStt)
{
    const TechParams p = sttTechParams();
    EXPECT_EQ(p.tech, MemTech::STTRAM);
    EXPECT_DOUBLE_EQ(p.readEnergy, 0.133);
    EXPECT_DOUBLE_EQ(p.writeEnergy, 0.436);
    EXPECT_DOUBLE_EQ(p.leakagePerTwoMb, 7.108);
    EXPECT_EQ(p.writeLatency, 33u);
}

TEST(TechParams, PaperAsymmetryAnchors)
{
    const TechParams sram = sramTechParams();
    const TechParams stt = sttTechParams();
    // STT write energy ~8x SRAM write energy (paper Section II-A).
    EXPECT_NEAR(stt.writeEnergy / sram.writeEnergy, 8.0, 0.3);
    // STT leakage ~1/7 of SRAM.
    EXPECT_NEAR(sram.leakagePerTwoMb / stt.leakagePerTwoMb, 7.0, 0.2);
    // Write/read ratio of the baseline STT design is ~3.3.
    EXPECT_NEAR(stt.writeReadRatio(), 3.28, 0.05);
}

TEST(TechParams, WriteReadRatioScaling)
{
    const TechParams base = sttTechParams();
    for (double ratio : {1.0, 2.0, 7.5, 23.0}) {
        const TechParams scaled = base.withWriteReadRatio(ratio);
        EXPECT_DOUBLE_EQ(scaled.readEnergy, base.readEnergy);
        EXPECT_DOUBLE_EQ(scaled.leakagePerTwoMb, base.leakagePerTwoMb);
        EXPECT_NEAR(scaled.writeReadRatio(), ratio, 1e-12);
    }
}

TEST(TechParams, PublishedDesignPointsSpanRatios)
{
    const auto points = publishedSttDesignPoints();
    ASSERT_GE(points.size(), 10u);
    double prev = 0.0;
    for (const auto &p : points) {
        EXPECT_FALSE(p.label.empty());
        EXPECT_GT(p.params.writeReadRatio(), prev);
        prev = p.params.writeReadRatio();
    }
    // The paper's Fig 23 spans roughly 2x to >20x.
    EXPECT_LT(points.front().params.writeReadRatio(), 3.0);
    EXPECT_GT(points.back().params.writeReadRatio(), 20.0);
}

TEST(TechParams, OtherNvmPresets)
{
    const TechParams pcm = pcmTechParams();
    const TechParams rram = rramTechParams();
    const TechParams stt = sttTechParams();
    // The paper's generality argument: asymmetry spans technologies.
    EXPECT_GT(pcm.writeReadRatio(), rram.writeReadRatio());
    EXPECT_GT(rram.writeReadRatio(), stt.writeReadRatio());
    EXPECT_NEAR(pcm.writeReadRatio(), 12.0, 0.5);
    EXPECT_NEAR(rram.writeReadRatio(), 7.0, 0.5);
    // All NVMs leak far less than SRAM.
    const TechParams sram = sramTechParams();
    EXPECT_LT(pcm.leakagePerTwoMb, sram.leakagePerTwoMb / 5);
    EXPECT_LT(rram.leakagePerTwoMb, sram.leakagePerTwoMb / 5);
}

TEST(EnergyModel, LeakageConversion)
{
    EnergyModel em(3.0);
    // 3mW over 3e9 cycles at 3GHz = 3mW * 1s = 3mJ = 3e6 nJ.
    EXPECT_NEAR(em.leakageNj(3.0, 3'000'000'000ULL), 3e6, 1.0);
    EXPECT_DOUBLE_EQ(em.leakageNj(5.0, 0), 0.0);
}

TEST(EnergyModel, DataArrayDynamicEnergy)
{
    EnergyModel em(3.0);
    EnergyCounters c;
    c.dataReads = 100;
    c.dataWrites = 10;
    const auto e =
        em.dataArray(sttTechParams(), 2 * 1024 * 1024, c, 0);
    EXPECT_NEAR(e.dynamicNj, 100 * 0.133 + 10 * 0.436, 1e-9);
    EXPECT_DOUBLE_EQ(e.staticNj, 0.0);
}

TEST(EnergyModel, LeakageScalesWithCapacity)
{
    EnergyModel em(3.0);
    EnergyCounters none;
    const Cycle cycles = 1'000'000;
    const auto two =
        em.dataArray(sttTechParams(), 2 * 1024 * 1024, none, cycles);
    const auto eight =
        em.dataArray(sttTechParams(), 8 * 1024 * 1024, none, cycles);
    EXPECT_NEAR(eight.staticNj, 4.0 * two.staticNj, 1e-6);
}

TEST(EnergyModel, TagArray)
{
    EnergyModel em(3.0);
    const auto e = em.tagArray(8 * 1024 * 1024, 1000, 0);
    EXPECT_NEAR(e.dynamicNj, 1000 * 0.015, 1e-9);
    const auto half = em.tagArray(4 * 1024 * 1024, 0, 3000);
    const auto full = em.tagArray(8 * 1024 * 1024, 0, 3000);
    EXPECT_NEAR(full.staticNj, 2.0 * half.staticNj, 1e-9);
}

TEST(EnergyModel, BreakdownAccumulates)
{
    EnergyBreakdown a{1.0, 2.0};
    EnergyBreakdown b{10.0, 20.0};
    a += b;
    EXPECT_DOUBLE_EQ(a.staticNj, 11.0);
    EXPECT_DOUBLE_EQ(a.dynamicNj, 22.0);
    EXPECT_DOUBLE_EQ(a.totalNj(), 33.0);
}

TEST(EnergyModel, PaperDynamicVsLeakagePremise)
{
    // The paper's premise: for STT-RAM, dynamic write energy can
    // rival leakage. Sanity-check with plausible rates: an 8MB STT
    // LLC leaking 4*7.108mW over 1 second vs 50M writes.
    EnergyModel em(3.0);
    const Cycle second = 3'000'000'000ULL;
    EnergyCounters c;
    c.dataWrites = 50'000'000;
    const auto e =
        em.dataArray(sttTechParams(), 8 * 1024 * 1024, c, second);
    EXPECT_GT(e.dynamicNj, 0.5 * e.staticNj);
}

} // namespace
} // namespace lap
