/**
 * @file
 * Randomized audit fuzzer: hammers every inclusion policy with
 * seeded-random traffic while a fail-fast HierarchyAuditor rides
 * along, so any transaction sequence that leaves the hierarchy in a
 * state violating the invariant catalog aborts the test at the first
 * bad audit. Each policy kind sees at least 100k transactions across
 * single-core, coherent multi-core, and private multi-core shapes;
 * the LAP policy additionally runs on the hybrid LLC under every
 * Lhybrid placement variant.
 *
 * The traffic mix deliberately exercises the paths the auditor
 * reasons about: a hot loop-like window (loop trips, loop-bit
 * refreshes), a wider cold region (evictions, back-invalidations),
 * demand writes (classification downgrades, dirty victims),
 * occasional private-cache flushes, stat resets (rebaselining), and
 * tracker flushes, with simulated time advancing so the set-dueling
 * policies (FLEXclusion, Dswitch) cross epoch boundaries and switch
 * per-set modes mid-run.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/rng.hh"
#include "core/hybrid_placement.hh"
#include "test_util.hh"

namespace lap
{
namespace
{

using test::tinyHybridParams;
using test::tinyParams;

enum class Shape
{
    OneCore,       //!< single core, one address range.
    SharedCoherent, //!< 2 cores, shared range, snooping on.
    PrivateRanges, //!< 2 cores, disjoint ranges, snooping off.
};

enum class Placement
{
    None,
    Lhybrid,
    WinvOnly,
    LoopSttOnly,
    NloopSramOnly,
};

struct FuzzSpec
{
    PolicyKind kind;
    Shape shape;
    Placement placement;
    /** Transactions to complete (the loop runs until the hierarchy's
     *  transaction counter reaches this). */
    std::uint64_t transactions;
    std::uint64_t seed;
};

std::unique_ptr<PlacementPolicy>
makePlacement(Placement p)
{
    switch (p) {
      case Placement::None: return nullptr;
      case Placement::Lhybrid: return LhybridPlacement::lhybrid();
      case Placement::WinvOnly: return LhybridPlacement::winvOnly();
      case Placement::LoopSttOnly: return LhybridPlacement::loopSttOnly();
      case Placement::NloopSramOnly:
        return LhybridPlacement::nloopSramOnly();
    }
    return nullptr;
}

const char *
toString(Shape s)
{
    switch (s) {
      case Shape::OneCore: return "1core";
      case Shape::SharedCoherent: return "2coreShared";
      case Shape::PrivateRanges: return "2corePrivate";
    }
    return "?";
}

const char *
toString(Placement p)
{
    switch (p) {
      case Placement::None: return "";
      case Placement::Lhybrid: return "Lhybrid";
      case Placement::WinvOnly: return "Winv";
      case Placement::LoopSttOnly: return "LoopStt";
      case Placement::NloopSramOnly: return "NloopSram";
    }
    return "?";
}

std::string
specName(const ::testing::TestParamInfo<FuzzSpec> &info)
{
    std::string name = lap::toString(info.param.kind);
    for (auto &ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch)))
            ch = '_';
    }
    name += "_";
    name += toString(info.param.shape);
    if (info.param.placement != Placement::None) {
        name += "_";
        name += toString(info.param.placement);
    }
    return name;
}

class AuditFuzz : public ::testing::TestWithParam<FuzzSpec>
{
};

TEST_P(AuditFuzz, RandomTrafficSatisfiesEveryInvariant)
{
    const FuzzSpec &spec = GetParam();
    const std::uint32_t cores =
        spec.shape == Shape::OneCore ? 1u : 2u;
    HierarchyParams hp = spec.placement == Placement::None
        ? tinyParams(cores)
        : tinyHybridParams(cores);
    hp.coherence = spec.shape == Shape::SharedCoherent;

    PolicyTuning tuning;
    tuning.epochCycles = 10'000;
    tuning.leaderPeriod = 2;
    const std::uint64_t sets = hp.llc.sizeBytes
        / (static_cast<std::uint64_t>(hp.llc.assoc) * hp.llc.blockBytes);
    CacheHierarchy hier(hp, makeInclusionPolicy(spec.kind, sets, tuning),
                        makePlacement(spec.placement));

    AuditorConfig ac;
    ac.mode = AuditMode::FailFast;
    ac.interval = 16;
    HierarchyAuditor auditor(hier, spec.kind, ac);

    Rng rng(spec.seed);
    Cycle now = 0;
    while (hier.transactionCount() < spec.transactions) {
        const CoreId core = static_cast<CoreId>(rng.below(cores));
        // Disjoint per-core ranges when snooping is off: without
        // coherence, cross-core sharing would be a legitimate
        // verifier failure, not an auditor bug.
        const std::uint64_t base =
            spec.shape == Shape::PrivateRanges
                ? static_cast<std::uint64_t>(core) << 16
                : 0;
        // 60% of traffic in a hot loop-like window (fits the LLC,
        // exceeds L2: loop trips and loop-bit refreshes); the rest
        // in a wider region forcing LLC evictions.
        const std::uint64_t idx =
            rng.chance(0.6) ? rng.below(96) : rng.below(512);
        const Addr addr = (base + idx) * 64;

        if (rng.chance(1.0 / 4096)) {
            hier.flushPrivate(core, now);
        } else if (rng.chance(1.0 / 8192)) {
            hier.resetStats();
        } else if (rng.chance(1.0 / 8192)) {
            hier.finishMeasurement();
        } else {
            const AccessType type = rng.chance(0.3) ? AccessType::Write
                                                    : AccessType::Read;
            hier.access(core, addr, type, now);
        }
        now += rng.below(16) + 1;
    }

    // One last full pass over the final state.
    auditor.auditNow();

    EXPECT_GE(auditor.auditsRun(), spec.transactions / ac.interval);
    EXPECT_EQ(auditor.violationCount(), 0u);
    // The run must have been long enough to cross set-dueling epoch
    // boundaries (mid-run FLEXclusion/Dswitch mode switches).
    EXPECT_GT(now, 10 * tuning.epochCycles);
}

constexpr std::uint64_t kFull = 100'000;
constexpr std::uint64_t kMulti = 60'000;
constexpr std::uint64_t kAblation = 40'000;

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, AuditFuzz,
    ::testing::Values(
        // Single core: the full 100k per policy kind.
        FuzzSpec{PolicyKind::Inclusive, Shape::OneCore, Placement::None,
                 kFull, 0xA001},
        FuzzSpec{PolicyKind::NonInclusive, Shape::OneCore,
                 Placement::None, kFull, 0xA002},
        FuzzSpec{PolicyKind::Exclusive, Shape::OneCore, Placement::None,
                 kFull, 0xA003},
        FuzzSpec{PolicyKind::Flexclusion, Shape::OneCore,
                 Placement::None, kFull, 0xA004},
        FuzzSpec{PolicyKind::Dswitch, Shape::OneCore, Placement::None,
                 kFull, 0xA005},
        FuzzSpec{PolicyKind::LapLru, Shape::OneCore, Placement::None,
                 kFull, 0xA006},
        FuzzSpec{PolicyKind::LapLoop, Shape::OneCore, Placement::None,
                 kFull, 0xA007},
        FuzzSpec{PolicyKind::Lap, Shape::OneCore, Placement::None,
                 kFull, 0xA008},
        // Two cores sharing one range under MOESI snooping.
        FuzzSpec{PolicyKind::Inclusive, Shape::SharedCoherent,
                 Placement::None, kMulti, 0xB001},
        FuzzSpec{PolicyKind::NonInclusive, Shape::SharedCoherent,
                 Placement::None, kMulti, 0xB002},
        FuzzSpec{PolicyKind::Exclusive, Shape::SharedCoherent,
                 Placement::None, kMulti, 0xB003},
        FuzzSpec{PolicyKind::Flexclusion, Shape::SharedCoherent,
                 Placement::None, kMulti, 0xB004},
        FuzzSpec{PolicyKind::Dswitch, Shape::SharedCoherent,
                 Placement::None, kMulti, 0xB005},
        FuzzSpec{PolicyKind::LapLru, Shape::SharedCoherent,
                 Placement::None, kMulti, 0xB006},
        FuzzSpec{PolicyKind::LapLoop, Shape::SharedCoherent,
                 Placement::None, kMulti, 0xB007},
        FuzzSpec{PolicyKind::Lap, Shape::SharedCoherent,
                 Placement::None, kMulti, 0xB008},
        // Two cores on disjoint ranges, snooping off.
        FuzzSpec{PolicyKind::Inclusive, Shape::PrivateRanges,
                 Placement::None, kMulti, 0xC001},
        FuzzSpec{PolicyKind::NonInclusive, Shape::PrivateRanges,
                 Placement::None, kMulti, 0xC002},
        FuzzSpec{PolicyKind::Exclusive, Shape::PrivateRanges,
                 Placement::None, kMulti, 0xC003},
        FuzzSpec{PolicyKind::Flexclusion, Shape::PrivateRanges,
                 Placement::None, kMulti, 0xC004},
        FuzzSpec{PolicyKind::Dswitch, Shape::PrivateRanges,
                 Placement::None, kMulti, 0xC005},
        FuzzSpec{PolicyKind::LapLru, Shape::PrivateRanges,
                 Placement::None, kMulti, 0xC006},
        FuzzSpec{PolicyKind::LapLoop, Shape::PrivateRanges,
                 Placement::None, kMulti, 0xC007},
        FuzzSpec{PolicyKind::Lap, Shape::PrivateRanges, Placement::None,
                 kMulti, 0xC008},
        // LAP on the hybrid LLC: the paper's Lhybrid combination at
        // full length, plus the three ablation placements.
        FuzzSpec{PolicyKind::Lap, Shape::OneCore, Placement::Lhybrid,
                 kFull, 0xD001},
        FuzzSpec{PolicyKind::Lap, Shape::SharedCoherent,
                 Placement::Lhybrid, kMulti, 0xD002},
        FuzzSpec{PolicyKind::Lap, Shape::OneCore, Placement::WinvOnly,
                 kAblation, 0xD003},
        FuzzSpec{PolicyKind::Lap, Shape::OneCore, Placement::LoopSttOnly,
                 kAblation, 0xD004},
        FuzzSpec{PolicyKind::Lap, Shape::OneCore,
                 Placement::NloopSramOnly, kAblation, 0xD005}),
    specName);

} // namespace
} // namespace lap
