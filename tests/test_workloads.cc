/**
 * @file
 * Tests for the synthetic workload generators: determinism, address
 * layout (disjoint private spaces, common shared ranges), region
 * behaviour, write fractions, and the benchmark/mix catalogues.
 */

#include <gtest/gtest.h>

#include <set>

#include "workloads/mixes.hh"
#include "workloads/parsec.hh"
#include "workloads/regions.hh"
#include "workloads/spec2006.hh"

namespace lap
{
namespace
{

WorkloadSpec
loopOnlySpec(std::uint64_t size = 64 * 1024)
{
    WorkloadSpec spec;
    spec.name = "loop-only";
    RegionSpec r;
    r.kind = RegionKind::Loop;
    r.sizeBytes = size;
    r.weight = 1.0;
    r.accessesPerBlock = 2;
    spec.regions = {r};
    spec.seed = 9;
    return spec;
}

TEST(SyntheticTrace, DeterministicPerSeed)
{
    const WorkloadSpec spec = spec2006Benchmark("omnetpp");
    SyntheticTrace a(spec, 0, 1 << 30, 1ULL << 50);
    SyntheticTrace b(spec, 0, 1 << 30, 1ULL << 50);
    for (int i = 0; i < 5000; ++i) {
        const MemRef ra = a.next();
        const MemRef rb = b.next();
        EXPECT_EQ(ra.addr, rb.addr);
        EXPECT_EQ(ra.type, rb.type);
        EXPECT_EQ(ra.gapInstrs, rb.gapInstrs);
    }
}

TEST(SyntheticTrace, ResetRestartsStream)
{
    const WorkloadSpec spec = spec2006Benchmark("mcf");
    SyntheticTrace t(spec, 0, 1 << 30, 1ULL << 50);
    std::vector<Addr> first;
    for (int i = 0; i < 100; ++i)
        first.push_back(t.next().addr);
    t.reset();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(t.next().addr, first[i]);
}

TEST(SyntheticTrace, ThreadsDiverge)
{
    const WorkloadSpec spec = spec2006Benchmark("omnetpp");
    SyntheticTrace a(spec, 0, 1 << 30, 1ULL << 50);
    SyntheticTrace b(spec, 1, 1 << 30, 1ULL << 50);
    int equal = 0;
    for (int i = 0; i < 1000; ++i) {
        if (a.next().addr == b.next().addr)
            equal++;
    }
    EXPECT_LT(equal, 100);
}

TEST(SyntheticTrace, LoopRegionWrapsWithinBounds)
{
    const WorkloadSpec spec = loopOnlySpec(64 * 1024);
    const Addr base = 1 << 30;
    SyntheticTrace t(spec, 0, base, 1ULL << 50);
    std::set<Addr> blocks;
    for (int i = 0; i < 10000; ++i) {
        const Addr addr = t.next().addr;
        ASSERT_GE(addr, base);
        ASSERT_LT(addr, base + 64 * 1024);
        blocks.insert(addr >> 6);
    }
    // 1024 blocks, 2 accesses each: 10000 refs cover them all.
    EXPECT_EQ(blocks.size(), 1024u);
}

TEST(SyntheticTrace, WriteFractionApproximatelyHonored)
{
    WorkloadSpec spec = loopOnlySpec();
    spec.regions[0].writeFrac = 0.25;
    SyntheticTrace t(spec, 0, 1 << 30, 1ULL << 50);
    int writes = 0;
    const int n = 40000;
    for (int i = 0; i < n; ++i) {
        if (t.next().type == AccessType::Write)
            writes++;
    }
    EXPECT_NEAR(writes / static_cast<double>(n), 0.25, 0.02);
}

TEST(SyntheticTrace, StreamRmwWritesOncePerBlock)
{
    WorkloadSpec spec;
    spec.name = "rmw";
    RegionSpec r;
    r.kind = RegionKind::StreamRmw;
    r.sizeBytes = 1 << 20;
    r.weight = 1.0;
    r.accessesPerBlock = 4;
    spec.regions = {r};
    SyntheticTrace t(spec, 0, 1 << 30, 1ULL << 50);
    for (int blk = 0; blk < 1000; ++blk) {
        for (int i = 0; i < 4; ++i) {
            const MemRef ref = t.next();
            if (i < 3)
                EXPECT_EQ(ref.type, AccessType::Read);
            else
                EXPECT_EQ(ref.type, AccessType::Write);
        }
    }
}

TEST(SyntheticTrace, GapsWithinConfiguredRange)
{
    WorkloadSpec spec = loopOnlySpec();
    spec.avgGapInstrs = 20;
    SyntheticTrace t(spec, 0, 1 << 30, 1ULL << 50);
    for (int i = 0; i < 5000; ++i) {
        const auto gap = t.next().gapInstrs;
        EXPECT_GE(gap, 10u);
        EXPECT_LE(gap, 30u);
    }
}

TEST(Builders, MultiProgrammedSpacesAreDisjoint)
{
    const auto traces = buildMultiProgrammed(
        {spec2006Benchmark("mcf"), spec2006Benchmark("mcf"),
         spec2006Benchmark("lbm"), spec2006Benchmark("astar")});
    ASSERT_EQ(traces.size(), 4u);
    std::vector<std::set<Addr>> tops(4);
    for (std::size_t c = 0; c < 4; ++c) {
        for (int i = 0; i < 3000; ++i)
            tops[c].insert(traces[c]->next().addr >> 40);
    }
    for (std::size_t a = 0; a < 4; ++a) {
        for (std::size_t b = a + 1; b < 4; ++b) {
            for (Addr t : tops[a])
                EXPECT_EQ(tops[b].count(t), 0u);
        }
    }
}

TEST(Builders, MultiThreadedSharesMarkedRegions)
{
    // canneal's dominant region is shared random traffic: every
    // thread draws blocks from one common address range.
    const auto spec = parsecBenchmark("canneal");
    auto traces = buildMultiThreaded(spec, 4);
    ASSERT_EQ(traces.size(), 4u);
    std::vector<std::set<Addr>> blocks(4);
    for (std::size_t t = 0; t < 4; ++t) {
        for (int i = 0; i < 40000; ++i) {
            const Addr a = traces[t]->next().addr;
            if (a >= (1ULL << 50)) // shared range
                blocks[t].insert(a >> 6);
        }
        EXPECT_FALSE(blocks[t].empty());
    }
    // Same address range...
    EXPECT_EQ(*blocks[0].begin() >> 20, *blocks[1].begin() >> 20);
    // ...and actually overlapping block sets.
    int common = 0;
    for (Addr b : blocks[0]) {
        if (blocks[1].count(b))
            common++;
    }
    EXPECT_GT(common, 10);
}

TEST(Catalogue, AllSpecBenchmarksResolve)
{
    const auto names = spec2006Names();
    EXPECT_EQ(names.size(), 13u);
    for (const auto &name : names) {
        const WorkloadSpec spec = spec2006Benchmark(name);
        EXPECT_EQ(spec.name, name);
        EXPECT_FALSE(spec.regions.empty());
        EXPECT_GT(spec.mlp, 0.0);
    }
}

TEST(Catalogue, AliasesResolve)
{
    EXPECT_EQ(spec2006Benchmark("omn").name, "omnetpp");
    EXPECT_EQ(spec2006Benchmark("xalan").name, "xalancbmk");
    EXPECT_EQ(spec2006Benchmark("Gems").name, "GemsFDTD");
    EXPECT_EQ(spec2006Benchmark("lib").name, "libquantum");
}

TEST(Catalogue, UnknownBenchmarkIsFatal)
{
    EXPECT_DEATH(spec2006Benchmark("specjbb"), "unknown");
}

TEST(Catalogue, AllParsecBenchmarksResolve)
{
    const auto names = parsecNames();
    EXPECT_EQ(names.size(), 10u);
    for (const auto &name : names) {
        const WorkloadSpec spec = parsecBenchmark(name);
        EXPECT_EQ(spec.name, name);
        bool any_shared = false;
        for (const auto &r : spec.regions)
            any_shared |= r.shared;
        EXPECT_TRUE(any_shared) << name;
    }
}

TEST(Catalogue, LoopHeavyBenchmarksHaveLoopRegions)
{
    // The paper's loop-block champions must be modelled with a
    // dominant loop region between L2 (512KB) and an LLC share.
    for (const char *name : {"omnetpp", "xalancbmk"}) {
        const WorkloadSpec spec = spec2006Benchmark(name);
        double loop_weight = 0.0, total = 0.0;
        for (const auto &r : spec.regions) {
            total += r.weight;
            if (r.kind == RegionKind::Loop) {
                loop_weight += r.weight;
                EXPECT_GT(r.sizeBytes, 512u * 1024u);
                EXPECT_LT(r.sizeBytes, 2u * 1024u * 1024u);
            }
        }
        EXPECT_GT(loop_weight / total, 0.5) << name;
    }
}

TEST(Mixes, TableThreeMatchesPaper)
{
    const auto mixes = tableThreeMixes();
    ASSERT_EQ(mixes.size(), 10u);
    EXPECT_EQ(mixes[0].name, "WL1");
    EXPECT_EQ(mixes[9].name, "WH5");
    for (const auto &mix : mixes) {
        EXPECT_EQ(mix.benchmarks.size(), 4u);
        for (const auto &b : mix.benchmarks)
            EXPECT_NO_FATAL_FAILURE(spec2006Benchmark(b));
    }
    // Spot checks against Table III.
    EXPECT_EQ(mixes[2].benchmarks,
              (std::vector<std::string>{"Gems", "Gems", "Gems", "mcf"}));
    EXPECT_EQ(mixes[9].benchmarks,
              (std::vector<std::string>{"xalan", "xalan", "xalan",
                                        "bzip2"}));
}

TEST(Mixes, RandomMixesDeterministicAndValid)
{
    const auto a = randomMixes(50, 4, 2016);
    const auto b = randomMixes(50, 4, 2016);
    ASSERT_EQ(a.size(), 50u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].benchmarks, b[i].benchmarks);
        EXPECT_EQ(a[i].benchmarks.size(), 4u);
    }
    const auto c = randomMixes(50, 4, 999);
    bool any_diff = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        any_diff |= a[i].benchmarks != c[i].benchmarks;
    EXPECT_TRUE(any_diff);
}

TEST(Mixes, DuplicateMix)
{
    const auto mix = duplicateMix("omnetpp", 4);
    EXPECT_EQ(mix.benchmarks,
              (std::vector<std::string>{"omnetpp", "omnetpp", "omnetpp",
                                        "omnetpp"}));
}

TEST(Mixes, ResolveDesynchronizesDuplicates)
{
    const auto specs = resolveMix(duplicateMix("omnetpp", 4));
    ASSERT_EQ(specs.size(), 4u);
    EXPECT_NE(specs[0].seed, specs[1].seed);
    EXPECT_NE(specs[1].seed, specs[2].seed);
}

} // namespace
} // namespace lap
