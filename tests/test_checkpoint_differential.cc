/**
 * @file
 * Checkpoint differential battery: proves save/restore is bit-exact
 * for every policy in the golden set.
 *
 * For each case this runs the full Simulator with a checkpoint hook
 * that snapshots the live run at a case-specific (pseudo-random but
 * deterministic) transaction T, then restores the snapshot into a
 * *fresh* Simulator, runs it to completion, and compares the
 * end-of-run counters plus the FNV-1a hash of the serialized epoch
 * stream against the same committed tests/golden/<slug>.stream.json
 * baselines the engine-differential suite pins. A restored run must
 * be indistinguishable from the uninterrupted run not just in totals
 * but in *when* every hit, fill, eviction and migration happened —
 * the epoch stream hash covers that.
 *
 * The serialization format here must stay identical to
 * test_engine_differential.cc, since both compare against the same
 * baselines.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "campaign/jsonl.hh"
#include "common/json.hh"
#include "sim/checkpoint.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "trace/format.hh"
#include "trace/stressors.hh"
#include "workloads/mixes.hh"

namespace lap
{
namespace
{

struct DiffCase
{
    const char *slug;
    PolicyKind policy;
    PlacementKind placement;
    bool hybrid;
    const char *benchmark;
};

/** Mirrors the golden-metrics matrix (one case per policy). */
const DiffCase kCases[] = {
    {"inclusive", PolicyKind::Inclusive, PlacementKind::Default, false,
     "mcf"},
    {"noni", PolicyKind::NonInclusive, PlacementKind::Default, false,
     "mcf"},
    {"ex", PolicyKind::Exclusive, PlacementKind::Default, false, "mcf"},
    {"flex", PolicyKind::Flexclusion, PlacementKind::Default, false,
     "omnetpp"},
    {"dswitch", PolicyKind::Dswitch, PlacementKind::Default, false,
     "omnetpp"},
    {"lap", PolicyKind::Lap, PlacementKind::Default, false,
     "libquantum"},
    {"lhybrid", PolicyKind::Lap, PlacementKind::Lhybrid, true,
     "libquantum"},
};

/** Must match test_engine_differential.cc exactly. */
SimConfig
diffConfig(const DiffCase &c)
{
    SimConfig cfg;
    cfg.numCores = 2;
    cfg.l1Size = 4 * 1024;
    cfg.l2Size = 32 * 1024;
    cfg.llcSize = 256 * 1024;
    cfg.warmupRefs = 10'000;
    cfg.measureRefs = 50'000;
    cfg.tuning.epochCycles = 50'000;
    cfg.epochStatsInterval = 2'000;
    cfg.policy = c.policy;
    cfg.placement = c.placement;
    cfg.hybridLlc = c.hybrid;
    return cfg;
}

/** FNV-1a 64-bit over the whole serialized stream. */
std::uint64_t
fnv1a(const std::string &text)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const char ch : text) {
        hash ^= static_cast<unsigned char>(ch);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

std::string
hex(std::uint64_t value)
{
    std::ostringstream out;
    out << "0x" << std::hex << value;
    return out.str();
}

/** Serializes a finished run exactly like the engine suite does. */
std::string
summarize(Simulator &sim, const Metrics &m)
{
    const EpochSampler *sampler = sim.statsEngine()->sampler();
    std::string stream;
    for (const EpochRecord &record : sampler->records()) {
        stream += epochToJson(record);
        stream += '\n';
    }

    JsonWriter w;
    w.field("epochs",
            static_cast<std::uint64_t>(sampler->records().size()))
        .field("streamFnv", hex(fnv1a(stream)))
        .field("instructions", m.instructions)
        .field("cycles", m.cycles)
        .field("llcHits", m.llcHits)
        .field("llcMisses", m.llcMisses)
        .field("llcWritesFill", m.llcWritesFill)
        .field("llcWritesCleanVictim", m.llcWritesCleanVictim)
        .field("llcWritesDirtyVictim", m.llcWritesDirtyVictim)
        .field("llcWritesMigration", m.llcWritesMigration)
        .field("llcDemandFills", m.llcDemandFills)
        .field("llcDeadFills", m.llcDeadFills)
        .field("snoopMessages", m.snoopMessages)
        .field("dramReads", m.dramReads)
        .field("dramWrites", m.dramWrites);
    return w.str();
}

/**
 * Snapshot transaction for a case: deterministic but scattered
 * across the whole run (total references = (10k + 50k) * 2 cores),
 * so across the seven cases both warmup and measurement phases get
 * restored from.
 */
std::uint64_t
snapshotPoint(const DiffCase &c)
{
    return 5'000 + fnv1a(c.slug) % 110'000;
}

std::string
checkpointPath(const DiffCase &c)
{
    return std::string("ckpt_diff_") + c.slug + ".ckpt";
}

/**
 * Runs the case while snapshotting at @p when, then restores the
 * snapshot into a fresh Simulator, finishes the run there and
 * returns its summary.
 */
std::string
runRestoredCase(const DiffCase &c, std::uint64_t when)
{
    const std::string path = checkpointPath(c);
    const auto workload = resolveMix(duplicateMix(c.benchmark, 2));

    Simulator first(diffConfig(c));
    bool saved = false;
    first.setCheckpointHook(when, [&](std::uint64_t) {
        if (saved)
            return;
        saved = true;
        first.saveCheckpoint(path);
    });
    first.run(workload);
    EXPECT_TRUE(saved) << c.slug << ": hook never fired at " << when;

    SimConfig restored_config = diffConfig(c);
    restored_config.restorePath = path;
    Simulator restored(restored_config);
    const Metrics m = restored.run(workload);
    const std::string summary = summarize(restored, m);
    std::remove(path.c_str());
    return summary;
}

std::string
streamGoldenPath(const DiffCase &c)
{
    return std::string(LAPSIM_GOLDEN_DIR) + "/" + c.slug
        + ".stream.json";
}

std::string
readFileOrEmpty(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return "";
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

void
expectMatchesGolden(const DiffCase &c, const std::string &fresh)
{
    const std::string path = streamGoldenPath(c);
    const std::string baseline = readFileOrEmpty(path);
    ASSERT_FALSE(baseline.empty())
        << "missing reference baseline " << path
        << " — run tools/regen-golden.sh and commit the result";

    JsonRow want, got;
    ASSERT_TRUE(parseJsonObject(baseline, want)) << path;
    ASSERT_TRUE(parseJsonObject(fresh, got));

    for (const auto &[key, value] : want) {
        EXPECT_EQ(value, rowValue(got, key))
            << c.slug << ": '" << key
            << "' diverged after checkpoint restore";
    }
}

class CheckpointDifferential
    : public ::testing::TestWithParam<DiffCase>
{
};

TEST_P(CheckpointDifferential, RestoredRunMatchesGolden)
{
    const DiffCase &c = GetParam();
    expectMatchesGolden(c, runRestoredCase(c, snapshotPoint(c)));
}

/** Restoring from a mid-warmup snapshot is bit-exact too: the
 *  snapshot lands before the warmup/measure boundary, so the
 *  restored run still has to reset baselines and begin measurement
 *  itself. */
TEST(CheckpointDifferential, MidWarmupSnapshotMatchesGolden)
{
    expectMatchesGolden(kCases[0], runRestoredCase(kCases[0], 9'000));
}

/** A snapshot exactly on the warmup/measure boundary restores
 *  cleanly (the phase transition happens on the restored side). */
TEST(CheckpointDifferential, BoundarySnapshotMatchesGolden)
{
    expectMatchesGolden(kCases[1], runRestoredCase(kCases[1], 20'000));
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, CheckpointDifferential, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<DiffCase> &info) {
        return std::string(info.param.slug);
    });

// -----------------------------------------------------------------
// Mid-trace restore: the same save/restore bit-exactness must hold
// when the workload is a LAPTR1 replay — the snapshot then carries
// the replay cursors (content CRC + index + wrap count) instead of
// generator state. Compared in-process against the uninterrupted
// run, for both store backends and for a cursor past a wrap.

SimConfig
traceDiffConfig(const std::string &trace_spec)
{
    SimConfig cfg = diffConfig(kCases[5]); // lap
    cfg.tracePath = trace_spec;
    return cfg;
}

std::string
runTraceCase(const SimConfig &cfg)
{
    Simulator sim(cfg);
    const Metrics m = sim.runTrace();
    return summarize(sim, m);
}

/** Runs the trace case snapshotting at @p when, restores into a
 *  fresh Simulator, finishes there and returns its summary. */
std::string
runRestoredTraceCase(const SimConfig &cfg, std::uint64_t when,
                     const char *slug)
{
    const std::string path =
        std::string("ckpt_diff_trace_") + slug + ".ckpt";
    Simulator first(cfg);
    bool saved = false;
    first.setCheckpointHook(when, [&](std::uint64_t) {
        if (saved)
            return;
        saved = true;
        first.saveCheckpoint(path);
    });
    first.runTrace();
    EXPECT_TRUE(saved) << slug << ": hook never fired at " << when;

    SimConfig restored_config = cfg;
    restored_config.restorePath = path;
    Simulator restored(restored_config);
    const Metrics m = restored.runTrace();
    const std::string summary = summarize(restored, m);
    std::remove(path.c_str());
    return summary;
}

TEST(CheckpointDifferential, MidTraceRestoreIsBitExact)
{
    const SimConfig cfg = traceDiffConfig("stressor:mixed_hot_scan");
    EXPECT_EQ(runRestoredTraceCase(cfg, 37'000, "stressor"),
              runTraceCase(cfg));
}

/** Same property against an mmap'd trace file, with the snapshot
 *  landing after the replay cursors have wrapped (the trace is
 *  shorter than the run), so the wrap count restores too. */
TEST(CheckpointDifferential, MidTraceFileRestoreIsBitExactPastWrap)
{
    const std::string trace_path = "ckpt_diff_trace_wrap.laptr";
    writeTraceFile(trace_path,
                   buildStressorTrace("stencil", 2, 20'000, 3));
    const SimConfig cfg = traceDiffConfig(trace_path);
    // 50k references in: each 2-core cursor has wrapped its 20k
    // stream at least once by then.
    const std::string restored =
        runRestoredTraceCase(cfg, 50'000, "wrap");
    const std::string straight = runTraceCase(cfg);
    std::remove(trace_path.c_str());
    EXPECT_EQ(restored, straight);
}

} // namespace
} // namespace lap
