/**
 * @file
 * Unit tests for src/mem: DRAM timing/energy counters and the
 * data-integrity verifier, plus the loop tracker and core model
 * (small leaf components).
 */

#include <gtest/gtest.h>

#include "cpu/core_model.hh"
#include "hierarchy/loop_tracker.hh"
#include "mem/dram.hh"
#include "mem/verifier.hh"

namespace lap
{
namespace
{

// --- DRAM ------------------------------------------------------------

TEST(Dram, ReadLatency)
{
    DramParams p;
    p.accessLatency = 200;
    p.channelOccupancy = 8;
    p.channels = 1;
    Dram d(p);
    EXPECT_EQ(d.read(0, 100), 300u);
    EXPECT_EQ(d.stats().reads, 1u);
}

TEST(Dram, ChannelContentionQueues)
{
    DramParams p;
    p.accessLatency = 200;
    p.channelOccupancy = 8;
    p.channels = 1;
    Dram d(p);
    EXPECT_EQ(d.read(0, 0), 200u);
    EXPECT_EQ(d.read(1, 0), 208u); // queued behind the first
    EXPECT_EQ(d.read(2, 10), 216u); // arrives before channel free
}

TEST(Dram, ChannelsInterleaveByAddress)
{
    DramParams p;
    p.accessLatency = 200;
    p.channelOccupancy = 8;
    p.channels = 2;
    Dram d(p);
    EXPECT_EQ(d.read(0, 0), 200u);
    EXPECT_EQ(d.read(1, 0), 200u); // other channel
    EXPECT_EQ(d.read(2, 0), 208u); // channel 0 again
}

TEST(Dram, WritesArePosted)
{
    Dram d(DramParams{});
    const Cycle t = d.write(0, 50);
    EXPECT_EQ(t, 50u);
    EXPECT_EQ(d.stats().writes, 1u);
}

TEST(Dram, ResetStats)
{
    Dram d(DramParams{});
    d.read(0, 0);
    d.write(0, 0);
    d.resetStats();
    EXPECT_EQ(d.stats().reads, 0u);
    EXPECT_EQ(d.stats().writes, 0u);
}

// --- Verifier ---------------------------------------------------------

TEST(Verifier, VersionsAdvancePerAddress)
{
    Verifier v;
    EXPECT_EQ(v.latest(10), 0u);
    EXPECT_EQ(v.recordWrite(10), 1u);
    EXPECT_EQ(v.recordWrite(10), 2u);
    EXPECT_EQ(v.recordWrite(11), 1u);
    EXPECT_EQ(v.latest(10), 2u);
}

TEST(Verifier, MemoryTracksWritebacks)
{
    Verifier v;
    v.recordWrite(10);
    v.recordWrite(10);
    EXPECT_EQ(v.memVersion(10), 0u);
    v.writeback(10, 2);
    EXPECT_EQ(v.memVersion(10), 2u);
}

TEST(Verifier, CheckReadPassesOnLatest)
{
    Verifier v;
    v.recordWrite(10);
    v.checkRead(10, 1, "test");
    v.checkRead(11, 0, "test"); // never written: version 0
}

TEST(Verifier, CheckReadPanicsOnStale)
{
    Verifier v;
    v.recordWrite(10);
    v.recordWrite(10);
    EXPECT_DEATH(v.checkRead(10, 1, "test"), "stale read");
}

TEST(Verifier, WritebackRegressionPanics)
{
    Verifier v;
    v.recordWrite(10);
    v.recordWrite(10);
    v.writeback(10, 2);
    EXPECT_DEATH(v.writeback(10, 1), "regresses");
}

// --- LoopTracker ------------------------------------------------------

TEST(LoopTracker, FreshCleanEvictionIsNotALoop)
{
    LoopTracker t;
    t.onCleanEviction(1, /*from_llc_hit=*/false);
    t.flush();
    EXPECT_EQ(t.totalEvictions(), 1u);
    EXPECT_DOUBLE_EQ(t.loopFraction(), 0.0);
}

TEST(LoopTracker, RoundTripCountsAsCtcOne)
{
    LoopTracker t;
    t.onCleanEviction(1, false); // descent
    t.onCleanEviction(1, true);  // returned via LLC hit, clean again
    t.flush();
    EXPECT_EQ(t.totalEvictions(), 2u);
    EXPECT_DOUBLE_EQ(t.ctc1Fraction(), 0.5);
    EXPECT_DOUBLE_EQ(t.loopFraction(), 0.5);
}

TEST(LoopTracker, LongStreakLandsInHighBucket)
{
    LoopTracker t;
    t.onCleanEviction(1, false);
    for (int i = 0; i < 6; ++i)
        t.onCleanEviction(1, true);
    t.flush();
    EXPECT_EQ(t.totalEvictions(), 7u);
    EXPECT_NEAR(t.ctcHighFraction(), 6.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(t.ctc1Fraction(), 0.0);
}

TEST(LoopTracker, MidBucketWeighting)
{
    LoopTracker t;
    for (int i = 0; i < 3; ++i)
        t.onCleanEviction(1, true); // streak of 3
    t.onWrite(1);                   // ends it
    t.onDirtyEviction(1);
    t.flush();
    // 4 evictions total, 3 of them in the 1<CTC<5 bucket.
    EXPECT_EQ(t.totalEvictions(), 4u);
    EXPECT_NEAR(t.ctcMidFraction(), 0.75, 1e-12);
}

TEST(LoopTracker, WriteEndsStreak)
{
    LoopTracker t;
    t.onCleanEviction(1, true);
    t.onWrite(1);
    t.onCleanEviction(1, true); // new streak
    t.flush();
    EXPECT_DOUBLE_EQ(t.ctc1Fraction(), 1.0); // two streaks of 1
}

TEST(LoopTracker, FromMemoryEvictionEndsStreak)
{
    LoopTracker t;
    t.onCleanEviction(1, true);
    t.onCleanEviction(1, true);
    // Block fell out of the LLC; next incarnation came from memory.
    t.onCleanEviction(1, false);
    t.onCleanEviction(1, true);
    t.flush();
    // Streak of 2 (mid) + streak of 1.
    EXPECT_EQ(t.totalEvictions(), 4u);
    EXPECT_DOUBLE_EQ(t.ctcMidFraction(), 0.5);
    EXPECT_DOUBLE_EQ(t.ctc1Fraction(), 0.25);
}

TEST(LoopTracker, WriteOfUntrackedBlockIsNoop)
{
    LoopTracker t;
    t.onWrite(99);
    t.flush();
    EXPECT_EQ(t.totalEvictions(), 0u);
}

TEST(LoopTracker, Reset)
{
    LoopTracker t;
    t.onCleanEviction(1, true);
    t.reset();
    t.flush();
    EXPECT_EQ(t.totalEvictions(), 0u);
    EXPECT_DOUBLE_EQ(t.loopFraction(), 0.0);
}

// --- CoreModel --------------------------------------------------------

TEST(CoreModel, IssueWidthPacksInstructions)
{
    CoreParams p;
    p.issueWidth = 4.0;
    p.mlp = 1.0;
    p.l1Latency = 2;
    CoreModel core(p);
    core.advance(8, 0); // 8 instrs / width 4 = 2 cycles, no stall
    EXPECT_EQ(core.now(), 2u);
    EXPECT_EQ(core.instructions(), 9u);
    EXPECT_EQ(core.memRefs(), 1u);
}

TEST(CoreModel, FractionalIssueAccumulates)
{
    CoreParams p;
    p.issueWidth = 4.0;
    CoreModel core(p);
    core.advance(2, 0);
    core.advance(2, 0); // 0.5 + 0.5 = 1 cycle
    EXPECT_EQ(core.now(), 1u);
}

TEST(CoreModel, MlpDiscountsStall)
{
    CoreParams p;
    p.issueWidth = 4.0;
    p.mlp = 2.0;
    p.l1Latency = 2;
    CoreModel core(p);
    // Miss completing at cycle 202: stall = 2 + (200/2) = 102.
    core.advance(0, 202);
    EXPECT_EQ(core.now(), 102u);
}

TEST(CoreModel, L1HitNotDiscounted)
{
    CoreParams p;
    p.mlp = 4.0;
    p.l1Latency = 2;
    CoreModel core(p);
    core.advance(0, 2);
    EXPECT_EQ(core.now(), 2u);
}

TEST(CoreModel, PastCompletionCostsNothing)
{
    CoreParams p;
    CoreModel core(p);
    core.advance(40, 1); // done_at long past after issue cycles
    EXPECT_EQ(core.now(), 10u);
}

TEST(CoreModel, MeasurementWindow)
{
    CoreParams p;
    p.issueWidth = 1.0;
    p.mlp = 1.0;
    CoreModel core(p);
    core.advance(10, 0);
    core.beginMeasurement();
    core.advance(10, 0);
    EXPECT_EQ(core.measuredInstructions(), 11u);
    EXPECT_EQ(core.measuredCycles(), 10u);
    EXPECT_NEAR(core.ipc(), 1.1, 1e-12);
}

} // namespace
} // namespace lap
