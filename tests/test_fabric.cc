/**
 * @file
 * Campaign fabric unit tests, all in-process: protocol codec
 * round-trips, per-fault frame rejection diagnostics, scheduler
 * behaviour against scripted fake workers (grid-order emission,
 * kill-requeue with snapshots, attempt exhaustion, resume skipping,
 * stale-worker reaping, live queries), the deterministic
 * jobInShard() partition, and JsonlReader corruption handling.
 *
 * The process-level battery (real daemon + worker subprocesses over
 * loopback) lives in test_fabric_process.cc; protocol fuzzing in
 * test_fabric_fuzz.cc.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <unistd.h>
#include <vector>

#include "campaign/jsonl.hh"
#include "campaign/spec.hh"
#include "common/logging.hh"
#include "fabric/protocol.hh"
#include "fabric/scheduler.hh"

using namespace lap;
using namespace lap::fabric;

namespace
{

/** Runs @p fn under ScopedFatalThrow; returns the diagnostic. */
template <typename Fn>
std::string
fatalMessage(Fn &&fn)
{
    try {
        const ScopedFatalThrow guard;
        fn();
    } catch (const FatalError &err) {
        return err.what();
    }
    return "";
}

/** Encodes a message into a complete wire frame. */
template <typename Msg>
std::string
frameOf(MsgType type, const Msg &msg)
{
    ByteWriter out;
    msg.encode(out);
    return encodeFrame(type, out);
}

/** Decodes a frame payload back into its message type. */
template <typename Msg>
Msg
decodePayload(const Frame &frame)
{
    ByteReader in(frame.payload.data(), frame.payload.size());
    return Msg::decode(in);
}

/** A 4-job spec: 2 policies x 2 mixes, tiny refs. */
const char *kSpecText = "name fabtest\n"
                        "seed 7\n"
                        "set warmup 1000\n"
                        "set refs 4000\n"
                        "policies noni,ex\n"
                        "mix WL1,WH1\n";

} // namespace

// ----------------------------------------------------------------
// Protocol codec
// ----------------------------------------------------------------

TEST(FabricProtocol, AllMessagesRoundTrip)
{
    {
        HelloMsg in;
        in.name = "worker-3";
        const Frame f = decodeFrame(frameOf(MsgType::WorkerHello, in));
        EXPECT_EQ(f.type, MsgType::WorkerHello);
        EXPECT_EQ(decodePayload<HelloMsg>(f).name, "worker-3");
    }
    {
        SubmitMsg in;
        in.specText = kSpecText;
        in.doneHashes = {"00aabbccddeeff11", "123456789abcdef0"};
        in.checkpointEvery = 5'000;
        const Frame f = decodeFrame(frameOf(MsgType::Submit, in));
        const SubmitMsg out = decodePayload<SubmitMsg>(f);
        EXPECT_EQ(out.specText, in.specText);
        EXPECT_EQ(out.doneHashes, in.doneHashes);
        EXPECT_EQ(out.checkpointEvery, in.checkpointEvery);
    }
    {
        SubmitAckMsg in;
        in.campaignId = 42;
        in.jobCount = 16;
        in.skippedJobs = 3;
        const Frame f = decodeFrame(frameOf(MsgType::SubmitAck, in));
        const SubmitAckMsg out = decodePayload<SubmitAckMsg>(f);
        EXPECT_EQ(out.campaignId, 42u);
        EXPECT_EQ(out.jobCount, 16u);
        EXPECT_EQ(out.skippedJobs, 3u);
    }
    {
        RowMsg in;
        in.campaignId = 7;
        in.line = "{\"type\":\"result\",\"label\":\"WH1/lap\"}";
        const Frame f = decodeFrame(frameOf(MsgType::Row, in));
        const RowMsg out = decodePayload<RowMsg>(f);
        EXPECT_EQ(out.campaignId, 7u);
        EXPECT_EQ(out.line, in.line);
    }
    {
        CampaignDoneMsg in;
        in.campaignId = 7;
        in.ok = 14;
        in.failed = 1;
        in.skipped = 1;
        in.summary = "policy  epi\nlap     1.0\n";
        const Frame f =
            decodeFrame(frameOf(MsgType::CampaignDone, in));
        const CampaignDoneMsg out =
            decodePayload<CampaignDoneMsg>(f);
        EXPECT_EQ(out.ok, 14u);
        EXPECT_EQ(out.failed, 1u);
        EXPECT_EQ(out.skipped, 1u);
        EXPECT_EQ(out.summary, in.summary);
    }
    {
        ErrorMsg in;
        in.message = "campaign spec line 3: unknown keyword";
        const Frame f = decodeFrame(frameOf(MsgType::Error, in));
        EXPECT_EQ(decodePayload<ErrorMsg>(f).message, in.message);
    }
    {
        AssignMsg in;
        in.campaignId = 9;
        in.jobIndex = 11;
        in.jobHash = "5678df5804eb37aa";
        in.specText = kSpecText;
        in.checkpointEvery = 2'500;
        in.checkpointBlob = std::string("LAPCKPT1\x00\x01", 10);
        const Frame f = decodeFrame(frameOf(MsgType::Assign, in));
        const AssignMsg out = decodePayload<AssignMsg>(f);
        EXPECT_EQ(out.jobIndex, 11u);
        EXPECT_EQ(out.jobHash, in.jobHash);
        EXPECT_EQ(out.checkpointBlob, in.checkpointBlob);
    }
    {
        HeartbeatMsg in;
        in.campaignId = 9;
        in.jobIndex = 11;
        in.checkpointBlob = std::string(1024, '\xab');
        const Frame f = decodeFrame(frameOf(MsgType::Heartbeat, in));
        const HeartbeatMsg out = decodePayload<HeartbeatMsg>(f);
        EXPECT_EQ(out.checkpointBlob, in.checkpointBlob);
    }
    {
        ResultMsg in;
        in.campaignId = 9;
        in.jobIndex = 11;
        in.status = 0;
        in.wallMs = 123.5;
        in.rows = {"{\"type\":\"epoch\"}", "{\"type\":\"result\"}"};
        const Frame f = decodeFrame(frameOf(MsgType::Result, in));
        const ResultMsg out = decodePayload<ResultMsg>(f);
        EXPECT_EQ(out.status, 0);
        EXPECT_EQ(out.wallMs, 123.5);
        EXPECT_EQ(out.rows, in.rows);
    }
    {
        QueryMsg in;
        in.campaignId = 3;
        const Frame f = decodeFrame(frameOf(MsgType::Query, in));
        EXPECT_EQ(decodePayload<QueryMsg>(f).campaignId, 3u);
    }
    {
        QueryAckMsg in;
        in.campaignId = 3;
        in.done = 8;
        in.total = 16;
        in.table = "partial";
        const Frame f = decodeFrame(frameOf(MsgType::QueryAck, in));
        const QueryAckMsg out = decodePayload<QueryAckMsg>(f);
        EXPECT_EQ(out.done, 8u);
        EXPECT_EQ(out.total, 16u);
        EXPECT_EQ(out.table, "partial");
    }
}

TEST(FabricProtocol, EmptyPayloadMessagesSurvive)
{
    HelloMsg hello; // empty name
    const Frame f = decodeFrame(frameOf(MsgType::ClientHello, hello));
    EXPECT_EQ(decodePayload<HelloMsg>(f).name, "");
}

// ----------------------------------------------------------------
// Frame rejection: every malformation class yields its own
// diagnostic (the fuzz suite checks the same property at volume).
// ----------------------------------------------------------------

TEST(FabricProtocol, RejectsBadMagic)
{
    HelloMsg msg;
    msg.name = "x";
    std::string bytes = frameOf(MsgType::ClientHello, msg);
    bytes[0] = 'X';
    const std::string diag =
        fatalMessage([&] { decodeFrame(bytes); });
    EXPECT_NE(diag.find("bad magic"), std::string::npos) << diag;
}

TEST(FabricProtocol, RejectsWrongVersion)
{
    HelloMsg msg;
    msg.name = "x";
    std::string bytes = frameOf(MsgType::ClientHello, msg);
    bytes[4] = static_cast<char>(kFabricProtocolVersion + 1);
    const std::string diag =
        fatalMessage([&] { decodeFrame(bytes); });
    EXPECT_NE(diag.find("unsupported protocol version"),
              std::string::npos)
        << diag;
}

TEST(FabricProtocol, RejectsUnknownType)
{
    HelloMsg msg;
    msg.name = "x";
    std::string bytes = frameOf(MsgType::ClientHello, msg);
    bytes[5] = 99;
    const std::string diag =
        fatalMessage([&] { decodeFrame(bytes); });
    EXPECT_NE(diag.find("unknown message type"), std::string::npos)
        << diag;
}

TEST(FabricProtocol, RejectsOversizedDeclaration)
{
    HelloMsg msg;
    msg.name = "x";
    std::string bytes = frameOf(MsgType::ClientHello, msg);
    // Overwrite the little-endian size field with kMaxFramePayload+1.
    const std::uint32_t huge = kMaxFramePayload + 1;
    for (int i = 0; i < 4; ++i)
        bytes[6 + i] = static_cast<char>((huge >> (8 * i)) & 0xff);
    const std::string diag =
        fatalMessage([&] { decodeFrame(bytes); });
    EXPECT_NE(diag.find("oversized payload"), std::string::npos)
        << diag;
}

TEST(FabricProtocol, RejectsTruncatedHeader)
{
    const std::string diag = fatalMessage(
        [] { decodeFrameHeader("LAPF", 4); });
    EXPECT_NE(diag.find("truncated"), std::string::npos) << diag;
}

TEST(FabricProtocol, RejectsTruncatedBody)
{
    HelloMsg msg;
    msg.name = "a-longer-name";
    std::string bytes = frameOf(MsgType::ClientHello, msg);
    bytes.resize(bytes.size() - 5);
    const std::string diag =
        fatalMessage([&] { decodeFrame(bytes); });
    EXPECT_NE(diag.find("truncated"), std::string::npos) << diag;
}

TEST(FabricProtocol, RejectsTrailingBytes)
{
    HelloMsg msg;
    msg.name = "x";
    std::string bytes = frameOf(MsgType::ClientHello, msg);
    bytes += "junk";
    const std::string diag =
        fatalMessage([&] { decodeFrame(bytes); });
    EXPECT_NE(diag.find("trailing bytes"), std::string::npos) << diag;
}

TEST(FabricProtocol, RejectsPayloadBitFlip)
{
    HelloMsg msg;
    msg.name = "worker-under-test";
    std::string bytes = frameOf(MsgType::ClientHello, msg);
    bytes[kFrameHeaderBytes + 9] ^= 0x40; // inside the name bytes
    const std::string diag =
        fatalMessage([&] { decodeFrame(bytes); });
    EXPECT_NE(diag.find("CRC"), std::string::npos) << diag;
}

TEST(FabricProtocol, RejectsInvalidResultStatus)
{
    ResultMsg msg;
    msg.status = 7;
    ByteWriter out;
    msg.encode(out);
    const std::string diag = fatalMessage([&] {
        ByteReader in(out.data().data(), out.size());
        ResultMsg::decode(in);
    });
    EXPECT_NE(diag.find("invalid job status"), std::string::npos)
        << diag;
}

TEST(FabricProtocol, RejectsHostileStringCount)
{
    // A Submit payload whose doneHashes count field claims 2^60
    // entries must be rejected before any allocation.
    ByteWriter out;
    out.str(kSpecText);
    out.u64(1ull << 60);
    const std::string diag = fatalMessage([&] {
        ByteReader in(out.data().data(), out.size());
        SubmitMsg::decode(in);
    });
    EXPECT_NE(diag.find("truncated"), std::string::npos) << diag;
}

// ----------------------------------------------------------------
// Scheduler, driven by scripted fake workers
// ----------------------------------------------------------------

namespace
{

/** A fake fleet member: records assignments instead of simulating. */
struct FakeWorker
{
    WorkerId id = 0;
    std::vector<AssignMsg> assigns;
    std::size_t cursor = 0; //!< Oldest unfinished assignment.
    int kicks = 0;

    WorkerId
    join(Scheduler &sched, const std::string &name)
    {
        id = sched.addWorker(
            name, [this](const AssignMsg &msg) { assigns.push_back(msg); },
            [this] { kicks++; });
        return id;
    }

    bool hasWork() const { return cursor < assigns.size(); }

    /**
     * Completes the oldest unfinished assignment with an ok result
     * tagged by its job index, then asks for more work. Returns
     * false when nothing was outstanding. (The scheduler never
     * double-assigns, so at most one assignment is outstanding.)
     */
    bool
    finishNext(Scheduler &sched)
    {
        if (!hasWork())
            return false;
        const AssignMsg a = assigns[cursor++];
        ResultMsg res;
        res.campaignId = a.campaignId;
        res.jobIndex = a.jobIndex;
        res.status = 0;
        res.rows = {"epoch:" + std::to_string(a.jobIndex),
                    "result:" + std::to_string(a.jobIndex)};
        sched.result(id, res);
        sched.workerReady(id);
        return true;
    }
};

/** Collects rows and the done summary from a campaign. */
struct ClientTap
{
    std::vector<std::string> rows;
    bool done = false;
    Scheduler::DoneSummary summary;

    Scheduler::RowFn
    rowFn()
    {
        return [this](const std::string &line) { rows.push_back(line); };
    }
    Scheduler::DoneFn
    doneFn()
    {
        return [this](const Scheduler::DoneSummary &s) {
            done = true;
            summary = s;
        };
    }
};

SubmitMsg
submitOf(const char *text)
{
    SubmitMsg msg;
    msg.specText = text;
    return msg;
}

} // namespace

TEST(FabricScheduler, RunsGridToCompletionInGridOrder)
{
    Scheduler sched;
    FakeWorker w0, w1;
    w0.join(sched, "w0");
    w1.join(sched, "w1");
    sched.workerReady(w0.id);
    sched.workerReady(w1.id);

    ClientTap tap;
    const auto outcome =
        sched.submit(submitOf(kSpecText), tap.rowFn(), tap.doneFn());
    EXPECT_EQ(outcome.jobCount, 4u);
    EXPECT_EQ(outcome.skippedJobs, 0u);
    sched.startCampaign(outcome.id);

    // Both workers got work immediately.
    EXPECT_EQ(w0.assigns.size() + w1.assigns.size(), 2u);

    // Drive to completion, alternating which worker lands first so
    // completion order interleaves; the client must still see rows
    // in grid order.
    bool w1_first = true;
    while (!tap.done) {
        const bool progressed = w1_first
            ? (w1.finishNext(sched) | w0.finishNext(sched)) != 0
            : (w0.finishNext(sched) | w1.finishNext(sched)) != 0;
        w1_first = !w1_first;
        ASSERT_TRUE(progressed) << "scheduler stalled";
    }

    ASSERT_TRUE(tap.done);
    EXPECT_EQ(tap.summary.ok, 4u);
    EXPECT_EQ(tap.summary.failed, 0u);
    ASSERT_EQ(tap.rows.size(), 8u); // epoch + result per job
    for (std::size_t job = 0; job < 4; ++job) {
        EXPECT_EQ(tap.rows[2 * job],
                  "epoch:" + std::to_string(job));
        EXPECT_EQ(tap.rows[2 * job + 1],
                  "result:" + std::to_string(job));
    }
}

TEST(FabricScheduler, OutOfOrderResultsAreReordered)
{
    Scheduler sched;
    FakeWorker w0, w1;
    w0.join(sched, "w0");
    w1.join(sched, "w1");

    ClientTap tap;
    const auto outcome =
        sched.submit(submitOf(kSpecText), tap.rowFn(), tap.doneFn());
    sched.startCampaign(outcome.id);
    sched.workerReady(w0.id);
    sched.workerReady(w1.id);
    ASSERT_EQ(w0.assigns.size(), 1u);
    ASSERT_EQ(w1.assigns.size(), 1u);

    const std::size_t first = w0.assigns[0].jobIndex;
    const std::size_t second = w1.assigns[0].jobIndex;
    ASSERT_NE(first, second);

    // Finish the later grid index first: nothing may be emitted
    // until every earlier index has landed.
    FakeWorker &late = first < second ? w1 : w0;
    FakeWorker &early = first < second ? w0 : w1;
    ASSERT_TRUE(late.finishNext(sched));
    const std::size_t emitted_before = tap.rows.size();
    ASSERT_TRUE(early.finishNext(sched));
    EXPECT_GT(tap.rows.size(), emitted_before);
    // The early index's rows must precede the late index's.
    const std::size_t lo = std::min(first, second);
    EXPECT_EQ(tap.rows[0], "epoch:" + std::to_string(lo));
}

TEST(FabricScheduler, ResumeSkipsDoneHashes)
{
    const CampaignSpec spec = parseCampaignSpec(kSpecText);
    const auto jobs = expandCampaign(spec);
    ASSERT_EQ(jobs.size(), 4u);

    Scheduler sched;
    FakeWorker w0;
    w0.join(sched, "w0");
    sched.workerReady(w0.id);

    SubmitMsg msg = submitOf(kSpecText);
    msg.doneHashes = {jobs[0].hash, jobs[2].hash};
    ClientTap tap;
    const auto outcome =
        sched.submit(msg, tap.rowFn(), tap.doneFn());
    EXPECT_EQ(outcome.jobCount, 4u);
    EXPECT_EQ(outcome.skippedJobs, 2u);
    sched.startCampaign(outcome.id);

    std::set<std::uint64_t> ran;
    while (!tap.done) {
        ASSERT_TRUE(w0.hasWork());
        ran.insert(w0.assigns[w0.cursor].jobIndex);
        w0.finishNext(sched);
    }
    EXPECT_EQ(ran, (std::set<std::uint64_t>{1, 3}));
    EXPECT_EQ(tap.summary.ok, 2u);
    EXPECT_EQ(tap.summary.skipped, 2u);
}

TEST(FabricScheduler, AllSkippedCampaignCompletesOnStart)
{
    const auto jobs = expandCampaign(parseCampaignSpec(kSpecText));
    SubmitMsg msg = submitOf(kSpecText);
    for (const auto &job : jobs)
        msg.doneHashes.push_back(job.hash);

    Scheduler sched;
    ClientTap tap;
    const auto outcome =
        sched.submit(msg, tap.rowFn(), tap.doneFn());
    EXPECT_EQ(outcome.skippedJobs, 4u);
    // Done fires only at startCampaign(), never inside submit() —
    // the daemon's SubmitAck must be able to go out first.
    EXPECT_FALSE(tap.done);
    sched.startCampaign(outcome.id);
    EXPECT_TRUE(tap.done);
    EXPECT_EQ(tap.summary.skipped, 4u);
}

TEST(FabricScheduler, DeadWorkerJobRequeuesWithSnapshot)
{
    Scheduler sched;
    FakeWorker w0;
    w0.join(sched, "w0");
    sched.workerReady(w0.id);

    ClientTap tap;
    const auto outcome =
        sched.submit(submitOf(kSpecText), tap.rowFn(), tap.doneFn());
    sched.startCampaign(outcome.id);
    ASSERT_EQ(w0.assigns.size(), 1u);
    const AssignMsg first = w0.assigns[0];
    EXPECT_TRUE(first.checkpointBlob.empty());

    // The worker heartbeats a snapshot, then dies.
    HeartbeatMsg beat;
    beat.campaignId = first.campaignId;
    beat.jobIndex = first.jobIndex;
    beat.checkpointBlob = "SNAPSHOT-BYTES";
    sched.heartbeat(w0.id, beat, 100.0);
    EXPECT_EQ(sched.stats().snapshotsHeld, 1u);
    sched.workerLost(w0.id);

    // A fresh worker inherits the same job with the snapshot.
    FakeWorker w1;
    w1.join(sched, "w1");
    sched.workerReady(w1.id);
    ASSERT_EQ(w1.assigns.size(), 1u);
    EXPECT_EQ(w1.assigns[0].jobIndex, first.jobIndex);
    EXPECT_EQ(w1.assigns[0].checkpointBlob, "SNAPSHOT-BYTES");

    const auto stats = sched.stats();
    EXPECT_EQ(stats.reassignments, 1u);
    EXPECT_EQ(stats.snapshotAssignments, 1u);
}

TEST(FabricScheduler, JobFailsAfterMaxAttempts)
{
    Scheduler sched;
    ClientTap tap;
    const auto outcome =
        sched.submit(submitOf(kSpecText), tap.rowFn(), tap.doneFn());
    sched.startCampaign(outcome.id);

    // Kill the assigned worker kMaxAttempts times; on the last loss
    // the job is failed rather than requeued, and the campaign can
    // still complete.
    std::size_t doomed_index = 0;
    for (std::uint32_t attempt = 0;
         attempt < Scheduler::kMaxAttempts; ++attempt) {
        FakeWorker victim;
        victim.join(sched, "victim");
        sched.workerReady(victim.id);
        ASSERT_EQ(victim.assigns.size(), 1u);
        if (attempt == 0)
            doomed_index = victim.assigns[0].jobIndex;
        // Attempt affinity: the requeued job goes back out first.
        EXPECT_EQ(victim.assigns[0].jobIndex, doomed_index);
        sched.workerLost(victim.id);
    }

    // Survivor drains the rest of the grid.
    FakeWorker survivor;
    survivor.join(sched, "survivor");
    sched.workerReady(survivor.id);
    while (!tap.done) {
        ASSERT_TRUE(survivor.hasWork());
        EXPECT_NE(survivor.assigns[survivor.cursor].jobIndex,
                  doomed_index);
        survivor.finishNext(sched);
    }
    EXPECT_EQ(tap.summary.ok, 3u);
    EXPECT_EQ(tap.summary.failed, 1u);
    // The synthesized failure row reaches the client in place.
    bool found = false;
    for (const std::string &row : tap.rows)
        found = found
            || row.find("abandoned after") != std::string::npos;
    EXPECT_TRUE(found);
}

TEST(FabricScheduler, CancelledCampaignStopsDispatching)
{
    Scheduler sched;
    FakeWorker w0;
    w0.join(sched, "w0");
    sched.workerReady(w0.id);

    ClientTap tap;
    const auto outcome =
        sched.submit(submitOf(kSpecText), tap.rowFn(), tap.doneFn());
    sched.startCampaign(outcome.id);
    ASSERT_EQ(w0.assigns.size(), 1u);

    sched.cancelCampaign(outcome.id);
    // The in-flight job may still land; its rows are dropped and no
    // further work is handed out.
    ASSERT_TRUE(w0.finishNext(sched));
    EXPECT_EQ(w0.assigns.size(), 1u);
    EXPECT_TRUE(tap.rows.empty());
    EXPECT_FALSE(tap.done); // done callback was released, not fired
    EXPECT_EQ(sched.stats().openCampaigns, 0u);
}

TEST(FabricScheduler, ReapKicksOnlySilentBusyWorkers)
{
    Scheduler sched;
    FakeWorker busy, parked;
    busy.join(sched, "busy");
    parked.join(sched, "parked");
    sched.workerReady(busy.id);

    ClientTap tap;
    const auto outcome =
        sched.submit(submitOf(kSpecText), tap.rowFn(), tap.doneFn());
    sched.startCampaign(outcome.id);
    ASSERT_EQ(busy.assigns.size(), 1u);

    // First pass baselines the busy worker's clock: no kick yet even
    // though it has never heartbeat.
    sched.reapStale(1'000.0, 500.0);
    EXPECT_EQ(busy.kicks, 0);
    // Still within the window.
    sched.reapStale(1'400.0, 500.0);
    EXPECT_EQ(busy.kicks, 0);
    // Window blown: the busy worker is kicked, the parked one never.
    sched.reapStale(2'000.0, 500.0);
    EXPECT_EQ(busy.kicks, 1);
    EXPECT_EQ(parked.kicks, 0);

    // A heartbeat resets the window.
    FakeWorker fresh;
    fresh.join(sched, "fresh");
    sched.workerLost(busy.id);
    sched.workerReady(fresh.id);
    ASSERT_EQ(fresh.assigns.size(), 1u);
    HeartbeatMsg beat;
    beat.campaignId = fresh.assigns[0].campaignId;
    beat.jobIndex = fresh.assigns[0].jobIndex;
    sched.heartbeat(fresh.id, beat, 5'000.0);
    sched.reapStale(5'400.0, 500.0);
    EXPECT_EQ(fresh.kicks, 0);
}

TEST(FabricScheduler, QueryReportsProgress)
{
    Scheduler sched;
    FakeWorker w0;
    w0.join(sched, "w0");
    sched.workerReady(w0.id);

    EXPECT_EQ(sched.query(0).table, "(no campaigns submitted)");

    ClientTap tap;
    const auto outcome =
        sched.submit(submitOf(kSpecText), tap.rowFn(), tap.doneFn());
    sched.startCampaign(outcome.id);

    QueryAckMsg ack = sched.query(0);
    EXPECT_EQ(ack.campaignId, outcome.id);
    EXPECT_EQ(ack.done, 0u);
    EXPECT_EQ(ack.total, 4u);
    EXPECT_EQ(ack.table, "(no completed jobs yet)");

    EXPECT_EQ(sched.query(9999).table, "(unknown campaign)");

    ASSERT_TRUE(w0.finishNext(sched));
    ack = sched.query(outcome.id);
    EXPECT_GE(ack.done, 1u);
}

// ----------------------------------------------------------------
// Deterministic sharding
// ----------------------------------------------------------------

TEST(FabricShard, ShardsPartitionTheGrid)
{
    CampaignSpec spec = parseCampaignSpec(kSpecText);
    spec.axes.push_back({"llc-mb", {"4", "8"}});
    const auto jobs = expandCampaign(spec);
    ASSERT_EQ(jobs.size(), 8u);

    for (std::uint32_t n : {1u, 2u, 3u, 5u}) {
        std::size_t covered = 0;
        for (const auto &job : jobs) {
            std::uint32_t owners = 0;
            for (std::uint32_t k = 0; k < n; ++k)
                owners += jobInShard(job, k, n) ? 1 : 0;
            // Exactly one shard owns every job: disjoint and
            // complete, so the union of N shard runs is the grid.
            EXPECT_EQ(owners, 1u) << job.key << " n=" << n;
            covered++;
        }
        EXPECT_EQ(covered, jobs.size());
    }
}

TEST(FabricShard, MembershipIsContentDerived)
{
    // Reordering the grid (reversed policy axis) must not change any
    // job's shard: membership hangs off the job key, not the index.
    CampaignSpec forward = parseCampaignSpec(kSpecText);
    CampaignSpec backward = forward;
    std::reverse(backward.policies.begin(), backward.policies.end());
    const auto a = expandCampaign(forward);
    const auto b = expandCampaign(backward);
    ASSERT_EQ(a.size(), b.size());
    for (const auto &ja : a) {
        for (const auto &jb : b) {
            if (ja.key != jb.key)
                continue;
            for (std::uint32_t k = 0; k < 3; ++k)
                EXPECT_EQ(jobInShard(ja, k, 3), jobInShard(jb, k, 3));
        }
    }
}

TEST(FabricShard, RejectsBadShardArguments)
{
    const auto jobs = expandCampaign(parseCampaignSpec(kSpecText));
    EXPECT_THROW(
        {
            const ScopedFatalThrow guard;
            jobInShard(jobs[0], 2, 2);
        },
        FatalError);
}

// ----------------------------------------------------------------
// JSONL reader hardening
// ----------------------------------------------------------------

namespace
{

class JsonlFile
{
  public:
    JsonlFile()
        : path_("/tmp/lapsim_test_fabric_jsonl_"
                + std::to_string(::getpid()) + ".jsonl")
    {
        std::remove(path_.c_str());
    }
    ~JsonlFile() { std::remove(path_.c_str()); }

    void
    write(const std::string &bytes)
    {
        std::ofstream out(path_, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

} // namespace

TEST(JsonlReader, TornTrailingLineIsDroppedQuietly)
{
    JsonlFile file;
    file.write("{\"a\":\"1\"}\n"
               "{\"a\":\"2\"}\n"
               "{\"a\":\"3\",\"metr"); // killed mid-row, no newline
    JsonlReadStats stats;
    const auto rows = loadJsonl(file.path(), stats);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rowValue(rows[1], "a"), "2");
    EXPECT_TRUE(stats.tornTail);
    EXPECT_EQ(stats.malformed, 0u);
    EXPECT_EQ(stats.rows, 2u);
}

TEST(JsonlReader, TerminatedGarbageCountsAsMalformed)
{
    JsonlFile file;
    file.write("{\"a\":\"1\"}\n"
               "not json at all\n"
               "{\"a\":\"3\"}\n");
    JsonlReadStats stats;
    const auto rows = loadJsonl(file.path(), stats);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(stats.malformed, 1u);
    EXPECT_FALSE(stats.tornTail);
}

TEST(JsonlReader, UnterminatedButParseableTailIsKept)
{
    // A writer that was killed between the row and its newline still
    // left a complete row; it must be kept, not treated as torn.
    JsonlFile file;
    file.write("{\"a\":\"1\"}\n"
               "{\"a\":\"2\"}");
    JsonlReadStats stats;
    const auto rows = loadJsonl(file.path(), stats);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rowValue(rows[1], "a"), "2");
    EXPECT_FALSE(stats.tornTail);
}

TEST(JsonlReader, MissingFileYieldsNoRows)
{
    JsonlReadStats stats;
    const auto rows =
        loadJsonl("/tmp/lapsim_no_such_file_here.jsonl", stats);
    EXPECT_TRUE(rows.empty());
    EXPECT_EQ(stats.lines, 0u);
    EXPECT_FALSE(stats.tornTail);
}

TEST(JsonlReader, BlankAndCommentFreeLinesDoNotConfuseStats)
{
    JsonlFile file;
    file.write("\n{\"a\":\"1\"}\n\n{\"a\":\"2\"}\n\n");
    JsonlReadStats stats;
    const auto rows = loadJsonl(file.path(), stats);
    EXPECT_EQ(rows.size(), 2u);
    EXPECT_EQ(stats.rows, 2u);
    EXPECT_EQ(stats.malformed, 0u);
}
