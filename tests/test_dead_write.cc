/**
 * @file
 * Tests for the DASCA-style dead-write predictor and its integration
 * with the hierarchy's write path (bypass + outcome training).
 */

#include <gtest/gtest.h>

#include "core/dasca_filter.hh"
#include "core/dead_write_predictor.hh"
#include "test_util.hh"

namespace lap
{
namespace
{

TEST(DeadWritePredictor, StartsOptimistic)
{
    DeadWritePredictor p;
    EXPECT_FALSE(p.predictDead(42));
    EXPECT_EQ(p.stats().predictions, 1u);
    EXPECT_EQ(p.stats().bypasses, 0u);
}

TEST(DeadWritePredictor, LearnsDeadSites)
{
    DeadWritePredictor p(12, 7, 6);
    for (int i = 0; i < 6; ++i)
        p.train(42, true);
    EXPECT_TRUE(p.predictDead(42));
    EXPECT_FALSE(p.predictDead(43)); // other sites unaffected
}

TEST(DeadWritePredictor, UsefulOutcomesDecayFast)
{
    DeadWritePredictor p(12, 7, 6);
    for (int i = 0; i < 7; ++i)
        p.train(42, true);
    EXPECT_TRUE(p.predictDead(42));
    // One useful observation drops confidence by two.
    p.train(42, false);
    p.train(42, false);
    EXPECT_FALSE(p.predictDead(42));
}

TEST(DeadWritePredictor, CountersSaturate)
{
    DeadWritePredictor p(8, 3, 3);
    for (int i = 0; i < 100; ++i)
        p.train(7, true);
    EXPECT_EQ(p.counterOf(7), 3);
    for (int i = 0; i < 100; ++i)
        p.train(7, false);
    EXPECT_EQ(p.counterOf(7), 0);
}

TEST(DeadWritePredictor, RejectsBadConfig)
{
    EXPECT_DEATH(DeadWritePredictor(0, 7, 6), "");
    EXPECT_DEATH(DeadWritePredictor(12, 3, 6), "threshold");
}

TEST(DascaFilter, AdaptsInterface)
{
    DascaFilter f;
    EXPECT_EQ(f.name(), "DASCA");
    for (int i = 0; i < 7; ++i)
        f.observeOutcome(9, /*was_dead=*/true);
    EXPECT_TRUE(f.shouldBypass(9, true));
    EXPECT_FALSE(f.shouldBypass(10, true));
}

// --- Hierarchy integration ---------------------------------------------

std::unique_ptr<CacheHierarchy>
filteredHierarchy(PolicyKind kind)
{
    PolicyTuning tuning;
    tuning.epochCycles = 10'000;
    tuning.leaderPeriod = 2; // tiny LLC: every set is a leader
    return std::make_unique<CacheHierarchy>(
        test::tinyParams(), makeInclusionPolicy(kind, 32, tuning),
        nullptr, std::make_unique<DascaFilter>());
}

/** Issues a read with an explicit access site. */
void
readAt(CacheHierarchy &h, std::uint64_t blk, std::uint32_t site)
{
    h.access(0, blk * 64, AccessType::Read, 0, site);
}

void
writeAt(CacheHierarchy &h, std::uint64_t blk, std::uint32_t site)
{
    h.access(0, blk * 64, AccessType::Write, 0, site);
}

TEST(DascaIntegration, StreamingDeadWritesGetBypassed)
{
    auto h = filteredHierarchy(PolicyKind::NonInclusive);
    // A long one-pass stream from one site: its fills are never
    // reused, so the predictor converges to bypassing them.
    for (std::uint64_t blk = 0; blk < 4000; ++blk)
        readAt(*h, blk, /*site=*/5);
    EXPECT_GT(h->stats().llcBypassedWrites, 500u);
    // Once confident, fills stop reaching the LLC.
    const auto fills_before = h->stats().llcWritesDataFill;
    for (std::uint64_t blk = 4000; blk < 4200; ++blk)
        readAt(*h, blk, 5);
    EXPECT_EQ(h->stats().llcWritesDataFill, fills_before);
}

TEST(DascaIntegration, ReusedDataIsNotBypassed)
{
    auto h = filteredHierarchy(PolicyKind::NonInclusive);
    // A loop working set from one site, reused every pass: fills are
    // useful, so bypass confidence must stay low.
    for (int pass = 0; pass < 30; ++pass) {
        for (std::uint64_t blk = 0; blk < 64; ++blk)
            readAt(*h, blk, /*site=*/9);
    }
    EXPECT_EQ(h->stats().llcBypassedWrites, 0u);
}

TEST(DascaIntegration, BypassedDirtyDataReachesDram)
{
    auto h = filteredHierarchy(PolicyKind::Exclusive);
    // Write-once sweep: dirty victims from one site are dead writes.
    for (std::uint64_t blk = 0; blk < 4000; ++blk)
        writeAt(*h, blk, /*site=*/3);
    h->flushPrivate(0);
    EXPECT_GT(h->stats().llcBypassedWrites, 100u);
    // Re-read everything: the verifier would panic on lost data.
    for (std::uint64_t blk = 0; blk < 4000; ++blk)
        readAt(*h, blk, 3);
}

TEST(DascaIntegration, IntegrityUnderRandomTrafficAllPolicies)
{
    for (PolicyKind kind :
         {PolicyKind::NonInclusive, PolicyKind::Exclusive,
          PolicyKind::Lap}) {
        auto h = filteredHierarchy(kind);
        Rng rng(123);
        for (int i = 0; i < 40000; ++i) {
            const std::uint64_t blk = rng.below(500);
            const auto site = static_cast<std::uint32_t>(blk % 7);
            if (rng.chance(0.4))
                writeAt(*h, blk, site);
            else
                readAt(*h, blk, site);
        }
        // Drain and re-read: all newest versions must survive.
        h->flushPrivate(0);
        for (std::uint64_t blk = 0; blk < 500; ++blk)
            readAt(*h, blk, 0);
    }
}

TEST(DascaIntegration, ReducesWritesOnMixedWorkload)
{
    auto run = [&](bool with_filter) {
        PolicyTuning tuning;
        tuning.epochCycles = 10'000;
        tuning.leaderPeriod = 2;
        auto h = std::make_unique<CacheHierarchy>(
            test::tinyParams(),
            makeInclusionPolicy(PolicyKind::Lap, 32, tuning), nullptr,
            with_filter ? std::make_unique<DascaFilter>() : nullptr);
        Rng rng(9);
        // Loop traffic (site 1) + dead streaming traffic (site 2).
        std::uint64_t stream_pos = 10000;
        for (int i = 0; i < 60000; ++i) {
            if (rng.chance(0.5)) {
                readAt(*h, rng.below(64), 1);
            } else {
                readAt(*h, stream_pos++, 2);
            }
        }
        return h->stats().llcWritesTotal();
    };
    EXPECT_LT(run(true), run(false));
}

} // namespace
} // namespace lap
