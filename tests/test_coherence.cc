/**
 * @file
 * Tests for the MOESI transition rules and the multi-core coherence
 * behaviour of the hierarchy (snoop-on-LLC-miss, upgrades,
 * cache-to-cache transfer, stale-copy protection).
 */

#include <gtest/gtest.h>

#include "test_util.hh"

namespace lap
{
namespace
{

using test::readBlock;
using test::tinyHierarchy;
using test::tinyParams;
using test::writeBlock;

test::TestHierarchy
coherentHierarchy(PolicyKind kind = PolicyKind::NonInclusive)
{
    HierarchyParams hp = tinyParams(/*cores=*/2);
    hp.coherence = true;
    return tinyHierarchy(kind, hp);
}

// --- Pure transition rules --------------------------------------------

TEST(Moesi, RemoteReadTransitions)
{
    EXPECT_EQ(peerStateAfterRemoteRead(CohState::Modified),
              CohState::Owned);
    EXPECT_EQ(peerStateAfterRemoteRead(CohState::Owned),
              CohState::Owned);
    EXPECT_EQ(peerStateAfterRemoteRead(CohState::Exclusive),
              CohState::Shared);
    EXPECT_EQ(peerStateAfterRemoteRead(CohState::Shared),
              CohState::Shared);
    EXPECT_EQ(peerStateAfterRemoteRead(CohState::Invalid),
              CohState::Invalid);
}

TEST(Moesi, RemoteWriteInvalidates)
{
    for (auto s : {CohState::Modified, CohState::Owned,
                   CohState::Exclusive, CohState::Shared}) {
        EXPECT_EQ(peerStateAfterRemoteWrite(s), CohState::Invalid);
    }
}

TEST(Moesi, RequesterStates)
{
    EXPECT_EQ(requesterStateAfterRead(SnoopResult::Miss),
              CohState::Exclusive);
    EXPECT_EQ(requesterStateAfterRead(SnoopResult::SharedClean),
              CohState::Shared);
    EXPECT_EQ(requesterStateAfterRead(SnoopResult::SharedDirty),
              CohState::Shared);
    EXPECT_EQ(requesterStateAfterWrite(), CohState::Modified);
}

TEST(Moesi, StatePredicates)
{
    EXPECT_TRUE(suppliesData(CohState::Modified));
    EXPECT_TRUE(suppliesData(CohState::Owned));
    EXPECT_FALSE(suppliesData(CohState::Shared));
    EXPECT_TRUE(isDirtyState(CohState::Owned));
    EXPECT_FALSE(isDirtyState(CohState::Exclusive));
    EXPECT_TRUE(needsUpgrade(CohState::Shared));
    EXPECT_TRUE(needsUpgrade(CohState::Owned));
    EXPECT_FALSE(needsUpgrade(CohState::Modified));
    EXPECT_FALSE(needsUpgrade(CohState::Exclusive));
}

// --- Hierarchy behaviour ----------------------------------------------

TEST(Coherence, ReadMissBroadcastsSnoop)
{
    auto h = coherentHierarchy();
    readBlock(*h, 0, 1);
    EXPECT_EQ(h->stats().snoop.broadcasts, 1u);
    EXPECT_EQ(h->stats().snoop.messages, 1u); // 2 cores - 1
}

TEST(Coherence, SoleReaderGetsExclusive)
{
    auto h = coherentHierarchy();
    readBlock(*h, 0, 1);
    EXPECT_EQ(h->l1(0).probe(1).coh(), CohState::Exclusive);
}

TEST(Coherence, SecondReaderShares)
{
    auto h = coherentHierarchy(PolicyKind::Exclusive);
    // Exclusive policy: no LLC copy after the private fill, so the
    // second reader's miss finds the peer's copy via snoop.
    readBlock(*h, 0, 1);
    readBlock(*h, 1, 1);
    EXPECT_EQ(h->l1(0).probe(1).coh(), CohState::Shared);
    EXPECT_EQ(h->l1(1).probe(1).coh(), CohState::Shared);
    EXPECT_GE(h->stats().snoop.dataTransfers, 1u);
}

TEST(Coherence, DirtyPeerSuppliesAndBecomesOwner)
{
    auto h = coherentHierarchy(PolicyKind::Exclusive);
    writeBlock(*h, 0, 1);
    EXPECT_EQ(h->l1(0).probe(1).coh(), CohState::Modified);

    const auto result = readBlock(*h, 1, 1);
    EXPECT_EQ(result.level, ServiceLevel::Peer);
    EXPECT_EQ(h->l1(0).probe(1).coh(), CohState::Owned);
    EXPECT_EQ(h->l1(1).probe(1).coh(), CohState::Shared);
    EXPECT_GE(h->stats().snoop.dataTransfers, 1u);
    // Reader must observe core 0's written value (verifier checks).
}

TEST(Coherence, WriteInvalidatesPeerCopies)
{
    auto h = coherentHierarchy(PolicyKind::Exclusive);
    readBlock(*h, 0, 1);
    writeBlock(*h, 1, 1);
    EXPECT_FALSE(h->l1(0).probe(1));
    EXPECT_FALSE(h->l2(0).probe(1));
    EXPECT_EQ(h->l1(1).probe(1).coh(), CohState::Modified);
    EXPECT_GE(h->stats().snoop.invalidations, 1u);
}

TEST(Coherence, WriteHitOnSharedUpgrades)
{
    auto h = coherentHierarchy(PolicyKind::Exclusive);
    readBlock(*h, 0, 1);
    readBlock(*h, 1, 1); // both Shared now
    const auto upgrades_before = h->stats().snoop.upgrades;
    writeBlock(*h, 1, 1); // L1 hit on a Shared block
    EXPECT_EQ(h->stats().snoop.upgrades, upgrades_before + 1);
    EXPECT_FALSE(h->l1(0).probe(1));
    EXPECT_EQ(h->l1(1).probe(1).coh(), CohState::Modified);
}

TEST(Coherence, SilentUpgradeFromExclusive)
{
    auto h = coherentHierarchy();
    readBlock(*h, 0, 1); // Exclusive
    const auto msgs = h->stats().snoop.totalMessages();
    writeBlock(*h, 0, 1); // E -> M silently
    EXPECT_EQ(h->stats().snoop.totalMessages(), msgs);
    EXPECT_EQ(h->l1(0).probe(1).coh(), CohState::Modified);
}

TEST(Coherence, PingPongWritesStayCorrect)
{
    auto h = coherentHierarchy();
    // Alternating writers: every write must invalidate the other
    // core and every read must see the newest version (verifier
    // panics otherwise).
    for (int i = 0; i < 50; ++i) {
        writeBlock(*h, i % 2, 7);
        readBlock(*h, (i + 1) % 2, 7);
    }
    EXPECT_GE(h->stats().snoop.invalidations, 25u);
}

TEST(Coherence, LlcHitWithDirtyPeerServesNewestData)
{
    // Core 0 writes (noni keeps a stale LLC copy after the dirty
    // victim updates it... force the stale case: write after fill).
    auto h = coherentHierarchy(PolicyKind::NonInclusive);
    readBlock(*h, 0, 1);  // LLC filled (clean copy)
    writeBlock(*h, 0, 1); // core 0's L1 now newer than the LLC copy
    // Core 1 read: LLC hit would be stale; the ideal snoop filter
    // must fetch from core 0. Verifier enforces freshness.
    const auto result = readBlock(*h, 1, 1);
    EXPECT_EQ(result.level, ServiceLevel::Peer);
    EXPECT_EQ(h->l1(0).probe(1).coh(), CohState::Owned);
}

TEST(Coherence, SnoopTrafficTracksLlcMisses)
{
    // The paper's Fig 20(c) premise: broadcasts happen at LLC misses.
    auto h = coherentHierarchy();
    Rng rng(5);
    for (int i = 0; i < 2000; ++i)
        readBlock(*h, rng.below(2), rng.below(512));
    EXPECT_EQ(h->stats().snoop.broadcasts, h->stats().llcMisses);
}

TEST(Coherence, SharedReadsProduceNoInvalidations)
{
    auto h = coherentHierarchy();
    for (int i = 0; i < 100; ++i) {
        readBlock(*h, 0, i);
        readBlock(*h, 1, i);
    }
    EXPECT_EQ(h->stats().snoop.invalidations, 0u);
    EXPECT_EQ(h->stats().snoop.upgrades, 0u);
}

TEST(Coherence, RandomSharedTrafficIsCorrectUnderEveryPolicy)
{
    for (PolicyKind kind : allPolicyKinds()) {
        HierarchyParams hp = tinyParams(2);
        hp.coherence = true;
        auto h = tinyHierarchy(kind, hp);
        Rng rng(kind == PolicyKind::Lap ? 11 : 13);
        for (int i = 0; i < 20000; ++i) {
            const CoreId core = static_cast<CoreId>(rng.below(2));
            const std::uint64_t blk = rng.below(128);
            // The verifier panics on any stale read or lost write.
            if (rng.chance(0.3))
                writeBlock(*h, core, blk);
            else
                readBlock(*h, core, blk);
        }
    }
}

} // namespace
} // namespace lap
