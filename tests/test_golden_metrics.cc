/**
 * @file
 * Golden-metrics regression suite.
 *
 * One deterministic workload per inclusion policy (plus the hybrid
 * Lhybrid placement) runs through the full Simulator and is compared
 * against the committed baseline in tests/golden/<slug>.json.
 * Integer counters must match bit-exactly; derived floating-point
 * metrics (EPI, IPC, MPKI) get a relative tolerance so baselines
 * survive benign float-formatting differences.
 *
 * The configs are built directly (never through applyEnvScaling), so
 * LAPSIM_FAST / LAPSIM_REFS_SCALE cannot skew a golden run.
 *
 * Regenerate baselines after an intentional behaviour change with
 *   tools/regen-golden.sh
 * (equivalently: LAPSIM_REGEN_GOLDEN=1 ./build/tests/test_golden_metrics)
 * and commit the diff alongside the change that caused it.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "campaign/jsonl.hh"
#include "common/json.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "workloads/mixes.hh"

namespace lap
{
namespace
{

struct GoldenCase
{
    const char *slug;     //!< Baseline file stem and test name.
    PolicyKind policy;
    PlacementKind placement;
    bool hybrid;
    const char *benchmark; //!< Duplicated across both cores.
};

const GoldenCase kCases[] = {
    {"inclusive", PolicyKind::Inclusive, PlacementKind::Default, false,
     "mcf"},
    {"noni", PolicyKind::NonInclusive, PlacementKind::Default, false,
     "mcf"},
    {"ex", PolicyKind::Exclusive, PlacementKind::Default, false, "mcf"},
    {"flex", PolicyKind::Flexclusion, PlacementKind::Default, false,
     "omnetpp"},
    {"dswitch", PolicyKind::Dswitch, PlacementKind::Default, false,
     "omnetpp"},
    {"lap", PolicyKind::Lap, PlacementKind::Default, false,
     "libquantum"},
    {"lhybrid", PolicyKind::Lap, PlacementKind::Lhybrid, true,
     "libquantum"},
};

SimConfig
goldenConfig(const GoldenCase &c)
{
    SimConfig cfg;
    cfg.numCores = 2;
    cfg.l1Size = 4 * 1024;
    cfg.l2Size = 32 * 1024;
    cfg.llcSize = 256 * 1024;
    cfg.warmupRefs = 10'000;
    cfg.measureRefs = 50'000;
    cfg.tuning.epochCycles = 50'000;
    cfg.policy = c.policy;
    cfg.placement = c.placement;
    cfg.hybridLlc = c.hybrid;
    return cfg;
}

Metrics
runGolden(const GoldenCase &c)
{
    Simulator sim(goldenConfig(c));
    return sim.run(resolveMix(duplicateMix(c.benchmark, 2)));
}

/** The compared metric set, serialized as one flat JSON object. */
std::string
goldenJson(const Metrics &m)
{
    JsonWriter w;
    w.field("instructions", m.instructions)
        .field("cycles", m.cycles)
        .field("llcHits", m.llcHits)
        .field("llcMisses", m.llcMisses)
        .field("llcWritesFill", m.llcWritesFill)
        .field("llcWritesCleanVictim", m.llcWritesCleanVictim)
        .field("llcWritesDirtyVictim", m.llcWritesDirtyVictim)
        .field("llcWritesMigration", m.llcWritesMigration)
        .field("llcWritesTotal", m.llcWritesTotal)
        .field("llcDemandFills", m.llcDemandFills)
        .field("llcDeadFills", m.llcDeadFills)
        .field("snoopMessages", m.snoopMessages)
        .field("dramReads", m.dramReads)
        .field("dramWrites", m.dramWrites)
        .field("throughput", m.throughput)
        .field("epi", m.epi)
        .field("llcMpki", m.llcMpki);
    return w.str();
}

const char *const kExactKeys[] = {
    "instructions",          "cycles",
    "llcHits",               "llcMisses",
    "llcWritesFill",         "llcWritesCleanVictim",
    "llcWritesDirtyVictim",  "llcWritesMigration",
    "llcWritesTotal",        "llcDemandFills",
    "llcDeadFills",          "snoopMessages",
    "dramReads",             "dramWrites",
};

const char *const kTolerantKeys[] = {"throughput", "epi", "llcMpki"};

std::string
goldenPath(const GoldenCase &c)
{
    return std::string(LAPSIM_GOLDEN_DIR) + "/" + c.slug + ".json";
}

std::string
readFileOrEmpty(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return "";
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

bool
regenRequested()
{
    const char *env = std::getenv("LAPSIM_REGEN_GOLDEN");
    return env != nullptr && env[0] == '1';
}

class GoldenMetrics : public ::testing::TestWithParam<GoldenCase>
{
};

TEST_P(GoldenMetrics, MatchesCommittedBaseline)
{
    const GoldenCase &c = GetParam();
    const std::string path = goldenPath(c);
    const std::string fresh = goldenJson(runGolden(c));

    if (regenRequested()) {
        writeFile(path, fresh + "\n");
        GTEST_SKIP() << "regenerated " << path;
    }

    const std::string baseline = readFileOrEmpty(path);
    ASSERT_FALSE(baseline.empty())
        << "missing baseline " << path
        << " — run tools/regen-golden.sh and commit the result";

    JsonRow want, got;
    ASSERT_TRUE(parseJsonObject(baseline, want)) << path;
    ASSERT_TRUE(parseJsonObject(fresh, got));

    for (const char *key : kExactKeys) {
        ASSERT_FALSE(rowValue(want, key).empty())
            << "baseline " << path << " lacks '" << key
            << "' — regenerate it";
        // Integer counters print exactly, so text equality is the
        // bit-exact comparison.
        EXPECT_EQ(rowValue(want, key), rowValue(got, key))
            << c.slug << ": counter '" << key << "' drifted";
    }
    for (const char *key : kTolerantKeys) {
        const double expect = std::atof(rowValue(want, key).c_str());
        const double actual = std::atof(rowValue(got, key).c_str());
        const double tol =
            1e-4 * std::max(1e-12, std::abs(expect));
        EXPECT_NEAR(actual, expect, tol)
            << c.slug << ": metric '" << key << "' drifted";
    }
}

/** A golden run is self-deterministic: same config, same counters. */
TEST(GoldenMetrics, RunsAreDeterministic)
{
    const GoldenCase &c = kCases[0];
    EXPECT_EQ(goldenJson(runGolden(c)), goldenJson(runGolden(c)));
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, GoldenMetrics, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<GoldenCase> &info) {
        return std::string(info.param.slug);
    });

// -----------------------------------------------------------------
// Stressor-trace baselines: the five built-in LAPTR1 stressors
// (trace/stressors.hh) replayed through the trace frontend, each
// paired with a different policy so the matrix also exercises the
// replay path under every adaptive mechanism. Same comparison
// machinery, same regeneration workflow as the mix cases above.

struct StressorCase
{
    const char *slug;     //!< Baseline stem, "stressor_<name>".
    const char *trace;    //!< "stressor:<name>" spec.
    PolicyKind policy;
};

const StressorCase kStressorCases[] = {
    {"stressor_gups", "stressor:gups", PolicyKind::NonInclusive},
    {"stressor_stencil", "stressor:stencil", PolicyKind::Lap},
    {"stressor_stream_triad", "stressor:stream_triad",
     PolicyKind::Exclusive},
    {"stressor_pointer_chase", "stressor:pointer_chase",
     PolicyKind::Inclusive},
    {"stressor_mixed_hot_scan", "stressor:mixed_hot_scan",
     PolicyKind::Dswitch},
};

SimConfig
stressorConfig(const StressorCase &c)
{
    SimConfig cfg;
    cfg.numCores = 2;
    cfg.l1Size = 4 * 1024;
    cfg.l2Size = 32 * 1024;
    cfg.llcSize = 256 * 1024;
    cfg.warmupRefs = 10'000;
    cfg.measureRefs = 50'000;
    cfg.tuning.epochCycles = 50'000;
    cfg.policy = c.policy;
    cfg.tracePath = c.trace;
    return cfg;
}

class GoldenStressors : public ::testing::TestWithParam<StressorCase>
{
};

TEST_P(GoldenStressors, MatchesCommittedBaseline)
{
    const StressorCase &c = GetParam();
    const std::string path =
        std::string(LAPSIM_GOLDEN_DIR) + "/" + c.slug + ".json";
    Simulator sim(stressorConfig(c));
    const std::string fresh = goldenJson(sim.runTrace());

    if (regenRequested()) {
        writeFile(path, fresh + "\n");
        GTEST_SKIP() << "regenerated " << path;
    }

    const std::string baseline = readFileOrEmpty(path);
    ASSERT_FALSE(baseline.empty())
        << "missing baseline " << path
        << " — run tools/regen-golden.sh and commit the result";

    JsonRow want, got;
    ASSERT_TRUE(parseJsonObject(baseline, want)) << path;
    ASSERT_TRUE(parseJsonObject(fresh, got));

    for (const char *key : kExactKeys) {
        EXPECT_EQ(rowValue(want, key), rowValue(got, key))
            << c.slug << ": counter '" << key << "' drifted";
    }
    for (const char *key : kTolerantKeys) {
        const double expect = std::atof(rowValue(want, key).c_str());
        const double actual = std::atof(rowValue(got, key).c_str());
        const double tol =
            1e-4 * std::max(1e-12, std::abs(expect));
        EXPECT_NEAR(actual, expect, tol)
            << c.slug << ": metric '" << key << "' drifted";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Stressors, GoldenStressors, ::testing::ValuesIn(kStressorCases),
    [](const ::testing::TestParamInfo<StressorCase> &info) {
        return std::string(info.param.slug);
    });

} // namespace
} // namespace lap
