/**
 * @file
 * Directed tests of the inclusion-policy data flows, including
 * block-exact reproductions of the paper's motivating examples:
 * Fig 3 (redundant clean insertions under exclusion) and Fig 5
 * (redundant LLC data-fills under non-inclusion).
 */

#include <gtest/gtest.h>

#include "test_util.hh"

namespace lap
{
namespace
{

using test::blockAddr;
using test::readBlock;
using test::tinyHierarchy;
using test::tinyParams;
using test::writeBlock;

TEST(Flows, L1HitServesWithoutLowerTraffic)
{
    auto h = tinyHierarchy(PolicyKind::NonInclusive);
    readBlock(*h, 0, 1);
    const auto l2_before = h->l2(0).stats().accesses();
    const auto result = readBlock(*h, 0, 1);
    EXPECT_EQ(result.level, ServiceLevel::L1);
    EXPECT_EQ(result.doneAt, 2u);
    EXPECT_EQ(h->l2(0).stats().accesses(), l2_before);
}

TEST(Flows, MissFillsAllLevelsUnderNonInclusion)
{
    auto h = tinyHierarchy(PolicyKind::NonInclusive);
    const auto result = readBlock(*h, 0, 1);
    EXPECT_EQ(result.level, ServiceLevel::Memory);
    EXPECT_TRUE(h->l1(0).probe(1));
    EXPECT_TRUE(h->l2(0).probe(1));
    EXPECT_TRUE(h->llc().probe(1)); // data-fill
    EXPECT_EQ(h->stats().llcWritesDataFill, 1u);
    EXPECT_EQ(h->stats().llcDemandFills, 1u);
}

TEST(Flows, MissBypassesLlcUnderExclusionAndLap)
{
    for (auto kind : {PolicyKind::Exclusive, PolicyKind::Lap}) {
        auto h = tinyHierarchy(kind);
        readBlock(*h, 0, 1);
        EXPECT_FALSE(h->llc().probe(1)) << toString(kind);
        EXPECT_EQ(h->stats().llcWritesDataFill, 0u);
    }
}

TEST(Flows, ExclusiveHitInvalidatesLlcCopy)
{
    auto h = tinyHierarchy(PolicyKind::Exclusive);
    readBlock(*h, 0, 1);
    h->flushPrivate(0);                     // clean victim -> LLC
    ASSERT_TRUE(h->llc().probe(1));
    const auto result = readBlock(*h, 0, 1); // LLC hit
    EXPECT_EQ(result.level, ServiceLevel::Llc);
    EXPECT_FALSE(h->llc().probe(1));
    EXPECT_EQ(h->stats().llcInvalidationsOnHit, 1u);
}

TEST(Flows, LapAndNoniKeepLlcCopyOnHit)
{
    for (auto kind : {PolicyKind::NonInclusive, PolicyKind::Lap}) {
        auto h = tinyHierarchy(kind);
        readBlock(*h, 0, 1);
        h->flushPrivate(0);
        if (kind == PolicyKind::Lap) {
            ASSERT_TRUE(h->llc().probe(1)); // clean victim kept
        }
        if (!h->llc().probe(1))
            continue;
        readBlock(*h, 0, 1);
        EXPECT_TRUE(h->llc().probe(1)) << toString(kind);
        EXPECT_EQ(h->stats().llcInvalidationsOnHit, 0u);
    }
}

TEST(Flows, ExclusiveHitTransfersDirtyState)
{
    auto h = tinyHierarchy(PolicyKind::Exclusive);
    writeBlock(*h, 0, 1);
    h->flushPrivate(0); // dirty victim into LLC
    ASSERT_TRUE(h->llc().probe(1));
    EXPECT_TRUE(h->llc().probe(1).dirty());

    readBlock(*h, 0, 1); // hit; dirty moves up with the block
    EXPECT_FALSE(h->llc().probe(1));
    ASSERT_TRUE(h->l2(0).probe(1));
    EXPECT_TRUE(h->l2(0).probe(1).dirty());

    // The dirty data must reach memory eventually.
    h->flushPrivate(0);
    ASSERT_TRUE(h->llc().probe(1));
    EXPECT_TRUE(h->llc().probe(1).dirty());
}

TEST(Flows, CleanVictimDroppedWhenDuplicatePresent)
{
    auto h = tinyHierarchy(PolicyKind::NonInclusive);
    readBlock(*h, 0, 1); // fills LLC and L2
    h->resetStats();
    h->flushPrivate(0); // clean victim, duplicate present
    EXPECT_EQ(h->stats().llcCleanVictimsDropped, 1u);
    EXPECT_EQ(h->stats().llcWritesTotal(), 0u); // tag update only
}

TEST(Flows, CleanVictimDroppedSilentlyUnderNonInclusionWhenAbsent)
{
    auto h = tinyHierarchy(PolicyKind::NonInclusive);
    readBlock(*h, 0, 1);
    // Remove the LLC duplicate directly to simulate its eviction.
    h->llc().invalidateBlock(h->llc().probe(1));
    h->resetStats();
    h->flushPrivate(0);
    EXPECT_EQ(h->stats().llcWritesTotal(), 0u);
    EXPECT_FALSE(h->llc().probe(1));
}

TEST(Flows, LapInsertsCleanVictimOnlyWhenAbsent)
{
    auto h = tinyHierarchy(PolicyKind::Lap);
    readBlock(*h, 0, 1);
    h->resetStats();
    h->flushPrivate(0); // absent -> inserted
    EXPECT_EQ(h->stats().llcWritesCleanVictim, 1u);

    readBlock(*h, 0, 1); // LLC hit, copy stays
    h->resetStats();
    h->flushPrivate(0); // duplicate -> dropped
    EXPECT_EQ(h->stats().llcWritesCleanVictim, 0u);
    EXPECT_EQ(h->stats().llcCleanVictimsDropped, 1u);
}

TEST(Flows, DirtyVictimUpdatesDuplicateInPlace)
{
    auto h = tinyHierarchy(PolicyKind::NonInclusive);
    readBlock(*h, 0, 1);  // LLC fill
    writeBlock(*h, 0, 1); // dirty in L1
    h->resetStats();
    h->flushPrivate(0);
    EXPECT_EQ(h->stats().llcWritesDirtyVictim, 1u);
    ASSERT_TRUE(h->llc().probe(1));
    EXPECT_TRUE(h->llc().probe(1).dirty());
    EXPECT_EQ(h->llc().stats().fills, 0u); // no second allocation
}

TEST(Flows, LoopBitLifecycle)
{
    // Fig 10: reset on fill from memory and on write; set on the L2
    // copy at an LLC hit; refreshed in the LLC tag on dedup drops.
    auto h = tinyHierarchy(PolicyKind::Lap);
    readBlock(*h, 0, 1);
    EXPECT_FALSE(h->l2(0).probe(1).loopBit()); // from memory

    h->flushPrivate(0);
    ASSERT_TRUE(h->llc().probe(1));
    EXPECT_FALSE(h->llc().probe(1).loopBit()); // first descent

    readBlock(*h, 0, 1); // LLC hit
    ASSERT_TRUE(h->l2(0).probe(1));
    EXPECT_TRUE(h->l2(0).probe(1).loopBit()); // Fig 10(c)

    h->flushPrivate(0); // clean dedup: tag loop-bit updated
    EXPECT_TRUE(h->llc().probe(1).loopBit()); // Fig 10(b)

    readBlock(*h, 0, 1);
    writeBlock(*h, 0, 1); // write clears the loop bit
    EXPECT_FALSE(h->l1(0).probe(1).loopBit());
    EXPECT_FALSE(h->l2(0).probe(1).loopBit());
    h->flushPrivate(0); // dirty victim updates duplicate, clears bit
    EXPECT_FALSE(h->llc().probe(1).loopBit());
}

TEST(Flows, InclusiveBackInvalidation)
{
    auto h = tinyHierarchy(PolicyKind::Inclusive);
    // Occupy one LLC set (4 ways) with blocks resident in L2.
    // LLC has 32 sets; blocks k*32 all map to LLC set 0.
    for (std::uint64_t i = 0; i < 4; ++i)
        readBlock(*h, 0, i * 32);
    // A fifth block in the same LLC set evicts one; its upper copies
    // must be back-invalidated.
    readBlock(*h, 0, 4 * 32);
    EXPECT_GE(h->stats().llcBackInvalidations, 1u);
    std::uint32_t upper_copies = 0;
    for (std::uint64_t i = 0; i <= 4; ++i) {
        if (h->l2(0).probe(i * 32) || h->l1(0).probe(i * 32))
            upper_copies++;
    }
    // Inclusion invariant: every upper-level block is in the LLC.
    for (std::uint64_t i = 0; i <= 4; ++i) {
        if (h->l2(0).probe(i * 32)
            || h->l1(0).probe(i * 32)) {
            EXPECT_TRUE(h->llc().probe(i * 32)) << i;
        }
    }
    EXPECT_LE(upper_copies, 4u);
}

TEST(Flows, InclusiveBackInvalidationWritesBackDirtyUpperData)
{
    auto h = tinyHierarchy(PolicyKind::Inclusive);
    writeBlock(*h, 0, 0); // dirty in L1, resident in LLC set 0
    const auto dram_before = h->dram().stats().writes;
    for (std::uint64_t i = 1; i <= 4; ++i)
        readBlock(*h, 0, i * 32); // evict block 0 from the LLC
    EXPECT_FALSE(h->l1(0).probe(0));
    EXPECT_FALSE(h->l2(0).probe(0));
    EXPECT_GT(h->dram().stats().writes, dram_before);
    // The verifier would panic on a lost write; re-reading proves it.
    readBlock(*h, 0, 0);
}

// ---------------------------------------------------------------------
// Paper Fig 3: cache blocks A-D; A/B clean, C/D dirty in their first
// L2 lifetime; all four hit in the LLC and return to L2; B and D are
// written during the second lifetime. After the second eviction the
// exclusive LLC performs two extra writes (re-inserting the clean
// loop-blocks A and C) compared to non-inclusion; LAP avoids them.
// ---------------------------------------------------------------------

struct FigThreeCounts
{
    std::uint64_t second_phase_writes;
    std::uint64_t total_writes;
};

FigThreeCounts
runFigThree(PolicyKind kind)
{
    auto h = tinyHierarchy(kind);
    const std::uint64_t A = 1, B = 2, C = 3, D = 4;

    // First lifetime: A,B read; C,D written.
    readBlock(*h, 0, A);
    readBlock(*h, 0, B);
    writeBlock(*h, 0, C);
    writeBlock(*h, 0, D);
    h->flushPrivate(0); // first eviction (Fig 3a)

    // All four hit in the LLC and are brought back (Fig 3b).
    readBlock(*h, 0, A);
    readBlock(*h, 0, B);
    readBlock(*h, 0, C);
    readBlock(*h, 0, D);
    writeBlock(*h, 0, B);
    writeBlock(*h, 0, D);

    const std::uint64_t before = h->stats().llcWritesTotal();
    h->flushPrivate(0); // second eviction (Fig 3c)
    return {h->stats().llcWritesTotal() - before,
            h->stats().llcWritesTotal()};
}

TEST(FigThree, ExclusiveNeedsTwoRedundantCleanInsertions)
{
    const auto noni = runFigThree(PolicyKind::NonInclusive);
    const auto ex = runFigThree(PolicyKind::Exclusive);
    // Second eviction: noni writes dirty B and D only; exclusion
    // additionally re-inserts clean A and C.
    EXPECT_EQ(noni.second_phase_writes, 2u);
    EXPECT_EQ(ex.second_phase_writes, 4u);
}

TEST(FigThree, LapMatchesNonInclusionOnSecondEviction)
{
    const auto lap = runFigThree(PolicyKind::Lap);
    EXPECT_EQ(lap.second_phase_writes, 2u);
}

TEST(FigThree, LapTotalWritesLowest)
{
    // Over the whole Fig 3 sequence: noni pays 4 data-fills + 2 + 2
    // dirty updates = 8; exclusion pays 4 + 4 victim inserts = 8;
    // LAP pays 4 victim inserts + 2 dirty updates = 6.
    const auto noni = runFigThree(PolicyKind::NonInclusive);
    const auto ex = runFigThree(PolicyKind::Exclusive);
    const auto lap = runFigThree(PolicyKind::Lap);
    EXPECT_EQ(noni.total_writes, 8u);
    EXPECT_EQ(ex.total_writes, 8u);
    EXPECT_EQ(lap.total_writes, 6u);
}

// ---------------------------------------------------------------------
// Paper Fig 5: blocks A,B,C are fetched; B and C are written during
// their first L2 lifetime. Under non-inclusion the fills of B and C
// were useless (overwritten before any reuse): two redundant writes
// relative to exclusion.
// ---------------------------------------------------------------------

TEST(FigFive, NonInclusionSuffersRedundantDataFills)
{
    auto h = tinyHierarchy(PolicyKind::NonInclusive);
    const std::uint64_t A = 1, B = 2, C = 3;
    readBlock(*h, 0, A);
    readBlock(*h, 0, B);
    readBlock(*h, 0, C);
    EXPECT_EQ(h->stats().llcDemandFills, 3u);

    writeBlock(*h, 0, B);
    writeBlock(*h, 0, C);
    h->flushPrivate(0);

    EXPECT_EQ(h->stats().llcRedundantFills, 2u);
    // A's fill was useful: it let the clean victim be dropped.
    EXPECT_EQ(h->stats().llcCleanVictimsDropped, 1u);
    // noni total writes: 3 fills + 2 dirty updates = 5.
    EXPECT_EQ(h->stats().llcWritesTotal(), 5u);
}

TEST(FigFive, ExclusionAvoidsRedundantFills)
{
    auto h = tinyHierarchy(PolicyKind::Exclusive);
    readBlock(*h, 0, 1);
    readBlock(*h, 0, 2);
    readBlock(*h, 0, 3);
    writeBlock(*h, 0, 2);
    writeBlock(*h, 0, 3);
    h->flushPrivate(0);
    EXPECT_EQ(h->stats().llcDemandFills, 0u);
    EXPECT_EQ(h->stats().llcRedundantFills, 0u);
    // ex total writes: 1 clean + 2 dirty victims = 3 (paper: two
    // fewer than non-inclusion).
    EXPECT_EQ(h->stats().llcWritesTotal(), 3u);
}

TEST(FigFive, DeadFillsCountedOnUntouchedEviction)
{
    auto h = tinyHierarchy(PolicyKind::NonInclusive);
    // Fill LLC set 0 beyond capacity with blocks never reused.
    for (std::uint64_t i = 0; i < 6; ++i)
        readBlock(*h, 0, i * 32);
    EXPECT_GE(h->stats().llcDeadFills, 1u);
}

TEST(Flows, WriteClassificationIsExhaustive)
{
    for (auto kind :
         {PolicyKind::NonInclusive, PolicyKind::Exclusive,
          PolicyKind::Lap}) {
        auto h = tinyHierarchy(kind);
        Rng rng(42);
        for (int i = 0; i < 4000; ++i) {
            const std::uint64_t blk = rng.below(256);
            if (rng.chance(0.3))
                writeBlock(*h, 0, blk);
            else
                readBlock(*h, 0, blk);
        }
        // Every LLC data write is classified into exactly one class.
        const auto &hs = h->stats();
        const auto &ls = h->llc().stats();
        EXPECT_EQ(hs.llcWritesTotal(),
                  ls.dataWrites[0] + ls.dataWrites[1])
            << toString(kind);
    }
}

TEST(Flows, ServiceLatenciesAreOrdered)
{
    auto h = tinyHierarchy(PolicyKind::NonInclusive);
    const auto memory = readBlock(*h, 0, 1, 1000);
    const auto l1 = readBlock(*h, 0, 1, 2000);
    h->flushPrivate(0);
    readBlock(*h, 0, 700); // unrelated
    const auto llc = readBlock(*h, 0, 1, 3000);
    EXPECT_GT(memory.doneAt - 1000, llc.doneAt - 3000);
    EXPECT_GT(llc.doneAt - 3000, l1.doneAt - 2000);
    EXPECT_EQ(l1.doneAt - 2000, 2u);
}

TEST(Flows, SttWritesOccupyBanksAndDelayReads)
{
    auto h = tinyHierarchy(PolicyKind::Exclusive);
    // Load two blocks in the same LLC bank (same set), flush so the
    // victim writes reserve the bank at cycle 0.
    readBlock(*h, 0, 0, 0);
    readBlock(*h, 0, 32, 0);
    h->flushPrivate(0, 0); // two 33-cycle writes to bank 0
    // A demand LLC read to the same bank right after must queue.
    const auto hit = readBlock(*h, 0, 0, 0);
    // Base arrival at LLC = 2 (L1) + 4 (L2) = 6; writes hold the
    // bank until 66; read starts at 66 and takes 8.
    EXPECT_EQ(hit.doneAt, 74u);
}

} // namespace
} // namespace lap
