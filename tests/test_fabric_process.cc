/**
 * @file
 * Process-level fabric battery: a real lapsim-serve daemon and real
 * lapsim-worker subprocesses on loopback, driven by the in-process
 * fabric client and compared against serial golden runs.
 *
 * The acceptance property of the whole subsystem is proved here:
 * an N-worker multi-process campaign produces a JSONL stream
 * row-for-row bit-identical (minus wall-clock fields) to a serial
 * `lapsim-campaign` run — including when a worker is SIGKILLed
 * mid-job and a replacement resumes from its uploaded snapshot, and
 * when the daemon itself is restarted with jobs in flight and the
 * client resubmits with resume. Also covers the `--shard K/N` CLI
 * partition and SIGINT graceful shutdown (exit code 3) of the
 * lapsim-campaign binary.
 *
 * Carries the "fabric" ctest label (multi-second wall times; not
 * part of tier1).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <map>
#include <poll.h>
#include <set>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "campaign/engine.hh"
#include "campaign/jsonl.hh"
#include "common/logging.hh"
#include "fabric/client.hh"

using namespace lap;

namespace
{

/** One spawned subprocess with captured stdout+stderr. */
class Child
{
  public:
    Child() = default;
    ~Child() { killHard(); }
    Child(const Child &) = delete;
    Child &operator=(const Child &) = delete;

    void
    spawn(const std::vector<std::string> &argv)
    {
        int fds[2];
        ASSERT_EQ(::pipe(fds), 0);
        pid_ = ::fork();
        ASSERT_GE(pid_, 0);
        if (pid_ == 0) {
            ::dup2(fds[1], 1);
            ::dup2(fds[1], 2);
            ::close(fds[0]);
            ::close(fds[1]);
            std::vector<char *> cargv;
            cargv.reserve(argv.size() + 1);
            for (const std::string &arg : argv)
                cargv.push_back(const_cast<char *>(arg.c_str()));
            cargv.push_back(nullptr);
            ::execv(cargv[0], cargv.data());
            ::_exit(127);
        }
        ::close(fds[1]);
        out_fd_ = fds[0];
    }

    bool alive() const { return pid_ > 0; }
    pid_t pid() const { return pid_; }

    /**
     * Reads captured output until it contains @p needle or
     * @p timeout_ms elapses. Returns true on a hit.
     */
    bool
    waitForOutput(const std::string &needle, int timeout_ms)
    {
        const auto deadline = std::chrono::steady_clock::now()
            + std::chrono::milliseconds(timeout_ms);
        while (captured_.find(needle) == std::string::npos) {
            const auto now = std::chrono::steady_clock::now();
            if (now >= deadline)
                return false;
            pollfd pfd{};
            pfd.fd = out_fd_;
            pfd.events = POLLIN;
            const int left = static_cast<int>(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - now)
                    .count());
            const int ready = ::poll(&pfd, 1, left > 50 ? 50 : left);
            if (ready > 0 && !drainOnce())
                return captured_.find(needle) != std::string::npos;
        }
        return true;
    }

    void
    signal(int sig)
    {
        if (pid_ > 0)
            ::kill(pid_, sig);
    }

    /** Blocks until exit; returns the exit code (-1 on signal). */
    int
    waitExit()
    {
        if (pid_ <= 0)
            return -1;
        int status = 0;
        ::waitpid(pid_, &status, 0);
        pid_ = -1;
        while (drainOnce()) {
        }
        if (out_fd_ >= 0) {
            ::close(out_fd_);
            out_fd_ = -1;
        }
        return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }

    void
    killHard()
    {
        if (pid_ > 0) {
            ::kill(pid_, SIGKILL);
            waitExit();
        } else if (out_fd_ >= 0) {
            ::close(out_fd_);
            out_fd_ = -1;
        }
    }

    const std::string &captured() const { return captured_; }

  private:
    /** Non-blocking-ish single read; false on EOF. */
    bool
    drainOnce()
    {
        if (out_fd_ < 0)
            return false;
        pollfd pfd{};
        pfd.fd = out_fd_;
        pfd.events = POLLIN;
        if (::poll(&pfd, 1, 0) <= 0)
            return true; // nothing buffered right now
        char chunk[4096];
        const ssize_t n = ::read(out_fd_, chunk, sizeof(chunk));
        if (n <= 0)
            return false;
        captured_.append(chunk, static_cast<std::size_t>(n));
        return true;
    }

    pid_t pid_ = -1;
    int out_fd_ = -1;
    std::string captured_;
};

/** Unique temp path, removed (with checkpoint siblings) on exit. */
class TempOut
{
  public:
    explicit TempOut(const std::string &tag)
        : path_("/tmp/lapsim_fabric_" + tag + "_"
                + std::to_string(::getpid()) + ".jsonl")
    {
        std::remove(path_.c_str());
    }
    ~TempOut()
    {
        std::remove(path_.c_str());
        // Best-effort sweep of checkpoint siblings.
        const std::string cmd =
            "rm -f " + path_ + ".*.ckpt 2>/dev/null";
        [[maybe_unused]] const int rc = std::system(cmd.c_str());
    }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** The fast differential grid: 16 jobs, ~12 ms each. */
const char *kFastSpec = "name fabproc\n"
                        "seed 7\n"
                        "set warmup 1000\n"
                        "set refs 6000\n"
                        "policies noni,ex,dswitch,lap\n"
                        "mix WL1,WL2,WH1,WH2\n";

/** The slow grid: 4 jobs of ~1.5-2 s, for mid-job interruptions. */
const char *kSlowSpec = "name fabslow\n"
                        "seed 11\n"
                        "set warmup 10000\n"
                        "set refs 1000000\n"
                        "policies noni,lap\n"
                        "mix WL1,WH1\n";

/** Rows of a JSONL file with wall-clock fields dropped. */
std::vector<JsonRow>
rowsWithoutWallClock(const std::string &path)
{
    std::vector<JsonRow> rows = loadJsonl(path);
    for (JsonRow &row : rows)
        row.erase("wallMs");
    return rows;
}

/** Result rows keyed by job hash (order-insensitive comparisons). */
std::map<std::string, JsonRow>
resultRowsByHash(const std::string &path)
{
    std::map<std::string, JsonRow> by_hash;
    for (JsonRow &row : rowsWithoutWallClock(path)) {
        if (rowValue(row, "type") != "result")
            continue;
        by_hash[rowValue(row, "hash")] = std::move(row);
    }
    return by_hash;
}

/** Serial golden: in-process engine, one worker, grid order. */
void
writeSerialGolden(const char *spec_text, const std::string &out)
{
    EngineOptions options;
    options.jobs = 1;
    options.outPath = out;
    const CampaignResult result =
        runCampaign(parseCampaignSpec(spec_text), options);
    ASSERT_EQ(result.failed(), 0u);
}

/** Daemon + N workers on an ephemeral loopback port. */
class Fabric
{
  public:
    void
    start(std::size_t workers, const std::string &tag,
          double heartbeat_ms = 250.0,
          double heartbeat_timeout_ms = 15'000.0)
    {
        heartbeatMs_ = heartbeat_ms;
        tag_ = tag;
        startDaemon(0, heartbeat_timeout_ms);
        for (std::size_t i = 0; i < workers; ++i)
            addWorker();
    }

    void
    startDaemon(std::uint16_t port, double heartbeat_timeout_ms)
    {
        daemon_ = std::make_unique<Child>();
        daemon_->spawn({LAPSIM_SERVE_BIN, "--listen",
                        "127.0.0.1:" + std::to_string(port),
                        "--heartbeat-timeout",
                        std::to_string(heartbeat_timeout_ms)});
        ASSERT_TRUE(daemon_->waitForOutput("listening on", 10'000))
            << daemon_->captured();
        const std::string &text = daemon_->captured();
        const std::size_t colon = text.rfind(':');
        ASSERT_NE(colon, std::string::npos);
        port_ = static_cast<std::uint16_t>(
            std::strtoul(text.c_str() + colon + 1, nullptr, 10));
        ASSERT_GT(port_, 0);
    }

    Child &
    addWorker()
    {
        workers_.push_back(std::make_unique<Child>());
        Child &worker = *workers_.back();
        worker.spawn({LAPSIM_WORKER_BIN, "--connect",
                      "127.0.0.1:" + std::to_string(port_), "--name",
                      tag_ + "-w" + std::to_string(workers_.size()),
                      "--scratch", "/tmp", "--heartbeat-ms",
                      std::to_string(heartbeatMs_)});
        return worker;
    }

    std::uint16_t port() const { return port_; }
    Child &daemon() { return *daemon_; }
    Child &worker(std::size_t i) { return *workers_[i]; }

    /** SIGTERMs the daemon and returns its final stats line. */
    std::string
    stopDaemon()
    {
        daemon_->signal(SIGTERM);
        const int code = daemon_->waitExit();
        EXPECT_EQ(code, 0) << daemon_->captured();
        const std::string text = daemon_->captured();
        const std::size_t at = text.find("lapsim-serve stopping");
        return at == std::string::npos ? "" : text.substr(at);
    }

    void
    stopAll()
    {
        if (daemon_ && daemon_->alive())
            daemon_->signal(SIGTERM);
        for (auto &worker : workers_)
            worker->killHard();
        workers_.clear();
        if (daemon_) {
            daemon_->waitExit();
            daemon_.reset();
        }
    }

  private:
    std::unique_ptr<Child> daemon_;
    std::vector<std::unique_ptr<Child>> workers_;
    std::uint16_t port_ = 0;
    double heartbeatMs_ = 250.0;
    std::string tag_;
};

fabric::ClientRunResult
runClient(std::uint16_t port, const std::string &out,
          const char *spec_text, bool resume = false,
          std::uint64_t checkpoint_every = 0)
{
    fabric::ClientOptions options;
    options.port = port;
    options.outPath = out;
    options.resume = resume;
    options.checkpointEvery = checkpoint_every;
    return fabric::submitCampaign(options, spec_text);
}

} // namespace

// ----------------------------------------------------------------
// Differential: N workers vs serial golden, bit-identical streams
// ----------------------------------------------------------------

TEST(FabricProcess, TwoWorkersMatchSerialRowForRow)
{
    TempOut golden("golden2"), fabric_out("fabric2");
    writeSerialGolden(kFastSpec, golden.path());

    Fabric fab;
    fab.start(2, "two");
    const auto run =
        runClient(fab.port(), fabric_out.path(), kFastSpec);
    EXPECT_EQ(run.ok, 16u);
    EXPECT_EQ(run.failed, 0u);
    fab.stopAll();

    const auto want = rowsWithoutWallClock(golden.path());
    const auto got = rowsWithoutWallClock(fabric_out.path());
    ASSERT_EQ(want.size(), 16u);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
        EXPECT_EQ(got[i], want[i]) << "row " << i;
}

TEST(FabricProcess, FourWorkersMatchSerialRowForRow)
{
    TempOut golden("golden4"), fabric_out("fabric4");
    writeSerialGolden(kFastSpec, golden.path());

    Fabric fab;
    fab.start(4, "four");
    const auto run =
        runClient(fab.port(), fabric_out.path(), kFastSpec);
    EXPECT_EQ(run.ok, 16u);
    fab.stopAll();

    const auto want = rowsWithoutWallClock(golden.path());
    const auto got = rowsWithoutWallClock(fabric_out.path());
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
        EXPECT_EQ(got[i], want[i]) << "row " << i;
}

// ----------------------------------------------------------------
// Daemon stop: workers receive the Shutdown frame and exit 0
// instead of burning through their reconnect window
// ----------------------------------------------------------------

TEST(FabricProcess, DaemonStopShutsWorkersDownCleanly)
{
    TempOut golden("goldenstop"), fabric_out("fabricstop");
    writeSerialGolden(kFastSpec, golden.path());

    Fabric fab;
    fab.start(2, "stop");
    const auto run =
        runClient(fab.port(), fabric_out.path(), kFastSpec);
    EXPECT_EQ(run.ok, 16u);

    fab.stopDaemon();
    for (std::size_t i = 0; i < 2; ++i) {
        ASSERT_TRUE(fab.worker(i).waitForOutput(
            "daemon shutdown; exiting", 5'000))
            << fab.worker(i).captured();
        EXPECT_EQ(fab.worker(i).waitExit(), 0)
            << fab.worker(i).captured();
    }
    fab.stopAll();

    const auto want = rowsWithoutWallClock(golden.path());
    const auto got = rowsWithoutWallClock(fabric_out.path());
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
        EXPECT_EQ(got[i], want[i]) << "row " << i;
}

// ----------------------------------------------------------------
// Kill-resume: SIGKILL a worker mid-job; a replacement resumes and
// the stream is still bit-identical
// ----------------------------------------------------------------

TEST(FabricProcess, WorkerKilledMidJobIsRescheduledBitIdentically)
{
    TempOut golden("goldenkill"), fabric_out("fabrickill");
    writeSerialGolden(kSlowSpec, golden.path());

    Fabric fab;
    // Tight heartbeats so snapshots reach the daemon quickly; the
    // kill is detected by connection loss, not the reap timeout.
    fab.start(4, "kill", /*heartbeat_ms=*/100.0);

    fabric::ClientRunResult run;
    std::string client_error;
    std::thread client([&] {
        try {
            const ScopedFatalThrow guard;
            // Frequent snapshots: every 100k of the 1.01M per-core
            // refs, so the victim has uploaded several by kill time.
            run = runClient(fab.port(), fabric_out.path(), kSlowSpec,
                            /*resume=*/false,
                            /*checkpoint_every=*/100'000);
        } catch (const FatalError &err) {
            client_error = err.what();
        }
    });

    // Every worker is busy within milliseconds of the submission
    // (4 jobs, 4 workers) and each job runs for well over a second;
    // a kill at ~1 s is mid-job by a wide margin on both sides.
    std::this_thread::sleep_for(std::chrono::milliseconds(1'000));
    fab.worker(0).signal(SIGKILL);
    fab.worker(0).waitExit();
    fab.addWorker();

    client.join();
    EXPECT_EQ(client_error, "");
    EXPECT_EQ(run.ok, 4u);
    EXPECT_EQ(run.failed, 0u);

    // The daemon saw the death: its final stats line reports the
    // reassignment (and the snapshot handoff when one was uploaded
    // in time).
    const std::string stats = fab.stopDaemon();
    EXPECT_EQ(stats.find("0 reassigned"), std::string::npos)
        << stats;
    fab.stopAll();

    const auto want = rowsWithoutWallClock(golden.path());
    const auto got = rowsWithoutWallClock(fabric_out.path());
    ASSERT_EQ(want.size(), 4u);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
        EXPECT_EQ(got[i], want[i]) << "row " << i;
}

// ----------------------------------------------------------------
// Daemon restart: in-flight jobs are lost with the daemon's state,
// but a resumed submit against a fresh daemon completes the grid
// without re-running what the client already holds
// ----------------------------------------------------------------

TEST(FabricProcess, DaemonRestartResumesInFlightCampaign)
{
    TempOut golden("goldenrestart"), fabric_out("fabricrestart");
    writeSerialGolden(kSlowSpec, golden.path());

    Fabric fab;
    fab.start(2, "restart", /*heartbeat_ms=*/100.0);
    const std::uint16_t port = fab.port();

    std::string first_error;
    std::thread client([&] {
        try {
            const ScopedFatalThrow guard;
            runClient(port, fabric_out.path(), kSlowSpec);
            ADD_FAILURE() << "first submit should have died with "
                             "the daemon";
        } catch (const FatalError &err) {
            first_error = err.what();
        }
    });

    // Two ~1.5 s jobs are in flight (and two queued) when the
    // daemon is torn down.
    std::this_thread::sleep_for(std::chrono::milliseconds(1'200));
    fab.daemon().signal(SIGTERM);
    client.join();
    EXPECT_NE(first_error.find("--resume"), std::string::npos)
        << first_error;
    fab.daemon().waitExit();

    // Same port, fresh daemon; the orphaned workers reconnect on
    // their own (200 ms backoff loop).
    fab.startDaemon(port, 15'000.0);

    fabric::ClientRunResult second;
    std::string second_error;
    try {
        const ScopedFatalThrow guard;
        second = runClient(port, fabric_out.path(), kSlowSpec,
                           /*resume=*/true);
    } catch (const FatalError &err) {
        second_error = err.what();
    }
    EXPECT_EQ(second_error, "");
    // Whatever completed before the restart was skipped, the rest
    // re-ran; together they cover the grid.
    EXPECT_EQ(second.ok + second.skipped, 4u);
    EXPECT_EQ(second.failed, 0u);
    fab.stopAll();

    // Row order across the two sessions is not contiguous (the
    // resumed session appends), so compare result rows by hash.
    const auto want = resultRowsByHash(golden.path());
    const auto got = resultRowsByHash(fabric_out.path());
    ASSERT_EQ(want.size(), 4u);
    EXPECT_EQ(got, want);
}

// ----------------------------------------------------------------
// lapsim-campaign --shard K/N: deterministic disjoint partition
// ----------------------------------------------------------------

TEST(FabricProcess, ShardedCliRunsUnionToTheFullGrid)
{
    TempOut golden("goldenshard");
    writeSerialGolden(kFastSpec, golden.path());

    const std::string spec_path =
        "/tmp/lapsim_fabric_shard_spec_" + std::to_string(::getpid())
        + ".campaign";
    {
        std::ofstream spec(spec_path, std::ios::trunc);
        spec << kFastSpec;
    }
    TempOut shard0("shard0"), shard1("shard1");

    for (int k = 0; k < 2; ++k) {
        Child run;
        run.spawn({LAPSIM_CAMPAIGN_BIN, "--spec", spec_path,
                   "--shard", std::to_string(k) + "/2", "--jobs",
                   "2", "--out",
                   k == 0 ? shard0.path() : shard1.path()});
        EXPECT_EQ(run.waitExit(), 0) << run.captured();
    }
    std::remove(spec_path.c_str());

    const auto want = resultRowsByHash(golden.path());
    auto got0 = resultRowsByHash(shard0.path());
    const auto got1 = resultRowsByHash(shard1.path());
    ASSERT_EQ(want.size(), 16u);
    EXPECT_FALSE(got0.empty());
    EXPECT_FALSE(got1.empty());
    // Disjoint...
    for (const auto &entry : got1) {
        EXPECT_EQ(got0.count(entry.first), 0u) << entry.first;
        got0[entry.first] = entry.second;
    }
    // ...and the union is exactly the serial grid, metrics included.
    EXPECT_EQ(got0, want);
}

TEST(FabricProcess, ShardFlagRejectsBadValues)
{
    const std::string spec_path =
        "/tmp/lapsim_fabric_badshard_spec_"
        + std::to_string(::getpid()) + ".campaign";
    {
        std::ofstream spec(spec_path, std::ios::trunc);
        spec << kFastSpec;
    }
    for (const char *bad : {"2/2", "3/2", "x/2", "1", "1/0"}) {
        Child run;
        run.spawn({LAPSIM_CAMPAIGN_BIN, "--spec", spec_path,
                   "--shard", bad});
        EXPECT_NE(run.waitExit(), 0) << bad;
    }
    std::remove(spec_path.c_str());
}

// ----------------------------------------------------------------
// SIGINT graceful shutdown: distinct exit code, flushed sink,
// resumable remainder
// ----------------------------------------------------------------

TEST(FabricProcess, SigintStopsGracefullyWithExitCode3)
{
    TempOut golden("goldensigint"), out("sigint");
    writeSerialGolden(kSlowSpec, golden.path());

    const std::string spec_path =
        "/tmp/lapsim_fabric_sigint_spec_"
        + std::to_string(::getpid()) + ".campaign";
    {
        std::ofstream spec(spec_path, std::ios::trunc);
        spec << kSlowSpec;
    }

    Child run;
    run.spawn({LAPSIM_CAMPAIGN_BIN, "--spec", spec_path, "--jobs",
               "1", "--out", out.path()});
    // Let the first of the four slow jobs land, then interrupt:
    // the engine finishes the running job, skips the rest, and the
    // binary reports the distinct graceful-shutdown exit code.
    ASSERT_TRUE(run.waitForOutput("[  1/  4]", 60'000))
        << run.captured();
    run.signal(SIGINT);
    EXPECT_EQ(run.waitExit(), 3) << run.captured();
    EXPECT_NE(run.captured().find("interrupted:"),
              std::string::npos)
        << run.captured();

    // The flushed sink holds complete rows only — never a torn line.
    JsonlReadStats stats;
    const auto partial = loadJsonl(out.path(), stats);
    EXPECT_FALSE(stats.tornTail);
    EXPECT_EQ(stats.malformed, 0u);
    const auto partial_results = resultRowsByHash(out.path());
    EXPECT_GE(partial_results.size(), 1u);
    EXPECT_LT(partial_results.size(), 4u);

    // --resume completes the remainder; the union matches serial.
    Child resume;
    resume.spawn({LAPSIM_CAMPAIGN_BIN, "--spec", spec_path,
                  "--jobs", "1", "--out", out.path(), "--resume"});
    EXPECT_EQ(resume.waitExit(), 0) << resume.captured();
    std::remove(spec_path.c_str());

    EXPECT_EQ(resultRowsByHash(out.path()),
              resultRowsByHash(golden.path()));
}
