/**
 * @file
 * Unit tests for src/common: RNG, bit utilities, histogram, table
 * formatting, and string formatting.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/bitutil.hh"
#include "common/histogram.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/table.hh"

namespace lap
{
namespace
{

TEST(Rng, DeterministicForSeed)
{
    Rng a(12345);
    Rng b(12345);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            equal++;
    }
    EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng a(7);
    const std::uint64_t first = a.next();
    a.next();
    a.reseed(7);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng rng(99);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000003ULL}) {
        for (int i = 0; i < 2000; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowOneAlwaysZero)
{
    Rng rng(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(42);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(3);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceEdgeCases)
{
    Rng rng(8);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_FALSE(rng.chance(-1.0));
        EXPECT_TRUE(rng.chance(1.0));
        EXPECT_TRUE(rng.chance(2.0));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng rng(21);
    int hits = 0;
    for (int i = 0; i < 20000; ++i) {
        if (rng.chance(0.3))
            hits++;
    }
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(BitUtil, IsPowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ULL << 40));
    EXPECT_FALSE(isPowerOfTwo((1ULL << 40) + 1));
}

TEST(BitUtil, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(floorLog2(1ULL << 63), 63u);
}

TEST(BitUtil, DivCeil)
{
    EXPECT_EQ(divCeil(0, 4), 0u);
    EXPECT_EQ(divCeil(1, 4), 1u);
    EXPECT_EQ(divCeil(4, 4), 1u);
    EXPECT_EQ(divCeil(5, 4), 2u);
}

TEST(Histogram, BucketBoundaries)
{
    // Buckets: <=1, <=4, overflow — the paper's CTC buckets.
    Histogram h({1, 4});
    h.add(1);
    h.add(2);
    h.add(4);
    h.add(5);
    h.add(100);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.count(2), 2u);
    EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, WeightedSamplesAndFractions)
{
    Histogram h({10});
    h.add(5, 3);
    h.add(50, 1);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.75);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.25);
}

TEST(Histogram, EmptyFractionIsZero)
{
    Histogram h({1});
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
}

TEST(Histogram, Reset)
{
    Histogram h({1});
    h.add(0);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.count(0), 0u);
}

TEST(Table, AlignsColumns)
{
    Table t({"a", "bb"});
    t.addRow({"xxx", "y"});
    const std::string out = t.toString();
    EXPECT_NE(out.find("a    bb"), std::string::npos);
    EXPECT_NE(out.find("xxx  y"), std::string::npos);
}

TEST(Table, ShortRowsArePadded)
{
    Table t({"a", "b", "c"});
    t.addRow({"1"});
    EXPECT_NO_THROW(t.toString());
    EXPECT_NE(t.toCsv().find("1,,"), std::string::npos);
}

TEST(Table, CsvSkipsSeparators)
{
    Table t({"h1", "h2"});
    t.addRow({"a", "b"});
    t.addSeparator();
    t.addRow({"c", "d"});
    EXPECT_EQ(t.toCsv(), "h1,h2\na,b\nc,d\n");
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::num(1.0, 0), "1");
    EXPECT_EQ(Table::percent(0.123, 1), "12.3%");
}

TEST(Logging, Csprintf)
{
    EXPECT_EQ(csprintf("x=%d y=%s", 3, "z"), "x=3 y=z");
    EXPECT_EQ(csprintf("plain"), "plain");
}

TEST(Logging, AssertFiresOnViolation)
{
    EXPECT_DEATH(lap_assert(1 == 2, "boom %d", 42), "assertion failed");
}

} // namespace
} // namespace lap
