/**
 * @file
 * Unit tests for the inclusion policies: the Fig 8 decision table,
 * the switching baselines' adaptation, and the LAP variants.
 */

#include <gtest/gtest.h>

#include "core/policy_factory.hh"
#include "hierarchy/lap_policy.hh"
#include "hierarchy/baseline_policies.hh"
#include "hierarchy/switching_policies.hh"

namespace lap
{
namespace
{

constexpr std::uint64_t kSets = 128;

TEST(Baselines, InclusiveDecisions)
{
    InclusionEngine p{InclusivePolicy{}};
    EXPECT_TRUE(p.fillLlcOnMiss(0));
    EXPECT_FALSE(p.invalidateOnLlcHit(0));
    EXPECT_FALSE(p.insertCleanVictim(0));
    EXPECT_TRUE(p.backInvalidate());
    EXPECT_FALSE(p.loopAwareVictim(0));
}

TEST(Baselines, NonInclusiveDecisions)
{
    // Fig 8: noni — invalidate N, fill Y, clean writeback N.
    InclusionEngine p{NonInclusivePolicy{}};
    EXPECT_TRUE(p.fillLlcOnMiss(0));
    EXPECT_FALSE(p.invalidateOnLlcHit(0));
    EXPECT_FALSE(p.insertCleanVictim(0));
    EXPECT_FALSE(p.backInvalidate());
}

TEST(Baselines, ExclusiveDecisions)
{
    // Fig 8: ex — invalidate Y, fill N, clean writeback Y.
    InclusionEngine p{ExclusivePolicy{}};
    EXPECT_FALSE(p.fillLlcOnMiss(0));
    EXPECT_TRUE(p.invalidateOnLlcHit(0));
    EXPECT_TRUE(p.insertCleanVictim(0));
    EXPECT_FALSE(p.backInvalidate());
}

TEST(Lap, Decisions)
{
    // Fig 8: LAP — invalidate N, fill N, clean writeback if absent.
    InclusionEngine p{LapPolicy(kSets, 1000)};
    EXPECT_FALSE(p.fillLlcOnMiss(0));
    EXPECT_FALSE(p.invalidateOnLlcHit(0));
    EXPECT_TRUE(p.insertCleanVictim(0));
    EXPECT_FALSE(p.backInvalidate());
}

TEST(Lap, VariantNames)
{
    EXPECT_EQ(LapPolicy(kSets, 1000, LapVariant::Lru).name(), "LAP-LRU");
    EXPECT_EQ(LapPolicy(kSets, 1000, LapVariant::Loop).name(),
              "LAP-Loop");
    EXPECT_EQ(LapPolicy(kSets, 1000, LapVariant::Dueling).name(), "LAP");
}

TEST(Lap, LruVariantNeverLoopAware)
{
    LapPolicy p(kSets, 1000, LapVariant::Lru);
    for (std::uint64_t s = 0; s < kSets; ++s)
        EXPECT_FALSE(p.loopAwareVictim(s));
}

TEST(Lap, LoopVariantAlwaysLoopAware)
{
    LapPolicy p(kSets, 1000, LapVariant::Loop);
    for (std::uint64_t s = 0; s < kSets; ++s)
        EXPECT_TRUE(p.loopAwareVictim(s));
}

TEST(Lap, DuelingLeadersFixedFollowersSwing)
{
    LapPolicy p(kSets, 1000, LapVariant::Dueling, 64);
    // Set 0 = loop-aware leader, set 1 = LRU leader.
    EXPECT_TRUE(p.loopAwareVictim(0));
    EXPECT_FALSE(p.loopAwareVictim(1));
    EXPECT_TRUE(p.loopAwareVictim(2)); // follower, initial winner A

    // Loop-aware leaders (team A) suffer more misses -> follow LRU.
    for (int i = 0; i < 10; ++i)
        p.noteLlcMiss(0);
    p.noteLlcMiss(1);
    p.duel().evaluateNow();
    EXPECT_TRUE(p.loopAwareVictim(0));  // leader stays
    EXPECT_FALSE(p.loopAwareVictim(1)); // leader stays
    EXPECT_FALSE(p.loopAwareVictim(2)); // follower switched to LRU
}

TEST(Lap, TickRotatesEpoch)
{
    LapPolicy p(kSets, 1000, LapVariant::Dueling, 64);
    for (int i = 0; i < 5; ++i)
        p.noteLlcMiss(0);
    p.tick(1000);
    EXPECT_EQ(p.duel().epochsElapsed(), 1u);
    EXPECT_FALSE(p.loopAwareVictim(2));
}

TEST(Flexclusion, LeaderModesAndFollowers)
{
    FlexclusionPolicy p(kSets, 1000, 0.05, 64);
    // Team A leaders run non-inclusion, team B leaders exclusion.
    EXPECT_TRUE(p.fillLlcOnMiss(0));
    EXPECT_FALSE(p.insertCleanVictim(0));
    EXPECT_FALSE(p.fillLlcOnMiss(1));
    EXPECT_TRUE(p.insertCleanVictim(1));
    EXPECT_TRUE(p.invalidateOnLlcHit(1));
    // Followers start non-inclusive.
    EXPECT_TRUE(p.fillLlcOnMiss(2));
}

TEST(Flexclusion, SwitchesToExclusionOnClearMissWin)
{
    FlexclusionPolicy p(kSets, 1000, 0.05, 64);
    for (int i = 0; i < 100; ++i)
        p.noteLlcMiss(0); // noni leaders miss a lot
    for (int i = 0; i < 50; ++i)
        p.noteLlcMiss(1); // ex leaders miss less
    p.duel().evaluateNow();
    EXPECT_FALSE(p.nonInclusiveAt(2));
}

TEST(Flexclusion, BandwidthGuardPrefersNonInclusion)
{
    FlexclusionPolicy p(kSets, 1000, 0.05, 64);
    for (int i = 0; i < 100; ++i)
        p.noteLlcMiss(0);
    for (int i = 0; i < 98; ++i)
        p.noteLlcMiss(1); // within the 5% margin
    p.duel().evaluateNow();
    EXPECT_TRUE(p.nonInclusiveAt(2));
}

TEST(Flexclusion, IgnoresWriteCosts)
{
    InclusionEngine e{FlexclusionPolicy(kSets, 1000, 0.05, 64)};
    // Writes don't influence FLEXclusion (the paper's criticism):
    // the engine drops the write notification on the floor.
    for (int i = 0; i < 1000; ++i)
        e.noteLlcWrite(1);
    FlexclusionPolicy &p = *e.tryAs<FlexclusionPolicy>();
    p.duel().evaluateNow();
    EXPECT_TRUE(p.nonInclusiveAt(2)); // ties keep non-inclusion
    EXPECT_DOUBLE_EQ(p.duel().costB(), 0.0);
}

TEST(Dswitch, WeighsWritesAndMisses)
{
    // write = 0.436 nJ, miss = 1.2 nJ.
    DswitchPolicy p(kSets, 1000, 0.436, 1.2, 64);
    // Exclusion side: 10 extra writes; non-inclusion: 4 extra misses.
    for (int i = 0; i < 10; ++i)
        p.noteLlcWrite(1);
    for (int i = 0; i < 4; ++i)
        p.noteLlcMiss(0);
    // costA = 4.8, costB = 4.36 -> exclusion (B) wins, barely.
    p.duel().evaluateNow();
    EXPECT_FALSE(p.nonInclusiveAt(2));

    // Make exclusion write-heavy: 20 writes vs 4 misses -> noni wins.
    for (int i = 0; i < 20; ++i)
        p.noteLlcWrite(1);
    for (int i = 0; i < 4; ++i)
        p.noteLlcMiss(0);
    p.duel().evaluateNow();
    EXPECT_TRUE(p.nonInclusiveAt(2));
}

TEST(Factory, BuildsEveryKind)
{
    for (PolicyKind kind : allPolicyKinds()) {
        InclusionEngine p = makeInclusionPolicy(kind, kSets);
        EXPECT_EQ(p.name(), toString(kind));
    }
}

TEST(Factory, ParsesNames)
{
    EXPECT_EQ(policyKindFromString("lap"), PolicyKind::Lap);
    EXPECT_EQ(policyKindFromString("LAP-LRU"), PolicyKind::LapLru);
    EXPECT_EQ(policyKindFromString("noni"), PolicyKind::NonInclusive);
    EXPECT_EQ(policyKindFromString("ex"), PolicyKind::Exclusive);
    EXPECT_EQ(policyKindFromString("FLEX"), PolicyKind::Flexclusion);
    EXPECT_EQ(policyKindFromString("dswitch"), PolicyKind::Dswitch);
    EXPECT_EQ(policyKindFromString("inclusive"), PolicyKind::Inclusive);
}

/** Decision-table coverage across all policies (Table IV). */
struct PolicyRow
{
    PolicyKind kind;
    bool fill;
    bool invalidate;
    bool clean_insert;
};

class DecisionTable : public ::testing::TestWithParam<PolicyRow>
{
};

TEST_P(DecisionTable, MatchesFigEight)
{
    const PolicyRow row = GetParam();
    InclusionEngine p = makeInclusionPolicy(row.kind, kSets);
    // Probe a follower set under initial conditions.
    const std::uint64_t set = 2;
    EXPECT_EQ(p.fillLlcOnMiss(set), row.fill) << toString(row.kind);
    EXPECT_EQ(p.invalidateOnLlcHit(set), row.invalidate);
    EXPECT_EQ(p.insertCleanVictim(set), row.clean_insert);
}

INSTANTIATE_TEST_SUITE_P(
    FigEight, DecisionTable,
    ::testing::Values(
        PolicyRow{PolicyKind::Inclusive, true, false, false},
        PolicyRow{PolicyKind::NonInclusive, true, false, false},
        PolicyRow{PolicyKind::Exclusive, false, true, true},
        // Switching policies start in non-inclusive mode.
        PolicyRow{PolicyKind::Flexclusion, true, false, false},
        PolicyRow{PolicyKind::Dswitch, true, false, false},
        PolicyRow{PolicyKind::LapLru, false, false, true},
        PolicyRow{PolicyKind::LapLoop, false, false, true},
        PolicyRow{PolicyKind::Lap, false, false, true}));

} // namespace
} // namespace lap
