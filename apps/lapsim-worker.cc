/**
 * @file
 * lapsim-worker — one fleet member of the campaign fabric.
 *
 * Connects to a lapsim-serve daemon, pulls grid points, runs them
 * through the standard campaign job path (with periodic checkpoints
 * uploaded over heartbeats, so a killed worker's job resumes
 * elsewhere mid-flight), and streams results back. Reconnects with
 * backoff if the daemon restarts. See DESIGN.md §12.
 *
 * Example:
 *   lapsim-worker --connect 127.0.0.1:7747 --name w0 --scratch /tmp
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "fabric/worker.hh"

using namespace lap;

namespace
{

const char *kHelp =
    "lapsim-worker — campaign fabric worker\n"
    "\n"
    "  --connect HOST:PORT     lapsim-serve address (required)\n"
    "  --name NAME             fleet name for diagnostics and\n"
    "                          scratch files (default 'worker')\n"
    "  --scratch DIR           directory for job snapshot files\n"
    "                          (default '.')\n"
    "  --heartbeat-ms MS       heartbeat/snapshot-upload cadence\n"
    "                          (default 1000)\n"
    "  --connect-attempts N    consecutive failed connects before\n"
    "                          giving up (default 50, 200ms apart)\n"
    "\n"
    "Exits 0 on a daemon-requested shutdown, 1 when the daemon\n"
    "stays unreachable.\n";

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    fabric::FabricWorker::Options options;
    bool have_addr = false;

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &flag = args[i];
        auto next = [&]() -> const std::string & {
            if (i + 1 >= args.size())
                lap_fatal("%s requires a value", flag.c_str());
            return args[++i];
        };
        if (flag == "--help" || flag == "-h") {
            std::printf("%s", kHelp);
            return 0;
        } else if (flag == "--connect") {
            fabric::splitHostPort(next(), options.host,
                                  options.port);
            have_addr = true;
        } else if (flag == "--name") {
            options.name = next();
        } else if (flag == "--scratch") {
            options.scratchDir = next();
        } else if (flag == "--heartbeat-ms") {
            options.heartbeatPeriodMs = std::atof(next().c_str());
            if (options.heartbeatPeriodMs <= 0)
                lap_fatal("--heartbeat-ms: expected a positive "
                          "millisecond count");
        } else if (flag == "--connect-attempts") {
            const auto parsed =
                std::strtoul(next().c_str(), nullptr, 10);
            if (parsed == 0)
                lap_fatal("--connect-attempts: expected a positive "
                          "number");
            options.connectAttempts =
                static_cast<std::uint32_t>(parsed);
        } else {
            lap_fatal("unknown flag '%s' (see --help)", flag.c_str());
        }
    }
    if (!have_addr)
        lap_fatal("--connect HOST:PORT is required (see --help)");

    fabric::FabricWorker worker(options);
    return worker.run();
}
