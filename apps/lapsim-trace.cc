/**
 * @file
 * lapsim-trace — LAPTR1 trace utility.
 *
 * Subcommands:
 *   gen <stressor>   generate a built-in stressor trace file
 *   record <mix>     capture a synthetic mix's reference streams
 *   convert <text>   convert a text trace (R/W addr [gap]) to binary
 *   dump <file>      validate and print header plus leading records
 *   verify <file>    validate a trace file and print its summary
 *
 * Examples:
 *   lapsim-trace gen gups --out gups.laptr --cores 4 --refs 200000
 *   lapsim-trace record WH1 --out wh1.laptr --refs 1100000
 *   lapsim-trace convert misses.trace --out misses.laptr --mlp 2
 *   lapsim-trace dump gups.laptr --records 8
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "cpu/file_trace.hh"
#include "trace/format.hh"
#include "trace/reader.hh"
#include "trace/stressors.hh"
#include "workloads/capture.hh"
#include "workloads/mixes.hh"

using namespace lap;

namespace
{

/** Options shared by every subcommand (unused ones are ignored). */
struct TraceCliOptions
{
    std::string input;   //!< Stressor/mix name, text file or trace.
    std::string outPath; //!< --out; required by producing commands.
    std::uint32_t cores = 4;
    std::uint64_t refs = 1100000; //!< Default warmup+measure budget.
    std::uint64_t seed = 0;
    double mlp = 1.0;           //!< convert: replay core's MLP.
    std::uint64_t records = 4;  //!< dump: records shown per core.
};

std::uint64_t
parseUint(const std::string &flag, const std::string &value)
{
    char *end = nullptr;
    const auto parsed = std::strtoull(value.c_str(), &end, 0);
    if (end == value.c_str() || *end != '\0')
        lap_fatal("%s: expected a number, got '%s'", flag.c_str(),
                  value.c_str());
    return parsed;
}

double
parseDouble(const std::string &flag, const std::string &value)
{
    char *end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0')
        lap_fatal("%s: expected a number, got '%s'", flag.c_str(),
                  value.c_str());
    return parsed;
}

TraceCliOptions
parseArgs(const std::vector<std::string> &args)
{
    TraceCliOptions opts;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &flag = args[i];
        auto next = [&]() -> const std::string & {
            if (i + 1 >= args.size())
                lap_fatal("%s requires a value", flag.c_str());
            return args[++i];
        };
        if (flag == "--out" || flag == "-o")
            opts.outPath = next();
        else if (flag == "--cores")
            opts.cores =
                static_cast<std::uint32_t>(parseUint(flag, next()));
        else if (flag == "--refs")
            opts.refs = parseUint(flag, next());
        else if (flag == "--seed")
            opts.seed = parseUint(flag, next());
        else if (flag == "--mlp")
            opts.mlp = parseDouble(flag, next());
        else if (flag == "--records")
            opts.records = parseUint(flag, next());
        else if (flag.rfind("--", 0) == 0)
            lap_fatal("unknown flag '%s' (see --help)", flag.c_str());
        else if (opts.input.empty())
            opts.input = flag;
        else
            lap_fatal("unexpected argument '%s'", flag.c_str());
    }
    if (opts.input.empty())
        lap_fatal("missing input operand (see --help)");
    return opts;
}

MixSpec
findMix(const std::string &name)
{
    for (const auto &mix : tableThreeMixes()) {
        if (mix.name == name)
            return mix;
    }
    for (const auto &mix : randomMixes(50, 4)) {
        if (mix.name == name)
            return mix;
    }
    lap_fatal("unknown mix '%s' (WL1..WH5, MIX1..MIX50)", name.c_str());
}

void
requireOut(const TraceCliOptions &opts)
{
    if (opts.outPath.empty())
        lap_fatal("this subcommand requires --out <file>");
}

/** Writes @p data and reports what landed on disk. */
void
writeAndReport(const TraceCliOptions &opts, const TraceData &data)
{
    writeTraceFile(opts.outPath, data);
    std::printf("wrote %s: %u cores, %llu records (%zu bytes)\n",
                opts.outPath.c_str(), data.coreCount(),
                static_cast<unsigned long long>(data.totalRecords()),
                encodeTrace(data).size());
}

int
cmdGen(const TraceCliOptions &opts)
{
    requireOut(opts);
    // Accept both "gups" and the campaign-spec form "stressor:gups".
    std::string name = opts.input;
    if (name.rfind("stressor:", 0) == 0)
        name = name.substr(9);
    const TraceData data =
        buildStressorTrace(name, opts.cores, opts.refs, opts.seed);
    writeAndReport(opts, data);
    return 0;
}

int
cmdRecord(const TraceCliOptions &opts)
{
    requireOut(opts);
    const MixSpec mix = findMix(opts.input);
    const TraceData data = captureMultiProgrammed(
        resolveMix(mix), opts.seed, opts.refs);
    writeAndReport(opts, data);
    return 0;
}

int
cmdConvert(const TraceCliOptions &opts)
{
    requireOut(opts);
    FileTrace text(opts.input);
    if (text.size() == 0)
        lap_fatal("%s holds no references", opts.input.c_str());
    TraceData data;
    data.coreMlp.assign(1, opts.mlp);
    data.cores.resize(1);
    data.cores[0].reserve(text.size());
    for (const MemRef &ref : text.refs())
        data.cores[0].push_back(packRecord(ref, 0));
    writeAndReport(opts, data);
    return 0;
}

void
printSummary(const TraceReader &reader)
{
    std::printf("%s: LAPTR1 v%u, %u cores, crc %08x\n",
                reader.describe().c_str(),
                static_cast<unsigned>(kTraceSchemaVersion),
                reader.coreCount(), reader.contentCrc());
    for (std::uint32_t c = 0; c < reader.coreCount(); ++c) {
        std::printf("  core %u: %llu records, mlp %.2f\n", c,
                    static_cast<unsigned long long>(
                        reader.recordCount(c)),
                    reader.coreMlp(c));
    }
}

int
cmdVerify(const TraceCliOptions &opts)
{
    // The constructor is the validator: it fatals with a specific
    // diagnostic on every structural, CRC or semantic problem.
    const TraceReader reader(opts.input);
    printSummary(reader);
    std::printf("ok\n");
    return 0;
}

int
cmdDump(const TraceCliOptions &opts)
{
    const TraceReader reader(opts.input);
    printSummary(reader);
    for (std::uint32_t c = 0; c < reader.coreCount(); ++c) {
        const std::uint64_t shown =
            std::min<std::uint64_t>(opts.records,
                                    reader.recordCount(c));
        for (std::uint64_t i = 0; i < shown; ++i) {
            const TraceRecord rec = reader.record(c, i);
            std::printf("  [%u:%llu] %c %#llx site=%u gap=%u\n", c,
                        static_cast<unsigned long long>(i),
                        rec.isStore ? 'W' : 'R',
                        static_cast<unsigned long long>(rec.addr),
                        rec.site, rec.gapInstrs);
        }
        if (shown < reader.recordCount(c))
            std::printf("  [%u] ... %llu more\n", c,
                        static_cast<unsigned long long>(
                            reader.recordCount(c) - shown));
    }
    return 0;
}

const char *kHelp =
    "lapsim-trace — LAPTR1 trace utility\n"
    "\n"
    "usage: lapsim-trace <subcommand> <input> [flags]\n"
    "\n"
    "subcommands:\n"
    "  gen <stressor>   write a built-in stressor trace (gups,\n"
    "                   stencil, stream_triad, pointer_chase,\n"
    "                   mixed_hot_scan)\n"
    "  record <mix>     capture a synthetic mix (WL1..WH5, MIXn)\n"
    "  convert <text>   convert a text trace (`R|W addr [gap]` per\n"
    "                   line) into a single-core binary trace\n"
    "  dump <file>      validate, then print header and records\n"
    "  verify <file>    validate a trace file and print its summary\n"
    "\n"
    "flags:\n"
    "  --out, -o F      output file (gen/record/convert)\n"
    "  --cores N        streams to generate (gen; default 4)\n"
    "  --refs N         records per core (gen/record; default\n"
    "                   1100000 = default warmup+measure budget)\n"
    "  --seed S         generator seed salt (gen/record; default 0)\n"
    "  --mlp F          replay core MLP to store (convert)\n"
    "  --records N      records shown per core (dump; default 4)\n";

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty() || args[0] == "--help" || args[0] == "-h") {
        std::fputs(kHelp, stdout);
        return args.empty() ? 1 : 0;
    }
    const std::string cmd = args[0];
    const TraceCliOptions opts =
        parseArgs({args.begin() + 1, args.end()});
    if (cmd == "gen")
        return cmdGen(opts);
    if (cmd == "record")
        return cmdRecord(opts);
    if (cmd == "convert")
        return cmdConvert(opts);
    if (cmd == "dump")
        return cmdDump(opts);
    if (cmd == "verify")
        return cmdVerify(opts);
    lap_fatal("unknown subcommand '%s' (see --help)", cmd.c_str());
}
