/**
 * @file
 * lapsim-campaign — parallel experiment sweeps with resumable
 * JSONL results.
 *
 * Examples:
 *   # 10 mixes x 5 policies on 8 workers, streaming results
 *   lapsim-campaign --mix WL1,WL2,WL3,WL4,WL5,WH1,WH2,WH3,WH4,WH5 \
 *       --policies noni,ex,flex,dswitch,lap \
 *       --jobs 8 --out results.jsonl
 *
 *   # pick up where an interrupted sweep left off
 *   lapsim-campaign --spec fig14.campaign --jobs 8 \
 *       --out results.jsonl --resume
 *
 *   # regenerate the figure table from the archived rows
 *   lapsim-campaign --aggregate results.jsonl \
 *       --rows workload --cols config.policy \
 *       --metric metrics.epi --normalize Non-inclusive
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "campaign/aggregate.hh"
#include "campaign/engine.hh"
#include "common/logging.hh"
#include "sim/config_fields.hh"
#include "sim/options.hh"

using namespace lap;

namespace
{

const char *kHelp =
    "lapsim-campaign — parallel experiment sweeps (resumable JSONL)\n"
    "\n"
    "campaign definition (combine freely; see DESIGN.md §7):\n"
    "  --spec FILE             load a campaign spec file\n"
    "  --name NAME             campaign name (job-hash namespace)\n"
    "  --seed N                campaign seed (mixed into job seeds)\n"
    "  --mix A[,B..]           add Table III / MIXn mix workloads\n"
    "  --duplicate A[,B..]     add duplicate-copies workloads\n"
    "  --benchmarks a,b,c,d    add one explicit per-core workload\n"
    "  --parsec A[,B..]        add PARSEC workloads (coherence on)\n"
    "  --policies p1,p2,..     inclusion-policy axis\n"
    "  --axis FIELD=V1,V2,..   sweep axis over a config field\n"
    "  --set FIELD=VALUE       base-config override\n"
    "\n"
    "execution:\n"
    "  --jobs N                worker threads (default 1)\n"
    "  --out PATH              stream results to a JSONL file\n"
    "  --resume                skip jobs already 'ok' in --out\n"
    "  --restore               also checkpoint each running job and\n"
    "                          restore interrupted jobs mid-flight\n"
    "                          (implies --resume; needs --out)\n"
    "  --checkpoint-every N    snapshot cadence for --restore, in\n"
    "                          references (default ~4 per job)\n"
    "  --list                  print the expanded grid and exit\n"
    "\n"
    "aggregation (reads JSONL, prints a table):\n"
    "  --aggregate PATH        aggregate a results file and exit\n"
    "  --rows FIELD            row key (default 'workload')\n"
    "  --cols FIELD            column key (default 'config.policy')\n"
    "  --metric FIELD          cell metric (default 'metrics.epi')\n"
    "  --normalize COL         normalize rows to this column value\n"
    "  --precision N           cell precision (default 3)\n"
    "  --phases N              reduce each label's epoch stream (from\n"
    "                          epoch-stats runs) into N time phases;\n"
    "                          cells are per-phase means of --metric\n"
    "                          (default metric then: 'llcMisses')\n"
    "\n"
    "config fields for --set/--axis:\n";

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        lap_fatal("cannot read spec file '%s'", path.c_str());
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

std::pair<std::string, std::string>
splitAssignment(const std::string &flag, const std::string &text)
{
    const auto eq = text.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= text.size())
        lap_fatal("%s: expected FIELD=VALUE, got '%s'", flag.c_str(),
                  text.c_str());
    return {text.substr(0, eq), text.substr(eq + 1)};
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);

    CampaignSpec spec;
    EngineOptions engine;
    AggregateSpec agg;
    std::string aggregate_path;
    int phases = 0;
    bool metric_set = false;
    bool rows_set = false;
    bool list_only = false;
    bool have_workloads = false;

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &flag = args[i];
        auto next = [&]() -> const std::string & {
            if (i + 1 >= args.size())
                lap_fatal("%s requires a value", flag.c_str());
            return args[++i];
        };

        if (flag == "--help" || flag == "-h") {
            std::printf("%s%s", kHelp, configFieldsHelp().c_str());
            return 0;
        } else if (flag == "--spec") {
            CampaignSpec parsed = parseCampaignSpec(readFile(next()));
            // Inline flags compose on top of the file.
            spec.name = parsed.name;
            spec.seed = parsed.seed;
            spec.base = parsed.base;
            for (auto &w : parsed.workloads)
                spec.workloads.push_back(std::move(w));
            for (auto p : parsed.policies)
                spec.policies.push_back(p);
            for (auto &a : parsed.axes)
                spec.axes.push_back(std::move(a));
            have_workloads |= !spec.workloads.empty();
        } else if (flag == "--name") {
            spec.name = next();
        } else if (flag == "--seed") {
            char *end = nullptr;
            const std::string &value = next();
            spec.seed = std::strtoull(value.c_str(), &end, 0);
            if (end == value.c_str() || *end != '\0')
                lap_fatal("--seed: expected a number, got '%s'",
                          value.c_str());
        } else if (flag == "--mix") {
            for (const auto &name : splitList(next()))
                spec.workloads.push_back(CampaignWorkload::mix(name));
            have_workloads = true;
        } else if (flag == "--duplicate") {
            for (const auto &name : splitList(next()))
                spec.workloads.push_back(
                    CampaignWorkload::duplicate(name));
            have_workloads = true;
        } else if (flag == "--benchmarks") {
            spec.workloads.push_back(
                CampaignWorkload::benchmarkList(splitList(next())));
            have_workloads = true;
        } else if (flag == "--parsec") {
            for (const auto &name : splitList(next()))
                spec.workloads.push_back(
                    CampaignWorkload::parsec(name));
            have_workloads = true;
        } else if (flag == "--policies") {
            for (const auto &name : splitList(next()))
                spec.policies.push_back(policyKindFromString(name));
        } else if (flag == "--axis") {
            const auto [field, values] =
                splitAssignment(flag, next());
            spec.axes.push_back({field, splitList(values)});
        } else if (flag == "--set") {
            const auto [field, value] = splitAssignment(flag, next());
            if (!applyConfigField(spec.base, field, value))
                lap_fatal("--set: unknown config field '%s'",
                          field.c_str());
        } else if (flag == "--jobs") {
            char *end = nullptr;
            const std::string &value = next();
            const auto parsed =
                std::strtoull(value.c_str(), &end, 0);
            if (end == value.c_str() || *end != '\0' || parsed == 0)
                lap_fatal("--jobs: expected a positive number");
            engine.jobs = static_cast<std::uint32_t>(parsed);
        } else if (flag == "--out") {
            engine.outPath = next();
        } else if (flag == "--resume") {
            engine.resume = true;
        } else if (flag == "--restore") {
            engine.midJobRestore = true;
        } else if (flag == "--checkpoint-every") {
            char *end = nullptr;
            const std::string &value = next();
            const auto parsed =
                std::strtoull(value.c_str(), &end, 0);
            if (end == value.c_str() || *end != '\0' || parsed == 0)
                lap_fatal(
                    "--checkpoint-every: expected a positive number");
            engine.checkpointEvery = parsed;
        } else if (flag == "--list") {
            list_only = true;
        } else if (flag == "--aggregate") {
            aggregate_path = next();
        } else if (flag == "--rows") {
            agg.rowField = next();
            rows_set = true;
        } else if (flag == "--cols") {
            agg.colField = next();
        } else if (flag == "--metric") {
            agg.metric = next();
            metric_set = true;
        } else if (flag == "--normalize") {
            agg.normalizeCol = next();
        } else if (flag == "--precision") {
            agg.precision = std::atoi(next().c_str());
        } else if (flag == "--phases") {
            phases = std::atoi(next().c_str());
            if (phases < 1)
                lap_fatal("--phases: expected a positive number");
        } else {
            lap_fatal("unknown flag '%s' (see --help)", flag.c_str());
        }
    }

    if (!aggregate_path.empty()) {
        if (phases > 0) {
            // Epoch rows carry raw counters, not end-of-run metrics,
            // and one label is one job's stream (sharing a workload
            // key across policies would interleave streams); adjust
            // the defaults unless the user chose their own.
            if (!metric_set)
                agg.metric = "llcMisses";
            if (!rows_set)
                agg.rowField = "label";
            const auto rows = loadJsonl(aggregate_path);
            if (rows.empty())
                lap_fatal("no JSONL rows in '%s'",
                          aggregate_path.c_str());
            aggregateEpochPhases(rows, agg, phases).print();
        } else {
            aggregateJsonlFile(aggregate_path, agg).print();
        }
        return 0;
    }

    if (!have_workloads)
        lap_fatal("no workloads; use --spec/--mix/--duplicate/"
                  "--benchmarks/--parsec (see --help)");

    if (engine.midJobRestore && engine.outPath.empty())
        lap_fatal("--restore needs --out (job snapshots live beside "
                  "the results file)");

    if (list_only) {
        Table table({"#", "hash", "label", "key"});
        const auto jobs = expandCampaign(spec);
        for (std::size_t i = 0; i < jobs.size(); ++i)
            table.addRow({std::to_string(i), jobs[i].hash,
                          jobs[i].label, jobs[i].key});
        table.print();
        std::printf("\n%zu jobs\n", jobs.size());
        return 0;
    }

    engine.onJobDone = [](const CampaignJob &job,
                          const JobOutcome &outcome, std::size_t done,
                          std::size_t total) {
        std::printf("[%3zu/%3zu] %-8s %8.0fms  %s%s%s\n", done, total,
                    toString(outcome.status), outcome.wallMs,
                    job.label.c_str(),
                    outcome.error.empty() ? "" : "  — ",
                    outcome.error.c_str());
        std::fflush(stdout);
    };

    const CampaignResult result = runCampaign(spec, engine);

    std::printf("\ncampaign '%s': %zu jobs — %zu ok, %zu failed, "
                "%zu skipped in %.1fs\n",
                spec.name.c_str(), result.jobs.size(),
                result.completed(), result.failed(), result.skipped(),
                result.wallMs / 1000.0);
    if (!engine.outPath.empty())
        std::printf("results: %s\n", engine.outPath.c_str());
    return result.failed() == 0 ? 0 : 1;
}
