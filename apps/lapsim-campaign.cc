/**
 * @file
 * lapsim-campaign — parallel experiment sweeps with resumable
 * JSONL results.
 *
 * Examples:
 *   # 10 mixes x 5 policies on 8 workers, streaming results
 *   lapsim-campaign --mix WL1,WL2,WL3,WL4,WL5,WH1,WH2,WH3,WH4,WH5 \
 *       --policies noni,ex,flex,dswitch,lap \
 *       --jobs 8 --out results.jsonl
 *
 *   # pick up where an interrupted sweep left off
 *   lapsim-campaign --spec fig14.campaign --jobs 8 \
 *       --out results.jsonl --resume
 *
 *   # regenerate the figure table from the archived rows
 *   lapsim-campaign --aggregate results.jsonl \
 *       --rows workload --cols config.policy \
 *       --metric metrics.epi --normalize Non-inclusive
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "campaign/aggregate.hh"
#include "campaign/engine.hh"
#include "common/logging.hh"
#include "fabric/client.hh"
#include "fabric/socket.hh"
#include "sim/config_fields.hh"
#include "sim/options.hh"

using namespace lap;

namespace
{

const char *kHelp =
    "lapsim-campaign — parallel experiment sweeps (resumable JSONL)\n"
    "\n"
    "campaign definition (combine freely; see DESIGN.md §7):\n"
    "  --spec FILE             load a campaign spec file\n"
    "  --name NAME             campaign name (job-hash namespace)\n"
    "  --seed N                campaign seed (mixed into job seeds)\n"
    "  --mix A[,B..]           add Table III / MIXn mix workloads\n"
    "  --duplicate A[,B..]     add duplicate-copies workloads\n"
    "  --benchmarks a,b,c,d    add one explicit per-core workload\n"
    "  --parsec A[,B..]        add PARSEC workloads (coherence on)\n"
    "  --trace S[,T..]         add LAPTR1 replay workloads (file\n"
    "                          paths or stressor:<name>)\n"
    "  --policies p1,p2,..     inclusion-policy axis\n"
    "  --axis FIELD=V1,V2,..   sweep axis over a config field\n"
    "  --set FIELD=VALUE       base-config override\n"
    "\n"
    "execution:\n"
    "  --jobs N                worker threads (default 1)\n"
    "  --out PATH              stream results to a JSONL file\n"
    "  --resume                skip jobs already 'ok' in --out\n"
    "  --restore               also checkpoint each running job and\n"
    "                          restore interrupted jobs mid-flight\n"
    "                          (implies --resume; needs --out)\n"
    "  --checkpoint-every N    snapshot cadence for --restore, in\n"
    "                          references (default ~4 per job)\n"
    "  --shard K/N             run only shard K of N (deterministic\n"
    "                          job-hash partition; the N shard runs\n"
    "                          union to exactly the full grid)\n"
    "  --list                  print the expanded grid and exit\n"
    "\n"
    "  SIGINT/SIGTERM stop dispatching new jobs: running jobs\n"
    "  finish and are flushed to --out, the rest stay unrun, and\n"
    "  the exit code is 3 (resume with --resume).\n"
    "\n"
    "fabric (see DESIGN.md §12):\n"
    "  --connect HOST:PORT     run the campaign on a lapsim-serve\n"
    "                          fleet instead of locally (needs\n"
    "                          --spec; honors --out/--resume/\n"
    "                          --checkpoint-every)\n"
    "  --query HOST:PORT       print a live aggregation of what the\n"
    "                          daemon has completed so far and exit\n"
    "  --campaign N            campaign id for --query (default:\n"
    "                          the daemon's most recent)\n"
    "\n"
    "aggregation (reads JSONL, prints a table):\n"
    "  --aggregate PATH        aggregate a results file and exit\n"
    "  --rows FIELD            row key (default 'workload')\n"
    "  --cols FIELD            column key (default 'config.policy')\n"
    "  --metric FIELD          cell metric (default 'metrics.epi')\n"
    "  --normalize COL         normalize rows to this column value\n"
    "  --precision N           cell precision (default 3)\n"
    "  --phases N              reduce each label's epoch stream (from\n"
    "                          epoch-stats runs) into N time phases;\n"
    "                          cells are per-phase means of --metric\n"
    "                          (default metric then: 'llcMisses')\n"
    "\n"
    "config fields for --set/--axis:\n";

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        lap_fatal("cannot read spec file '%s'", path.c_str());
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

std::pair<std::string, std::string>
splitAssignment(const std::string &flag, const std::string &text)
{
    const auto eq = text.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= text.size())
        lap_fatal("%s: expected FIELD=VALUE, got '%s'", flag.c_str(),
                  text.c_str());
    return {text.substr(0, eq), text.substr(eq + 1)};
}

/** Set by SIGINT/SIGTERM; the engine stops claiming jobs. */
std::atomic<bool> g_stop{false};

extern "C" void
onStopSignal(int sig)
{
    g_stop.store(true);
    // A second signal gets the default action (kill), so a hung
    // job cannot trap the user in "graceful" shutdown.
    std::signal(sig, SIG_DFL);
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);

    CampaignSpec spec;
    EngineOptions engine;
    AggregateSpec agg;
    std::string aggregate_path;
    std::string spec_text;
    std::string connect_addr;
    std::string query_addr;
    std::uint64_t query_id = 0;
    int phases = 0;
    bool metric_set = false;
    bool rows_set = false;
    bool list_only = false;
    bool have_workloads = false;

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &flag = args[i];
        auto next = [&]() -> const std::string & {
            if (i + 1 >= args.size())
                lap_fatal("%s requires a value", flag.c_str());
            return args[++i];
        };

        if (flag == "--help" || flag == "-h") {
            std::printf("%s%s", kHelp, configFieldsHelp().c_str());
            return 0;
        } else if (flag == "--spec") {
            // Keep the raw text too: --connect ships it verbatim so
            // the daemon and every worker expand the same bytes.
            spec_text = readFile(next());
            CampaignSpec parsed = parseCampaignSpec(spec_text);
            // Inline flags compose on top of the file.
            spec.name = parsed.name;
            spec.seed = parsed.seed;
            spec.base = parsed.base;
            for (auto &w : parsed.workloads)
                spec.workloads.push_back(std::move(w));
            for (auto p : parsed.policies)
                spec.policies.push_back(p);
            for (auto &a : parsed.axes)
                spec.axes.push_back(std::move(a));
            have_workloads |= !spec.workloads.empty();
        } else if (flag == "--name") {
            spec.name = next();
        } else if (flag == "--seed") {
            char *end = nullptr;
            const std::string &value = next();
            spec.seed = std::strtoull(value.c_str(), &end, 0);
            if (end == value.c_str() || *end != '\0')
                lap_fatal("--seed: expected a number, got '%s'",
                          value.c_str());
        } else if (flag == "--mix") {
            for (const auto &name : splitList(next()))
                spec.workloads.push_back(CampaignWorkload::mix(name));
            have_workloads = true;
        } else if (flag == "--duplicate") {
            for (const auto &name : splitList(next()))
                spec.workloads.push_back(
                    CampaignWorkload::duplicate(name));
            have_workloads = true;
        } else if (flag == "--benchmarks") {
            spec.workloads.push_back(
                CampaignWorkload::benchmarkList(splitList(next())));
            have_workloads = true;
        } else if (flag == "--parsec") {
            for (const auto &name : splitList(next()))
                spec.workloads.push_back(
                    CampaignWorkload::parsec(name));
            have_workloads = true;
        } else if (flag == "--trace") {
            for (const auto &name : splitList(next()))
                spec.workloads.push_back(
                    CampaignWorkload::trace(name));
            have_workloads = true;
        } else if (flag == "--policies") {
            for (const auto &name : splitList(next()))
                spec.policies.push_back(policyKindFromString(name));
        } else if (flag == "--axis") {
            const auto [field, values] =
                splitAssignment(flag, next());
            spec.axes.push_back({field, splitList(values)});
        } else if (flag == "--set") {
            const auto [field, value] = splitAssignment(flag, next());
            if (!applyConfigField(spec.base, field, value))
                lap_fatal("--set: unknown config field '%s'",
                          field.c_str());
        } else if (flag == "--jobs") {
            char *end = nullptr;
            const std::string &value = next();
            const auto parsed =
                std::strtoull(value.c_str(), &end, 0);
            if (end == value.c_str() || *end != '\0' || parsed == 0)
                lap_fatal("--jobs: expected a positive number");
            engine.jobs = static_cast<std::uint32_t>(parsed);
        } else if (flag == "--out") {
            engine.outPath = next();
        } else if (flag == "--resume") {
            engine.resume = true;
        } else if (flag == "--restore") {
            engine.midJobRestore = true;
        } else if (flag == "--checkpoint-every") {
            char *end = nullptr;
            const std::string &value = next();
            const auto parsed =
                std::strtoull(value.c_str(), &end, 0);
            if (end == value.c_str() || *end != '\0' || parsed == 0)
                lap_fatal(
                    "--checkpoint-every: expected a positive number");
            engine.checkpointEvery = parsed;
        } else if (flag == "--shard") {
            const std::string &value = next();
            const auto slash = value.find('/');
            char *end = nullptr;
            const auto k = std::strtoul(value.c_str(), &end, 10);
            if (slash == std::string::npos
                || end != value.c_str() + slash)
                lap_fatal("--shard: expected K/N, got '%s'",
                          value.c_str());
            const std::string n_text = value.substr(slash + 1);
            const auto n = std::strtoul(n_text.c_str(), &end, 10);
            if (end == n_text.c_str() || *end != '\0' || n == 0
                || k >= n)
                lap_fatal("--shard: expected K/N with K < N, "
                          "got '%s'",
                          value.c_str());
            engine.shardIndex = static_cast<std::uint32_t>(k);
            engine.shardCount = static_cast<std::uint32_t>(n);
        } else if (flag == "--connect") {
            connect_addr = next();
        } else if (flag == "--query") {
            query_addr = next();
        } else if (flag == "--campaign") {
            char *end = nullptr;
            const std::string &value = next();
            query_id = std::strtoull(value.c_str(), &end, 0);
            if (end == value.c_str() || *end != '\0')
                lap_fatal("--campaign: expected a number, got '%s'",
                          value.c_str());
        } else if (flag == "--list") {
            list_only = true;
        } else if (flag == "--aggregate") {
            aggregate_path = next();
        } else if (flag == "--rows") {
            agg.rowField = next();
            rows_set = true;
        } else if (flag == "--cols") {
            agg.colField = next();
        } else if (flag == "--metric") {
            agg.metric = next();
            metric_set = true;
        } else if (flag == "--normalize") {
            agg.normalizeCol = next();
        } else if (flag == "--precision") {
            agg.precision = std::atoi(next().c_str());
        } else if (flag == "--phases") {
            phases = std::atoi(next().c_str());
            if (phases < 1)
                lap_fatal("--phases: expected a positive number");
        } else {
            lap_fatal("unknown flag '%s' (see --help)", flag.c_str());
        }
    }

    if (!query_addr.empty()) {
        std::string host;
        std::uint16_t port = 0;
        fabric::splitHostPort(query_addr, host, port);
        const fabric::QueryAckMsg ack =
            fabric::queryCampaign(host, port, query_id);
        std::printf("campaign %llu: %llu/%llu jobs done\n%s\n",
                    static_cast<unsigned long long>(ack.campaignId),
                    static_cast<unsigned long long>(ack.done),
                    static_cast<unsigned long long>(ack.total),
                    ack.table.c_str());
        return 0;
    }

    if (!connect_addr.empty()) {
        if (spec_text.empty())
            lap_fatal("--connect needs --spec FILE: the spec text "
                      "is shipped to the daemon verbatim, so inline "
                      "workload flags cannot be used here");
        fabric::ClientOptions client;
        fabric::splitHostPort(connect_addr, client.host,
                              client.port);
        client.outPath = engine.outPath;
        client.resume = engine.resume || engine.midJobRestore;
        client.checkpointEvery = engine.checkpointEvery;
        std::size_t streamed = 0;
        client.onRow = [&streamed](const std::string &) {
            ++streamed;
        };
        const fabric::ClientRunResult run =
            fabric::submitCampaign(client, spec_text);
        std::printf(
            "\ncampaign %llu via %s: %llu jobs — %llu ok, "
            "%llu failed, %llu skipped (%zu rows streamed)\n",
            static_cast<unsigned long long>(run.campaignId),
            connect_addr.c_str(),
            static_cast<unsigned long long>(run.jobCount),
            static_cast<unsigned long long>(run.ok),
            static_cast<unsigned long long>(run.failed),
            static_cast<unsigned long long>(run.skipped), streamed);
        if (!run.summary.empty())
            std::printf("\n%s\n", run.summary.c_str());
        if (!engine.outPath.empty())
            std::printf("results: %s\n", engine.outPath.c_str());
        return run.failed == 0 ? 0 : 1;
    }

    if (!aggregate_path.empty()) {
        if (phases > 0) {
            // Epoch rows carry raw counters, not end-of-run metrics,
            // and one label is one job's stream (sharing a workload
            // key across policies would interleave streams); adjust
            // the defaults unless the user chose their own.
            if (!metric_set)
                agg.metric = "llcMisses";
            if (!rows_set)
                agg.rowField = "label";
            const auto rows = loadJsonl(aggregate_path);
            if (rows.empty())
                lap_fatal("no JSONL rows in '%s'",
                          aggregate_path.c_str());
            aggregateEpochPhases(rows, agg, phases).print();
        } else {
            aggregateJsonlFile(aggregate_path, agg).print();
        }
        return 0;
    }

    if (!have_workloads)
        lap_fatal("no workloads; use --spec/--mix/--duplicate/"
                  "--benchmarks/--parsec/--trace (see --help)");

    if (engine.midJobRestore && engine.outPath.empty())
        lap_fatal("--restore needs --out (job snapshots live beside "
                  "the results file)");

    if (list_only) {
        Table table({"#", "hash", "label", "key"});
        const auto jobs = expandCampaign(spec);
        for (std::size_t i = 0; i < jobs.size(); ++i)
            table.addRow({std::to_string(i), jobs[i].hash,
                          jobs[i].label, jobs[i].key});
        table.print();
        std::printf("\n%zu jobs\n", jobs.size());
        return 0;
    }

    // Graceful shutdown: first signal stops dispatching (running
    // jobs finish and flush); a second one falls back to the
    // default handler and kills the process.
    std::signal(SIGINT, onStopSignal);
    std::signal(SIGTERM, onStopSignal);
    engine.stopFlag = &g_stop;

    engine.onJobDone = [](const CampaignJob &job,
                          const JobOutcome &outcome, std::size_t done,
                          std::size_t total) {
        std::printf("[%3zu/%3zu] %-8s %8.0fms  %s%s%s\n", done, total,
                    toString(outcome.status), outcome.wallMs,
                    job.label.c_str(),
                    outcome.error.empty() ? "" : "  — ",
                    outcome.error.c_str());
        std::fflush(stdout);
    };

    const CampaignResult result = runCampaign(spec, engine);

    std::printf("\ncampaign '%s': %zu jobs — %zu ok, %zu failed, "
                "%zu skipped in %.1fs\n",
                spec.name.c_str(), result.jobs.size(),
                result.completed(), result.failed(), result.skipped(),
                result.wallMs / 1000.0);
    if (engine.shardCount > 0)
        std::printf("shard %u/%u of the full grid\n",
                    engine.shardIndex, engine.shardCount);
    if (!engine.outPath.empty())
        std::printf("results: %s\n", engine.outPath.c_str());
    if (g_stop.load() || result.notRun() > 0) {
        std::printf("interrupted: %zu jobs not run; re-run with "
                    "--resume to continue\n",
                    result.notRun());
        return 3;
    }
    return result.failed() == 0 ? 0 : 1;
}
