/**
 * @file
 * lapsim-serve — the campaign fabric scheduler daemon.
 *
 * Accepts campaign submissions from `lapsim-campaign --connect`,
 * shards the expanded grid across connected `lapsim-worker`
 * processes (work stealing over job-hash buckets), streams result
 * rows back to the submitting client in grid order, and reschedules
 * jobs of dead workers from their last uploaded checkpoint. See
 * DESIGN.md §12.
 *
 * Examples:
 *   # serve on the default loopback port
 *   lapsim-serve --listen 127.0.0.1:7747
 *
 *   # ephemeral port for tests/scripts (parse the printed line)
 *   lapsim-serve --listen 127.0.0.1:0
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "common/logging.hh"
#include "fabric/daemon.hh"

using namespace lap;

namespace
{

const char *kHelp =
    "lapsim-serve — campaign fabric scheduler daemon\n"
    "\n"
    "  --listen HOST:PORT      bind address (default 127.0.0.1:7747;\n"
    "                          port 0 binds an ephemeral port and\n"
    "                          prints the chosen one)\n"
    "  --heartbeat-timeout MS  kick busy workers silent for this\n"
    "                          long; their job is rescheduled from\n"
    "                          its last uploaded snapshot\n"
    "                          (default 15000)\n"
    "\n"
    "SIGINT/SIGTERM stop the daemon: workers are disconnected and\n"
    "unfinished campaigns stay resumable client-side (--resume).\n";

std::atomic<bool> g_stop{false};

extern "C" void
onStopSignal(int sig)
{
    g_stop.store(true);
    std::signal(sig, SIG_DFL);
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    fabric::FabricDaemon::Options options;
    options.host = "127.0.0.1";
    options.port = 7747;

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &flag = args[i];
        auto next = [&]() -> const std::string & {
            if (i + 1 >= args.size())
                lap_fatal("%s requires a value", flag.c_str());
            return args[++i];
        };
        if (flag == "--help" || flag == "-h") {
            std::printf("%s", kHelp);
            return 0;
        } else if (flag == "--listen") {
            fabric::splitHostPort(next(), options.host,
                                  options.port,
                                  /*allow_zero=*/true);
        } else if (flag == "--heartbeat-timeout") {
            options.heartbeatTimeoutMs =
                std::atof(next().c_str());
            if (options.heartbeatTimeoutMs <= 0)
                lap_fatal("--heartbeat-timeout: expected a positive "
                          "millisecond count");
        } else {
            lap_fatal("unknown flag '%s' (see --help)", flag.c_str());
        }
    }

    fabric::FabricDaemon daemon(options);
    daemon.start();
    // Scripts and tests parse this line for the ephemeral port.
    std::printf("lapsim-serve listening on %s:%u\n",
                options.host.c_str(), daemon.port());
    std::fflush(stdout);

    std::signal(SIGINT, onStopSignal);
    std::signal(SIGTERM, onStopSignal);
    while (!g_stop.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(100));

    const fabric::SchedulerStats stats = daemon.scheduler().stats();
    daemon.stop();
    std::printf("lapsim-serve stopping: %llu assignments "
                "(%llu reassigned, %llu from snapshots), "
                "%llu workers connected at shutdown\n",
                static_cast<unsigned long long>(stats.assignments),
                static_cast<unsigned long long>(stats.reassignments),
                static_cast<unsigned long long>(
                    stats.snapshotAssignments),
                static_cast<unsigned long long>(stats.activeWorkers));
    return 0;
}
