/**
 * @file
 * lapsim — the command-line front end of the simulator.
 *
 * Examples:
 *   lapsim --mix WH5 --policy lap
 *   lapsim --benchmarks omnetpp,mcf,libquantum,astar --policy ex
 *   lapsim --parsec streamcluster --policy lap
 *   lapsim --hybrid --placement lhybrid --policy lap --json out.json
 *   lapsim --mix WL1,WL2,WH1,WH2 --jobs 4 --json out.jsonl
 */

#include <cstdio>

#include "campaign/engine.hh"
#include "common/table.hh"
#include "sim/options.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "stats/stats_engine.hh"
#include "workloads/mixes.hh"
#include "workloads/parsec.hh"
#include "workloads/spec2006.hh"

using namespace lap;

namespace
{

MixSpec
findMix(const std::string &name)
{
    for (const auto &mix : tableThreeMixes()) {
        if (mix.name == name)
            return mix;
    }
    for (const auto &mix : randomMixes(50, 4)) {
        if (mix.name == name)
            return mix;
    }
    lap_fatal("unknown mix '%s' (WL1..WH5, MIX1..MIX50)", name.c_str());
}

void
printReport(const std::string &label, const Metrics &m)
{
    std::printf("workload: %s\n\n", label.c_str());
    Table t({"metric", "value"});
    t.addRow({"instructions", std::to_string(m.instructions)});
    t.addRow({"cycles", std::to_string(m.cycles)});
    t.addRow({"throughput (sum IPC)", Table::num(m.throughput, 3)});
    t.addRow({"LLC EPI (nJ/instr)", Table::num(m.epi, 4)});
    t.addRow({"  static / dynamic", Table::num(m.epiStatic, 4) + " / "
                                        + Table::num(m.epiDynamic, 4)});
    t.addRow({"LLC hits / misses", std::to_string(m.llcHits) + " / "
                                       + std::to_string(m.llcMisses)});
    t.addRow({"LLC MPKI", Table::num(m.llcMpki, 2)});
    t.addRow({"LLC writes", std::to_string(m.llcWritesTotal)});
    t.addRow({"  fill / clean / dirty / mig",
              std::to_string(m.llcWritesFill) + " / "
                  + std::to_string(m.llcWritesCleanVictim) + " / "
                  + std::to_string(m.llcWritesDirtyVictim) + " / "
                  + std::to_string(m.llcWritesMigration)});
    t.addRow({"redundant fill fraction",
              Table::percent(m.redundantFillFraction)});
    t.addRow({"loop-block eviction share",
              Table::percent(m.loopEvictionFraction)});
    t.addRow({"snoop messages", std::to_string(m.snoopMessages)});
    t.addRow({"DRAM reads / writes", std::to_string(m.dramReads) + " / "
                                         + std::to_string(m.dramWrites)});
    t.print();
}

/**
 * Several mixes run as a mini-campaign over --jobs workers, each
 * mix one job; identical metrics to running each mix alone.
 */
int
runMixCampaign(const CliOptions &opts)
{
    CampaignSpec spec;
    spec.name = "lapsim";
    spec.base = opts.config;
    for (const auto &name : opts.mixNames)
        spec.workloads.push_back(CampaignWorkload::mix(name));

    EngineOptions engine;
    engine.jobs = opts.jobs;
    engine.outPath = opts.jsonPath;

    const CampaignResult result = runCampaign(spec, engine);

    Table t({"mix", "status", "IPC", "EPI", "MPKI", "wall ms"});
    for (std::size_t i = 0; i < result.jobs.size(); ++i) {
        const JobOutcome &outcome = result.outcomes[i];
        const Metrics &m = outcome.metrics;
        t.addRow({result.jobs[i].label, toString(outcome.status),
                  Table::num(m.throughput, 3), Table::num(m.epi, 4),
                  Table::num(m.llcMpki, 2),
                  Table::num(outcome.wallMs, 0)});
        if (!outcome.error.empty())
            std::fprintf(stderr, "%s: %s\n",
                         result.jobs[i].label.c_str(),
                         outcome.error.c_str());
    }
    std::printf("policy: %s  (%u jobs, %.1fs)\n",
                toString(opts.config.policy), opts.jobs,
                result.wallMs / 1000.0);
    t.print();
    if (!opts.jsonPath.empty())
        std::printf("\nJSONL written to %s\n", opts.jsonPath.c_str());
    return result.failed() == 0 ? 0 : 1;
}

/** Shared tail of a single run: banner, report, optional dumps. */
void
reportRun(const CliOptions &opts, Simulator &sim,
          const std::string &label, const Metrics &metrics)
{
    std::printf("policy: %s  placement: %s  LLC: %s%s\n",
                toString(opts.config.policy),
                toString(opts.config.placement),
                opts.config.hybridLlc ? "hybrid "
                                      : toString(opts.config.llcTech),
                opts.config.deadWriteBypass ? "  (+DASCA)" : "");
    printReport(label, metrics);

    if (opts.dumpStats) {
        std::printf("\n--- statistics dump ---\n%s",
                    dumpStats(sim.hierarchy()).c_str());
    }

    const StatsEngine *engine = sim.statsEngine();
    if (engine != nullptr && engine->heat() != nullptr) {
        std::printf("\n--- LLC heat histogram ---\n%s",
                    engine->heat()->renderTable().c_str());
    }

    if (!opts.jsonPath.empty()) {
        std::string out =
            experimentToJson(label, opts.config, metrics) + "\n";
        // Epoch records ride along as JSONL rows after the
        // experiment object, one per line.
        if (engine != nullptr && engine->sampler() != nullptr) {
            for (const auto &rec : engine->sampler()->records())
                out += epochToJson(rec) + "\n";
        }
        writeFile(opts.jsonPath, out);
        std::printf("\nJSON written to %s\n", opts.jsonPath.c_str());
    }
    if (!opts.config.traceEventsPath.empty())
        std::printf("trace events written to %s\n",
                    opts.config.traceEventsPath.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    const CliOptions opts = parseCliOptions(args);
    if (opts.showHelp) {
        std::fputs(cliHelpText().c_str(), stdout);
        return 0;
    }

    if (opts.workload == CliOptions::WorkloadKind::Mix
        && opts.mixNames.size() > 1)
        return runMixCampaign(opts);

    Simulator sim(opts.config);
    Metrics metrics;
    std::string label;

    if (!opts.config.tracePath.empty()) {
        // Trace replay substitutes for whatever workload selection
        // is in effect (run() would delegate anyway; calling
        // runTrace() directly keeps the label honest).
        label = "trace: " + opts.config.tracePath;
        metrics = sim.runTrace();
        reportRun(opts, sim, label, metrics);
        return 0;
    }

    switch (opts.workload) {
      case CliOptions::WorkloadKind::Mix: {
        const MixSpec mix = findMix(opts.mixName);
        label = mix.name;
        for (const auto &b : mix.benchmarks)
            label += " " + spec2006Canonical(b);
        metrics = sim.run(resolveMix(mix));
        break;
      }
      case CliOptions::WorkloadKind::Benchmarks: {
        MixSpec mix;
        mix.name = "cli";
        for (std::uint32_t c = 0; c < opts.config.numCores; ++c) {
            mix.benchmarks.push_back(
                opts.benchmarks[c % opts.benchmarks.size()]);
        }
        label = "custom:";
        for (const auto &b : mix.benchmarks)
            label += " " + spec2006Canonical(b);
        metrics = sim.run(resolveMix(mix));
        break;
      }
      case CliOptions::WorkloadKind::Parsec: {
        label = "parsec:" + opts.parsec;
        metrics = sim.runMultiThreaded(parsecBenchmark(opts.parsec));
        break;
      }
    }

    reportRun(opts, sim, label, metrics);
    return 0;
}
