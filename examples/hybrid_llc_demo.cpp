/**
 * @file
 * Hybrid SRAM/STT-RAM LLC demo: runs a loop-heavy mix on the 2MB
 * SRAM + 6MB STT-RAM LLC under LAP with each data-placement policy
 * and shows where the energy goes (paper Section IV).
 */

#include <cstdio>

#include "common/table.hh"
#include "sim/simulator.hh"
#include "workloads/mixes.hh"

int
main()
{
    using namespace lap;

    const MixSpec mix = tableThreeMixes()[5]; // WH1: loop-heavy
    std::printf("hybrid LLC (2MB SRAM + 6MB STT-RAM), mix %s, "
                "policy LAP\n\n",
                mix.name.c_str());

    Table t({"placement", "EPI (nJ/instr)", "SRAM dyn (nJ)",
             "STT dyn (nJ)", "migrations", "throughput"});
    for (PlacementKind placement :
         {PlacementKind::Default, PlacementKind::Winv,
          PlacementKind::LoopStt, PlacementKind::NloopSram,
          PlacementKind::Lhybrid}) {
        SimConfig config;
        config.policy = PolicyKind::Lap;
        config.hybridLlc = true;
        config.placement = placement;
        config.warmupRefs = 200'000;
        config.measureRefs = 800'000;
        Simulator sim(config);
        const Metrics m = sim.run(resolveMix(mix));
        t.addRow({toString(placement), Table::num(m.epi, 4),
                  Table::num(m.llcSramEnergy.dynamicNj / 1e6, 3),
                  Table::num(m.llcSttEnergy.dynamicNj / 1e6, 3),
                  std::to_string(m.llcWritesMigration),
                  Table::num(m.throughput, 2)});
    }
    t.print();
    std::printf("\n(SRAM/STT dyn in mJ. Lhybrid keeps write-hot "
                "non-loop blocks in SRAM and\nmigrates loop-blocks "
                "into STT-RAM, where they are read cheaply.)\n");
    return 0;
}
