/**
 * @file
 * Quickstart: simulate a 4-core system with an STT-RAM LLC under
 * the LAP inclusion policy and print the headline metrics.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "common/table.hh"
#include "sim/simulator.hh"
#include "workloads/mixes.hh"

int
main()
{
    using namespace lap;

    // 1. Describe the system (defaults follow the paper's Table II:
    //    4 cores, 32KB L1D, 512KB L2, 8MB 16-way STT-RAM LLC).
    SimConfig config;
    config.policy = PolicyKind::Lap;
    config.llcTech = MemTech::STTRAM;
    config.warmupRefs = 200'000;
    config.measureRefs = 800'000;

    // 2. Pick a workload: the paper's WH1 mix
    //    (omnetpp, xalancbmk, zeusmp, libquantum).
    const MixSpec mix = tableThreeMixes()[5];
    std::printf("simulating mix %s under %s...\n", mix.name.c_str(),
                toString(config.policy));

    // 3. Run.
    Simulator sim(config);
    const Metrics m = sim.run(resolveMix(mix));

    // 4. Report.
    Table t({"metric", "value"});
    t.addRow({"instructions", std::to_string(m.instructions)});
    t.addRow({"throughput (sum of IPCs)", Table::num(m.throughput, 2)});
    t.addRow({"LLC energy/instruction (nJ)", Table::num(m.epi, 4)});
    t.addRow({"  static", Table::num(m.epiStatic, 4)});
    t.addRow({"  dynamic", Table::num(m.epiDynamic, 4)});
    t.addRow({"LLC MPKI", Table::num(m.llcMpki, 2)});
    t.addRow({"LLC writes", std::to_string(m.llcWritesTotal)});
    t.addRow({"  data-fills", std::to_string(m.llcWritesFill)});
    t.addRow({"  clean victims", std::to_string(m.llcWritesCleanVictim)});
    t.addRow({"  dirty victims", std::to_string(m.llcWritesDirtyVictim)});
    t.addRow({"loop-block eviction share",
              Table::percent(m.loopEvictionFraction)});
    t.print();

    std::printf("\nLAP never fills the LLC on misses; compare "
                "llcWritesFill against --policy noni in\n"
                "examples/policy_explorer.\n");
    return 0;
}
