/**
 * @file
 * Trace-file replay: drive the hierarchy from a user-provided memory
 * trace instead of the synthetic generators — the integration point
 * for traces exported from pin/DynamoRIO/gem5.
 *
 * Usage:
 *   trace_file_replay [trace.txt [policy]]
 *
 * Trace format: one reference per line, `R|W <address> [gap]`
 * (gap = non-memory instructions before the reference; '#' comments
 * allowed). Without arguments a small demo trace is generated and
 * replayed under LAP.
 */

#include <cstdio>
#include <fstream>
#include <string>

#include "common/table.hh"
#include "core/policy_factory.hh"
#include "cpu/file_trace.hh"
#include "sim/simulator.hh"

namespace
{

/** Writes a small loop+stream demo trace. */
std::string
writeDemoTrace()
{
    const std::string path = "/tmp/lapsim_demo_trace.txt";
    std::ofstream out(path);
    out << "# demo: a 768KB read loop plus a write stream\n";
    for (int pass = 0; pass < 4; ++pass) {
        for (int blk = 0; blk < 12288; ++blk)
            out << "R " << blk * 64 << " 8\n";
        for (int blk = 0; blk < 512; ++blk)
            out << "W " << (1 << 24) + (pass * 512 + blk) * 64
                << " 8\n";
    }
    return path;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace lap;

    std::string path = argc > 1 ? argv[1] : writeDemoTrace();
    const PolicyKind kind =
        argc > 2 ? policyKindFromString(argv[2]) : PolicyKind::Lap;

    SimConfig config;
    config.numCores = 1;
    config.policy = kind;
    config.warmupRefs = 0;
    config.measureRefs = 200'000;

    FileTrace trace(path);
    std::printf("replaying %s (%zu references, wrapped) under %s\n\n",
                path.c_str(), trace.size(), toString(kind));

    Simulator sim(config);
    CoreParams core;
    core.l1Latency = config.l1Latency;
    const Metrics m = sim.runTraces({&trace}, {core});

    Table t({"metric", "value"});
    t.addRow({"references replayed", std::to_string(config.measureRefs)});
    t.addRow({"LLC hits / misses", std::to_string(m.llcHits) + " / "
                                       + std::to_string(m.llcMisses)});
    t.addRow({"LLC writes (fill/clean/dirty)",
              std::to_string(m.llcWritesFill) + " / "
                  + std::to_string(m.llcWritesCleanVictim) + " / "
                  + std::to_string(m.llcWritesDirtyVictim)});
    t.addRow({"LLC energy/instruction (nJ)", Table::num(m.epi, 4)});
    t.addRow({"IPC", Table::num(m.ipcOf(0), 3)});
    t.print();
    return 0;
}
