/**
 * @file
 * Policy explorer: compare all inclusion policies on a workload of
 * your choice from the command line.
 *
 * Usage:
 *   policy_explorer [bench0 bench1 bench2 bench3]
 *
 * Benchmarks are SPEC CPU2006 model names (astar, omnetpp, mcf,
 * libquantum, ...; see spec2006Names()); fewer than four names are
 * cycled over the cores. Default: the paper's WH5 mix.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hh"
#include "sim/simulator.hh"
#include "workloads/mixes.hh"
#include "workloads/spec2006.hh"

int
main(int argc, char **argv)
{
    using namespace lap;

    std::vector<std::string> names;
    for (int i = 1; i < argc; ++i)
        names.push_back(argv[i]);
    if (names.empty())
        names = {"xalan", "xalan", "xalan", "bzip2"}; // WH5

    MixSpec mix;
    mix.name = "custom";
    for (std::uint32_t c = 0; c < 4; ++c)
        mix.benchmarks.push_back(names[c % names.size()]);

    std::printf("workload:");
    for (const auto &b : mix.benchmarks)
        std::printf(" %s", spec2006Canonical(b).c_str());
    std::printf("\n\n");

    Table t({"policy", "EPI (nJ/instr)", "vs noni", "LLC writes",
             "MPKI", "throughput"});
    double noni_epi = 0.0;
    for (PolicyKind kind : allPolicyKinds()) {
        SimConfig config;
        config.policy = kind;
        config.warmupRefs = 200'000;
        config.measureRefs = 800'000;
        Simulator sim(config);
        const Metrics m = sim.run(resolveMix(mix));
        if (kind == PolicyKind::NonInclusive)
            noni_epi = m.epi;
        t.addRow({toString(kind), Table::num(m.epi, 4),
                  noni_epi > 0.0 ? Table::num(m.epi / noni_epi, 3) : "-",
                  std::to_string(m.llcWritesTotal),
                  Table::num(m.llcMpki, 2),
                  Table::num(m.throughput, 2)});
    }
    t.print();
    std::printf("\n(vs noni uses the Non-inclusive row as 1.0; "
                "Inclusive is listed for completeness.)\n");
    return 0;
}
