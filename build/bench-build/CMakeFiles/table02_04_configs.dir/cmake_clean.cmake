file(REMOVE_RECURSE
  "../bench/table02_04_configs"
  "../bench/table02_04_configs.pdb"
  "CMakeFiles/table02_04_configs.dir/table02_04_configs.cc.o"
  "CMakeFiles/table02_04_configs.dir/table02_04_configs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_04_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
