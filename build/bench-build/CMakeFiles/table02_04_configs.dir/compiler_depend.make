# Empty compiler generated dependencies file for table02_04_configs.
# This may be replaced when dependencies are built.
