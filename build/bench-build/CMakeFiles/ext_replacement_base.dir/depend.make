# Empty dependencies file for ext_replacement_base.
# This may be replaced when dependencies are built.
