file(REMOVE_RECURSE
  "../bench/ext_replacement_base"
  "../bench/ext_replacement_base.pdb"
  "CMakeFiles/ext_replacement_base.dir/ext_replacement_base.cc.o"
  "CMakeFiles/ext_replacement_base.dir/ext_replacement_base.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_replacement_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
