file(REMOVE_RECURSE
  "../bench/fig13_workload_space"
  "../bench/fig13_workload_space.pdb"
  "CMakeFiles/fig13_workload_space.dir/fig13_workload_space.cc.o"
  "CMakeFiles/fig13_workload_space.dir/fig13_workload_space.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_workload_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
