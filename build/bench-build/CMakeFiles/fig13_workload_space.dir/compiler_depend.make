# Empty compiler generated dependencies file for fig13_workload_space.
# This may be replaced when dependencies are built.
