file(REMOVE_RECURSE
  "../bench/fig25_lhybrid_ablation"
  "../bench/fig25_lhybrid_ablation.pdb"
  "CMakeFiles/fig25_lhybrid_ablation.dir/fig25_lhybrid_ablation.cc.o"
  "CMakeFiles/fig25_lhybrid_ablation.dir/fig25_lhybrid_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig25_lhybrid_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
