# Empty dependencies file for fig25_lhybrid_ablation.
# This may be replaced when dependencies are built.
