file(REMOVE_RECURSE
  "../bench/fig12_noni_vs_ex"
  "../bench/fig12_noni_vs_ex.pdb"
  "CMakeFiles/fig12_noni_vs_ex.dir/fig12_noni_vs_ex.cc.o"
  "CMakeFiles/fig12_noni_vs_ex.dir/fig12_noni_vs_ex.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_noni_vs_ex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
