# Empty dependencies file for fig12_noni_vs_ex.
# This may be replaced when dependencies are built.
