# Empty dependencies file for fig21_cache_ratio.
# This may be replaced when dependencies are built.
