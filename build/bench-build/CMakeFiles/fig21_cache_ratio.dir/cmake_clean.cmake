file(REMOVE_RECURSE
  "../bench/fig21_cache_ratio"
  "../bench/fig21_cache_ratio.pdb"
  "CMakeFiles/fig21_cache_ratio.dir/fig21_cache_ratio.cc.o"
  "CMakeFiles/fig21_cache_ratio.dir/fig21_cache_ratio.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_cache_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
