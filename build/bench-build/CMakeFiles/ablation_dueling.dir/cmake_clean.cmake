file(REMOVE_RECURSE
  "../bench/ablation_dueling"
  "../bench/ablation_dueling.pdb"
  "CMakeFiles/ablation_dueling.dir/ablation_dueling.cc.o"
  "CMakeFiles/ablation_dueling.dir/ablation_dueling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dueling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
