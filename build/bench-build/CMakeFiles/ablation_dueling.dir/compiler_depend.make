# Empty compiler generated dependencies file for ablation_dueling.
# This may be replaced when dependencies are built.
