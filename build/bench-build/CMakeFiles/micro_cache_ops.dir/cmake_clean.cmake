file(REMOVE_RECURSE
  "../bench/micro_cache_ops"
  "../bench/micro_cache_ops.pdb"
  "CMakeFiles/micro_cache_ops.dir/micro_cache_ops.cc.o"
  "CMakeFiles/micro_cache_ops.dir/micro_cache_ops.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_cache_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
