file(REMOVE_RECURSE
  "../bench/ext_dasca_combination"
  "../bench/ext_dasca_combination.pdb"
  "CMakeFiles/ext_dasca_combination.dir/ext_dasca_combination.cc.o"
  "CMakeFiles/ext_dasca_combination.dir/ext_dasca_combination.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dasca_combination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
