# Empty compiler generated dependencies file for ext_dasca_combination.
# This may be replaced when dependencies are built.
