# Empty compiler generated dependencies file for fig18_mpki.
# This may be replaced when dependencies are built.
