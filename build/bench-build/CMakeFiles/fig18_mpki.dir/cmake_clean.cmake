file(REMOVE_RECURSE
  "../bench/fig18_mpki"
  "../bench/fig18_mpki.pdb"
  "CMakeFiles/fig18_mpki.dir/fig18_mpki.cc.o"
  "CMakeFiles/fig18_mpki.dir/fig18_mpki.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_mpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
