# Empty compiler generated dependencies file for fig19_lap_variants.
# This may be replaced when dependencies are built.
