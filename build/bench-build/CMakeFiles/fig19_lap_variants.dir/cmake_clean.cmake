file(REMOVE_RECURSE
  "../bench/fig19_lap_variants"
  "../bench/fig19_lap_variants.pdb"
  "CMakeFiles/fig19_lap_variants.dir/fig19_lap_variants.cc.o"
  "CMakeFiles/fig19_lap_variants.dir/fig19_lap_variants.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_lap_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
