
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig19_lap_variants.cc" "bench-build/CMakeFiles/fig19_lap_variants.dir/fig19_lap_variants.cc.o" "gcc" "bench-build/CMakeFiles/fig19_lap_variants.dir/fig19_lap_variants.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/lap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/lap_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/lap_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/hierarchy/CMakeFiles/lap_hierarchy.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/lap_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/lap_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/lap_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
