# Empty compiler generated dependencies file for ext_other_nvm.
# This may be replaced when dependencies are built.
