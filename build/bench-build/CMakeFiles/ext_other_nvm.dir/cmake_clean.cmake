file(REMOVE_RECURSE
  "../bench/ext_other_nvm"
  "../bench/ext_other_nvm.pdb"
  "CMakeFiles/ext_other_nvm.dir/ext_other_nvm.cc.o"
  "CMakeFiles/ext_other_nvm.dir/ext_other_nvm.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_other_nvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
