file(REMOVE_RECURSE
  "../bench/fig22_core_count"
  "../bench/fig22_core_count.pdb"
  "CMakeFiles/fig22_core_count.dir/fig22_core_count.cc.o"
  "CMakeFiles/fig22_core_count.dir/fig22_core_count.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_core_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
