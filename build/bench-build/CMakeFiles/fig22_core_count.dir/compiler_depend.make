# Empty compiler generated dependencies file for fig22_core_count.
# This may be replaced when dependencies are built.
