# Empty compiler generated dependencies file for ext_endurance.
# This may be replaced when dependencies are built.
