file(REMOVE_RECURSE
  "../bench/ext_endurance"
  "../bench/ext_endurance.pdb"
  "CMakeFiles/ext_endurance.dir/ext_endurance.cc.o"
  "CMakeFiles/ext_endurance.dir/ext_endurance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_endurance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
