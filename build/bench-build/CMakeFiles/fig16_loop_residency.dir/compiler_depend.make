# Empty compiler generated dependencies file for fig16_loop_residency.
# This may be replaced when dependencies are built.
