file(REMOVE_RECURSE
  "../bench/fig16_loop_residency"
  "../bench/fig16_loop_residency.pdb"
  "CMakeFiles/fig16_loop_residency.dir/fig16_loop_residency.cc.o"
  "CMakeFiles/fig16_loop_residency.dir/fig16_loop_residency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_loop_residency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
