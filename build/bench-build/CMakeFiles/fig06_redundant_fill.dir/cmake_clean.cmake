file(REMOVE_RECURSE
  "../bench/fig06_redundant_fill"
  "../bench/fig06_redundant_fill.pdb"
  "CMakeFiles/fig06_redundant_fill.dir/fig06_redundant_fill.cc.o"
  "CMakeFiles/fig06_redundant_fill.dir/fig06_redundant_fill.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_redundant_fill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
