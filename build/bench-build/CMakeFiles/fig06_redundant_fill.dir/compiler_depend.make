# Empty compiler generated dependencies file for fig06_redundant_fill.
# This may be replaced when dependencies are built.
