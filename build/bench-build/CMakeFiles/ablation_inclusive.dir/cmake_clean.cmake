file(REMOVE_RECURSE
  "../bench/ablation_inclusive"
  "../bench/ablation_inclusive.pdb"
  "CMakeFiles/ablation_inclusive.dir/ablation_inclusive.cc.o"
  "CMakeFiles/ablation_inclusive.dir/ablation_inclusive.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_inclusive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
