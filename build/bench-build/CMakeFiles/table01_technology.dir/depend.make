# Empty dependencies file for table01_technology.
# This may be replaced when dependencies are built.
