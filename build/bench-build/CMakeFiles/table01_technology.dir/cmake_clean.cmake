file(REMOVE_RECURSE
  "../bench/table01_technology"
  "../bench/table01_technology.pdb"
  "CMakeFiles/table01_technology.dir/table01_technology.cc.o"
  "CMakeFiles/table01_technology.dir/table01_technology.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_technology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
