file(REMOVE_RECURSE
  "../bench/fig02_motivation"
  "../bench/fig02_motivation.pdb"
  "CMakeFiles/fig02_motivation.dir/fig02_motivation.cc.o"
  "CMakeFiles/fig02_motivation.dir/fig02_motivation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
