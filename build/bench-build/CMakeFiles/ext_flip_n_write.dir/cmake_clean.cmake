file(REMOVE_RECURSE
  "../bench/ext_flip_n_write"
  "../bench/ext_flip_n_write.pdb"
  "CMakeFiles/ext_flip_n_write.dir/ext_flip_n_write.cc.o"
  "CMakeFiles/ext_flip_n_write.dir/ext_flip_n_write.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_flip_n_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
