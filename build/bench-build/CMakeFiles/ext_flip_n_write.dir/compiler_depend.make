# Empty compiler generated dependencies file for ext_flip_n_write.
# This may be replaced when dependencies are built.
