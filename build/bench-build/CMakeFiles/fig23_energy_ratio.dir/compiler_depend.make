# Empty compiler generated dependencies file for fig23_energy_ratio.
# This may be replaced when dependencies are built.
