file(REMOVE_RECURSE
  "../bench/fig23_energy_ratio"
  "../bench/fig23_energy_ratio.pdb"
  "CMakeFiles/fig23_energy_ratio.dir/fig23_energy_ratio.cc.o"
  "CMakeFiles/fig23_energy_ratio.dir/fig23_energy_ratio.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_energy_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
