file(REMOVE_RECURSE
  "../bench/fig04_loop_blocks"
  "../bench/fig04_loop_blocks.pdb"
  "CMakeFiles/fig04_loop_blocks.dir/fig04_loop_blocks.cc.o"
  "CMakeFiles/fig04_loop_blocks.dir/fig04_loop_blocks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_loop_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
