# Empty dependencies file for fig04_loop_blocks.
# This may be replaced when dependencies are built.
