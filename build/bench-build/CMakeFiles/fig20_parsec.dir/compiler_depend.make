# Empty compiler generated dependencies file for fig20_parsec.
# This may be replaced when dependencies are built.
