file(REMOVE_RECURSE
  "../bench/fig20_parsec"
  "../bench/fig20_parsec.pdb"
  "CMakeFiles/fig20_parsec.dir/fig20_parsec.cc.o"
  "CMakeFiles/fig20_parsec.dir/fig20_parsec.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_parsec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
