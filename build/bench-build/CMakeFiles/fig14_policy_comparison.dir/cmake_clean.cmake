file(REMOVE_RECURSE
  "../bench/fig14_policy_comparison"
  "../bench/fig14_policy_comparison.pdb"
  "CMakeFiles/fig14_policy_comparison.dir/fig14_policy_comparison.cc.o"
  "CMakeFiles/fig14_policy_comparison.dir/fig14_policy_comparison.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_policy_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
