file(REMOVE_RECURSE
  "../bench/fig24_hybrid"
  "../bench/fig24_hybrid.pdb"
  "CMakeFiles/fig24_hybrid.dir/fig24_hybrid.cc.o"
  "CMakeFiles/fig24_hybrid.dir/fig24_hybrid.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig24_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
