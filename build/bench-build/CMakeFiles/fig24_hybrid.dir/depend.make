# Empty dependencies file for fig24_hybrid.
# This may be replaced when dependencies are built.
