# Empty compiler generated dependencies file for fig17_redundant_fill_mixes.
# This may be replaced when dependencies are built.
