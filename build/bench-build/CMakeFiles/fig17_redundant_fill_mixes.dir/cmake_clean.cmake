file(REMOVE_RECURSE
  "../bench/fig17_redundant_fill_mixes"
  "../bench/fig17_redundant_fill_mixes.pdb"
  "CMakeFiles/fig17_redundant_fill_mixes.dir/fig17_redundant_fill_mixes.cc.o"
  "CMakeFiles/fig17_redundant_fill_mixes.dir/fig17_redundant_fill_mixes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_redundant_fill_mixes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
