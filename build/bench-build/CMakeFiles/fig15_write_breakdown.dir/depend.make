# Empty dependencies file for fig15_write_breakdown.
# This may be replaced when dependencies are built.
