file(REMOVE_RECURSE
  "../bench/fig15_write_breakdown"
  "../bench/fig15_write_breakdown.pdb"
  "CMakeFiles/fig15_write_breakdown.dir/fig15_write_breakdown.cc.o"
  "CMakeFiles/fig15_write_breakdown.dir/fig15_write_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_write_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
