file(REMOVE_RECURSE
  "CMakeFiles/lap_cache.dir/cache.cc.o"
  "CMakeFiles/lap_cache.dir/cache.cc.o.d"
  "CMakeFiles/lap_cache.dir/replacement.cc.o"
  "CMakeFiles/lap_cache.dir/replacement.cc.o.d"
  "liblap_cache.a"
  "liblap_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lap_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
