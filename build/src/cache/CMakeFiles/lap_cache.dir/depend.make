# Empty dependencies file for lap_cache.
# This may be replaced when dependencies are built.
