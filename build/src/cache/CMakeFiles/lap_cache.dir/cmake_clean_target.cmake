file(REMOVE_RECURSE
  "liblap_cache.a"
)
