file(REMOVE_RECURSE
  "liblap_mem.a"
)
