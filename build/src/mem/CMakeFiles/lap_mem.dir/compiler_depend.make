# Empty compiler generated dependencies file for lap_mem.
# This may be replaced when dependencies are built.
