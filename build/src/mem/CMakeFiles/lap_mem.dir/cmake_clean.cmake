file(REMOVE_RECURSE
  "CMakeFiles/lap_mem.dir/dram.cc.o"
  "CMakeFiles/lap_mem.dir/dram.cc.o.d"
  "liblap_mem.a"
  "liblap_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lap_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
