file(REMOVE_RECURSE
  "liblap_common.a"
)
