# Empty compiler generated dependencies file for lap_common.
# This may be replaced when dependencies are built.
