file(REMOVE_RECURSE
  "CMakeFiles/lap_common.dir/logging.cc.o"
  "CMakeFiles/lap_common.dir/logging.cc.o.d"
  "CMakeFiles/lap_common.dir/table.cc.o"
  "CMakeFiles/lap_common.dir/table.cc.o.d"
  "liblap_common.a"
  "liblap_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lap_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
