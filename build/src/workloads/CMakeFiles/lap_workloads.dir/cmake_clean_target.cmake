file(REMOVE_RECURSE
  "liblap_workloads.a"
)
