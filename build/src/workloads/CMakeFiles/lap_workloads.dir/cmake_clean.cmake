file(REMOVE_RECURSE
  "CMakeFiles/lap_workloads.dir/mixes.cc.o"
  "CMakeFiles/lap_workloads.dir/mixes.cc.o.d"
  "CMakeFiles/lap_workloads.dir/parsec.cc.o"
  "CMakeFiles/lap_workloads.dir/parsec.cc.o.d"
  "CMakeFiles/lap_workloads.dir/regions.cc.o"
  "CMakeFiles/lap_workloads.dir/regions.cc.o.d"
  "CMakeFiles/lap_workloads.dir/spec2006.cc.o"
  "CMakeFiles/lap_workloads.dir/spec2006.cc.o.d"
  "liblap_workloads.a"
  "liblap_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lap_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
