
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/mixes.cc" "src/workloads/CMakeFiles/lap_workloads.dir/mixes.cc.o" "gcc" "src/workloads/CMakeFiles/lap_workloads.dir/mixes.cc.o.d"
  "/root/repo/src/workloads/parsec.cc" "src/workloads/CMakeFiles/lap_workloads.dir/parsec.cc.o" "gcc" "src/workloads/CMakeFiles/lap_workloads.dir/parsec.cc.o.d"
  "/root/repo/src/workloads/regions.cc" "src/workloads/CMakeFiles/lap_workloads.dir/regions.cc.o" "gcc" "src/workloads/CMakeFiles/lap_workloads.dir/regions.cc.o.d"
  "/root/repo/src/workloads/spec2006.cc" "src/workloads/CMakeFiles/lap_workloads.dir/spec2006.cc.o" "gcc" "src/workloads/CMakeFiles/lap_workloads.dir/spec2006.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/lap_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/hierarchy/CMakeFiles/lap_hierarchy.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/lap_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/lap_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/lap_energy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
