# Empty compiler generated dependencies file for lap_workloads.
# This may be replaced when dependencies are built.
