file(REMOVE_RECURSE
  "liblap_sim.a"
)
