# Empty dependencies file for lap_sim.
# This may be replaced when dependencies are built.
