file(REMOVE_RECURSE
  "CMakeFiles/lap_sim.dir/options.cc.o"
  "CMakeFiles/lap_sim.dir/options.cc.o.d"
  "CMakeFiles/lap_sim.dir/report.cc.o"
  "CMakeFiles/lap_sim.dir/report.cc.o.d"
  "CMakeFiles/lap_sim.dir/simulator.cc.o"
  "CMakeFiles/lap_sim.dir/simulator.cc.o.d"
  "liblap_sim.a"
  "liblap_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lap_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
