
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dead_write_predictor.cc" "src/core/CMakeFiles/lap_core.dir/dead_write_predictor.cc.o" "gcc" "src/core/CMakeFiles/lap_core.dir/dead_write_predictor.cc.o.d"
  "/root/repo/src/core/hybrid_placement.cc" "src/core/CMakeFiles/lap_core.dir/hybrid_placement.cc.o" "gcc" "src/core/CMakeFiles/lap_core.dir/hybrid_placement.cc.o.d"
  "/root/repo/src/core/lap_policy.cc" "src/core/CMakeFiles/lap_core.dir/lap_policy.cc.o" "gcc" "src/core/CMakeFiles/lap_core.dir/lap_policy.cc.o.d"
  "/root/repo/src/core/policy_factory.cc" "src/core/CMakeFiles/lap_core.dir/policy_factory.cc.o" "gcc" "src/core/CMakeFiles/lap_core.dir/policy_factory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hierarchy/CMakeFiles/lap_hierarchy.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/lap_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/lap_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/lap_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
