# Empty compiler generated dependencies file for lap_core.
# This may be replaced when dependencies are built.
