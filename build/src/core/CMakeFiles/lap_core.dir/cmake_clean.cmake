file(REMOVE_RECURSE
  "CMakeFiles/lap_core.dir/dead_write_predictor.cc.o"
  "CMakeFiles/lap_core.dir/dead_write_predictor.cc.o.d"
  "CMakeFiles/lap_core.dir/hybrid_placement.cc.o"
  "CMakeFiles/lap_core.dir/hybrid_placement.cc.o.d"
  "CMakeFiles/lap_core.dir/lap_policy.cc.o"
  "CMakeFiles/lap_core.dir/lap_policy.cc.o.d"
  "CMakeFiles/lap_core.dir/policy_factory.cc.o"
  "CMakeFiles/lap_core.dir/policy_factory.cc.o.d"
  "liblap_core.a"
  "liblap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
