file(REMOVE_RECURSE
  "liblap_core.a"
)
