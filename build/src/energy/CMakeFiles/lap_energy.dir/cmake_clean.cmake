file(REMOVE_RECURSE
  "CMakeFiles/lap_energy.dir/bit_write.cc.o"
  "CMakeFiles/lap_energy.dir/bit_write.cc.o.d"
  "CMakeFiles/lap_energy.dir/energy_model.cc.o"
  "CMakeFiles/lap_energy.dir/energy_model.cc.o.d"
  "CMakeFiles/lap_energy.dir/tech_params.cc.o"
  "CMakeFiles/lap_energy.dir/tech_params.cc.o.d"
  "liblap_energy.a"
  "liblap_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lap_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
