# Empty dependencies file for lap_energy.
# This may be replaced when dependencies are built.
