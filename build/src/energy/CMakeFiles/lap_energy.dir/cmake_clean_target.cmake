file(REMOVE_RECURSE
  "liblap_energy.a"
)
