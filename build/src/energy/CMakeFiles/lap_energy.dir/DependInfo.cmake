
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/energy/bit_write.cc" "src/energy/CMakeFiles/lap_energy.dir/bit_write.cc.o" "gcc" "src/energy/CMakeFiles/lap_energy.dir/bit_write.cc.o.d"
  "/root/repo/src/energy/energy_model.cc" "src/energy/CMakeFiles/lap_energy.dir/energy_model.cc.o" "gcc" "src/energy/CMakeFiles/lap_energy.dir/energy_model.cc.o.d"
  "/root/repo/src/energy/tech_params.cc" "src/energy/CMakeFiles/lap_energy.dir/tech_params.cc.o" "gcc" "src/energy/CMakeFiles/lap_energy.dir/tech_params.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
