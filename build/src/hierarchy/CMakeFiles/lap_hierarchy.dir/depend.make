# Empty dependencies file for lap_hierarchy.
# This may be replaced when dependencies are built.
