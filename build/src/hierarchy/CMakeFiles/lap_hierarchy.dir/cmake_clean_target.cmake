file(REMOVE_RECURSE
  "liblap_hierarchy.a"
)
