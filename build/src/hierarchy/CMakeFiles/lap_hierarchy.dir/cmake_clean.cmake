file(REMOVE_RECURSE
  "CMakeFiles/lap_hierarchy.dir/hierarchy.cc.o"
  "CMakeFiles/lap_hierarchy.dir/hierarchy.cc.o.d"
  "CMakeFiles/lap_hierarchy.dir/set_dueling.cc.o"
  "CMakeFiles/lap_hierarchy.dir/set_dueling.cc.o.d"
  "CMakeFiles/lap_hierarchy.dir/switching_policies.cc.o"
  "CMakeFiles/lap_hierarchy.dir/switching_policies.cc.o.d"
  "liblap_hierarchy.a"
  "liblap_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lap_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
