
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hierarchy/hierarchy.cc" "src/hierarchy/CMakeFiles/lap_hierarchy.dir/hierarchy.cc.o" "gcc" "src/hierarchy/CMakeFiles/lap_hierarchy.dir/hierarchy.cc.o.d"
  "/root/repo/src/hierarchy/set_dueling.cc" "src/hierarchy/CMakeFiles/lap_hierarchy.dir/set_dueling.cc.o" "gcc" "src/hierarchy/CMakeFiles/lap_hierarchy.dir/set_dueling.cc.o.d"
  "/root/repo/src/hierarchy/switching_policies.cc" "src/hierarchy/CMakeFiles/lap_hierarchy.dir/switching_policies.cc.o" "gcc" "src/hierarchy/CMakeFiles/lap_hierarchy.dir/switching_policies.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/lap_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/lap_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/lap_energy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
