# Empty dependencies file for lap_cpu.
# This may be replaced when dependencies are built.
