file(REMOVE_RECURSE
  "CMakeFiles/lap_cpu.dir/driver.cc.o"
  "CMakeFiles/lap_cpu.dir/driver.cc.o.d"
  "CMakeFiles/lap_cpu.dir/file_trace.cc.o"
  "CMakeFiles/lap_cpu.dir/file_trace.cc.o.d"
  "liblap_cpu.a"
  "liblap_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lap_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
