file(REMOVE_RECURSE
  "liblap_cpu.a"
)
