# Empty compiler generated dependencies file for lapsim.
# This may be replaced when dependencies are built.
