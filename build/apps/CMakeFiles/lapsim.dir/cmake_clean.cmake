file(REMOVE_RECURSE
  "CMakeFiles/lapsim.dir/lapsim.cc.o"
  "CMakeFiles/lapsim.dir/lapsim.cc.o.d"
  "lapsim"
  "lapsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
