# Empty dependencies file for trace_file_replay.
# This may be replaced when dependencies are built.
