file(REMOVE_RECURSE
  "CMakeFiles/trace_file_replay.dir/trace_file_replay.cpp.o"
  "CMakeFiles/trace_file_replay.dir/trace_file_replay.cpp.o.d"
  "trace_file_replay"
  "trace_file_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_file_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
