# Empty dependencies file for hybrid_llc_demo.
# This may be replaced when dependencies are built.
