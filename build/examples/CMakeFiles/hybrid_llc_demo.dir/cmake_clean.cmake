file(REMOVE_RECURSE
  "CMakeFiles/hybrid_llc_demo.dir/hybrid_llc_demo.cpp.o"
  "CMakeFiles/hybrid_llc_demo.dir/hybrid_llc_demo.cpp.o.d"
  "hybrid_llc_demo"
  "hybrid_llc_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_llc_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
