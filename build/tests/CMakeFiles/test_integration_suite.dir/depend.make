# Empty dependencies file for test_integration_suite.
# This may be replaced when dependencies are built.
