# Empty compiler generated dependencies file for test_set_dueling.
# This may be replaced when dependencies are built.
