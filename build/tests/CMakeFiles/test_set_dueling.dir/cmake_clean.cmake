file(REMOVE_RECURSE
  "CMakeFiles/test_set_dueling.dir/test_set_dueling.cc.o"
  "CMakeFiles/test_set_dueling.dir/test_set_dueling.cc.o.d"
  "test_set_dueling"
  "test_set_dueling.pdb"
  "test_set_dueling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_set_dueling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
