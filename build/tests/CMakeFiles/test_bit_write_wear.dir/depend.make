# Empty dependencies file for test_bit_write_wear.
# This may be replaced when dependencies are built.
