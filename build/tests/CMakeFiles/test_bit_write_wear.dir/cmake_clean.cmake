file(REMOVE_RECURSE
  "CMakeFiles/test_bit_write_wear.dir/test_bit_write_wear.cc.o"
  "CMakeFiles/test_bit_write_wear.dir/test_bit_write_wear.cc.o.d"
  "test_bit_write_wear"
  "test_bit_write_wear.pdb"
  "test_bit_write_wear[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bit_write_wear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
