# Empty dependencies file for test_hierarchy_more.
# This may be replaced when dependencies are built.
