file(REMOVE_RECURSE
  "CMakeFiles/test_hierarchy_more.dir/test_hierarchy_more.cc.o"
  "CMakeFiles/test_hierarchy_more.dir/test_hierarchy_more.cc.o.d"
  "test_hierarchy_more"
  "test_hierarchy_more.pdb"
  "test_hierarchy_more[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hierarchy_more.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
