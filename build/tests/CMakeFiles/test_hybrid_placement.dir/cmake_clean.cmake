file(REMOVE_RECURSE
  "CMakeFiles/test_hybrid_placement.dir/test_hybrid_placement.cc.o"
  "CMakeFiles/test_hybrid_placement.dir/test_hybrid_placement.cc.o.d"
  "test_hybrid_placement"
  "test_hybrid_placement.pdb"
  "test_hybrid_placement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hybrid_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
