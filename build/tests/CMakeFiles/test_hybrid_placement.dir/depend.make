# Empty dependencies file for test_hybrid_placement.
# This may be replaced when dependencies are built.
