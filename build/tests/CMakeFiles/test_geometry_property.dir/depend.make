# Empty dependencies file for test_geometry_property.
# This may be replaced when dependencies are built.
