file(REMOVE_RECURSE
  "CMakeFiles/test_hierarchy_property.dir/test_hierarchy_property.cc.o"
  "CMakeFiles/test_hierarchy_property.dir/test_hierarchy_property.cc.o.d"
  "test_hierarchy_property"
  "test_hierarchy_property.pdb"
  "test_hierarchy_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hierarchy_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
