file(REMOVE_RECURSE
  "CMakeFiles/test_report_options.dir/test_report_options.cc.o"
  "CMakeFiles/test_report_options.dir/test_report_options.cc.o.d"
  "test_report_options"
  "test_report_options.pdb"
  "test_report_options[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_report_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
