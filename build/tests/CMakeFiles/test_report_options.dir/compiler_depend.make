# Empty compiler generated dependencies file for test_report_options.
# This may be replaced when dependencies are built.
