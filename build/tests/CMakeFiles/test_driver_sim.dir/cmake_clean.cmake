file(REMOVE_RECURSE
  "CMakeFiles/test_driver_sim.dir/test_driver_sim.cc.o"
  "CMakeFiles/test_driver_sim.dir/test_driver_sim.cc.o.d"
  "test_driver_sim"
  "test_driver_sim.pdb"
  "test_driver_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_driver_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
