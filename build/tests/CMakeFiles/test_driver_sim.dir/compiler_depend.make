# Empty compiler generated dependencies file for test_driver_sim.
# This may be replaced when dependencies are built.
