file(REMOVE_RECURSE
  "CMakeFiles/test_hierarchy_flows.dir/test_hierarchy_flows.cc.o"
  "CMakeFiles/test_hierarchy_flows.dir/test_hierarchy_flows.cc.o.d"
  "test_hierarchy_flows"
  "test_hierarchy_flows.pdb"
  "test_hierarchy_flows[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hierarchy_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
