# Empty dependencies file for test_hierarchy_flows.
# This may be replaced when dependencies are built.
