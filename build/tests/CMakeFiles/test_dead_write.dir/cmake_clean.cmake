file(REMOVE_RECURSE
  "CMakeFiles/test_dead_write.dir/test_dead_write.cc.o"
  "CMakeFiles/test_dead_write.dir/test_dead_write.cc.o.d"
  "test_dead_write"
  "test_dead_write.pdb"
  "test_dead_write[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dead_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
