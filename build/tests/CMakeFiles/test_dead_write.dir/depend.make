# Empty dependencies file for test_dead_write.
# This may be replaced when dependencies are built.
