# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_replacement[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_set_dueling[1]_include.cmake")
include("/root/repo/build/tests/test_policies[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_hierarchy_flows[1]_include.cmake")
include("/root/repo/build/tests/test_coherence[1]_include.cmake")
include("/root/repo/build/tests/test_hybrid_placement[1]_include.cmake")
include("/root/repo/build/tests/test_hierarchy_property[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_driver_sim[1]_include.cmake")
include("/root/repo/build/tests/test_dead_write[1]_include.cmake")
include("/root/repo/build/tests/test_report_options[1]_include.cmake")
include("/root/repo/build/tests/test_hierarchy_more[1]_include.cmake")
include("/root/repo/build/tests/test_bit_write_wear[1]_include.cmake")
include("/root/repo/build/tests/test_geometry_property[1]_include.cmake")
include("/root/repo/build/tests/test_integration_suite[1]_include.cmake")
