#include "mem/dram.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"

namespace lap
{

Dram::Dram(const DramParams &params)
    : params_(params)
{
    lap_assert(params_.channels >= 1, "need at least one DRAM channel");
    channelBusyUntil_.assign(params_.channels, 0);
}

Cycle
Dram::reserveChannel(Addr block_addr, Cycle now)
{
    auto &busy = channelBusyUntil_[block_addr % params_.channels];
    const Cycle start = std::max(now, busy);
    busy = start + params_.channelOccupancy;
    return start;
}

Cycle
Dram::read(Addr block_addr, Cycle now)
{
    stats_.reads++;
    const Cycle start = reserveChannel(block_addr, now);
    return start + params_.accessLatency;
}

Cycle
Dram::write(Addr block_addr, Cycle now)
{
    stats_.writes++;
    return reserveChannel(block_addr, now);
}

} // namespace lap
