/**
 * @file
 * Main-memory model: fixed access latency plus a channel-occupancy
 * bandwidth model (DDR3-1600 x64 by default, paper Table II).
 */

#ifndef LAPSIM_MEM_DRAM_HH
#define LAPSIM_MEM_DRAM_HH

#include <cstdint>
#include <vector>

#include "common/serial.hh"
#include "common/types.hh"

namespace lap
{

/** DRAM timing parameters. */
struct DramParams
{
    /** Idle access latency in core cycles (row activate + CAS + bus). */
    Cycle accessLatency = 200;
    /**
     * Channel occupancy per 64B transfer in core cycles. DDR3-1600
     * x64 moves 64B in 5ns => 15 cycles at 3GHz; banking/interleaving
     * hides part of it, so the default charges half.
     */
    Cycle channelOccupancy = 8;
    std::uint32_t channels = 2;
};

/** Per-run DRAM statistics. */
struct DramStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;

    void reset() { *this = DramStats{}; }

    void
    saveState(ByteWriter &out) const
    {
        out.u64(reads);
        out.u64(writes);
    }

    void
    loadState(ByteReader &in)
    {
        reads = in.u64();
        writes = in.u64();
    }
};

/**
 * Main memory: services fills and accepts writebacks, modelling
 * contention as per-channel busy intervals.
 */
class Dram
{
  public:
    explicit Dram(const DramParams &params);

    /**
     * Issues a read for a block; returns the cycle the data is
     * available to the LLC.
     */
    Cycle read(Addr block_addr, Cycle now);

    /**
     * Issues a writeback; returns the cycle the channel accepted it
     * (writes are posted and do not stall the requester, but they do
     * occupy channel bandwidth).
     */
    Cycle write(Addr block_addr, Cycle now);

    DramStats &stats() { return stats_; }
    const DramStats &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

    const DramParams &params() const { return params_; }

    /** Serializes channel timing and counters (checkpointing). */
    void
    saveState(ByteWriter &out) const
    {
        out.vecU64(channelBusyUntil_);
        stats_.saveState(out);
    }

    void
    loadState(ByteReader &in)
    {
        in.vecU64(channelBusyUntil_);
        if (channelBusyUntil_.size() != params_.channels)
            lap_fatal("checkpoint has %zu DRAM channels but this run "
                      "has %u", channelBusyUntil_.size(),
                      params_.channels);
        stats_.loadState(in);
    }

  private:
    Cycle reserveChannel(Addr block_addr, Cycle now);

    // Fixed at construction; loadState() validates against it.
    DramParams params_; // lapsim-lint: transient
    std::vector<Cycle> channelBusyUntil_;
    DramStats stats_;
};

} // namespace lap

#endif // LAPSIM_MEM_DRAM_HH
