/**
 * @file
 * Data-integrity verifier.
 *
 * Blocks do not carry payloads in this simulator; instead every
 * write stamps the block with a fresh global version per address and
 * a shadow memory records what has been written back to DRAM. In
 * verification mode the hierarchy asserts, on every demand read,
 * that the version it observes equals the newest version of that
 * address — i.e. no inclusion policy, placement decision, or
 * migration ever loses dirty data or surfaces stale data. All tests
 * run with verification enabled.
 */

#ifndef LAPSIM_MEM_VERIFIER_HH
#define LAPSIM_MEM_VERIFIER_HH

#include <cstdint>

#include "common/flat_map.hh"
#include "common/logging.hh"
#include "common/serial.hh"
#include "common/types.hh"

namespace lap
{

/** Shadow store tracking per-address versions. */
class Verifier
{
  public:
    /** Records a new write to the address; returns its version. */
    std::uint64_t
    recordWrite(Addr block_addr)
    {
        return ++versions_[block_addr].latest;
    }

    /** Newest version ever written to the address (0 = never). */
    std::uint64_t
    latest(Addr block_addr) const
    {
        const Versions *v = versions_.find(block_addr);
        return v ? v->latest : 0;
    }

    /** Records a DRAM writeback of the given version. */
    void
    writeback(Addr block_addr, std::uint64_t version)
    {
        auto &mem = versions_[block_addr].mem;
        lap_assert(version >= mem,
                   "writeback of version %llu regresses memory at %llx "
                   "(had %llu)",
                   static_cast<unsigned long long>(version),
                   static_cast<unsigned long long>(block_addr),
                   static_cast<unsigned long long>(mem));
        mem = version;
    }

    /** Version a DRAM read returns. */
    std::uint64_t
    memVersion(Addr block_addr) const
    {
        const Versions *v = versions_.find(block_addr);
        return v ? v->mem : 0;
    }

    /** Asserts a demand read observed the newest version. */
    void
    checkRead(Addr block_addr, std::uint64_t observed,
              const char *where) const
    {
        const std::uint64_t expect = latest(block_addr);
        lap_assert(observed == expect,
                   "stale read at %s: block %llx observed v%llu, "
                   "latest v%llu",
                   where, static_cast<unsigned long long>(block_addr),
                   static_cast<unsigned long long>(observed),
                   static_cast<unsigned long long>(expect));
    }

    /**
     * Applies @p fn(block_addr, latest_version) to every address that
     * has ever been written. Iteration order is unspecified. Used by
     * the hierarchy auditor's data-loss sweep.
     */
    template <typename Fn>
    void
    forEachLatest(Fn &&fn) const
    {
        versions_.forEach([&](Addr a, const Versions &v) {
            if (v.latest != 0)
                fn(a, v.latest);
        });
    }

    /**
     * Asserts a dirty block being dropped (never legal) — used to
     * flag code paths that would silently discard modified data.
     */
    void
    checkNoDirtyDrop(Addr block_addr, std::uint64_t version) const
    {
        const std::uint64_t mem = memVersion(block_addr);
        lap_assert(version <= mem,
                   "dirty data dropped: block %llx v%llu never reached "
                   "memory (memory has v%llu)",
                   static_cast<unsigned long long>(block_addr),
                   static_cast<unsigned long long>(version),
                   static_cast<unsigned long long>(mem));
    }

    /**
     * Serializes every tracked address (both version fields, so the
     * shadow-memory state survives too). Entries are emitted in map
     * iteration order; all verifier queries are per-address, so the
     * rebuilt map's different physical layout is unobservable.
     */
    void
    saveState(ByteWriter &out) const
    {
        out.u64(versions_.size());
        versions_.forEach([&out](Addr a, const Versions &v) {
            out.u64(a);
            out.u64(v.latest);
            out.u64(v.mem);
        });
    }

    void
    loadState(ByteReader &in)
    {
        versions_.clear();
        const std::uint64_t count = in.u64();
        for (std::uint64_t i = 0; i < count; ++i) {
            const Addr a = in.u64();
            Versions &v = versions_[a];
            v.latest = in.u64();
            v.mem = in.u64();
        }
    }

  private:
    /**
     * Newest version ever written and newest version reaching DRAM,
     * in one slot: the miss path asks both questions about the same
     * address back-to-back (memVersion then checkRead), so keeping
     * them together makes that a single cache-line touch.
     */
    struct Versions
    {
        std::uint64_t latest = 0;
        std::uint64_t mem = 0;
    };

    AddrMap<Versions> versions_;
};

} // namespace lap

#endif // LAPSIM_MEM_VERIFIER_HH
