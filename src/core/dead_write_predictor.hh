/**
 * @file
 * DASCA-style dead-write prediction (Ahn et al., HPCA'14).
 *
 * The paper's Related Work notes that dead-write bypassing is
 * orthogonal to selective inclusion and can be combined with LAP for
 * further dynamic-energy savings; this module implements a
 * simplified sampling-free variant so the combination can be
 * evaluated (bench/ext_dasca_combination).
 *
 * A write into the LLC is *dead* when the inserted data is never
 * re-referenced (no demand hit and no dedup match) before the block
 * is evicted or overwritten. The predictor learns per access-site
 * (pseudo-PC) with saturating counters:
 *
 *  - On every LLC insertion the inserting site is recorded in the
 *    block.
 *  - When the block is evicted/overwritten, the site's counter is
 *    increased if the insertion turned out dead and decreased if the
 *    data was used.
 *  - New insertions whose site is confidently dead are bypassed:
 *    clean data is dropped (it is backed below), dirty data is
 *    written straight to DRAM.
 */

#ifndef LAPSIM_CORE_DEAD_WRITE_PREDICTOR_HH
#define LAPSIM_CORE_DEAD_WRITE_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/serial.hh"

namespace lap
{

/** Statistics of the dead-write predictor. */
struct DeadWriteStats
{
    std::uint64_t predictions = 0;
    std::uint64_t bypasses = 0;
    std::uint64_t trainedDead = 0;
    std::uint64_t trainedUseful = 0;

    void reset() { *this = DeadWriteStats{}; }
};

/** Site-indexed saturating-counter dead-write predictor. */
class DeadWritePredictor
{
  public:
    /**
     * @param table_bits     log2 of the counter-table size.
     * @param counter_max    Saturation value of each counter.
     * @param dead_threshold Counter value at which a site's writes
     *                       are predicted dead.
     */
    explicit DeadWritePredictor(unsigned table_bits = 12,
                                std::uint8_t counter_max = 7,
                                std::uint8_t dead_threshold = 6);

    /** True when an insertion from this site should be bypassed. */
    bool
    predictDead(std::uint32_t site)
    {
        stats_.predictions++;
        const bool dead = counters_[index(site)] >= deadThreshold_;
        if (dead)
            stats_.bypasses++;
        return dead;
    }

    /** Trains the site with the observed outcome of an insertion. */
    void
    train(std::uint32_t site, bool was_dead)
    {
        auto &ctr = counters_[index(site)];
        if (was_dead) {
            stats_.trainedDead++;
            if (ctr < counterMax_)
                ctr++;
        } else {
            stats_.trainedUseful++;
            // Useful insertions decay confidence fast: a mispredicted
            // bypass costs a miss, which is worse than a dead write.
            ctr = static_cast<std::uint8_t>(ctr >= 2 ? ctr - 2 : 0);
        }
    }

    std::uint8_t counterOf(std::uint32_t site) const
    {
        return counters_[index(site)];
    }

    DeadWriteStats &stats() { return stats_; }
    const DeadWriteStats &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

    /** Serializes the counter table and stats (checkpointing). */
    void
    saveState(ByteWriter &out) const
    {
        out.vecU8(counters_);
        out.u64(stats_.predictions);
        out.u64(stats_.bypasses);
        out.u64(stats_.trainedDead);
        out.u64(stats_.trainedUseful);
    }

    void
    loadState(ByteReader &in)
    {
        in.vecU8(counters_);
        if (counters_.size() != (std::size_t{1} << tableBits_))
            lap_fatal("checkpoint dead-write table has %zu entries "
                      "but this run has %zu", counters_.size(),
                      std::size_t{1} << tableBits_);
        stats_.predictions = in.u64();
        stats_.bypasses = in.u64();
        stats_.trainedDead = in.u64();
        stats_.trainedUseful = in.u64();
    }

  private:
    std::size_t
    index(std::uint32_t site) const
    {
        // Fibonacci hash onto the table.
        return (site * 2654435769u) >> (32 - tableBits_);
    }

    unsigned tableBits_;         // lapsim-lint: transient (config)
    std::uint8_t counterMax_;    // lapsim-lint: transient (config)
    std::uint8_t deadThreshold_; // lapsim-lint: transient (config)
    std::vector<std::uint8_t> counters_;
    DeadWriteStats stats_;
};

} // namespace lap

#endif // LAPSIM_CORE_DEAD_WRITE_PREDICTOR_HH
