#include "core/dead_write_predictor.hh"

namespace lap
{

DeadWritePredictor::DeadWritePredictor(unsigned table_bits,
                                       std::uint8_t counter_max,
                                       std::uint8_t dead_threshold)
    : tableBits_(table_bits),
      counterMax_(counter_max),
      deadThreshold_(dead_threshold)
{
    lap_assert(table_bits >= 1 && table_bits <= 24,
               "table bits %u out of range", table_bits);
    lap_assert(dead_threshold <= counter_max,
               "threshold above saturation");
    counters_.assign(std::size_t{1} << tableBits_, 0);
}

} // namespace lap
