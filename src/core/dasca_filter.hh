/**
 * @file
 * WriteFilter adapter around the DASCA-style dead-write predictor.
 */

#ifndef LAPSIM_CORE_DASCA_FILTER_HH
#define LAPSIM_CORE_DASCA_FILTER_HH

#include "core/dead_write_predictor.hh"
#include "hierarchy/write_filter.hh"

namespace lap
{

/** Plugs DeadWritePredictor into the hierarchy's write path. */
class DascaFilter : public WriteFilter
{
  public:
    explicit DascaFilter(DeadWritePredictor predictor = DeadWritePredictor())
        : predictor_(std::move(predictor))
    {
    }

    std::string name() const override { return "DASCA"; }

    bool
    shouldBypass(std::uint32_t site, bool dirty) override
    {
        (void)dirty; // dirty data is bypassed to DRAM, not dropped
        return predictor_.predictDead(site);
    }

    void
    observeOutcome(std::uint32_t site, bool was_dead) override
    {
        predictor_.train(site, was_dead);
    }

    DeadWritePredictor &predictor() { return predictor_; }

  private:
    DeadWritePredictor predictor_;
};

} // namespace lap

#endif // LAPSIM_CORE_DASCA_FILTER_HH
