/**
 * @file
 * Loop-block-aware data placement for hybrid SRAM/STT-RAM LLCs
 * (paper Section IV, Fig 11), plus the staged ablation variants of
 * Fig 25.
 *
 * The full Lhybrid flow:
 *  - (a) Winv: a dirty L2 victim that hits a duplicate in STT-RAM
 *    invalidates the STT copy and lands in SRAM, keeping write
 *    traffic off the expensive technology.
 *  - New insertions target SRAM. When SRAM is full and either the
 *    incoming block or some SRAM-resident block is a loop-block,
 *    (b) the MRU loop-block migrates from SRAM to STT-RAM (its next
 *    evictions will be free tag updates) to make room; the STT
 *    victim is chosen loop-aware (invalid, then LRU non-loop, then
 *    LRU loop).
 *  - (c) With no loop-blocks involved, the SRAM LRU block is evicted
 *    outright.
 *
 * The ablations LAP+Winv, LAP+LoopSTT and LAP+NloopSRAM enable the
 * stages independently (Fig 25).
 */

#ifndef LAPSIM_CORE_HYBRID_PLACEMENT_HH
#define LAPSIM_CORE_HYBRID_PLACEMENT_HH

#include <memory>

#include "hierarchy/placement.hh"

namespace lap
{

/** Stage switches of the Lhybrid placement. */
struct LhybridFlags
{
    /** Redirect dirty write-hits on STT blocks into SRAM. */
    bool winv = false;
    /** Steer loop-blocks into STT-RAM (incl. SRAM->STT migration). */
    bool loopToStt = false;
    /** Steer non-loop blocks into SRAM. */
    bool nloopToSram = false;
};

/** Flag-configurable loop-block-aware placement for hybrid LLCs. */
class LhybridPlacement : public PlacementPolicy
{
  public:
    LhybridPlacement(LhybridFlags flags, std::string name);

    /** Full Lhybrid (all stages, Fig 11). */
    static std::unique_ptr<LhybridPlacement> lhybrid();
    /** LAP+Winv ablation. */
    static std::unique_ptr<LhybridPlacement> winvOnly();
    /** LAP+LoopSTT ablation. */
    static std::unique_ptr<LhybridPlacement> loopSttOnly();
    /** LAP+NloopSRAM ablation. */
    static std::unique_ptr<LhybridPlacement> nloopSramOnly();

    std::string name() const override { return name_; }
    const LhybridFlags &flags() const { return flags_; }

    PlacementOutcome insert(Cache &llc, Addr block_addr,
                            const Cache::InsertAttrs &attrs) override;

    bool handleDirtyVictimHit(Cache &llc, BlockView dup,
                              const Cache::InsertAttrs &attrs,
                              PlacementOutcome &out) override;

  private:
    PlacementOutcome insertUniform(Cache &llc, Addr block_addr,
                                   Cache::InsertAttrs attrs);
    PlacementOutcome insertStt(Cache &llc, Addr block_addr,
                               Cache::InsertAttrs attrs);
    PlacementOutcome insertSram(Cache &llc, Addr block_addr,
                                Cache::InsertAttrs attrs,
                                bool allow_loop_migration);

    LhybridFlags flags_;
    std::string name_;
};

} // namespace lap

#endif // LAPSIM_CORE_HYBRID_PLACEMENT_HH
