/**
 * @file
 * Factory for every inclusion policy evaluated in the paper
 * (Table IV), so benches and examples can select them by name.
 */

#ifndef LAPSIM_CORE_POLICY_FACTORY_HH
#define LAPSIM_CORE_POLICY_FACTORY_HH

#include <string>
#include <vector>

#include "hierarchy/inclusion_engine.hh"

namespace lap
{

/** The evaluated policies (paper Table IV). */
enum class PolicyKind : std::uint8_t
{
    Inclusive,
    NonInclusive,
    Exclusive,
    Flexclusion,
    Dswitch,
    LapLru,
    LapLoop,
    Lap,
};

const char *toString(PolicyKind kind);

/** All kinds, in Table IV order. */
std::vector<PolicyKind> allPolicyKinds();

/** Parses a policy name ("lap", "exclusive", ...); fatal on error,
 *  listing the accepted names. */
PolicyKind policyKindFromString(const std::string &name);

/** Comma-separated accepted policy names (for error messages). */
std::string policyKindNames();

/** Tunables for the adaptive policies. */
struct PolicyTuning
{
    Cycle epochCycles = 250'000;
    std::uint32_t leaderPeriod = 64;
    /** FLEXclusion: miss-reduction margin exclusion must show. */
    double flexMissMargin = 0.05;
    /** Dswitch: per-LLC-write energy cost (nJ). */
    double dswitchWriteEnergyNj = 0.436;
    /** Dswitch: per-LLC-miss energy cost (nJ). */
    double dswitchMissEnergyNj = 1.2;
};

/** Builds a policy engine for an LLC with @p num_sets sets. */
InclusionEngine makeInclusionPolicy(PolicyKind kind,
                                    std::uint64_t num_sets,
                                    const PolicyTuning &tuning = {});

} // namespace lap

#endif // LAPSIM_CORE_POLICY_FACTORY_HH
