#include "core/policy_factory.hh"

#include <algorithm>

#include "common/logging.hh"

namespace lap
{

const char *
toString(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Inclusive: return "Inclusive";
      case PolicyKind::NonInclusive: return "Non-inclusive";
      case PolicyKind::Exclusive: return "Exclusive";
      case PolicyKind::Flexclusion: return "FLEXclusion";
      case PolicyKind::Dswitch: return "Dswitch";
      case PolicyKind::LapLru: return "LAP-LRU";
      case PolicyKind::LapLoop: return "LAP-Loop";
      case PolicyKind::Lap: return "LAP";
    }
    return "?";
}

std::vector<PolicyKind>
allPolicyKinds()
{
    return {PolicyKind::Inclusive,   PolicyKind::NonInclusive,
            PolicyKind::Exclusive,   PolicyKind::Flexclusion,
            PolicyKind::Dswitch,     PolicyKind::LapLru,
            PolicyKind::LapLoop,     PolicyKind::Lap};
}

std::string
policyKindNames()
{
    std::string names;
    for (const PolicyKind kind : allPolicyKinds()) {
        if (!names.empty())
            names += ", ";
        names += toString(kind);
    }
    return names;
}

PolicyKind
policyKindFromString(const std::string &name)
{
    std::string lower = name;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char ch) { return std::tolower(ch); });
    if (lower == "inclusive")
        return PolicyKind::Inclusive;
    if (lower == "non-inclusive" || lower == "noninclusive"
        || lower == "noni")
        return PolicyKind::NonInclusive;
    if (lower == "exclusive" || lower == "ex")
        return PolicyKind::Exclusive;
    if (lower == "flexclusion" || lower == "flex")
        return PolicyKind::Flexclusion;
    if (lower == "dswitch")
        return PolicyKind::Dswitch;
    if (lower == "lap-lru" || lower == "laplru")
        return PolicyKind::LapLru;
    if (lower == "lap-loop" || lower == "laploop")
        return PolicyKind::LapLoop;
    if (lower == "lap")
        return PolicyKind::Lap;
    lap_fatal("unknown inclusion policy '%s' (valid: %s)", name.c_str(),
              policyKindNames().c_str());
}

InclusionEngine
makeInclusionPolicy(PolicyKind kind, std::uint64_t num_sets,
                    const PolicyTuning &tuning)
{
    switch (kind) {
      case PolicyKind::Inclusive:
        return InclusionEngine(InclusivePolicy{});
      case PolicyKind::NonInclusive:
        return InclusionEngine(NonInclusivePolicy{});
      case PolicyKind::Exclusive:
        return InclusionEngine(ExclusivePolicy{});
      case PolicyKind::Flexclusion:
        return InclusionEngine(FlexclusionPolicy(
            num_sets, tuning.epochCycles, tuning.flexMissMargin,
            tuning.leaderPeriod));
      case PolicyKind::Dswitch:
        return InclusionEngine(DswitchPolicy(
            num_sets, tuning.epochCycles, tuning.dswitchWriteEnergyNj,
            tuning.dswitchMissEnergyNj, tuning.leaderPeriod));
      case PolicyKind::LapLru:
        return InclusionEngine(LapPolicy(num_sets, tuning.epochCycles,
                                         LapVariant::Lru,
                                         tuning.leaderPeriod));
      case PolicyKind::LapLoop:
        return InclusionEngine(LapPolicy(num_sets, tuning.epochCycles,
                                         LapVariant::Loop,
                                         tuning.leaderPeriod));
      case PolicyKind::Lap:
        return InclusionEngine(LapPolicy(num_sets, tuning.epochCycles,
                                         LapVariant::Dueling,
                                         tuning.leaderPeriod));
    }
    lap_panic("unknown policy kind");
}

} // namespace lap
