#include "core/hybrid_placement.hh"

#include "common/logging.hh"

namespace lap
{

LhybridPlacement::LhybridPlacement(LhybridFlags flags, std::string name)
    : flags_(flags), name_(std::move(name))
{
}

std::unique_ptr<LhybridPlacement>
LhybridPlacement::lhybrid()
{
    return std::make_unique<LhybridPlacement>(
        LhybridFlags{true, true, true}, "Lhybrid");
}

std::unique_ptr<LhybridPlacement>
LhybridPlacement::winvOnly()
{
    return std::make_unique<LhybridPlacement>(
        LhybridFlags{true, false, false}, "LAP+Winv");
}

std::unique_ptr<LhybridPlacement>
LhybridPlacement::loopSttOnly()
{
    return std::make_unique<LhybridPlacement>(
        LhybridFlags{false, true, false}, "LAP+LoopSTT");
}

std::unique_ptr<LhybridPlacement>
LhybridPlacement::nloopSramOnly()
{
    return std::make_unique<LhybridPlacement>(
        LhybridFlags{false, false, true}, "LAP+NloopSRAM");
}

PlacementOutcome
LhybridPlacement::insertUniform(Cache &llc, Addr block_addr,
                                Cache::InsertAttrs attrs)
{
    PlacementOutcome out;
    auto result = llc.insert(block_addr, attrs);
    out.eviction = result.eviction;
    out.writeRegion = result.region;
    return out;
}

PlacementOutcome
LhybridPlacement::insertStt(Cache &llc, Addr block_addr,
                            Cache::InsertAttrs attrs)
{
    // Fig 11(b): STT victims are picked loop-aware (invalid, then
    // LRU non-loop, then LRU loop).
    attrs.loopAwareVictim = true;
    PlacementOutcome out;
    auto result = llc.insert(block_addr, attrs, llc.params().sramWays,
                             Cache::kAllWays);
    out.eviction = result.eviction;
    out.writeRegion = result.region;
    return out;
}

PlacementOutcome
LhybridPlacement::insertSram(Cache &llc, Addr block_addr,
                             Cache::InsertAttrs attrs,
                             bool allow_loop_migration)
{
    const std::uint32_t sram_ways = llc.params().sramWays;
    const std::uint64_t set = llc.setIndexOf(block_addr);
    PlacementOutcome out;
    out.writeRegion = MemTech::SRAM;

    if (llc.hasInvalidWay(set, 0, sram_ways)) {
        auto result = llc.insert(block_addr, attrs, 0, sram_ways);
        out.eviction = result.eviction;
        return out;
    }

    if (allow_loop_migration) {
        const std::uint32_t mru_loop = llc.mruLoopWay(set, 0, sram_ways);
        if (attrs.loopBit && mru_loop == Cache::kAllWays) {
            // The incoming block is the only loop-block: it goes to
            // STT-RAM directly.
            return insertStt(llc, block_addr, attrs);
        }
        if (mru_loop != Cache::kAllWays) {
            // Fig 11(b): migrate the MRU loop-block SRAM -> STT to
            // make room, then install the incoming block in SRAM.
            BlockView mig = llc.blockAt(set, mru_loop);
            Cache::InsertAttrs mig_attrs;
            mig_attrs.dirty = mig.dirty();
            mig_attrs.loopBit = mig.loopBit();
            mig_attrs.version = mig.version();
            mig_attrs.fillState = mig.fillState();
            mig_attrs.coh = mig.coh();
            const Addr mig_addr = mig.blockAddr();
            llc.countDataRead(MemTech::SRAM); // read out the migrant
            llc.invalidateBlock(mig);

            PlacementOutcome stt = insertStt(llc, mig_addr, mig_attrs);
            out.eviction = stt.eviction;
            out.migrations = 1;

            auto result = llc.insert(block_addr, attrs, 0, sram_ways);
            lap_assert(!result.eviction.valid,
                       "SRAM way freed by migration was not reused");
            return out;
        }
    }

    // No loop-blocks involved. If STT-RAM has an invalid entry the
    // displaced SRAM block moves there for free capacity; otherwise
    // the SRAM LRU block leaves the cache (Fig 11(c)).
    if (llc.hasInvalidWay(set, sram_ways, Cache::kAllWays)) {
        const std::uint32_t lru =
            llc.chooseVictimWay(set, 0, sram_ways, false);
        BlockView mig = llc.blockAt(set, lru);
        Cache::InsertAttrs mig_attrs;
        mig_attrs.dirty = mig.dirty();
        mig_attrs.loopBit = mig.loopBit();
        mig_attrs.version = mig.version();
        mig_attrs.fillState = mig.fillState();
        mig_attrs.coh = mig.coh();
        const Addr mig_addr = mig.blockAddr();
        llc.countDataRead(MemTech::SRAM);
        llc.invalidateBlock(mig);
        PlacementOutcome stt = insertStt(llc, mig_addr, mig_attrs);
        lap_assert(!stt.eviction.valid,
                   "invalid STT way vanished during migration");
        out.migrations = 1;

        auto result = llc.insert(block_addr, attrs, 0, sram_ways);
        lap_assert(!result.eviction.valid,
                   "SRAM way freed by migration was not reused");
        return out;
    }
    auto result = llc.insert(block_addr, attrs, 0, sram_ways);
    out.eviction = result.eviction;
    return out;
}

PlacementOutcome
LhybridPlacement::insert(Cache &llc, Addr block_addr,
                         const Cache::InsertAttrs &attrs)
{
    if (!llc.isHybrid())
        return insertUniform(llc, block_addr, attrs);

    if (flags_.loopToStt && flags_.nloopToSram) {
        // Full Lhybrid: everything lands in SRAM first; loop-blocks
        // are migrated (or routed) to STT-RAM under pressure.
        return insertSram(llc, block_addr, attrs,
                          /*allow_loop_migration=*/true);
    }
    if (flags_.loopToStt && attrs.loopBit)
        return insertStt(llc, block_addr, attrs);
    if (flags_.nloopToSram && !attrs.loopBit) {
        return insertSram(llc, block_addr, attrs,
                          /*allow_loop_migration=*/false);
    }
    return insertUniform(llc, block_addr, attrs);
}

bool
LhybridPlacement::handleDirtyVictimHit(Cache &llc, BlockView dup,
                                       const Cache::InsertAttrs &attrs,
                                       PlacementOutcome &out)
{
    if (!flags_.winv || !llc.isHybrid())
        return false;
    if (llc.wayTech(dup.way()) != MemTech::STTRAM)
        return false; // SRAM duplicates are cheap to update in place

    // Fig 11(a): invalidate the STT copy and insert the dirty block
    // into SRAM.
    const Addr block_addr = dup.blockAddr();
    llc.invalidateBlock(dup);
    out = insertSram(llc, block_addr, attrs,
                     /*allow_loop_migration=*/flags_.loopToStt);
    return true;
}

} // namespace lap
