/**
 * @file
 * Passive observation hooks into the hierarchy engine.
 *
 * A HierarchyObserver is notified at well-defined points of the
 * demand-access and victim flows so that analysis layers (the
 * HierarchyAuditor in src/sim, the src/stats epoch sampler, trace
 * emitter and heat histogram) can follow the hierarchy's evolution
 * without the engine depending on them. Observers must not mutate
 * the hierarchy from a callback: all hooks fire at points where the
 * transaction's state is consistent, and re-entering the engine
 * would invalidate that.
 */

#ifndef LAPSIM_HIERARCHY_OBSERVER_HH
#define LAPSIM_HIERARCHY_OBSERVER_HH

#include <cstdint>

#include "common/types.hh"

namespace lap
{

/** Classification of LLC data-array writes (paper Fig 15). */
enum class WriteClass : std::uint8_t
{
    DataFill,    //!< Fill from memory on an LLC miss (non-inclusion).
    CleanVictim, //!< Clean L2 victim insertion (exclusion / LAP).
    DirtyVictim, //!< Dirty L2 victim insertion or in-place update.
    Migration,   //!< SRAM -> STT-RAM migration (hybrid LLC).
};

/** Callback interface for passive hierarchy instrumentation. */
class HierarchyObserver
{
  public:
    virtual ~HierarchyObserver() = default;

    /**
     * A demand access (or a flushPrivate drain) finished and the
     * hierarchy is in a consistent inter-transaction state.
     * @p transaction is the 1-based count of completed transactions;
     * @p now the cycle the transaction was issued at.
     */
    virtual void onTransactionComplete(std::uint64_t transaction,
                                       Cycle now)
    {
        (void)transaction;
        (void)now;
    }

    /** A demand write dirtied @p block_addr (clean streak ends). */
    virtual void onDemandWrite(Addr block_addr) { (void)block_addr; }

    /**
     * A clean L2 victim of @p block_addr left a private level.
     * @p loop_trip is the victim's loop-bit: true when this eviction
     * completes a clean L2<->LLC trip (paper Fig 10), which is the
     * only event that may set (or refresh) an LLC loop-bit.
     */
    virtual void onCleanL2Eviction(Addr block_addr, bool loop_trip)
    {
        (void)block_addr;
        (void)loop_trip;
    }

    /**
     * A demand access reached the LLC lookup and resolved to
     * @p hit in @p set. Fires once per LLC-level lookup, before the
     * servicing flows run.
     */
    virtual void onLlcAccess(std::uint64_t set, bool hit, Cycle now)
    {
        (void)set;
        (void)hit;
        (void)now;
    }

    /**
     * The LLC data array was written in @p set / @p bank with write
     * class @p cls. @p loop_bit is the inserted block's loop-bit
     * (false for in-place dirty updates and migrations).
     */
    virtual void onLlcWrite(std::uint64_t set, std::uint32_t bank,
                            WriteClass cls, bool loop_bit, Cycle now)
    {
        (void)set;
        (void)bank;
        (void)cls;
        (void)loop_bit;
        (void)now;
    }

    /** All statistics counters were reset (warmup -> measure). */
    virtual void onStatsReset() {}
};

} // namespace lap

#endif // LAPSIM_HIERARCHY_OBSERVER_HH
