/**
 * @file
 * Passive observation hooks into the hierarchy engine.
 *
 * A HierarchyObserver is notified at well-defined points of the
 * demand-access and victim flows so that analysis layers (the
 * HierarchyAuditor in src/sim, tracing, statistics probes) can
 * follow the hierarchy's evolution without the engine depending on
 * them. Observers must not mutate the hierarchy from a callback:
 * all hooks fire at points where the transaction's state is
 * consistent, and re-entering the engine would invalidate that.
 */

#ifndef LAPSIM_HIERARCHY_OBSERVER_HH
#define LAPSIM_HIERARCHY_OBSERVER_HH

#include <cstdint>

#include "common/types.hh"

namespace lap
{

/** Callback interface for passive hierarchy instrumentation. */
class HierarchyObserver
{
  public:
    virtual ~HierarchyObserver() = default;

    /**
     * A demand access (or a flushPrivate drain) finished and the
     * hierarchy is in a consistent inter-transaction state.
     * @p transaction is the 1-based count of completed transactions.
     */
    virtual void onTransactionComplete(std::uint64_t transaction)
    {
        (void)transaction;
    }

    /** A demand write dirtied @p block_addr (clean streak ends). */
    virtual void onDemandWrite(Addr block_addr) { (void)block_addr; }

    /**
     * A clean L2 victim of @p block_addr left a private level.
     * @p loop_trip is the victim's loop-bit: true when this eviction
     * completes a clean L2<->LLC trip (paper Fig 10), which is the
     * only event that may set (or refresh) an LLC loop-bit.
     */
    virtual void onCleanL2Eviction(Addr block_addr, bool loop_trip)
    {
        (void)block_addr;
        (void)loop_trip;
    }

    /** All statistics counters were reset (warmup -> measure). */
    virtual void onStatsReset() {}
};

} // namespace lap

#endif // LAPSIM_HIERARCHY_OBSERVER_HH
