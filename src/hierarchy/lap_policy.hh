/**
 * @file
 * LAP: the Loop-block-Aware inclusion Policy (paper Section III).
 *
 * LAP is a *new* inclusion model, not a switch between existing
 * ones:
 *
 *  - No LLC fill on misses (like exclusion): eliminates redundant
 *    data-fills (Fig 5).
 *  - No invalidation on LLC hits (like non-inclusion): loop-blocks
 *    keep their duplicate, so their next clean eviction is a free
 *    tag update rather than a redundant data insertion (Fig 3).
 *  - Clean victims are inserted only when no duplicate exists, so
 *    LLC write traffic = exclusive clean victims + dirty victims.
 *  - A loop-block-aware replacement policy (Fig 9) keeps identified
 *    loop-blocks resident, evicting non-loop blocks first; set
 *    dueling against plain LRU bounds the miss cost.
 *
 * Three variants are evaluated in the paper (Table IV / Fig 19):
 * LAP-LRU (always base replacement), LAP-Loop (always loop-aware),
 * and LAP (set-dueling picks per epoch). Like the other inclusion
 * policies this is a plain class dispatched by the InclusionEngine.
 */

#ifndef LAPSIM_HIERARCHY_LAP_POLICY_HH
#define LAPSIM_HIERARCHY_LAP_POLICY_HH

#include <cstdint>
#include <string>

#include "hierarchy/set_dueling.hh"

namespace lap
{

/** Replacement selection mode for LAP. */
enum class LapVariant : std::uint8_t
{
    Lru,     //!< LAP-LRU: always the base replacement policy.
    Loop,    //!< LAP-Loop: always loop-block-aware replacement.
    Dueling, //!< LAP: set-dueling between the two (the paper's LAP).
};

const char *toString(LapVariant variant);

/** The LAP selective inclusion policy. */
class LapPolicy
{
  public:
    /**
     * @param num_sets      LLC set count.
     * @param epoch_cycles  Dueling epoch (paper: 10M cycles).
     * @param variant       Replacement selection mode.
     * @param leader_period One leader set per team every this many
     *                      sets (paper: 64 => 1/64 + 1/64 of sets).
     */
    LapPolicy(std::uint64_t num_sets, Cycle epoch_cycles,
              LapVariant variant = LapVariant::Dueling,
              std::uint32_t leader_period = 64);

    std::string name() const;

    // Fig 8 decision table, LAP row.
    bool fillLlcOnMiss(std::uint64_t) const { return false; }
    bool invalidateOnLlcHit(std::uint64_t) const { return false; }
    bool insertCleanVictim(std::uint64_t) const { return true; }

    bool loopAwareVictim(std::uint64_t set) const;

    void noteLlcMiss(std::uint64_t set);
    void tick(Cycle now);

    LapVariant variant() const { return variant_; }
    SetDueling &duel() { return duel_; }
    const SetDueling *dueling() const { return &duel_; }

  private:
    LapVariant variant_;
    SetDueling duel_; // team A = loop-aware, team B = base LRU
};

} // namespace lap

#endif // LAPSIM_HIERARCHY_LAP_POLICY_HH
