#include "hierarchy/hierarchy.hh"

#include <algorithm>

#include "common/logging.hh"

namespace lap
{

namespace
{

/** Strength order of MOESI states (enum order is I<S<E<O<M). */
CohState
strongerState(CohState a, CohState b)
{
    return static_cast<std::uint8_t>(a) >= static_cast<std::uint8_t>(b)
        ? a
        : b;
}

} // namespace

CacheHierarchy::CacheHierarchy(const HierarchyParams &params,
                               InclusionEngine policy,
                               std::unique_ptr<PlacementPolicy> placement,
                               std::unique_ptr<WriteFilter> write_filter)
    : params_(params),
      dram_(params.dram),
      policy_(std::move(policy)),
      placement_(placement ? std::move(placement)
                           : std::make_unique<DefaultPlacement>()),
      writeFilter_(std::move(write_filter))
{
    lap_assert(params_.numCores >= 1, "need at least one core");
    lap_assert(params_.l1.blockBytes == params_.llc.blockBytes
                   && params_.l2.blockBytes == params_.llc.blockBytes,
               "block size must match across levels");

    for (std::uint32_t c = 0; c < params_.numCores; ++c) {
        CacheParams l1p = params_.l1;
        l1p.name += ".core" + std::to_string(c);
        l1p.seed += c;
        l1s_.push_back(std::make_unique<Cache>(l1p));

        CacheParams l2p = params_.l2;
        l2p.name += ".core" + std::to_string(c);
        l2p.seed += c;
        l2s_.push_back(std::make_unique<Cache>(l2p));
    }
    llc_ = std::make_unique<Cache>(params_.llc);
}

void
CacheHierarchy::addObserver(HierarchyObserver *observer)
{
    lap_assert(observer != nullptr, "observer must not be null");
    if (hasObserver(observer))
        return;
    observers_.push_back(observer);
}

void
CacheHierarchy::removeObserver(HierarchyObserver *observer)
{
    observers_.erase(
        std::remove(observers_.begin(), observers_.end(), observer),
        observers_.end());
}

bool
CacheHierarchy::hasObserver(const HierarchyObserver *observer) const
{
    return std::find(observers_.begin(), observers_.end(), observer)
        != observers_.end();
}

void
CacheHierarchy::resetStats()
{
    stats_.reset();
    loopTracker_.reset();
    llc_->resetStats();
    dram_.resetStats();
    for (auto &c : l1s_)
        c->resetStats();
    for (auto &c : l2s_)
        c->resetStats();
    for (HierarchyObserver *obs : observers_)
        obs->onStatsReset();
}

void
CacheHierarchy::flushPrivate(CoreId core, Cycle now)
{
    lap_assert(core < params_.numCores, "core %u out of range", core);
    auto drain = [&](Cache &cache, auto &&victim_handler) {
        // Nothing inserts into the cache being drained during its own
        // drain, so a live set-major sweep visits exactly the blocks
        // present at the start; re-check validity because a victim
        // handler may back-invalidate a block we have not reached yet.
        for (std::uint64_t set = 0; set < cache.numSets(); ++set) {
            for (std::uint32_t way = 0; way < cache.assoc(); ++way) {
                BlockView blk = cache.blockAt(set, way);
                if (!blk.valid())
                    continue;
                Cache::Eviction ev;
                ev.valid = true;
                ev.blockAddr = blk.blockAddr();
                ev.dirty = blk.dirty();
                ev.loopBit = blk.loopBit();
                ev.version = blk.version();
                ev.fillState = blk.fillState();
                ev.coh = blk.coh();
                ev.site = blk.site();
                ev.referenced = blk.referenced();
                cache.invalidateBlock(blk);
                victim_handler(ev);
            }
        }
    };
    drain(*l1s_[core], [&](const Cache::Eviction &ev) {
        handleL1Victim(core, ev, now);
    });
    drain(*l2s_[core], [&](const Cache::Eviction &ev) {
        handleL2Victim(core, ev, now);
    });
    completeTransaction(now);
}

CacheHierarchy::AccessResult
CacheHierarchy::access(CoreId core, Addr byte_addr, AccessType type,
                       Cycle now, std::uint32_t site)
{
    const AccessResult res = accessImpl(core, byte_addr, type, now, site);
    completeTransaction(now);
    return res;
}

void
CacheHierarchy::completeTransaction(Cycle now)
{
    transactionId_++;
    for (HierarchyObserver *obs : observers_)
        obs->onTransactionComplete(transactionId_, now);
}

void
CacheHierarchy::noteDemandWrite(Addr ba)
{
    loopTracker_.onWrite(ba);
    for (HierarchyObserver *obs : observers_)
        obs->onDemandWrite(ba);
}

CacheHierarchy::AccessResult
CacheHierarchy::accessImpl(CoreId core, Addr byte_addr, AccessType type,
                           Cycle now, std::uint32_t site)
{
    lap_assert(core < params_.numCores, "core %u out of range", core);
    policy_.tick(now);
    stats_.demandAccesses++;
    if (type == AccessType::Read)
        stats_.demandReads++;
    else
        stats_.demandWrites++;

    const Addr ba = llc_->blockAddrOf(byte_addr);
    Cache &l1c = *l1s_[core];

    // ---- L1 ---------------------------------------------------------
    if (BlockView b1 = l1c.access(ba, type)) {
        stats_.l1Hits++;
        b1.setSite(site);
        if (BlockView d2 = l2s_[core]->probe(ba))
            d2.setSite(site);
        if (type == AccessType::Write) {
            if (params_.coherence)
                upgradeForWrite(core, ba);
            b1.setVersion(verifier_.recordWrite(ba));
            noteDemandWrite(ba);
            // Fig 10(a): a write ends the block's clean-trip streak;
            // clear the loop-bit on the L2 duplicate as well.
            if (BlockView d2 = l2s_[core]->probe(ba))
                d2.setLoopBit(false);
            if (params_.coherence)
                setPrivateState(core, ba, CohState::Modified);
        } else {
            verifier_.checkRead(ba, b1.version(), "L1");
        }
        return {now + l1c.params().readLatency, ServiceLevel::L1};
    }

    // ---- L2 ---------------------------------------------------------
    Cache &l2c = *l2s_[core];
    if (BlockView b2 = l2c.access(ba, AccessType::Read)) {
        stats_.l2Hits++;
        b2.setSite(site);
        const Cycle done =
            now + l1c.params().readLatency + l2c.params().readLatency;
        verifier_.checkRead(ba, b2.version(), "L2");

        const bool loop = b2.loopBit();
        const std::uint64_t version = b2.version();
        const CohState coh = b2.coh();

        std::uint64_t l1_version = version;
        bool l1_dirty = false;
        bool l1_loop = loop;
        CohState l1_coh = coh;
        if (type == AccessType::Write) {
            if (params_.coherence)
                upgradeForWrite(core, ba);
            l1_version = verifier_.recordWrite(ba);
            noteDemandWrite(ba);
            l1_dirty = true;
            l1_loop = false;
            if (params_.coherence)
                l1_coh = CohState::Modified;
            b2.setLoopBit(false);
        }
        Cache::InsertAttrs attrs;
        attrs.dirty = l1_dirty;
        attrs.loopBit = l1_loop;
        attrs.version = l1_version;
        attrs.coh = l1_coh;
        attrs.site = site;
        auto res = l1c.insert(ba, attrs);
        handleL1Victim(core, res.eviction, now);
        if (type == AccessType::Write && params_.coherence)
            setPrivateState(core, ba, CohState::Modified);
        return {done, ServiceLevel::L2};
    }

    // ---- LLC --------------------------------------------------------
    const std::uint64_t set = llc_->setIndexOf(ba);
    if (BlockView b3 = llc_->access(ba, AccessType::Read)) {
        stats_.llcHits++;
        for (HierarchyObserver *obs : observers_)
            obs->onLlcAccess(set, /*hit=*/true, now);
        return serviceFromLlcHit(core, ba, type, now, b3, site);
    }
    stats_.llcMisses++;
    for (HierarchyObserver *obs : observers_)
        obs->onLlcAccess(set, /*hit=*/false, now);
    policy_.noteLlcMiss(set);
    return serviceFromMemory(core, ba, type, now, site);
}

CacheHierarchy::AccessResult
CacheHierarchy::serviceFromLlcHit(CoreId core, Addr ba, AccessType type,
                                  Cycle now, BlockView blk,
                                  std::uint32_t site)
{
    const std::uint64_t set = llc_->setIndexOf(ba);
    const Cycle base = now + l1s_[core]->params().readLatency
        + l2s_[core]->params().readLatency;
    const Cycle start =
        llc_->reserveBank(ba, base, llc_->params().readLatency);
    Cycle done = start + llc_->params().readLatency;
    ServiceLevel level = ServiceLevel::Llc;

    std::uint64_t version = blk.version();
    bool peer_supplied = false;
    CohState req_state = CohState::Invalid;
    if (params_.coherence) {
        auto res =
            resolveOnLlcHit(core, ba, type == AccessType::Write, version);
        version = res.version;
        req_state = res.requesterState;
        peer_supplied = res.peerSupplied;
        if (peer_supplied) {
            done += params_.snoopLatency;
            level = ServiceLevel::Peer;
        }
    }
    verifier_.checkRead(ba, version, "LLC");

    noteFillTouched(blk);
    blk.setReferenced(true);

    // A peer owner keeps writeback responsibility; otherwise an
    // invalidate-on-hit policy transfers the dirty state upward.
    bool dirty_to_l2 = false;
    if (policy_.invalidateOnLlcHit(set)) {
        dirty_to_l2 = blk.dirty() && !peer_supplied;
        // The insertion ends its residency having been useful.
        observeInsertionOutcome(blk.site(), /*referenced=*/true);
        llc_->invalidateBlock(blk);
        stats_.llcInvalidationsOnHit++;
    }
    fillUpper(core, ba, dirty_to_l2, /*loop_bit=*/!dirty_to_l2, version,
              type, req_state, now, site);
    return {done, level};
}

CacheHierarchy::AccessResult
CacheHierarchy::serviceFromMemory(CoreId core, Addr ba, AccessType type,
                                  Cycle now, std::uint32_t site)
{
    const std::uint64_t set = llc_->setIndexOf(ba);
    const Cycle base = now + l1s_[core]->params().readLatency
        + l2s_[core]->params().readLatency + llc_->params().readLatency;

    Cycle done = 0;
    std::uint64_t version = 0;
    CohState req_state = CohState::Invalid;
    ServiceLevel level = ServiceLevel::Memory;
    bool peer = false;

    if (params_.coherence) {
        auto res = snoopOnLlcMiss(core, ba, type == AccessType::Write);
        req_state = res.requesterState;
        if (res.peerSupplied) {
            version = res.version;
            done = base + params_.snoopLatency;
            level = ServiceLevel::Peer;
            peer = true;
        }
    }
    if (!peer) {
        version = verifier_.memVersion(ba);
        done = dram_.read(ba, base);
    }
    verifier_.checkRead(ba, version, "memory");

    if (policy_.fillLlcOnMiss(set)) {
        stats_.llcDemandFills++;
        Cache::InsertAttrs attrs;
        attrs.dirty = false;
        attrs.loopBit = false;
        attrs.version = version;
        attrs.fillState = FillState::FillUntouched;
        attrs.site = site;
        insertIntoLlc(ba, attrs, WriteClass::DataFill, now);
    }
    fillUpper(core, ba, /*dirty=*/false, /*loop_bit=*/false, version, type,
              req_state, now, site);
    return {done, level};
}

void
CacheHierarchy::fillUpper(CoreId core, Addr ba, bool dirty, bool loop_bit,
                          std::uint64_t version, AccessType type,
                          CohState coh, Cycle now, std::uint32_t site)
{
    // L2 first so the L1 copy installed below stays untouched by the
    // L2 victim flow.
    Cache::InsertAttrs l2_attrs;
    l2_attrs.dirty = dirty;
    l2_attrs.loopBit = loop_bit && !dirty;
    l2_attrs.version = version;
    l2_attrs.coh = coh;
    l2_attrs.site = site;
    auto res2 = l2s_[core]->insert(ba, l2_attrs);
    handleL2Victim(core, res2.eviction, now);

    std::uint64_t l1_version = version;
    bool l1_dirty = false;
    bool l1_loop = l2_attrs.loopBit;
    CohState l1_coh = coh;
    if (type == AccessType::Write) {
        l1_version = verifier_.recordWrite(ba);
        noteDemandWrite(ba);
        l1_dirty = true;
        l1_loop = false;
        if (params_.coherence)
            l1_coh = CohState::Modified;
        if (BlockView d2 = l2s_[core]->probe(ba))
            d2.setLoopBit(false);
    }
    Cache::InsertAttrs l1_attrs;
    l1_attrs.dirty = l1_dirty;
    l1_attrs.loopBit = l1_loop;
    l1_attrs.version = l1_version;
    l1_attrs.coh = l1_coh;
    l1_attrs.site = site;
    auto res1 = l1s_[core]->insert(ba, l1_attrs);
    handleL1Victim(core, res1.eviction, now);

    if (type == AccessType::Write && params_.coherence)
        setPrivateState(core, ba, CohState::Modified);
}

void
CacheHierarchy::handleL1Victim(CoreId core, const Cache::Eviction &ev,
                               Cycle now)
{
    if (!ev.valid || !ev.dirty)
        return; // clean L1 victims are always backed below
    Cache &l2c = *l2s_[core];
    if (BlockView dup = l2c.probe(ev.blockAddr)) {
        l2c.countTagAccess();
        l2c.writeBlock(dup, ev.version);
        dup.setCoh(strongerState(dup.coh(), ev.coh));
    } else {
        Cache::InsertAttrs attrs;
        attrs.dirty = true;
        attrs.loopBit = false;
        attrs.version = ev.version;
        attrs.coh = ev.coh;
        attrs.site = ev.site;
        auto res = l2c.insert(ev.blockAddr, attrs);
        handleL2Victim(core, res.eviction, now);
    }
}

void
CacheHierarchy::handleL2Victim(CoreId core, const Cache::Eviction &ev,
                               Cycle now)
{
    (void)core;
    if (!ev.valid)
        return;
    const Addr ba = ev.blockAddr;
    const std::uint64_t set = llc_->setIndexOf(ba);

    if (ev.dirty) {
        loopTracker_.onDirtyEviction(ba);
    } else {
        loopTracker_.onCleanEviction(ba, ev.loopBit);
        for (HierarchyObserver *obs : observers_)
            obs->onCleanL2Eviction(ba, ev.loopBit);
    }

    llc_->countTagAccess(); // duplicate check
    BlockView dup = llc_->probe(ba);

    if (ev.dirty) {
        Cache::InsertAttrs attrs;
        attrs.dirty = true;
        attrs.loopBit = false;
        attrs.version = ev.version;
        attrs.site = ev.site;
        if (dup) {
            if (dup.fillState() == FillState::FillUntouched)
                stats_.llcRedundantFills++; // Fig 5: fill overwritten
            // The previous insertion's residency ends here.
            observeInsertionOutcome(dup.site(), dup.referenced());
            dup.setFillState(FillState::NotFill);
            dup.setSite(ev.site);
            dup.setReferenced(false);
            PlacementOutcome out;
            if (placement_->handleDirtyVictimHit(*llc_, dup, attrs,
                                                 out)) {
                countLlcWrite(set, WriteClass::DirtyVictim,
                              /*loop_bit=*/false, now);
                for (std::uint32_t i = 0; i < out.migrations; ++i)
                    countLlcWrite(set, WriteClass::Migration,
                                  /*loop_bit=*/false, now);
                llc_->reserveBank(ba, now,
                                  llc_->writeOccupancy(out.writeRegion));
                handleLlcEviction(out.eviction, now);
            } else {
                const MemTech region = llc_->wayTech(dup.way());
                llc_->writeBlock(dup, ev.version);
                countLlcWrite(set, WriteClass::DirtyVictim,
                              /*loop_bit=*/false, now);
                llc_->reserveBank(ba, now, llc_->writeOccupancy(region));
            }
        } else {
            insertIntoLlc(ba, attrs, WriteClass::DirtyVictim, now);
        }
        return;
    }

    // Clean victim.
    if (dup) {
        // Fig 10(b): data dropped, loop-bit refreshed in the LLC tag.
        // Note: the dedup match keeps the fill out of the dead-fill
        // statistics (noteFillTouched) but is NOT a re-reference for
        // dead-write training — only demand hits read the data.
        dup.setLoopBit(ev.loopBit);
        llc_->countTagAccess();
        noteFillTouched(dup);
        stats_.llcCleanVictimsDropped++;
        return;
    }
    if (policy_.insertCleanVictim(set)) {
        if (ev.loopBit)
            stats_.llcLoopBlockInsertions++;
        Cache::InsertAttrs attrs;
        attrs.dirty = false;
        attrs.loopBit = ev.loopBit;
        attrs.version = ev.version;
        attrs.site = ev.site;
        insertIntoLlc(ba, attrs, WriteClass::CleanVictim, now);
    }
    // else: silently dropped (non-inclusion without a duplicate).
}

void
CacheHierarchy::insertIntoLlc(Addr ba, Cache::InsertAttrs attrs,
                              WriteClass cls, Cycle now)
{
    const std::uint64_t set = llc_->setIndexOf(ba);
    if (writeFilter_ && cls != WriteClass::Migration
        && writeFilter_->shouldBypass(attrs.site, attrs.dirty)) {
        // Dead-write bypass: clean data is backed below; dirty data
        // goes straight to DRAM.
        stats_.llcBypassedWrites++;
        if (attrs.dirty) {
            dram_.write(ba, now);
            verifier_.writeback(ba, attrs.version);
        }
        return;
    }
    attrs.loopAwareVictim = policy_.loopAwareVictim(set);
    PlacementOutcome out = placement_->insert(*llc_, ba, attrs);
    countLlcWrite(set, cls, attrs.loopBit, now);
    for (std::uint32_t i = 0; i < out.migrations; ++i)
        countLlcWrite(set, WriteClass::Migration, /*loop_bit=*/false, now);
    llc_->reserveBank(ba, now, llc_->writeOccupancy(out.writeRegion));
    handleLlcEviction(out.eviction, now);
}

void
CacheHierarchy::handleLlcEviction(const Cache::Eviction &ev, Cycle now)
{
    if (!ev.valid)
        return;
    if (ev.fillState == FillState::FillUntouched)
        stats_.llcDeadFills++;
    observeInsertionOutcome(ev.site, ev.referenced);
    if (ev.dirty) {
        dram_.write(ev.blockAddr, now);
        verifier_.writeback(ev.blockAddr, ev.version);
    }
    if (policy_.backInvalidate())
        backInvalidate(ev.blockAddr, now);
}

void
CacheHierarchy::backInvalidate(Addr ba, Cycle now)
{
    std::uint64_t dirty_version = 0;
    for (std::uint32_t c = 0; c < params_.numCores; ++c) {
        for (Cache *cache : {l1s_[c].get(), l2s_[c].get()}) {
            if (BlockView blk = cache->probe(ba)) {
                if (blk.dirty())
                    dirty_version =
                        std::max(dirty_version, blk.version());
                cache->invalidateBlock(blk);
                stats_.llcBackInvalidations++;
            }
        }
    }
    if (dirty_version != 0) {
        dram_.write(ba, now);
        verifier_.writeback(ba, dirty_version);
    }
}

void
CacheHierarchy::countLlcWrite(std::uint64_t set, WriteClass cls,
                              bool loop_bit, Cycle now)
{
    switch (cls) {
      case WriteClass::DataFill:
        stats_.llcWritesDataFill++;
        break;
      case WriteClass::CleanVictim:
        stats_.llcWritesCleanVictim++;
        break;
      case WriteClass::DirtyVictim:
        stats_.llcWritesDirtyVictim++;
        break;
      case WriteClass::Migration:
        stats_.llcWritesMigration++;
        break;
    }
    policy_.noteLlcWrite(set);
    const auto bank =
        static_cast<std::uint32_t>(set % llc_->params().banks);
    for (HierarchyObserver *obs : observers_)
        obs->onLlcWrite(set, bank, cls, loop_bit, now);
}

void
CacheHierarchy::noteFillTouched(BlockView blk)
{
    if (blk.fillState() == FillState::FillUntouched)
        blk.setFillState(FillState::Touched);
}

void
CacheHierarchy::observeInsertionOutcome(std::uint32_t site,
                                        bool referenced)
{
    if (writeFilter_)
        writeFilter_->observeOutcome(site, !referenced);
}

// --- Coherence -------------------------------------------------------

void
CacheHierarchy::setPrivateState(CoreId core, Addr ba, CohState state)
{
    if (BlockView b1 = l1s_[core]->probe(ba))
        b1.setCoh(state);
    if (BlockView b2 = l2s_[core]->probe(ba))
        b2.setCoh(state);
}

CohState
CacheHierarchy::pairState(CoreId core, Addr ba) const
{
    CohState st = CohState::Invalid;
    if (BlockView b1 = l1s_[core]->probe(ba))
        st = strongerState(st, b1.coh());
    if (BlockView b2 = l2s_[core]->probe(ba))
        st = strongerState(st, b2.coh());
    return st;
}

void
CacheHierarchy::upgradeForWrite(CoreId core, Addr ba)
{
    const CohState st = pairState(core, ba);
    if (!needsUpgrade(st))
        return; // M is already exclusive-dirty; E upgrades silently.

    std::uint32_t holders = 0;
    for (std::uint32_t c = 0; c < params_.numCores; ++c) {
        if (c == core)
            continue;
        bool held = false;
        for (Cache *cache : {l1s_[c].get(), l2s_[c].get()}) {
            if (BlockView blk = cache->probe(ba)) {
                // Copies share the version the upgrading core already
                // holds (it is at least S), so no data is lost.
                cache->invalidateBlock(blk);
                held = true;
            }
        }
        if (held) {
            holders++;
            stats_.snoop.invalidations++;
        }
    }
    if (holders > 0)
        stats_.snoop.upgrades++;
}

CacheHierarchy::CohResolution
CacheHierarchy::snoopOnLlcMiss(CoreId core, Addr ba, bool is_write)
{
    CohResolution res;
    stats_.snoop.broadcasts++;
    stats_.snoop.messages += params_.numCores - 1;

    std::uint64_t best_version = 0;
    bool dirty_found = false;
    std::uint64_t clean_version = 0;
    bool clean_found = false;

    for (std::uint32_t c = 0; c < params_.numCores; ++c) {
        if (c == core)
            continue;
        BlockView c1 = l1s_[c]->probe(ba);
        BlockView c2 = l2s_[c]->probe(ba);
        if (!c1 && !c2)
            continue;
        res.anyPeerHeld = true;

        std::uint64_t ver = 0;
        bool dirty = false;
        for (BlockView blk : {c1, c2}) {
            if (!blk)
                continue;
            ver = std::max(ver, blk.version());
            dirty = dirty || blk.dirty();
        }

        if (is_write) {
            if (dirty) {
                dirty_found = true;
                best_version = std::max(best_version, ver);
                stats_.snoop.dataTransfers++;
            }
            for (Cache *cache : {l1s_[c].get(), l2s_[c].get()}) {
                if (BlockView blk = cache->probe(ba))
                    cache->invalidateBlock(blk);
            }
            stats_.snoop.invalidations++;
        } else {
            if (dirty) {
                dirty_found = true;
                best_version = std::max(best_version, ver);
                stats_.snoop.dataTransfers++;
            } else {
                clean_found = true;
                clean_version = std::max(clean_version, ver);
            }
            for (BlockView blk : {c1, c2}) {
                if (blk)
                    blk.setCoh(peerStateAfterRemoteRead(blk.coh()));
            }
        }
    }

    if (is_write) {
        res.requesterState = CohState::Modified;
    } else if (res.anyPeerHeld) {
        res.requesterState = CohState::Shared;
    } else {
        res.requesterState = CohState::Exclusive;
    }

    if (dirty_found) {
        res.peerSupplied = true;
        res.version = best_version;
    } else if (clean_found && !is_write) {
        // Clean cache-to-cache supply avoids the DRAM access.
        res.peerSupplied = true;
        res.version = clean_version;
        stats_.snoop.dataTransfers++;
    }
    return res;
}

CacheHierarchy::CohResolution
CacheHierarchy::resolveOnLlcHit(CoreId core, Addr ba, bool is_write,
                                std::uint64_t llc_version)
{
    CohResolution res;
    res.version = llc_version;

    for (std::uint32_t c = 0; c < params_.numCores; ++c) {
        if (c == core)
            continue;
        BlockView c1 = l1s_[c]->probe(ba);
        BlockView c2 = l2s_[c]->probe(ba);
        if (!c1 && !c2)
            continue;
        res.anyPeerHeld = true;

        std::uint64_t ver = 0;
        bool dirty = false;
        for (BlockView blk : {c1, c2}) {
            if (!blk)
                continue;
            ver = std::max(ver, blk.version());
            dirty = dirty || blk.dirty();
        }

        if (is_write) {
            if (dirty && ver > res.version) {
                res.version = ver;
                res.peerSupplied = true;
                stats_.snoop.dataTransfers++;
            }
            for (Cache *cache : {l1s_[c].get(), l2s_[c].get()}) {
                if (BlockView blk = cache->probe(ba))
                    cache->invalidateBlock(blk);
            }
            stats_.snoop.invalidations++;
        } else {
            if (dirty && ver > res.version) {
                res.version = ver;
                res.peerSupplied = true;
                stats_.snoop.messages++; // directed intervention
                stats_.snoop.dataTransfers++;
            }
            for (BlockView blk : {c1, c2}) {
                if (blk)
                    blk.setCoh(peerStateAfterRemoteRead(blk.coh()));
            }
        }
    }
    res.requesterState =
        is_write ? CohState::Modified : CohState::Shared;
    return res;
}

} // namespace lap
