#include "hierarchy/lap_policy.hh"

namespace lap
{

const char *
toString(LapVariant variant)
{
    switch (variant) {
      case LapVariant::Lru: return "LAP-LRU";
      case LapVariant::Loop: return "LAP-Loop";
      case LapVariant::Dueling: return "LAP";
    }
    return "?";
}

LapPolicy::LapPolicy(std::uint64_t num_sets, Cycle epoch_cycles,
                     LapVariant variant, std::uint32_t leader_period)
    : variant_(variant),
      duel_(num_sets, leader_period, epoch_cycles, /*initial_winner=*/0)
{
}

std::string
LapPolicy::name() const
{
    return toString(variant_);
}

bool
LapPolicy::loopAwareVictim(std::uint64_t set) const
{
    switch (variant_) {
      case LapVariant::Lru:
        return false;
      case LapVariant::Loop:
        return true;
      case LapVariant::Dueling:
        return duel_.choiceIsA(set); // team A = loop-aware
    }
    return false;
}

void
LapPolicy::noteLlcMiss(std::uint64_t set)
{
    if (variant_ == LapVariant::Dueling)
        duel_.addCost(set, 1.0);
}

void
LapPolicy::tick(Cycle now)
{
    if (variant_ == LapVariant::Dueling)
        duel_.tick(now);
}

} // namespace lap
