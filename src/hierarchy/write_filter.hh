/**
 * @file
 * LLC write-filter interface.
 *
 * A write filter can veto LLC insertions (bypassing clean data, or
 * sending dirty data straight to DRAM) and receives outcome feedback
 * when an insertion ends its residency. The DASCA-style dead-write
 * predictor in src/core implements this interface; the hierarchy
 * only knows the abstraction.
 */

#ifndef LAPSIM_HIERARCHY_WRITE_FILTER_HH
#define LAPSIM_HIERARCHY_WRITE_FILTER_HH

#include <cstdint>
#include <string>

namespace lap
{

/** Strategy consulted before every LLC insertion. */
class WriteFilter
{
  public:
    virtual ~WriteFilter() = default;

    virtual std::string name() const = 0;

    /** Should the insertion from this access site be bypassed? */
    virtual bool shouldBypass(std::uint32_t site, bool dirty) = 0;

    /**
     * Outcome of a completed insertion: @p was_dead when the data
     * was never re-referenced while resident.
     */
    virtual void observeOutcome(std::uint32_t site, bool was_dead) = 0;
};

} // namespace lap

#endif // LAPSIM_HIERARCHY_WRITE_FILTER_HH
