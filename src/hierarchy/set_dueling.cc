#include "hierarchy/set_dueling.hh"

#include "common/logging.hh"

namespace lap
{

SetDueling::SetDueling(std::uint64_t num_sets, std::uint32_t leader_period,
                       Cycle epoch_cycles, int initial_winner)
    : leaderPeriod_(leader_period),
      epochCycles_(epoch_cycles),
      nextEpoch_(epoch_cycles),
      winner_(initial_winner)
{
    lap_assert(leader_period >= 2, "need at least two leader slots");
    lap_assert(num_sets >= leader_period,
               "cache too small for leader period %u", leader_period);
    lap_assert(epoch_cycles > 0, "epoch must be positive");
    lap_assert(initial_winner == 0 || initial_winner == 1,
               "winner must be 0 or 1");
}

void
SetDueling::evaluateNow()
{
    if (costB_ < costA_ * (1.0 - margin_)) {
        winner_ = 1;
    } else if (costA_ < costB_ * (1.0 - margin_)) {
        winner_ = 0;
    } else if (margin_ > 0.0) {
        // Within the hysteresis band, fall back to team A (the
        // bandwidth-conserving alternative for FLEXclusion).
        winner_ = 0;
    }
    costA_ = 0.0;
    costB_ = 0.0;
    epochs_++;
}

void
SetDueling::tick(Cycle now)
{
    if (now < nextEpoch_)
        return;
    evaluateNow();
    while (nextEpoch_ <= now)
        nextEpoch_ += epochCycles_;
}

} // namespace lap
