/**
 * @file
 * Dynamic inclusion-switching baselines the paper compares against.
 *
 * FLEXclusion (Sim et al., ISCA'12) switches the LLC between
 * non-inclusion and exclusion to balance capacity benefit against
 * on-chip bandwidth: exclusion is selected only when the sampled
 * miss reduction is significant, otherwise non-inclusion is kept to
 * avoid the clean-victim insertion traffic. It is performance/
 * bandwidth-driven and unaware of asymmetric write energy.
 *
 * Dswitch (Cheng et al., tech report PSU-CSE-16-004) also duels
 * non-inclusion against exclusion but scores leader sets by
 * estimated LLC *energy* (misses weighted by a per-miss energy cost
 * plus writes weighted by the technology's write energy), making it
 * write-aware.
 *
 * Both are implemented on the shared SetDueling monitor with leader
 * sets statically pinned to one mode, exactly like the original
 * proposals' sampling sets. Like the baselines these are plain
 * (non-virtual) classes dispatched through the InclusionEngine.
 */

#ifndef LAPSIM_HIERARCHY_SWITCHING_POLICIES_HH
#define LAPSIM_HIERARCHY_SWITCHING_POLICIES_HH

#include <cstdint>
#include <string>

#include "hierarchy/set_dueling.hh"

namespace lap
{

/** Common scaffolding for noni-vs-ex switching policies. */
class SwitchingPolicy
{
  public:
    SwitchingPolicy(std::uint64_t num_sets, Cycle epoch_cycles,
                    std::uint32_t leader_period = 64);

    /** True when this set currently behaves non-inclusively. */
    bool
    nonInclusiveAt(std::uint64_t set) const
    {
        return duel_.choiceIsA(set); // team A = non-inclusion
    }

    bool fillLlcOnMiss(std::uint64_t set) const
    {
        return nonInclusiveAt(set);
    }

    bool invalidateOnLlcHit(std::uint64_t set) const
    {
        return !nonInclusiveAt(set);
    }

    bool insertCleanVictim(std::uint64_t set) const
    {
        return !nonInclusiveAt(set);
    }

    void tick(Cycle now) { duel_.tick(now); }

    SetDueling &duel() { return duel_; }
    const SetDueling *dueling() const { return &duel_; }

  protected:
    SetDueling duel_;
};

/** FLEXclusion: capacity-vs-bandwidth dueling on miss counts. */
class FlexclusionPolicy : public SwitchingPolicy
{
  public:
    /**
     * @param miss_margin  Relative miss reduction exclusion must
     *                     demonstrate to be selected (bandwidth
     *                     guard).
     */
    FlexclusionPolicy(std::uint64_t num_sets, Cycle epoch_cycles,
                      double miss_margin = 0.05,
                      std::uint32_t leader_period = 64);

    std::string name() const { return "FLEXclusion"; }

    void noteLlcMiss(std::uint64_t set) { duel_.addCost(set, 1.0); }
};

/** Dswitch: write-aware energy dueling. */
class DswitchPolicy : public SwitchingPolicy
{
  public:
    /**
     * @param write_energy_nj  LLC write energy (technology-derived).
     * @param miss_energy_nj   Estimated energy cost of an LLC miss
     *                         (DRAM dynamic energy plus the leakage
     *                         burned over the added latency).
     */
    DswitchPolicy(std::uint64_t num_sets, Cycle epoch_cycles,
                  double write_energy_nj, double miss_energy_nj,
                  std::uint32_t leader_period = 64);

    std::string name() const { return "Dswitch"; }

    void noteLlcMiss(std::uint64_t set)
    {
        duel_.addCost(set, missEnergyNj_);
    }

    void noteLlcWrite(std::uint64_t set)
    {
        duel_.addCost(set, writeEnergyNj_);
    }

  private:
    double writeEnergyNj_;
    double missEnergyNj_;
};

} // namespace lap

#endif // LAPSIM_HIERARCHY_SWITCHING_POLICIES_HH
