#include "hierarchy/switching_policies.hh"

namespace lap
{

SwitchingPolicy::SwitchingPolicy(std::uint64_t num_sets,
                                 Cycle epoch_cycles,
                                 std::uint32_t leader_period)
    : duel_(num_sets, leader_period, epoch_cycles, /*initial_winner=*/0)
{
}

FlexclusionPolicy::FlexclusionPolicy(std::uint64_t num_sets,
                                     Cycle epoch_cycles,
                                     double miss_margin,
                                     std::uint32_t leader_period)
    : SwitchingPolicy(num_sets, epoch_cycles, leader_period)
{
    duel_.setMargin(miss_margin);
}

DswitchPolicy::DswitchPolicy(std::uint64_t num_sets, Cycle epoch_cycles,
                             double write_energy_nj, double miss_energy_nj,
                             std::uint32_t leader_period)
    : SwitchingPolicy(num_sets, epoch_cycles, leader_period),
      writeEnergyNj_(write_energy_nj),
      missEnergyNj_(miss_energy_nj)
{
}

} // namespace lap
