/**
 * @file
 * Three-level cache hierarchy engine.
 *
 * Owns per-core L1D and private L2 caches, the shared banked LLC,
 * and DRAM, and drives the data flows of whatever inclusion policy
 * and placement policy it is given: demand lookups, fills, victim
 * handling (Fig 1/8), loop-bit maintenance (Fig 10), write
 * classification (Fig 15), redundant-fill tracking (Fig 5/6),
 * back-invalidation for strict inclusion, and an MOESI snooping
 * model for multi-threaded runs (Fig 20(c)). Every read is checked
 * against the data-integrity verifier.
 */

#ifndef LAPSIM_HIERARCHY_HIERARCHY_HH
#define LAPSIM_HIERARCHY_HIERARCHY_HH

#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "coherence/moesi.hh"
#include "common/types.hh"
#include "hierarchy/inclusion_engine.hh"
#include "hierarchy/loop_tracker.hh"
#include "hierarchy/observer.hh"
#include "hierarchy/placement.hh"
#include "hierarchy/write_filter.hh"
#include "mem/dram.hh"
#include "mem/verifier.hh"

namespace lap
{

/** Static configuration of the whole hierarchy. */
struct HierarchyParams
{
    std::uint32_t numCores = 4;
    CacheParams l1;   //!< Per-core L1D template.
    CacheParams l2;   //!< Per-core private L2 template.
    CacheParams llc;  //!< Shared LLC.
    DramParams dram;
    /** Model MOESI snooping between private caches. */
    bool coherence = false;
    /** Latency of a snoop resolution / cache-to-cache transfer. */
    Cycle snoopLatency = 30;
};

/** Level that serviced a demand access. */
enum class ServiceLevel : std::uint8_t
{
    L1,
    L2,
    Llc,
    Peer,
    Memory,
};

/** Hierarchy-level statistics beyond the per-cache counters. */
struct HierarchyStats
{
    std::uint64_t demandAccesses = 0;
    std::uint64_t demandReads = 0;
    std::uint64_t demandWrites = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t llcHits = 0;
    std::uint64_t llcMisses = 0;

    std::uint64_t llcWritesDataFill = 0;
    std::uint64_t llcWritesCleanVictim = 0;
    std::uint64_t llcWritesDirtyVictim = 0;
    std::uint64_t llcWritesMigration = 0;

    /** Clean victims dropped because a duplicate was present. */
    std::uint64_t llcCleanVictimsDropped = 0;
    /** Clean-victim insertions whose loop-bit was set (redundant
     *  re-insertions of identified loop-blocks, Fig 16). */
    std::uint64_t llcLoopBlockInsertions = 0;

    std::uint64_t llcDemandFills = 0;
    /** Fills overwritten by a dirty victim before any reuse. */
    std::uint64_t llcRedundantFills = 0;
    /** Fills evicted without ever being reused. */
    std::uint64_t llcDeadFills = 0;

    std::uint64_t llcBackInvalidations = 0;
    std::uint64_t llcInvalidationsOnHit = 0;

    /** Insertions vetoed by the write filter (dead-write bypass). */
    std::uint64_t llcBypassedWrites = 0;

    SnoopStats snoop;

    std::uint64_t
    llcWritesTotal() const
    {
        return llcWritesDataFill + llcWritesCleanVictim
            + llcWritesDirtyVictim + llcWritesMigration;
    }

    void reset() { *this = HierarchyStats{}; }

    void
    saveState(ByteWriter &out) const
    {
        out.u64(demandAccesses);
        out.u64(demandReads);
        out.u64(demandWrites);
        out.u64(l1Hits);
        out.u64(l2Hits);
        out.u64(llcHits);
        out.u64(llcMisses);
        out.u64(llcWritesDataFill);
        out.u64(llcWritesCleanVictim);
        out.u64(llcWritesDirtyVictim);
        out.u64(llcWritesMigration);
        out.u64(llcCleanVictimsDropped);
        out.u64(llcLoopBlockInsertions);
        out.u64(llcDemandFills);
        out.u64(llcRedundantFills);
        out.u64(llcDeadFills);
        out.u64(llcBackInvalidations);
        out.u64(llcInvalidationsOnHit);
        out.u64(llcBypassedWrites);
        snoop.saveState(out);
    }

    void
    loadState(ByteReader &in)
    {
        demandAccesses = in.u64();
        demandReads = in.u64();
        demandWrites = in.u64();
        l1Hits = in.u64();
        l2Hits = in.u64();
        llcHits = in.u64();
        llcMisses = in.u64();
        llcWritesDataFill = in.u64();
        llcWritesCleanVictim = in.u64();
        llcWritesDirtyVictim = in.u64();
        llcWritesMigration = in.u64();
        llcCleanVictimsDropped = in.u64();
        llcLoopBlockInsertions = in.u64();
        llcDemandFills = in.u64();
        llcRedundantFills = in.u64();
        llcDeadFills = in.u64();
        llcBackInvalidations = in.u64();
        llcInvalidationsOnHit = in.u64();
        llcBypassedWrites = in.u64();
        snoop.loadState(in);
    }
};

/**
 * The hierarchy engine. See file comment.
 */
class CacheHierarchy
{
  public:
    CacheHierarchy(const HierarchyParams &params, InclusionEngine policy,
                   std::unique_ptr<PlacementPolicy> placement = nullptr,
                   std::unique_ptr<WriteFilter> write_filter = nullptr);

    /** Result of one demand access. */
    struct AccessResult
    {
        Cycle doneAt = 0;
        ServiceLevel level = ServiceLevel::L1;
    };

    /**
     * Performs one demand access for a core at cycle @p now and
     * returns its completion time and service level.
     */
    AccessResult access(CoreId core, Addr byte_addr, AccessType type,
                        Cycle now, std::uint32_t site = 0);

    // --- Component access -------------------------------------------
    Cache &l1(CoreId core) { return *l1s_.at(core); }
    const Cache &l1(CoreId core) const { return *l1s_.at(core); }
    Cache &l2(CoreId core) { return *l2s_.at(core); }
    const Cache &l2(CoreId core) const { return *l2s_.at(core); }
    Cache &llc() { return *llc_; }
    const Cache &llc() const { return *llc_; }
    Dram &dram() { return dram_; }
    Verifier &verifier() { return verifier_; }
    const Verifier &verifier() const { return verifier_; }
    LoopTracker &loopTracker() { return loopTracker_; }
    const LoopTracker &loopTracker() const { return loopTracker_; }
    InclusionEngine &policy() { return policy_; }
    const InclusionEngine &policy() const { return policy_; }
    PlacementPolicy &placement() { return *placement_; }
    WriteFilter *writeFilter() { return writeFilter_.get(); }
    const WriteFilter *writeFilter() const { return writeFilter_.get(); }
    const HierarchyParams &params() const { return params_; }

    // --- Observation --------------------------------------------------
    /**
     * Registers a passive observer. Observers are notified in
     * registration order and must outlive the hierarchy or remove
     * themselves first. Re-registering an attached observer is a
     * no-op (it keeps its original position).
     */
    void addObserver(HierarchyObserver *observer);

    /** Removes an observer; unknown pointers are ignored. */
    void removeObserver(HierarchyObserver *observer);

    bool hasObserver(const HierarchyObserver *observer) const;
    std::size_t observerCount() const { return observers_.size(); }

    /** Completed demand accesses / flushes since construction.
     *  Never reset: diagnostic time base for the auditor. */
    std::uint64_t transactionCount() const { return transactionId_; }

    /** Overwrites the transaction clock from a restored snapshot. */
    void
    restoreTransactionCount(std::uint64_t count)
    {
        transactionId_ = count;
    }

    HierarchyStats &stats() { return stats_; }
    const HierarchyStats &stats() const { return stats_; }

    /** Resets all counters (cache contents are preserved). */
    void resetStats();

    /**
     * Flushes a core's private caches through the normal victim
     * flows (as a context switch or cache-flush instruction would):
     * every L1 block is evicted into the L2 path, then every L2
     * block through the policy-governed LLC path.
     */
    void flushPrivate(CoreId core, Cycle now = 0);

    /** Finalizes streak-based statistics at end of measurement. */
    void finishMeasurement() { loopTracker_.flush(); }

  private:
    // --- Demand path helpers ---------------------------------------
    AccessResult accessImpl(CoreId core, Addr byte_addr, AccessType type,
                            Cycle now, std::uint32_t site);
    AccessResult serviceFromLlcHit(CoreId core, Addr ba, AccessType type,
                                   Cycle now, BlockView blk,
                                   std::uint32_t site);
    AccessResult serviceFromMemory(CoreId core, Addr ba, AccessType type,
                                   Cycle now, std::uint32_t site);

    /** Fills L2 then L1 with a block arriving from below. */
    void fillUpper(CoreId core, Addr ba, bool dirty, bool loop_bit,
                   std::uint64_t version, AccessType type, CohState coh,
                   Cycle now, std::uint32_t site);

    // --- Victim flows ------------------------------------------------
    void handleL1Victim(CoreId core, const Cache::Eviction &ev,
                        Cycle now);
    void handleL2Victim(CoreId core, const Cache::Eviction &ev,
                        Cycle now);
    void insertIntoLlc(Addr ba, Cache::InsertAttrs attrs, WriteClass cls,
                       Cycle now);
    void handleLlcEviction(const Cache::Eviction &ev, Cycle now);
    void backInvalidate(Addr ba, Cycle now);

    /** Counts an LLC data-array write and notifies observers.
     *  @p loop_bit is the written block's loop-bit. */
    void countLlcWrite(std::uint64_t set, WriteClass cls, bool loop_bit,
                       Cycle now);
    void noteFillTouched(BlockView blk);

    /** Records a demand write with the loop tracker and observers. */
    void noteDemandWrite(Addr ba);
    /** Marks the end of a transaction and notifies observers. */
    void completeTransaction(Cycle now);

    /** Trains the write filter with an ended insertion's outcome. */
    void observeInsertionOutcome(std::uint32_t site, bool referenced);

    // --- Coherence helpers -------------------------------------------
    struct CohResolution
    {
        bool peerSupplied = false;
        bool anyPeerHeld = false;
        std::uint64_t version = 0;
        CohState requesterState = CohState::Invalid;
    };

    /** Snoop broadcast after an LLC miss. */
    CohResolution snoopOnLlcMiss(CoreId core, Addr ba, bool is_write);

    /** Ideal-filter peer resolution on an LLC hit. */
    CohResolution resolveOnLlcHit(CoreId core, Addr ba, bool is_write,
                                  std::uint64_t llc_version);

    /** Ownership upgrade for a write hitting a shared private copy. */
    void upgradeForWrite(CoreId core, Addr ba);

    /** Sets the coherence state on both private copies of a core. */
    void setPrivateState(CoreId core, Addr ba, CohState state);

    /** Strongest coherence state among a core's private copies. */
    CohState pairState(CoreId core, Addr ba) const;

    HierarchyParams params_;
    std::vector<std::unique_ptr<Cache>> l1s_;
    std::vector<std::unique_ptr<Cache>> l2s_;
    std::unique_ptr<Cache> llc_;
    Dram dram_;
    InclusionEngine policy_;
    std::unique_ptr<PlacementPolicy> placement_;
    std::unique_ptr<WriteFilter> writeFilter_;
    Verifier verifier_;
    LoopTracker loopTracker_;
    HierarchyStats stats_;
    std::vector<HierarchyObserver *> observers_;
    std::uint64_t transactionId_ = 0;
};

} // namespace lap

#endif // LAPSIM_HIERARCHY_HIERARCHY_HH
