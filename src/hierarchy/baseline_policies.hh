/**
 * @file
 * The three traditional inclusion properties (paper Fig 1).
 */

#ifndef LAPSIM_HIERARCHY_BASELINE_POLICIES_HH
#define LAPSIM_HIERARCHY_BASELINE_POLICIES_HH

#include "hierarchy/inclusion_policy.hh"

namespace lap
{

/**
 * Strictly inclusive LLC: filled on every miss, duplicates retained,
 * upper-level copies back-invalidated when the LLC evicts. Included
 * for completeness; the paper's evaluation focuses on non-inclusion
 * and exclusion since bypassing writes is impossible under strict
 * inclusion.
 */
class InclusivePolicy : public InclusionPolicy
{
  public:
    std::string name() const override { return "Inclusive"; }
    bool fillLlcOnMiss(std::uint64_t) override { return true; }
    bool invalidateOnLlcHit(std::uint64_t) override { return false; }
    bool insertCleanVictim(std::uint64_t) override { return false; }
    bool backInvalidate() const override { return true; }
};

/**
 * Non-inclusive LLC (the paper's baseline): filled on misses, no
 * back-invalidation, clean victims dropped. Writes to the LLC =
 * data-fills + dirty victims.
 */
class NonInclusivePolicy : public InclusionPolicy
{
  public:
    std::string name() const override { return "Non-inclusive"; }
    bool fillLlcOnMiss(std::uint64_t) override { return true; }
    bool invalidateOnLlcHit(std::uint64_t) override { return false; }
    bool insertCleanVictim(std::uint64_t) override { return false; }
};

/**
 * Exclusive LLC: holds only upper-level victims; hits are
 * invalidated (the block moves up), every L2 victim is inserted.
 * Writes to the LLC = clean victims + dirty victims.
 */
class ExclusivePolicy : public InclusionPolicy
{
  public:
    std::string name() const override { return "Exclusive"; }
    bool fillLlcOnMiss(std::uint64_t) override { return false; }
    bool invalidateOnLlcHit(std::uint64_t) override { return true; }
    bool insertCleanVictim(std::uint64_t) override { return true; }
};

} // namespace lap

#endif // LAPSIM_HIERARCHY_BASELINE_POLICIES_HH
