/**
 * @file
 * The three traditional inclusion properties (paper Fig 1).
 *
 * These are plain classes (no virtual base): the hierarchy holds
 * whichever policy a run uses inside an InclusionEngine
 * (hierarchy/inclusion_engine.hh) and dispatches on its mode enum.
 * The decision methods keep the per-set signature even when the
 * answer is constant so every policy answers the same questions as
 * the adaptive ones.
 */

#ifndef LAPSIM_HIERARCHY_BASELINE_POLICIES_HH
#define LAPSIM_HIERARCHY_BASELINE_POLICIES_HH

#include <cstdint>
#include <string>

namespace lap
{

/**
 * Strictly inclusive LLC: filled on every miss, duplicates retained,
 * upper-level copies back-invalidated when the LLC evicts. Included
 * for completeness; the paper's evaluation focuses on non-inclusion
 * and exclusion since bypassing writes is impossible under strict
 * inclusion.
 */
class InclusivePolicy
{
  public:
    std::string name() const { return "Inclusive"; }
    bool fillLlcOnMiss(std::uint64_t) const { return true; }
    bool invalidateOnLlcHit(std::uint64_t) const { return false; }
    bool insertCleanVictim(std::uint64_t) const { return false; }
    bool backInvalidate() const { return true; }
};

/**
 * Non-inclusive LLC (the paper's baseline): filled on misses, no
 * back-invalidation, clean victims dropped. Writes to the LLC =
 * data-fills + dirty victims.
 */
class NonInclusivePolicy
{
  public:
    std::string name() const { return "Non-inclusive"; }
    bool fillLlcOnMiss(std::uint64_t) const { return true; }
    bool invalidateOnLlcHit(std::uint64_t) const { return false; }
    bool insertCleanVictim(std::uint64_t) const { return false; }
};

/**
 * Exclusive LLC: holds only upper-level victims; hits are
 * invalidated (the block moves up), every L2 victim is inserted.
 * Writes to the LLC = clean victims + dirty victims.
 */
class ExclusivePolicy
{
  public:
    std::string name() const { return "Exclusive"; }
    bool fillLlcOnMiss(std::uint64_t) const { return false; }
    bool invalidateOnLlcHit(std::uint64_t) const { return true; }
    bool insertCleanVictim(std::uint64_t) const { return true; }
};

} // namespace lap

#endif // LAPSIM_HIERARCHY_BASELINE_POLICIES_HH
