/**
 * @file
 * Loop-block instrumentation (paper Section II-C1, Fig 4).
 *
 * A *loop-block* is a block that travels between L2 and the LLC
 * without being modified; its clean trip count (CTC) is the number
 * of consecutive clean L2 evictions it experiences before a write
 * ends the streak. This tracker records, for every address, the
 * current streak of clean trips, and on streak end (a write, or the
 * end of simulation) samples the streak into CTC buckets
 * {CTC=1, 1<CTC<5, CTC>=5} weighted by the number of evictions the
 * streak contributed. Dividing by total L2 evictions yields the
 * paper's loop-block distribution: the share of L2 eviction traffic
 * that an exclusive LLC turns into redundant clean insertions.
 */

#ifndef LAPSIM_HIERARCHY_LOOP_TRACKER_HH
#define LAPSIM_HIERARCHY_LOOP_TRACKER_HH

#include <cstdint>

#include "common/flat_map.hh"
#include "common/serial.hh"
#include "common/types.hh"

namespace lap
{

/** Clean-trip-count statistics collector. */
class LoopTracker
{
  public:
    /**
     * Records a clean L2 eviction.
     *
     * Only an eviction of a block that returned to L2 through an LLC
     * hit (loop-bit set, Fig 10(c)) completes a clean *trip*: the
     * first clean descent of a fresh block is not a loop. A clean
     * eviction of a from-memory incarnation ends any earlier streak.
     */
    void
    onCleanEviction(Addr block_addr, bool from_llc_hit)
    {
        totalEvictions_++;
        if (from_llc_hit) {
            streak_[block_addr]++;
        } else {
            endStreak(block_addr);
        }
    }

    /** Records a dirty L2 eviction (never part of a clean streak). */
    void onDirtyEviction(Addr) { totalEvictions_++; }

    /** Records a demand write: ends the block's clean streak. */
    void onWrite(Addr block_addr) { endStreak(block_addr); }

    /** Flushes all outstanding streaks (call at end of measurement). */
    void
    flush()
    {
        streak_.forEach([this](Addr, const std::uint32_t &len) {
            if (len > 0)
                sample(len);
        });
        streak_.clear();
    }

    /** Clears all statistics and outstanding streaks. */
    void
    reset()
    {
        streak_.clear();
        evictionsCtc1_ = 0;
        evictionsCtcMid_ = 0;
        evictionsCtcHigh_ = 0;
        totalEvictions_ = 0;
    }

    // --- Results (valid after flush()) -----------------------------
    std::uint64_t totalEvictions() const { return totalEvictions_; }

    /** Eviction share from streaks with CTC == 1. */
    double ctc1Fraction() const { return frac(evictionsCtc1_); }

    /** Eviction share from streaks with 1 < CTC < 5. */
    double ctcMidFraction() const { return frac(evictionsCtcMid_); }

    /** Eviction share from streaks with CTC >= 5. */
    double ctcHighFraction() const { return frac(evictionsCtcHigh_); }

    /** Total loop-block share of L2 eviction traffic. */
    double
    loopFraction() const
    {
        return frac(evictionsCtc1_ + evictionsCtcMid_
                    + evictionsCtcHigh_);
    }

    /** Serializes streaks and CTC buckets (checkpointing). */
    void
    saveState(ByteWriter &out) const
    {
        out.u64(streak_.size());
        streak_.forEach([&out](Addr a, const std::uint32_t &len) {
            out.u64(a);
            out.u32(len);
        });
        out.u64(evictionsCtc1_);
        out.u64(evictionsCtcMid_);
        out.u64(evictionsCtcHigh_);
        out.u64(totalEvictions_);
    }

    void
    loadState(ByteReader &in)
    {
        streak_.clear();
        const std::uint64_t count = in.u64();
        for (std::uint64_t i = 0; i < count; ++i) {
            const Addr a = in.u64();
            streak_[a] = in.u32();
        }
        evictionsCtc1_ = in.u64();
        evictionsCtcMid_ = in.u64();
        evictionsCtcHigh_ = in.u64();
        totalEvictions_ = in.u64();
    }

  private:
    void
    endStreak(Addr block_addr)
    {
        const std::uint32_t *len = streak_.find(block_addr);
        if (!len)
            return;
        if (*len > 0)
            sample(*len);
        streak_.erase(block_addr);
    }

    void
    sample(std::uint32_t streak)
    {
        if (streak == 1)
            evictionsCtc1_ += 1;
        else if (streak < 5)
            evictionsCtcMid_ += streak;
        else
            evictionsCtcHigh_ += streak;
    }

    double
    frac(std::uint64_t n) const
    {
        return totalEvictions_ == 0
            ? 0.0
            : static_cast<double>(n)
                / static_cast<double>(totalEvictions_);
    }

    AddrMap<std::uint32_t> streak_;
    std::uint64_t evictionsCtc1_ = 0;
    std::uint64_t evictionsCtcMid_ = 0;
    std::uint64_t evictionsCtcHigh_ = 0;
    std::uint64_t totalEvictions_ = 0;
};

} // namespace lap

#endif // LAPSIM_HIERARCHY_LOOP_TRACKER_HH
