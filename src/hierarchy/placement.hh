/**
 * @file
 * Data-placement strategy for the (optionally hybrid) LLC.
 *
 * Uniform LLCs use DefaultPlacement, which simply installs blocks
 * across all ways. Hybrid SRAM/STT-RAM LLCs may use the Lhybrid
 * placement family from src/core, which decides which technology
 * region receives a block, performs SRAM->STT migrations of
 * loop-blocks, and redirects dirty write-hits away from STT-RAM
 * (paper Section IV, Fig 11).
 */

#ifndef LAPSIM_HIERARCHY_PLACEMENT_HH
#define LAPSIM_HIERARCHY_PLACEMENT_HH

#include <string>

#include "cache/cache.hh"

namespace lap
{

/** Result of a placement decision. */
struct PlacementOutcome
{
    /** Final eviction leaving the LLC (possibly invalid). */
    Cache::Eviction eviction;
    /** Region the incoming block's data was written into. */
    MemTech writeRegion = MemTech::SRAM;
    /** SRAM->STT migrations performed while making room. */
    std::uint32_t migrations = 0;
};

/** Strategy deciding where an LLC insertion lands. */
class PlacementPolicy
{
  public:
    virtual ~PlacementPolicy() = default;

    virtual std::string name() const = 0;

    /** Installs a block (the block is absent from the LLC). */
    virtual PlacementOutcome insert(Cache &llc, Addr block_addr,
                                    const Cache::InsertAttrs &attrs) = 0;

    /**
     * Optionally intercepts a dirty L2 victim that hit a duplicate.
     * Returning true means the placement handled the write (e.g.
     * Winv: invalidate the STT copy and re-insert into SRAM) and
     * filled @p out; returning false lets the hierarchy update the
     * duplicate in place.
     */
    virtual bool
    handleDirtyVictimHit(Cache &llc, BlockView dup,
                         const Cache::InsertAttrs &attrs,
                         PlacementOutcome &out)
    {
        (void)llc;
        (void)dup;
        (void)attrs;
        (void)out;
        return false;
    }
};

/** Installs across all ways; the only choice for uniform LLCs. */
class DefaultPlacement : public PlacementPolicy
{
  public:
    std::string name() const override { return "default"; }

    PlacementOutcome
    insert(Cache &llc, Addr block_addr,
           const Cache::InsertAttrs &attrs) override
    {
        PlacementOutcome out;
        auto result = llc.insert(block_addr, attrs);
        out.eviction = result.eviction;
        out.writeRegion = result.region;
        return out;
    }
};

} // namespace lap

#endif // LAPSIM_HIERARCHY_PLACEMENT_HH
