/**
 * @file
 * Inclusion-property strategy interface.
 *
 * The paper (Fig 8) characterizes an inclusion property by three
 * decisions: whether the LLC copy is invalidated on an LLC hit,
 * whether the LLC is filled on an LLC miss, and whether a clean L2
 * victim is written into the LLC. Adaptive policies (FLEXclusion,
 * Dswitch, LAP with set-dueling) answer per LLC set so that leader
 * sets can statically exercise each alternative, and receive
 * miss/write notifications plus a cycle tick to rotate epochs.
 *
 *                 | invalidate on hit | fill on miss | clean writeback
 *   non-inclusive |        no         |     yes      |       no
 *   exclusive     |        yes        |     no       |       yes
 *   LAP           |        no         |     no       |  yes if absent
 */

#ifndef LAPSIM_HIERARCHY_INCLUSION_POLICY_HH
#define LAPSIM_HIERARCHY_INCLUSION_POLICY_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace lap
{

class SetDueling;

/** Strategy consulted by CacheHierarchy at the L2<->LLC boundary. */
class InclusionPolicy
{
  public:
    virtual ~InclusionPolicy() = default;

    virtual std::string name() const = 0;

    /** Fill the LLC with the block fetched on an LLC miss? */
    virtual bool fillLlcOnMiss(std::uint64_t set) = 0;

    /** Invalidate the LLC copy when it services an L2 miss? */
    virtual bool invalidateOnLlcHit(std::uint64_t set) = 0;

    /**
     * Insert a clean L2 victim that has no LLC duplicate? (A clean
     * victim with a duplicate is always dropped: rewriting identical
     * data is never useful.)
     */
    virtual bool insertCleanVictim(std::uint64_t set) = 0;

    /** Strict inclusion: back-invalidate upper copies on LLC evict. */
    virtual bool backInvalidate() const { return false; }

    /**
     * Use the loop-block-aware victim priority (invalid, then LRU
     * non-loop, then LRU loop — paper Fig 9) when evicting in this
     * LLC set?
     */
    virtual bool loopAwareVictim(std::uint64_t set)
    {
        (void)set;
        return false;
    }

    /** Notification: a demand access missed in this LLC set. */
    virtual void noteLlcMiss(std::uint64_t set) { (void)set; }

    /** Notification: a block-sized write was performed in this set. */
    virtual void noteLlcWrite(std::uint64_t set) { (void)set; }

    /** Periodic tick with the current maximum core cycle. */
    virtual void tick(Cycle now) { (void)now; }

    /** The policy's set-dueling monitor, if it has one (read-only
     *  introspection for statistics probes). */
    virtual const SetDueling *dueling() const { return nullptr; }
};

} // namespace lap

#endif // LAPSIM_HIERARCHY_INCLUSION_POLICY_HH
