/**
 * @file
 * Devirtualized inclusion-property dispatch.
 *
 * The paper (Fig 8) characterizes an inclusion property by three
 * decisions: whether the LLC copy is invalidated on an LLC hit,
 * whether the LLC is filled on an LLC miss, and whether a clean L2
 * victim is written into the LLC. Adaptive policies (FLEXclusion,
 * Dswitch, LAP with set-dueling) answer per LLC set so that leader
 * sets can statically exercise each alternative, and receive
 * miss/write notifications plus a cycle tick to rotate epochs.
 *
 *                 | invalidate on hit | fill on miss | clean writeback
 *   non-inclusive |        no         |     yes      |       no
 *   exclusive     |        yes        |     no       |       yes
 *   LAP           |        no         |     no       |  yes if absent
 *
 * These decisions used to be virtual calls on an InclusionPolicy
 * base, three-plus per demand access through a pointer the branch
 * predictor could not resolve. The policy is fixed for a run, so the
 * InclusionEngine holds the concrete policy in a std::variant and
 * answers each question with a switch on a mode enum: the static
 * policies' answers become compile-time constants and the adaptive
 * policies' set-dueling lookups are direct calls. The hierarchy owns
 * the engine by value — no allocation, no pointer chase.
 */

#ifndef LAPSIM_HIERARCHY_INCLUSION_ENGINE_HH
#define LAPSIM_HIERARCHY_INCLUSION_ENGINE_HH

#include <cstdint>
#include <string>
#include <variant>

#include "common/types.hh"
#include "hierarchy/baseline_policies.hh"
#include "hierarchy/lap_policy.hh"
#include "hierarchy/switching_policies.hh"

namespace lap
{

/** Value-semantic wrapper dispatching to one concrete policy. */
class InclusionEngine
{
  public:
    explicit InclusionEngine(InclusivePolicy p)
        : mode_(Mode::Inclusive), impl_(std::move(p))
    {
    }

    explicit InclusionEngine(NonInclusivePolicy p)
        : mode_(Mode::NonInclusive), impl_(std::move(p))
    {
    }

    explicit InclusionEngine(ExclusivePolicy p)
        : mode_(Mode::Exclusive), impl_(std::move(p))
    {
    }

    explicit InclusionEngine(FlexclusionPolicy p)
        : mode_(Mode::Flexclusion), impl_(std::move(p))
    {
    }

    explicit InclusionEngine(DswitchPolicy p)
        : mode_(Mode::Dswitch), impl_(std::move(p))
    {
    }

    explicit InclusionEngine(LapPolicy p)
        : mode_(Mode::Lap), impl_(std::move(p))
    {
    }

    std::string
    name() const
    {
        switch (mode_) {
          case Mode::Inclusive: return as<InclusivePolicy>().name();
          case Mode::NonInclusive:
            return as<NonInclusivePolicy>().name();
          case Mode::Exclusive: return as<ExclusivePolicy>().name();
          case Mode::Flexclusion:
            return as<FlexclusionPolicy>().name();
          case Mode::Dswitch: return as<DswitchPolicy>().name();
          case Mode::Lap: return as<LapPolicy>().name();
        }
        return "?";
    }

    /** Fill the LLC with the block fetched on an LLC miss? */
    bool
    fillLlcOnMiss(std::uint64_t set) const
    {
        switch (mode_) {
          case Mode::Inclusive: return true;
          case Mode::NonInclusive: return true;
          case Mode::Exclusive: return false;
          case Mode::Flexclusion:
            return as<FlexclusionPolicy>().fillLlcOnMiss(set);
          case Mode::Dswitch:
            return as<DswitchPolicy>().fillLlcOnMiss(set);
          case Mode::Lap: return false;
        }
        return false;
    }

    /** Invalidate the LLC copy when it services an L2 miss? */
    bool
    invalidateOnLlcHit(std::uint64_t set) const
    {
        switch (mode_) {
          case Mode::Inclusive: return false;
          case Mode::NonInclusive: return false;
          case Mode::Exclusive: return true;
          case Mode::Flexclusion:
            return as<FlexclusionPolicy>().invalidateOnLlcHit(set);
          case Mode::Dswitch:
            return as<DswitchPolicy>().invalidateOnLlcHit(set);
          case Mode::Lap: return false;
        }
        return false;
    }

    /**
     * Insert a clean L2 victim that has no LLC duplicate? (A clean
     * victim with a duplicate is always dropped: rewriting identical
     * data is never useful.)
     */
    bool
    insertCleanVictim(std::uint64_t set) const
    {
        switch (mode_) {
          case Mode::Inclusive: return false;
          case Mode::NonInclusive: return false;
          case Mode::Exclusive: return true;
          case Mode::Flexclusion:
            return as<FlexclusionPolicy>().insertCleanVictim(set);
          case Mode::Dswitch:
            return as<DswitchPolicy>().insertCleanVictim(set);
          case Mode::Lap: return true;
        }
        return false;
    }

    /** Strict inclusion: back-invalidate upper copies on LLC evict. */
    bool backInvalidate() const { return mode_ == Mode::Inclusive; }

    /**
     * Use the loop-block-aware victim priority (invalid, then LRU
     * non-loop, then LRU loop — paper Fig 9) when evicting in this
     * LLC set?
     */
    bool
    loopAwareVictim(std::uint64_t set) const
    {
        if (mode_ != Mode::Lap)
            return false;
        return as<LapPolicy>().loopAwareVictim(set);
    }

    /** Notification: a demand access missed in this LLC set. */
    void
    noteLlcMiss(std::uint64_t set)
    {
        switch (mode_) {
          case Mode::Flexclusion:
            as<FlexclusionPolicy>().noteLlcMiss(set);
            break;
          case Mode::Dswitch:
            as<DswitchPolicy>().noteLlcMiss(set);
            break;
          case Mode::Lap:
            as<LapPolicy>().noteLlcMiss(set);
            break;
          default:
            break;
        }
    }

    /** Notification: a block-sized write was performed in this set. */
    void
    noteLlcWrite(std::uint64_t set)
    {
        if (mode_ == Mode::Dswitch)
            as<DswitchPolicy>().noteLlcWrite(set);
    }

    /** Periodic tick with the current maximum core cycle. */
    void
    tick(Cycle now)
    {
        switch (mode_) {
          case Mode::Flexclusion:
            as<FlexclusionPolicy>().tick(now);
            break;
          case Mode::Dswitch:
            as<DswitchPolicy>().tick(now);
            break;
          case Mode::Lap:
            as<LapPolicy>().tick(now);
            break;
          default:
            break;
        }
    }

    /** The policy's set-dueling monitor, if it has one (read-only
     *  introspection for statistics probes). */
    const SetDueling *
    dueling() const
    {
        switch (mode_) {
          case Mode::Flexclusion:
            return as<FlexclusionPolicy>().dueling();
          case Mode::Dswitch: return as<DswitchPolicy>().dueling();
          case Mode::Lap: return as<LapPolicy>().dueling();
          default: return nullptr;
        }
    }

    /** Concrete policy access, or nullptr when another is held. */
    template <typename T>
    T *
    tryAs()
    {
        return std::get_if<T>(&impl_);
    }

    template <typename T>
    const T *
    tryAs() const
    {
        return std::get_if<T>(&impl_);
    }

  private:
    enum class Mode : std::uint8_t
    {
        Inclusive,
        NonInclusive,
        Exclusive,
        Flexclusion,
        Dswitch,
        Lap,
    };

    template <typename T>
    T &
    as()
    {
        return *std::get_if<T>(&impl_);
    }

    template <typename T>
    const T &
    as() const
    {
        return *std::get_if<T>(&impl_);
    }

    Mode mode_;
    std::variant<InclusivePolicy, NonInclusivePolicy, ExclusivePolicy,
                 FlexclusionPolicy, DswitchPolicy, LapPolicy>
        impl_;
};

} // namespace lap

#endif // LAPSIM_HIERARCHY_INCLUSION_ENGINE_HH
