/**
 * @file
 * Set-dueling monitor (Qureshi et al., ISCA'07), shared by every
 * adaptive policy in the simulator.
 *
 * Sets with index % leaderPeriod == 0 are leaders for alternative A,
 * index % leaderPeriod == 1 leaders for alternative B (the paper
 * dedicates 1/64 of sets to each team), and all remaining sets
 * follow the current winner. Each leader team accumulates a cost
 * (misses, or estimated energy); at the end of every epoch the
 * follower choice switches to the cheaper team and the counters
 * reset.
 */

#ifndef LAPSIM_HIERARCHY_SET_DUELING_HH
#define LAPSIM_HIERARCHY_SET_DUELING_HH

#include <cstdint>

#include "common/serial.hh"
#include "common/types.hh"

namespace lap
{

/** Two-alternative set-dueling controller. */
class SetDueling
{
  public:
    enum class Team : std::uint8_t
    {
        LeaderA,
        LeaderB,
        Follower,
    };

    /**
     * @param num_sets       Number of LLC sets.
     * @param leader_period  One leader per team every this many sets
     *                       (64 gives the paper's 1/64 + 1/64 split).
     * @param epoch_cycles   Duel evaluation period (paper: 10M
     *                       cycles; scaled down by default configs).
     * @param initial_winner Team followers start on (0 = A).
     */
    SetDueling(std::uint64_t num_sets, std::uint32_t leader_period,
               Cycle epoch_cycles, int initial_winner = 0);

    /** Team of an LLC set. */
    Team
    teamOf(std::uint64_t set) const
    {
        const std::uint64_t slot = set % leaderPeriod_;
        if (slot == 0)
            return Team::LeaderA;
        if (slot == 1)
            return Team::LeaderB;
        return Team::Follower;
    }

    /** True when followers should currently behave like team A. */
    bool aWins() const { return winner_ == 0; }

    /** Effective choice for a set: true = behave like team A. */
    bool
    choiceIsA(std::uint64_t set) const
    {
        switch (teamOf(set)) {
          case Team::LeaderA: return true;
          case Team::LeaderB: return false;
          case Team::Follower: return aWins();
        }
        return true;
    }

    /** Accumulates cost against the set's team (leaders only). */
    void
    addCost(std::uint64_t set, double cost)
    {
        switch (teamOf(set)) {
          case Team::LeaderA:
            costA_ += cost;
            break;
          case Team::LeaderB:
            costB_ += cost;
            break;
          case Team::Follower:
            break;
        }
    }

    /** Rotates the epoch when `now` passed the epoch boundary. */
    void tick(Cycle now);

    /** Forces an immediate epoch evaluation (used by tests). */
    void evaluateNow();

    double costA() const { return costA_; }
    double costB() const { return costB_; }
    int winner() const { return winner_; }
    std::uint64_t epochsElapsed() const { return epochs_; }

    /**
     * Hysteresis margin: team B must beat team A by this relative
     * margin to win (and vice versa), damping oscillation. 0 by
     * default; FLEXclusion configures a bandwidth-guard margin.
     */
    void setMargin(double margin) { margin_ = margin; }

    /** Serializes the duel's mutable state (checkpointing). */
    void
    saveState(ByteWriter &out) const
    {
        out.u64(nextEpoch_);
        out.f64(costA_);
        out.f64(costB_);
        out.f64(margin_);
        out.u32(static_cast<std::uint32_t>(winner_));
        out.u64(epochs_);
    }

    void
    loadState(ByteReader &in)
    {
        nextEpoch_ = in.u64();
        costA_ = in.f64();
        costB_ = in.f64();
        margin_ = in.f64();
        winner_ = static_cast<int>(in.u32());
        epochs_ = in.u64();
    }

  private:
    std::uint32_t leaderPeriod_; // lapsim-lint: transient (config)
    Cycle epochCycles_;          // lapsim-lint: transient (config)
    Cycle nextEpoch_;
    double costA_ = 0.0;
    double costB_ = 0.0;
    double margin_ = 0.0;
    int winner_;
    std::uint64_t epochs_ = 0;
};

} // namespace lap

#endif // LAPSIM_HIERARCHY_SET_DUELING_HH
