/**
 * @file
 * Minimal TCP transport for the campaign fabric.
 *
 * RAII wrappers over POSIX stream sockets, just deep enough for the
 * daemon/worker/client conversation: a listener that can bind an
 * ephemeral port (port 0) and report the kernel-chosen one, and a
 * connection type that sends and receives whole protocol frames.
 * Frame reception is incremental (header first, then payload +
 * CRC trailer) so a malformed peer is rejected after at most one
 * bounded allocation; all validation diagnostics come from
 * fabric/protocol.hh and are catchable under ScopedFatalThrow.
 *
 * Connections are safe to *send on* from multiple threads (internal
 * send lock — the scheduler pushes assignments and result rows from
 * whichever thread finished a job) but must be *received on* by one
 * thread only, which is how the daemon and worker loops are shaped.
 */

#ifndef LAPSIM_FABRIC_SOCKET_HH
#define LAPSIM_FABRIC_SOCKET_HH

#include <cstdint>
#include <string>

#include "common/mutex.hh"
#include "fabric/protocol.hh"

namespace lap
{
namespace fabric
{

/** One connected stream socket (move-only; closes on destruction). */
class TcpConnection
{
  public:
    TcpConnection() = default;
    explicit TcpConnection(int fd) : fd_(fd) {}
    ~TcpConnection();

    TcpConnection(TcpConnection &&other) noexcept;
    TcpConnection &operator=(TcpConnection &&other) noexcept;
    TcpConnection(const TcpConnection &) = delete;
    TcpConnection &operator=(const TcpConnection &) = delete;

    bool valid() const { return fd_ >= 0; }

    /**
     * Sends one whole frame. Returns false when the peer is gone
     * (connection reset / broken pipe); fatal on unexpected socket
     * errors. Callable from any thread.
     */
    bool sendFrame(MsgType type, const ByteWriter &payload)
        LAP_EXCLUDES(send_mutex_);

    /**
     * Receives one whole frame. Returns false on clean EOF or peer
     * reset (the connection is finished); fatal (catchable) on a
     * malformed frame. Single receiver thread only.
     */
    bool recvFrame(Frame &frame);

    /**
     * Shuts the socket down in both directions, waking any thread
     * blocked in recvFrame() on it. Callable from any thread; used
     * by the daemon to kick stale workers and to unwind its
     * connection threads at stop().
     */
    void kick();

    void close();

  private:
    bool sendAll(const char *data, std::size_t size)
        LAP_REQUIRES(send_mutex_);
    bool recvExact(char *data, std::size_t size);

    /** Owned descriptor; -1 when empty. Guarded by convention: only
     *  moved while no other thread uses the connection. */
    // lapsim-lint: allow(thread-unguarded-field)
    int fd_ = -1;
    Mutex send_mutex_;
};

/** Listening socket bound to a loopback/interface address. */
class TcpListener
{
  public:
    /**
     * Binds and listens on @p host:@p port (port 0 picks a free
     * port). Fatal on bind failures (address in use, bad host).
     */
    TcpListener(const std::string &host, std::uint16_t port);
    ~TcpListener();

    TcpListener(const TcpListener &) = delete;
    TcpListener &operator=(const TcpListener &) = delete;

    /** The actually bound port (resolves a port-0 bind). */
    std::uint16_t port() const { return port_; }

    /**
     * Accepts one connection; blocks. Returns an invalid connection
     * when the listener was closed (daemon stop).
     */
    TcpConnection accept();

    /** Closes the listening socket, unblocking accept(). */
    void close();

  private:
    /** Owned descriptor; close() is the only cross-thread access
     *  and ::close on a blocking accept is the intended wake-up. */
    // lapsim-lint: allow(thread-unguarded-field)
    int fd_ = -1;
    /** Immutable after the constructor's bind resolves it. */
    // lapsim-lint: allow(thread-unguarded-field)
    std::uint16_t port_ = 0;
    Mutex close_mutex_;
};

/**
 * Connects to @p host:@p port. Returns an invalid connection on
 * refusal/timeout (callers retry with backoff); fatal on unusable
 * addresses.
 */
TcpConnection connectTo(const std::string &host, std::uint16_t port);

/** Splits "host:port" (fatal on malformed input). Port 0 is only
 *  accepted with @p allow_zero (a listener's ephemeral-port bind —
 *  never a valid connect target). */
void splitHostPort(const std::string &text, std::string &host,
                   std::uint16_t &port, bool allow_zero = false);

} // namespace fabric
} // namespace lap

#endif // LAPSIM_FABRIC_SOCKET_HH
