#include "fabric/protocol.hh"

#include "common/logging.hh"
#include "sim/checkpoint.hh" // crc32()

namespace lap
{
namespace fabric
{

namespace
{

constexpr char kMagic[4] = {'L', 'A', 'P', 'F'};

bool
knownType(std::uint8_t value)
{
    return value >= static_cast<std::uint8_t>(MsgType::ClientHello)
        && value <= static_cast<std::uint8_t>(MsgType::Shutdown);
}

void
vecStrEncode(ByteWriter &out, const std::vector<std::string> &v)
{
    out.u64(v.size());
    for (const std::string &s : v)
        out.str(s);
}

std::vector<std::string>
vecStrDecode(ByteReader &in)
{
    const std::uint64_t n = in.u64();
    // Every element needs at least its 8-byte length prefix; this
    // bounds a hostile count before any allocation happens.
    if (n > in.remaining() / 8)
        lap_fatal("fabric frame truncated: %llu strings declared "
                  "but only %zu bytes remain",
                  static_cast<unsigned long long>(n), in.remaining());
    std::vector<std::string> v;
    v.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
        v.push_back(in.str());
    return v;
}

} // namespace

const char *
toString(MsgType type)
{
    switch (type) {
      case MsgType::ClientHello: return "client-hello";
      case MsgType::WorkerHello: return "worker-hello";
      case MsgType::Submit: return "submit";
      case MsgType::SubmitAck: return "submit-ack";
      case MsgType::Row: return "row";
      case MsgType::CampaignDone: return "campaign-done";
      case MsgType::Error: return "error";
      case MsgType::Assign: return "assign";
      case MsgType::Ready: return "ready";
      case MsgType::Heartbeat: return "heartbeat";
      case MsgType::Result: return "result";
      case MsgType::Query: return "query";
      case MsgType::QueryAck: return "query-ack";
      case MsgType::Shutdown: return "shutdown";
    }
    return "?";
}

std::string
encodeFrame(MsgType type, const ByteWriter &payload)
{
    lap_assert(payload.size() <= kMaxFramePayload,
               "fabric frame payload of %zu bytes exceeds the %u "
               "byte protocol bound",
               payload.size(), kMaxFramePayload);
    ByteWriter frame;
    for (char ch : kMagic)
        frame.u8(static_cast<std::uint8_t>(ch));
    frame.u8(kFabricProtocolVersion);
    frame.u8(static_cast<std::uint8_t>(type));
    frame.u32(static_cast<std::uint32_t>(payload.size()));
    std::string bytes = frame.data();
    bytes += payload.data();
    ByteWriter trailer;
    trailer.u32(crc32(payload.data().data(), payload.size()));
    bytes += trailer.data();
    return bytes;
}

FrameHeader
decodeFrameHeader(const char *data, std::size_t size)
{
    if (size < kFrameHeaderBytes)
        lap_fatal("fabric frame truncated: %zu header bytes, "
                  "need %zu",
                  size, kFrameHeaderBytes);
    ByteReader in(data, size);
    for (char expected : kMagic) {
        if (in.u8() != static_cast<std::uint8_t>(expected))
            lap_fatal("fabric frame has bad magic (not \"LAPF\"); "
                      "peer is not speaking the fabric protocol");
    }
    const std::uint8_t version = in.u8();
    if (version != kFabricProtocolVersion)
        lap_fatal("fabric frame has unsupported protocol version %u "
                  "(this build speaks %u)",
                  version, kFabricProtocolVersion);
    const std::uint8_t type = in.u8();
    if (!knownType(type))
        lap_fatal("fabric frame has unknown message type %u", type);
    FrameHeader header;
    header.type = static_cast<MsgType>(type);
    header.payloadSize = in.u32();
    if (header.payloadSize > kMaxFramePayload)
        lap_fatal("fabric frame declares an oversized payload of %u "
                  "bytes (bound %u)",
                  header.payloadSize, kMaxFramePayload);
    return header;
}

void
verifyFramePayload(const char *payload, std::uint32_t size,
                   std::uint32_t wire_crc)
{
    const std::uint32_t computed = crc32(payload, size);
    if (computed != wire_crc)
        lap_fatal("fabric frame payload fails its CRC "
                  "(stored %08x, computed %08x); dropping the "
                  "corrupt frame",
                  wire_crc, computed);
}

Frame
decodeFrame(const std::string &bytes)
{
    const FrameHeader header =
        decodeFrameHeader(bytes.data(), bytes.size());
    const std::size_t total = kFrameHeaderBytes + header.payloadSize
        + kFrameTrailerBytes;
    if (bytes.size() < total)
        lap_fatal("fabric frame truncated: %zu bytes on the wire, "
                  "header declares %zu",
                  bytes.size(), total);
    if (bytes.size() > total)
        lap_fatal("fabric frame has %zu trailing bytes",
                  bytes.size() - total);
    ByteReader trailer(
        bytes.data() + kFrameHeaderBytes + header.payloadSize,
        kFrameTrailerBytes);
    verifyFramePayload(bytes.data() + kFrameHeaderBytes,
                       header.payloadSize, trailer.u32());
    Frame frame;
    frame.type = header.type;
    frame.payload.assign(bytes.data() + kFrameHeaderBytes,
                         header.payloadSize);
    return frame;
}

void
HelloMsg::encode(ByteWriter &out) const
{
    out.str(name);
}

HelloMsg
HelloMsg::decode(ByteReader &in)
{
    HelloMsg msg;
    msg.name = in.str();
    in.expectEnd();
    return msg;
}

void
SubmitMsg::encode(ByteWriter &out) const
{
    out.str(specText);
    vecStrEncode(out, doneHashes);
    out.u64(checkpointEvery);
}

SubmitMsg
SubmitMsg::decode(ByteReader &in)
{
    SubmitMsg msg;
    msg.specText = in.str();
    msg.doneHashes = vecStrDecode(in);
    msg.checkpointEvery = in.u64();
    in.expectEnd();
    return msg;
}

void
SubmitAckMsg::encode(ByteWriter &out) const
{
    out.u64(campaignId);
    out.u64(jobCount);
    out.u64(skippedJobs);
}

SubmitAckMsg
SubmitAckMsg::decode(ByteReader &in)
{
    SubmitAckMsg msg;
    msg.campaignId = in.u64();
    msg.jobCount = in.u64();
    msg.skippedJobs = in.u64();
    in.expectEnd();
    return msg;
}

void
RowMsg::encode(ByteWriter &out) const
{
    out.u64(campaignId);
    out.str(line);
}

RowMsg
RowMsg::decode(ByteReader &in)
{
    RowMsg msg;
    msg.campaignId = in.u64();
    msg.line = in.str();
    in.expectEnd();
    return msg;
}

void
CampaignDoneMsg::encode(ByteWriter &out) const
{
    out.u64(campaignId);
    out.u64(ok);
    out.u64(failed);
    out.u64(skipped);
    out.str(summary);
}

CampaignDoneMsg
CampaignDoneMsg::decode(ByteReader &in)
{
    CampaignDoneMsg msg;
    msg.campaignId = in.u64();
    msg.ok = in.u64();
    msg.failed = in.u64();
    msg.skipped = in.u64();
    msg.summary = in.str();
    in.expectEnd();
    return msg;
}

void
ErrorMsg::encode(ByteWriter &out) const
{
    out.str(message);
}

ErrorMsg
ErrorMsg::decode(ByteReader &in)
{
    ErrorMsg msg;
    msg.message = in.str();
    in.expectEnd();
    return msg;
}

void
AssignMsg::encode(ByteWriter &out) const
{
    out.u64(campaignId);
    out.u64(jobIndex);
    out.str(jobHash);
    out.str(specText);
    out.u64(checkpointEvery);
    out.str(checkpointBlob);
}

AssignMsg
AssignMsg::decode(ByteReader &in)
{
    AssignMsg msg;
    msg.campaignId = in.u64();
    msg.jobIndex = in.u64();
    msg.jobHash = in.str();
    msg.specText = in.str();
    msg.checkpointEvery = in.u64();
    msg.checkpointBlob = in.str();
    in.expectEnd();
    return msg;
}

void
HeartbeatMsg::encode(ByteWriter &out) const
{
    out.u64(campaignId);
    out.u64(jobIndex);
    out.str(checkpointBlob);
}

HeartbeatMsg
HeartbeatMsg::decode(ByteReader &in)
{
    HeartbeatMsg msg;
    msg.campaignId = in.u64();
    msg.jobIndex = in.u64();
    msg.checkpointBlob = in.str();
    in.expectEnd();
    return msg;
}

void
ResultMsg::encode(ByteWriter &out) const
{
    out.u64(campaignId);
    out.u64(jobIndex);
    out.u8(status);
    out.str(error);
    out.f64(wallMs);
    vecStrEncode(out, rows);
}

ResultMsg
ResultMsg::decode(ByteReader &in)
{
    ResultMsg msg;
    msg.campaignId = in.u64();
    msg.jobIndex = in.u64();
    msg.status = in.u8();
    if (msg.status > 1)
        lap_fatal("fabric result frame has invalid job status %u",
                  msg.status);
    msg.error = in.str();
    msg.wallMs = in.f64();
    msg.rows = vecStrDecode(in);
    in.expectEnd();
    return msg;
}

void
QueryMsg::encode(ByteWriter &out) const
{
    out.u64(campaignId);
}

QueryMsg
QueryMsg::decode(ByteReader &in)
{
    QueryMsg msg;
    msg.campaignId = in.u64();
    in.expectEnd();
    return msg;
}

void
QueryAckMsg::encode(ByteWriter &out) const
{
    out.u64(campaignId);
    out.u64(done);
    out.u64(total);
    out.str(table);
}

QueryAckMsg
QueryAckMsg::decode(ByteReader &in)
{
    QueryAckMsg msg;
    msg.campaignId = in.u64();
    msg.done = in.u64();
    msg.total = in.u64();
    msg.table = in.str();
    in.expectEnd();
    return msg;
}

} // namespace fabric
} // namespace lap
