#include "fabric/daemon.hh"

#include <chrono>
#include <utility>

#include "common/logging.hh"

namespace lap
{
namespace fabric
{

namespace
{

/** Receives one frame, treating malformed input like a dropped
 *  peer (the protocol layer's fatal is caught per-thread). */
bool
recvFrameOrDrop(TcpConnection &conn, Frame &frame)
{
    const ScopedFatalThrow guard;
    try {
        return conn.recvFrame(frame);
    } catch (const FatalError &err) {
        lap_warn("fabric: dropping peer: %s", err.what());
        return false;
    }
}

} // namespace

FabricDaemon::FabricDaemon(const Options &options)
    : options_(options), listener_(options.host, options.port)
{
}

FabricDaemon::~FabricDaemon()
{
    stop();
}

void
FabricDaemon::start()
{
    acceptThread_ = std::thread(&FabricDaemon::acceptLoop, this);
    reaperThread_ = std::thread(&FabricDaemon::reaperLoop, this);
}

void
FabricDaemon::stop()
{
    if (stopping_.exchange(true))
        return;
    listener_.close(); // unblocks acceptLoop
    scheduler_.kickAllWorkers();
    {
        const MutexLock lock(mutex_);
        for (const std::weak_ptr<TcpConnection> &weak : conns_) {
            if (const std::shared_ptr<TcpConnection> conn =
                    weak.lock())
                conn->kick();
        }
    }
    if (acceptThread_.joinable())
        acceptThread_.join();
    if (reaperThread_.joinable())
        reaperThread_.join();
    // The accept loop is done, so no new threads can appear.
    std::vector<std::thread> threads;
    {
        const MutexLock lock(mutex_);
        threads.swap(connThreads_);
    }
    for (std::thread &thread : threads) {
        if (thread.joinable())
            thread.join();
    }
}

void
FabricDaemon::acceptLoop()
{
    while (!stopping_.load()) {
        TcpConnection accepted = listener_.accept();
        if (!accepted.valid())
            break; // listener closed
        auto conn =
            std::make_shared<TcpConnection>(std::move(accepted));
        const MutexLock lock(mutex_);
        if (stopping_.load()) {
            conn->kick();
            break;
        }
        conns_.push_back(conn);
        connThreads_.emplace_back(&FabricDaemon::serveConnection,
                                  this, conn);
    }
}

void
FabricDaemon::reaperLoop()
{
    // Sleep in short slices so stop() never waits a full period.
    const auto slice = std::chrono::milliseconds(50);
    double slept_ms = 0.0;
    while (!stopping_.load()) {
        std::this_thread::sleep_for(slice);
        slept_ms += 50.0;
        if (slept_ms < options_.reapPeriodMs)
            continue;
        slept_ms = 0.0;
        scheduler_.reapStale(nowMs(), options_.heartbeatTimeoutMs);
    }
}

double
FabricDaemon::nowMs()
{
    // Heartbeat staleness only; simulation results never see this.
    // lapsim-lint: allow(det-banned-call)
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(
               now.time_since_epoch())
        .count();
}

void
FabricDaemon::serveConnection(std::shared_ptr<TcpConnection> conn)
{
    Frame frame;
    if (!recvFrameOrDrop(*conn, frame))
        return;

    const ScopedFatalThrow guard;
    HelloMsg hello;
    try {
        ByteReader in(frame.payload.data(), frame.payload.size());
        hello = HelloMsg::decode(in);
    } catch (const FatalError &err) {
        lap_warn("fabric: bad hello payload: %s", err.what());
        return;
    }

    if (frame.type == MsgType::WorkerHello)
        serveWorker(conn, hello.name);
    else if (frame.type == MsgType::ClientHello)
        serveClient(conn);
    else {
        ErrorMsg err;
        err.message = std::string("expected a hello frame, got ")
            + toString(frame.type);
        ByteWriter out;
        err.encode(out);
        conn->sendFrame(MsgType::Error, out);
    }
}

void
FabricDaemon::serveWorker(
    const std::shared_ptr<TcpConnection> &conn,
    const std::string &name)
{
    const WorkerId id = scheduler_.addWorker(
        name,
        [conn](const AssignMsg &msg) {
            ByteWriter out;
            msg.encode(out);
            conn->sendFrame(MsgType::Assign, out);
        },
        [conn] { conn->kick(); },
        [conn] {
            ByteWriter out;
            conn->sendFrame(MsgType::Shutdown, out);
        });

    Frame frame;
    while (recvFrameOrDrop(*conn, frame)) {
        const ScopedFatalThrow guard;
        try {
            ByteReader in(frame.payload.data(),
                          frame.payload.size());
            switch (frame.type) {
              case MsgType::Ready:
                scheduler_.workerReady(id);
                break;
              case MsgType::Heartbeat:
                scheduler_.heartbeat(
                    id, HeartbeatMsg::decode(in), nowMs());
                break;
              case MsgType::Result:
                scheduler_.result(id, ResultMsg::decode(in));
                break;
              default:
                lap_fatal("unexpected %s frame from worker '%s'",
                          toString(frame.type), name.c_str());
            }
        } catch (const FatalError &err) {
            lap_warn("fabric: dropping worker '%s': %s",
                     name.c_str(), err.what());
            break;
        }
    }
    // Requeues the worker's running job (with its last snapshot).
    scheduler_.workerLost(id);
}

void
FabricDaemon::serveClient(const std::shared_ptr<TcpConnection> &conn)
{
    CampaignId active = 0;
    Frame frame;
    while (recvFrameOrDrop(*conn, frame)) {
        const ScopedFatalThrow guard;
        try {
            ByteReader in(frame.payload.data(),
                          frame.payload.size());
            if (frame.type == MsgType::Submit) {
                const SubmitMsg msg = SubmitMsg::decode(in);
                // The id is unknown until submit() returns, but no
                // callback can fire before startCampaign() below.
                auto idCell = std::make_shared<CampaignId>(0);
                Scheduler::SubmitOutcome outcome;
                try {
                    outcome = scheduler_.submit(
                        msg,
                        [conn, idCell](const std::string &line) {
                            RowMsg row;
                            row.campaignId = *idCell;
                            row.line = line;
                            ByteWriter out;
                            row.encode(out);
                            conn->sendFrame(MsgType::Row, out);
                        },
                        [conn](
                            const Scheduler::DoneSummary &summary) {
                            CampaignDoneMsg done;
                            done.campaignId = summary.id;
                            done.ok = summary.ok;
                            done.failed = summary.failed;
                            done.skipped = summary.skipped;
                            done.summary = summary.summary;
                            ByteWriter out;
                            done.encode(out);
                            conn->sendFrame(MsgType::CampaignDone,
                                            out);
                        });
                } catch (const FatalError &err) {
                    // Malformed spec: the campaign never existed.
                    ErrorMsg reply;
                    reply.message = err.what();
                    ByteWriter out;
                    reply.encode(out);
                    conn->sendFrame(MsgType::Error, out);
                    continue;
                }
                *idCell = outcome.id;
                active = outcome.id;
                SubmitAckMsg ack;
                ack.campaignId = outcome.id;
                ack.jobCount = outcome.jobCount;
                ack.skippedJobs = outcome.skippedJobs;
                ByteWriter out;
                ack.encode(out);
                conn->sendFrame(MsgType::SubmitAck, out);
                scheduler_.startCampaign(outcome.id);
            } else if (frame.type == MsgType::Query) {
                const QueryMsg msg = QueryMsg::decode(in);
                const QueryAckMsg ack =
                    scheduler_.query(msg.campaignId);
                ByteWriter out;
                ack.encode(out);
                conn->sendFrame(MsgType::QueryAck, out);
            } else {
                lap_fatal("unexpected %s frame from client",
                          toString(frame.type));
            }
        } catch (const FatalError &err) {
            lap_warn("fabric: dropping client: %s", err.what());
            break;
        }
    }
    if (active != 0)
        // No-op when the campaign already finished; otherwise stop
        // dispatching work nobody will read.
        scheduler_.cancelCampaign(active);
}

} // namespace fabric
} // namespace lap
