#include "fabric/worker.hh"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>
#include <utility>
#include <vector>

#include "campaign/engine.hh"
#include "campaign/spec.hh"
#include "common/logging.hh"

namespace lap
{
namespace fabric
{

/** Worker-side cache of one expanded campaign; assignments of the
 *  same spec reuse the expansion (it is deterministic). */
struct SpecCache
{
    std::string text;
    std::string name;
    std::vector<CampaignJob> jobs;
};

namespace
{

std::string
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return "";
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    return bytes;
}

/** Atomic write (tmp + rename), mirroring the checkpoint writer so
 *  a concurrent reader never sees a torn snapshot. */
bool
writeFileAtomic(const std::string &path, const std::string &bytes)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out)
            return false;
    }
    return std::rename(tmp.c_str(), path.c_str()) == 0;
}

bool
sendMsg(TcpConnection &conn, MsgType type, const ResultMsg &msg)
{
    ByteWriter out;
    msg.encode(out);
    return conn.sendFrame(type, out);
}

} // namespace

FabricWorker::FabricWorker(const Options &options)
    : options_(options)
{
}

int
FabricWorker::run()
{
    std::uint32_t failures = 0;
    while (!stop_.load()) {
        TcpConnection conn =
            connectTo(options_.host, options_.port);
        if (!conn.valid()) {
            if (++failures >= options_.connectAttempts) {
                lap_warn("worker '%s': daemon %s:%u unreachable "
                         "after %u attempts; giving up",
                         options_.name.c_str(),
                         options_.host.c_str(), options_.port,
                         failures);
                return 1;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(200));
            continue;
        }
        failures = 0;
        if (serve(conn) == SessionEnd::Shutdown) {
            // Scripts and tests parse this clean-exit notice.
            std::printf("lapsim-worker '%s': daemon shutdown; "
                        "exiting\n",
                        options_.name.c_str());
            std::fflush(stdout);
            return 0;
        }
        // Disconnected: the daemon died or kicked us; rejoin. The
        // scratch checkpoint of an interrupted job stays on disk and
        // is revalidated if the same grid point comes back.
    }
    return 0;
}

FabricWorker::SessionEnd
FabricWorker::serve(TcpConnection &conn)
{
    {
        HelloMsg hello;
        hello.name = options_.name;
        ByteWriter out;
        hello.encode(out);
        if (!conn.sendFrame(MsgType::WorkerHello, out))
            return SessionEnd::Disconnected;
    }

    sessionOpen_.store(true);
    std::thread beat(&FabricWorker::heartbeatLoop, this,
                     std::ref(conn));

    SessionEnd end = SessionEnd::Disconnected;
    SpecCache cache;
    if (conn.sendFrame(MsgType::Ready, ByteWriter())) {
        Frame frame;
        while (!stop_.load()) {
            bool got = false;
            {
                const ScopedFatalThrow guard;
                try {
                    got = conn.recvFrame(frame);
                } catch (const FatalError &err) {
                    lap_warn("worker '%s': dropping daemon "
                             "connection: %s",
                             options_.name.c_str(), err.what());
                }
            }
            if (!got)
                break;
            if (frame.type == MsgType::Shutdown) {
                end = SessionEnd::Shutdown;
                break;
            }
            if (frame.type != MsgType::Assign)
                continue; // e.g. a stray Error frame
            AssignMsg msg;
            {
                const ScopedFatalThrow guard;
                try {
                    ByteReader in(frame.payload.data(),
                                  frame.payload.size());
                    msg = AssignMsg::decode(in);
                } catch (const FatalError &err) {
                    lap_warn("worker '%s': bad assign frame: %s",
                             options_.name.c_str(), err.what());
                    break;
                }
            }
            handleAssign(conn, msg, cache);
            if (!conn.sendFrame(MsgType::Ready, ByteWriter()))
                break;
        }
    }

    sessionOpen_.store(false);
    beat.join();
    return end;
}

void
FabricWorker::handleAssign(TcpConnection &conn, const AssignMsg &msg,
                           SpecCache &cache)
{
    ResultMsg res;
    res.campaignId = msg.campaignId;
    res.jobIndex = msg.jobIndex;

    if (cache.text != msg.specText) {
        const ScopedFatalThrow guard;
        try {
            const CampaignSpec spec =
                parseCampaignSpec(msg.specText);
            cache.jobs = expandCampaign(spec);
            cache.name = spec.name;
            cache.text = msg.specText;
        } catch (const FatalError &err) {
            cache.text.clear();
            res.status = 1;
            res.error = std::string("cannot expand campaign spec: ")
                + err.what();
            sendMsg(conn, MsgType::Result, res);
            return;
        }
    }

    if (msg.jobIndex >= cache.jobs.size()
        || cache.jobs[msg.jobIndex].hash != msg.jobHash) {
        // This worker's expansion disagrees with the daemon's —
        // mismatched code versions or LAPSIM_* scaling env. Refuse
        // loudly rather than compute incomparable metrics.
        res.status = 1;
        res.error = csprintf(
            "job hash mismatch at index %llu: daemon expects %s, "
            "local expansion yields %s (code version or LAPSIM_* "
            "scaling environment skew)",
            static_cast<unsigned long long>(msg.jobIndex),
            msg.jobHash.c_str(),
            msg.jobIndex < cache.jobs.size()
                ? cache.jobs[msg.jobIndex].hash.c_str()
                : "nothing");
        sendMsg(conn, MsgType::Result, res);
        return;
    }

    const CampaignJob &job = cache.jobs[msg.jobIndex];
    const std::string ckpt = scratchCheckpointPath(job.hash);
    if (!msg.checkpointBlob.empty()
        && !writeFileAtomic(ckpt, msg.checkpointBlob))
        lap_warn("worker '%s': cannot materialize snapshot %s; "
                 "running the job from scratch",
                 options_.name.c_str(), ckpt.c_str());

    {
        const MutexLock lock(mutex_);
        activeCkptPath_ = ckpt;
        activeCampaign_ = msg.campaignId;
        activeJobIndex_ = msg.jobIndex;
        // Never re-upload the snapshot the daemon just shipped.
        lastUploadHash_ = fnv1a64(msg.checkpointBlob);
    }

    // Same execution path as `lapsim-campaign --mid-job-restore`:
    // periodic snapshots to the scratch file, restore from a valid
    // one (including the blob materialized above).
    const JobOutcome outcome = runCampaignJob(
        withJobCheckpointing(job, ckpt, msg.checkpointEvery));

    {
        const MutexLock lock(mutex_);
        activeCkptPath_.clear();
    }
    if (outcome.status == JobStatus::Ok)
        std::remove(ckpt.c_str());

    res.status = outcome.status == JobStatus::Ok ? 0 : 1;
    res.error = outcome.error;
    res.wallMs = outcome.wallMs;
    // Same row order the serial engine's sink uses: epoch rows
    // first, then the result row.
    for (const EpochRecord &rec : outcome.epochs)
        res.rows.push_back(epochToJsonRow(cache.name, job, rec));
    res.rows.push_back(jobToJsonRow(cache.name, job, outcome));
    sendMsg(conn, MsgType::Result, res);
}

void
FabricWorker::heartbeatLoop(TcpConnection &conn)
{
    const auto slice = std::chrono::milliseconds(50);
    double slept_ms = 0.0;
    while (sessionOpen_.load()) {
        std::this_thread::sleep_for(slice);
        slept_ms += 50.0;
        if (slept_ms < options_.heartbeatPeriodMs)
            continue;
        slept_ms = 0.0;

        HeartbeatMsg msg;
        std::string path;
        std::uint64_t last_upload = 0;
        {
            const MutexLock lock(mutex_);
            if (activeCkptPath_.empty())
                continue; // idle: the daemon only reaps busy workers
            path = activeCkptPath_;
            msg.campaignId = activeCampaign_;
            msg.jobIndex = activeJobIndex_;
            last_upload = lastUploadHash_;
        }
        // The snapshot file is written atomically (tmp + rename),
        // so this read sees a complete old or new snapshot, never a
        // torn one.
        std::string blob = readFileBytes(path);
        const std::uint64_t blob_hash = fnv1a64(blob);
        if (!blob.empty() && blob_hash != last_upload)
            msg.checkpointBlob = std::move(blob);

        ByteWriter out;
        msg.encode(out);
        if (!conn.sendFrame(MsgType::Heartbeat, out))
            continue; // dead connection; serve() notices on recv
        if (!msg.checkpointBlob.empty()) {
            const MutexLock lock(mutex_);
            if (activeCkptPath_ == path)
                lastUploadHash_ = blob_hash;
        }
    }
}

std::string
FabricWorker::scratchCheckpointPath(
    const std::string &job_hash) const
{
    // Same "<base>.<hash>.ckpt" shape as jobCheckpointPath(), with
    // the worker name as the base so fleets sharing a scratch
    // directory never collide.
    return options_.scratchDir + "/" + options_.name + "."
        + job_hash + ".ckpt";
}

} // namespace fabric
} // namespace lap
