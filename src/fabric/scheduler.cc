#include "fabric/scheduler.hh"

#include <utility>

#include "campaign/aggregate.hh"
#include "campaign/engine.hh"
#include "campaign/jsonl.hh"
#include "common/logging.hh"
#include "common/table.hh"

namespace lap
{
namespace fabric
{

namespace
{

/** Finished campaigns kept around for late query() calls. */
constexpr std::size_t kKeepFinished = 8;

} // namespace

Scheduler::SubmitOutcome
Scheduler::submit(const SubmitMsg &msg, RowFn onRow, DoneFn onDone)
{
    // Parse and expand outside the lock: a malformed spec is fatal
    // (catchable under the daemon's ScopedFatalThrow) and must not
    // leave half-registered state behind.
    const CampaignSpec spec = parseCampaignSpec(msg.specText);
    std::vector<CampaignJob> jobs = expandCampaign(spec);

    std::set<std::string> done(msg.doneHashes.begin(),
                               msg.doneHashes.end());

    const MutexLock lock(mutex_);
    const CampaignId id = nextCampaignId_++;
    CampaignRun &run = campaigns_[id];
    run.name = spec.name;
    run.specText = msg.specText;
    run.checkpointEvery = msg.checkpointEvery;
    run.jobs = std::move(jobs);
    run.runtime.resize(run.jobs.size());
    run.buckets.resize(kShardBuckets);
    run.onRow = std::move(onRow);
    run.onDone = std::move(onDone);

    SubmitOutcome outcome;
    outcome.id = id;
    outcome.jobCount = run.jobs.size();
    for (std::size_t i = 0; i < run.jobs.size(); ++i) {
        if (done.count(run.jobs[i].hash)) {
            // Resume: this grid point already has an "ok" row on the
            // client side; mark it Done without rows to emit.
            run.runtime[i].state = JobRuntime::State::Done;
            run.runtime[i].skipped = true;
            run.runtime[i].resultStatus = 0;
            run.doneJobs++;
            run.skipped++;
            outcome.skippedJobs++;
            continue;
        }
        const std::size_t bucket = static_cast<std::size_t>(
            fnv1a64(run.jobs[i].key) % kShardBuckets);
        run.buckets[bucket].push_back(i);
    }
    return outcome;
}

void
Scheduler::startCampaign(CampaignId id)
{
    const MutexLock lock(mutex_);
    auto it = campaigns_.find(id);
    if (it == campaigns_.end() || it->second.finished)
        return;
    // Resume-skipped jobs at the head of the grid emit nothing but
    // still move the reorder cursor; an all-skipped campaign
    // completes right here.
    advanceEmitLocked(it->second);
    maybeFinishLocked(id, it->second);
    dispatchLocked();
}

void
Scheduler::cancelCampaign(CampaignId id)
{
    const MutexLock lock(mutex_);
    auto it = campaigns_.find(id);
    if (it == campaigns_.end() || it->second.finished)
        return;
    CampaignRun &run = it->second;
    run.clientGone = true;
    run.onRow = nullptr;
    run.onDone = nullptr;
    for (std::deque<std::size_t> &bucket : run.buckets) {
        for (const std::size_t index : bucket) {
            run.runtime[index].state = JobRuntime::State::Cancelled;
            run.doneJobs++;
        }
        bucket.clear();
    }
    // Running jobs finish on their own and are counted as they land;
    // with no pending work left this may already be the end.
    advanceEmitLocked(run);
    maybeFinishLocked(id, run);
}

WorkerId
Scheduler::addWorker(const std::string &name, SendAssignFn send,
                     KickFn kick, SendShutdownFn sendShutdown)
{
    const MutexLock lock(mutex_);
    const WorkerId id = nextWorkerId_++;
    WorkerSlot &slot = workers_[id];
    slot.name = name;
    slot.send = std::move(send);
    slot.kick = std::move(kick);
    slot.sendShutdown = std::move(sendShutdown);
    fleet_.push_back(id);
    return id;
}

void
Scheduler::workerReady(WorkerId id)
{
    const MutexLock lock(mutex_);
    auto it = workers_.find(id);
    if (it == workers_.end())
        return;
    it->second.idle = true;
    it->second.busy = false;
    dispatchLocked();
}

void
Scheduler::workerLost(WorkerId id)
{
    const MutexLock lock(mutex_);
    auto it = workers_.find(id);
    if (it == workers_.end())
        return;
    const bool busy = it->second.busy;
    const CampaignId cid = it->second.campaign;
    const std::size_t index = it->second.jobIndex;
    workers_.erase(it);
    for (std::size_t i = 0; i < fleet_.size(); ++i) {
        if (fleet_[i] == id) {
            fleet_.erase(fleet_.begin()
                         + static_cast<std::ptrdiff_t>(i));
            break;
        }
    }

    if (busy) {
        auto cit = campaigns_.find(cid);
        if (cit != campaigns_.end() && !cit->second.finished) {
            CampaignRun &run = cit->second;
            JobRuntime &jr = run.runtime[index];
            if (jr.state == JobRuntime::State::Running
                && jr.runner == id) {
                if (jr.attempts >= kMaxAttempts) {
                    // Every attempt of this grid point took a worker
                    // down with it; fail the job so the campaign can
                    // still terminate.
                    JobOutcome outcome;
                    outcome.status = JobStatus::Failed;
                    outcome.error = "abandoned after "
                        + std::to_string(jr.attempts)
                        + " attempts ended with a dead worker";
                    jr.state = JobRuntime::State::Done;
                    jr.resultStatus = 1;
                    jr.checkpointBlob.clear();
                    jr.rows = {jobToJsonRow(run.name,
                                            run.jobs[index], outcome)};
                    finishJobLocked(cid, run, index);
                } else {
                    requeueLocked(cid, run, index);
                }
            }
        }
    }
    dispatchLocked();
}

void
Scheduler::heartbeat(WorkerId id, const HeartbeatMsg &msg,
                     double now_ms)
{
    const MutexLock lock(mutex_);
    auto it = workers_.find(id);
    if (it == workers_.end())
        return;
    WorkerSlot &slot = it->second;
    slot.lastBeatMs = now_ms;
    slot.beatSeen = true;
    if (msg.checkpointBlob.empty() || !slot.busy
        || slot.campaign != msg.campaignId
        || slot.jobIndex != msg.jobIndex)
        return;
    auto cit = campaigns_.find(msg.campaignId);
    if (cit == campaigns_.end())
        return;
    CampaignRun &run = cit->second;
    if (msg.jobIndex >= run.runtime.size())
        return;
    JobRuntime &jr = run.runtime[msg.jobIndex];
    if (jr.state == JobRuntime::State::Running && jr.runner == id)
        jr.checkpointBlob = msg.checkpointBlob;
}

void
Scheduler::result(WorkerId id, const ResultMsg &msg)
{
    const MutexLock lock(mutex_);
    auto it = workers_.find(id);
    if (it == workers_.end())
        return;
    WorkerSlot &slot = it->second;
    if (!slot.busy || slot.campaign != msg.campaignId
        || slot.jobIndex != msg.jobIndex)
        return; // stale result from a superseded assignment
    slot.busy = false;

    auto cit = campaigns_.find(msg.campaignId);
    if (cit == campaigns_.end())
        return;
    CampaignRun &run = cit->second;
    if (msg.jobIndex >= run.runtime.size() || run.finished)
        return;
    JobRuntime &jr = run.runtime[msg.jobIndex];
    if (jr.state != JobRuntime::State::Running || jr.runner != id)
        return;
    jr.state = JobRuntime::State::Done;
    jr.resultStatus = msg.status;
    jr.checkpointBlob.clear();
    jr.rows = msg.rows;
    if (msg.status == 0 && !msg.rows.empty())
        run.resultRows.push_back(msg.rows.back());
    finishJobLocked(msg.campaignId, run, msg.jobIndex);
}

void
Scheduler::reapStale(double now_ms, double timeout_ms)
{
    const MutexLock lock(mutex_);
    for (auto &entry : workers_) {
        WorkerSlot &slot = entry.second;
        if (!slot.busy)
            continue; // parked workers have nothing to lose
        if (!slot.beatSeen) {
            // First reap pass since the assignment: baseline the
            // clock so the worker gets one full timeout window.
            slot.beatSeen = true;
            slot.lastBeatMs = now_ms;
            continue;
        }
        if (now_ms - slot.lastBeatMs > timeout_ms && slot.kick)
            // Wakes the worker's connection thread, which unwinds
            // through workerLost() and requeues the job.
            slot.kick();
    }
}

QueryAckMsg
Scheduler::query(CampaignId id)
{
    const MutexLock lock(mutex_);
    QueryAckMsg ack;
    if (campaigns_.empty()) {
        ack.table = "(no campaigns submitted)";
        return ack;
    }
    auto it = id == 0 ? std::prev(campaigns_.end())
                      : campaigns_.find(id);
    if (it == campaigns_.end()) {
        ack.campaignId = id;
        ack.table = "(unknown campaign)";
        return ack;
    }
    ack.campaignId = it->first;
    ack.done = it->second.doneJobs;
    ack.total = it->second.jobs.size();
    ack.table = aggregateLocked(it->second);
    return ack;
}

void
Scheduler::kickAllWorkers()
{
    const MutexLock lock(mutex_);
    for (auto &entry : workers_) {
        if (entry.second.sendShutdown)
            entry.second.sendShutdown();
        if (entry.second.kick)
            entry.second.kick();
    }
}

SchedulerStats
Scheduler::stats() const
{
    const MutexLock lock(mutex_);
    SchedulerStats out = stats_;
    out.activeWorkers = workers_.size();
    out.openCampaigns = 0;
    out.snapshotsHeld = 0;
    for (const auto &entry : campaigns_) {
        if (!entry.second.finished)
            out.openCampaigns++;
        for (const JobRuntime &jr : entry.second.runtime) {
            if (jr.state != JobRuntime::State::Done
                && !jr.checkpointBlob.empty())
                out.snapshotsHeld++;
        }
    }
    return out;
}

void
Scheduler::dispatchLocked()
{
    while (true) {
        // Lowest idle fleet slot first: placement is a deterministic
        // function of (fleet order, bucket fill), not of thread
        // timing alone, which keeps dispatch traces reproducible
        // enough to reason about in tests.
        std::size_t slot_index = fleet_.size();
        for (std::size_t i = 0; i < fleet_.size(); ++i) {
            if (workers_[fleet_[i]].idle) {
                slot_index = i;
                break;
            }
        }
        if (slot_index == fleet_.size())
            return;
        const WorkerId wid = fleet_[slot_index];

        bool assigned = false;
        for (auto &entry : campaigns_) {
            CampaignRun &run = entry.second;
            if (run.finished)
                continue;
            std::size_t index = 0;
            if (!pickJobLocked(run, slot_index, fleet_.size(), index))
                continue;
            WorkerSlot &slot = workers_[wid];
            JobRuntime &jr = run.runtime[index];
            jr.state = JobRuntime::State::Running;
            jr.runner = wid;
            jr.attempts++;
            slot.idle = false;
            slot.busy = true;
            slot.campaign = entry.first;
            slot.jobIndex = index;
            slot.beatSeen = false;
            stats_.assignments++;
            if (jr.attempts > 1) {
                stats_.reassignments++;
                if (!jr.checkpointBlob.empty())
                    stats_.snapshotAssignments++;
            }
            AssignMsg msg;
            msg.campaignId = entry.first;
            msg.jobIndex = index;
            msg.jobHash = run.jobs[index].hash;
            msg.specText = run.specText;
            msg.checkpointEvery = run.checkpointEvery;
            msg.checkpointBlob = jr.checkpointBlob;
            if (slot.send)
                // A failed send surfaces as the connection thread's
                // recv failing, which calls workerLost() and
                // requeues this job.
                slot.send(msg);
            assigned = true;
            break;
        }
        if (!assigned)
            return;
    }
}

bool
Scheduler::pickJobLocked(CampaignRun &run, std::size_t worker_slot,
                         std::size_t fleet_size,
                         std::size_t &out_index)
{
    // Home pass: buckets congruent to this worker's fleet slot, so
    // repeated runs of one grid keep placement roughly affine.
    if (fleet_size > 0) {
        for (std::size_t b = 0; b < kShardBuckets; ++b) {
            if (b % fleet_size != worker_slot)
                continue;
            if (run.buckets[b].empty())
                continue;
            out_index = run.buckets[b].front();
            run.buckets[b].pop_front();
            return true;
        }
    }
    // Steal pass: take from the fullest foreign bucket so no worker
    // idles beside a deep queue.
    std::size_t best = kShardBuckets;
    std::size_t best_size = 0;
    for (std::size_t b = 0; b < kShardBuckets; ++b) {
        if (run.buckets[b].size() > best_size) {
            best = b;
            best_size = run.buckets[b].size();
        }
    }
    if (best == kShardBuckets)
        return false;
    out_index = run.buckets[best].front();
    run.buckets[best].pop_front();
    return true;
}

void
Scheduler::finishJobLocked(CampaignId id, CampaignRun &run,
                           std::size_t index)
{
    const JobRuntime &jr = run.runtime[index];
    lap_assert(jr.state == JobRuntime::State::Done,
               "finishJobLocked on a non-Done job");
    run.doneJobs++;
    if (jr.skipped)
        ; // counted at submit()
    else if (jr.resultStatus == 0)
        run.ok++;
    else
        run.failed++;
    advanceEmitLocked(run);
    maybeFinishLocked(id, run);
}

void
Scheduler::requeueLocked(CampaignId id, CampaignRun &run,
                         std::size_t index)
{
    (void)id;
    JobRuntime &jr = run.runtime[index];
    jr.state = JobRuntime::State::Pending;
    jr.runner = 0;
    // Front of its home bucket: an interrupted job (with its
    // snapshot) is the most valuable work in the queue.
    const std::size_t bucket = static_cast<std::size_t>(
        fnv1a64(run.jobs[index].key) % kShardBuckets);
    run.buckets[bucket].push_front(index);
}

void
Scheduler::advanceEmitLocked(CampaignRun &run)
{
    while (run.nextEmit < run.runtime.size()) {
        JobRuntime &jr = run.runtime[run.nextEmit];
        if (jr.state == JobRuntime::State::Done) {
            if (!run.clientGone && run.onRow) {
                for (const std::string &row : jr.rows)
                    run.onRow(row);
            }
            jr.rows.clear();
            run.nextEmit++;
        } else if (jr.state == JobRuntime::State::Cancelled) {
            run.nextEmit++;
        } else {
            break;
        }
    }
}

void
Scheduler::maybeFinishLocked(CampaignId id, CampaignRun &run)
{
    if (run.finished || run.doneJobs < run.jobs.size())
        return;
    run.finished = true;
    if (!run.clientGone && run.onDone) {
        DoneSummary summary;
        summary.id = id;
        summary.ok = run.ok;
        summary.failed = run.failed;
        summary.skipped = run.skipped;
        summary.summary = aggregateLocked(run);
        run.onDone(summary);
    }
    run.onRow = nullptr;
    run.onDone = nullptr;
    pruneLocked();
}

void
Scheduler::pruneLocked()
{
    std::vector<CampaignId> finished;
    for (const auto &entry : campaigns_) {
        if (entry.second.finished)
            finished.push_back(entry.first);
    }
    // Ids ascend, so the front of the list is the oldest.
    std::size_t excess = finished.size() > kKeepFinished
        ? finished.size() - kKeepFinished
        : 0;
    for (std::size_t i = 0; i < excess; ++i)
        campaigns_.erase(finished[i]);
}

std::string
Scheduler::aggregateLocked(const CampaignRun &run) const
{
    if (run.resultRows.empty())
        return "(no completed jobs yet)";
    std::vector<JsonRow> rows;
    rows.reserve(run.resultRows.size());
    for (const std::string &line : run.resultRows) {
        JsonRow row;
        if (parseJsonObject(line, row))
            rows.push_back(std::move(row));
    }
    if (rows.empty())
        return "(no completed jobs yet)";
    return aggregateRows(rows, AggregateSpec{}).toString();
}

} // namespace fabric
} // namespace lap
