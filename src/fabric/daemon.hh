/**
 * @file
 * The lapsim-serve daemon: sockets around the fabric scheduler.
 *
 * One accept thread, one connection thread per peer, one reaper
 * thread. Connection threads are a thin protocol shell — every
 * decision lives in the Scheduler — shaped by the first frame a peer
 * sends:
 *
 *   WorkerHello  the thread registers the worker and pumps
 *                Ready/Heartbeat/Result frames into the scheduler
 *                until the connection drops, then reports the loss
 *                (requeueing the worker's running job).
 *   ClientHello  the thread serves Submit (rows and the terminal
 *                summary stream back over the same connection, in
 *                grid order) and Query requests; a client that
 *                disconnects mid-campaign cancels its campaign.
 *
 * Malformed frames (bad magic, CRC failure, truncated payload) are
 * caught per-connection via ScopedFatalThrow and end only that
 * connection; the daemon itself never dies to a hostile peer.
 *
 * Embeddable by tests: construct, start(), talk to port(), stop().
 */

#ifndef LAPSIM_FABRIC_DAEMON_HH
#define LAPSIM_FABRIC_DAEMON_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.hh"
#include "fabric/scheduler.hh"
#include "fabric/socket.hh"

namespace lap
{
namespace fabric
{

/** See file comment. */
class FabricDaemon
{
  public:
    struct Options
    {
        std::string host = "127.0.0.1";
        /** 0 binds an ephemeral port; read it back via port(). */
        std::uint16_t port = 0;
        /** A busy worker silent for this long is kicked. */
        double heartbeatTimeoutMs = 15000.0;
        /** Reaper wake-up cadence. */
        double reapPeriodMs = 1000.0;
    };

    explicit FabricDaemon(const Options &options);
    ~FabricDaemon();

    FabricDaemon(const FabricDaemon &) = delete;
    FabricDaemon &operator=(const FabricDaemon &) = delete;

    /** Spawns the accept and reaper threads. */
    void start();

    /** Stops accepting, kicks every peer, joins all threads.
     *  Idempotent; also run by the destructor. */
    void stop();

    /** The bound port (resolves a port-0 request). */
    std::uint16_t port() const { return listener_.port(); }

    /** The shared state machine (tests poke its stats()). */
    Scheduler &scheduler() { return scheduler_; }

  private:
    void acceptLoop();
    void reaperLoop();
    void serveConnection(std::shared_ptr<TcpConnection> conn);
    void serveWorker(const std::shared_ptr<TcpConnection> &conn,
                     const std::string &name);
    void serveClient(const std::shared_ptr<TcpConnection> &conn);

    /** Monotonic milliseconds for heartbeat bookkeeping only —
     *  never consumed by anything that affects simulation output. */
    static double nowMs();

    const Options options_;
    /** Internally synchronized (socket.hh). */
    // lapsim-lint: allow(thread-unguarded-field)
    TcpListener listener_;
    /** Internally synchronized (scheduler.hh). */
    // lapsim-lint: allow(thread-unguarded-field)
    Scheduler scheduler_;
    std::atomic<bool> stopping_{false};
    /** Started before and joined after any concurrent access. */
    // lapsim-lint: allow(thread-unguarded-field)
    std::thread acceptThread_;
    /** Started before and joined after any concurrent access. */
    // lapsim-lint: allow(thread-unguarded-field)
    std::thread reaperThread_;

    mutable Mutex mutex_;
    /** One thread per accepted connection, joined at stop(). */
    std::vector<std::thread> connThreads_ LAP_GUARDED_BY(mutex_);
    /** Live peers, so stop() can kick blocked receivers. */
    std::vector<std::weak_ptr<TcpConnection>> conns_
        LAP_GUARDED_BY(mutex_);
};

} // namespace fabric
} // namespace lap

#endif // LAPSIM_FABRIC_DAEMON_HH
