#include "fabric/client.hh"

#include <memory>
#include <set>

#include "campaign/sink.hh"
#include "common/logging.hh"
#include "fabric/socket.hh"

namespace lap
{
namespace fabric
{

namespace
{

TcpConnection
connectAndHello(const std::string &host, std::uint16_t port,
                const char *role)
{
    TcpConnection conn = connectTo(host, port);
    if (!conn.valid())
        lap_fatal("cannot connect to lapsim-serve at %s:%u",
                  host.c_str(), port);
    HelloMsg hello;
    hello.name = role;
    ByteWriter out;
    hello.encode(out);
    if (!conn.sendFrame(MsgType::ClientHello, out))
        lap_fatal("lapsim-serve at %s:%u closed the connection "
                  "during the handshake",
                  host.c_str(), port);
    return conn;
}

Frame
recvOrFatal(TcpConnection &conn)
{
    Frame frame;
    if (!conn.recvFrame(frame))
        lap_fatal("lapsim-serve dropped the connection "
                  "mid-campaign; re-run with --resume to continue "
                  "from the rows already received");
    if (frame.type == MsgType::Error) {
        ByteReader in(frame.payload.data(), frame.payload.size());
        const ErrorMsg err = ErrorMsg::decode(in);
        lap_fatal("lapsim-serve rejected the request: %s",
                  err.message.c_str());
    }
    return frame;
}

} // namespace

ClientRunResult
submitCampaign(const ClientOptions &options,
               const std::string &spec_text)
{
    TcpConnection conn =
        connectAndHello(options.host, options.port, "campaign");

    SubmitMsg submit;
    submit.specText = spec_text;
    submit.checkpointEvery = options.checkpointEvery;
    if (options.resume && !options.outPath.empty()) {
        for (const std::string &hash :
             loadCompletedHashes(options.outPath))
            submit.doneHashes.push_back(hash);
    }
    {
        ByteWriter out;
        submit.encode(out);
        if (!conn.sendFrame(MsgType::Submit, out))
            lap_fatal("lapsim-serve closed the connection before "
                      "the campaign was submitted");
    }

    ClientRunResult result;
    {
        const Frame frame = recvOrFatal(conn);
        if (frame.type != MsgType::SubmitAck)
            lap_fatal("expected submit-ack from lapsim-serve, "
                      "got %s",
                      toString(frame.type));
        ByteReader in(frame.payload.data(), frame.payload.size());
        const SubmitAckMsg ack = SubmitAckMsg::decode(in);
        result.campaignId = ack.campaignId;
        result.jobCount = ack.jobCount;
        result.skippedJobs = ack.skippedJobs;
    }

    std::unique_ptr<JsonlSink> sink;
    if (!options.outPath.empty())
        sink = std::make_unique<JsonlSink>(options.outPath,
                                           options.resume);

    while (true) {
        const Frame frame = recvOrFatal(conn);
        if (frame.type == MsgType::Row) {
            ByteReader in(frame.payload.data(),
                          frame.payload.size());
            const RowMsg row = RowMsg::decode(in);
            if (sink)
                sink->write(row.line);
            if (options.onRow)
                options.onRow(row.line);
            continue;
        }
        if (frame.type == MsgType::CampaignDone) {
            ByteReader in(frame.payload.data(),
                          frame.payload.size());
            const CampaignDoneMsg done = CampaignDoneMsg::decode(in);
            result.ok = done.ok;
            result.failed = done.failed;
            result.skipped = done.skipped;
            result.summary = done.summary;
            return result;
        }
        lap_fatal("unexpected %s frame from lapsim-serve while "
                  "streaming results",
                  toString(frame.type));
    }
}

QueryAckMsg
queryCampaign(const std::string &host, std::uint16_t port,
              std::uint64_t campaign_id)
{
    TcpConnection conn = connectAndHello(host, port, "query");
    QueryMsg msg;
    msg.campaignId = campaign_id;
    ByteWriter out;
    msg.encode(out);
    if (!conn.sendFrame(MsgType::Query, out))
        lap_fatal("lapsim-serve closed the connection before the "
                  "query was sent");
    const Frame frame = recvOrFatal(conn);
    if (frame.type != MsgType::QueryAck)
        lap_fatal("expected query-ack from lapsim-serve, got %s",
                  toString(frame.type));
    ByteReader in(frame.payload.data(), frame.payload.size());
    return QueryAckMsg::decode(in);
}

} // namespace fabric
} // namespace lap
