#include "fabric/socket.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"

namespace lap
{
namespace fabric
{

namespace
{

/** True for errno values that mean "the peer is gone", which the
 *  fabric treats as a normal event (worker killed, client closed),
 *  never as a fault. */
bool
peerGone(int err)
{
    return err == EPIPE || err == ECONNRESET || err == ECONNABORTED
        || err == ESHUTDOWN || err == ENOTCONN || err == EBADF;
}

/**
 * Bounds every blocking send. A worker that stops draining its
 * socket (hung process with a full receive buffer) would otherwise
 * park the sending scheduler thread forever; after the timeout the
 * send fails like a dead peer and the connection is dropped.
 */
void
setSendTimeout(int fd)
{
    timeval tv{};
    tv.tv_sec = 30;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

} // namespace

TcpConnection::~TcpConnection()
{
    close();
}

TcpConnection::TcpConnection(TcpConnection &&other) noexcept
    : fd_(other.fd_)
{
    other.fd_ = -1;
}

TcpConnection &
TcpConnection::operator=(TcpConnection &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

void
TcpConnection::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
TcpConnection::kick()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

bool
TcpConnection::sendAll(const char *data, std::size_t size)
{
    std::size_t sent = 0;
    while (sent < size) {
        const ssize_t n = ::send(fd_, data + sent, size - sent,
                                 MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (peerGone(errno) || errno == EAGAIN
                || errno == EWOULDBLOCK) // send timeout elapsed
                return false;
            lap_fatal("fabric socket send failed: %s",
                      std::strerror(errno));
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

bool
TcpConnection::sendFrame(MsgType type, const ByteWriter &payload)
{
    const std::string bytes = encodeFrame(type, payload);
    const MutexLock lock(send_mutex_);
    if (fd_ < 0)
        return false;
    return sendAll(bytes.data(), bytes.size());
}

bool
TcpConnection::recvExact(char *data, std::size_t size)
{
    std::size_t got = 0;
    while (got < size) {
        const ssize_t n = ::recv(fd_, data + got, size - got, 0);
        if (n == 0)
            return false; // clean EOF
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (peerGone(errno) || errno == EINVAL)
                return false;
            lap_fatal("fabric socket recv failed: %s",
                      std::strerror(errno));
        }
        got += static_cast<std::size_t>(n);
    }
    return true;
}

bool
TcpConnection::recvFrame(Frame &frame)
{
    if (fd_ < 0)
        return false;
    char header_bytes[kFrameHeaderBytes];
    if (!recvExact(header_bytes, sizeof(header_bytes)))
        return false;
    const FrameHeader header =
        decodeFrameHeader(header_bytes, sizeof(header_bytes));

    std::string body;
    body.resize(static_cast<std::size_t>(header.payloadSize)
                + kFrameTrailerBytes);
    if (!recvExact(body.data(), body.size()))
        // A connection that dies mid-frame delivers a truncated
        // frame; report it as a dropped peer, not corruption.
        return false;
    ByteReader trailer(body.data() + header.payloadSize,
                       kFrameTrailerBytes);
    verifyFramePayload(body.data(), header.payloadSize,
                       trailer.u32());
    frame.type = header.type;
    frame.payload.assign(body.data(), header.payloadSize);
    return true;
}

TcpListener::TcpListener(const std::string &host, std::uint16_t port)
{
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        lap_fatal("fabric listener: socket() failed: %s",
                  std::strerror(errno));
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        lap_fatal("fabric listener: '%s' is not an IPv4 address",
                  host.c_str());
    if (::bind(fd_, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr))
        != 0)
        lap_fatal("fabric listener: cannot bind %s:%u: %s",
                  host.c_str(), port, std::strerror(errno));
    if (::listen(fd_, 64) != 0)
        lap_fatal("fabric listener: listen() failed: %s",
                  std::strerror(errno));

    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd_, reinterpret_cast<sockaddr *>(&bound), &len)
        != 0)
        lap_fatal("fabric listener: getsockname() failed: %s",
                  std::strerror(errno));
    port_ = ntohs(bound.sin_port);
}

TcpListener::~TcpListener()
{
    close();
}

void
TcpListener::close()
{
    const MutexLock lock(close_mutex_);
    if (fd_ >= 0) {
        // shutdown() wakes a blocked accept() portably; close()
        // releases the port.
        ::shutdown(fd_, SHUT_RDWR);
        ::close(fd_);
        fd_ = -1;
    }
}

TcpConnection
TcpListener::accept()
{
    while (true) {
        const int fd = ::accept(fd_, nullptr, nullptr);
        if (fd >= 0) {
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
            setSendTimeout(fd);
            return TcpConnection(fd);
        }
        if (errno == EINTR)
            continue;
        return TcpConnection(); // listener closed
    }
}

TcpConnection
connectTo(const std::string &host, std::uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        lap_fatal("fabric connect: socket() failed: %s",
                  std::strerror(errno));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        lap_fatal("fabric connect: '%s' is not an IPv4 address",
                  host.c_str());
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr))
        != 0) {
        ::close(fd);
        return TcpConnection(); // refused; caller retries
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    setSendTimeout(fd);
    return TcpConnection(fd);
}

void
splitHostPort(const std::string &text, std::string &host,
              std::uint16_t &port, bool allow_zero)
{
    const auto colon = text.rfind(':');
    if (colon == std::string::npos || colon == 0
        || colon + 1 >= text.size())
        lap_fatal("expected HOST:PORT, got '%s'", text.c_str());
    host = text.substr(0, colon);
    char *end = nullptr;
    const std::string port_text = text.substr(colon + 1);
    const unsigned long parsed =
        std::strtoul(port_text.c_str(), &end, 10);
    if (end == port_text.c_str() || *end != '\0'
        || (parsed == 0 && !allow_zero) || parsed > 65535)
        lap_fatal("'%s' is not a TCP port", port_text.c_str());
    port = static_cast<std::uint16_t>(parsed);
}

} // namespace fabric
} // namespace lap
