/**
 * @file
 * Campaign fabric scheduler: the daemon's shared state machine.
 *
 * Owns every cross-connection decision of lapsim-serve — which grid
 * point runs where, what happens when a worker dies, when a
 * campaign is complete — behind one annotated lap::Mutex, so the
 * socket layer stays a thin shell of per-connection threads.
 *
 * Sharded work stealing: the expanded grid is partitioned into
 * kShardBuckets buckets by the existing FNV-1a job hash (the same
 * deterministic partition `lapsim-campaign --shard K/N` exposes for
 * manual multi-host runs). An idle worker first drains the buckets
 * congruent to its fleet slot, then steals from the fullest foreign
 * bucket, so job placement stays affine while no worker ever idles
 * beside a non-empty queue.
 *
 * Fault tolerance: a worker's heartbeats carry fresh checkpoint
 * bytes of its running job (the `<out>.<hash>.ckpt` machinery from
 * the campaign engine, shipped over the wire). When a worker dies —
 * its connection drops or its heartbeats go stale — the job returns
 * to the front of its bucket together with the last snapshot, and
 * the next worker resumes it mid-job instead of starting from zero.
 * A job whose workers keep dying is failed after kMaxAttempts so a
 * crash-inducing grid point cannot grind the fleet forever.
 *
 * Determinism: jobs are pure functions of their (spec, index) pair
 * (campaign/spec.hh), so placement, stealing and restarts cannot
 * change any metric. Result rows are released to the client in grid
 * order through a reorder buffer (emission cursor), making the
 * client's JSONL stream row-for-row identical to a serial
 * `lapsim-campaign` run of the same spec.
 *
 * Callbacks (row emission, worker sends) run while the scheduler
 * lock is held: on the fabric's job granularity the serialization
 * cost is noise, and it keeps emission ordering trivially correct.
 * Socket sends are bounded by a send timeout (fabric/socket.cc), so
 * a hung peer cannot park the scheduler forever.
 */

#ifndef LAPSIM_FABRIC_SCHEDULER_HH
#define LAPSIM_FABRIC_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "campaign/spec.hh"
#include "common/mutex.hh"
#include "fabric/protocol.hh"

namespace lap
{
namespace fabric
{

using CampaignId = std::uint64_t;
using WorkerId = std::uint64_t;

/** Fabric-wide counters (tests and `lapsim-serve` logging). */
struct SchedulerStats
{
    std::uint64_t assignments = 0;
    /** Assignments of a job whose earlier attempt died. */
    std::uint64_t reassignments = 0;
    /** Reassignments that shipped a checkpoint blob. */
    std::uint64_t snapshotAssignments = 0;
    /** Heartbeat snapshots currently held for running jobs. */
    std::uint64_t snapshotsHeld = 0;
    std::uint64_t activeWorkers = 0;
    std::uint64_t openCampaigns = 0;
};

/** See file comment. All public methods are thread-safe. */
class Scheduler
{
  public:
    /** Job-hash partition width (buckets, not workers). */
    static constexpr std::uint32_t kShardBuckets = 64;
    /** A job is failed after this many dead workers. */
    static constexpr std::uint32_t kMaxAttempts = 3;

    /** Emits one JSONL row to the submitting client. */
    using RowFn = std::function<void(const std::string &line)>;
    /** Sends an assignment to a specific worker. */
    using SendAssignFn = std::function<void(const AssignMsg &msg)>;
    /** Forcibly disconnects a worker (stale heartbeats). */
    using KickFn = std::function<void()>;
    /** Sends a Shutdown frame (drain-and-exit, daemon stop). */
    using SendShutdownFn = std::function<void()>;

    struct DoneSummary
    {
        CampaignId id = 0;
        std::uint64_t ok = 0;
        std::uint64_t failed = 0;
        std::uint64_t skipped = 0;
        std::string summary; //!< Live-aggregation table text.
    };
    using DoneFn = std::function<void(const DoneSummary &)>;

    struct SubmitOutcome
    {
        CampaignId id = 0;
        std::uint64_t jobCount = 0;
        std::uint64_t skippedJobs = 0;
    };

    Scheduler() = default;
    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /**
     * Accepts a campaign: expands the spec (fatal, catchable, on a
     * malformed one), marks resume-skipped jobs, and dispatches to
     * idle workers. @p onRow and @p onDone fire under the scheduler
     * lock, in grid order, until the campaign completes or
     * cancelCampaign() is called.
     */
    SubmitOutcome submit(const SubmitMsg &msg, RowFn onRow,
                         DoneFn onDone) LAP_EXCLUDES(mutex_);

    /**
     * Starts dispatching a submitted campaign. Separate from
     * submit() so the daemon can acknowledge the submission before
     * any Row/CampaignDone frame can race past it (an all-skipped
     * resume completes instantly).
     */
    void startCampaign(CampaignId id) LAP_EXCLUDES(mutex_);

    /**
     * The submitting client is gone: pending jobs are cancelled,
     * running jobs finish but drop their rows, callbacks are
     * released. Idempotent.
     */
    void cancelCampaign(CampaignId id) LAP_EXCLUDES(mutex_);

    /** Registers a connected worker with its send/kick hooks.
     *  @p sendShutdown (optional) lets a stopping daemon tell the
     *  worker to exit cleanly instead of retrying to reconnect. */
    WorkerId addWorker(const std::string &name, SendAssignFn send,
                       KickFn kick,
                       SendShutdownFn sendShutdown = nullptr)
        LAP_EXCLUDES(mutex_);

    /** The worker asked for work (Ready frame). */
    void workerReady(WorkerId id) LAP_EXCLUDES(mutex_);

    /**
     * The worker's connection dropped. Its running job (if any)
     * returns to the queue front with its latest snapshot, or is
     * failed once kMaxAttempts is exhausted.
     */
    void workerLost(WorkerId id) LAP_EXCLUDES(mutex_);

    /** Heartbeat, possibly carrying fresh checkpoint bytes.
     *  @p now_ms is a caller-supplied monotonic timestamp. */
    void heartbeat(WorkerId id, const HeartbeatMsg &msg,
                   double now_ms) LAP_EXCLUDES(mutex_);

    /** A finished grid point (rows enter the reorder buffer). */
    void result(WorkerId id, const ResultMsg &msg)
        LAP_EXCLUDES(mutex_);

    /**
     * Kicks workers whose last heartbeat is older than
     * @p timeout_ms (their connection threads then unwind through
     * workerLost()). Workers between jobs are exempt.
     */
    void reapStale(double now_ms, double timeout_ms)
        LAP_EXCLUDES(mutex_);

    /** Live aggregation over whatever has completed (id 0 = the
     *  most recently submitted campaign). */
    QueryAckMsg query(CampaignId id) LAP_EXCLUDES(mutex_);

    /** Disconnects every worker (daemon stop). Workers whose
     *  registration provided a shutdown sender are told to exit
     *  cleanly first, then everyone is kicked. */
    void kickAllWorkers() LAP_EXCLUDES(mutex_);

    SchedulerStats stats() const LAP_EXCLUDES(mutex_);

  private:
    struct JobRuntime
    {
        enum class State : std::uint8_t
        {
            Pending,   //!< Queued in its bucket.
            Running,   //!< Assigned to a live worker.
            Done,      //!< Finished (ok, failed, or skipped).
            Cancelled, //!< Client left before it was started.
        };

        State state = State::Pending;
        WorkerId runner = 0;
        std::uint32_t attempts = 0;
        bool skipped = false;
        std::uint8_t resultStatus = 1; //!< Wire value when Done.
        std::string checkpointBlob;
        std::vector<std::string> rows;
    };

    struct CampaignRun
    {
        std::string name;
        std::string specText;
        std::uint64_t checkpointEvery = 0;
        std::vector<CampaignJob> jobs;
        std::vector<JobRuntime> runtime;
        /** Pending job indices, bucketed by FNV-1a job hash. */
        std::vector<std::deque<std::size_t>> buckets;
        std::size_t nextEmit = 0;   //!< Reorder-buffer cursor.
        std::uint64_t doneJobs = 0; //!< Done + Cancelled.
        std::uint64_t ok = 0;
        std::uint64_t failed = 0;
        std::uint64_t skipped = 0;
        bool clientGone = false;
        bool finished = false;
        RowFn onRow;
        DoneFn onDone;
        /** "ok" result rows, for live aggregation. */
        std::vector<std::string> resultRows;
    };

    struct WorkerSlot
    {
        std::string name;
        SendAssignFn send;
        KickFn kick;
        SendShutdownFn sendShutdown;
        bool idle = false;
        bool busy = false;
        CampaignId campaign = 0;
        std::size_t jobIndex = 0;
        double lastBeatMs = 0.0;
        bool beatSeen = false;
    };

    void dispatchLocked() LAP_REQUIRES(mutex_);
    bool pickJobLocked(CampaignRun &run, std::size_t worker_slot,
                       std::size_t fleet_size, std::size_t &out_index)
        LAP_REQUIRES(mutex_);
    void finishJobLocked(CampaignId id, CampaignRun &run,
                         std::size_t index) LAP_REQUIRES(mutex_);
    void requeueLocked(CampaignId id, CampaignRun &run,
                       std::size_t index) LAP_REQUIRES(mutex_);
    void advanceEmitLocked(CampaignRun &run) LAP_REQUIRES(mutex_);
    void maybeFinishLocked(CampaignId id, CampaignRun &run)
        LAP_REQUIRES(mutex_);
    void pruneLocked() LAP_REQUIRES(mutex_);
    std::string aggregateLocked(const CampaignRun &run) const
        LAP_REQUIRES(mutex_);

    mutable Mutex mutex_;
    std::map<CampaignId, CampaignRun> campaigns_
        LAP_GUARDED_BY(mutex_);
    std::map<WorkerId, WorkerSlot> workers_ LAP_GUARDED_BY(mutex_);
    /** Registration order of live workers (fleet slots). */
    std::vector<WorkerId> fleet_ LAP_GUARDED_BY(mutex_);
    CampaignId nextCampaignId_ LAP_GUARDED_BY(mutex_) = 1;
    WorkerId nextWorkerId_ LAP_GUARDED_BY(mutex_) = 1;
    SchedulerStats stats_ LAP_GUARDED_BY(mutex_);
};

} // namespace fabric
} // namespace lap

#endif // LAPSIM_FABRIC_SCHEDULER_HH
