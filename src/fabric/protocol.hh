/**
 * @file
 * Wire protocol of the campaign fabric (lapsim-serve <-> workers and
 * clients).
 *
 * Every message travels as one length-prefixed frame:
 *
 *   magic    4 B   "LAPF"
 *   version  u8    kFabricProtocolVersion
 *   type     u8    MsgType
 *   size     u32   payload byte count (little-endian)
 *   payload  size B
 *   crc      u32   CRC-32 (IEEE) of the payload bytes
 *
 * Payloads are encoded with the same bounds-checked little-endian
 * ByteWriter/ByteReader codec the checkpoint format uses
 * (common/serial.hh), so a truncated or bit-flipped frame is
 * rejected with a distinct diagnostic instead of being read as
 * garbage. Like the checkpoint layer, every validation failure is a
 * separate lap_fatal message (bad magic, unsupported version,
 * oversized declaration, truncation, CRC mismatch, unknown type),
 * catchable under ScopedFatalThrow — the daemon and worker survive a
 * malformed peer by dropping the connection, not by crashing.
 *
 * The conversation (DESIGN.md section 12):
 *
 *   client: ClientHello, Submit          -> SubmitAck,
 *           then Row* and one CampaignDone (or Error)
 *   client: ClientHello, Query           -> QueryAck
 *   worker: WorkerHello, then repeatedly
 *           Ready -> Assign (job + optional checkpoint blob),
 *           Heartbeat* (with fresh snapshot bytes), Result
 *   daemon: Shutdown to parked workers when stopping.
 */

#ifndef LAPSIM_FABRIC_PROTOCOL_HH
#define LAPSIM_FABRIC_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/serial.hh"

namespace lap
{
namespace fabric
{

/** Bumped whenever a frame or payload layout changes incompatibly. */
constexpr std::uint8_t kFabricProtocolVersion = 1;

/** magic + version + type + payload size. */
constexpr std::size_t kFrameHeaderBytes = 10;

/** CRC-32 trailer. */
constexpr std::size_t kFrameTrailerBytes = 4;

/**
 * Upper bound on one payload. Checkpoint blobs of full-size
 * simulations dominate frame sizes; 256 MiB is an order of magnitude
 * above the largest observed snapshot and small enough to reject a
 * garbage length field immediately.
 */
constexpr std::uint32_t kMaxFramePayload = 256u * 1024 * 1024;

/** Frame type tags (wire values are part of the protocol). */
enum class MsgType : std::uint8_t
{
    ClientHello = 1,  //!< client -> daemon: open a submit/query link.
    WorkerHello = 2,  //!< worker -> daemon: join the fleet.
    Submit = 3,       //!< client -> daemon: run this campaign spec.
    SubmitAck = 4,    //!< daemon -> client: campaign id + job count.
    Row = 5,          //!< daemon -> client: one JSONL result row.
    CampaignDone = 6, //!< daemon -> client: terminal summary.
    Error = 7,        //!< daemon -> peer: request-level failure.
    Assign = 8,       //!< daemon -> worker: run this grid point.
    Ready = 9,        //!< worker -> daemon: idle, wants work.
    Heartbeat = 10,   //!< worker -> daemon: alive (+ fresh snapshot).
    Result = 11,      //!< worker -> daemon: finished grid point.
    Query = 12,       //!< client -> daemon: partial-aggregation ask.
    QueryAck = 13,    //!< daemon -> client: live aggregation table.
    Shutdown = 14,    //!< daemon -> worker: drain and exit.
};

const char *toString(MsgType type);

/** One decoded frame: type tag plus raw payload bytes. */
struct Frame
{
    MsgType type = MsgType::Error;
    std::string payload;
};

/** Validated frame header (the socket layer reads this first). */
struct FrameHeader
{
    MsgType type = MsgType::Error;
    std::uint32_t payloadSize = 0;
};

/** Frames @p payload into one wire-ready byte string. */
std::string encodeFrame(MsgType type, const ByteWriter &payload);

/**
 * Validates the fixed-size header: magic, protocol version, type
 * range and payload-size bound, each with its own diagnostic.
 * @p size must be at least kFrameHeaderBytes.
 */
FrameHeader decodeFrameHeader(const char *data, std::size_t size);

/** Checks the payload CRC-32 trailer; fatal on mismatch. */
void verifyFramePayload(const char *payload, std::uint32_t size,
                        std::uint32_t wire_crc);

/**
 * Decodes one complete frame from a byte buffer (tests and fuzzing;
 * the socket layer reads header and payload incrementally through
 * the two functions above). Fatal on any malformation.
 */
Frame decodeFrame(const std::string &bytes);

// ---------------------------------------------------------------
// Message payloads. Each struct encodes into / decodes from a frame
// payload; decode is bounds-checked and fatal on truncation.
// ---------------------------------------------------------------

/** ClientHello / WorkerHello: the peer introduces itself. */
struct HelloMsg
{
    std::string name; //!< Diagnostic peer name ("worker-3", host).

    void encode(ByteWriter &out) const;
    static HelloMsg decode(ByteReader &in);
};

/** Client -> daemon: run this campaign. */
struct SubmitMsg
{
    /** Campaign spec in the lapsim-campaign text format. */
    std::string specText;
    /** Job hashes already completed (resume); never re-run. */
    std::vector<std::string> doneHashes;
    /** Snapshot cadence handed to workers (0 = per-job default). */
    std::uint64_t checkpointEvery = 0;

    void encode(ByteWriter &out) const;
    static SubmitMsg decode(ByteReader &in);
};

/** Daemon -> client: the campaign was accepted. */
struct SubmitAckMsg
{
    std::uint64_t campaignId = 0;
    std::uint64_t jobCount = 0;    //!< Expanded grid size.
    std::uint64_t skippedJobs = 0; //!< Of which resume-skipped.

    void encode(ByteWriter &out) const;
    static SubmitAckMsg decode(ByteReader &in);
};

/** Daemon -> client: one JSONL row (epoch rows precede results). */
struct RowMsg
{
    std::uint64_t campaignId = 0;
    std::string line; //!< Verbatim JSONL row, no trailing newline.

    void encode(ByteWriter &out) const;
    static RowMsg decode(ByteReader &in);
};

/** Daemon -> client: terminal campaign summary. */
struct CampaignDoneMsg
{
    std::uint64_t campaignId = 0;
    std::uint64_t ok = 0;
    std::uint64_t failed = 0;
    std::uint64_t skipped = 0;
    /** Live aggregation of the run (text table; may be empty). */
    std::string summary;

    void encode(ByteWriter &out) const;
    static CampaignDoneMsg decode(ByteReader &in);
};

/** Daemon -> peer: the request failed (message explains why). */
struct ErrorMsg
{
    std::string message;

    void encode(ByteWriter &out) const;
    static ErrorMsg decode(ByteReader &in);
};

/**
 * Daemon -> worker: run grid point @p jobIndex of the campaign.
 *
 * The worker re-expands the spec text locally — grid expansion is a
 * pure function of the spec (and the LAPSIM_* scaling environment),
 * so shipping (spec, index) reproduces the job's exact SimConfig
 * without a config codec. @p jobHash double-checks that property:
 * a worker whose expansion disagrees (mismatched code version or
 * scaling env) refuses the job with a distinct error instead of
 * silently computing different metrics.
 */
struct AssignMsg
{
    std::uint64_t campaignId = 0;
    std::uint64_t jobIndex = 0;
    std::string jobHash;   //!< Expected CampaignJob::hash.
    std::string specText;  //!< Campaign spec (worker caches per id).
    std::uint64_t checkpointEvery = 0;
    /**
     * Latest checkpoint of an interrupted earlier attempt (raw
     * snapshot file bytes; empty for a fresh job). The worker
     * materializes it and resumes mid-job instead of starting over.
     */
    std::string checkpointBlob;

    void encode(ByteWriter &out) const;
    static AssignMsg decode(ByteReader &in);
};

/** Worker -> daemon: alive; optionally carries a fresh snapshot. */
struct HeartbeatMsg
{
    std::uint64_t campaignId = 0;
    std::uint64_t jobIndex = 0;
    /** New checkpoint bytes since the last upload (often empty). */
    std::string checkpointBlob;

    void encode(ByteWriter &out) const;
    static HeartbeatMsg decode(ByteReader &in);
};

/** Worker -> daemon: one finished grid point. */
struct ResultMsg
{
    std::uint64_t campaignId = 0;
    std::uint64_t jobIndex = 0;
    /** JobStatus wire value: 0 = ok, 1 = failed. */
    std::uint8_t status = 1;
    std::string error; //!< Non-empty only when failed.
    double wallMs = 0.0;
    /** Serialized JSONL rows, epoch rows first, result row last. */
    std::vector<std::string> rows;

    void encode(ByteWriter &out) const;
    static ResultMsg decode(ByteReader &in);
};

/** Client -> daemon: aggregate what has finished so far. */
struct QueryMsg
{
    /** Campaign to aggregate; 0 means the most recent one. */
    std::uint64_t campaignId = 0;

    void encode(ByteWriter &out) const;
    static QueryMsg decode(ByteReader &in);
};

/** Daemon -> client: live aggregation over the partial shards. */
struct QueryAckMsg
{
    std::uint64_t campaignId = 0;
    std::uint64_t done = 0;
    std::uint64_t total = 0;
    std::string table; //!< Rendered partial-aggregation table.

    void encode(ByteWriter &out) const;
    static QueryAckMsg decode(ByteReader &in);
};

} // namespace fabric
} // namespace lap

#endif // LAPSIM_FABRIC_PROTOCOL_HH
