/**
 * @file
 * Client side of the campaign fabric (`lapsim-campaign --connect`).
 *
 * submitCampaign() ships a campaign spec to a lapsim-serve daemon
 * and streams the result rows back into the same JSONL file a local
 * run would have produced — rows arrive in grid order (the daemon's
 * reorder buffer guarantees it), resume hashes are sent with the
 * submission so completed grid points are never re-run, and the
 * daemon's terminal summary is returned to the caller. Apart from
 * wall-clock fields, the output file is identical to a serial
 * `lapsim-campaign` run of the same spec.
 *
 * queryCampaign() asks a running daemon for a live aggregation over
 * whatever shards have completed so far.
 */

#ifndef LAPSIM_FABRIC_CLIENT_HH
#define LAPSIM_FABRIC_CLIENT_HH

#include <cstdint>
#include <functional>
#include <string>

#include "fabric/protocol.hh"

namespace lap
{
namespace fabric
{

struct ClientOptions
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /** JSONL result file; empty keeps rows in memory only. */
    std::string outPath;
    /** Send the out file's completed hashes as resume state. */
    bool resume = false;
    /** Worker snapshot cadence (0 = per-job default). */
    std::uint64_t checkpointEvery = 0;
    /** Optional per-row hook (progress printing). */
    std::function<void(const std::string &line)> onRow;
};

/** What the daemon reported about a finished campaign. */
struct ClientRunResult
{
    std::uint64_t campaignId = 0;
    std::uint64_t jobCount = 0;
    std::uint64_t skippedJobs = 0; //!< Resume-skipped at submit.
    std::uint64_t ok = 0;
    std::uint64_t failed = 0;
    std::uint64_t skipped = 0;
    std::string summary; //!< Daemon-side aggregation table.
};

/**
 * Runs @p spec_text on the daemon and blocks until the campaign
 * completes. Fatal (catchable) on connection failure, daemon-side
 * spec rejection, or a dropped connection mid-campaign — the out
 * file then holds every row received so far and a resumed submit
 * picks up from there.
 */
ClientRunResult submitCampaign(const ClientOptions &options,
                               const std::string &spec_text);

/** Live partial aggregation (campaign 0 = the daemon's latest). */
QueryAckMsg queryCampaign(const std::string &host,
                          std::uint16_t port,
                          std::uint64_t campaign_id);

} // namespace fabric
} // namespace lap

#endif // LAPSIM_FABRIC_CLIENT_HH
