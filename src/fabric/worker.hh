/**
 * @file
 * The lapsim-worker runtime: one fleet member of the campaign
 * fabric.
 *
 * Connects to lapsim-serve, announces itself, and then cycles
 * Ready -> Assign -> Result. Each assignment names a grid point as
 * (campaign spec text, job index, expected job hash); the worker
 * re-expands the spec locally — expansion is a pure function — and
 * refuses the job with a distinct error if its own expansion's hash
 * disagrees (version or LAPSIM_* scaling-environment skew), so a
 * mismatched fleet can never silently mix incompatible metrics.
 *
 * Jobs run through the same runCampaignJob()/withJobCheckpointing()
 * path as a local `lapsim-campaign --mid-job-restore` run, writing
 * periodic snapshots to a scratch checkpoint file. A background
 * heartbeat thread uploads fresh snapshot bytes to the daemon, which
 * re-ships them if this worker dies and its job moves on — the
 * `<out>.<hash>.ckpt` kill-resume machinery, stretched over TCP.
 *
 * A lost daemon connection is survivable: the worker reconnects with
 * backoff and rejoins the fleet (daemon-restart tests depend on
 * this). A Shutdown frame ends the worker cleanly.
 */

#ifndef LAPSIM_FABRIC_WORKER_HH
#define LAPSIM_FABRIC_WORKER_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "common/mutex.hh"
#include "fabric/socket.hh"

namespace lap
{
namespace fabric
{

struct SpecCache;

/** See file comment. */
class FabricWorker
{
  public:
    struct Options
    {
        std::string host = "127.0.0.1";
        std::uint16_t port = 0;
        /** Fleet name shown in daemon diagnostics. */
        std::string name = "worker";
        /** Directory for scratch checkpoint files. */
        std::string scratchDir = ".";
        /** Heartbeat (and snapshot upload) cadence. */
        double heartbeatPeriodMs = 1000.0;
        /** Consecutive failed connect attempts before giving up. */
        std::uint32_t connectAttempts = 50;
    };

    explicit FabricWorker(const Options &options);

    /**
     * Runs until the daemon sends Shutdown (exit 0) or the daemon
     * stays unreachable for connectAttempts tries (exit 1).
     */
    int run();

    /** Makes run() return after the current job (tests). */
    void requestStop() { stop_.store(true); }

  private:
    enum class SessionEnd : std::uint8_t
    {
        Shutdown,     //!< Daemon asked us to exit.
        Disconnected, //!< Connection dropped; reconnect.
    };

    SessionEnd serve(TcpConnection &conn);
    void handleAssign(TcpConnection &conn, const AssignMsg &msg,
                      SpecCache &cache);
    void heartbeatLoop(TcpConnection &conn);

    /** Scratch snapshot file of one assigned job. */
    std::string scratchCheckpointPath(
        const std::string &job_hash) const;

    const Options options_;
    std::atomic<bool> stop_{false};
    /** Heartbeat thread liveness for the current session. */
    std::atomic<bool> sessionOpen_{false};

    mutable Mutex mutex_;
    /** Job the heartbeat thread should report on ("" = idle). */
    std::string activeCkptPath_ LAP_GUARDED_BY(mutex_);
    std::uint64_t activeCampaign_ LAP_GUARDED_BY(mutex_) = 0;
    std::uint64_t activeJobIndex_ LAP_GUARDED_BY(mutex_) = 0;
    /** FNV-1a of the last uploaded snapshot (dedup). */
    std::uint64_t lastUploadHash_ LAP_GUARDED_BY(mutex_) = 0;
};

} // namespace fabric
} // namespace lap

#endif // LAPSIM_FABRIC_WORKER_HH
