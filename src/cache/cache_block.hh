/**
 * @file
 * Per-block state enums shared across the hierarchy.
 *
 * The block metadata itself (tag, flags, replacement state) lives in
 * the packed column arrays of cache/tag_store.hh; this header keeps
 * only the scalar state types that many layers name independently of
 * the storage layout: the MOESI coherence state and the fill-state
 * ledger used for redundant/dead-fill accounting (paper Fig 5/6).
 */

#ifndef LAPSIM_CACHE_CACHE_BLOCK_HH
#define LAPSIM_CACHE_CACHE_BLOCK_HH

#include <cstdint>

namespace lap
{

/** MOESI coherence states for blocks in private caches. */
enum class CohState : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive,
    Owned,
    Modified,
};

/** Returns a printable name for a coherence state. */
inline const char *
toString(CohState s)
{
    switch (s) {
      case CohState::Invalid: return "I";
      case CohState::Shared: return "S";
      case CohState::Exclusive: return "E";
      case CohState::Owned: return "O";
      case CohState::Modified: return "M";
    }
    return "?";
}

/** Lifecycle of a non-inclusive LLC data-fill (paper Fig 5/6). */
enum class FillState : std::uint8_t
{
    NotFill,       //!< Block was not installed by a demand data-fill.
    FillUntouched, //!< Installed by a data-fill, not yet reused.
    Touched,       //!< The fill proved useful (hit or dedup target).
};

} // namespace lap

#endif // LAPSIM_CACHE_CACHE_BLOCK_HH
