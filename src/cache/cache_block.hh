/**
 * @file
 * Per-block state for all caches in the hierarchy.
 */

#ifndef LAPSIM_CACHE_CACHE_BLOCK_HH
#define LAPSIM_CACHE_CACHE_BLOCK_HH

#include <cstdint>

#include "common/types.hh"

namespace lap
{

/** MOESI coherence states for blocks in private caches. */
enum class CohState : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive,
    Owned,
    Modified,
};

/** Returns a printable name for a coherence state. */
inline const char *
toString(CohState s)
{
    switch (s) {
      case CohState::Invalid: return "I";
      case CohState::Shared: return "S";
      case CohState::Exclusive: return "E";
      case CohState::Owned: return "O";
      case CohState::Modified: return "M";
    }
    return "?";
}

/** Lifecycle of a non-inclusive LLC data-fill (paper Fig 5/6). */
enum class FillState : std::uint8_t
{
    NotFill,       //!< Block was not installed by a demand data-fill.
    FillUntouched, //!< Installed by a data-fill, not yet reused.
    Touched,       //!< The fill proved useful (hit or dedup target).
};

/**
 * One cache block (tag entry).
 *
 * The same structure serves L1/L2/L3; fields unused by a level stay
 * at their defaults. The paper's loop-bit (one bit per L2/L3 block,
 * Section III-C) is the `loopBit` member. `version` implements the
 * data-integrity verification described in DESIGN.md: it stands in
 * for the block's data payload.
 */
struct CacheBlock
{
    Addr blockAddr = 0;  //!< Block-granular address (byte addr >> 6).
    bool valid = false;
    bool dirty = false;

    /** Loop-bit: the block completed a clean L2<->LLC trip. */
    bool loopBit = false;

    /** MOESI state; meaningful only in private caches. */
    CohState coh = CohState::Invalid;

    /** Data-fill lifecycle for redundant-fill accounting (LLC). */
    FillState fillState = FillState::NotFill;

    /** LRU timestamp (global monotonic counter). */
    std::uint64_t lastTouch = 0;

    /** Re-reference prediction value for RRIP replacement. */
    std::uint8_t rrpv = 3;

    /** Version stamp standing in for the block's data payload. */
    std::uint64_t version = 0;

    /** Access site that caused the current LLC insertion. */
    std::uint32_t site = 0;

    /** Re-referenced since it was installed (dead-block training). */
    bool referenced = false;

    /** Resets the entry to the invalid state. */
    void
    invalidate()
    {
        valid = false;
        dirty = false;
        loopBit = false;
        coh = CohState::Invalid;
        fillState = FillState::NotFill;
        version = 0;
        site = 0;
        referenced = false;
    }
};

} // namespace lap

#endif // LAPSIM_CACHE_CACHE_BLOCK_HH
