/**
 * @file
 * Set-associative cache mechanism.
 *
 * The Cache owns the packed tag store (cache/tag_store.hh), the
 * replacement engine, bank timing, and energy-relevant event
 * counters; all *policy* (inclusion data flow, loop-bit semantics,
 * hybrid placement) lives above it in src/hierarchy and src/core.
 * The ways of a set may be partitioned into an SRAM region and an
 * STT-RAM region to model the paper's hybrid LLC; energy counters
 * are kept per region.
 *
 * Lookups hand out BlockView handles (a null view on miss); direct
 * iteration over the tag store is deliberately not part of this
 * class's API — analysis code uses the read-only CacheInspector
 * (cache/inspector.hh) instead.
 */

#ifndef LAPSIM_CACHE_CACHE_HH
#define LAPSIM_CACHE_CACHE_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "cache/cache_block.hh"
#include "cache/replacement.hh"
#include "cache/tag_store.hh"
#include "common/types.hh"
#include "energy/energy_model.hh"

namespace lap
{

/** Static configuration of one cache. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    std::uint32_t assoc = 4;
    std::uint32_t blockBytes = 64;
    std::uint32_t banks = 1;
    ReplKind repl = ReplKind::Lru;
    /** Demand read / write data-array latency in cycles. */
    Cycle readLatency = 2;
    Cycle writeLatency = 2;
    /** Data-array technology for all ways (when sramWays == 0). */
    MemTech dataTech = MemTech::SRAM;
    /**
     * Hybrid partition: ways [0, sramWays) are SRAM and the rest
     * STT-RAM. 0 keeps the cache uniform in dataTech.
     */
    std::uint32_t sramWays = 0;
    /** STT-RAM region write latency (hybrid caches only). */
    Cycle sttWriteLatency = 33;
    std::uint64_t seed = 1;
};

/** Event counters for one cache; reset between warmup and measure. */
struct CacheStats
{
    std::uint64_t readHits = 0;
    std::uint64_t readMisses = 0;
    std::uint64_t writeHits = 0;
    std::uint64_t writeMisses = 0;
    std::uint64_t fills = 0;
    std::uint64_t evictionsClean = 0;
    std::uint64_t evictionsDirty = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t tagAccesses = 0;
    /** Data-array events per technology region: [SRAM], [STT-RAM]. */
    std::uint64_t dataReads[2] = {0, 0};
    std::uint64_t dataWrites[2] = {0, 0};

    std::uint64_t hits() const { return readHits + writeHits; }
    std::uint64_t misses() const { return readMisses + writeMisses; }
    std::uint64_t accesses() const { return hits() + misses(); }

    /** Energy counters for one technology region of this cache. */
    EnergyCounters energyCounters(MemTech tech) const;

    void reset() { *this = CacheStats{}; }
};

/**
 * A set-associative cache array.
 */
class Cache
{
  public:
    /** Contents of a way evicted by insert(). */
    struct Eviction
    {
        bool valid = false;
        Addr blockAddr = 0;
        bool dirty = false;
        bool loopBit = false;
        std::uint64_t version = 0;
        FillState fillState = FillState::NotFill;
        CohState coh = CohState::Invalid;
        MemTech region = MemTech::SRAM;
        std::uint32_t site = 0;
        bool referenced = false;
    };

    /** Attributes of a block being installed by insert(). */
    struct InsertAttrs
    {
        bool dirty = false;
        bool loopBit = false;
        std::uint64_t version = 0;
        FillState fillState = FillState::NotFill;
        CohState coh = CohState::Invalid;
        /** Access site responsible for this insertion. */
        std::uint32_t site = 0;
        /**
         * Prefer evicting non-loop blocks (the paper's
         * loop-block-aware victim selection, Fig 9).
         */
        bool loopAwareVictim = false;
    };

    /** Result of insert(): the victim plus where the block landed. */
    struct InsertResult
    {
        Eviction eviction;
        std::uint32_t way = 0;
        MemTech region = MemTech::SRAM;
    };

    static constexpr std::uint32_t kAllWays =
        std::numeric_limits<std::uint32_t>::max();

    explicit Cache(const CacheParams &params);

    // --- Geometry -------------------------------------------------
    const CacheParams &params() const { return params_; }
    std::uint64_t numSets() const { return numSets_; }
    std::uint32_t assoc() const { return params_.assoc; }
    bool isHybrid() const { return params_.sramWays > 0; }

    /** Converts a byte address to a block-granular address. */
    Addr blockAddrOf(Addr byte_addr) const
    {
        return byte_addr >> blockBits_;
    }

    /** Set index of a block-granular address. */
    std::uint64_t setIndexOf(Addr block_addr) const
    {
        // Power-of-two set counts use bit masking; other geometries
        // (e.g. a 24MB 16-way LLC) fall back to modulo indexing.
        return setsArePow2_ ? (block_addr & (numSets_ - 1))
                            : (block_addr % numSets_);
    }

    /** Technology region a way belongs to. */
    MemTech
    wayTech(std::uint32_t way) const
    {
        if (!isHybrid())
            return params_.dataTech;
        return way < params_.sramWays ? MemTech::SRAM
                                      : MemTech::STTRAM;
    }

    /** Capacity in bytes of one technology region. */
    std::uint64_t regionBytes(MemTech tech) const;

    // --- Lookup ----------------------------------------------------
    /**
     * Finds a valid block without any statistics or replacement side
     * effects. Used for duplicate checks whose tag energy the caller
     * accounts explicitly. Returns a null view on miss.
     */
    BlockView
    probe(Addr block_addr)
    {
        const std::uint64_t set = setIndexOf(block_addr);
        const std::uint64_t base = store_.indexOf(set, 0);
        for (std::uint64_t m = store_.validMask(set); m != 0;
             m &= m - 1) {
            const std::uint64_t i =
                base + static_cast<std::uint32_t>(std::countr_zero(m));
            if (store_.tag(i) == block_addr)
                return {&store_, i};
        }
        return {};
    }

    /**
     * Demand access: counts a tag access and a hit or miss; on a hit
     * counts the data read (and data write for AccessType::Write),
     * updates replacement state, and marks the block dirty on
     * writes. Returns a null view on miss. The caller stamps
     * `version` on write hits.
     */
    BlockView
    access(Addr block_addr, AccessType type)
    {
        stats_.tagAccesses++;
        BlockView blk = probe(block_addr);
        if (!blk) {
            if (type == AccessType::Read)
                stats_.readMisses++;
            else
                stats_.writeMisses++;
            return {};
        }
        const std::uint64_t i = blk.index();
        const MemTech tech = wayTech(blk.way());
        if (type == AccessType::Read) {
            stats_.readHits++;
            stats_.dataReads[idx(tech)]++;
        } else {
            stats_.writeHits++;
            stats_.dataWrites[idx(tech)]++;
            wayWrites_[i]++;
            store_.setDirty(i, true);
            // Writing a block ends its clean-trip streak (Fig 10(a)).
            store_.setLoopBit(i, false);
        }
        repl_.onHit(store_, i);
        return blk;
    }

    // --- Mutation --------------------------------------------------
    /**
     * Installs a block, evicting a victim if the eligible ways
     * [way_begin, way_end) are all valid. Counts the fill, the data
     * write in the target region, and clean/dirty eviction stats.
     */
    InsertResult insert(Addr block_addr, const InsertAttrs &attrs,
                        std::uint32_t way_begin = 0,
                        std::uint32_t way_end = kAllWays);

    /**
     * Rewrites the data of an existing block (e.g. a dirty victim
     * updating its duplicate): counts a data write, sets dirty and
     * version, and clears the loop bit unless @p keep_loop_bit.
     */
    void writeBlock(BlockView blk, std::uint64_t version,
                    bool keep_loop_bit = false);

    /** Invalidates a block (no data-array energy; tag-side only). */
    void invalidateBlock(BlockView blk);

    /** Replacement-state touch without energy accounting. */
    void touch(BlockView blk) { repl_.onHit(store_, blk.index()); }

    /**
     * Picks the way insert() would use among [way_begin, way_end):
     * an invalid way if any, else the replacement victim (restricted
     * to non-loop blocks first when loop_aware). Exposed for the
     * hybrid placement policies, which need to inspect the victim
     * before deciding on migration.
     */
    std::uint32_t chooseVictimWay(std::uint64_t set,
                                  std::uint32_t way_begin,
                                  std::uint32_t way_end,
                                  bool loop_aware);

    /** True when [way_begin, way_end) has an invalid way. */
    bool
    hasInvalidWay(std::uint64_t set, std::uint32_t way_begin,
                  std::uint32_t way_end) const
    {
        const std::uint64_t range =
            rangeMask(way_begin, clampWayEnd(way_end));
        return (~store_.validMask(set) & range) != 0;
    }

    /**
     * The most-recently-used way holding a loop-block in
     * [way_begin, way_end), or kAllWays when there is none.
     */
    std::uint32_t mruLoopWay(std::uint64_t set, std::uint32_t way_begin,
                             std::uint32_t way_end);

    /** Handle to a way of a set (valid or not; check .valid()). */
    BlockView
    blockAt(std::uint64_t set, std::uint32_t way)
    {
        lap_assert(set < numSets_ && way < params_.assoc,
                   "blockAt(%lu, %u) out of range",
                   static_cast<unsigned long>(set), way);
        return {&store_, store_.indexOf(set, way)};
    }

    // --- Explicit energy accounting for flows the helpers above
    // --- do not cover (e.g. tag-only loop-bit updates).
    void countTagAccess() { stats_.tagAccesses++; }
    void countDataRead(MemTech tech) { stats_.dataReads[idx(tech)]++; }
    void countDataWrite(MemTech tech)
    {
        stats_.dataWrites[idx(tech)]++;
    }

    // --- Bank timing -----------------------------------------------
    std::uint32_t bankOf(Addr block_addr) const
    {
        return static_cast<std::uint32_t>(setIndexOf(block_addr)
                                          % params_.banks);
    }

    /**
     * Reserves the block's bank for @p occupancy cycles starting no
     * earlier than @p now; returns the cycle service begins.
     */
    Cycle reserveBank(Addr block_addr, Cycle now, Cycle occupancy);

    /** Write occupancy of the region a block address would use. */
    Cycle writeOccupancy(MemTech tech) const;

    // --- Statistics ------------------------------------------------
    CacheStats &stats() { return stats_; }
    const CacheStats &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

    // --- Wear (endurance) tracking ---------------------------------
    /**
     * Lifetime data-writes absorbed by each physical way (never reset
     * by resetStats: wear is cumulative). NVM cells endure a bounded
     * number of programs, so the *maximum* per-way count bounds the
     * array's lifetime; see bench/ext_endurance.
     */
    struct WearStats
    {
        std::uint64_t totalWrites = 0;
        std::uint64_t maxPerWay = 0;
        double meanPerWay = 0.0;
        /** max / mean: >1 indicates uneven wear. */
        double imbalance = 0.0;
    };

    /** Wear over one technology region (or the whole cache). */
    WearStats wearStats(MemTech tech) const;

    /** Recency clock of the replacement engine (LRU ordering). */
    std::uint64_t replClock() const { return repl_.clock(); }

    // --- Checkpointing ----------------------------------------------
    /** Serializes contents, replacement, bank timing, wear, stats. */
    void saveState(ByteWriter &out) const;

    /** Restores a snapshot taken on an identically configured cache. */
    void loadState(ByteReader &in);

  private:
    friend class CacheInspector;

    static std::size_t idx(MemTech tech)
    {
        return tech == MemTech::SRAM ? 0 : 1;
    }

    /** Bits [way_begin, way_end); way_end <= 64. */
    static std::uint64_t
    rangeMask(std::uint32_t way_begin, std::uint32_t way_end)
    {
        const std::uint64_t hi = way_end == 64
            ? ~0ULL
            : (1ULL << way_end) - 1;
        return hi & ~((1ULL << way_begin) - 1);
    }

    std::uint32_t clampWayEnd(std::uint32_t way_end) const
    {
        return std::min(way_end, params_.assoc);
    }

    // Geometry is fixed at construction; loadState() validates
    // against it instead of overwriting it.
    CacheParams params_;      // lapsim-lint: transient
    std::uint64_t numSets_;   // lapsim-lint: transient
    bool setsArePow2_ = true; // lapsim-lint: transient
    unsigned blockBits_;      // lapsim-lint: transient
    TagStore store_;
    /** Cumulative data writes per physical way (wear). */
    std::vector<std::uint64_t> wayWrites_;
    Replacement repl_;
    std::vector<Cycle> bankBusyUntil_;
    CacheStats stats_;
};

} // namespace lap

#endif // LAPSIM_CACHE_CACHE_HH
