/**
 * @file
 * Read-only view into a cache's tag store.
 *
 * Analysis layers (the runtime auditor, the epoch sampler, report
 * generation, tests) need to enumerate resident blocks and sample
 * occupancy without touching stats, replacement state or bank
 * timing. The Cache itself exposes no iteration API — handing every
 * caller mutable BlockViews made it too easy for instrumentation to
 * perturb the engine; this inspector is the one sanctioned window.
 * All results are value snapshots (BlockInfo), so holding them never
 * aliases live engine state.
 */

#ifndef LAPSIM_CACHE_INSPECTOR_HH
#define LAPSIM_CACHE_INSPECTOR_HH

#include <bit>
#include <cstdint>

#include "cache/cache.hh"

namespace lap
{

/** Value snapshot of one valid tag-store entry. */
struct BlockInfo
{
    Addr blockAddr = 0;
    std::uint64_t set = 0;
    std::uint32_t way = 0;
    bool valid = false;
    bool dirty = false;
    bool loopBit = false;
    bool referenced = false;
    CohState coh = CohState::Invalid;
    FillState fillState = FillState::NotFill;
    std::uint64_t lastTouch = 0;
    std::uint8_t rrpv = 0;
    std::uint64_t version = 0;
    std::uint32_t site = 0;
};

/** Read-only window into one cache's contents. */
class CacheInspector
{
  public:
    explicit CacheInspector(const Cache &cache) : cache_(cache) {}

    std::uint64_t numSets() const { return cache_.numSets(); }
    std::uint32_t assoc() const { return cache_.assoc(); }

    /** Occupancy mask of a set (bit w = way w valid). */
    std::uint64_t validMask(std::uint64_t set) const
    {
        return cache_.store_.validMask(set);
    }

    /** Loop-block mask of a set (valid ways with the loop-bit). */
    std::uint64_t loopMask(std::uint64_t set) const
    {
        return cache_.store_.loopMask(set);
    }

    bool validAt(std::uint64_t set, std::uint32_t way) const
    {
        return (validMask(set) >> way) & 1;
    }

    /** Snapshot of one way (valid=false when the way is empty). */
    BlockInfo
    block(std::uint64_t set, std::uint32_t way) const
    {
        const TagStore &ts = cache_.store_;
        const std::uint64_t i = ts.indexOf(set, way);
        BlockInfo info;
        info.set = set;
        info.way = way;
        info.valid = ts.valid(i);
        info.blockAddr = ts.tag(i);
        info.dirty = ts.dirty(i);
        info.loopBit = ts.loopBit(i);
        info.referenced = ts.referenced(i);
        info.coh = ts.coh(i);
        info.fillState = ts.fillState(i);
        info.lastTouch = ts.lastTouch(i);
        info.rrpv = ts.rrpv(i);
        info.version = ts.version(i);
        info.site = ts.site(i);
        return info;
    }

    /**
     * Snapshot of the valid block holding @p block_addr, or a
     * BlockInfo with valid=false when not resident.
     */
    BlockInfo
    find(Addr block_addr) const
    {
        const std::uint64_t set = cache_.setIndexOf(block_addr);
        const TagStore &ts = cache_.store_;
        for (std::uint64_t m = ts.validMask(set); m != 0; m &= m - 1) {
            const auto way =
                static_cast<std::uint32_t>(std::countr_zero(m));
            if (ts.tag(ts.indexOf(set, way)) == block_addr)
                return block(set, way);
        }
        return {};
    }

    /** Number of valid blocks currently resident. */
    std::uint64_t
    validBlockCount() const
    {
        std::uint64_t n = 0;
        for (std::uint64_t set = 0; set < numSets(); ++set)
            n += static_cast<std::uint64_t>(
                std::popcount(validMask(set)));
        return n;
    }

    /** Fraction of valid blocks with the loop-bit set. */
    double
    loopResidency() const
    {
        std::uint64_t valid = 0;
        std::uint64_t loop = 0;
        for (std::uint64_t set = 0; set < numSets(); ++set) {
            valid += static_cast<std::uint64_t>(
                std::popcount(validMask(set)));
            loop += static_cast<std::uint64_t>(
                std::popcount(loopMask(set)));
        }
        return valid == 0
            ? 0.0
            : static_cast<double>(loop) / static_cast<double>(valid);
    }

    /** Fraction of valid blocks that are dirty. */
    double
    dirtyFraction() const
    {
        std::uint64_t valid = 0;
        std::uint64_t dirty = 0;
        forEachValid([&](const BlockInfo &info) {
            valid++;
            dirty += info.dirty ? 1 : 0;
        });
        return valid == 0
            ? 0.0
            : static_cast<double>(dirty) / static_cast<double>(valid);
    }

    /** Calls fn(const BlockInfo &) for every valid block. */
    template <typename Fn>
    void
    forEachValid(Fn &&fn) const
    {
        for (std::uint64_t set = 0; set < numSets(); ++set) {
            for (std::uint64_t m = validMask(set); m != 0;
                 m &= m - 1) {
                const auto way =
                    static_cast<std::uint32_t>(std::countr_zero(m));
                fn(block(set, way));
            }
        }
    }

  private:
    const Cache &cache_;
};

} // namespace lap

#endif // LAPSIM_CACHE_INSPECTOR_HH
