#include "cache/cache.hh"

#include <algorithm>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace lap
{

namespace
{

/** Validates the geometry and returns the set count. */
std::uint64_t
checkedNumSets(const CacheParams &p)
{
    lap_assert(isPowerOfTwo(p.blockBytes), "block size %u not pow2",
               p.blockBytes);
    lap_assert(p.assoc >= 1 && p.assoc <= 64,
               "associativity %u out of range", p.assoc);
    lap_assert(p.sizeBytes
                   % (static_cast<std::uint64_t>(p.assoc)
                      * p.blockBytes) == 0,
               "size not a multiple of assoc*blockBytes");
    lap_assert(p.banks >= 1, "need at least one bank");
    lap_assert(p.sramWays <= p.assoc,
               "sramWays %u exceeds associativity %u", p.sramWays,
               p.assoc);
    const std::uint64_t num_sets = p.sizeBytes
        / (static_cast<std::uint64_t>(p.assoc) * p.blockBytes);
    lap_assert(num_sets >= 1, "cache has no sets");
    return num_sets;
}

} // namespace

EnergyCounters
CacheStats::energyCounters(MemTech tech) const
{
    EnergyCounters c;
    const std::size_t i = tech == MemTech::SRAM ? 0 : 1;
    c.dataReads = dataReads[i];
    c.dataWrites = dataWrites[i];
    // Tag accesses are attributed once, to the SRAM side (tags are
    // SRAM regardless of data technology); callers query them via
    // the SRAM region or the tagAccesses counter directly.
    c.tagAccesses = tech == MemTech::SRAM ? tagAccesses : 0;
    return c;
}

Cache::Cache(const CacheParams &params)
    : params_(params),
      numSets_(checkedNumSets(params)),
      setsArePow2_(isPowerOfTwo(numSets_)),
      blockBits_(floorLog2(params.blockBytes)),
      store_(numSets_, params.assoc),
      wayWrites_(numSets_ * params.assoc, 0),
      repl_(params.repl, params.seed),
      bankBusyUntil_(params.banks, 0)
{
}

std::uint64_t
Cache::regionBytes(MemTech tech) const
{
    if (!isHybrid())
        return tech == params_.dataTech ? params_.sizeBytes : 0;
    const std::uint64_t per_way = params_.sizeBytes / params_.assoc;
    const std::uint32_t ways = tech == MemTech::SRAM
        ? params_.sramWays
        : params_.assoc - params_.sramWays;
    return per_way * ways;
}

std::uint32_t
Cache::chooseVictimWay(std::uint64_t set, std::uint32_t way_begin,
                       std::uint32_t way_end, bool loop_aware)
{
    way_end = clampWayEnd(way_end);
    lap_assert(way_begin < way_end, "empty way range [%u,%u)",
               way_begin, way_end);
    const std::uint64_t range = rangeMask(way_begin, way_end);
    const std::uint64_t valid = store_.validMask(set) & range;
    const std::uint64_t invalid = ~valid & range;
    // Lowest invalid way first (== the old ascending scan).
    if (invalid != 0)
        return static_cast<std::uint32_t>(std::countr_zero(invalid));
    // Loop-block-aware priority (Fig 9): invalid, then the base
    // policy's victim among non-loop blocks, then among loop blocks.
    if (loop_aware) {
        const std::uint64_t non_loop = valid & ~store_.loopMask(set);
        if (non_loop != 0)
            return repl_.victimAmong(store_, set, non_loop);
    }
    return repl_.victimAmong(store_, set, valid);
}

std::uint32_t
Cache::mruLoopWay(std::uint64_t set, std::uint32_t way_begin,
                  std::uint32_t way_end)
{
    way_end = clampWayEnd(way_end);
    const std::uint64_t loop =
        store_.loopMask(set) & rangeMask(way_begin, way_end);
    if (loop == 0)
        return kAllWays;
    return repl_.mruAmong(store_, set, loop);
}

Cache::InsertResult
Cache::insert(Addr block_addr, const InsertAttrs &attrs,
              std::uint32_t way_begin, std::uint32_t way_end)
{
    way_end = clampWayEnd(way_end);
    const std::uint64_t set = setIndexOf(block_addr);
    lap_assert(!probe(block_addr),
               "insert of already-present block %llx",
               static_cast<unsigned long long>(block_addr));

    const std::uint32_t way =
        chooseVictimWay(set, way_begin, way_end, attrs.loopAwareVictim);
    const std::uint64_t i = store_.indexOf(set, way);

    InsertResult result;
    result.way = way;
    result.region = wayTech(way);

    Eviction &ev = result.eviction;
    if (store_.valid(i)) {
        ev.valid = true;
        ev.blockAddr = store_.tag(i);
        ev.dirty = store_.dirty(i);
        ev.loopBit = store_.loopBit(i);
        ev.version = store_.version(i);
        ev.fillState = store_.fillState(i);
        ev.coh = store_.coh(i);
        ev.region = wayTech(way);
        ev.site = store_.site(i);
        ev.referenced = store_.referenced(i);
        if (ev.dirty)
            stats_.evictionsDirty++;
        else
            stats_.evictionsClean++;
    }

    store_.install(i, block_addr, attrs.dirty, attrs.loopBit,
                   attrs.version, attrs.fillState, attrs.coh,
                   attrs.site);
    repl_.onFill(store_, i);

    stats_.fills++;
    stats_.dataWrites[idx(wayTech(way))]++;
    wayWrites_[i]++;
    return result;
}

void
Cache::writeBlock(BlockView blk, std::uint64_t version,
                  bool keep_loop_bit)
{
    lap_assert(blk.valid(), "write to invalid block");
    blk.setDirty(true);
    blk.setVersion(version);
    if (!keep_loop_bit)
        blk.setLoopBit(false);
    stats_.dataWrites[idx(wayTech(blk.way()))]++;
    wayWrites_[blk.index()]++;
    repl_.onHit(store_, blk.index());
}

void
Cache::invalidateBlock(BlockView blk)
{
    lap_assert(blk.valid(), "invalidate of invalid block");
    blk.invalidate();
    stats_.invalidations++;
}

Cache::WearStats
Cache::wearStats(MemTech tech) const
{
    WearStats w;
    std::uint64_t ways_counted = 0;
    for (std::size_t i = 0; i < wayWrites_.size(); ++i) {
        const auto way = static_cast<std::uint32_t>(i % params_.assoc);
        if (wayTech(way) != tech)
            continue;
        ways_counted++;
        w.totalWrites += wayWrites_[i];
        w.maxPerWay = std::max(w.maxPerWay, wayWrites_[i]);
    }
    if (ways_counted > 0) {
        w.meanPerWay = static_cast<double>(w.totalWrites)
            / static_cast<double>(ways_counted);
    }
    w.imbalance = w.meanPerWay > 0.0
        ? static_cast<double>(w.maxPerWay) / w.meanPerWay
        : 0.0;
    return w;
}

Cycle
Cache::reserveBank(Addr block_addr, Cycle now, Cycle occupancy)
{
    auto &busy = bankBusyUntil_[bankOf(block_addr)];
    const Cycle start = std::max(now, busy);
    busy = start + occupancy;
    return start;
}

Cycle
Cache::writeOccupancy(MemTech tech) const
{
    if (isHybrid() && tech == MemTech::STTRAM)
        return params_.sttWriteLatency;
    if (!isHybrid() && params_.dataTech == MemTech::STTRAM)
        return params_.writeLatency;
    return params_.writeLatency;
}

void
Cache::saveState(ByteWriter &out) const
{
    store_.saveState(out);
    out.vecU64(wayWrites_);
    repl_.saveState(out);
    out.vecU64(bankBusyUntil_);
    out.u64(stats_.readHits);
    out.u64(stats_.readMisses);
    out.u64(stats_.writeHits);
    out.u64(stats_.writeMisses);
    out.u64(stats_.fills);
    out.u64(stats_.evictionsClean);
    out.u64(stats_.evictionsDirty);
    out.u64(stats_.invalidations);
    out.u64(stats_.tagAccesses);
    for (std::uint64_t n : stats_.dataReads)
        out.u64(n);
    for (std::uint64_t n : stats_.dataWrites)
        out.u64(n);
}

void
Cache::loadState(ByteReader &in)
{
    store_.loadState(in);
    in.vecU64(wayWrites_);
    repl_.loadState(in);
    in.vecU64(bankBusyUntil_);
    if (wayWrites_.size() != numSets_ * params_.assoc
        || bankBusyUntil_.size() != params_.banks)
        lap_fatal("checkpoint cache '%s' does not match this "
                  "geometry", params_.name.c_str());
    stats_.readHits = in.u64();
    stats_.readMisses = in.u64();
    stats_.writeHits = in.u64();
    stats_.writeMisses = in.u64();
    stats_.fills = in.u64();
    stats_.evictionsClean = in.u64();
    stats_.evictionsDirty = in.u64();
    stats_.invalidations = in.u64();
    stats_.tagAccesses = in.u64();
    for (std::uint64_t &n : stats_.dataReads)
        n = in.u64();
    for (std::uint64_t &n : stats_.dataWrites)
        n = in.u64();
}

} // namespace lap
