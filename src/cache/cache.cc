#include "cache/cache.hh"

#include <algorithm>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace lap
{

EnergyCounters
CacheStats::energyCounters(MemTech tech) const
{
    EnergyCounters c;
    const std::size_t i = tech == MemTech::SRAM ? 0 : 1;
    c.dataReads = dataReads[i];
    c.dataWrites = dataWrites[i];
    // Tag accesses are attributed once, to the SRAM side (tags are
    // SRAM regardless of data technology); callers query them via
    // the SRAM region or the tagAccesses counter directly.
    c.tagAccesses = tech == MemTech::SRAM ? tagAccesses : 0;
    return c;
}

Cache::Cache(const CacheParams &params)
    : params_(params)
{
    lap_assert(isPowerOfTwo(params_.blockBytes), "block size %u not pow2",
               params_.blockBytes);
    lap_assert(params_.assoc >= 1 && params_.assoc <= 64,
               "associativity %u out of range", params_.assoc);
    lap_assert(params_.sizeBytes
                   % (static_cast<std::uint64_t>(params_.assoc)
                      * params_.blockBytes) == 0,
               "size not a multiple of assoc*blockBytes");
    lap_assert(params_.banks >= 1, "need at least one bank");
    lap_assert(params_.sramWays <= params_.assoc,
               "sramWays %u exceeds associativity %u", params_.sramWays,
               params_.assoc);

    blockBits_ = floorLog2(params_.blockBytes);
    numSets_ = params_.sizeBytes
        / (static_cast<std::uint64_t>(params_.assoc) * params_.blockBytes);
    lap_assert(numSets_ >= 1, "cache has no sets");
    setsArePow2_ = isPowerOfTwo(numSets_);

    blocks_.resize(numSets_ * params_.assoc);
    wayWrites_.assign(blocks_.size(), 0);
    repl_ = makeReplacementPolicy(params_.repl, params_.seed);
    bankBusyUntil_.assign(params_.banks, 0);
}

std::uint64_t
Cache::regionBytes(MemTech tech) const
{
    if (!isHybrid())
        return tech == params_.dataTech ? params_.sizeBytes : 0;
    const std::uint64_t per_way = params_.sizeBytes / params_.assoc;
    const std::uint32_t ways = tech == MemTech::SRAM
        ? params_.sramWays
        : params_.assoc - params_.sramWays;
    return per_way * ways;
}

std::span<CacheBlock>
Cache::setSpan(std::uint64_t set)
{
    return {blocks_.data() + set * params_.assoc, params_.assoc};
}

CacheBlock *
Cache::probe(Addr block_addr)
{
    auto set = setSpan(setIndexOf(block_addr));
    for (auto &blk : set) {
        if (blk.valid && blk.blockAddr == block_addr)
            return &blk;
    }
    return nullptr;
}

const CacheBlock *
Cache::probe(Addr block_addr) const
{
    return const_cast<Cache *>(this)->probe(block_addr);
}

CacheBlock *
Cache::access(Addr block_addr, AccessType type)
{
    stats_.tagAccesses++;
    CacheBlock *blk = probe(block_addr);
    if (!blk) {
        if (type == AccessType::Read)
            stats_.readMisses++;
        else
            stats_.writeMisses++;
        return nullptr;
    }
    const MemTech tech = wayTech(wayOf(*blk));
    if (type == AccessType::Read) {
        stats_.readHits++;
        stats_.dataReads[idx(tech)]++;
    } else {
        stats_.writeHits++;
        stats_.dataWrites[idx(tech)]++;
        wayWrites_[static_cast<std::size_t>(blk - blocks_.data())]++;
        blk->dirty = true;
        // Writing a block ends its clean-trip streak (Fig 10(a)).
        blk->loopBit = false;
    }
    repl_->onHit(*blk);
    return blk;
}

std::uint64_t
Cache::eligibleMask(std::uint64_t set, std::uint32_t way_begin,
                    std::uint32_t way_end, bool non_loop_only) const
{
    std::uint64_t mask = 0;
    for (std::uint32_t way = way_begin; way < way_end; ++way) {
        const CacheBlock &blk = blocks_[set * params_.assoc + way];
        if (!blk.valid)
            continue;
        if (non_loop_only && blk.loopBit)
            continue;
        mask |= 1ULL << way;
    }
    return mask;
}

std::uint32_t
Cache::clampWayEnd(std::uint32_t way_end) const
{
    return std::min(way_end, params_.assoc);
}

bool
Cache::hasInvalidWay(std::uint64_t set, std::uint32_t way_begin,
                     std::uint32_t way_end) const
{
    way_end = clampWayEnd(way_end);
    for (std::uint32_t way = way_begin; way < way_end; ++way) {
        if (!blocks_[set * params_.assoc + way].valid)
            return true;
    }
    return false;
}

std::uint32_t
Cache::chooseVictimWay(std::uint64_t set, std::uint32_t way_begin,
                       std::uint32_t way_end, bool loop_aware)
{
    way_end = clampWayEnd(way_end);
    lap_assert(way_begin < way_end, "empty way range [%u,%u)", way_begin,
               way_end);
    for (std::uint32_t way = way_begin; way < way_end; ++way) {
        if (!blocks_[set * params_.assoc + way].valid)
            return way;
    }
    // Loop-block-aware priority (Fig 9): invalid, then the base
    // policy's victim among non-loop blocks, then among loop blocks.
    if (loop_aware) {
        const std::uint64_t non_loop =
            eligibleMask(set, way_begin, way_end, true);
        if (non_loop != 0)
            return repl_->victimAmong(setSpan(set), non_loop);
    }
    const std::uint64_t all = eligibleMask(set, way_begin, way_end, false);
    return repl_->victimAmong(setSpan(set), all);
}

std::uint32_t
Cache::mruLoopWay(std::uint64_t set, std::uint32_t way_begin,
                  std::uint32_t way_end)
{
    way_end = clampWayEnd(way_end);
    std::uint64_t loop_mask = 0;
    for (std::uint32_t way = way_begin; way < way_end; ++way) {
        const CacheBlock &blk = blocks_[set * params_.assoc + way];
        if (blk.valid && blk.loopBit)
            loop_mask |= 1ULL << way;
    }
    if (loop_mask == 0)
        return kAllWays;
    return repl_->mruAmong(setSpan(set), loop_mask);
}

Cache::InsertResult
Cache::insert(Addr block_addr, const InsertAttrs &attrs,
              std::uint32_t way_begin, std::uint32_t way_end)
{
    way_end = clampWayEnd(way_end);
    const std::uint64_t set = setIndexOf(block_addr);
    lap_assert(probe(block_addr) == nullptr,
               "insert of already-present block %llx",
               static_cast<unsigned long long>(block_addr));

    const std::uint32_t way =
        chooseVictimWay(set, way_begin, way_end, attrs.loopAwareVictim);
    CacheBlock &blk = blocks_[set * params_.assoc + way];

    InsertResult result;
    result.way = way;
    result.region = wayTech(way);

    Eviction &ev = result.eviction;
    if (blk.valid) {
        ev.valid = true;
        ev.blockAddr = blk.blockAddr;
        ev.dirty = blk.dirty;
        ev.loopBit = blk.loopBit;
        ev.version = blk.version;
        ev.fillState = blk.fillState;
        ev.coh = blk.coh;
        ev.region = wayTech(way);
        ev.site = blk.site;
        ev.referenced = blk.referenced;
        if (blk.dirty)
            stats_.evictionsDirty++;
        else
            stats_.evictionsClean++;
    }

    blk.blockAddr = block_addr;
    blk.valid = true;
    blk.dirty = attrs.dirty;
    blk.loopBit = attrs.loopBit;
    blk.version = attrs.version;
    blk.fillState = attrs.fillState;
    blk.coh = attrs.coh;
    blk.site = attrs.site;
    blk.referenced = false;
    repl_->onFill(blk);

    stats_.fills++;
    stats_.dataWrites[idx(wayTech(way))]++;
    wayWrites_[set * params_.assoc + way]++;
    return result;
}

void
Cache::writeBlock(CacheBlock &blk, std::uint64_t version,
                  bool keep_loop_bit)
{
    lap_assert(blk.valid, "write to invalid block");
    blk.dirty = true;
    blk.version = version;
    if (!keep_loop_bit)
        blk.loopBit = false;
    stats_.dataWrites[idx(wayTech(wayOf(blk)))]++;
    wayWrites_[static_cast<std::size_t>(&blk - blocks_.data())]++;
    repl_->onHit(blk);
}

void
Cache::invalidateBlock(CacheBlock &blk)
{
    lap_assert(blk.valid, "invalidate of invalid block");
    blk.invalidate();
    stats_.invalidations++;
}

CacheBlock &
Cache::blockAt(std::uint64_t set, std::uint32_t way)
{
    lap_assert(set < numSets_ && way < params_.assoc,
               "blockAt(%lu, %u) out of range",
               static_cast<unsigned long>(set), way);
    return blocks_[set * params_.assoc + way];
}

const CacheBlock &
Cache::blockAt(std::uint64_t set, std::uint32_t way) const
{
    return const_cast<Cache *>(this)->blockAt(set, way);
}

std::uint32_t
Cache::wayOf(const CacheBlock &blk) const
{
    const std::ptrdiff_t offset = &blk - blocks_.data();
    lap_assert(offset >= 0
                   && offset < static_cast<std::ptrdiff_t>(blocks_.size()),
               "block not owned by this cache");
    return static_cast<std::uint32_t>(offset % params_.assoc);
}

std::uint64_t
Cache::setOf(const CacheBlock &blk) const
{
    const std::ptrdiff_t offset = &blk - blocks_.data();
    lap_assert(offset >= 0
                   && offset < static_cast<std::ptrdiff_t>(blocks_.size()),
               "block not owned by this cache");
    return static_cast<std::uint64_t>(offset) / params_.assoc;
}

Cache::WearStats
Cache::wearStats(MemTech tech) const
{
    WearStats w;
    std::uint64_t ways_counted = 0;
    for (std::size_t i = 0; i < wayWrites_.size(); ++i) {
        const auto way = static_cast<std::uint32_t>(i % params_.assoc);
        if (wayTech(way) != tech)
            continue;
        ways_counted++;
        w.totalWrites += wayWrites_[i];
        w.maxPerWay = std::max(w.maxPerWay, wayWrites_[i]);
    }
    if (ways_counted > 0) {
        w.meanPerWay = static_cast<double>(w.totalWrites)
            / static_cast<double>(ways_counted);
    }
    w.imbalance = w.meanPerWay > 0.0
        ? static_cast<double>(w.maxPerWay) / w.meanPerWay
        : 0.0;
    return w;
}

Cycle
Cache::reserveBank(Addr block_addr, Cycle now, Cycle occupancy)
{
    auto &busy = bankBusyUntil_[bankOf(block_addr)];
    const Cycle start = std::max(now, busy);
    busy = start + occupancy;
    return start;
}

Cycle
Cache::writeOccupancy(MemTech tech) const
{
    if (isHybrid() && tech == MemTech::STTRAM)
        return params_.sttWriteLatency;
    if (!isHybrid() && params_.dataTech == MemTech::STTRAM)
        return params_.writeLatency;
    return params_.writeLatency;
}

} // namespace lap
