#include "cache/replacement.hh"

#include <bit>
#include <limits>

#include "common/logging.hh"

namespace lap
{

const char *
toString(ReplKind kind)
{
    switch (kind) {
      case ReplKind::Lru: return "LRU";
      case ReplKind::Rrip: return "RRIP";
      case ReplKind::Random: return "Random";
    }
    return "?";
}

void
LruPolicy::onFill(CacheBlock &blk)
{
    blk.lastTouch = ++clock_;
}

void
LruPolicy::onHit(CacheBlock &blk)
{
    blk.lastTouch = ++clock_;
}

std::uint32_t
LruPolicy::victimAmong(std::span<const CacheBlock> set,
                       std::uint64_t eligible)
{
    lap_assert(eligible != 0, "LRU victim requested with no candidates");
    std::uint32_t victim = 0;
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (std::uint32_t way = 0; way < set.size(); ++way) {
        if (!(eligible & (1ULL << way)))
            continue;
        if (set[way].lastTouch < oldest) {
            oldest = set[way].lastTouch;
            victim = way;
        }
    }
    return victim;
}

std::uint32_t
LruPolicy::mruAmong(std::span<const CacheBlock> set, std::uint64_t eligible)
{
    lap_assert(eligible != 0, "LRU MRU requested with no candidates");
    std::uint32_t mru = 0;
    std::uint64_t newest = 0;
    bool found = false;
    for (std::uint32_t way = 0; way < set.size(); ++way) {
        if (!(eligible & (1ULL << way)))
            continue;
        if (!found || set[way].lastTouch >= newest) {
            newest = set[way].lastTouch;
            mru = way;
            found = true;
        }
    }
    return mru;
}

void
RripPolicy::onFill(CacheBlock &blk)
{
    // SRRIP inserts with a long (but not distant) prediction.
    blk.rrpv = static_cast<std::uint8_t>(maxRrpv_ - 1);
}

void
RripPolicy::onHit(CacheBlock &blk)
{
    blk.rrpv = 0;
}

std::uint32_t
RripPolicy::victimAmong(std::span<const CacheBlock> set,
                        std::uint64_t eligible)
{
    lap_assert(eligible != 0, "RRIP victim requested with no candidates");
    // Note: aging mutates rrpv, so we cast away constness of the
    // blocks we own logically; the cache passes its own storage.
    auto *blocks = const_cast<CacheBlock *>(set.data());
    for (;;) {
        for (std::uint32_t way = 0; way < set.size(); ++way) {
            if (!(eligible & (1ULL << way)))
                continue;
            if (blocks[way].rrpv >= maxRrpv_)
                return way;
        }
        for (std::uint32_t way = 0; way < set.size(); ++way) {
            if (!(eligible & (1ULL << way)))
                continue;
            if (blocks[way].rrpv < maxRrpv_)
                ++blocks[way].rrpv;
        }
    }
}

std::uint32_t
RripPolicy::mruAmong(std::span<const CacheBlock> set, std::uint64_t eligible)
{
    lap_assert(eligible != 0, "RRIP MRU requested with no candidates");
    // Nearest predicted re-reference = smallest RRPV.
    std::uint32_t mru = 0;
    std::uint8_t best = 0xff;
    for (std::uint32_t way = 0; way < set.size(); ++way) {
        if (!(eligible & (1ULL << way)))
            continue;
        if (set[way].rrpv < best) {
            best = set[way].rrpv;
            mru = way;
        }
    }
    return mru;
}

void
RandomPolicy::onFill(CacheBlock &blk)
{
    (void)blk;
}

void
RandomPolicy::onHit(CacheBlock &blk)
{
    (void)blk;
}

std::uint32_t
RandomPolicy::victimAmong(std::span<const CacheBlock> set,
                          std::uint64_t eligible)
{
    lap_assert(eligible != 0, "random victim requested with no candidates");
    const int count = std::popcount(eligible);
    std::uint64_t pick = rng_.below(static_cast<std::uint64_t>(count));
    for (std::uint32_t way = 0; way < set.size(); ++way) {
        if (!(eligible & (1ULL << way)))
            continue;
        if (pick == 0)
            return way;
        --pick;
    }
    lap_panic("unreachable: eligible mask exhausted");
}

std::uint32_t
RandomPolicy::mruAmong(std::span<const CacheBlock> set,
                       std::uint64_t eligible)
{
    return victimAmong(set, eligible);
}

std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(ReplKind kind, std::uint64_t seed)
{
    switch (kind) {
      case ReplKind::Lru:
        return std::make_unique<LruPolicy>();
      case ReplKind::Rrip:
        return std::make_unique<RripPolicy>();
      case ReplKind::Random:
        return std::make_unique<RandomPolicy>(seed);
    }
    lap_panic("unknown replacement kind");
}

} // namespace lap
