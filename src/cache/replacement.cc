#include "cache/replacement.hh"

namespace lap
{

const char *
toString(ReplKind kind)
{
    switch (kind) {
      case ReplKind::Lru: return "LRU";
      case ReplKind::Rrip: return "RRIP";
      case ReplKind::Random: return "Random";
    }
    return "?";
}

} // namespace lap
