/**
 * @file
 * Replacement policies over a cache set.
 *
 * A policy updates per-block metadata on fills and hits and selects
 * a victim way among an eligible subset of a set (the subset enables
 * both the hybrid LLC's way partitions and the loop-block-aware
 * victim filter of LAP, which restricts candidates to non-loop
 * blocks first).
 */

#ifndef LAPSIM_CACHE_REPLACEMENT_HH
#define LAPSIM_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "cache/cache_block.hh"
#include "common/rng.hh"

namespace lap
{

/** Selector for the base replacement algorithm of a cache. */
enum class ReplKind : std::uint8_t
{
    Lru,
    Rrip,
    Random,
};

const char *toString(ReplKind kind);

/**
 * Base replacement policy interface.
 *
 * victimAmong() chooses among the ways whose bit is set in
 * `eligible`; all eligible ways are valid (the cache prefers invalid
 * ways before consulting the policy).
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    virtual std::string name() const = 0;

    /** Called when a block is installed. */
    virtual void onFill(CacheBlock &blk) = 0;

    /** Called when a block is hit by a demand access. */
    virtual void onHit(CacheBlock &blk) = 0;

    /**
     * Picks a victim way.
     *
     * @param set       All ways of the set.
     * @param eligible  Bitmask of candidate ways (non-empty, valid).
     * @return          Way index of the victim.
     */
    virtual std::uint32_t victimAmong(std::span<const CacheBlock> set,
                                      std::uint64_t eligible) = 0;

    /**
     * Picks the most-recently-useful way among the candidates (the
     * opposite end of the recency order from victimAmong). Used by
     * the Lhybrid placement, which migrates the MRU loop-block from
     * the SRAM ways into STT-RAM (paper Fig 11(b)).
     */
    virtual std::uint32_t mruAmong(std::span<const CacheBlock> set,
                                   std::uint64_t eligible) = 0;
};

/** Classic least-recently-used via global timestamps. */
class LruPolicy : public ReplacementPolicy
{
  public:
    std::string name() const override { return "LRU"; }
    void onFill(CacheBlock &blk) override;
    void onHit(CacheBlock &blk) override;
    std::uint32_t victimAmong(std::span<const CacheBlock> set,
                              std::uint64_t eligible) override;
    std::uint32_t mruAmong(std::span<const CacheBlock> set,
                           std::uint64_t eligible) override;

    /** Exposes the recency clock so tests can reason about order. */
    std::uint64_t clock() const { return clock_; }

  private:
    std::uint64_t clock_ = 0;
};

/**
 * Static RRIP (SRRIP) with 2-bit re-reference prediction values.
 * Referenced by the paper as an alternative base policy for the
 * loop-block-aware replacement and Lhybrid placement.
 */
class RripPolicy : public ReplacementPolicy
{
  public:
    explicit RripPolicy(std::uint8_t max_rrpv = 3) : maxRrpv_(max_rrpv) {}

    std::string name() const override { return "RRIP"; }
    void onFill(CacheBlock &blk) override;
    void onHit(CacheBlock &blk) override;
    std::uint32_t victimAmong(std::span<const CacheBlock> set,
                              std::uint64_t eligible) override;
    std::uint32_t mruAmong(std::span<const CacheBlock> set,
                           std::uint64_t eligible) override;

  private:
    std::uint8_t maxRrpv_;
};

/** Uniform-random victim selection (used as a testing baseline). */
class RandomPolicy : public ReplacementPolicy
{
  public:
    explicit RandomPolicy(std::uint64_t seed = 1) : rng_(seed) {}

    std::string name() const override { return "Random"; }
    void onFill(CacheBlock &blk) override;
    void onHit(CacheBlock &blk) override;
    std::uint32_t victimAmong(std::span<const CacheBlock> set,
                              std::uint64_t eligible) override;
    std::uint32_t mruAmong(std::span<const CacheBlock> set,
                           std::uint64_t eligible) override;

  private:
    Rng rng_;
};

/** Factory for the base policies. */
std::unique_ptr<ReplacementPolicy> makeReplacementPolicy(ReplKind kind,
                                                         std::uint64_t seed);

} // namespace lap

#endif // LAPSIM_CACHE_REPLACEMENT_HH
