/**
 * @file
 * Replacement engine over the packed tag store.
 *
 * One concrete class implements LRU, SRRIP and Random selection
 * behind an enum switch. The cache used to dispatch through a
 * virtual ReplacementPolicy on every fill and hit; the algorithm is
 * fixed for the lifetime of a cache, so the indirect call bought
 * nothing but a branch-predictor miss on the hottest edge in the
 * simulator. The switch on `kind_` compiles to a predictable direct
 * branch and lets the per-policy bodies inline into the cache's
 * access path.
 *
 * victimAmong()/mruAmong() choose among the ways whose bit is set in
 * `eligible`; all eligible ways are valid (the cache prefers invalid
 * ways before consulting the policy). Candidates are scanned in
 * ascending way order and tie-breaks are preserved exactly from the
 * former per-policy classes: LRU victim takes the first-oldest
 * (strict <), LRU MRU takes the last-newest (>=), RRIP ages only
 * eligible ways, and Random consumes one Rng draw per selection.
 */

#ifndef LAPSIM_CACHE_REPLACEMENT_HH
#define LAPSIM_CACHE_REPLACEMENT_HH

#include <bit>
#include <cstdint>
#include <limits>
#include <string>

#include "cache/tag_store.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace lap
{

/** Selector for the base replacement algorithm of a cache. */
enum class ReplKind : std::uint8_t
{
    Lru,
    Rrip,
    Random,
};

const char *toString(ReplKind kind);

/** Devirtualized replacement: enum-dispatched LRU / RRIP / Random. */
class Replacement final
{
  public:
    explicit Replacement(ReplKind kind, std::uint64_t seed = 1,
                         std::uint8_t max_rrpv = 3)
        : rng_(seed), kind_(kind), maxRrpv_(max_rrpv)
    {
    }

    ReplKind kind() const { return kind_; }

    std::string name() const { return toString(kind_); }

    /** Called when a block is installed. @p i is the flat index. */
    void
    onFill(TagStore &ts, std::uint64_t i)
    {
        switch (kind_) {
          case ReplKind::Lru:
            ts.setLastTouch(i, ++clock_);
            break;
          case ReplKind::Rrip:
            // SRRIP inserts with a long (not distant) prediction.
            ts.setRrpv(i, static_cast<std::uint8_t>(maxRrpv_ - 1));
            break;
          case ReplKind::Random:
            break;
        }
    }

    /** Called when a block is hit by a demand access. */
    void
    onHit(TagStore &ts, std::uint64_t i)
    {
        switch (kind_) {
          case ReplKind::Lru:
            ts.setLastTouch(i, ++clock_);
            break;
          case ReplKind::Rrip:
            ts.setRrpv(i, 0);
            break;
          case ReplKind::Random:
            break;
        }
    }

    /**
     * Picks a victim way of @p set among the @p eligible candidates
     * (non-empty mask of valid ways).
     */
    std::uint32_t
    victimAmong(TagStore &ts, std::uint64_t set, std::uint64_t eligible)
    {
        lap_assert(eligible != 0,
                   "victim requested with no candidates");
        const std::uint64_t base = ts.indexOf(set, 0);
        switch (kind_) {
          case ReplKind::Lru: {
            std::uint32_t victim = 0;
            std::uint64_t oldest =
                std::numeric_limits<std::uint64_t>::max();
            for (std::uint64_t m = eligible; m != 0; m &= m - 1) {
                const auto way = static_cast<std::uint32_t>(
                    std::countr_zero(m));
                const std::uint64_t touch = ts.lastTouch(base + way);
                if (touch < oldest) {
                    oldest = touch;
                    victim = way;
                }
            }
            return victim;
          }
          case ReplKind::Rrip: {
            for (;;) {
                for (std::uint64_t m = eligible; m != 0; m &= m - 1) {
                    const auto way = static_cast<std::uint32_t>(
                        std::countr_zero(m));
                    if (ts.rrpv(base + way) >= maxRrpv_)
                        return way;
                }
                for (std::uint64_t m = eligible; m != 0; m &= m - 1) {
                    const auto way = static_cast<std::uint32_t>(
                        std::countr_zero(m));
                    const std::uint8_t v = ts.rrpv(base + way);
                    if (v < maxRrpv_) {
                        ts.setRrpv(base + way,
                                   static_cast<std::uint8_t>(v + 1));
                    }
                }
            }
          }
          case ReplKind::Random:
            return nthEligible(eligible);
        }
        lap_panic("unknown replacement kind");
    }

    /**
     * Picks the most-recently-useful way among the candidates (the
     * opposite end of the recency order from victimAmong). Used by
     * the Lhybrid placement, which migrates the MRU loop-block from
     * the SRAM ways into STT-RAM (paper Fig 11(b)).
     */
    std::uint32_t
    mruAmong(TagStore &ts, std::uint64_t set, std::uint64_t eligible)
    {
        lap_assert(eligible != 0, "MRU requested with no candidates");
        const std::uint64_t base = ts.indexOf(set, 0);
        switch (kind_) {
          case ReplKind::Lru: {
            std::uint32_t mru = 0;
            std::uint64_t newest = 0;
            bool found = false;
            for (std::uint64_t m = eligible; m != 0; m &= m - 1) {
                const auto way = static_cast<std::uint32_t>(
                    std::countr_zero(m));
                const std::uint64_t touch = ts.lastTouch(base + way);
                if (!found || touch >= newest) {
                    newest = touch;
                    mru = way;
                    found = true;
                }
            }
            return mru;
          }
          case ReplKind::Rrip: {
            // Nearest predicted re-reference = smallest RRPV.
            std::uint32_t mru = 0;
            std::uint8_t best = 0xff;
            for (std::uint64_t m = eligible; m != 0; m &= m - 1) {
                const auto way = static_cast<std::uint32_t>(
                    std::countr_zero(m));
                if (ts.rrpv(base + way) < best) {
                    best = ts.rrpv(base + way);
                    mru = way;
                }
            }
            return mru;
          }
          case ReplKind::Random:
            return nthEligible(eligible);
        }
        lap_panic("unknown replacement kind");
    }

    /** Exposes the recency clock so tests can reason about order. */
    std::uint64_t clock() const { return clock_; }

    /** Serializes the mutable state: Rng draws and recency clock. */
    void
    saveState(ByteWriter &out) const
    {
        out.u8(static_cast<std::uint8_t>(kind_));
        std::uint64_t rng_state[4];
        rng_.getState(rng_state);
        for (std::uint64_t word : rng_state)
            out.u64(word);
        out.u64(clock_);
    }

    /** Restores the mutable state; the kind must match. */
    void
    loadState(ByteReader &in)
    {
        const auto kind = static_cast<ReplKind>(in.u8());
        if (kind != kind_)
            lap_fatal("checkpoint replacement kind '%s' does not "
                      "match this cache's '%s'", toString(kind),
                      toString(kind_));
        std::uint64_t rng_state[4];
        for (std::uint64_t &word : rng_state)
            word = in.u64();
        rng_.setState(rng_state);
        clock_ = in.u64();
    }

  private:
    /** Random pick: same draw sequence as the former RandomPolicy. */
    std::uint32_t
    nthEligible(std::uint64_t eligible)
    {
        const int count = std::popcount(eligible);
        std::uint64_t pick =
            rng_.below(static_cast<std::uint64_t>(count));
        std::uint64_t m = eligible;
        while (pick > 0) {
            m &= m - 1;
            --pick;
        }
        return static_cast<std::uint32_t>(std::countr_zero(m));
    }

    Rng rng_;
    std::uint64_t clock_ = 0;
    ReplKind kind_;
    std::uint8_t maxRrpv_; // lapsim-lint: transient (config)
};

} // namespace lap

#endif // LAPSIM_CACHE_REPLACEMENT_HH
