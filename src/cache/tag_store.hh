/**
 * @file
 * Packed structure-of-arrays tag store and the BlockView handle.
 *
 * The hot path of every simulated access is a set probe followed by
 * a handful of metadata updates. Storing blocks as an array of
 * structs made each probe stride over ~48 bytes of unrelated fields
 * per way; the TagStore instead keeps each field in its own
 * contiguous column (tags, packed flag bytes, RRPV, LRU stamps,
 * versions, sites) indexed by `set * assoc + way`, plus two per-set
 * 64-bit occupancy masks:
 *
 *   - validMask(set): bit w set iff way w holds a valid block,
 *   - loopMask(set):  bit w set iff way w is valid with its loop-bit
 *     set (paper Section III-C).
 *
 * Probes scan only the tag column for ways selected by the valid
 * mask, victim selection intersects masks instead of iterating
 * blocks, and the loop-aware policies get their eligible-way sets
 * (non-loop ways, MRU loop way) as single mask expressions. The
 * 64-bit masks are why the engine caps associativity at 64.
 *
 * Code that previously held a `CacheBlock *` holds a BlockView: a
 * {store, index} pair exposing typed accessors. A default-constructed
 * view is "null" (explicit operator bool), which replaces the old
 * nullptr-on-miss convention.
 */

#ifndef LAPSIM_CACHE_TAG_STORE_HH
#define LAPSIM_CACHE_TAG_STORE_HH

#include <cstdint>
#include <vector>

#include "cache/cache_block.hh"
#include "common/logging.hh"
#include "common/serial.hh"
#include "common/types.hh"

namespace lap
{

/** Column-major storage for every block's metadata in one cache. */
class TagStore
{
  public:
    TagStore(std::uint64_t num_sets, std::uint32_t assoc)
        : numSets_(num_sets), assoc_(assoc)
    {
        lap_assert(assoc >= 1 && assoc <= 64,
                   "tag store packs way occupancy into 64-bit masks; "
                   "associativity %u unsupported", assoc);
        const std::size_t n =
            static_cast<std::size_t>(num_sets) * assoc;
        tags_.assign(n, 0);
        flags_.assign(n, 0);
        coh_.assign(n, static_cast<std::uint8_t>(CohState::Invalid));
        fill_.assign(n, static_cast<std::uint8_t>(FillState::NotFill));
        rrpv_.assign(n, 3);
        lastTouch_.assign(n, 0);
        version_.assign(n, 0);
        site_.assign(n, 0);
        validMask_.assign(num_sets, 0);
        loopMask_.assign(num_sets, 0);
    }

    std::uint64_t numSets() const { return numSets_; }
    std::uint32_t assoc() const { return assoc_; }

    std::uint64_t
    indexOf(std::uint64_t set, std::uint32_t way) const
    {
        return set * assoc_ + way;
    }

    std::uint64_t setOf(std::uint64_t index) const
    {
        return index / assoc_;
    }

    std::uint32_t wayOf(std::uint64_t index) const
    {
        return static_cast<std::uint32_t>(index % assoc_);
    }

    /** Occupancy mask: bit w iff way w of @p set is valid. */
    std::uint64_t validMask(std::uint64_t set) const
    {
        return validMask_[set];
    }

    /** Bit w iff way w of @p set is valid with its loop-bit set. */
    std::uint64_t loopMask(std::uint64_t set) const
    {
        return loopMask_[set];
    }

    // Field columns, by flat index.

    Addr tag(std::uint64_t i) const { return tags_[i]; }
    void setTag(std::uint64_t i, Addr a) { tags_[i] = a; }

    /** Tag column base for manual probe loops. */
    const Addr *tagData() const { return tags_.data(); }

    bool valid(std::uint64_t i) const { return flags_[i] & kValid; }

    void
    setValid(std::uint64_t i, bool v)
    {
        setFlag(i, kValid, v);
        const std::uint64_t bit = bitOf(i);
        if (v) {
            validMask_[setOf(i)] |= bit;
            if (flags_[i] & kLoop)
                loopMask_[setOf(i)] |= bit;
        } else {
            validMask_[setOf(i)] &= ~bit;
            loopMask_[setOf(i)] &= ~bit;
        }
    }

    bool dirty(std::uint64_t i) const { return flags_[i] & kDirty; }
    void setDirty(std::uint64_t i, bool v) { setFlag(i, kDirty, v); }

    bool loopBit(std::uint64_t i) const { return flags_[i] & kLoop; }

    void
    setLoopBit(std::uint64_t i, bool v)
    {
        setFlag(i, kLoop, v);
        if (flags_[i] & kValid) {
            const std::uint64_t bit = bitOf(i);
            if (v)
                loopMask_[setOf(i)] |= bit;
            else
                loopMask_[setOf(i)] &= ~bit;
        }
    }

    bool referenced(std::uint64_t i) const
    {
        return flags_[i] & kReferenced;
    }

    void setReferenced(std::uint64_t i, bool v)
    {
        setFlag(i, kReferenced, v);
    }

    CohState coh(std::uint64_t i) const
    {
        return static_cast<CohState>(coh_[i]);
    }

    void setCoh(std::uint64_t i, CohState s)
    {
        coh_[i] = static_cast<std::uint8_t>(s);
    }

    FillState fillState(std::uint64_t i) const
    {
        return static_cast<FillState>(fill_[i]);
    }

    void setFillState(std::uint64_t i, FillState s)
    {
        fill_[i] = static_cast<std::uint8_t>(s);
    }

    std::uint8_t rrpv(std::uint64_t i) const { return rrpv_[i]; }
    void setRrpv(std::uint64_t i, std::uint8_t v) { rrpv_[i] = v; }

    std::uint64_t lastTouch(std::uint64_t i) const
    {
        return lastTouch_[i];
    }

    void setLastTouch(std::uint64_t i, std::uint64_t v)
    {
        lastTouch_[i] = v;
    }

    std::uint64_t version(std::uint64_t i) const
    {
        return version_[i];
    }

    void setVersion(std::uint64_t i, std::uint64_t v)
    {
        version_[i] = v;
    }

    std::uint32_t site(std::uint64_t i) const { return site_[i]; }
    void setSite(std::uint64_t i, std::uint32_t v) { site_[i] = v; }

    /**
     * Writes every field of a newly installed block in one shot
     * (valid, not referenced) and updates the occupancy masks; the
     * cache's insert path uses this instead of per-field setters.
     */
    void
    install(std::uint64_t i, Addr tag, bool dirty, bool loop,
            std::uint64_t version, FillState fill, CohState coh,
            std::uint32_t site)
    {
        tags_[i] = tag;
        flags_[i] = static_cast<std::uint8_t>(
            kValid | (dirty ? kDirty : 0) | (loop ? kLoop : 0));
        coh_[i] = static_cast<std::uint8_t>(coh);
        fill_[i] = static_cast<std::uint8_t>(fill);
        version_[i] = version;
        site_[i] = site;
        const std::uint64_t bit = bitOf(i);
        const std::uint64_t set = setOf(i);
        validMask_[set] |= bit;
        if (loop)
            loopMask_[set] |= bit;
        else
            loopMask_[set] &= ~bit;
    }

    /**
     * Resets the entry to the invalid state. LRU stamp and RRPV are
     * deliberately preserved (they carry no meaning while invalid
     * and are rewritten on the next fill).
     */
    void
    invalidate(std::uint64_t i)
    {
        flags_[i] = 0;
        coh_[i] = static_cast<std::uint8_t>(CohState::Invalid);
        fill_[i] = static_cast<std::uint8_t>(FillState::NotFill);
        version_[i] = 0;
        site_[i] = 0;
        const std::uint64_t bit = bitOf(i);
        validMask_[setOf(i)] &= ~bit;
        loopMask_[setOf(i)] &= ~bit;
    }

    /** Serializes every column (checkpointing). */
    void
    saveState(ByteWriter &out) const
    {
        out.u64(numSets_);
        out.u32(assoc_);
        out.vecU64(tags_);
        out.vecU8(flags_);
        out.vecU8(coh_);
        out.vecU8(fill_);
        out.vecU8(rrpv_);
        out.vecU64(lastTouch_);
        out.vecU64(version_);
        out.vecU32(site_);
        out.vecU64(validMask_);
        out.vecU64(loopMask_);
    }

    /** Restores every column; the geometry must match. */
    void
    loadState(ByteReader &in)
    {
        const std::uint64_t sets = in.u64();
        const std::uint32_t assoc = in.u32();
        if (sets != numSets_ || assoc != assoc_)
            lap_fatal("checkpoint tag store is %llux%u but this cache "
                      "is %llux%u",
                      static_cast<unsigned long long>(sets), assoc,
                      static_cast<unsigned long long>(numSets_),
                      assoc_);
        in.vecU64(tags_);
        in.vecU8(flags_);
        in.vecU8(coh_);
        in.vecU8(fill_);
        in.vecU8(rrpv_);
        in.vecU64(lastTouch_);
        in.vecU64(version_);
        in.vecU32(site_);
        in.vecU64(validMask_);
        in.vecU64(loopMask_);
        const std::size_t n =
            static_cast<std::size_t>(numSets_) * assoc_;
        if (tags_.size() != n || flags_.size() != n
            || coh_.size() != n || fill_.size() != n
            || rrpv_.size() != n || lastTouch_.size() != n
            || version_.size() != n || site_.size() != n
            || validMask_.size() != numSets_
            || loopMask_.size() != numSets_)
            lap_fatal("checkpoint tag-store columns do not match the "
                      "declared geometry");
    }

  private:
    static constexpr std::uint8_t kValid = 1;
    static constexpr std::uint8_t kDirty = 2;
    static constexpr std::uint8_t kLoop = 4;
    static constexpr std::uint8_t kReferenced = 8;

    std::uint64_t bitOf(std::uint64_t i) const
    {
        return 1ULL << (i % assoc_);
    }

    void
    setFlag(std::uint64_t i, std::uint8_t flag, bool v)
    {
        if (v)
            flags_[i] = static_cast<std::uint8_t>(flags_[i] | flag);
        else
            flags_[i] = static_cast<std::uint8_t>(flags_[i] & ~flag);
    }

    std::uint64_t numSets_;
    std::uint32_t assoc_;
    std::vector<Addr> tags_;
    std::vector<std::uint8_t> flags_;
    std::vector<std::uint8_t> coh_;
    std::vector<std::uint8_t> fill_;
    std::vector<std::uint8_t> rrpv_;
    std::vector<std::uint64_t> lastTouch_;
    std::vector<std::uint64_t> version_;
    std::vector<std::uint32_t> site_;
    std::vector<std::uint64_t> validMask_;
    std::vector<std::uint64_t> loopMask_;
};

/**
 * Mutable handle to one tag-store entry; the unit of exchange on the
 * engine's hot path (what `CacheBlock *` used to be). Copyable and
 * cheap; a default-constructed view is null and converts to false.
 */
class BlockView
{
  public:
    BlockView() = default;

    BlockView(TagStore *store, std::uint64_t index)
        : store_(store), index_(index)
    {
    }

    explicit operator bool() const { return store_ != nullptr; }

    bool operator==(const BlockView &o) const
    {
        return store_ == o.store_ && index_ == o.index_;
    }

    bool operator!=(const BlockView &o) const { return !(*this == o); }

    std::uint64_t index() const { return index_; }
    std::uint64_t set() const { return store_->setOf(index_); }
    std::uint32_t way() const { return store_->wayOf(index_); }

    Addr blockAddr() const { return store_->tag(index_); }
    bool valid() const { return store_->valid(index_); }
    bool dirty() const { return store_->dirty(index_); }
    bool loopBit() const { return store_->loopBit(index_); }
    bool referenced() const { return store_->referenced(index_); }
    CohState coh() const { return store_->coh(index_); }
    FillState fillState() const { return store_->fillState(index_); }
    std::uint8_t rrpv() const { return store_->rrpv(index_); }
    std::uint64_t lastTouch() const
    {
        return store_->lastTouch(index_);
    }
    std::uint64_t version() const { return store_->version(index_); }
    std::uint32_t site() const { return store_->site(index_); }

    void setBlockAddr(Addr a) const { store_->setTag(index_, a); }
    void setValid(bool v) const { store_->setValid(index_, v); }
    void setDirty(bool v) const { store_->setDirty(index_, v); }
    void setLoopBit(bool v) const { store_->setLoopBit(index_, v); }
    void setReferenced(bool v) const
    {
        store_->setReferenced(index_, v);
    }
    void setCoh(CohState s) const { store_->setCoh(index_, s); }
    void setFillState(FillState s) const
    {
        store_->setFillState(index_, s);
    }
    void setVersion(std::uint64_t v) const
    {
        store_->setVersion(index_, v);
    }
    void setSite(std::uint32_t v) const { store_->setSite(index_, v); }

    void invalidate() const { store_->invalidate(index_); }

  private:
    TagStore *store_ = nullptr;
    std::uint64_t index_ = 0;
};

} // namespace lap

#endif // LAPSIM_CACHE_TAG_STORE_HH
