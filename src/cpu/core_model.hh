/**
 * @file
 * Analytic core timing model.
 *
 * Stands in for the paper's 4-wide out-of-order cores (Table II):
 * non-memory instructions retire at the issue width, and memory
 * stall beyond the L1 hit latency is discounted by a per-workload
 * memory-level-parallelism factor (an OoO core overlaps independent
 * misses). This reproduces the performance *shape* that matters for
 * the experiments — miss counts and long STT-RAM writes throttling
 * throughput — without microarchitectural detail.
 */

#ifndef LAPSIM_CPU_CORE_MODEL_HH
#define LAPSIM_CPU_CORE_MODEL_HH

#include <cstdint>

#include "common/serial.hh"
#include "common/types.hh"

namespace lap
{

/** Static core parameters. */
struct CoreParams
{
    double issueWidth = 4.0;
    /** Memory-level parallelism: divides post-L1 stall cycles. */
    double mlp = 2.0;
    /** L1 hit latency (never overlapped). */
    Cycle l1Latency = 2;
};

/** One core's execution clock and retired-instruction counters. */
class CoreModel
{
  public:
    explicit CoreModel(const CoreParams &params) : params_(params) {}

    Cycle now() const { return cycle_; }
    std::uint64_t instructions() const { return instrs_; }
    std::uint64_t memRefs() const { return memRefs_; }

    /**
     * Advances the clock over @p gap_instrs non-memory instructions
     * followed by one memory access that completed at @p done_at.
     */
    void
    advance(std::uint32_t gap_instrs, Cycle done_at)
    {
        issueDebt_ += static_cast<double>(gap_instrs) / params_.issueWidth;
        const auto whole = static_cast<Cycle>(issueDebt_);
        issueDebt_ -= static_cast<double>(whole);
        cycle_ += whole;

        const Cycle latency = done_at > cycle_ ? done_at - cycle_ : 0;
        Cycle stall;
        if (latency <= params_.l1Latency) {
            stall = latency;
        } else {
            stall = params_.l1Latency
                + static_cast<Cycle>(
                      static_cast<double>(latency - params_.l1Latency)
                      / params_.mlp);
        }
        cycle_ += stall;
        stallCycles_ += stall;

        instrs_ += gap_instrs + 1;
        memRefs_ += 1;
    }

    /** Marks the start of the measurement window. */
    void
    beginMeasurement()
    {
        measureStartCycle_ = cycle_;
        measureStartInstrs_ = instrs_;
    }

    Cycle measuredCycles() const { return cycle_ - measureStartCycle_; }

    std::uint64_t
    measuredInstructions() const
    {
        return instrs_ - measureStartInstrs_;
    }

    double
    ipc() const
    {
        const Cycle c = measuredCycles();
        return c == 0 ? 0.0
                      : static_cast<double>(measuredInstructions())
                / static_cast<double>(c);
    }

    std::uint64_t stallCycles() const { return stallCycles_; }
    const CoreParams &params() const { return params_; }

    /** Serializes the execution clock and counters (checkpointing). */
    void
    saveState(ByteWriter &out) const
    {
        out.u64(cycle_);
        out.u64(instrs_);
        out.u64(memRefs_);
        out.u64(stallCycles_);
        out.f64(issueDebt_);
        out.u64(measureStartCycle_);
        out.u64(measureStartInstrs_);
    }

    void
    loadState(ByteReader &in)
    {
        cycle_ = in.u64();
        instrs_ = in.u64();
        memRefs_ = in.u64();
        stallCycles_ = in.u64();
        issueDebt_ = in.f64();
        measureStartCycle_ = in.u64();
        measureStartInstrs_ = in.u64();
    }

  private:
    CoreParams params_; // lapsim-lint: transient (config)
    Cycle cycle_ = 0;
    std::uint64_t instrs_ = 0;
    std::uint64_t memRefs_ = 0;
    std::uint64_t stallCycles_ = 0;
    double issueDebt_ = 0.0;
    Cycle measureStartCycle_ = 0;
    std::uint64_t measureStartInstrs_ = 0;
};

} // namespace lap

#endif // LAPSIM_CPU_CORE_MODEL_HH
