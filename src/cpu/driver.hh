/**
 * @file
 * Multi-core simulation driver.
 *
 * Interleaves per-core trace streams through the shared hierarchy in
 * global cycle order (the core with the smallest local clock issues
 * next), so contention on shared LLC banks and DRAM channels is
 * resolved in a deterministic, causally sensible order.
 */

#ifndef LAPSIM_CPU_DRIVER_HH
#define LAPSIM_CPU_DRIVER_HH

#include <memory>
#include <vector>

#include "cpu/core_model.hh"
#include "cpu/trace.hh"
#include "hierarchy/hierarchy.hh"

namespace lap
{

/** Per-core results of a measured run. */
struct CoreRunStats
{
    std::uint64_t instructions = 0;
    Cycle cycles = 0;
    std::uint64_t memRefs = 0;
    double ipc = 0.0;
};

/** Aggregate results of a measured run. */
struct RunResult
{
    std::vector<CoreRunStats> cores;
    /** Wall-clock cycles of the measurement window (max core). */
    Cycle elapsedCycles = 0;
    /** Sum of per-core IPCs (the paper's throughput metric). */
    double throughput = 0.0;
    /** Total instructions retired in the window. */
    std::uint64_t instructions = 0;
};

/** Drives trace streams through a hierarchy. */
class MultiCoreDriver
{
  public:
    /**
     * @param hierarchy  The hierarchy (owned elsewhere).
     * @param traces     One source per core.
     * @param cores      Per-core timing parameters.
     */
    MultiCoreDriver(CacheHierarchy &hierarchy,
                    std::vector<TraceSource *> traces,
                    const std::vector<CoreParams> &cores);

    /** Convenience: identical timing parameters on every core. */
    MultiCoreDriver(CacheHierarchy &hierarchy,
                    std::vector<TraceSource *> traces,
                    const CoreParams &core);

    /** Runs @p refs_per_core references on every core. */
    void run(std::uint64_t refs_per_core);

    /**
     * Full experiment: warmup, statistics reset, measured run,
     * statistics finalization.
     */
    RunResult measure(std::uint64_t warmup_refs,
                      std::uint64_t measure_refs);

    CoreModel &core(CoreId id) { return cores_.at(id); }

  private:
    CacheHierarchy &hierarchy_;
    std::vector<TraceSource *> traces_;
    std::vector<CoreModel> cores_;
};

} // namespace lap

#endif // LAPSIM_CPU_DRIVER_HH
