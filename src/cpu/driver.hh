/**
 * @file
 * Multi-core simulation driver.
 *
 * Interleaves per-core trace streams through the shared hierarchy in
 * global cycle order (the core with the smallest local clock issues
 * next), so contention on shared LLC banks and DRAM channels is
 * resolved in a deterministic, causally sensible order.
 */

#ifndef LAPSIM_CPU_DRIVER_HH
#define LAPSIM_CPU_DRIVER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/serial.hh"
#include "cpu/core_model.hh"
#include "cpu/trace.hh"
#include "hierarchy/hierarchy.hh"

namespace lap
{

/** Per-core results of a measured run. */
struct CoreRunStats
{
    std::uint64_t instructions = 0;
    Cycle cycles = 0;
    std::uint64_t memRefs = 0;
    double ipc = 0.0;
};

/** Aggregate results of a measured run. */
struct RunResult
{
    std::vector<CoreRunStats> cores;
    /** Wall-clock cycles of the measurement window (max core). */
    Cycle elapsedCycles = 0;
    /** Sum of per-core IPCs (the paper's throughput metric). */
    double throughput = 0.0;
    /** Total instructions retired in the window. */
    std::uint64_t instructions = 0;
};

/** Drives trace streams through a hierarchy. */
class MultiCoreDriver
{
  public:
    /**
     * @param hierarchy  The hierarchy (owned elsewhere).
     * @param traces     One source per core.
     * @param cores      Per-core timing parameters.
     */
    MultiCoreDriver(CacheHierarchy &hierarchy,
                    std::vector<TraceSource *> traces,
                    const std::vector<CoreParams> &cores);

    /** Convenience: identical timing parameters on every core. */
    MultiCoreDriver(CacheHierarchy &hierarchy,
                    std::vector<TraceSource *> traces,
                    const CoreParams &core);

    /** Runs @p refs_per_core references on every core. */
    void run(std::uint64_t refs_per_core);

    /**
     * Full experiment: warmup, statistics reset, measured run,
     * statistics finalization. On a driver restored from a
     * checkpoint, resumes the interrupted phase instead of starting
     * over: a mid-warmup snapshot finishes warmup and measures
     * normally; a mid-measurement snapshot skips the warmup and the
     * statistics reset and runs only the remaining references.
     */
    RunResult measure(std::uint64_t warmup_refs,
                      std::uint64_t measure_refs);

    CoreModel &core(CoreId id) { return cores_.at(id); }

    /**
     * Installs a periodic checkpoint hook: after every @p every
     * completed references (summed over all cores, all phases), @p
     * hook is invoked with the total issued so far. The driver's
     * state is consistent at that point, so the hook may serialize
     * the whole simulation. @p every == 0 disables the hook.
     */
    void
    setCheckpointHook(std::uint64_t every,
                      std::function<void(std::uint64_t)> hook)
    {
        checkpointEvery_ = every;
        hook_ = std::move(hook);
    }

    /** Total references issued across all cores and phases. */
    std::uint64_t refsIssued() const { return refsIssued_; }

    /** Serializes phase, progress and core clocks (checkpointing). */
    void saveState(ByteWriter &out) const;

    /** Restores a snapshot; the next measure() call resumes it. */
    void loadState(ByteReader &in);

  private:
    /** Where the driver is within a measure() experiment. */
    enum class Phase : std::uint8_t
    {
        Warmup,
        Measure,
        Done,
    };

    /** Gives every core @p refs_per_core references of work. */
    void assignWork(std::uint64_t refs_per_core);

    /** Issues references until every core's work is exhausted. */
    void runLoop();

    // Wiring injected at construction, re-bound on restore.
    CacheHierarchy &hierarchy_;          // lapsim-lint: transient
    std::vector<TraceSource *> traces_;  // lapsim-lint: transient
    std::vector<CoreModel> cores_;
    std::vector<std::uint64_t> remaining_;
    Phase phase_ = Phase::Warmup;
    std::uint64_t refsIssued_ = 0;
    std::uint64_t checkpointEvery_ = 0;  // lapsim-lint: transient
    std::function<void(std::uint64_t)> hook_; // lapsim-lint: transient
    // Set by loadState() only; intentionally not round-tripped.
    bool restored_ = false; // lapsim-lint: transient
};

} // namespace lap

#endif // LAPSIM_CPU_DRIVER_HH
