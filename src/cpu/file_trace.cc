#include "cpu/file_trace.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace lap
{

FileTrace::FileTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        lap_fatal("cannot open trace file '%s'", path.c_str());

    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        lineno++;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ss(line);
        std::string op;
        std::string addr_text;
        std::uint32_t gap = 0;
        std::uint32_t site = 0;
        ss >> op >> addr_text;
        if (op.empty() || addr_text.empty()) {
            lap_fatal("%s:%zu: malformed trace line '%s'", path.c_str(),
                      lineno, line.c_str());
        }
        ss >> gap >> site; // optional columns

        MemRef ref;
        if (op == "R" || op == "r") {
            ref.type = AccessType::Read;
        } else if (op == "W" || op == "w") {
            ref.type = AccessType::Write;
        } else {
            lap_fatal("%s:%zu: unknown op '%s' (expected R or W)",
                      path.c_str(), lineno, op.c_str());
        }
        ref.addr = std::stoull(addr_text, nullptr, 0);
        ref.gapInstrs = gap;
        ref.site = site;
        refs_.push_back(ref);
    }
    if (refs_.empty())
        lap_fatal("trace file '%s' contains no references", path.c_str());
}

MemRef
FileTrace::next()
{
    MemRef ref = refs_[cursor_];
    cursor_ = (cursor_ + 1) % refs_.size();
    return ref;
}

} // namespace lap
