/**
 * @file
 * Replays a memory trace from a text file.
 *
 * Format: one reference per line, `R|W <hex-or-dec address> [gap]`,
 * where gap is the number of non-memory instructions preceding the
 * reference (default 0). Lines starting with '#' are comments. The
 * trace wraps around at EOF so it can drive arbitrarily long runs.
 */

#ifndef LAPSIM_CPU_FILE_TRACE_HH
#define LAPSIM_CPU_FILE_TRACE_HH

#include <string>
#include <vector>

#include "cpu/trace.hh"

namespace lap
{

/** File-backed trace source (wraps at EOF). */
class FileTrace : public TraceSource
{
  public:
    explicit FileTrace(const std::string &path);

    MemRef next() override;
    void reset() override { cursor_ = 0; }

    std::size_t size() const { return refs_.size(); }

    /** Parsed references, in file order (used by lapsim-trace to
     *  convert text traces into the binary LAPTR1 format). */
    const std::vector<MemRef> &refs() const { return refs_; }

  private:
    std::vector<MemRef> refs_;
    std::size_t cursor_ = 0;
};

} // namespace lap

#endif // LAPSIM_CPU_FILE_TRACE_HH
