#include "cpu/driver.hh"

#include <algorithm>

#include "common/logging.hh"

namespace lap
{

MultiCoreDriver::MultiCoreDriver(CacheHierarchy &hierarchy,
                                 std::vector<TraceSource *> traces,
                                 const std::vector<CoreParams> &cores)
    : hierarchy_(hierarchy), traces_(std::move(traces))
{
    lap_assert(traces_.size() == hierarchy_.params().numCores,
               "need exactly one trace per core (%zu vs %u)",
               traces_.size(), hierarchy_.params().numCores);
    lap_assert(cores.size() == traces_.size(),
               "need exactly one CoreParams per core");
    for (std::size_t i = 0; i < traces_.size(); ++i) {
        lap_assert(traces_[i] != nullptr, "trace %zu is null", i);
        cores_.emplace_back(cores[i]);
    }
}

MultiCoreDriver::MultiCoreDriver(CacheHierarchy &hierarchy,
                                 std::vector<TraceSource *> traces,
                                 const CoreParams &core)
    : MultiCoreDriver(
          hierarchy, traces,
          std::vector<CoreParams>(hierarchy.params().numCores, core))
{
}

void
MultiCoreDriver::run(std::uint64_t refs_per_core)
{
    const std::uint32_t n = static_cast<std::uint32_t>(cores_.size());
    std::vector<std::uint64_t> remaining(n, refs_per_core);

    for (;;) {
        // Pick the lagging core that still has work.
        std::uint32_t pick = n;
        Cycle best = 0;
        for (std::uint32_t c = 0; c < n; ++c) {
            if (remaining[c] == 0)
                continue;
            if (pick == n || cores_[c].now() < best) {
                pick = c;
                best = cores_[c].now();
            }
        }
        if (pick == n)
            break;

        const MemRef ref = traces_[pick]->next();
        const auto result = hierarchy_.access(
            pick, ref.addr, ref.type, cores_[pick].now(), ref.site);
        cores_[pick].advance(ref.gapInstrs, result.doneAt);
        remaining[pick]--;
    }
}

RunResult
MultiCoreDriver::measure(std::uint64_t warmup_refs,
                         std::uint64_t measure_refs)
{
    if (warmup_refs > 0)
        run(warmup_refs);

    hierarchy_.resetStats();
    for (auto &core : cores_)
        core.beginMeasurement();

    run(measure_refs);
    hierarchy_.finishMeasurement();

    RunResult result;
    Cycle max_cycles = 0;
    for (auto &core : cores_) {
        CoreRunStats s;
        s.instructions = core.measuredInstructions();
        s.cycles = core.measuredCycles();
        s.memRefs = core.memRefs();
        s.ipc = core.ipc();
        result.throughput += s.ipc;
        result.instructions += s.instructions;
        max_cycles = std::max(max_cycles, s.cycles);
        result.cores.push_back(s);
    }
    result.elapsedCycles = max_cycles;
    return result;
}

} // namespace lap
