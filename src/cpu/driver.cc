#include "cpu/driver.hh"

#include <algorithm>

#include "common/logging.hh"

namespace lap
{

MultiCoreDriver::MultiCoreDriver(CacheHierarchy &hierarchy,
                                 std::vector<TraceSource *> traces,
                                 const std::vector<CoreParams> &cores)
    : hierarchy_(hierarchy), traces_(std::move(traces))
{
    lap_assert(traces_.size() == hierarchy_.params().numCores,
               "need exactly one trace per core (%zu vs %u)",
               traces_.size(), hierarchy_.params().numCores);
    lap_assert(cores.size() == traces_.size(),
               "need exactly one CoreParams per core");
    for (std::size_t i = 0; i < traces_.size(); ++i) {
        lap_assert(traces_[i] != nullptr, "trace %zu is null", i);
        cores_.emplace_back(cores[i]);
    }
    remaining_.assign(traces_.size(), 0);
}

MultiCoreDriver::MultiCoreDriver(CacheHierarchy &hierarchy,
                                 std::vector<TraceSource *> traces,
                                 const CoreParams &core)
    : MultiCoreDriver(
          hierarchy, traces,
          std::vector<CoreParams>(hierarchy.params().numCores, core))
{
}

void
MultiCoreDriver::assignWork(std::uint64_t refs_per_core)
{
    remaining_.assign(cores_.size(), refs_per_core);
}

void
MultiCoreDriver::runLoop()
{
    const std::uint32_t n = static_cast<std::uint32_t>(cores_.size());

    for (;;) {
        // Pick the lagging core that still has work.
        std::uint32_t pick = n;
        Cycle best = 0;
        for (std::uint32_t c = 0; c < n; ++c) {
            if (remaining_[c] == 0)
                continue;
            if (pick == n || cores_[c].now() < best) {
                pick = c;
                best = cores_[c].now();
            }
        }
        if (pick == n)
            break;

        const MemRef ref = traces_[pick]->next();
        const auto result = hierarchy_.access(
            pick, ref.addr, ref.type, cores_[pick].now(), ref.site);
        cores_[pick].advance(ref.gapInstrs, result.doneAt);
        remaining_[pick]--;
        refsIssued_++;
        if (checkpointEvery_ != 0 && hook_
            && refsIssued_ % checkpointEvery_ == 0) {
            hook_(refsIssued_);
        }
    }
}

void
MultiCoreDriver::run(std::uint64_t refs_per_core)
{
    assignWork(refs_per_core);
    runLoop();
}

RunResult
MultiCoreDriver::measure(std::uint64_t warmup_refs,
                         std::uint64_t measure_refs)
{
    if (phase_ == Phase::Done)
        phase_ = Phase::Warmup;

    if (phase_ == Phase::Warmup) {
        // Fresh experiment, or resuming a mid-warmup snapshot (the
        // snapshot's remaining_ already holds what is left to run).
        if (!restored_)
            assignWork(warmup_refs);
        restored_ = false;
        runLoop();

        hierarchy_.resetStats();
        for (auto &core : cores_)
            core.beginMeasurement();
        phase_ = Phase::Measure;
        assignWork(measure_refs);
    } else {
        // Resuming a mid-measurement snapshot: the statistics reset
        // and measurement baselines were taken before the snapshot
        // and are part of the restored state — do not redo them.
        lap_assert(restored_,
                   "measure() re-entered mid-measurement without a "
                   "restored checkpoint");
        restored_ = false;
    }

    runLoop();
    hierarchy_.finishMeasurement();
    phase_ = Phase::Done;

    RunResult result;
    Cycle max_cycles = 0;
    for (auto &core : cores_) {
        CoreRunStats s;
        s.instructions = core.measuredInstructions();
        s.cycles = core.measuredCycles();
        s.memRefs = core.memRefs();
        s.ipc = core.ipc();
        result.throughput += s.ipc;
        result.instructions += s.instructions;
        max_cycles = std::max(max_cycles, s.cycles);
        result.cores.push_back(s);
    }
    result.elapsedCycles = max_cycles;
    return result;
}

void
MultiCoreDriver::saveState(ByteWriter &out) const
{
    out.u8(static_cast<std::uint8_t>(phase_));
    out.u64(refsIssued_);
    out.vecU64(remaining_);
    for (const auto &core : cores_)
        core.saveState(out);
}

void
MultiCoreDriver::loadState(ByteReader &in)
{
    const std::uint8_t phase = in.u8();
    if (phase > static_cast<std::uint8_t>(Phase::Done))
        lap_fatal("checkpoint driver phase %u is invalid", phase);
    phase_ = static_cast<Phase>(phase);
    refsIssued_ = in.u64();
    in.vecU64(remaining_);
    if (remaining_.size() != cores_.size())
        lap_fatal("checkpoint has %zu cores but this run has %zu",
                  remaining_.size(), cores_.size());
    for (auto &core : cores_)
        core.loadState(in);
    restored_ = true;
}

} // namespace lap
