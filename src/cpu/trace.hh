/**
 * @file
 * Memory-reference trace abstraction.
 *
 * Cores consume an infinite stream of MemRefs; synthetic workload
 * generators (src/workloads) and the file-based replayer implement
 * the interface.
 */

#ifndef LAPSIM_CPU_TRACE_HH
#define LAPSIM_CPU_TRACE_HH

#include <cstdint>

#include "common/logging.hh"
#include "common/serial.hh"
#include "common/types.hh"

namespace lap
{

/** One memory reference plus the non-memory work preceding it. */
struct MemRef
{
    Addr addr = 0;
    AccessType type = AccessType::Read;
    /** Non-memory instructions executed before this reference. */
    std::uint32_t gapInstrs = 0;
    /**
     * Access site (pseudo-PC): identifies the instruction/loop that
     * issued the reference. Synthetic generators emit one site per
     * region; trace files may supply one. Consumed by PC-indexed
     * predictors such as the DASCA-style dead-write bypass.
     */
    std::uint32_t site = 0;
};

/** Infinite stream of memory references. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Produces the next reference. */
    virtual MemRef next() = 0;

    /** Restarts the stream from the beginning (optional). */
    virtual void reset() {}

    /**
     * Serializes the stream cursor so a restored run resumes at the
     * exact same reference. Sources that cannot be checkpointed keep
     * the default, which fails loudly rather than silently replaying
     * from the start.
     */
    virtual void
    saveState(ByteWriter &) const
    {
        lap_fatal("this trace source does not support checkpointing");
    }

    virtual void
    loadState(ByteReader &)
    {
        lap_fatal("this trace source does not support checkpointing");
    }
};

} // namespace lap

#endif // LAPSIM_CPU_TRACE_HH
