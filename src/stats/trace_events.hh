/**
 * @file
 * Chrome trace_event emitter.
 *
 * Records policy-level control events — set-dueling epoch
 * evaluations, inclusion-policy switches, hybrid-placement migration
 * bursts, auditor passes, statistics resets and epoch-sampler
 * boundaries — as Chrome trace_event JSON, viewable directly in
 * chrome://tracing or Perfetto. Events are laid out on fixed thread
 * lanes (one per category) and timestamps are clamped monotone per
 * lane, which the viewers require; timestamps are core cycles
 * reported in the "ts" microsecond field (the scale is only used for
 * display).
 */

#ifndef LAPSIM_STATS_TRACE_EVENTS_HH
#define LAPSIM_STATS_TRACE_EVENTS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "hierarchy/hierarchy.hh"
#include "hierarchy/observer.hh"
#include "stats/epoch.hh"

namespace lap
{

/** One recorded trace event. */
struct TraceEvent
{
    std::string name;
    std::string cat;
    char ph = 'i'; //!< 'B', 'E' or 'i' (instant).
    Cycle ts = 0;
    std::uint32_t tid = 0;
    /** Raw JSON for the "args" member ("" = none). */
    std::string args;
};

/**
 * The emitter. Attaches to the hierarchy on construction and
 * detaches on destruction; render() produces the JSON document.
 */
class TraceEmitter final : public HierarchyObserver
{
  public:
    // Thread lanes (trace "tid" values).
    static constexpr std::uint32_t kLaneEpoch = 0;
    static constexpr std::uint32_t kLanePolicy = 1;
    static constexpr std::uint32_t kLaneMigration = 2;
    static constexpr std::uint32_t kLaneAudit = 3;
    static constexpr std::uint32_t kNumLanes = 4;

    explicit TraceEmitter(CacheHierarchy &hierarchy);
    ~TraceEmitter() override;

    TraceEmitter(const TraceEmitter &) = delete;
    TraceEmitter &operator=(const TraceEmitter &) = delete;

    /** Records an epoch-sampler record as a B/E pair on lane 0. */
    void noteEpoch(const EpochRecord &record);

    /** Records a completed audit pass (lane 3). */
    void noteAuditPass(std::uint64_t transaction,
                       std::uint64_t violations);

    /** Renders the full Chrome trace_event JSON document. */
    std::string render() const;

    const std::vector<TraceEvent> &events() const { return events_; }

    // --- HierarchyObserver -------------------------------------------
    void onTransactionComplete(std::uint64_t transaction,
                               Cycle now) override;
    void onLlcWrite(std::uint64_t set, std::uint32_t bank,
                    WriteClass cls, bool loop_bit, Cycle now) override;
    void onStatsReset() override;

  private:
    /** Appends an event with its timestamp clamped per lane. */
    void emit(std::uint32_t tid, char ph, std::string name,
              const char *cat, Cycle ts, std::string args = "");

    CacheHierarchy &hier_;
    std::vector<TraceEvent> events_;
    Cycle laneTs_[kNumLanes] = {};
    Cycle lastNow_ = 0;

    std::uint64_t migrationsInTxn_ = 0;
    bool duelSeen_ = false;
    std::uint64_t duelEpochsSeen_ = 0;
    int duelWinnerSeen_ = -1;
};

} // namespace lap

#endif // LAPSIM_STATS_TRACE_EVENTS_HH
