/**
 * @file
 * Per-set / per-bank LLC heat histogram.
 *
 * Counts demand hits/misses and data-array writes (per write class)
 * for every LLC set, aggregated per bank on demand. Intended for
 * hybrid-placement analysis (paper Figs 24/25): SRAM-way pressure
 * and migration churn are set-local phenomena that whole-LLC
 * counters average away.
 */

#ifndef LAPSIM_STATS_HEAT_HH
#define LAPSIM_STATS_HEAT_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "hierarchy/hierarchy.hh"
#include "hierarchy/observer.hh"

namespace lap
{

/** Accumulated activity of one LLC set. */
struct SetHeat
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /** Writes per WriteClass (DataFill, CleanVictim, DirtyVictim,
     *  Migration). */
    std::uint64_t writes[4] = {};
    std::uint64_t loopWrites = 0;

    std::uint64_t
    writesTotal() const
    {
        return writes[0] + writes[1] + writes[2] + writes[3];
    }
};

/** Per-bank aggregate of SetHeat. */
struct BankHeat
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writes = 0;
    std::uint64_t migrations = 0;
};

/** The histogram observer; attaches/detaches like the sampler. */
class LlcHeatMap final : public HierarchyObserver
{
  public:
    explicit LlcHeatMap(CacheHierarchy &hierarchy);
    ~LlcHeatMap() override;

    LlcHeatMap(const LlcHeatMap &) = delete;
    LlcHeatMap &operator=(const LlcHeatMap &) = delete;

    const std::vector<SetHeat> &sets() const { return sets_; }

    /** Aggregates the per-set counters into per-bank totals. */
    std::vector<BankHeat> banks() const;

    /** Indices of the @p count sets with the most writes. */
    std::vector<std::uint64_t> hottestSets(std::size_t count) const;

    /** Ratio of the hottest bank's writes to the mean (1 = even). */
    double bankImbalance() const;

    /** Human-readable bank table plus the hottest sets. */
    std::string renderTable(std::size_t top_sets = 8) const;

    /** Compact JSON summary (per-bank totals + hottest sets). */
    std::string renderJson(std::size_t top_sets = 8) const;

    // --- HierarchyObserver -------------------------------------------
    void onLlcAccess(std::uint64_t set, bool hit, Cycle now) override;
    void onLlcWrite(std::uint64_t set, std::uint32_t bank,
                    WriteClass cls, bool loop_bit, Cycle now) override;
    void onStatsReset() override;

  private:
    CacheHierarchy &hier_;
    std::vector<SetHeat> sets_;
};

} // namespace lap

#endif // LAPSIM_STATS_HEAT_HH
