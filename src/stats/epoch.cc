#include "stats/epoch.hh"

#include <algorithm>

#include "cache/inspector.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "hierarchy/inclusion_engine.hh"
#include "hierarchy/set_dueling.hh"

namespace lap
{

std::string
epochToJson(const EpochRecord &r)
{
    JsonWriter w;
    w.field("epoch", r.index)
        .field("startTxn", r.startTxn)
        .field("endTxn", r.endTxn)
        .field("startCycle", r.startCycle)
        .field("endCycle", r.endCycle)
        .field("demandAccesses", r.demandAccesses)
        .field("demandReads", r.demandReads)
        .field("demandWrites", r.demandWrites)
        .field("l1Hits", r.l1Hits)
        .field("l2Hits", r.l2Hits)
        .field("llcHits", r.llcHits)
        .field("llcMisses", r.llcMisses)
        .field("llcWritesDataFill", r.llcWritesDataFill)
        .field("llcWritesCleanVictim", r.llcWritesCleanVictim)
        .field("llcWritesDirtyVictim", r.llcWritesDirtyVictim)
        .field("llcWritesMigration", r.llcWritesMigration)
        .field("llcWritesTotal", r.llcWritesTotal())
        .field("llcDemandFills", r.llcDemandFills)
        .field("llcRedundantFills", r.llcRedundantFills)
        .field("llcDeadFills", r.llcDeadFills)
        .field("llcBackInvalidations", r.llcBackInvalidations)
        .field("llcBypassedWrites", r.llcBypassedWrites)
        .field("dramReads", r.dramReads)
        .field("dramWrites", r.dramWrites)
        .field("snoopMessages", r.snoopMessages)
        .field("sampledSets", r.sampledSets)
        .field("totalSets", r.totalSets)
        .field("validBlocks", r.validBlocks)
        .field("loopBlocks", r.loopBlocks)
        .field("dirtyBlocks", r.dirtyBlocks)
        .raw("duelWinner", std::to_string(r.duelWinner))
        .field("duelCostA", r.duelCostA)
        .field("duelCostB", r.duelCostB)
        .field("duelEpochs", r.duelEpochs);

    std::string banks = "[";
    for (std::size_t b = 0; b < r.bankWrites.size(); ++b) {
        if (b != 0)
            banks += ",";
        banks += std::to_string(r.bankWrites[b]);
    }
    banks += "]";
    w.raw("bankWrites", banks);
    return w.str();
}

EpochSampler::EpochSampler(CacheHierarchy &hierarchy,
                           std::uint64_t interval)
    : hier_(hierarchy), interval_(interval)
{
    lap_assert(interval_ > 0, "epoch interval must be positive");
    bankWrites_.assign(hier_.llc().params().banks, 0);
    rebaseline();
    hier_.addObserver(this);
}

EpochSampler::~EpochSampler()
{
    hier_.removeObserver(this);
}

void
EpochSampler::rebaseline()
{
    statsBase_ = hier_.stats();
    dramBase_ = hier_.dram().stats();
    std::fill(bankWrites_.begin(), bankWrites_.end(), 0);
    txnsInEpoch_ = 0;
    epochStartTxn_ = hier_.transactionCount();
    epochStartCycle_ = lastCycle_;
}

void
EpochSampler::onTransactionComplete(std::uint64_t transaction, Cycle now)
{
    (void)transaction;
    lastCycle_ = std::max(lastCycle_, now);
    txnsInEpoch_++;
    if (txnsInEpoch_ >= interval_)
        closeEpoch(lastCycle_);
}

void
EpochSampler::onLlcWrite(std::uint64_t set, std::uint32_t bank,
                         WriteClass cls, bool loop_bit, Cycle now)
{
    (void)set;
    (void)cls;
    (void)loop_bit;
    (void)now;
    bankWrites_[bank]++;
}

void
EpochSampler::onStatsReset()
{
    // The measured window starts fresh: epoch records from warmup
    // would double-count against the post-reset aggregates.
    records_.clear();
    epochIndex_ = 0;
    rebaseline();
}

void
EpochSampler::finish()
{
    if (txnsInEpoch_ > 0)
        closeEpoch(lastCycle_);
}

namespace
{

void
saveRecord(ByteWriter &out, const EpochRecord &r)
{
    out.u64(r.index);
    out.u64(r.startTxn);
    out.u64(r.endTxn);
    out.u64(r.startCycle);
    out.u64(r.endCycle);
    out.u64(r.demandAccesses);
    out.u64(r.demandReads);
    out.u64(r.demandWrites);
    out.u64(r.l1Hits);
    out.u64(r.l2Hits);
    out.u64(r.llcHits);
    out.u64(r.llcMisses);
    out.u64(r.llcWritesDataFill);
    out.u64(r.llcWritesCleanVictim);
    out.u64(r.llcWritesDirtyVictim);
    out.u64(r.llcWritesMigration);
    out.u64(r.llcDemandFills);
    out.u64(r.llcRedundantFills);
    out.u64(r.llcDeadFills);
    out.u64(r.llcBackInvalidations);
    out.u64(r.llcBypassedWrites);
    out.u64(r.dramReads);
    out.u64(r.dramWrites);
    out.u64(r.snoopMessages);
    out.vecU64(r.bankWrites);
    out.u64(r.sampledSets);
    out.u64(r.totalSets);
    out.u64(r.validBlocks);
    out.u64(r.loopBlocks);
    out.u64(r.dirtyBlocks);
    out.u32(static_cast<std::uint32_t>(r.duelWinner));
    out.f64(r.duelCostA);
    out.f64(r.duelCostB);
    out.u64(r.duelEpochs);
}

EpochRecord
loadRecord(ByteReader &in)
{
    EpochRecord r;
    r.index = in.u64();
    r.startTxn = in.u64();
    r.endTxn = in.u64();
    r.startCycle = in.u64();
    r.endCycle = in.u64();
    r.demandAccesses = in.u64();
    r.demandReads = in.u64();
    r.demandWrites = in.u64();
    r.l1Hits = in.u64();
    r.l2Hits = in.u64();
    r.llcHits = in.u64();
    r.llcMisses = in.u64();
    r.llcWritesDataFill = in.u64();
    r.llcWritesCleanVictim = in.u64();
    r.llcWritesDirtyVictim = in.u64();
    r.llcWritesMigration = in.u64();
    r.llcDemandFills = in.u64();
    r.llcRedundantFills = in.u64();
    r.llcDeadFills = in.u64();
    r.llcBackInvalidations = in.u64();
    r.llcBypassedWrites = in.u64();
    r.dramReads = in.u64();
    r.dramWrites = in.u64();
    r.snoopMessages = in.u64();
    in.vecU64(r.bankWrites);
    r.sampledSets = in.u64();
    r.totalSets = in.u64();
    r.validBlocks = in.u64();
    r.loopBlocks = in.u64();
    r.dirtyBlocks = in.u64();
    r.duelWinner = static_cast<int>(in.u32());
    r.duelCostA = in.f64();
    r.duelCostB = in.f64();
    r.duelEpochs = in.u64();
    return r;
}

} // namespace

void
EpochSampler::saveState(ByteWriter &out) const
{
    out.u64(interval_);
    out.u64(txnsInEpoch_);
    out.u64(epochIndex_);
    out.u64(epochStartTxn_);
    out.u64(epochStartCycle_);
    out.u64(lastCycle_);
    statsBase_.saveState(out);
    dramBase_.saveState(out);
    out.vecU64(bankWrites_);
    out.u64(records_.size());
    for (const auto &r : records_)
        saveRecord(out, r);
}

void
EpochSampler::loadState(ByteReader &in)
{
    const std::uint64_t interval = in.u64();
    if (interval != interval_) {
        lap_fatal("checkpoint epoch interval %llu does not match "
                  "this run's %llu",
                  static_cast<unsigned long long>(interval),
                  static_cast<unsigned long long>(interval_));
    }
    txnsInEpoch_ = in.u64();
    epochIndex_ = in.u64();
    epochStartTxn_ = in.u64();
    epochStartCycle_ = in.u64();
    lastCycle_ = in.u64();
    statsBase_.loadState(in);
    dramBase_.loadState(in);
    in.vecU64(bankWrites_);
    if (bankWrites_.size() != hier_.llc().params().banks)
        lap_fatal("checkpoint has %zu LLC banks but this run has %u",
                  bankWrites_.size(), hier_.llc().params().banks);
    records_.clear();
    const std::uint64_t count = in.u64();
    records_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i)
        records_.push_back(loadRecord(in));
}

void
EpochSampler::closeEpoch(Cycle now)
{
    const HierarchyStats &s = hier_.stats();
    const DramStats &d = hier_.dram().stats();

    EpochRecord r;
    r.index = epochIndex_++;
    r.startTxn = epochStartTxn_;
    r.endTxn = hier_.transactionCount();
    r.startCycle = epochStartCycle_;
    r.endCycle = now;

    r.demandAccesses = s.demandAccesses - statsBase_.demandAccesses;
    r.demandReads = s.demandReads - statsBase_.demandReads;
    r.demandWrites = s.demandWrites - statsBase_.demandWrites;
    r.l1Hits = s.l1Hits - statsBase_.l1Hits;
    r.l2Hits = s.l2Hits - statsBase_.l2Hits;
    r.llcHits = s.llcHits - statsBase_.llcHits;
    r.llcMisses = s.llcMisses - statsBase_.llcMisses;
    r.llcWritesDataFill =
        s.llcWritesDataFill - statsBase_.llcWritesDataFill;
    r.llcWritesCleanVictim =
        s.llcWritesCleanVictim - statsBase_.llcWritesCleanVictim;
    r.llcWritesDirtyVictim =
        s.llcWritesDirtyVictim - statsBase_.llcWritesDirtyVictim;
    r.llcWritesMigration =
        s.llcWritesMigration - statsBase_.llcWritesMigration;
    r.llcDemandFills = s.llcDemandFills - statsBase_.llcDemandFills;
    r.llcRedundantFills =
        s.llcRedundantFills - statsBase_.llcRedundantFills;
    r.llcDeadFills = s.llcDeadFills - statsBase_.llcDeadFills;
    r.llcBackInvalidations =
        s.llcBackInvalidations - statsBase_.llcBackInvalidations;
    r.llcBypassedWrites =
        s.llcBypassedWrites - statsBase_.llcBypassedWrites;
    r.dramReads = d.reads - dramBase_.reads;
    r.dramWrites = d.writes - dramBase_.writes;
    r.snoopMessages = s.snoop.messages - statsBase_.snoop.messages;

    r.bankWrites = bankWrites_;

    // Strided LLC walk: bounded so large LLCs stay cheap; stride 1
    // (exact counts) whenever the LLC has at most kMaxSampledSets
    // sets.
    const CacheInspector llc(hier_.llc());
    r.totalSets = llc.numSets();
    const std::uint64_t stride =
        std::max<std::uint64_t>(1,
                                (r.totalSets + kMaxSampledSets - 1)
                                    / kMaxSampledSets);
    for (std::uint64_t set = 0; set < r.totalSets; set += stride) {
        r.sampledSets++;
        for (std::uint32_t way = 0; way < llc.assoc(); ++way) {
            const BlockInfo blk = llc.block(set, way);
            if (!blk.valid)
                continue;
            r.validBlocks++;
            if (blk.loopBit)
                r.loopBlocks++;
            if (blk.dirty)
                r.dirtyBlocks++;
        }
    }

    if (const SetDueling *duel = hier_.policy().dueling()) {
        r.duelWinner = duel->winner();
        r.duelCostA = duel->costA();
        r.duelCostB = duel->costB();
        r.duelEpochs = duel->epochsElapsed();
    }

    records_.push_back(r);
    rebaseline();
    if (callback_)
        callback_(records_.back());
}

} // namespace lap
