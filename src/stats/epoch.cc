#include "stats/epoch.hh"

#include <algorithm>

#include "cache/inspector.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "hierarchy/inclusion_engine.hh"
#include "hierarchy/set_dueling.hh"

namespace lap
{

std::string
epochToJson(const EpochRecord &r)
{
    JsonWriter w;
    w.field("epoch", r.index)
        .field("startTxn", r.startTxn)
        .field("endTxn", r.endTxn)
        .field("startCycle", r.startCycle)
        .field("endCycle", r.endCycle)
        .field("demandAccesses", r.demandAccesses)
        .field("demandReads", r.demandReads)
        .field("demandWrites", r.demandWrites)
        .field("l1Hits", r.l1Hits)
        .field("l2Hits", r.l2Hits)
        .field("llcHits", r.llcHits)
        .field("llcMisses", r.llcMisses)
        .field("llcWritesDataFill", r.llcWritesDataFill)
        .field("llcWritesCleanVictim", r.llcWritesCleanVictim)
        .field("llcWritesDirtyVictim", r.llcWritesDirtyVictim)
        .field("llcWritesMigration", r.llcWritesMigration)
        .field("llcWritesTotal", r.llcWritesTotal())
        .field("llcDemandFills", r.llcDemandFills)
        .field("llcRedundantFills", r.llcRedundantFills)
        .field("llcDeadFills", r.llcDeadFills)
        .field("llcBackInvalidations", r.llcBackInvalidations)
        .field("llcBypassedWrites", r.llcBypassedWrites)
        .field("dramReads", r.dramReads)
        .field("dramWrites", r.dramWrites)
        .field("snoopMessages", r.snoopMessages)
        .field("sampledSets", r.sampledSets)
        .field("totalSets", r.totalSets)
        .field("validBlocks", r.validBlocks)
        .field("loopBlocks", r.loopBlocks)
        .field("dirtyBlocks", r.dirtyBlocks)
        .raw("duelWinner", std::to_string(r.duelWinner))
        .field("duelCostA", r.duelCostA)
        .field("duelCostB", r.duelCostB)
        .field("duelEpochs", r.duelEpochs);

    std::string banks = "[";
    for (std::size_t b = 0; b < r.bankWrites.size(); ++b) {
        if (b != 0)
            banks += ",";
        banks += std::to_string(r.bankWrites[b]);
    }
    banks += "]";
    w.raw("bankWrites", banks);
    return w.str();
}

EpochSampler::EpochSampler(CacheHierarchy &hierarchy,
                           std::uint64_t interval)
    : hier_(hierarchy), interval_(interval)
{
    lap_assert(interval_ > 0, "epoch interval must be positive");
    bankWrites_.assign(hier_.llc().params().banks, 0);
    rebaseline();
    hier_.addObserver(this);
}

EpochSampler::~EpochSampler()
{
    hier_.removeObserver(this);
}

void
EpochSampler::rebaseline()
{
    statsBase_ = hier_.stats();
    dramBase_ = hier_.dram().stats();
    std::fill(bankWrites_.begin(), bankWrites_.end(), 0);
    txnsInEpoch_ = 0;
    epochStartTxn_ = hier_.transactionCount();
    epochStartCycle_ = lastCycle_;
}

void
EpochSampler::onTransactionComplete(std::uint64_t transaction, Cycle now)
{
    (void)transaction;
    lastCycle_ = std::max(lastCycle_, now);
    txnsInEpoch_++;
    if (txnsInEpoch_ >= interval_)
        closeEpoch(lastCycle_);
}

void
EpochSampler::onLlcWrite(std::uint64_t set, std::uint32_t bank,
                         WriteClass cls, bool loop_bit, Cycle now)
{
    (void)set;
    (void)cls;
    (void)loop_bit;
    (void)now;
    bankWrites_[bank]++;
}

void
EpochSampler::onStatsReset()
{
    // The measured window starts fresh: epoch records from warmup
    // would double-count against the post-reset aggregates.
    records_.clear();
    epochIndex_ = 0;
    rebaseline();
}

void
EpochSampler::finish()
{
    if (txnsInEpoch_ > 0)
        closeEpoch(lastCycle_);
}

void
EpochSampler::closeEpoch(Cycle now)
{
    const HierarchyStats &s = hier_.stats();
    const DramStats &d = hier_.dram().stats();

    EpochRecord r;
    r.index = epochIndex_++;
    r.startTxn = epochStartTxn_;
    r.endTxn = hier_.transactionCount();
    r.startCycle = epochStartCycle_;
    r.endCycle = now;

    r.demandAccesses = s.demandAccesses - statsBase_.demandAccesses;
    r.demandReads = s.demandReads - statsBase_.demandReads;
    r.demandWrites = s.demandWrites - statsBase_.demandWrites;
    r.l1Hits = s.l1Hits - statsBase_.l1Hits;
    r.l2Hits = s.l2Hits - statsBase_.l2Hits;
    r.llcHits = s.llcHits - statsBase_.llcHits;
    r.llcMisses = s.llcMisses - statsBase_.llcMisses;
    r.llcWritesDataFill =
        s.llcWritesDataFill - statsBase_.llcWritesDataFill;
    r.llcWritesCleanVictim =
        s.llcWritesCleanVictim - statsBase_.llcWritesCleanVictim;
    r.llcWritesDirtyVictim =
        s.llcWritesDirtyVictim - statsBase_.llcWritesDirtyVictim;
    r.llcWritesMigration =
        s.llcWritesMigration - statsBase_.llcWritesMigration;
    r.llcDemandFills = s.llcDemandFills - statsBase_.llcDemandFills;
    r.llcRedundantFills =
        s.llcRedundantFills - statsBase_.llcRedundantFills;
    r.llcDeadFills = s.llcDeadFills - statsBase_.llcDeadFills;
    r.llcBackInvalidations =
        s.llcBackInvalidations - statsBase_.llcBackInvalidations;
    r.llcBypassedWrites =
        s.llcBypassedWrites - statsBase_.llcBypassedWrites;
    r.dramReads = d.reads - dramBase_.reads;
    r.dramWrites = d.writes - dramBase_.writes;
    r.snoopMessages = s.snoop.messages - statsBase_.snoop.messages;

    r.bankWrites = bankWrites_;

    // Strided LLC walk: bounded so large LLCs stay cheap; stride 1
    // (exact counts) whenever the LLC has at most kMaxSampledSets
    // sets.
    const CacheInspector llc(hier_.llc());
    r.totalSets = llc.numSets();
    const std::uint64_t stride =
        std::max<std::uint64_t>(1,
                                (r.totalSets + kMaxSampledSets - 1)
                                    / kMaxSampledSets);
    for (std::uint64_t set = 0; set < r.totalSets; set += stride) {
        r.sampledSets++;
        for (std::uint32_t way = 0; way < llc.assoc(); ++way) {
            const BlockInfo blk = llc.block(set, way);
            if (!blk.valid)
                continue;
            r.validBlocks++;
            if (blk.loopBit)
                r.loopBlocks++;
            if (blk.dirty)
                r.dirtyBlocks++;
        }
    }

    if (const SetDueling *duel = hier_.policy().dueling()) {
        r.duelWinner = duel->winner();
        r.duelCostA = duel->costA();
        r.duelCostB = duel->costB();
        r.duelEpochs = duel->epochsElapsed();
    }

    records_.push_back(r);
    rebaseline();
    if (callback_)
        callback_(records_.back());
}

} // namespace lap
