/**
 * @file
 * Epoch sampler: time-resolved hierarchy statistics.
 *
 * Snapshots the full hierarchy metric set every N completed
 * transactions into a compact per-epoch record stream, turning the
 * end-of-run aggregates (paper Figs 15/16) into time series. Every
 * record holds the *delta* of each monotone counter over its epoch,
 * so the records partition the run: summing any counter across all
 * epochs reproduces the end-of-run aggregate bit-exactly (the
 * conservation property tests/test_epoch_conservation.cc enforces).
 *
 * On top of the counter deltas each record samples state that cannot
 * be reconstructed from counters: the LLC loop-bit/dirty population
 * (strided walk, bounded per close), the set-dueling PSEL state of
 * the active policy, and per-LLC-bank write pressure.
 */

#ifndef LAPSIM_STATS_EPOCH_HH
#define LAPSIM_STATS_EPOCH_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "hierarchy/hierarchy.hh"
#include "hierarchy/observer.hh"
#include "mem/dram.hh"

namespace lap
{

/** One epoch's worth of hierarchy activity (counter deltas). */
struct EpochRecord
{
    std::uint64_t index = 0;
    /** Global transaction ids spanned: (startTxn, endTxn]. */
    std::uint64_t startTxn = 0;
    std::uint64_t endTxn = 0;
    Cycle startCycle = 0;
    Cycle endCycle = 0;

    // --- Counter deltas over the epoch -------------------------------
    std::uint64_t demandAccesses = 0;
    std::uint64_t demandReads = 0;
    std::uint64_t demandWrites = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t llcHits = 0;
    std::uint64_t llcMisses = 0;
    std::uint64_t llcWritesDataFill = 0;
    std::uint64_t llcWritesCleanVictim = 0;
    std::uint64_t llcWritesDirtyVictim = 0;
    std::uint64_t llcWritesMigration = 0;
    std::uint64_t llcDemandFills = 0;
    std::uint64_t llcRedundantFills = 0;
    std::uint64_t llcDeadFills = 0;
    std::uint64_t llcBackInvalidations = 0;
    std::uint64_t llcBypassedWrites = 0;
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    std::uint64_t snoopMessages = 0;

    /** LLC writes per bank this epoch (channel/bank occupancy). */
    std::vector<std::uint64_t> bankWrites;

    // --- Sampled LLC population at epoch close -----------------------
    /** Sets visited by the (possibly strided) walk. */
    std::uint64_t sampledSets = 0;
    std::uint64_t totalSets = 0;
    std::uint64_t validBlocks = 0;
    std::uint64_t loopBlocks = 0;
    std::uint64_t dirtyBlocks = 0;

    // --- Set-dueling PSEL state at epoch close -----------------------
    /** Current duel winner (0 = A, 1 = B, -1 = no dueling policy). */
    int duelWinner = -1;
    double duelCostA = 0.0;
    double duelCostB = 0.0;
    std::uint64_t duelEpochs = 0;

    std::uint64_t
    llcWritesTotal() const
    {
        return llcWritesDataFill + llcWritesCleanVictim
            + llcWritesDirtyVictim + llcWritesMigration;
    }
};

/** Serializes one epoch record as a flat JSON object. */
std::string epochToJson(const EpochRecord &record);

/**
 * The sampling observer. Attach with the hierarchy's addObserver via
 * construction; detaches on destruction. finish() must be called at
 * end of run to flush the final (possibly partial) epoch.
 */
class EpochSampler final : public HierarchyObserver
{
  public:
    /** Sets the walk bound: at most this many sets per epoch close. */
    static constexpr std::uint64_t kMaxSampledSets = 2048;

    using EpochCallback = std::function<void(const EpochRecord &)>;

    EpochSampler(CacheHierarchy &hierarchy, std::uint64_t interval);
    ~EpochSampler() override;

    EpochSampler(const EpochSampler &) = delete;
    EpochSampler &operator=(const EpochSampler &) = delete;

    /** Invoked with each record right after it closes. */
    void setEpochCallback(EpochCallback cb) { callback_ = std::move(cb); }

    /** Closes the in-flight epoch if it saw any transactions. */
    void finish();

    const std::vector<EpochRecord> &records() const { return records_; }
    std::uint64_t interval() const { return interval_; }

    /**
     * Serializes closed records plus the in-flight epoch's baselines,
     * so a restored run emits the exact same epoch stream as an
     * uninterrupted one.
     */
    void saveState(ByteWriter &out) const;
    void loadState(ByteReader &in);

    // --- HierarchyObserver -------------------------------------------
    void onTransactionComplete(std::uint64_t transaction,
                               Cycle now) override;
    void onLlcWrite(std::uint64_t set, std::uint32_t bank,
                    WriteClass cls, bool loop_bit, Cycle now) override;
    void onStatsReset() override;

  private:
    /** Re-anchors the epoch baseline at the current counters. */
    void rebaseline();
    void closeEpoch(Cycle now);

    CacheHierarchy &hier_;   // lapsim-lint: transient (wiring)
    std::uint64_t interval_;
    EpochCallback callback_; // lapsim-lint: transient (wiring)

    std::uint64_t txnsInEpoch_ = 0;
    std::uint64_t epochIndex_ = 0;
    std::uint64_t epochStartTxn_ = 0;
    Cycle epochStartCycle_ = 0;
    Cycle lastCycle_ = 0;

    HierarchyStats statsBase_;
    DramStats dramBase_;
    std::vector<std::uint64_t> bankWrites_;

    std::vector<EpochRecord> records_;
};

} // namespace lap

#endif // LAPSIM_STATS_EPOCH_HH
