/**
 * @file
 * StatsEngine: bundles the observability probes behind one switch.
 *
 * The simulator (and tests) enable any combination of the epoch
 * sampler, the trace-event emitter and the LLC heat histogram
 * through StatsOptions; the engine owns the enabled probes,
 * registers them with the hierarchy, and wires the sampler's
 * epoch-close callback into the trace lane. All probes are passive
 * observers: enabling them never changes simulation results
 * (tests/test_epoch_conservation.cc).
 */

#ifndef LAPSIM_STATS_STATS_ENGINE_HH
#define LAPSIM_STATS_STATS_ENGINE_HH

#include <cstdint>
#include <memory>

#include "hierarchy/hierarchy.hh"
#include "stats/epoch.hh"
#include "stats/heat.hh"
#include "stats/trace_events.hh"

namespace lap
{

/** Which probes to enable. */
struct StatsOptions
{
    /** Epoch length in transactions; 0 disables the sampler. */
    std::uint64_t epochInterval = 0;
    /** Per-set/bank heat histogram. */
    bool heat = false;
    /** Chrome trace_event emission. */
    bool trace = false;

    bool any() const { return epochInterval != 0 || heat || trace; }
};

/** Owner/wiring of the enabled probes. */
class StatsEngine
{
  public:
    StatsEngine(CacheHierarchy &hierarchy, const StatsOptions &options);

    StatsEngine(const StatsEngine &) = delete;
    StatsEngine &operator=(const StatsEngine &) = delete;

    /** nullptr when the corresponding probe is disabled. */
    EpochSampler *sampler() { return sampler_.get(); }
    const EpochSampler *sampler() const { return sampler_.get(); }
    TraceEmitter *trace() { return trace_.get(); }
    const TraceEmitter *trace() const { return trace_.get(); }
    LlcHeatMap *heat() { return heat_.get(); }
    const LlcHeatMap *heat() const { return heat_.get(); }

    const StatsOptions &options() const { return options_; }

    /** Forwards an auditor pass to the trace lane (if tracing). */
    void noteAuditPass(std::uint64_t transaction,
                       std::uint64_t violations);

    /** Flushes the final partial epoch; call at end of run. */
    void finish();

  private:
    StatsOptions options_;
    std::unique_ptr<EpochSampler> sampler_;
    std::unique_ptr<TraceEmitter> trace_;
    std::unique_ptr<LlcHeatMap> heat_;
};

} // namespace lap

#endif // LAPSIM_STATS_STATS_ENGINE_HH
