#include "stats/stats_engine.hh"

namespace lap
{

StatsEngine::StatsEngine(CacheHierarchy &hierarchy,
                         const StatsOptions &options)
    : options_(options)
{
    if (options_.trace)
        trace_ = std::make_unique<TraceEmitter>(hierarchy);
    if (options_.heat)
        heat_ = std::make_unique<LlcHeatMap>(hierarchy);
    if (options_.epochInterval != 0) {
        sampler_ = std::make_unique<EpochSampler>(
            hierarchy, options_.epochInterval);
        if (trace_) {
            TraceEmitter *trace = trace_.get();
            sampler_->setEpochCallback(
                [trace](const EpochRecord &rec) {
                    trace->noteEpoch(rec);
                });
        }
    }
}

void
StatsEngine::noteAuditPass(std::uint64_t transaction,
                           std::uint64_t violations)
{
    if (trace_)
        trace_->noteAuditPass(transaction, violations);
}

void
StatsEngine::finish()
{
    if (sampler_)
        sampler_->finish();
}

} // namespace lap
