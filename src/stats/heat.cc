#include "stats/heat.hh"

#include <algorithm>
#include <numeric>

#include "common/json.hh"
#include "common/logging.hh"

namespace lap
{

LlcHeatMap::LlcHeatMap(CacheHierarchy &hierarchy) : hier_(hierarchy)
{
    sets_.assign(hier_.llc().numSets(), SetHeat{});
    hier_.addObserver(this);
}

LlcHeatMap::~LlcHeatMap()
{
    hier_.removeObserver(this);
}

void
LlcHeatMap::onLlcAccess(std::uint64_t set, bool hit, Cycle now)
{
    (void)now;
    if (hit)
        sets_[set].hits++;
    else
        sets_[set].misses++;
}

void
LlcHeatMap::onLlcWrite(std::uint64_t set, std::uint32_t bank,
                       WriteClass cls, bool loop_bit, Cycle now)
{
    (void)bank;
    (void)now;
    sets_[set].writes[static_cast<std::size_t>(cls)]++;
    if (loop_bit)
        sets_[set].loopWrites++;
}

void
LlcHeatMap::onStatsReset()
{
    std::fill(sets_.begin(), sets_.end(), SetHeat{});
}

std::vector<BankHeat>
LlcHeatMap::banks() const
{
    const std::uint32_t num_banks = hier_.llc().params().banks;
    std::vector<BankHeat> out(num_banks);
    for (std::uint64_t set = 0; set < sets_.size(); ++set) {
        BankHeat &bank = out[set % num_banks];
        const SetHeat &sh = sets_[set];
        bank.hits += sh.hits;
        bank.misses += sh.misses;
        bank.writes += sh.writesTotal();
        bank.migrations +=
            sh.writes[static_cast<std::size_t>(WriteClass::Migration)];
    }
    return out;
}

std::vector<std::uint64_t>
LlcHeatMap::hottestSets(std::size_t count) const
{
    std::vector<std::uint64_t> idx(sets_.size());
    std::iota(idx.begin(), idx.end(), 0);
    count = std::min(count, idx.size());
    std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(count),
                      idx.end(), [&](std::uint64_t a, std::uint64_t b) {
                          const std::uint64_t wa = sets_[a].writesTotal();
                          const std::uint64_t wb = sets_[b].writesTotal();
                          if (wa != wb)
                              return wa > wb;
                          return a < b; // deterministic tie-break
                      });
    idx.resize(count);
    return idx;
}

double
LlcHeatMap::bankImbalance() const
{
    const std::vector<BankHeat> bs = banks();
    std::uint64_t total = 0;
    std::uint64_t peak = 0;
    for (const BankHeat &b : bs) {
        total += b.writes;
        peak = std::max(peak, b.writes);
    }
    if (total == 0 || bs.empty())
        return 1.0;
    const double mean =
        static_cast<double>(total) / static_cast<double>(bs.size());
    return static_cast<double>(peak) / mean;
}

std::string
LlcHeatMap::renderTable(std::size_t top_sets) const
{
    std::string out;
    out += csprintf("%-6s %12s %12s %12s %12s\n", "bank", "hits",
                    "misses", "writes", "migrations");
    const std::vector<BankHeat> bs = banks();
    for (std::size_t b = 0; b < bs.size(); ++b) {
        out += csprintf("%-6zu %12llu %12llu %12llu %12llu\n", b,
                        static_cast<unsigned long long>(bs[b].hits),
                        static_cast<unsigned long long>(bs[b].misses),
                        static_cast<unsigned long long>(bs[b].writes),
                        static_cast<unsigned long long>(
                            bs[b].migrations));
    }
    out += csprintf("bank write imbalance: %.3f\n", bankImbalance());
    out += csprintf("%-10s %12s %12s %12s\n", "hot-set", "writes",
                    "hits", "loopWrites");
    for (std::uint64_t set : hottestSets(top_sets)) {
        const SetHeat &sh = sets_[set];
        out += csprintf(
            "%-10llu %12llu %12llu %12llu\n",
            static_cast<unsigned long long>(set),
            static_cast<unsigned long long>(sh.writesTotal()),
            static_cast<unsigned long long>(sh.hits),
            static_cast<unsigned long long>(sh.loopWrites));
    }
    return out;
}

std::string
LlcHeatMap::renderJson(std::size_t top_sets) const
{
    std::string banks_json = "[";
    const std::vector<BankHeat> bs = banks();
    for (std::size_t b = 0; b < bs.size(); ++b) {
        if (b != 0)
            banks_json += ",";
        JsonWriter w;
        w.field("bank", std::uint64_t{b})
            .field("hits", bs[b].hits)
            .field("misses", bs[b].misses)
            .field("writes", bs[b].writes)
            .field("migrations", bs[b].migrations);
        banks_json += w.str();
    }
    banks_json += "]";

    std::string hot_json = "[";
    bool first = true;
    for (std::uint64_t set : hottestSets(top_sets)) {
        if (!first)
            hot_json += ",";
        first = false;
        const SetHeat &sh = sets_[set];
        JsonWriter w;
        w.field("set", set)
            .field("writes", sh.writesTotal())
            .field("hits", sh.hits)
            .field("misses", sh.misses)
            .field("loopWrites", sh.loopWrites);
        hot_json += w.str();
    }
    hot_json += "]";

    JsonWriter w;
    w.field("sets", std::uint64_t{sets_.size()})
        .field("banks", std::uint64_t{hier_.llc().params().banks})
        .field("imbalance", bankImbalance())
        .raw("perBank", banks_json)
        .raw("hottest", hot_json);
    return w.str();
}

} // namespace lap
