#include "stats/trace_events.hh"

#include <algorithm>
#include <utility>

#include "common/json.hh"
#include "hierarchy/inclusion_engine.hh"
#include "hierarchy/set_dueling.hh"

namespace lap
{

TraceEmitter::TraceEmitter(CacheHierarchy &hierarchy) : hier_(hierarchy)
{
    hier_.addObserver(this);
}

TraceEmitter::~TraceEmitter()
{
    hier_.removeObserver(this);
}

void
TraceEmitter::emit(std::uint32_t tid, char ph, std::string name,
                   const char *cat, Cycle ts, std::string args)
{
    // Viewers require non-decreasing timestamps within a lane; test
    // traffic (flushes at cycle 0, per-core clocks) does not
    // guarantee that, so clamp.
    ts = std::max(ts, laneTs_[tid]);
    laneTs_[tid] = ts;
    TraceEvent ev;
    ev.name = std::move(name);
    ev.cat = cat;
    ev.ph = ph;
    ev.ts = ts;
    ev.tid = tid;
    ev.args = std::move(args);
    events_.push_back(std::move(ev));
}

void
TraceEmitter::onTransactionComplete(std::uint64_t transaction, Cycle now)
{
    lastNow_ = std::max(lastNow_, now);

    if (migrationsInTxn_ > 0) {
        JsonWriter args;
        args.field("count", migrationsInTxn_)
            .field("transaction", transaction);
        emit(kLaneMigration, 'i', "migration-burst", "placement",
             lastNow_, args.str());
        migrationsInTxn_ = 0;
    }

    const SetDueling *duel = hier_.policy().dueling();
    if (!duel)
        return;
    if (!duelSeen_) {
        // Adopt the starting state silently: only changes are events.
        duelSeen_ = true;
        duelEpochsSeen_ = duel->epochsElapsed();
        duelWinnerSeen_ = duel->winner();
        return;
    }
    if (duel->epochsElapsed() != duelEpochsSeen_) {
        duelEpochsSeen_ = duel->epochsElapsed();
        JsonWriter args;
        args.field("epochs", duel->epochsElapsed())
            .field("costA", duel->costA())
            .field("costB", duel->costB())
            .raw("winner", std::to_string(duel->winner()));
        emit(kLanePolicy, 'i', "duel-epoch", "dueling", lastNow_,
             args.str());
    }
    if (duel->winner() != duelWinnerSeen_) {
        duelWinnerSeen_ = duel->winner();
        JsonWriter args;
        args.raw("winner", std::to_string(duel->winner()))
            .field("policy", hier_.policy().name());
        emit(kLanePolicy, 'i', "policy-switch", "dueling", lastNow_,
             args.str());
    }
}

void
TraceEmitter::onLlcWrite(std::uint64_t set, std::uint32_t bank,
                         WriteClass cls, bool loop_bit, Cycle now)
{
    (void)set;
    (void)bank;
    (void)loop_bit;
    (void)now;
    if (cls == WriteClass::Migration)
        migrationsInTxn_++;
}

void
TraceEmitter::onStatsReset()
{
    emit(kLanePolicy, 'i', "stats-reset", "control", lastNow_);
}

void
TraceEmitter::noteEpoch(const EpochRecord &record)
{
    JsonWriter args;
    args.field("epoch", record.index)
        .field("llcHits", record.llcHits)
        .field("llcMisses", record.llcMisses)
        .field("llcWritesTotal", record.llcWritesTotal())
        .field("loopBlocks", record.loopBlocks);
    emit(kLaneEpoch, 'B', "epoch", "epoch", record.startCycle);
    emit(kLaneEpoch, 'E', "epoch", "epoch", record.endCycle,
         args.str());
}

void
TraceEmitter::noteAuditPass(std::uint64_t transaction,
                            std::uint64_t violations)
{
    JsonWriter args;
    args.field("transaction", transaction)
        .field("violations", violations);
    emit(kLaneAudit, 'i', "audit-pass", "audit", lastNow_, args.str());
}

std::string
TraceEmitter::render() const
{
    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent &ev : events_) {
        if (!first)
            out += ",";
        first = false;
        JsonWriter w;
        w.field("name", ev.name)
            .field("cat", ev.cat)
            .field("ph", std::string(1, ev.ph))
            .field("ts", ev.ts)
            .field("pid", std::uint64_t{0})
            .field("tid", std::uint64_t{ev.tid});
        if (ev.ph == 'i')
            w.field("s", "t");
        if (!ev.args.empty())
            w.raw("args", ev.args);
        out += w.str();
    }
    out += "]}";
    return out;
}

} // namespace lap
