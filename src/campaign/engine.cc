#include "campaign/engine.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>

#include "campaign/sink.hh"
#include "common/logging.hh"
#include "common/mutex.hh"
#include "sim/checkpoint.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "workloads/mixes.hh"
#include "workloads/parsec.hh"

namespace lap
{

namespace
{

using Clock = std::chrono::steady_clock;

double
elapsedMs(Clock::time_point start)
{
    // Wall-clock runtime is an operator-facing metric only; it
    // never feeds simulated time or results.
    // lapsim-lint: allow(det-banned-call)
    return std::chrono::duration<double, std::milli>(Clock::now()
                                                     - start)
        .count();
}

/** Finds a named mix (Table III or MIXn); fatal on unknown names. */
MixSpec
findMix(const std::string &name, std::uint32_t cores)
{
    MixSpec found;
    bool ok = false;
    for (const auto &mix : tableThreeMixes()) {
        if (mix.name == name) {
            found = mix;
            ok = true;
            break;
        }
    }
    if (!ok) {
        for (const auto &mix : randomMixes(50, 4)) {
            if (mix.name == name) {
                found = mix;
                ok = true;
                break;
            }
        }
    }
    if (!ok)
        lap_fatal("unknown mix '%s' (WL1..WH5, MIX1..MIX50)",
                  name.c_str());
    // Wider machines cycle the combination (an 8-core run of a
    // 4-benchmark mix doubles it up, as in the paper's Fig 22).
    const std::size_t base = found.benchmarks.size();
    lap_assert(base > 0, "mix '%s' has no benchmarks", name.c_str());
    while (found.benchmarks.size() < cores)
        found.benchmarks.push_back(
            found.benchmarks[found.benchmarks.size() % base]);
    return found;
}

/** Runs the job's workload on a fresh simulator; collects the
 *  observability payloads into @p outcome. */
Metrics
executeJob(const CampaignJob &job, JobOutcome &outcome)
{
    Simulator sim(job.config);
    Metrics metrics;
    switch (job.workload.kind) {
      case CampaignWorkload::Kind::Mix:
        metrics = sim.run(resolveMix(
            findMix(job.workload.name, job.config.numCores)));
        break;
      case CampaignWorkload::Kind::Duplicate:
        metrics = sim.run(resolveMix(
            duplicateMix(job.workload.name, job.config.numCores)));
        break;
      case CampaignWorkload::Kind::Benchmarks: {
        if (job.workload.benchmarks.empty())
            lap_fatal("benchmark-list workload is empty");
        MixSpec mix;
        mix.name = job.label;
        for (std::uint32_t c = 0; c < job.config.numCores; ++c)
            mix.benchmarks.push_back(
                job.workload
                    .benchmarks[c % job.workload.benchmarks.size()]);
        metrics = sim.run(resolveMix(mix));
        break;
      }
      case CampaignWorkload::Kind::Parsec:
        metrics = sim.runMultiThreaded(
            parsecBenchmark(job.workload.name));
        break;
      case CampaignWorkload::Kind::Trace:
        // expandCampaign already copied the trace spec into
        // config.tracePath (so it participates in the job hash).
        metrics = sim.runTrace();
        break;
      default:
        lap_panic("unknown workload kind");
    }
    if (StatsEngine *engine = sim.statsEngine()) {
        if (const EpochSampler *sampler = engine->sampler())
            outcome.epochs = sampler->records();
        if (const LlcHeatMap *heat = engine->heat())
            outcome.heatJson = heat->renderJson();
    }
    return metrics;
}

} // namespace

const char *
toString(JobStatus status)
{
    switch (status) {
      case JobStatus::Ok: return "ok";
      case JobStatus::Failed: return "failed";
      case JobStatus::Skipped: return "skipped";
      case JobStatus::NotRun: return "not-run";
    }
    return "?";
}

std::size_t
CampaignResult::countWithStatus(JobStatus status) const
{
    std::size_t count = 0;
    for (const auto &outcome : outcomes)
        count += outcome.status == status ? 1 : 0;
    return count;
}

JobOutcome
runCampaignJob(const CampaignJob &job)
{
    // Wall-clock job timing; reporting only.
    // lapsim-lint: allow(det-banned-call)
    const auto start = Clock::now();
    JobOutcome outcome;
    try {
        // Confine this job's fatals (bad workload name, unsupported
        // config) to this job; the rest of the grid keeps running.
        const ScopedFatalThrow guard;
        outcome.metrics = executeJob(job, outcome);
        outcome.status = JobStatus::Ok;
    } catch (const FatalError &err) {
        outcome.status = JobStatus::Failed;
        outcome.error = err.what();
    }
    outcome.wallMs = elapsedMs(start);
    return outcome;
}

std::string
jobCheckpointPath(const std::string &out_path,
                  const CampaignJob &job)
{
    return out_path + "." + job.hash + ".ckpt";
}

CampaignJob
withJobCheckpointing(const CampaignJob &job,
                     const std::string &ckpt_path,
                     std::uint64_t checkpoint_every)
{
    CampaignJob prepared = job;
    prepared.config.checkpointOut = ckpt_path;
    prepared.config.checkpointEvery = checkpoint_every != 0
        ? checkpoint_every
        : std::max<std::uint64_t>(
              1, (prepared.config.warmupRefs
                  + prepared.config.measureRefs)
                     * prepared.config.numCores / 4);
    if (checkpointIsValid(ckpt_path, prepared.config))
        prepared.config.restorePath = ckpt_path;
    return prepared;
}

std::string
jobToJsonRow(const std::string &campaign, const CampaignJob &job,
             const JobOutcome &outcome)
{
    JsonWriter w;
    w.field("type", "result")
        .field("hash", job.hash)
        .field("campaign", campaign)
        .field("label", job.label)
        .field("workload", job.workload.key())
        .field("status", toString(outcome.status))
        .field("wallMs", outcome.wallMs);
    if (outcome.status == JobStatus::Ok) {
        w.raw("config", configToJson(job.config))
            .raw("metrics", metricsToJson(outcome.metrics));
        if (!outcome.heatJson.empty())
            w.raw("heat", outcome.heatJson);
    } else {
        w.field("error", outcome.error)
            .raw("config", configToJson(job.config));
    }
    return w.str();
}

std::string
epochToJsonRow(const std::string &campaign, const CampaignJob &job,
               const EpochRecord &record)
{
    JsonWriter w;
    w.field("type", "epoch")
        .field("hash", job.hash)
        .field("campaign", campaign)
        .field("label", job.label)
        .field("workload", job.workload.key())
        .field("status", "ok")
        .raw("config", configToJson(job.config));
    // Splice the epoch counters into the top level so aggregation
    // addresses them directly ("llcMisses", not "data.llcMisses").
    std::string row = w.str();
    row.pop_back(); // trailing '}'
    row += ",";
    row += epochToJson(record).substr(1); // skip leading '{'
    return row;
}

CampaignResult
runCampaign(const CampaignSpec &spec, const EngineOptions &options)
{
    // Wall-clock campaign timing; reporting only.
    // lapsim-lint: allow(det-banned-call)
    const auto start = Clock::now();
    lap_assert(options.jobs >= 1, "campaign needs >= 1 worker");

    CampaignResult result;
    result.jobs = expandCampaign(spec);
    if (options.shardCount > 0) {
        // Keep only this shard's slice of the grid. The membership
        // test hashes job content, so the other shards' runs are
        // guaranteed disjoint and the union is exactly the grid.
        std::vector<CampaignJob> sharded;
        for (CampaignJob &job : result.jobs) {
            if (jobInShard(job, options.shardIndex,
                           options.shardCount))
                sharded.push_back(std::move(job));
        }
        result.jobs = std::move(sharded);
    }
    result.outcomes.resize(result.jobs.size());

    const bool mid_job =
        options.midJobRestore && !options.outPath.empty();
    const bool resume = options.resume || mid_job;

    std::set<std::string> done_hashes;
    std::unique_ptr<JsonlSink> sink;
    if (!options.outPath.empty()) {
        if (resume)
            done_hashes = loadCompletedHashes(options.outPath);
        sink = std::make_unique<JsonlSink>(options.outPath, resume);
    }

    std::atomic<std::size_t> next_job{0};
    std::atomic<std::size_t> done_count{0};
    // Serializes the user's onJobDone callback across workers; the
    // outcome rows themselves are index-partitioned (each worker
    // owns the slots it claimed) and the sink locks internally.
    Mutex report_mutex;

    auto report = [&](std::size_t index) {
        const std::size_t done =
            done_count.fetch_add(1, std::memory_order_relaxed) + 1;
        const JobOutcome &outcome = result.outcomes[index];
        if (sink && outcome.status != JobStatus::Skipped) {
            // Epoch rows land before their result row so a resumed
            // campaign never sees a result whose epochs are missing.
            for (const EpochRecord &rec : outcome.epochs)
                sink->write(epochToJsonRow(spec.name,
                                           result.jobs[index], rec));
            sink->write(jobToJsonRow(spec.name, result.jobs[index],
                                     outcome));
        }
        if (options.onJobDone) {
            const MutexLock lock(report_mutex);
            options.onJobDone(result.jobs[index], outcome, done,
                              result.jobs.size());
        }
    };

    auto worker = [&] {
        while (true) {
            const std::size_t index =
                next_job.fetch_add(1, std::memory_order_relaxed);
            if (index >= result.jobs.size())
                return;
            if (options.stopFlag
                && options.stopFlag->load(
                    std::memory_order_relaxed)) {
                // Graceful shutdown: stop dispatching. The job never
                // ran, so no row is written — a --resume re-run
                // picks it up.
                result.outcomes[index].status = JobStatus::NotRun;
                continue;
            }
            const CampaignJob &job = result.jobs[index];
            if (done_hashes.count(job.hash) != 0) {
                result.outcomes[index].status = JobStatus::Skipped;
            } else if (mid_job) {
                result.outcomes[index] =
                    runCampaignJob(withJobCheckpointing(
                        job, jobCheckpointPath(options.outPath, job),
                        options.checkpointEvery));
                // A completed job no longer needs its snapshot.
                if (result.outcomes[index].status == JobStatus::Ok)
                    std::remove(jobCheckpointPath(options.outPath,
                                                  job)
                                    .c_str());
            } else {
                result.outcomes[index] = runCampaignJob(job);
            }
            report(index);
        }
    };

    const std::uint32_t workers = static_cast<std::uint32_t>(
        std::min<std::size_t>(options.jobs, result.jobs.size()));
    if (workers <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::uint32_t w = 0; w < workers; ++w)
            pool.emplace_back(worker);
        for (auto &thread : pool)
            thread.join();
    }

    result.wallMs = elapsedMs(start);
    return result;
}

} // namespace lap
