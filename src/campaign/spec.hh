/**
 * @file
 * Declarative experiment campaigns.
 *
 * A CampaignSpec describes a grid: a base SimConfig, a set of
 * workloads, an optional inclusion-policy axis and any number of
 * generic axes over named SimConfig fields (see
 * sim/config_fields.hh). expandCampaign() takes the cartesian
 * product and yields independent CampaignJobs, each carrying a
 * fully resolved SimConfig, a content-derived seed salt and a
 * stable 64-bit job hash. The hash is a pure function of the job's
 * parameters (never of its position in the grid), so adding or
 * removing grid points does not invalidate completed results when
 * resuming an interrupted campaign.
 */

#ifndef LAPSIM_CAMPAIGN_SPEC_HH
#define LAPSIM_CAMPAIGN_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hh"

namespace lap
{

/** One workload slot of a campaign grid. */
struct CampaignWorkload
{
    enum class Kind : std::uint8_t
    {
        Mix,        //!< Named Table III / MIXn mix.
        Duplicate,  //!< N duplicate copies of one benchmark.
        Benchmarks, //!< Explicit per-core benchmark list (cycled).
        Parsec,     //!< Multi-threaded PARSEC run (coherence on).
        Trace,      //!< LAPTR1 replay: file path or stressor:<name>.
    };

    Kind kind = Kind::Mix;
    std::string name;                    //!< Mix/benchmark/app/trace.
    std::vector<std::string> benchmarks; //!< Kind::Benchmarks only.

    /** Stable serialization, e.g. "mix:WH1"; part of the job key. */
    std::string key() const;

    static CampaignWorkload mix(std::string name);
    static CampaignWorkload duplicate(std::string benchmark);
    static CampaignWorkload benchmarkList(
        std::vector<std::string> benchmarks);
    static CampaignWorkload parsec(std::string name);
    /** @p spec is a LAPTR1 path or "stressor:<name>" — the built-in
     *  stressors need no file, so they replay identically on fabric
     *  workers that share no filesystem. */
    static CampaignWorkload trace(std::string spec);
};

/** One axis over a named SimConfig field. */
struct ConfigAxis
{
    std::string field;               //!< Registry name, e.g. "llc-mb".
    std::vector<std::string> values; //!< Parsed per job.
};

/** A declarative experiment grid. */
struct CampaignSpec
{
    std::string name = "campaign";
    /** Applied to every job before axes; env-scaled at expansion. */
    SimConfig base;
    /** Mixed into every job's content-derived seed salt. */
    std::uint64_t seed = 0;
    std::vector<CampaignWorkload> workloads;
    /** Inclusion-policy axis; empty keeps base.policy. */
    std::vector<PolicyKind> policies;
    /** Generic field axes, applied in order. */
    std::vector<ConfigAxis> axes;
};

/** One fully resolved, independently runnable grid point. */
struct CampaignJob
{
    SimConfig config;
    CampaignWorkload workload;
    /** Human label, e.g. "WH1/lap" or "WH1/lap/llc-mb=4". */
    std::string label;
    /** Canonical field=value serialization the hash is taken over. */
    std::string key;
    /** FNV-1a 64 of key, as a fixed-width hex string. */
    std::string hash;
};

/**
 * Expands the grid (workloads × policies × axes) into jobs. Applies
 * applyEnvScaling() to every job config and derives each job's
 * seedSalt from (base seed, spec.seed, workload) — never from the
 * policy/config axes, so every grid point of one workload replays
 * the same trace and cross-policy ratios stay controlled. Fatal on
 * unknown axis fields or malformed axis values.
 */
std::vector<CampaignJob> expandCampaign(const CampaignSpec &spec);

/**
 * Parses the line-oriented campaign spec format:
 *
 *   # comment
 *   name fig14
 *   seed 7
 *   set warmup 160000          (base-config override)
 *   axis llc-mb 4,8,16         (grid axis over a config field)
 *   policies noni,ex,lap
 *   mix WL1,WH1                (one workload per list entry)
 *   duplicate omnetpp
 *   benchmarks omnetpp,mcf,astar,lbm
 *   parsec streamcluster
 *   trace stressor:gups        (LAPTR1 replay; also file paths)
 *
 * Fatal on unknown keywords or fields.
 */
CampaignSpec parseCampaignSpec(const std::string &text);

/** FNV-1a 64-bit hash of a string (stable across platforms). */
std::uint64_t fnv1a64(const std::string &text);

/**
 * Deterministic shard membership: FNV-1a of the job key modulo
 * @p shard_count. A pure function of the job's content (never its
 * grid position), so N disjoint shards of one grid always union to
 * the full grid, regardless of how each shard host expanded it.
 * Fatal when shard_index >= shard_count or shard_count == 0.
 */
bool jobInShard(const CampaignJob &job, std::uint32_t shard_index,
                std::uint32_t shard_count);

} // namespace lap

#endif // LAPSIM_CAMPAIGN_SPEC_HH
