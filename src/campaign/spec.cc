#include "campaign/spec.hh"

#include <cstdio>

#include "common/logging.hh"
#include "sim/config_fields.hh"
#include "sim/options.hh"
#include "sim/simulator.hh"

namespace lap
{

namespace
{

/** splitmix64 finalizer; decorrelates related seeds. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::string
hashHex(std::uint64_t hash)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

} // namespace

std::uint64_t
fnv1a64(const std::string &text)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (unsigned char ch : text) {
        hash ^= ch;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

std::string
CampaignWorkload::key() const
{
    switch (kind) {
      case Kind::Mix:
        return "mix:" + name;
      case Kind::Duplicate:
        return "dup:" + name;
      case Kind::Benchmarks: {
        std::string key = "benchmarks:";
        for (const auto &b : benchmarks) {
            if (key.back() != ':')
                key += ',';
            key += b;
        }
        return key;
      }
      case Kind::Parsec:
        return "parsec:" + name;
      case Kind::Trace:
        return "trace:" + name;
    }
    lap_panic("unknown workload kind");
}

CampaignWorkload
CampaignWorkload::mix(std::string name)
{
    CampaignWorkload w;
    w.kind = Kind::Mix;
    w.name = std::move(name);
    return w;
}

CampaignWorkload
CampaignWorkload::duplicate(std::string benchmark)
{
    CampaignWorkload w;
    w.kind = Kind::Duplicate;
    w.name = std::move(benchmark);
    return w;
}

CampaignWorkload
CampaignWorkload::benchmarkList(std::vector<std::string> benchmarks)
{
    CampaignWorkload w;
    w.kind = Kind::Benchmarks;
    w.benchmarks = std::move(benchmarks);
    w.name = "list";
    return w;
}

CampaignWorkload
CampaignWorkload::parsec(std::string name)
{
    CampaignWorkload w;
    w.kind = Kind::Parsec;
    w.name = std::move(name);
    return w;
}

CampaignWorkload
CampaignWorkload::trace(std::string spec)
{
    CampaignWorkload w;
    w.kind = Kind::Trace;
    w.name = std::move(spec);
    return w;
}

std::vector<CampaignJob>
expandCampaign(const CampaignSpec &spec)
{
    if (spec.workloads.empty())
        lap_fatal("campaign '%s' has no workloads", spec.name.c_str());

    // Enumerate the cartesian product of the generic axes as per-job
    // value selections (empty axes yield one all-default selection).
    std::vector<std::vector<std::size_t>> selections{{}};
    for (const auto &axis : spec.axes) {
        if (axis.values.empty())
            lap_fatal("axis '%s' has no values", axis.field.c_str());
        std::vector<std::vector<std::size_t>> grown;
        for (const auto &partial : selections) {
            for (std::size_t v = 0; v < axis.values.size(); ++v) {
                auto next = partial;
                next.push_back(v);
                grown.push_back(std::move(next));
            }
        }
        selections = std::move(grown);
    }

    std::vector<PolicyKind> policies = spec.policies;
    if (policies.empty())
        policies.push_back(spec.base.policy);

    const SimConfig scaled_base = applyEnvScaling(spec.base);

    std::vector<CampaignJob> jobs;
    for (const auto &workload : spec.workloads) {
        for (PolicyKind policy : policies) {
            for (const auto &selection : selections) {
                CampaignJob job;
                job.workload = workload;
                job.config = scaled_base;
                job.config.policy = policy;
                if (workload.kind == CampaignWorkload::Kind::Parsec)
                    job.config.coherence = true;
                // The trace spec is config, not just workload
                // identity: setting it before the key is built puts
                // it in the job hash (the "trace" field is inKey).
                if (workload.kind == CampaignWorkload::Kind::Trace)
                    job.config.tracePath = workload.name;

                job.label = workload.kind
                            == CampaignWorkload::Kind::Benchmarks
                    ? workload.key()
                    : workload.name;
                if (!spec.policies.empty())
                    job.label += std::string("/")
                        + toString(job.config.policy);
                for (std::size_t a = 0; a < spec.axes.size(); ++a) {
                    const auto &axis = spec.axes[a];
                    const auto &value = axis.values[selection[a]];
                    if (!applyConfigField(job.config, axis.field, value))
                        lap_fatal("axis: unknown config field '%s' "
                                  "(valid: %s)",
                                  axis.field.c_str(),
                                  configFieldNamesJoined().c_str());
                    job.label += "/" + axis.field + "=" + value;
                }

                // Per-workload seed salt, never per-config: every
                // policy/axis point of one workload replays the same
                // trace, so cross-policy ratios compare like with
                // like. seed 0 keeps the base salt verbatim (matching
                // a hand-rolled serial run); a nonzero campaign seed
                // decorrelates workloads deterministically.
                job.config.seedSalt = scaled_base.seedSalt
                    ^ (spec.seed == 0
                           ? 0
                           : mix64(spec.seed
                                   ^ fnv1a64(workload.key())));

                job.key = "campaign=" + spec.name + "|"
                    + workload.key() + "|" + configKey(job.config);
                job.hash = hashHex(fnv1a64(job.key));
                // Parallel jobs must not clobber one trace file;
                // suffix the path per job. Observe-only (inKey=false),
                // so this never perturbs the hash just computed.
                if (!job.config.traceEventsPath.empty())
                    job.config.traceEventsPath += "-" + job.hash;
                jobs.push_back(std::move(job));
            }
        }
    }
    return jobs;
}

namespace
{

/** Splits a spec line into (keyword, rest); trims whitespace. */
bool
splitLine(const std::string &line, std::string &keyword,
          std::string &rest)
{
    std::string text = line;
    if (const auto hash = text.find('#'); hash != std::string::npos)
        text.resize(hash);
    const auto begin = text.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return false;
    const auto end = text.find_last_not_of(" \t\r");
    text = text.substr(begin, end - begin + 1);

    const auto space = text.find_first_of(" \t");
    if (space == std::string::npos) {
        keyword = text;
        rest.clear();
        return true;
    }
    keyword = text.substr(0, space);
    const auto value = text.find_first_not_of(" \t", space);
    rest = value == std::string::npos ? "" : text.substr(value);
    return true;
}

} // namespace

CampaignSpec
parseCampaignSpec(const std::string &text)
{
    CampaignSpec spec;
    std::size_t pos = 0;
    int line_no = 0;
    while (pos <= text.size()) {
        const auto eol = text.find('\n', pos);
        const std::string line = text.substr(
            pos, eol == std::string::npos ? std::string::npos
                                          : eol - pos);
        pos = eol == std::string::npos ? text.size() + 1 : eol + 1;
        ++line_no;

        std::string keyword, rest;
        if (!splitLine(line, keyword, rest))
            continue;
        auto require_value = [&]() {
            if (rest.empty())
                lap_fatal("spec line %d: '%s' requires a value",
                          line_no, keyword.c_str());
        };

        if (keyword == "name") {
            require_value();
            spec.name = rest;
        } else if (keyword == "seed") {
            require_value();
            char *end = nullptr;
            spec.seed = std::strtoull(rest.c_str(), &end, 0);
            if (end == rest.c_str() || *end != '\0')
                lap_fatal("spec line %d: seed: expected a number",
                          line_no);
        } else if (keyword == "set" || keyword == "axis") {
            require_value();
            std::string field, values;
            if (!splitLine(rest, field, values) || values.empty())
                lap_fatal("spec line %d: %s <field> <value>", line_no,
                          keyword.c_str());
            if (keyword == "set") {
                if (!applyConfigField(spec.base, field, values))
                    lap_fatal("spec line %d: unknown config field '%s' "
                              "(valid: %s)",
                              line_no, field.c_str(),
                              configFieldNamesJoined().c_str());
            } else {
                spec.axes.push_back({field, splitList(values)});
            }
        } else if (keyword == "policies" || keyword == "policy") {
            require_value();
            for (const auto &name : splitList(rest))
                spec.policies.push_back(policyKindFromString(name));
        } else if (keyword == "mix" || keyword == "mixes") {
            require_value();
            for (const auto &name : splitList(rest))
                spec.workloads.push_back(CampaignWorkload::mix(name));
        } else if (keyword == "duplicate") {
            require_value();
            for (const auto &name : splitList(rest))
                spec.workloads.push_back(
                    CampaignWorkload::duplicate(name));
        } else if (keyword == "benchmarks") {
            require_value();
            spec.workloads.push_back(
                CampaignWorkload::benchmarkList(splitList(rest)));
        } else if (keyword == "parsec") {
            require_value();
            for (const auto &name : splitList(rest))
                spec.workloads.push_back(
                    CampaignWorkload::parsec(name));
        } else if (keyword == "trace" || keyword == "traces") {
            require_value();
            for (const auto &name : splitList(rest))
                spec.workloads.push_back(
                    CampaignWorkload::trace(name));
        } else {
            lap_fatal("spec line %d: unknown keyword '%s'", line_no,
                      keyword.c_str());
        }
    }
    return spec;
}

bool
jobInShard(const CampaignJob &job, std::uint32_t shard_index,
           std::uint32_t shard_count)
{
    lap_assert(shard_count > 0, "shard count must be positive");
    if (shard_index >= shard_count)
        lap_fatal("shard index %u out of range (shard count %u)",
                  shard_index, shard_count);
    return fnv1a64(job.key) % shard_count == shard_index;
}

} // namespace lap
