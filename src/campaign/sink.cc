#include "campaign/sink.hh"

#include "campaign/jsonl.hh"
#include "common/logging.hh"

namespace lap
{

namespace
{

/**
 * An interrupted campaign can leave the file's last row cut short
 * mid-write. Appending straight after it would merge the first new
 * row into the partial line and lose both; terminating the stub
 * keeps it a (skippable) malformed line of its own.
 */
bool
endsMidLine(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (file == nullptr)
        return false;
    bool mid_line = false;
    if (std::fseek(file, -1, SEEK_END) == 0) {
        const int last = std::fgetc(file);
        mid_line = last != EOF && last != '\n';
    }
    std::fclose(file);
    return mid_line;
}

} // namespace

JsonlSink::JsonlSink(const std::string &path, bool append)
    : path_(path)
{
    const bool repair = append && endsMidLine(path);
    file_ = std::fopen(path.c_str(), append ? "ab" : "wb");
    if (file_ == nullptr)
        lap_fatal("cannot open '%s' for writing", path.c_str());
    if (repair)
        std::fputc('\n', file_);
}

JsonlSink::~JsonlSink()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

void
JsonlSink::write(const std::string &json_row)
{
    const std::string line = json_row + "\n";
    const MutexLock lock(mutex_);
    if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()
        || std::fflush(file_) != 0)
        lap_fatal("write to '%s' failed", path_.c_str());
}

std::set<std::string>
loadCompletedHashes(const std::string &path)
{
    std::set<std::string> hashes;
    for (const auto &row : loadJsonl(path)) {
        if (rowValue(row, "status") != "ok")
            continue;
        // Epoch rows stream out before their result row; only the
        // result row marks the job complete. The fallback keeps
        // pre-typed result files resumable.
        if (rowValue(row, "type", "result") != "result")
            continue;
        const std::string hash = rowValue(row, "hash");
        if (!hash.empty())
            hashes.insert(hash);
    }
    return hashes;
}

} // namespace lap
