/**
 * @file
 * Turning campaign results back into the paper's tables.
 *
 * Two consumers: the figure benches aggregate an in-memory
 * CampaignResult through ResultIndex, and the CLI re-aggregates a
 * results.jsonl file (possibly from several resumed runs) into a
 * row×column metric table, optionally normalized to one column
 * (e.g. every policy relative to "noni").
 */

#ifndef LAPSIM_CAMPAIGN_AGGREGATE_HH
#define LAPSIM_CAMPAIGN_AGGREGATE_HH

#include <map>
#include <string>
#include <vector>

#include "campaign/engine.hh"
#include "campaign/jsonl.hh"
#include "common/table.hh"

namespace lap
{

/** Lookup of completed outcomes by (workload key, policy). */
class ResultIndex
{
  public:
    explicit ResultIndex(const CampaignResult &result);

    /**
     * Metrics of the completed job for @p workload (a
     * CampaignWorkload::key() string or a bare mix/benchmark name)
     * under @p policy, or nullptr when that job is missing/failed.
     */
    const Metrics *find(const std::string &workload,
                        PolicyKind policy) const;

    /** As find(), but fatal when the job is missing or failed. */
    const Metrics &get(const std::string &workload,
                       PolicyKind policy) const;

  private:
    std::map<std::pair<std::string, int>, const Metrics *> index_;
};

/** Shape of a JSONL aggregation. */
struct AggregateSpec
{
    /** Row key field, e.g. "workload" or "label". */
    std::string rowField = "workload";
    /** Column key field, e.g. "config.policy". */
    std::string colField = "config.policy";
    /** Metric field to tabulate. */
    std::string metric = "metrics.epi";
    /** Optional column value every row is normalized to. */
    std::string normalizeCol;
    int precision = 3;
};

/**
 * Groups "ok" rows into a table: one row per rowField value, one
 * column per colField value (both in first-appearance order), plus
 * a mean row. Duplicate (row, col) cells keep the last occurrence,
 * so re-run rows appended by --resume win over stale ones.
 */
Table aggregateRows(const std::vector<JsonRow> &rows,
                    const AggregateSpec &spec);

/**
 * Reduces `"type":"epoch"` rows into a per-phase table: one row per
 * rowField value, columns phase0..phaseN-1 (each label's epoch
 * stream split into @p phases equal position buckets), cells the
 * mean of spec.metric over the bucket. Fatal when the rows hold no
 * epoch stream (campaign run without epoch-stats).
 */
Table aggregateEpochPhases(const std::vector<JsonRow> &rows,
                           const AggregateSpec &spec, int phases);

/** Loads @p path and aggregates it; fatal when no usable rows. */
Table aggregateJsonlFile(const std::string &path,
                         const AggregateSpec &spec);

} // namespace lap

#endif // LAPSIM_CAMPAIGN_AGGREGATE_HH
