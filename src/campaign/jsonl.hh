/**
 * @file
 * Minimal JSON reading for campaign result rows.
 *
 * The campaign sink emits one JSON object per line through
 * JsonWriter; this is the matching reader. It parses a single
 * object into a flat map with dotted keys ("metrics.epi",
 * "config.policy"), which is all the resume and aggregation paths
 * need — it is not a general-purpose JSON library.
 */

#ifndef LAPSIM_CAMPAIGN_JSONL_HH
#define LAPSIM_CAMPAIGN_JSONL_HH

#include <map>
#include <string>
#include <vector>

namespace lap
{

/** One parsed JSONL row: flattened key → scalar value as text. */
using JsonRow = std::map<std::string, std::string>;

/**
 * Parses one JSON object; nested objects flatten with dotted keys,
 * array elements with numeric suffixes ("ipc.0"). Returns false on
 * malformed input (the row is left partially filled).
 */
bool parseJsonObject(const std::string &text, JsonRow &row);

/** What loadJsonl() saw besides the good rows (corruption tests,
 *  resume diagnostics). */
struct JsonlReadStats
{
    /** Non-blank lines examined. */
    std::size_t lines = 0;
    /** Lines that parsed into rows. */
    std::size_t rows = 0;
    /** Newline-terminated lines that failed to parse — real
     *  corruption, not an interruption artifact. */
    std::size_t malformed = 0;
    /** The file ended in an unterminated, unparseable line — the
     *  signature of a writer killed mid-row. */
    bool tornTail = false;
};

/**
 * Reads a JSONL file; malformed or truncated lines (e.g. a row cut
 * short by an interrupted campaign) are skipped with a warning.
 * A torn trailing line (no final newline, unparseable) is the
 * expected artifact of an interrupted writer and is dropped
 * quietly; newline-terminated garbage mid-file is warned about per
 * line. Returns an empty vector when the file does not exist.
 */
std::vector<JsonRow> loadJsonl(const std::string &path);

/** As above, also reporting what was kept and dropped. */
std::vector<JsonRow> loadJsonl(const std::string &path,
                               JsonlReadStats &stats);

/** Returns row[key] or `fallback` when the key is absent. */
std::string rowValue(const JsonRow &row, const std::string &key,
                     const std::string &fallback = "");

} // namespace lap

#endif // LAPSIM_CAMPAIGN_JSONL_HH
