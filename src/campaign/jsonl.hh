/**
 * @file
 * Minimal JSON reading for campaign result rows.
 *
 * The campaign sink emits one JSON object per line through
 * JsonWriter; this is the matching reader. It parses a single
 * object into a flat map with dotted keys ("metrics.epi",
 * "config.policy"), which is all the resume and aggregation paths
 * need — it is not a general-purpose JSON library.
 */

#ifndef LAPSIM_CAMPAIGN_JSONL_HH
#define LAPSIM_CAMPAIGN_JSONL_HH

#include <map>
#include <string>
#include <vector>

namespace lap
{

/** One parsed JSONL row: flattened key → scalar value as text. */
using JsonRow = std::map<std::string, std::string>;

/**
 * Parses one JSON object; nested objects flatten with dotted keys,
 * array elements with numeric suffixes ("ipc.0"). Returns false on
 * malformed input (the row is left partially filled).
 */
bool parseJsonObject(const std::string &text, JsonRow &row);

/**
 * Reads a JSONL file; malformed or truncated lines (e.g. a row cut
 * short by an interrupted campaign) are skipped with a warning.
 * Returns an empty vector when the file does not exist.
 */
std::vector<JsonRow> loadJsonl(const std::string &path);

/** Returns row[key] or `fallback` when the key is absent. */
std::string rowValue(const JsonRow &row, const std::string &key,
                     const std::string &fallback = "");

} // namespace lap

#endif // LAPSIM_CAMPAIGN_JSONL_HH
