#include "campaign/aggregate.hh"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hh"

namespace lap
{

ResultIndex::ResultIndex(const CampaignResult &result)
{
    for (std::size_t i = 0; i < result.jobs.size(); ++i) {
        if (result.outcomes[i].status != JobStatus::Ok)
            continue;
        const CampaignJob &job = result.jobs[i];
        const Metrics *metrics = &result.outcomes[i].metrics;
        const int policy = static_cast<int>(job.config.policy);
        index_[{job.workload.key(), policy}] = metrics;
        // Also index by the bare workload name for convenience.
        index_.insert({{job.workload.name, policy}, metrics});
    }
}

const Metrics *
ResultIndex::find(const std::string &workload, PolicyKind policy) const
{
    const auto it =
        index_.find({workload, static_cast<int>(policy)});
    return it == index_.end() ? nullptr : it->second;
}

const Metrics &
ResultIndex::get(const std::string &workload, PolicyKind policy) const
{
    const Metrics *metrics = find(workload, policy);
    if (metrics == nullptr)
        lap_fatal("no completed job for workload '%s' policy '%s'",
                  workload.c_str(), toString(policy));
    return *metrics;
}

Table
aggregateRows(const std::vector<JsonRow> &rows,
              const AggregateSpec &spec)
{
    // Orderings follow first appearance in the file, which for a
    // fresh serial run is grid order.
    std::vector<std::string> row_keys, col_keys;
    std::map<std::pair<std::string, std::string>, double> cells;
    for (const auto &row : rows) {
        if (rowValue(row, "status") != "ok")
            continue;
        // Epoch rows share the identity fields of their result row;
        // only the end-of-run result rows belong in metric tables.
        if (rowValue(row, "type", "result") != "result")
            continue;
        const std::string row_key = rowValue(row, spec.rowField);
        const std::string col_key = rowValue(row, spec.colField);
        const std::string value = rowValue(row, spec.metric);
        if (row_key.empty() || col_key.empty() || value.empty())
            continue;
        if (std::find(row_keys.begin(), row_keys.end(), row_key)
            == row_keys.end())
            row_keys.push_back(row_key);
        if (std::find(col_keys.begin(), col_keys.end(), col_key)
            == col_keys.end())
            col_keys.push_back(col_key);
        cells[{row_key, col_key}] = std::atof(value.c_str());
    }
    if (row_keys.empty())
        lap_fatal("aggregate: no usable rows (fields '%s'/'%s'/'%s')",
                  spec.rowField.c_str(), spec.colField.c_str(),
                  spec.metric.c_str());

    std::vector<std::string> headers{spec.rowField};
    for (const auto &col : col_keys)
        headers.push_back(col);
    Table table(headers);

    std::map<std::string, std::vector<double>> col_values;
    for (const auto &row_key : row_keys) {
        std::vector<std::string> out{row_key};
        double norm = 1.0;
        if (!spec.normalizeCol.empty()) {
            const auto it = cells.find({row_key, spec.normalizeCol});
            if (it == cells.end()) {
                lap_warn("aggregate: row '%s' lacks normalization "
                         "column '%s'; emitting raw values",
                         row_key.c_str(), spec.normalizeCol.c_str());
            } else if (it->second != 0.0) {
                norm = it->second;
            }
        }
        for (const auto &col_key : col_keys) {
            const auto it = cells.find({row_key, col_key});
            if (it == cells.end()) {
                out.push_back("-");
                continue;
            }
            const double value = it->second / norm;
            col_values[col_key].push_back(value);
            out.push_back(Table::num(value, spec.precision));
        }
        table.addRow(out);
    }

    table.addSeparator();
    std::vector<std::string> mean_row{"mean"};
    for (const auto &col_key : col_keys) {
        const auto &values = col_values[col_key];
        if (values.empty()) {
            mean_row.push_back("-");
            continue;
        }
        double sum = 0.0;
        for (double v : values)
            sum += v;
        mean_row.push_back(Table::num(
            sum / static_cast<double>(values.size()), spec.precision));
    }
    table.addRow(mean_row);
    return table;
}

Table
aggregateEpochPhases(const std::vector<JsonRow> &rows,
                     const AggregateSpec &spec, int phases)
{
    lap_assert(phases >= 1, "need >= 1 phase, got %d", phases);
    // Epoch streams per row key, in file order: the sink writes one
    // job's epochs contiguously and in index order, and labels are
    // unique per job, so file order is stream order.
    std::vector<std::string> row_keys;
    std::map<std::string, std::vector<double>> streams;
    for (const auto &row : rows) {
        if (rowValue(row, "type") != "epoch")
            continue;
        if (rowValue(row, "status") != "ok")
            continue;
        const std::string row_key = rowValue(row, spec.rowField);
        const std::string value = rowValue(row, spec.metric);
        if (row_key.empty() || value.empty())
            continue;
        if (streams.find(row_key) == streams.end())
            row_keys.push_back(row_key);
        streams[row_key].push_back(std::atof(value.c_str()));
    }
    if (row_keys.empty())
        lap_fatal("aggregate: no epoch rows with metric '%s' (was the "
                  "campaign run with epoch-stats?)",
                  spec.metric.c_str());

    std::vector<std::string> headers{spec.rowField};
    for (int p = 0; p < phases; ++p)
        headers.push_back("phase" + std::to_string(p));
    Table table(headers);
    for (const auto &row_key : row_keys) {
        const auto &stream = streams[row_key];
        const auto buckets = static_cast<std::size_t>(phases);
        std::vector<double> sums(buckets, 0.0);
        std::vector<std::size_t> counts(buckets, 0);
        for (std::size_t i = 0; i < stream.size(); ++i) {
            const std::size_t p = i * buckets / stream.size();
            sums[p] += stream[i];
            ++counts[p];
        }
        std::vector<std::string> out{row_key};
        for (std::size_t p = 0; p < buckets; ++p) {
            out.push_back(
                counts[p] == 0
                    ? "-"
                    : Table::num(sums[p]
                                     / static_cast<double>(counts[p]),
                                 spec.precision));
        }
        table.addRow(out);
    }
    return table;
}

Table
aggregateJsonlFile(const std::string &path, const AggregateSpec &spec)
{
    const auto rows = loadJsonl(path);
    if (rows.empty())
        lap_fatal("no JSONL rows in '%s'", path.c_str());
    return aggregateRows(rows, spec);
}

} // namespace lap
