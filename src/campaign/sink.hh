/**
 * @file
 * Thread-safe JSONL result sink.
 *
 * Workers hand in fully serialized rows; the sink appends each as
 * one line with a single locked write+flush, so an interrupted
 * campaign leaves at most one truncated trailing line (which the
 * resume loader skips). Rows are keyed by the job hash, letting
 * `--resume` skip grid points that already completed successfully.
 */

#ifndef LAPSIM_CAMPAIGN_SINK_HH
#define LAPSIM_CAMPAIGN_SINK_HH

#include <cstdio>
#include <set>
#include <string>

#include "common/mutex.hh"

namespace lap
{

/** Appends JSON rows to a file, one per line, thread-safely. */
class JsonlSink
{
  public:
    /**
     * Opens @p path for writing; @p append preserves existing rows
     * (resume), otherwise the file is truncated. Fatal on I/O
     * errors.
     */
    JsonlSink(const std::string &path, bool append);
    ~JsonlSink();

    JsonlSink(const JsonlSink &) = delete;
    JsonlSink &operator=(const JsonlSink &) = delete;

    /** Appends one row and flushes; callable from any thread. */
    void write(const std::string &json_row) LAP_EXCLUDES(mutex_);

    const std::string &path() const { return path_; }

  private:
    /** Immutable after construction; read without the lock. */
    // lapsim-lint: allow(thread-unguarded-field)
    std::string path_;
    Mutex mutex_;
    std::FILE *file_ LAP_GUARDED_BY(mutex_) = nullptr;
};

/**
 * Job hashes of rows in @p path that completed with status "ok".
 * Missing file yields an empty set; failed rows are not included,
 * so resume re-runs them.
 */
std::set<std::string> loadCompletedHashes(const std::string &path);

} // namespace lap

#endif // LAPSIM_CAMPAIGN_SINK_HH
