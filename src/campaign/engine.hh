/**
 * @file
 * Parallel campaign execution.
 *
 * Expands a CampaignSpec and runs the jobs on a fixed-size
 * std::thread worker pool. Every job constructs its own Simulator
 * from its own (content-seeded) SimConfig, so there is no shared
 * mutable state between jobs and an N-worker run produces metrics
 * bit-identical to a serial run of the same grid. A job that hits
 * lap_fatal() (bad config, unknown workload) is recorded as failed
 * and the campaign continues; results stream to an optional
 * thread-safe JSONL sink keyed by the stable job hash, which is
 * what makes interrupted campaigns resumable.
 */

#ifndef LAPSIM_CAMPAIGN_ENGINE_HH
#define LAPSIM_CAMPAIGN_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "campaign/spec.hh"
#include "sim/metrics.hh"
#include "stats/epoch.hh"

namespace lap
{

/** Terminal state of one grid point. */
enum class JobStatus : std::uint8_t
{
    Ok,      //!< Ran to completion; metrics valid.
    Failed,  //!< lap_fatal() inside the job; error holds the message.
    Skipped, //!< Already completed in a previous (resumed) run.
    NotRun,  //!< Never dispatched (graceful shutdown stopped first).
};

const char *toString(JobStatus status);

/** Per-job result record. */
struct JobOutcome
{
    JobStatus status = JobStatus::Failed;
    Metrics metrics;   //!< Valid only when status == Ok.
    std::string error; //!< Non-empty only when status == Failed.
    double wallMs = 0.0;
    /** Epoch stream of the run (epoch-stats enabled jobs only). */
    std::vector<EpochRecord> epochs;
    /** Heat-histogram summary JSON ("" unless heat enabled). */
    std::string heatJson;
};

/** Execution knobs of one campaign run. */
struct EngineOptions
{
    /** Worker threads (1 = serial). */
    std::uint32_t jobs = 1;
    /** JSONL result file; empty disables the sink. */
    std::string outPath;
    /** Skip jobs whose hash already has an "ok" row in outPath. */
    bool resume = false;
    /**
     * Mid-job restore (implies resume; needs outPath): every job
     * periodically checkpoints to jobCheckpointPath(), and a job that
     * was killed mid-flight restores from its snapshot instead of
     * starting over. The snapshot is deleted once the job completes,
     * so a finished campaign leaves no checkpoint files behind.
     */
    bool midJobRestore = false;
    /**
     * Checkpoint cadence in references for midJobRestore; 0 derives
     * a cadence of roughly four snapshots per job.
     */
    std::uint64_t checkpointEvery = 0;
    /**
     * Shard selection: run only jobs whose hash falls in shard
     * shardIndex of shardCount (0 = run everything). The partition
     * is a pure function of the job hash — the same FNV-1a
     * partition the fabric scheduler buckets by — so N disjoint
     * shard runs of one grid union to exactly the serial result.
     */
    std::uint32_t shardIndex = 0;
    std::uint32_t shardCount = 0;
    /**
     * Cooperative stop (SIGINT/SIGTERM): when set, workers stop
     * claiming jobs; already-running jobs finish and are reported,
     * unclaimed ones end as JobStatus::NotRun with no row written.
     */
    const std::atomic<bool> *stopFlag = nullptr;
    /**
     * Progress hook, invoked once per finished job under a lock
     * (safe to print from). Skipped jobs are reported too.
     */
    std::function<void(const CampaignJob &, const JobOutcome &,
                       std::size_t done, std::size_t total)>
        onJobDone;
};

/** Everything a finished campaign produced, in grid order. */
struct CampaignResult
{
    std::vector<CampaignJob> jobs;
    std::vector<JobOutcome> outcomes; //!< Parallel to jobs.
    double wallMs = 0.0;              //!< Whole-campaign wall clock.

    std::size_t countWithStatus(JobStatus status) const;
    std::size_t completed() const
    {
        return countWithStatus(JobStatus::Ok);
    }
    std::size_t failed() const
    {
        return countWithStatus(JobStatus::Failed);
    }
    std::size_t skipped() const
    {
        return countWithStatus(JobStatus::Skipped);
    }
    std::size_t notRun() const
    {
        return countWithStatus(JobStatus::NotRun);
    }
};

/**
 * Runs one job in isolation (no threads, no sink); fatal errors in
 * the job surface as a Failed outcome. Exposed for tests and for
 * embedding jobs in other drivers.
 */
JobOutcome runCampaignJob(const CampaignJob &job);

/**
 * Sibling checkpoint file of one campaign job
 * ("<out_path>.<job hash>.ckpt"). Exposed so tests can plant or
 * inspect the snapshot an interrupted job would leave behind.
 */
std::string jobCheckpointPath(const std::string &out_path,
                              const CampaignJob &job);

/**
 * Rewrites a job's config for mid-job restore against an explicit
 * snapshot file: checkpoint to @p ckpt_path every
 * @p checkpoint_every references (0 derives roughly four snapshots
 * per job), and restore from @p ckpt_path when it already holds a
 * valid snapshot of this exact config (an invalid or foreign one is
 * ignored and the job starts fresh). This is the building block of
 * both the engine's midJobRestore mode and the fabric worker's
 * kill-resume path.
 */
CampaignJob withJobCheckpointing(const CampaignJob &job,
                                 const std::string &ckpt_path,
                                 std::uint64_t checkpoint_every);

/** Serializes one job + outcome into a JSONL result row
 *  (`"type":"result"`). */
std::string jobToJsonRow(const std::string &campaign,
                         const CampaignJob &job,
                         const JobOutcome &outcome);

/**
 * Serializes one epoch record of a job into a JSONL epoch row
 * (`"type":"epoch"`; epoch counters at the top level, job identity
 * fields matching the result row).
 */
std::string epochToJsonRow(const std::string &campaign,
                           const CampaignJob &job,
                           const EpochRecord &record);

/** Expands the spec and executes the grid. */
CampaignResult runCampaign(const CampaignSpec &spec,
                           const EngineOptions &options);

} // namespace lap

#endif // LAPSIM_CAMPAIGN_ENGINE_HH
