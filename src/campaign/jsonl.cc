#include "campaign/jsonl.hh"

#include <fstream>

#include "common/logging.hh"

namespace lap
{

namespace
{

/** Recursive-descent reader over one line of JSON. */
class JsonReader
{
  public:
    JsonReader(const std::string &text, JsonRow &row)
        : text_(text), row_(row)
    {
    }

    bool
    parse()
    {
        skipSpace();
        if (!parseObject(""))
            return false;
        skipSpace();
        return pos_ == text_.size();
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size()
               && (text_[pos_] == ' ' || text_[pos_] == '\t'
                   || text_[pos_] == '\r' || text_[pos_] == '\n'))
            ++pos_;
    }

    bool
    expect(char ch)
    {
        skipSpace();
        if (pos_ >= text_.size() || text_[pos_] != ch)
            return false;
        ++pos_;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!expect('"'))
            return false;
        out.clear();
        while (pos_ < text_.size()) {
            const char ch = text_[pos_++];
            if (ch == '"')
                return true;
            if (ch != '\\') {
                out += ch;
                continue;
            }
            if (pos_ >= text_.size())
                return false;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return false;
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char hex = text_[pos_++];
                    code <<= 4;
                    if (hex >= '0' && hex <= '9')
                        code |= static_cast<unsigned>(hex - '0');
                    else if (hex >= 'a' && hex <= 'f')
                        code |= static_cast<unsigned>(hex - 'a' + 10);
                    else if (hex >= 'A' && hex <= 'F')
                        code |= static_cast<unsigned>(hex - 'A' + 10);
                    else
                        return false;
                }
                // The writer only escapes control characters, so a
                // single byte is sufficient here.
                out += static_cast<char>(code & 0xff);
                break;
              }
              default:
                return false;
            }
        }
        return false;
    }

    bool
    parseScalar(const std::string &key)
    {
        skipSpace();
        if (pos_ >= text_.size())
            return false;
        if (text_[pos_] == '"') {
            std::string value;
            if (!parseString(value))
                return false;
            row_[key] = value;
            return true;
        }
        // number / true / false / null: copy the raw token.
        const std::size_t start = pos_;
        while (pos_ < text_.size()) {
            const char ch = text_[pos_];
            if (ch == ',' || ch == '}' || ch == ']' || ch == ' '
                || ch == '\t' || ch == '\r' || ch == '\n')
                break;
            ++pos_;
        }
        if (pos_ == start)
            return false;
        row_[key] = text_.substr(start, pos_ - start);
        return true;
    }

    bool
    parseValue(const std::string &key)
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '{')
            return parseObject(key);
        if (pos_ < text_.size() && text_[pos_] == '[')
            return parseArray(key);
        return parseScalar(key);
    }

    bool
    parseObject(const std::string &prefix)
    {
        if (!expect('{'))
            return false;
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            std::string key;
            if (!parseString(key) || !expect(':'))
                return false;
            const std::string full =
                prefix.empty() ? key : prefix + "." + key;
            if (!parseValue(full))
                return false;
            skipSpace();
            if (pos_ >= text_.size())
                return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            return expect('}');
        }
    }

    bool
    parseArray(const std::string &prefix)
    {
        if (!expect('['))
            return false;
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        std::size_t index = 0;
        while (true) {
            if (!parseValue(prefix + "." + std::to_string(index++)))
                return false;
            skipSpace();
            if (pos_ >= text_.size())
                return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            return expect(']');
        }
    }

    const std::string &text_;
    JsonRow &row_;
    std::size_t pos_ = 0;
};

} // namespace

bool
parseJsonObject(const std::string &text, JsonRow &row)
{
    return JsonReader(text, row).parse();
}

std::vector<JsonRow>
loadJsonl(const std::string &path)
{
    JsonlReadStats stats;
    return loadJsonl(path, stats);
}

std::vector<JsonRow>
loadJsonl(const std::string &path, JsonlReadStats &stats)
{
    stats = JsonlReadStats{};
    std::vector<JsonRow> rows;
    // Binary read: a torn row can contain any bytes, and text-mode
    // surprises must not change what counts as a line.
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return rows;
    const std::string content(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());

    std::size_t pos = 0;
    int line_no = 0;
    while (pos < content.size()) {
        const std::size_t nl = content.find('\n', pos);
        const bool terminated = nl != std::string::npos;
        const std::size_t end = terminated ? nl : content.size();
        const std::string line = content.substr(pos, end - pos);
        pos = terminated ? nl + 1 : content.size();
        ++line_no;
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        stats.lines++;
        JsonRow row;
        if (parseJsonObject(line, row)) {
            rows.push_back(std::move(row));
            stats.rows++;
            continue;
        }
        if (!terminated) {
            // The signature of a writer killed mid-row: the sink
            // writes each row atomically with its newline, so an
            // unterminated tail is an interruption artifact, not
            // corruption. Drop it; resume re-runs that job.
            stats.tornTail = true;
        } else {
            stats.malformed++;
            lap_warn("%s:%d: skipping malformed JSONL row",
                     path.c_str(), line_no);
        }
    }
    return rows;
}

std::string
rowValue(const JsonRow &row, const std::string &key,
         const std::string &fallback)
{
    const auto it = row.find(key);
    return it == row.end() ? fallback : it->second;
}

} // namespace lap
