/**
 * @file
 * System configuration (paper Table II) and experiment knobs.
 */

#ifndef LAPSIM_SIM_CONFIG_HH
#define LAPSIM_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "core/policy_factory.hh"
#include "energy/tech_params.hh"
#include "hierarchy/hierarchy.hh"

namespace lap
{

/** Data-placement variants for the (hybrid) LLC. */
enum class PlacementKind : std::uint8_t
{
    Default,   //!< Uniform across all ways.
    Winv,      //!< LAP+Winv ablation (Fig 25).
    LoopStt,   //!< LAP+LoopSTT ablation.
    NloopSram, //!< LAP+NloopSRAM ablation.
    Lhybrid,   //!< Full Lhybrid (Fig 11).
};

const char *toString(PlacementKind kind);

/** Complete experiment configuration; defaults follow Table II. */
struct SimConfig
{
    std::uint32_t numCores = 4;

    // L1D: private 32KB 4-way, 2-cycle.
    std::uint64_t l1Size = 32 * 1024;
    std::uint32_t l1Assoc = 4;
    Cycle l1Latency = 2;

    // L2: private 512KB 8-way, 4-cycle.
    std::uint64_t l2Size = 512 * 1024;
    std::uint32_t l2Assoc = 8;
    Cycle l2Latency = 4;

    // LLC: shared 8MB 16-way, 4 banks.
    std::uint64_t llcSize = 8 * 1024 * 1024;
    std::uint32_t llcAssoc = 16;
    std::uint32_t llcBanks = 4;
    MemTech llcTech = MemTech::STTRAM;
    /** Base replacement policy of the LLC (the paper notes LAP's
     *  loop-aware priority composes with RRIP as well as LRU). */
    ReplKind llcRepl = ReplKind::Lru;
    /** Hybrid LLC: 2MB SRAM (4 ways) + 6MB STT-RAM (12 ways). */
    bool hybridLlc = false;
    std::uint32_t llcSramWays = 4;

    /** Technology design points (Table I by default). */
    TechParams sram = sramTechParams();
    TechParams stt = sttTechParams();

    PolicyKind policy = PolicyKind::NonInclusive;
    PolicyTuning tuning;
    PlacementKind placement = PlacementKind::Default;

    /** Combine the policy with DASCA-style dead-write bypassing
     *  (orthogonal per the paper's related-work discussion). */
    bool deadWriteBypass = false;

    /** MOESI snooping between private caches (PARSEC runs). */
    bool coherence = false;

    DramParams dram;

    double issueWidth = 4.0;
    double clockGhz = 3.0;

    /** Warmup / measured references per core (scaled-down from the
     *  paper's 6B-instruction fast-forward + 2B-cycle window). */
    std::uint64_t warmupRefs = 160'000;
    std::uint64_t measureRefs = 640'000;

    /** Run the hierarchy auditor every N transactions in fail-fast
     *  mode (0 disables auditing). */
    std::uint64_t auditInterval = 0;

    /** Sample per-epoch statistics every N transactions (0 = off).
     *  Observe-only: never changes simulation results. */
    std::uint64_t epochStatsInterval = 0;

    /** Collect the per-set/bank LLC heat histogram. Observe-only. */
    bool heatStats = false;

    /** Write a Chrome trace_event JSON file here ("" = off).
     *  Observe-only. */
    std::string traceEventsPath;

    /** Write a checkpoint every N references (0 = off); each write
     *  atomically replaces the file at checkpointOut. A restored run
     *  reproduces the uninterrupted run bit-exactly, so these are
     *  observe-only for the result metrics. */
    std::uint64_t checkpointEvery = 0;

    /** Checkpoint output file ("" = off). */
    std::string checkpointOut;

    /** Restore simulation state from this checkpoint before running
     *  ("" = start fresh). */
    std::string restorePath;

    /**
     * Replay a recorded trace instead of the synthetic generators
     * ("" = synthetic): a LAPTR1 file path or "stressor:<name>" for
     * a built-in generator (src/trace). When set, run() and
     * runMultiThreaded() ignore their workload specs and replay the
     * trace; it participates in the job-hash key because it shapes
     * results.
     */
    std::string tracePath;

    std::uint64_t seedSalt = 0;
};

/** Reference-count scaling from the environment:
 *  LAPSIM_FAST=1 quarters the run lengths; LAPSIM_REFS_SCALE=<f>
 *  multiplies them. Benches apply this to their configs. */
SimConfig applyEnvScaling(SimConfig config);

/**
 * Rejects geometries the engine cannot represent with a clear,
 * user-facing error instead of an assertion deep in the cache
 * internals: zero or >64-way associativity (the tag store packs a
 * set's occupancy into one 64-bit mask per set), sizes that do not
 * divide into whole sets, hybrid partitions wider than the cache,
 * and zero-bank LLCs. Called by the Simulator before construction;
 * CLI front-ends get the message verbatim.
 */
void validateConfig(const SimConfig &config);

} // namespace lap

#endif // LAPSIM_SIM_CONFIG_HH
