/**
 * @file
 * Named-field access to SimConfig.
 *
 * One registry maps stable kebab-case field names ("llc-mb",
 * "policy", "wr-ratio", ...) onto SimConfig setters, so the lapsim
 * CLI flags, campaign spec files and campaign sweep axes all share
 * one parsing/validation path. The same names are used as the
 * canonical serialization order for job hashing, so the registry is
 * deliberately exhaustive over every field that can change metrics.
 */

#ifndef LAPSIM_SIM_CONFIG_FIELDS_HH
#define LAPSIM_SIM_CONFIG_FIELDS_HH

#include <string>
#include <vector>

#include "sim/config.hh"

namespace lap
{

/**
 * Applies `<field>=<value>` to a configuration. Returns false when
 * the field name is unknown (callers decide whether that is fatal);
 * fatal on a malformed value for a known field.
 */
bool applyConfigField(SimConfig &config, const std::string &field,
                      const std::string &value);

/** All registered field names, in canonical (hashing) order. */
std::vector<std::string> configFieldNames();

/** Registry metadata for one field (CLI flag/help generation). */
struct ConfigFieldInfo
{
    std::string name;
    std::string help;
    /** Boolean fields double as valueless CLI flags (--hybrid). */
    bool isBool = false;
};

/** Metadata for every registered field, in canonical order. */
std::vector<ConfigFieldInfo> configFieldInfos();

/** Comma-joined registered field names for error messages. */
std::string configFieldNamesJoined();

/** Current value of a registered field, formatted canonically. */
std::string configFieldValue(const SimConfig &config,
                             const std::string &field);

/**
 * Canonical `field=value|...` serialization of every registered
 * field, used as the stable basis for campaign job keys.
 */
std::string configKey(const SimConfig &config);

/** One-line-per-field help text for spec files / --set. */
std::string configFieldsHelp();

/** Parses a PlacementKind name; fatal on unknown names. */
PlacementKind placementKindFromString(const std::string &name);

/** Parses a ReplKind name; fatal on unknown names. */
ReplKind replKindFromString(const std::string &name);

} // namespace lap

#endif // LAPSIM_SIM_CONFIG_FIELDS_HH
