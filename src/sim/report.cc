#include "sim/report.hh"

#include <cstdio>
#include <fstream>

#include "common/logging.hh"

namespace lap
{

std::string
configToJson(const SimConfig &config)
{
    JsonWriter w;
    w.field("numCores", std::uint64_t{config.numCores})
        .field("l1Size", config.l1Size)
        .field("l2Size", config.l2Size)
        .field("llcSize", config.llcSize)
        .field("llcAssoc", std::uint64_t{config.llcAssoc})
        .field("llcTech", toString(config.llcTech))
        .field("llcRepl", toString(config.llcRepl))
        .field("hybridLlc", config.hybridLlc)
        .field("policy", toString(config.policy))
        .field("placement", toString(config.placement))
        .field("deadWriteBypass", config.deadWriteBypass)
        .field("coherence", config.coherence)
        .field("sttWriteReadRatio", config.stt.writeReadRatio())
        .field("warmupRefs", config.warmupRefs)
        .field("measureRefs", config.measureRefs);
    return w.str();
}

std::string
metricsToJson(const Metrics &m)
{
    JsonWriter w;
    w.field("instructions", m.instructions)
        .field("cycles", m.cycles)
        .field("throughput", m.throughput)
        .field("epi", m.epi)
        .field("epiStatic", m.epiStatic)
        .field("epiDynamic", m.epiDynamic)
        .field("llcHits", m.llcHits)
        .field("llcMisses", m.llcMisses)
        .field("llcMpki", m.llcMpki)
        .field("llcWritesTotal", m.llcWritesTotal)
        .field("llcWritesFill", m.llcWritesFill)
        .field("llcWritesCleanVictim", m.llcWritesCleanVictim)
        .field("llcWritesDirtyVictim", m.llcWritesDirtyVictim)
        .field("llcWritesMigration", m.llcWritesMigration)
        .field("redundantFillFraction", m.redundantFillFraction)
        .field("loopEvictionFraction", m.loopEvictionFraction)
        .field("loopInsertionFraction", m.loopInsertionFraction)
        .field("llcLoopResidency", m.llcLoopResidency)
        .field("snoopMessages", m.snoopMessages)
        .field("dramReads", m.dramReads)
        .field("dramWrites", m.dramWrites);
    return w.str();
}

std::string
experimentToJson(const std::string &label, const SimConfig &config,
                 const Metrics &metrics)
{
    JsonWriter w;
    w.field("label", label)
        .raw("config", configToJson(config))
        .raw("metrics", metricsToJson(metrics));
    return w.str();
}

namespace
{

void
dumpCacheStats(std::string &out, const std::string &prefix,
               const Cache &cache)
{
    const CacheStats &s = cache.stats();
    auto line = [&](const char *name, std::uint64_t value) {
        char buf[128];
        std::snprintf(buf, sizeof(buf), "%-44s %20llu\n",
                      (prefix + "." + name).c_str(),
                      static_cast<unsigned long long>(value));
        out += buf;
    };
    line("readHits", s.readHits);
    line("readMisses", s.readMisses);
    line("writeHits", s.writeHits);
    line("writeMisses", s.writeMisses);
    line("fills", s.fills);
    line("evictionsClean", s.evictionsClean);
    line("evictionsDirty", s.evictionsDirty);
    line("invalidations", s.invalidations);
    line("tagAccesses", s.tagAccesses);
    line("dataReads.sram", s.dataReads[0]);
    line("dataReads.stt", s.dataReads[1]);
    line("dataWrites.sram", s.dataWrites[0]);
    line("dataWrites.stt", s.dataWrites[1]);
}

} // namespace

std::string
dumpStats(CacheHierarchy &h)
{
    std::string out;
    auto line = [&](const char *name, std::uint64_t value) {
        char buf[128];
        std::snprintf(buf, sizeof(buf), "%-44s %20llu\n", name,
                      static_cast<unsigned long long>(value));
        out += buf;
    };

    const HierarchyStats &hs = h.stats();
    line("system.demandAccesses", hs.demandAccesses);
    line("system.demandReads", hs.demandReads);
    line("system.demandWrites", hs.demandWrites);
    line("system.l1Hits", hs.l1Hits);
    line("system.l2Hits", hs.l2Hits);
    line("system.llcHits", hs.llcHits);
    line("system.llcMisses", hs.llcMisses);
    line("system.llcWrites.dataFill", hs.llcWritesDataFill);
    line("system.llcWrites.cleanVictim", hs.llcWritesCleanVictim);
    line("system.llcWrites.dirtyVictim", hs.llcWritesDirtyVictim);
    line("system.llcWrites.migration", hs.llcWritesMigration);
    line("system.llcWrites.total", hs.llcWritesTotal());
    line("system.llcCleanVictimsDropped", hs.llcCleanVictimsDropped);
    line("system.llcLoopBlockInsertions", hs.llcLoopBlockInsertions);
    line("system.llcDemandFills", hs.llcDemandFills);
    line("system.llcRedundantFills", hs.llcRedundantFills);
    line("system.llcDeadFills", hs.llcDeadFills);
    line("system.llcBackInvalidations", hs.llcBackInvalidations);
    line("system.llcInvalidationsOnHit", hs.llcInvalidationsOnHit);
    line("system.llcBypassedWrites", hs.llcBypassedWrites);
    line("system.snoop.broadcasts", hs.snoop.broadcasts);
    line("system.snoop.messages", hs.snoop.messages);
    line("system.snoop.dataTransfers", hs.snoop.dataTransfers);
    line("system.snoop.invalidations", hs.snoop.invalidations);
    line("system.snoop.upgrades", hs.snoop.upgrades);
    line("dram.reads", h.dram().stats().reads);
    line("dram.writes", h.dram().stats().writes);

    for (std::uint32_t c = 0; c < h.params().numCores; ++c) {
        dumpCacheStats(out, "l1.core" + std::to_string(c), h.l1(c));
        dumpCacheStats(out, "l2.core" + std::to_string(c), h.l2(c));
    }
    dumpCacheStats(out, "llc", h.llc());
    return out;
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path);
    if (!out)
        lap_fatal("cannot open '%s' for writing", path.c_str());
    out << text;
    if (!out)
        lap_fatal("write to '%s' failed", path.c_str());
}

} // namespace lap
