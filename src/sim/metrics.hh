/**
 * @file
 * Aggregated per-run metrics: everything the paper's tables and
 * figures report, extracted from one simulation.
 */

#ifndef LAPSIM_SIM_METRICS_HH
#define LAPSIM_SIM_METRICS_HH

#include <cstdint>
#include <vector>

#include "energy/energy_model.hh"

namespace lap
{

/** Results of one measured simulation run. */
struct Metrics
{
    // --- Performance -------------------------------------------------
    double throughput = 0.0; //!< Sum of per-core IPCs.
    std::vector<double> coreIpc;
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0; //!< Wall-clock measurement window.

    // --- LLC energy ----------------------------------------------------
    EnergyBreakdown llcEnergy;     //!< Data arrays + tag array.
    EnergyBreakdown llcSramEnergy; //!< Hybrid: SRAM portion only.
    EnergyBreakdown llcSttEnergy;  //!< Hybrid: STT portion only.
    double epi = 0.0;              //!< nJ per instruction.
    double epiStatic = 0.0;
    double epiDynamic = 0.0;

    // --- LLC behaviour ---------------------------------------------
    std::uint64_t llcHits = 0;
    std::uint64_t llcMisses = 0;
    double llcMpki = 0.0;

    std::uint64_t llcWritesFill = 0;
    std::uint64_t llcWritesCleanVictim = 0;
    std::uint64_t llcWritesDirtyVictim = 0;
    std::uint64_t llcWritesMigration = 0;
    std::uint64_t llcWritesTotal = 0;

    /** Redundant data-fills / demand fills (Figs 6/17). */
    double redundantFillFraction = 0.0;
    std::uint64_t llcDemandFills = 0;
    std::uint64_t llcDeadFills = 0;

    /** Loop-block share of L2 eviction traffic (Fig 4). */
    double loopEvictionFraction = 0.0;
    double ctc1Fraction = 0.0;
    double ctcMidFraction = 0.0;
    double ctcHighFraction = 0.0;

    /** Loop-block insertions / total LLC writes (Fig 16). */
    double loopInsertionFraction = 0.0;
    /** Fraction of resident LLC blocks flagged as loop-blocks. */
    double llcLoopResidency = 0.0;

    // --- Coherence / memory ------------------------------------------
    std::uint64_t snoopMessages = 0;
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;

    double
    ipcOf(std::size_t core) const
    {
        return core < coreIpc.size() ? coreIpc[core] : 0.0;
    }
};

} // namespace lap

#endif // LAPSIM_SIM_METRICS_HH
