#include "sim/config_fields.hh"

#include <cstdio>
#include <cstdlib>
#include <functional>

#include "common/logging.hh"

namespace lap
{

namespace
{

std::uint64_t
parseUint(const std::string &field, const std::string &value)
{
    char *end = nullptr;
    const auto parsed = std::strtoull(value.c_str(), &end, 0);
    if (end == value.c_str() || *end != '\0')
        lap_fatal("%s: expected a number, got '%s'", field.c_str(),
                  value.c_str());
    return parsed;
}

double
parseDouble(const std::string &field, const std::string &value)
{
    char *end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || parsed <= 0.0)
        lap_fatal("%s: expected a positive number, got '%s'",
                  field.c_str(), value.c_str());
    return parsed;
}

bool
parseBool(const std::string &field, const std::string &value)
{
    if (value == "1" || value == "true" || value == "on")
        return true;
    if (value == "0" || value == "false" || value == "off")
        return false;
    lap_fatal("%s: expected a boolean (1|0|true|false|on|off), got '%s'",
              field.c_str(), value.c_str());
}

std::string
fmtDouble(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    return buf;
}

/** One (name, value) row of an enum's accepted spellings. */
template <typename E>
struct EnumName
{
    const char *name;
    E value;
};

/** Joins every accepted spelling for an "unknown name" error. */
template <typename E, std::size_t N>
std::string
validNames(const EnumName<E> (&table)[N])
{
    std::string joined;
    for (const auto &row : table) {
        if (!joined.empty())
            joined += ", ";
        joined += row.name;
    }
    return joined;
}

constexpr EnumName<MemTech> kTechNames[] = {
    {"sram", MemTech::SRAM},
    {"stt", MemTech::STTRAM},
    {"stt-ram", MemTech::STTRAM},
};

MemTech
techFromString(const std::string &field, const std::string &value)
{
    for (const auto &row : kTechNames) {
        if (value == row.name)
            return row.value;
    }
    lap_fatal("%s: unknown tech '%s' (valid: %s)", field.c_str(),
              value.c_str(), validNames(kTechNames).c_str());
}

/** One named SimConfig field: parse/apply and canonical formatting. */
struct FieldEntry
{
    const char *name;
    const char *help;
    /** Part of the job-hash key (false for observe-only knobs). */
    bool inKey;
    /** Boolean field: usable as a valueless CLI flag. */
    bool isBool;
    std::function<void(SimConfig &, const std::string &,
                       const std::string &)>
        set;
    std::function<std::string(const SimConfig &)> get;
};

const std::vector<FieldEntry> &
registry()
{
    auto u32 = [](std::uint32_t SimConfig::*member, bool nonzero = true) {
        return std::pair{
            [member, nonzero](SimConfig &c, const std::string &f,
                              const std::string &v) {
                const auto parsed = parseUint(f, v);
                if (nonzero && parsed == 0)
                    lap_fatal("%s: must be >= 1", f.c_str());
                c.*member = static_cast<std::uint32_t>(parsed);
            },
            [member](const SimConfig &c) {
                return std::to_string(c.*member);
            }};
    };
    auto u64 = [](std::uint64_t SimConfig::*member) {
        return std::pair{[member](SimConfig &c, const std::string &f,
                                  const std::string &v) {
                             c.*member = parseUint(f, v);
                         },
                         [member](const SimConfig &c) {
                             return std::to_string(c.*member);
                         }};
    };
    auto boolean = [](bool SimConfig::*member) {
        return std::pair{[member](SimConfig &c, const std::string &f,
                                  const std::string &v) {
                             c.*member = parseBool(f, v);
                         },
                         [member](const SimConfig &c) {
                             return std::string(c.*member ? "1" : "0");
                         }};
    };
    auto kb = [](std::uint64_t SimConfig::*member) {
        return std::pair{[member](SimConfig &c, const std::string &f,
                                  const std::string &v) {
                             const auto parsed = parseUint(f, v);
                             if (parsed == 0)
                                 lap_fatal("%s: must be >= 1", f.c_str());
                             c.*member = parsed * 1024;
                         },
                         [member](const SimConfig &c) {
                             return std::to_string(c.*member / 1024);
                         }};
    };

    static const std::vector<FieldEntry> entries = [&] {
        std::vector<FieldEntry> r;
        auto add = [&r](const char *name, const char *help, auto pair,
                        bool in_key = true, bool is_bool = false) {
            r.push_back({name, help, in_key, is_bool, pair.first,
                         pair.second});
        };

        add("cores", "number of cores", u32(&SimConfig::numCores));
        add("l1-kb", "private L1D size in KB", kb(&SimConfig::l1Size));
        add("l1-assoc", "L1D associativity", u32(&SimConfig::l1Assoc));
        add("l2-kb", "private L2 size in KB", kb(&SimConfig::l2Size));
        add("l2-assoc", "L2 associativity", u32(&SimConfig::l2Assoc));
        add("llc-kb", "shared LLC size in KB", kb(&SimConfig::llcSize));
        add("llc-assoc", "LLC associativity", u32(&SimConfig::llcAssoc));
        add("llc-banks", "LLC bank count", u32(&SimConfig::llcBanks));
        add("tech", "LLC technology (sram|stt)",
            std::pair{[](SimConfig &c, const std::string &f,
                         const std::string &v) {
                          c.llcTech = techFromString(f, v);
                      },
                      [](const SimConfig &c) {
                          return std::string(toString(c.llcTech));
                      }});
        add("repl", "LLC base replacement (lru|rrip|random)",
            std::pair{[](SimConfig &c, const std::string &,
                         const std::string &v) {
                          c.llcRepl = replKindFromString(v);
                      },
                      [](const SimConfig &c) {
                          return std::string(toString(c.llcRepl));
                      }});
        add("hybrid", "hybrid SRAM+STT LLC (bool)",
            boolean(&SimConfig::hybridLlc), /*in_key=*/true,
            /*is_bool=*/true);
        add("sram-ways", "hybrid SRAM ways",
            u32(&SimConfig::llcSramWays));
        add("policy",
            "inclusion policy (inclusive|noni|ex|flex|dswitch|lap-lru|"
            "lap-loop|lap)",
            std::pair{[](SimConfig &c, const std::string &,
                         const std::string &v) {
                          c.policy = policyKindFromString(v);
                      },
                      [](const SimConfig &c) {
                          return std::string(toString(c.policy));
                      }});
        add("placement",
            "LLC placement (default|winv|loopstt|nloopsram|lhybrid); "
            "non-default implies hybrid",
            std::pair{[](SimConfig &c, const std::string &,
                         const std::string &v) {
                          c.placement = placementKindFromString(v);
                          if (c.placement != PlacementKind::Default)
                              c.hybridLlc = true;
                      },
                      [](const SimConfig &c) {
                          return std::string(toString(c.placement));
                      }});
        add("dasca", "dead-write bypass filter (bool)",
            boolean(&SimConfig::deadWriteBypass), /*in_key=*/true,
            /*is_bool=*/true);
        add("coherence", "MOESI snooping (bool)",
            boolean(&SimConfig::coherence), /*in_key=*/true,
            /*is_bool=*/true);
        add("wr-ratio", "STT write/read dynamic-energy ratio",
            std::pair{[](SimConfig &c, const std::string &f,
                         const std::string &v) {
                          c.stt = c.stt.withWriteReadRatio(
                              parseDouble(f, v));
                      },
                      [](const SimConfig &c) {
                          return fmtDouble(c.stt.writeReadRatio());
                      }});
        add("issue-width", "core issue width",
            std::pair{[](SimConfig &c, const std::string &f,
                         const std::string &v) {
                          c.issueWidth = parseDouble(f, v);
                      },
                      [](const SimConfig &c) {
                          return fmtDouble(c.issueWidth);
                      }});
        add("clock-ghz", "core clock in GHz",
            std::pair{[](SimConfig &c, const std::string &f,
                         const std::string &v) {
                          c.clockGhz = parseDouble(f, v);
                      },
                      [](const SimConfig &c) {
                          return fmtDouble(c.clockGhz);
                      }});
        add("trace",
            "replay a LAPTR1 trace file or stressor:<name> instead "
            "of the synthetic generators ('' = synthetic)",
            std::pair{[](SimConfig &c, const std::string &,
                         const std::string &v) {
                          c.tracePath = v;
                      },
                      [](const SimConfig &c) {
                          return c.tracePath;
                      }});
        add("warmup", "warmup references per core",
            u64(&SimConfig::warmupRefs));
        add("refs", "measured references per core",
            u64(&SimConfig::measureRefs));
        add("seed", "workload seed salt", u64(&SimConfig::seedSalt));
        add("epoch-cycles", "adaptive-policy epoch length",
            std::pair{[](SimConfig &c, const std::string &f,
                         const std::string &v) {
                          c.tuning.epochCycles = parseUint(f, v);
                      },
                      [](const SimConfig &c) {
                          return std::to_string(c.tuning.epochCycles);
                      }});
        add("leader-period", "set-dueling leader period",
            std::pair{[](SimConfig &c, const std::string &f,
                         const std::string &v) {
                          c.tuning.leaderPeriod = static_cast<
                              std::uint32_t>(parseUint(f, v));
                      },
                      [](const SimConfig &c) {
                          return std::to_string(c.tuning.leaderPeriod);
                      }});
        add("flex-margin", "FLEXclusion miss-reduction margin",
            std::pair{[](SimConfig &c, const std::string &f,
                         const std::string &v) {
                          c.tuning.flexMissMargin = parseDouble(f, v);
                      },
                      [](const SimConfig &c) {
                          return fmtDouble(c.tuning.flexMissMargin);
                      }});
        add("dram-latency", "DRAM access latency (cycles)",
            std::pair{[](SimConfig &c, const std::string &f,
                         const std::string &v) {
                          c.dram.accessLatency = parseUint(f, v);
                      },
                      [](const SimConfig &c) {
                          return std::to_string(c.dram.accessLatency);
                      }});
        add("dram-channels", "DRAM channel count",
            std::pair{[](SimConfig &c, const std::string &f,
                         const std::string &v) {
                          const auto parsed = parseUint(f, v);
                          if (parsed == 0)
                              lap_fatal("%s: must be >= 1", f.c_str());
                          c.dram.channels =
                              static_cast<std::uint32_t>(parsed);
                      },
                      [](const SimConfig &c) {
                          return std::to_string(c.dram.channels);
                      }});
        // Auditing changes failure behaviour, never metrics, so it
        // does not invalidate completed jobs on resume.
        add("audit", "fail-fast audit interval (0 = off)",
            u64(&SimConfig::auditInterval), /*in_key=*/false);
        // The observability probes are passive (observer-freedom,
        // tests/test_epoch_conservation.cc): like auditing they never
        // change metrics and stay out of the job-hash key.
        add("epoch-stats", "epoch-sampling interval in txns (0 = off)",
            u64(&SimConfig::epochStatsInterval), /*in_key=*/false);
        add("heat", "per-set/bank LLC heat histogram (bool)",
            boolean(&SimConfig::heatStats), /*in_key=*/false,
            /*is_bool=*/true);
        add("trace-events",
            "Chrome trace_event JSON output file ('' = off)",
            std::pair{[](SimConfig &c, const std::string &,
                         const std::string &v) {
                          c.traceEventsPath = v;
                      },
                      [](const SimConfig &c) {
                          return c.traceEventsPath;
                      }},
            /*in_key=*/false);
        // Checkpointing restores bit-identical state, so like the
        // probes above it never changes metrics and stays out of the
        // job-hash key (a resumed job keeps its identity).
        add("checkpoint-every",
            "write a checkpoint every N references (0 = off)",
            u64(&SimConfig::checkpointEvery), /*in_key=*/false);
        add("checkpoint-out", "checkpoint output file ('' = off)",
            std::pair{[](SimConfig &c, const std::string &,
                         const std::string &v) {
                          c.checkpointOut = v;
                      },
                      [](const SimConfig &c) {
                          return c.checkpointOut;
                      }},
            /*in_key=*/false);
        add("restore", "restore state from this checkpoint file",
            std::pair{[](SimConfig &c, const std::string &,
                         const std::string &v) {
                          c.restorePath = v;
                      },
                      [](const SimConfig &c) {
                          return c.restorePath;
                      }},
            /*in_key=*/false);
        return r;
    }();
    return entries;
}

const FieldEntry *
findField(const std::string &field)
{
    // "llc-mb" stays as a CLI-compatible alias of the canonical
    // "llc-kb" granularity.
    for (const auto &entry : registry()) {
        if (field == entry.name)
            return &entry;
    }
    return nullptr;
}

} // namespace

PlacementKind
placementKindFromString(const std::string &name)
{
    static constexpr EnumName<PlacementKind> kNames[] = {
        {"default", PlacementKind::Default},
        {"winv", PlacementKind::Winv},
        {"loopstt", PlacementKind::LoopStt},
        {"nloopsram", PlacementKind::NloopSram},
        {"lhybrid", PlacementKind::Lhybrid},
    };
    for (const auto &row : kNames) {
        if (name == row.name)
            return row.value;
    }
    lap_fatal("unknown placement '%s' (valid: %s)", name.c_str(),
              validNames(kNames).c_str());
}

ReplKind
replKindFromString(const std::string &name)
{
    static constexpr EnumName<ReplKind> kNames[] = {
        {"lru", ReplKind::Lru},
        {"rrip", ReplKind::Rrip},
        {"random", ReplKind::Random},
    };
    for (const auto &row : kNames) {
        if (name == row.name)
            return row.value;
    }
    lap_fatal("unknown replacement '%s' (valid: %s)", name.c_str(),
              validNames(kNames).c_str());
}

bool
applyConfigField(SimConfig &config, const std::string &field,
                 const std::string &value)
{
    if (field == "llc-mb") {
        const auto parsed = parseUint(field, value);
        if (parsed == 0)
            lap_fatal("llc-mb: must be >= 1");
        config.llcSize = parsed * 1024 * 1024;
        return true;
    }
    const FieldEntry *entry = findField(field);
    if (entry == nullptr)
        return false;
    entry->set(config, field, value);
    return true;
}

std::vector<std::string>
configFieldNames()
{
    std::vector<std::string> names;
    for (const auto &entry : registry())
        names.push_back(entry.name);
    return names;
}

std::vector<ConfigFieldInfo>
configFieldInfos()
{
    std::vector<ConfigFieldInfo> infos;
    for (const auto &entry : registry())
        infos.push_back({entry.name, entry.help, entry.isBool});
    return infos;
}

std::string
configFieldNamesJoined()
{
    std::string joined;
    for (const auto &entry : registry()) {
        if (!joined.empty())
            joined += ", ";
        joined += entry.name;
    }
    return joined;
}

std::string
configFieldValue(const SimConfig &config, const std::string &field)
{
    const FieldEntry *entry = findField(field);
    if (entry == nullptr)
        lap_fatal("unknown config field '%s' (valid: %s)",
                  field.c_str(), configFieldNamesJoined().c_str());
    return entry->get(config);
}

std::string
configKey(const SimConfig &config)
{
    std::string key;
    for (const auto &entry : registry()) {
        if (!entry.inKey)
            continue;
        key += entry.name;
        key += '=';
        key += entry.get(config);
        key += '|';
    }
    // Fields without registry setters that still shape results: the
    // full technology design points and remaining tuning/DRAM knobs.
    auto tech = [&key](const char *name, const TechParams &t) {
        key += csprintf("%s=[%llu,%llu,%.9g,%.9g,%.9g]|", name,
                        static_cast<unsigned long long>(t.readLatency),
                        static_cast<unsigned long long>(t.writeLatency),
                        t.readEnergy, t.writeEnergy,
                        t.leakagePerTwoMb);
    };
    tech("sram-tech", config.sram);
    tech("stt-tech", config.stt);
    key += csprintf("dswitch-nj=[%.9g,%.9g]|dram-occ=%llu",
                    config.tuning.dswitchWriteEnergyNj,
                    config.tuning.dswitchMissEnergyNj,
                    static_cast<unsigned long long>(
                        config.dram.channelOccupancy));
    return key;
}

std::string
configFieldsHelp()
{
    std::string out;
    for (const auto &entry : registry())
        out += csprintf("  %-14s %s\n", entry.name, entry.help);
    return out;
}

} // namespace lap
