/**
 * @file
 * One-call experiment runner used by benches, examples and
 * integration tests: builds a hierarchy from a SimConfig, drives a
 * workload through it (warmup + measured window), and extracts
 * Metrics.
 */

#ifndef LAPSIM_SIM_SIMULATOR_HH
#define LAPSIM_SIM_SIMULATOR_HH

#include <memory>
#include <vector>

#include "cpu/driver.hh"
#include "sim/auditor.hh"
#include "sim/config.hh"
#include "sim/metrics.hh"
#include "stats/stats_engine.hh"
#include "workloads/regions.hh"

namespace lap
{

/** Builds hierarchy parameters from a SimConfig. */
HierarchyParams buildHierarchyParams(const SimConfig &config);

/** Builds the configured inclusion policy. */
InclusionEngine buildPolicy(const SimConfig &config);

/** Builds the configured placement policy. */
std::unique_ptr<PlacementPolicy> buildPlacement(const SimConfig &config);

/** Experiment runner; one instance per simulated run. */
class Simulator
{
  public:
    explicit Simulator(const SimConfig &config);

    /** Multi-programmed run: one workload per core. */
    Metrics run(const std::vector<WorkloadSpec> &per_core);

    /** Multi-threaded run: one workload on all cores, coherence on. */
    Metrics runMultiThreaded(const WorkloadSpec &workload);

    /** Run over externally built traces (file replay, tests). */
    Metrics runTraces(const std::vector<TraceSource *> &traces,
                      const std::vector<CoreParams> &cores);

    CacheHierarchy &hierarchy() { return *hierarchy_; }
    const SimConfig &config() const { return config_; }

    /** The attached auditor, or nullptr when auditInterval == 0. */
    HierarchyAuditor *auditor() { return auditor_.get(); }

    /** The observability probes, or nullptr when all are off. */
    StatsEngine *statsEngine() { return statsEngine_.get(); }

  private:
    Metrics extractMetrics(const RunResult &run_result) const;

    SimConfig config_;
    std::unique_ptr<CacheHierarchy> hierarchy_;
    /** Declared after hierarchy_: the auditor detaches first. */
    std::unique_ptr<HierarchyAuditor> auditor_;
    /** Declared after hierarchy_ for the same reason. */
    std::unique_ptr<StatsEngine> statsEngine_;
};

} // namespace lap

#endif // LAPSIM_SIM_SIMULATOR_HH
