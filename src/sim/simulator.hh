/**
 * @file
 * One-call experiment runner used by benches, examples and
 * integration tests: builds a hierarchy from a SimConfig, drives a
 * workload through it (warmup + measured window), and extracts
 * Metrics.
 */

#ifndef LAPSIM_SIM_SIMULATOR_HH
#define LAPSIM_SIM_SIMULATOR_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cpu/driver.hh"
#include "sim/auditor.hh"
#include "sim/config.hh"
#include "sim/metrics.hh"
#include "stats/stats_engine.hh"
#include "workloads/regions.hh"

namespace lap
{

/** Builds hierarchy parameters from a SimConfig. */
HierarchyParams buildHierarchyParams(const SimConfig &config);

/** Builds the configured inclusion policy. */
InclusionEngine buildPolicy(const SimConfig &config);

/** Builds the configured placement policy. */
std::unique_ptr<PlacementPolicy> buildPlacement(const SimConfig &config);

/** Experiment runner; one instance per simulated run. */
class Simulator
{
  public:
    explicit Simulator(const SimConfig &config);

    /** Multi-programmed run: one workload per core. When the config
     *  names a trace, the workloads are ignored and the trace is
     *  replayed instead (synthetic substitution). */
    Metrics run(const std::vector<WorkloadSpec> &per_core);

    /** Multi-threaded run: one workload on all cores, coherence on.
     *  Also subject to trace substitution. */
    Metrics runMultiThreaded(const WorkloadSpec &workload);

    /** Replays config().tracePath (a LAPTR1 file or a
     *  "stressor:<name>" built-in); fatal when no trace is
     *  configured or its core count differs from the run's. */
    Metrics runTrace();

    /** Run over externally built traces (file replay, tests). */
    Metrics runTraces(const std::vector<TraceSource *> &traces,
                      const std::vector<CoreParams> &cores);

    CacheHierarchy &hierarchy() { return *hierarchy_; }
    const SimConfig &config() const { return config_; }

    /** The attached auditor, or nullptr when auditInterval == 0. */
    HierarchyAuditor *auditor() { return auditor_.get(); }

    /** The observability probes, or nullptr when all are off. */
    StatsEngine *statsEngine() { return statsEngine_.get(); }

    // --- Checkpointing ----------------------------------------------
    /**
     * Installs a custom checkpoint hook: after every @p every
     * references (all cores, all phases) @p hook runs with the total
     * issued so far and may call saveCheckpoint(). Overrides the
     * config-driven checkpointEvery/checkpointOut behaviour; set
     * before the run starts. Tests use this to snapshot at an exact
     * transaction.
     */
    void
    setCheckpointHook(std::uint64_t every,
                      std::function<void(std::uint64_t)> hook)
    {
        hookEvery_ = every;
        hook_ = std::move(hook);
    }

    /**
     * Serializes the in-flight run to @p path (atomically replacing
     * any previous file). Only valid while a run is active — i.e.
     * from within a checkpoint hook.
     */
    void saveCheckpoint(const std::string &path);

  private:
    Metrics extractMetrics(const RunResult &run_result) const;

    SimConfig config_;
    std::unique_ptr<CacheHierarchy> hierarchy_;
    /** Declared after hierarchy_: the auditor detaches first. */
    std::unique_ptr<HierarchyAuditor> auditor_;
    /** Declared after hierarchy_ for the same reason. */
    std::unique_ptr<StatsEngine> statsEngine_;

    std::uint64_t hookEvery_ = 0;
    std::function<void(std::uint64_t)> hook_;
    /** Live only while runTraces is on the stack. */
    MultiCoreDriver *driver_ = nullptr;
    std::vector<TraceSource *> activeTraces_;
};

} // namespace lap

#endif // LAPSIM_SIM_SIMULATOR_HH
