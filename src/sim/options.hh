/**
 * @file
 * Command-line option parsing for the lapsim CLI tool.
 *
 * Kept in the library (rather than the app) so the mapping from
 * flags to SimConfig is unit-testable.
 */

#ifndef LAPSIM_SIM_OPTIONS_HH
#define LAPSIM_SIM_OPTIONS_HH

#include <string>
#include <vector>

#include "sim/config.hh"

namespace lap
{

/** Parsed command line of the lapsim tool. */
struct CliOptions
{
    enum class WorkloadKind : std::uint8_t
    {
        Mix,        //!< A named Table III mix (--mix WH1).
        Benchmarks, //!< Explicit benchmark list (--benchmarks a,b).
        Parsec,     //!< Multi-threaded PARSEC run (--parsec name).
    };

    SimConfig config;
    WorkloadKind workload = WorkloadKind::Mix;
    std::string mixName = "WH1"; //!< First of mixNames.
    /** All requested mixes; more than one runs as a mini-campaign. */
    std::vector<std::string> mixNames = {"WH1"};
    std::vector<std::string> benchmarks;
    std::string parsec;
    std::string jsonPath; //!< Optional JSON result file.
    /** Worker threads for multi-mix runs (--jobs). */
    std::uint32_t jobs = 1;
    bool dumpStats = false; //!< Print the full counter dump.
    bool showHelp = false;
};

/**
 * Parses the argument vector (without argv[0]); fatal on malformed
 * or unknown flags.
 */
CliOptions parseCliOptions(const std::vector<std::string> &args);

/** Usage text for --help. */
std::string cliHelpText();

/** Splits "a,b,c" into components (empty parts dropped). */
std::vector<std::string> splitList(const std::string &text);

} // namespace lap

#endif // LAPSIM_SIM_OPTIONS_HH
