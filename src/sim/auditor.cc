#include "sim/auditor.hh"

#include <algorithm>

#include "common/logging.hh"

namespace lap
{

namespace
{

/** Strength order of MOESI states (enum order is I<S<E<O<M). */
CohState
strongerState(CohState a, CohState b)
{
    return static_cast<std::uint8_t>(a) >= static_cast<std::uint8_t>(b)
        ? a
        : b;
}

} // namespace

const char *
toString(AuditCheck check)
{
    switch (check) {
      case AuditCheck::DuplicateTagInSet: return "DuplicateTagInSet";
      case AuditCheck::WrongSetIndex: return "WrongSetIndex";
      case AuditCheck::GhostState: return "GhostState";
      case AuditCheck::BlockCountMismatch: return "BlockCountMismatch";
      case AuditCheck::VersionAhead: return "VersionAhead";
      case AuditCheck::DataLoss: return "DataLoss";
      case AuditCheck::StatRegression: return "StatRegression";
      case AuditCheck::InclusionHole: return "InclusionHole";
      case AuditCheck::ExclusiveDuplicate: return "ExclusiveDuplicate";
      case AuditCheck::UnexpectedFill: return "UnexpectedFill";
      case AuditCheck::CleanBlockNotFilled: return "CleanBlockNotFilled";
      case AuditCheck::PolicyStatMismatch: return "PolicyStatMismatch";
      case AuditCheck::LoopBitUnclassified: return "LoopBitUnclassified";
      case AuditCheck::CoherenceLeak: return "CoherenceLeak";
      case AuditCheck::CoherenceExclusivity:
        return "CoherenceExclusivity";
      case AuditCheck::NumChecks: break;
    }
    return "UnknownCheck";
}

std::string
AuditDiagnostic::format() const
{
    return csprintf(
        "[audit] %s policy=%s txn=%llu cache=%s set=%llu way=%u "
        "block=0x%llx: %s",
        lap::toString(check), policy.c_str(),
        static_cast<unsigned long long>(transaction),
        cache.empty() ? "-" : cache.c_str(),
        static_cast<unsigned long long>(set), way,
        static_cast<unsigned long long>(blockAddr), detail.c_str());
}

HierarchyAuditor::HierarchyAuditor(CacheHierarchy &hierarchy,
                                   PolicyKind kind, AuditorConfig config)
    : hier_(hierarchy), kind_(kind), config_(config)
{
    hier_.addObserver(this);
    // The auditor may attach to a warm hierarchy: adopt the loop-bits
    // already resident in the LLC as classified.
    CacheInspector(hier_.llc()).forEachValid([&](const BlockInfo &blk) {
        if (blk.loopBit)
            loopClassified_.insert(blk.blockAddr);
    });
    rebaseline();
}

HierarchyAuditor::~HierarchyAuditor()
{
    hier_.removeObserver(this);
}

void
HierarchyAuditor::onTransactionComplete(std::uint64_t transaction,
                                        Cycle now)
{
    (void)now;
    if (config_.interval != 0 && transaction % config_.interval == 0)
        auditNow();
}

void
HierarchyAuditor::onDemandWrite(Addr block_addr)
{
    // A write ends the clean-trip streak: the next LLC loop-bit for
    // this address must come from a fresh classifying trip. A stale
    // LLC loop-bit may linger while the dirty copy lives upstream;
    // checkLlcBlock() accounts for that case explicitly.
    loopClassified_.erase(block_addr);
}

void
HierarchyAuditor::onCleanL2Eviction(Addr block_addr, bool loop_trip)
{
    if (loop_trip)
        loopClassified_.insert(block_addr);
    else
        loopClassified_.erase(block_addr);
}

void
HierarchyAuditor::onStatsReset()
{
    rebaseline();
}

void
HierarchyAuditor::rebaseline()
{
    occupancyBase_.clear();
    for (const Cache *cache : allCaches()) {
        const CacheStats &s = cache->stats();
        const std::int64_t flux = static_cast<std::int64_t>(s.fills)
            - static_cast<std::int64_t>(s.evictionsClean)
            - static_cast<std::int64_t>(s.evictionsDirty)
            - static_cast<std::int64_t>(s.invalidations);
        occupancyBase_.push_back(
            static_cast<std::int64_t>(
                CacheInspector(*cache).validBlockCount())
            - flux);
    }
    statSnapshot_.clear();
    haveSnapshot_ = false;
}

std::vector<const Cache *>
HierarchyAuditor::allCaches() const
{
    const CacheHierarchy &h = hier_;
    std::vector<const Cache *> caches;
    for (CoreId c = 0; c < h.params().numCores; ++c)
        caches.push_back(&h.l1(c));
    for (CoreId c = 0; c < h.params().numCores; ++c)
        caches.push_back(&h.l2(c));
    caches.push_back(&h.llc());
    return caches;
}

bool
HierarchyAuditor::llcEverFills() const
{
    return kind_ == PolicyKind::Inclusive
        || kind_ == PolicyKind::NonInclusive;
}

bool
HierarchyAuditor::llcNeverFills() const
{
    return kind_ == PolicyKind::Exclusive || kind_ == PolicyKind::LapLru
        || kind_ == PolicyKind::LapLoop || kind_ == PolicyKind::Lap;
}

AuditDiagnostic
HierarchyAuditor::makeDiag(AuditCheck check, const Cache *cache,
                           std::uint64_t set, std::uint32_t way,
                           Addr block_addr, std::string detail) const
{
    AuditDiagnostic diag;
    diag.check = check;
    diag.cache = cache ? cache->params().name : "";
    diag.set = set;
    diag.way = way;
    diag.blockAddr = block_addr;
    diag.policy = lap::toString(kind_);
    diag.transaction = hier_.transactionCount();
    diag.detail = std::move(detail);
    return diag;
}

void
HierarchyAuditor::report(AuditDiagnostic diag)
{
    violations_++;
    perCheck_[static_cast<std::size_t>(diag.check)]++;
    if (config_.mode == AuditMode::FailFast)
        lap_panic("%s", diag.format().c_str());
    if (violations_ <= config_.maxLogged)
        lap_warn("%s", diag.format().c_str());
    if (diagnostics_.size() < config_.maxStored)
        diagnostics_.push_back(std::move(diag));
}

void
HierarchyAuditor::clearDiagnostics()
{
    diagnostics_.clear();
    violations_ = 0;
    std::fill(std::begin(perCheck_), std::end(perCheck_), 0);
}

void
HierarchyAuditor::auditNow()
{
    auditsRun_++;
    Sweep sweep;
    const CacheHierarchy &h = hier_;

    // Private levels first: the LLC checks consult what they found.
    for (CoreId c = 0; c < h.params().numCores; ++c) {
        scanCache(h.l1(c), /*is_private=*/true, c, sweep);
        scanCache(h.l2(c), /*is_private=*/true, c, sweep);
    }
    scanCache(h.llc(), /*is_private=*/false, 0, sweep);

    checkBlockCounts();
    checkCoherenceGlobal(sweep);
    checkDataLoss(sweep);
    checkPolicyStats();
    checkInclusionHoles();
    checkExclusiveDuplicates();
    checkStatMonotonicity();

    if (onAuditPass_)
        onAuditPass_(hier_.transactionCount(), violations_);
}

void
HierarchyAuditor::scanCache(const Cache &cache, bool is_private,
                            CoreId core, Sweep &sweep)
{
    const bool coherence = hier_.params().coherence;
    const CacheInspector insp(cache);
    for (std::uint64_t set = 0; set < cache.numSets(); ++set) {
        for (std::uint32_t way = 0; way < cache.assoc(); ++way) {
            const BlockInfo blk = insp.block(set, way);
            if (!blk.valid) {
                if (blk.dirty || blk.loopBit
                    || blk.coh != CohState::Invalid
                    || blk.fillState != FillState::NotFill
                    || blk.version != 0) {
                    report(makeDiag(
                        AuditCheck::GhostState, &cache, set, way,
                        blk.blockAddr,
                        csprintf("invalid entry retains state "
                                 "(dirty=%d loop=%d coh=%s fill=%d "
                                 "version=%llu)",
                                 blk.dirty, blk.loopBit,
                                 lap::toString(blk.coh),
                                 static_cast<int>(blk.fillState),
                                 static_cast<unsigned long long>(
                                     blk.version))));
                }
                continue;
            }

            if (cache.setIndexOf(blk.blockAddr) != set) {
                report(makeDiag(
                    AuditCheck::WrongSetIndex, &cache, set, way,
                    blk.blockAddr,
                    csprintf("tag maps to set %llu",
                             static_cast<unsigned long long>(
                                 cache.setIndexOf(blk.blockAddr)))));
            }
            for (std::uint32_t prior = 0; prior < way; ++prior) {
                const BlockInfo other = insp.block(set, prior);
                if (other.valid && other.blockAddr == blk.blockAddr) {
                    report(makeDiag(
                        AuditCheck::DuplicateTagInSet, &cache, set, way,
                        blk.blockAddr,
                        csprintf("duplicate of way %u", prior)));
                }
            }

            const std::uint64_t latest =
                hier_.verifier().latest(blk.blockAddr);
            if (blk.version > latest) {
                report(makeDiag(
                    AuditCheck::VersionAhead, &cache, set, way,
                    blk.blockAddr,
                    csprintf("cached v%llu, verifier latest v%llu",
                             static_cast<unsigned long long>(blk.version),
                             static_cast<unsigned long long>(latest))));
            }
            auto &max_version = sweep.cachedVersion[blk.blockAddr];
            max_version = std::max(max_version, blk.version);

            if (is_private) {
                if (blk.dirty)
                    sweep.privateDirty.insert(blk.blockAddr);
                if (coherence && blk.coh == CohState::Invalid) {
                    report(makeDiag(
                        AuditCheck::CoherenceLeak, &cache, set, way,
                        blk.blockAddr,
                        "valid private block without coherence state"));
                } else if (!coherence
                           && blk.coh != CohState::Invalid) {
                    report(makeDiag(
                        AuditCheck::CoherenceLeak, &cache, set, way,
                        blk.blockAddr,
                        csprintf("coherence state %s with snooping "
                                 "disabled",
                                 lap::toString(blk.coh))));
                }
                if (coherence) {
                    auto &states = sweep.privateState[blk.blockAddr];
                    states.resize(hier_.params().numCores,
                                  CohState::Invalid);
                    states[core] = strongerState(states[core], blk.coh);
                }
            } else {
                checkLlcBlock(blk, set, way, sweep);
            }
        }
    }
}

void
HierarchyAuditor::checkLlcBlock(const BlockInfo &blk, std::uint64_t set,
                                std::uint32_t way, const Sweep &sweep)
{
    const Cache &llc = hier_.llc();
    if (blk.coh != CohState::Invalid) {
        report(makeDiag(AuditCheck::CoherenceLeak, &llc, set, way,
                        blk.blockAddr,
                        csprintf("LLC block carries coherence state %s",
                                 lap::toString(blk.coh))));
    }

    // FLEXclusion/Dswitch sets migrate between modes mid-run, so a
    // block's fill lifecycle may predate its set's current mode; the
    // structural fill checks only apply to the static policies.
    if (llcNeverFills() && blk.fillState != FillState::NotFill) {
        report(makeDiag(
            AuditCheck::UnexpectedFill, &llc, set, way, blk.blockAddr,
            csprintf("demand-fill state %d under a no-fill policy",
                     static_cast<int>(blk.fillState))));
    }
    if (llcEverFills() && !blk.dirty
        && blk.fillState == FillState::NotFill) {
        report(makeDiag(
            AuditCheck::CleanBlockNotFilled, &llc, set, way,
            blk.blockAddr,
            "clean LLC block was never demand-filled under a "
            "fill-on-miss policy"));
    }

    if (blk.loopBit && loopClassified_.count(blk.blockAddr) == 0
        && sweep.privateDirty.count(blk.blockAddr) == 0) {
        report(makeDiag(
            AuditCheck::LoopBitUnclassified, &llc, set, way,
            blk.blockAddr,
            "LLC loop-bit without a classifying clean trip or an "
            "upstream dirty copy"));
    }
}

void
HierarchyAuditor::checkBlockCounts()
{
    const std::vector<const Cache *> caches = allCaches();
    lap_assert(caches.size() == occupancyBase_.size(),
               "cache topology changed under the auditor");
    for (std::size_t i = 0; i < caches.size(); ++i) {
        const Cache &cache = *caches[i];
        const CacheStats &s = cache.stats();
        const std::int64_t flux = static_cast<std::int64_t>(s.fills)
            - static_cast<std::int64_t>(s.evictionsClean)
            - static_cast<std::int64_t>(s.evictionsDirty)
            - static_cast<std::int64_t>(s.invalidations);
        const std::int64_t expect = occupancyBase_[i] + flux;
        const std::int64_t actual = static_cast<std::int64_t>(
            CacheInspector(cache).validBlockCount());
        if (actual != expect) {
            report(makeDiag(
                AuditCheck::BlockCountMismatch, &cache, 0, 0, 0,
                csprintf("%lld valid blocks, counters explain %lld "
                         "(fills=%llu evC=%llu evD=%llu inv=%llu)",
                         static_cast<long long>(actual),
                         static_cast<long long>(expect),
                         static_cast<unsigned long long>(s.fills),
                         static_cast<unsigned long long>(
                             s.evictionsClean),
                         static_cast<unsigned long long>(
                             s.evictionsDirty),
                         static_cast<unsigned long long>(
                             s.invalidations))));
        }
    }
}

void
HierarchyAuditor::checkCoherenceGlobal(const Sweep &sweep)
{
    if (!hier_.params().coherence)
        return;
    // Order-independent invariant sweep: every address is checked
    // in isolation and the outcome is pass/fatal, so unordered
    // iteration cannot perturb results.
    // lapsim-lint: allow(det-unordered-iteration)
    for (const auto &[addr, states] : sweep.privateState) {
        std::uint32_t holders = 0;
        std::uint32_t owners = 0; // cores in M or O
        bool exclusive_claim = false;
        for (CohState st : states) {
            if (st == CohState::Invalid)
                continue;
            holders++;
            if (st == CohState::Modified || st == CohState::Owned)
                owners++;
            if (st == CohState::Modified || st == CohState::Exclusive)
                exclusive_claim = true;
        }
        if (exclusive_claim && holders > 1) {
            report(makeDiag(
                AuditCheck::CoherenceExclusivity, nullptr, 0, 0, addr,
                csprintf("E/M copy coexists with %u other holder(s)",
                         holders - 1)));
        }
        if (owners > 1) {
            report(makeDiag(
                AuditCheck::CoherenceExclusivity, nullptr, 0, 0, addr,
                csprintf("%u cores hold the block in M/O", owners)));
        }
    }
}

void
HierarchyAuditor::checkDataLoss(const Sweep &sweep)
{
    hier_.verifier().forEachLatest([&](Addr addr, std::uint64_t latest) {
        std::uint64_t reachable = hier_.verifier().memVersion(addr);
        auto it = sweep.cachedVersion.find(addr);
        if (it != sweep.cachedVersion.end())
            reachable = std::max(reachable, it->second);
        if (reachable < latest) {
            report(makeDiag(
                AuditCheck::DataLoss, nullptr, 0, 0, addr,
                csprintf("latest v%llu unreachable (best copy v%llu)",
                         static_cast<unsigned long long>(latest),
                         static_cast<unsigned long long>(reachable))));
        }
    });
}

void
HierarchyAuditor::checkPolicyStats()
{
    const HierarchyStats &s = hier_.stats();
    auto expect_zero = [&](std::uint64_t value, const char *name) {
        if (value != 0) {
            report(makeDiag(
                AuditCheck::PolicyStatMismatch, nullptr, 0, 0, 0,
                csprintf("%s=%llu but the policy forbids it", name,
                         static_cast<unsigned long long>(value))));
        }
    };

    switch (kind_) {
      case PolicyKind::Inclusive:
        expect_zero(s.llcWritesCleanVictim, "llcWritesCleanVictim");
        expect_zero(s.llcInvalidationsOnHit, "llcInvalidationsOnHit");
        expect_zero(s.llcLoopBlockInsertions, "llcLoopBlockInsertions");
        break;
      case PolicyKind::NonInclusive:
        expect_zero(s.llcWritesCleanVictim, "llcWritesCleanVictim");
        expect_zero(s.llcInvalidationsOnHit, "llcInvalidationsOnHit");
        expect_zero(s.llcLoopBlockInsertions, "llcLoopBlockInsertions");
        expect_zero(s.llcBackInvalidations, "llcBackInvalidations");
        break;
      case PolicyKind::Exclusive:
        expect_zero(s.llcWritesDataFill, "llcWritesDataFill");
        expect_zero(s.llcDemandFills, "llcDemandFills");
        expect_zero(s.llcRedundantFills, "llcRedundantFills");
        expect_zero(s.llcDeadFills, "llcDeadFills");
        expect_zero(s.llcBackInvalidations, "llcBackInvalidations");
        if (s.llcInvalidationsOnHit != s.llcHits) {
            report(makeDiag(
                AuditCheck::PolicyStatMismatch, nullptr, 0, 0, 0,
                csprintf("exclusive LLC: %llu hits but %llu "
                         "invalidations-on-hit",
                         static_cast<unsigned long long>(s.llcHits),
                         static_cast<unsigned long long>(
                             s.llcInvalidationsOnHit))));
        }
        break;
      case PolicyKind::LapLru:
      case PolicyKind::LapLoop:
      case PolicyKind::Lap:
        expect_zero(s.llcWritesDataFill, "llcWritesDataFill");
        expect_zero(s.llcDemandFills, "llcDemandFills");
        expect_zero(s.llcRedundantFills, "llcRedundantFills");
        expect_zero(s.llcDeadFills, "llcDeadFills");
        expect_zero(s.llcBackInvalidations, "llcBackInvalidations");
        expect_zero(s.llcInvalidationsOnHit, "llcInvalidationsOnHit");
        break;
      case PolicyKind::Flexclusion:
      case PolicyKind::Dswitch:
        expect_zero(s.llcBackInvalidations, "llcBackInvalidations");
        break;
    }
}

void
HierarchyAuditor::checkInclusionHoles()
{
    if (kind_ != PolicyKind::Inclusive)
        return;
    // A dead-write filter legitimately bypasses LLC fills, punching
    // holes strict inclusion would otherwise forbid.
    if (hier_.writeFilter() != nullptr)
        return;
    const CacheHierarchy &h = hier_;
    const CacheInspector llc_insp(h.llc());
    for (CoreId c = 0; c < h.params().numCores; ++c) {
        for (const Cache *upper : {&h.l1(c), &h.l2(c)}) {
            CacheInspector(*upper).forEachValid(
                [&](const BlockInfo &blk) {
                    if (!llc_insp.find(blk.blockAddr).valid) {
                        report(makeDiag(
                            AuditCheck::InclusionHole, upper, blk.set,
                            blk.way, blk.blockAddr,
                            "private block has no LLC copy under "
                            "strict inclusion"));
                    }
                });
        }
    }
}

void
HierarchyAuditor::checkExclusiveDuplicates()
{
    // Exclusion is only strict per core: with multiple cores a block
    // can legitimately live in one core's private caches and in the
    // LLC via another core's victim, so the check is single-core.
    if (kind_ != PolicyKind::Exclusive || hier_.params().numCores != 1)
        return;
    const CacheHierarchy &h = hier_;
    const Cache &llc = h.llc();
    const CacheInspector l2_insp(h.l2(0));
    CacheInspector(llc).forEachValid([&](const BlockInfo &blk) {
        const BlockInfo dup = l2_insp.find(blk.blockAddr);
        if (!dup.valid)
            return;
        // Legal transient: the L1 kept the block across its L2
        // eviction into the LLC, was then written, and the dirty L1
        // victim re-entered the L2 — newer dirty data above a stale
        // LLC copy. Anything else is illegal duplication.
        if (dup.dirty && dup.version > blk.version)
            return;
        report(makeDiag(
            AuditCheck::ExclusiveDuplicate, &llc, blk.set, blk.way,
            blk.blockAddr,
            csprintf("L2 duplicate (dirty=%d v%llu vs LLC v%llu) under "
                     "exclusion",
                     dup.dirty,
                     static_cast<unsigned long long>(dup.version),
                     static_cast<unsigned long long>(blk.version))));
    });
}

void
HierarchyAuditor::checkStatMonotonicity()
{
    const bool record_names = statNames_.empty();
    std::vector<std::uint64_t> shot;
    auto put = [&](const std::string &name, std::uint64_t value) {
        if (record_names)
            statNames_.push_back(name);
        shot.push_back(value);
    };
    for (const Cache *cache : allCaches()) {
        const CacheStats &s = cache->stats();
        const std::string &n = cache->params().name;
        put(n + ".readHits", s.readHits);
        put(n + ".readMisses", s.readMisses);
        put(n + ".writeHits", s.writeHits);
        put(n + ".writeMisses", s.writeMisses);
        put(n + ".fills", s.fills);
        put(n + ".evictionsClean", s.evictionsClean);
        put(n + ".evictionsDirty", s.evictionsDirty);
        put(n + ".invalidations", s.invalidations);
        put(n + ".tagAccesses", s.tagAccesses);
        put(n + ".dataReads.sram", s.dataReads[0]);
        put(n + ".dataReads.stt", s.dataReads[1]);
        put(n + ".dataWrites.sram", s.dataWrites[0]);
        put(n + ".dataWrites.stt", s.dataWrites[1]);
    }
    const HierarchyStats &hs = hier_.stats();
    put("hier.demandAccesses", hs.demandAccesses);
    put("hier.demandReads", hs.demandReads);
    put("hier.demandWrites", hs.demandWrites);
    put("hier.l1Hits", hs.l1Hits);
    put("hier.l2Hits", hs.l2Hits);
    put("hier.llcHits", hs.llcHits);
    put("hier.llcMisses", hs.llcMisses);
    put("hier.llcWritesDataFill", hs.llcWritesDataFill);
    put("hier.llcWritesCleanVictim", hs.llcWritesCleanVictim);
    put("hier.llcWritesDirtyVictim", hs.llcWritesDirtyVictim);
    put("hier.llcWritesMigration", hs.llcWritesMigration);
    put("hier.llcCleanVictimsDropped", hs.llcCleanVictimsDropped);
    put("hier.llcLoopBlockInsertions", hs.llcLoopBlockInsertions);
    put("hier.llcDemandFills", hs.llcDemandFills);
    put("hier.llcRedundantFills", hs.llcRedundantFills);
    put("hier.llcDeadFills", hs.llcDeadFills);
    put("hier.llcBackInvalidations", hs.llcBackInvalidations);
    put("hier.llcInvalidationsOnHit", hs.llcInvalidationsOnHit);
    put("hier.llcBypassedWrites", hs.llcBypassedWrites);
    put("hier.snoop.broadcasts", hs.snoop.broadcasts);
    put("hier.snoop.messages", hs.snoop.messages);
    put("hier.snoop.dataTransfers", hs.snoop.dataTransfers);
    put("hier.snoop.invalidations", hs.snoop.invalidations);
    put("hier.snoop.upgrades", hs.snoop.upgrades);
    put("dram.reads", hier_.dram().stats().reads);
    put("dram.writes", hier_.dram().stats().writes);

    if (haveSnapshot_) {
        lap_assert(shot.size() == statSnapshot_.size(),
                   "stat snapshot layout changed under the auditor");
        for (std::size_t i = 0; i < shot.size(); ++i) {
            if (shot[i] < statSnapshot_[i]) {
                report(makeDiag(
                    AuditCheck::StatRegression, nullptr, 0, 0, 0,
                    csprintf("%s fell from %llu to %llu",
                             statNames_[i].c_str(),
                             static_cast<unsigned long long>(
                                 statSnapshot_[i]),
                             static_cast<unsigned long long>(
                                 shot[i]))));
            }
        }
    }
    statSnapshot_ = std::move(shot);
    haveSnapshot_ = true;
}

} // namespace lap
