#include "sim/checkpoint.hh"

#include <array>
#include <cstdio>
#include <cstring>

#include "common/logging.hh"
#include "core/dasca_filter.hh"
#include "cpu/driver.hh"
#include "hierarchy/hierarchy.hh"
#include "sim/config_fields.hh"
#include "stats/epoch.hh"

namespace lap
{

namespace
{

constexpr char kMagic[8] = {'L', 'A', 'P', 'C', 'K', 'P', 'T', '1'};
/** magic + version + config hash + payload size. */
constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 8;
constexpr std::size_t kCrcBytes = 4;

std::uint64_t
fnv1a64(const std::string &text)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char ch : text) {
        h ^= ch;
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint32_t
readU32(const char *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(p[i]))
            << (8 * i);
    return v;
}

std::uint64_t
readU64(const char *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(p[i]))
            << (8 * i);
    return v;
}

void
appendU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
appendU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

/** Slurps a whole file; returns false when it cannot be opened. */
bool
readFile(const std::string &path, std::string &out)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    out.clear();
    char buf[64 * 1024];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, got);
    const bool ok = std::ferror(f) == 0;
    std::fclose(f);
    return ok;
}

/** Why a checkpoint file cannot be used (None = usable). */
enum class CheckpointFault : std::uint8_t
{
    None,
    Unreadable,
    Truncated,
    BadMagic,
    BadVersion,
    BadCrc,
    ConfigMismatch,
};

/**
 * Shared validation behind readCheckpointFile (fatal diagnostics)
 * and checkpointIsValid (boolean). On success @p payload holds the
 * payload bytes; @p detail carries the mismatched version.
 */
CheckpointFault
inspect(const std::string &path, const SimConfig &config,
        std::string &payload, std::uint32_t &detail)
{
    std::string file;
    if (!readFile(path, file))
        return CheckpointFault::Unreadable;
    if (file.size() < kHeaderBytes + kCrcBytes)
        return CheckpointFault::Truncated;
    if (std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0)
        return CheckpointFault::BadMagic;
    const std::uint32_t version = readU32(file.data() + 8);
    if (version != kCheckpointSchemaVersion) {
        detail = version;
        return CheckpointFault::BadVersion;
    }
    const std::uint64_t config_hash = readU64(file.data() + 12);
    const std::uint64_t payload_size = readU64(file.data() + 20);
    if (file.size() != kHeaderBytes + payload_size + kCrcBytes)
        return CheckpointFault::Truncated;
    const std::uint32_t stored_crc =
        readU32(file.data() + kHeaderBytes + payload_size);
    const std::uint32_t actual_crc =
        crc32(file.data() + kHeaderBytes, payload_size);
    if (stored_crc != actual_crc)
        return CheckpointFault::BadCrc;
    // The config check comes after the CRC so corruption is never
    // misreported as a configuration difference.
    if (config_hash != configKeyHash(config))
        return CheckpointFault::ConfigMismatch;
    payload = file.substr(kHeaderBytes, payload_size);
    return CheckpointFault::None;
}

/** The mutable set-dueling monitor of the active policy, if any. */
SetDueling *
mutableDueling(InclusionEngine &policy)
{
    if (auto *p = policy.tryAs<FlexclusionPolicy>())
        return &p->duel();
    if (auto *p = policy.tryAs<DswitchPolicy>())
        return &p->duel();
    if (auto *p = policy.tryAs<LapPolicy>())
        return &p->duel();
    return nullptr;
}

void
saveHierarchy(const CacheHierarchy &hierarchy, ByteWriter &out)
{
    out.u64(hierarchy.transactionCount());
    hierarchy.stats().saveState(out);
    const std::uint32_t cores = hierarchy.params().numCores;
    for (std::uint32_t c = 0; c < cores; ++c)
        hierarchy.l1(c).saveState(out);
    for (std::uint32_t c = 0; c < cores; ++c)
        hierarchy.l2(c).saveState(out);
    hierarchy.llc().saveState(out);
    const_cast<CacheHierarchy &>(hierarchy).dram().saveState(out);
    hierarchy.verifier().saveState(out);
    hierarchy.loopTracker().saveState(out);

    auto &policy = const_cast<CacheHierarchy &>(hierarchy).policy();
    if (SetDueling *duel = mutableDueling(policy)) {
        out.u8(1);
        duel->saveState(out);
    } else {
        out.u8(0);
    }

    auto *filter = dynamic_cast<DascaFilter *>(
        const_cast<CacheHierarchy &>(hierarchy).writeFilter());
    if (filter) {
        out.u8(1);
        filter->predictor().saveState(out);
    } else {
        out.u8(0);
    }
}

void
loadHierarchy(CacheHierarchy &hierarchy, ByteReader &in)
{
    hierarchy.restoreTransactionCount(in.u64());
    hierarchy.stats().loadState(in);
    const std::uint32_t cores = hierarchy.params().numCores;
    for (std::uint32_t c = 0; c < cores; ++c)
        hierarchy.l1(c).loadState(in);
    for (std::uint32_t c = 0; c < cores; ++c)
        hierarchy.l2(c).loadState(in);
    hierarchy.llc().loadState(in);
    hierarchy.dram().loadState(in);
    hierarchy.verifier().loadState(in);
    hierarchy.loopTracker().loadState(in);

    SetDueling *duel = mutableDueling(hierarchy.policy());
    const bool has_duel = in.u8() != 0;
    if (has_duel != (duel != nullptr))
        lap_fatal("checkpoint %s set-dueling state but this run's "
                  "policy %s one",
                  has_duel ? "carries" : "lacks",
                  duel ? "expects" : "does not use");
    if (duel)
        duel->loadState(in);

    auto *filter =
        dynamic_cast<DascaFilter *>(hierarchy.writeFilter());
    const bool has_filter = in.u8() != 0;
    if (has_filter != (filter != nullptr))
        lap_fatal("checkpoint %s dead-write predictor state but this "
                  "run %s the DASCA filter",
                  has_filter ? "carries" : "lacks",
                  filter ? "enables" : "does not enable");
    if (filter)
        filter->predictor().loadState(in);
}

} // namespace

std::uint64_t
configKeyHash(const SimConfig &config)
{
    return fnv1a64(configKey(config));
}

void
writeCheckpointFile(const std::string &path, const SimConfig &config,
                    const ByteWriter &payload)
{
    std::string framed;
    framed.reserve(kHeaderBytes + payload.size() + kCrcBytes);
    framed.append(kMagic, sizeof(kMagic));
    appendU32(framed, kCheckpointSchemaVersion);
    appendU64(framed, configKeyHash(config));
    appendU64(framed, payload.size());
    framed.append(payload.data());
    appendU32(framed,
              crc32(payload.data().data(), payload.size()));

    const std::string tmp = path + ".tmp";
    FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        lap_fatal("cannot open checkpoint '%s' for writing",
                  tmp.c_str());
    const std::size_t wrote =
        std::fwrite(framed.data(), 1, framed.size(), f);
    const bool ok = wrote == framed.size() && std::fclose(f) == 0;
    if (!ok) {
        std::remove(tmp.c_str());
        lap_fatal("failed to write checkpoint '%s'", tmp.c_str());
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        lap_fatal("failed to move checkpoint into place at '%s'",
                  path.c_str());
    }
}

std::string
readCheckpointFile(const std::string &path, const SimConfig &config)
{
    std::string payload;
    std::uint32_t detail = 0;
    switch (inspect(path, config, payload, detail)) {
      case CheckpointFault::None:
        return payload;
      case CheckpointFault::Unreadable:
        lap_fatal("cannot read checkpoint '%s'", path.c_str());
      case CheckpointFault::Truncated:
        lap_fatal("checkpoint '%s' is truncated", path.c_str());
      case CheckpointFault::BadMagic:
        lap_fatal("'%s' is not a lapsim checkpoint", path.c_str());
      case CheckpointFault::BadVersion:
        lap_fatal("checkpoint '%s' has schema version %u; this build "
                  "supports version %u — regenerate the snapshot",
                  path.c_str(), detail, kCheckpointSchemaVersion);
      case CheckpointFault::BadCrc:
        lap_fatal("checkpoint '%s' failed its CRC check (the file is "
                  "corrupted)", path.c_str());
      case CheckpointFault::ConfigMismatch:
        lap_fatal("checkpoint '%s' was taken under a different "
                  "configuration than this run", path.c_str());
    }
    lap_panic("unreachable checkpoint fault");
}

bool
checkpointIsValid(const std::string &path, const SimConfig &config)
{
    std::string payload;
    std::uint32_t detail = 0;
    return inspect(path, config, payload, detail)
        == CheckpointFault::None;
}

void
buildCheckpointPayload(const MultiCoreDriver &driver,
                       const std::vector<TraceSource *> &traces,
                       const CacheHierarchy &hierarchy,
                       const EpochSampler *sampler, ByteWriter &out)
{
    out.u32(hierarchy.params().numCores);
    driver.saveState(out);
    out.u64(traces.size());
    for (const TraceSource *trace : traces)
        trace->saveState(out);
    saveHierarchy(hierarchy, out);
    if (sampler) {
        out.u8(1);
        sampler->saveState(out);
    } else {
        out.u8(0);
    }
}

void
applyCheckpointPayload(MultiCoreDriver &driver,
                       const std::vector<TraceSource *> &traces,
                       CacheHierarchy &hierarchy, EpochSampler *sampler,
                       ByteReader &in)
{
    const std::uint32_t cores = in.u32();
    if (cores != hierarchy.params().numCores)
        lap_fatal("checkpoint was taken on %u cores but this run has "
                  "%u", cores, hierarchy.params().numCores);
    driver.loadState(in);
    const std::uint64_t trace_count = in.u64();
    if (trace_count != traces.size())
        lap_fatal("checkpoint has %llu trace streams but this run "
                  "built %zu",
                  static_cast<unsigned long long>(trace_count),
                  traces.size());
    for (TraceSource *trace : traces)
        trace->loadState(in);
    loadHierarchy(hierarchy, in);
    const bool has_sampler = in.u8() != 0;
    if (has_sampler != (sampler != nullptr))
        lap_fatal("checkpoint %s epoch-sampler state but this run %s "
                  "epoch stats",
                  has_sampler ? "carries" : "lacks",
                  sampler ? "enables" : "does not enable");
    if (sampler)
        sampler->loadState(in);
    in.expectEnd();
}

} // namespace lap
