/**
 * @file
 * HierarchyAuditor: runtime invariant checker for the cache
 * hierarchy.
 *
 * After each transaction (or every N, configurable) the auditor
 * walks the L1/L2/LLC tag arrays and the verifier's shadow store and
 * checks that the hierarchy still satisfies both the
 * policy-independent structural invariants (no duplicate tags in a
 * set, no ghost state on invalid entries, block counts consistent
 * with the event counters, versions never ahead of the verifier,
 * monotone statistics) and the invariants implied by the active
 * inclusion policy (inclusion holes, exclusive duplication, fills
 * under no-fill policies, coherence-state legality). Violations are
 * reported as structured diagnostics through src/common/logging,
 * either aborting on the first one (fail-fast) or counting and
 * continuing.
 *
 * The auditor is a passive HierarchyObserver: it registers itself on
 * construction, never mutates the hierarchy, and maintains only
 * shadow state of its own (the set of loop-classified addresses and
 * per-cache occupancy baselines). See DESIGN.md for the invariant
 * catalog and the per-policy carve-outs.
 */

#ifndef LAPSIM_SIM_AUDITOR_HH
#define LAPSIM_SIM_AUDITOR_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/inspector.hh"
#include "common/types.hh"
#include "core/policy_factory.hh"
#include "hierarchy/hierarchy.hh"
#include "hierarchy/observer.hh"

namespace lap
{

/** What the auditor does when an invariant fails. */
enum class AuditMode : std::uint8_t
{
    FailFast, //!< panic on the first violation (tests, fuzzing).
    Count,    //!< record and keep simulating (diagnosis runs).
};

/** The invariant classes the auditor checks. */
enum class AuditCheck : std::uint8_t
{
    // --- Policy-independent structural invariants --------------------
    DuplicateTagInSet,    //!< Two valid ways of a set share a tag.
    WrongSetIndex,        //!< A block sits in a set its tag denies.
    GhostState,           //!< An invalid entry retains live state.
    BlockCountMismatch,   //!< Occupancy disagrees with counters.
    VersionAhead,         //!< A cached version the verifier never saw.
    DataLoss,             //!< The newest version is nowhere anymore.
    StatRegression,       //!< A monotone counter decreased.
    // --- Inclusion-policy invariants ---------------------------------
    InclusionHole,        //!< Inclusive: private block with no LLC copy.
    ExclusiveDuplicate,   //!< Exclusive: illegal L2/LLC duplication.
    UnexpectedFill,       //!< No-fill policy: a demand-fill landed.
    CleanBlockNotFilled,  //!< Fill policy: clean LLC block never filled.
    PolicyStatMismatch,   //!< A counter the policy forbids moved.
    LoopBitUnclassified,  //!< LLC loop-bit without a classifying trip.
    // --- Coherence invariants ----------------------------------------
    CoherenceLeak,        //!< Coherence state where none may exist.
    CoherenceExclusivity, //!< E/M/O held more widely than allowed.

    NumChecks, // sentinel
};

const char *toString(AuditCheck check);

/** One reported violation. */
struct AuditDiagnostic
{
    AuditCheck check = AuditCheck::NumChecks;
    /** Cache the violation was found in ("" = hierarchy-wide). */
    std::string cache;
    std::uint64_t set = 0;
    std::uint32_t way = 0;
    Addr blockAddr = 0;
    std::string policy;
    /** Transaction count when the audit ran. */
    std::uint64_t transaction = 0;
    std::string detail;

    /** Renders the diagnostic as a single log line. */
    std::string format() const;
};

/** Auditor knobs. */
struct AuditorConfig
{
    AuditMode mode = AuditMode::FailFast;
    /** Audit every N completed transactions; 0 = only on auditNow(). */
    std::uint64_t interval = 1;
    /** Diagnostics retained in Count mode (further ones only count). */
    std::size_t maxStored = 256;
    /** Diagnostics echoed through lap_warn in Count mode. */
    std::size_t maxLogged = 16;
};

/**
 * The invariant checker. Attaches to the hierarchy as one of its
 * observers for the auditor's lifetime; at most one auditor per
 * hierarchy, though it coexists with other observers (statistics
 * probes). The audited hierarchy must outlive it.
 */
class HierarchyAuditor final : public HierarchyObserver
{
  public:
    HierarchyAuditor(CacheHierarchy &hierarchy, PolicyKind kind,
                     AuditorConfig config = {});
    ~HierarchyAuditor() override;

    HierarchyAuditor(const HierarchyAuditor &) = delete;
    HierarchyAuditor &operator=(const HierarchyAuditor &) = delete;

    /** Runs a full audit pass immediately. */
    void auditNow();

    std::uint64_t auditsRun() const { return auditsRun_; }
    std::uint64_t violationCount() const { return violations_; }
    const std::vector<AuditDiagnostic> &diagnostics() const
    {
        return diagnostics_;
    }

    /** Violations of one check recorded so far (Count mode). */
    std::uint64_t
    violationsOf(AuditCheck check) const
    {
        return perCheck_[static_cast<std::size_t>(check)];
    }

    bool hasViolation(AuditCheck check) const
    {
        return violationsOf(check) > 0;
    }

    /** Drops recorded diagnostics and counts (audit count stays). */
    void clearDiagnostics();

    const AuditorConfig &config() const { return config_; }
    PolicyKind policyKind() const { return kind_; }

    /**
     * Invoked after every completed audit pass with the transaction
     * count and total violations so far (trace emission).
     */
    using AuditPassCallback =
        std::function<void(std::uint64_t transaction,
                           std::uint64_t violations)>;
    void setAuditPassCallback(AuditPassCallback cb)
    {
        onAuditPass_ = std::move(cb);
    }

    // --- HierarchyObserver -------------------------------------------
    void onTransactionComplete(std::uint64_t transaction,
                               Cycle now) override;
    void onDemandWrite(Addr block_addr) override;
    void onCleanL2Eviction(Addr block_addr, bool loop_trip) override;
    void onStatsReset() override;

  private:
    /** Scratch assembled during one audit pass. */
    struct Sweep
    {
        /** addr -> newest version found in any cache. */
        std::unordered_map<Addr, std::uint64_t> cachedVersion;
        /** addr -> a private cache holds a dirty copy. */
        std::unordered_set<Addr> privateDirty;
        /** addr -> strongest private coherence state per core. */
        std::unordered_map<Addr, std::vector<CohState>> privateState;
    };

    void report(AuditDiagnostic diag);
    AuditDiagnostic makeDiag(AuditCheck check, const Cache *cache,
                             std::uint64_t set, std::uint32_t way,
                             Addr block_addr, std::string detail) const;

    void scanCache(const Cache &cache, bool is_private, CoreId core,
                   Sweep &sweep);
    void checkLlcBlock(const BlockInfo &blk, std::uint64_t set,
                       std::uint32_t way, const Sweep &sweep);
    void checkCoherenceGlobal(const Sweep &sweep);
    void checkDataLoss(const Sweep &sweep);
    void checkBlockCounts();
    void checkPolicyStats();
    void checkInclusionHoles();
    void checkExclusiveDuplicates();
    void checkStatMonotonicity();

    /** Recomputes occupancy baselines and drops the stat snapshot. */
    void rebaseline();

    std::vector<const Cache *> allCaches() const;
    bool llcEverFills() const;
    bool llcNeverFills() const;

    CacheHierarchy &hier_;
    PolicyKind kind_;
    AuditorConfig config_;

    /** Addresses whose last clean L2 eviction completed a loop trip
     *  (the only event that may set or refresh an LLC loop-bit). */
    std::unordered_set<Addr> loopClassified_;

    /** Per-cache occupancy baseline: valid blocks the cache held
     *  beyond what its (possibly reset) counters explain. */
    std::vector<std::int64_t> occupancyBase_;

    /** Monotone-counter layout (fixed per topology) and last values. */
    std::vector<std::string> statNames_;
    std::vector<std::uint64_t> statSnapshot_;
    bool haveSnapshot_ = false;

    AuditPassCallback onAuditPass_;

    std::uint64_t auditsRun_ = 0;
    std::uint64_t violations_ = 0;
    std::uint64_t perCheck_[static_cast<std::size_t>(
        AuditCheck::NumChecks)] = {};
    std::vector<AuditDiagnostic> diagnostics_;
};

} // namespace lap

#endif // LAPSIM_SIM_AUDITOR_HH
