#include "sim/simulator.hh"

#include <cstdlib>

#include "cache/inspector.hh"
#include "common/logging.hh"
#include "core/dasca_filter.hh"
#include "core/hybrid_placement.hh"
#include "sim/checkpoint.hh"
#include "sim/report.hh"
#include "trace/replay.hh"
#include "trace/resolve.hh"

namespace lap
{

const char *
toString(PlacementKind kind)
{
    switch (kind) {
      case PlacementKind::Default: return "default";
      case PlacementKind::Winv: return "LAP+Winv";
      case PlacementKind::LoopStt: return "LAP+LoopSTT";
      case PlacementKind::NloopSram: return "LAP+NloopSRAM";
      case PlacementKind::Lhybrid: return "Lhybrid";
    }
    return "?";
}

namespace
{

/** One level's geometry against the tag store's packing limits. */
void
validateLevel(const char *level, std::uint64_t size_bytes,
              std::uint32_t assoc)
{
    constexpr std::uint64_t kBlockBytes = 64;
    if (assoc < 1 || assoc > 64)
        lap_fatal("%s associativity %u unsupported: the packed tag "
                  "store tracks each set in a 64-bit occupancy mask, "
                  "so associativity must be between 1 and 64",
                  level, assoc);
    if (size_bytes < assoc * kBlockBytes)
        lap_fatal("%s size %llu B is smaller than one %u-way set of "
                  "64 B blocks",
                  level, static_cast<unsigned long long>(size_bytes),
                  assoc);
    if (size_bytes % (assoc * kBlockBytes) != 0)
        lap_fatal("%s size %llu B does not divide into %u-way sets of "
                  "64 B blocks (size must be a multiple of %llu B)",
                  level, static_cast<unsigned long long>(size_bytes),
                  assoc,
                  static_cast<unsigned long long>(assoc * kBlockBytes));
}

} // namespace

void
validateConfig(const SimConfig &config)
{
    if (config.numCores < 1)
        lap_fatal("cores must be at least 1");
    validateLevel("l1", config.l1Size, config.l1Assoc);
    validateLevel("l2", config.l2Size, config.l2Assoc);
    validateLevel("llc", config.llcSize, config.llcAssoc);
    if (config.llcBanks < 1)
        lap_fatal("llc-banks must be at least 1");
    if (config.hybridLlc && config.llcSramWays > config.llcAssoc)
        lap_fatal("sram-ways (%u) exceeds llc-assoc (%u): the hybrid "
                  "partition cannot be wider than the cache",
                  config.llcSramWays, config.llcAssoc);
    if (config.checkpointEvery != 0 && config.checkpointOut.empty())
        lap_fatal("checkpoint-every requires checkpoint-out (nowhere "
                  "to write the periodic snapshots)");
}

SimConfig
applyEnvScaling(SimConfig config)
{
    double scale = 1.0;
    // Explicit operator opt-in (LAPSIM_FAST / LAPSIM_REFS_SCALE):
    // the env var *is* the configuration, read once at startup.
    // lapsim-lint: allow(det-banned-call)
    if (const char *fast = std::getenv("LAPSIM_FAST");
        fast && fast[0] == '1')
        scale = 0.25;
    // lapsim-lint: allow(det-banned-call)
    if (const char *env = std::getenv("LAPSIM_REFS_SCALE")) {
        const double parsed = std::atof(env);
        if (parsed > 0.0)
            scale = parsed;
    }
    config.warmupRefs = static_cast<std::uint64_t>(
        static_cast<double>(config.warmupRefs) * scale);
    config.measureRefs = std::max<std::uint64_t>(
        1000, static_cast<std::uint64_t>(
                  static_cast<double>(config.measureRefs) * scale));
    return config;
}

HierarchyParams
buildHierarchyParams(const SimConfig &config)
{
    HierarchyParams hp;
    hp.numCores = config.numCores;

    hp.l1.name = "l1";
    hp.l1.sizeBytes = config.l1Size;
    hp.l1.assoc = config.l1Assoc;
    hp.l1.readLatency = config.l1Latency;
    hp.l1.writeLatency = config.l1Latency;
    hp.l1.dataTech = MemTech::SRAM;

    hp.l2.name = "l2";
    hp.l2.sizeBytes = config.l2Size;
    hp.l2.assoc = config.l2Assoc;
    hp.l2.readLatency = config.l2Latency;
    hp.l2.writeLatency = config.l2Latency;
    hp.l2.dataTech = MemTech::SRAM;

    hp.llc.name = "llc";
    hp.llc.sizeBytes = config.llcSize;
    hp.llc.assoc = config.llcAssoc;
    hp.llc.banks = config.llcBanks;
    hp.llc.repl = config.llcRepl;
    if (config.hybridLlc) {
        hp.llc.sramWays = config.llcSramWays;
        hp.llc.dataTech = MemTech::STTRAM;
        hp.llc.readLatency = config.sram.readLatency;
        hp.llc.writeLatency = config.sram.writeLatency;
        hp.llc.sttWriteLatency = config.stt.writeLatency;
    } else if (config.llcTech == MemTech::STTRAM) {
        hp.llc.dataTech = MemTech::STTRAM;
        hp.llc.readLatency = config.stt.readLatency;
        hp.llc.writeLatency = config.stt.writeLatency;
    } else {
        hp.llc.dataTech = MemTech::SRAM;
        hp.llc.readLatency = config.sram.readLatency;
        hp.llc.writeLatency = config.sram.writeLatency;
    }

    hp.dram = config.dram;
    hp.coherence = config.coherence;
    return hp;
}

InclusionEngine
buildPolicy(const SimConfig &config)
{
    const std::uint64_t num_sets = config.llcSize
        / (static_cast<std::uint64_t>(config.llcAssoc) * 64);
    PolicyTuning tuning = config.tuning;
    // Dswitch's write-cost input tracks the configured technology.
    tuning.dswitchWriteEnergyNj = config.hybridLlc
        ? config.stt.writeEnergy
        : (config.llcTech == MemTech::STTRAM ? config.stt.writeEnergy
                                             : config.sram.writeEnergy);
    return makeInclusionPolicy(config.policy, num_sets, tuning);
}

std::unique_ptr<PlacementPolicy>
buildPlacement(const SimConfig &config)
{
    switch (config.placement) {
      case PlacementKind::Default:
        return std::make_unique<DefaultPlacement>();
      case PlacementKind::Winv:
        return LhybridPlacement::winvOnly();
      case PlacementKind::LoopStt:
        return LhybridPlacement::loopSttOnly();
      case PlacementKind::NloopSram:
        return LhybridPlacement::nloopSramOnly();
      case PlacementKind::Lhybrid:
        return LhybridPlacement::lhybrid();
    }
    lap_panic("unknown placement kind");
}

Simulator::Simulator(const SimConfig &config)
    : config_(config)
{
    validateConfig(config_);
    if (config_.placement != PlacementKind::Default)
        lap_assert(config_.hybridLlc,
                   "loop-aware placements require a hybrid LLC");
    std::unique_ptr<WriteFilter> filter;
    if (config_.deadWriteBypass)
        filter = std::make_unique<DascaFilter>();
    hierarchy_ = std::make_unique<CacheHierarchy>(
        buildHierarchyParams(config_), buildPolicy(config_),
        buildPlacement(config_), std::move(filter));
    if (config_.auditInterval != 0) {
        AuditorConfig ac;
        ac.mode = AuditMode::FailFast;
        ac.interval = config_.auditInterval;
        auditor_ = std::make_unique<HierarchyAuditor>(
            *hierarchy_, config_.policy, ac);
    }
    StatsOptions so;
    so.epochInterval = config_.epochStatsInterval;
    so.heat = config_.heatStats;
    so.trace = !config_.traceEventsPath.empty();
    if (so.any()) {
        statsEngine_ = std::make_unique<StatsEngine>(*hierarchy_, so);
        if (auditor_ && statsEngine_->trace()) {
            StatsEngine *engine = statsEngine_.get();
            auditor_->setAuditPassCallback(
                [engine](std::uint64_t txn, std::uint64_t violations) {
                    engine->noteAuditPass(txn, violations);
                });
        }
    }
}

Metrics
Simulator::runTrace()
{
    lap_assert(!config_.tracePath.empty(),
               "runTrace called with no trace configured");
    auto store = openTraceStore(
        config_.tracePath, config_.numCores,
        config_.warmupRefs + config_.measureRefs, config_.seedSalt);
    if (store->coreCount() != config_.numCores)
        lap_fatal("trace %s holds %u per-core streams but this run "
                  "has %u cores", store->describe().c_str(),
                  store->coreCount(), config_.numCores);
    auto traces = buildReplaySources(store);
    std::vector<TraceSource *> raw;
    std::vector<CoreParams> cores;
    for (std::uint32_t c = 0; c < config_.numCores; ++c) {
        raw.push_back(traces[c].get());
        CoreParams cp;
        cp.issueWidth = config_.issueWidth;
        cp.mlp = store->coreMlp(c);
        cp.l1Latency = config_.l1Latency;
        cores.push_back(cp);
    }
    return runTraces(raw, cores);
}

Metrics
Simulator::run(const std::vector<WorkloadSpec> &per_core)
{
    if (!config_.tracePath.empty())
        return runTrace();
    lap_assert(per_core.size() == config_.numCores,
               "expected %u workloads, got %zu", config_.numCores,
               per_core.size());
    auto traces = buildMultiProgrammed(per_core, config_.seedSalt);
    std::vector<TraceSource *> raw;
    std::vector<CoreParams> cores;
    for (std::size_t i = 0; i < traces.size(); ++i) {
        raw.push_back(traces[i].get());
        CoreParams cp;
        cp.issueWidth = config_.issueWidth;
        cp.mlp = per_core[i].mlp;
        cp.l1Latency = config_.l1Latency;
        cores.push_back(cp);
    }
    return runTraces(raw, cores);
}

Metrics
Simulator::runMultiThreaded(const WorkloadSpec &workload)
{
    if (!config_.tracePath.empty())
        return runTrace();
    auto traces =
        buildMultiThreaded(workload, config_.numCores, config_.seedSalt);
    std::vector<TraceSource *> raw;
    std::vector<CoreParams> cores;
    for (auto &t : traces) {
        raw.push_back(t.get());
        CoreParams cp;
        cp.issueWidth = config_.issueWidth;
        cp.mlp = workload.mlp;
        cp.l1Latency = config_.l1Latency;
        cores.push_back(cp);
    }
    return runTraces(raw, cores);
}

void
Simulator::saveCheckpoint(const std::string &path)
{
    lap_assert(driver_ != nullptr,
               "saveCheckpoint called outside an active run");
    ByteWriter payload;
    buildCheckpointPayload(
        *driver_, activeTraces_, *hierarchy_,
        statsEngine_ ? statsEngine_->sampler() : nullptr, payload);
    writeCheckpointFile(path, config_, payload);
}

Metrics
Simulator::runTraces(const std::vector<TraceSource *> &traces,
                     const std::vector<CoreParams> &cores)
{
    MultiCoreDriver driver(*hierarchy_, traces, cores);
    driver_ = &driver;
    activeTraces_ = traces;

    // A test-installed hook wins; otherwise the config knobs install
    // the default hook, which keeps exactly one file current (each
    // write atomically replaces the last — what mid-job campaign
    // resume wants).
    std::uint64_t every = hookEvery_;
    std::function<void(std::uint64_t)> hook = hook_;
    if (!hook && config_.checkpointEvery != 0
        && !config_.checkpointOut.empty()) {
        every = config_.checkpointEvery;
        hook = [this](std::uint64_t) {
            saveCheckpoint(config_.checkpointOut);
        };
    }
    if (every != 0 && hook)
        driver.setCheckpointHook(every, std::move(hook));

    if (!config_.restorePath.empty()) {
        const std::string payload =
            readCheckpointFile(config_.restorePath, config_);
        ByteReader in(payload);
        applyCheckpointPayload(
            driver, traces, *hierarchy_,
            statsEngine_ ? statsEngine_->sampler() : nullptr, in);
    }

    const RunResult result =
        driver.measure(config_.warmupRefs, config_.measureRefs);
    driver_ = nullptr;
    activeTraces_.clear();
    if (statsEngine_) {
        statsEngine_->finish();
        if (statsEngine_->trace() && !config_.traceEventsPath.empty())
            writeFile(config_.traceEventsPath,
                      statsEngine_->trace()->render());
    }
    return extractMetrics(result);
}

Metrics
Simulator::extractMetrics(const RunResult &run_result) const
{
    Metrics m;
    m.throughput = run_result.throughput;
    m.instructions = run_result.instructions;
    m.cycles = run_result.elapsedCycles;
    for (const auto &core : run_result.cores)
        m.coreIpc.push_back(core.ipc);

    CacheHierarchy &h = *hierarchy_;
    const HierarchyStats &hs = h.stats();
    const Cache &llc = h.llc();
    const CacheStats &ls = llc.stats();

    // --- Energy -------------------------------------------------------
    EnergyModel em(config_.clockGhz);
    const Cycle cycles = m.cycles;

    EnergyBreakdown tag =
        em.tagArray(config_.llcSize, ls.tagAccesses, cycles);
    if (config_.hybridLlc) {
        EnergyCounters sram_c = ls.energyCounters(MemTech::SRAM);
        EnergyCounters stt_c = ls.energyCounters(MemTech::STTRAM);
        m.llcSramEnergy = em.dataArray(
            config_.sram, llc.regionBytes(MemTech::SRAM), sram_c, cycles);
        m.llcSttEnergy = em.dataArray(
            config_.stt, llc.regionBytes(MemTech::STTRAM), stt_c, cycles);
        m.llcEnergy = m.llcSramEnergy;
        m.llcEnergy += m.llcSttEnergy;
    } else {
        const TechParams &tech = config_.llcTech == MemTech::STTRAM
            ? config_.stt
            : config_.sram;
        EnergyCounters c = ls.energyCounters(config_.llcTech);
        m.llcEnergy = em.dataArray(tech, config_.llcSize, c, cycles);
    }
    m.llcEnergy += tag;

    const double instr = std::max<double>(1.0,
                                          static_cast<double>(
                                              m.instructions));
    m.epi = m.llcEnergy.totalNj() / instr;
    m.epiStatic = m.llcEnergy.staticNj / instr;
    m.epiDynamic = m.llcEnergy.dynamicNj / instr;

    // --- LLC behaviour ---------------------------------------------
    m.llcHits = hs.llcHits;
    m.llcMisses = hs.llcMisses;
    m.llcMpki = 1000.0 * static_cast<double>(hs.llcMisses) / instr;

    m.llcWritesFill = hs.llcWritesDataFill;
    m.llcWritesCleanVictim = hs.llcWritesCleanVictim;
    m.llcWritesDirtyVictim = hs.llcWritesDirtyVictim;
    m.llcWritesMigration = hs.llcWritesMigration;
    m.llcWritesTotal = hs.llcWritesTotal();

    m.llcDemandFills = hs.llcDemandFills;
    m.llcDeadFills = hs.llcDeadFills;
    m.redundantFillFraction = hs.llcDemandFills == 0
        ? 0.0
        : static_cast<double>(hs.llcRedundantFills)
            / static_cast<double>(hs.llcDemandFills);

    const LoopTracker &lt = h.loopTracker();
    m.loopEvictionFraction = lt.loopFraction();
    m.ctc1Fraction = lt.ctc1Fraction();
    m.ctcMidFraction = lt.ctcMidFraction();
    m.ctcHighFraction = lt.ctcHighFraction();

    m.loopInsertionFraction = hs.llcWritesTotal() == 0
        ? 0.0
        : static_cast<double>(hs.llcLoopBlockInsertions)
            / static_cast<double>(hs.llcWritesTotal());
    m.llcLoopResidency = CacheInspector(llc).loopResidency();

    m.snoopMessages = hs.snoop.totalMessages();
    m.dramReads = h.dram().stats().reads;
    m.dramWrites = h.dram().stats().writes;
    return m;
}

} // namespace lap
