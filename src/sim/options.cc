#include "sim/options.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace lap
{

namespace
{

std::uint64_t
parseUint(const std::string &flag, const std::string &value)
{
    char *end = nullptr;
    const auto parsed = std::strtoull(value.c_str(), &end, 0);
    if (end == value.c_str() || *end != '\0')
        lap_fatal("%s: expected a number, got '%s'", flag.c_str(),
                  value.c_str());
    return parsed;
}

double
parseDouble(const std::string &flag, const std::string &value)
{
    char *end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || parsed <= 0.0)
        lap_fatal("%s: expected a positive number, got '%s'",
                  flag.c_str(), value.c_str());
    return parsed;
}

PlacementKind
parsePlacement(const std::string &value)
{
    if (value == "default")
        return PlacementKind::Default;
    if (value == "winv")
        return PlacementKind::Winv;
    if (value == "loopstt")
        return PlacementKind::LoopStt;
    if (value == "nloopsram")
        return PlacementKind::NloopSram;
    if (value == "lhybrid")
        return PlacementKind::Lhybrid;
    lap_fatal("unknown placement '%s' (default|winv|loopstt|nloopsram|"
              "lhybrid)",
              value.c_str());
}

ReplKind
parseRepl(const std::string &value)
{
    if (value == "lru")
        return ReplKind::Lru;
    if (value == "rrip")
        return ReplKind::Rrip;
    if (value == "random")
        return ReplKind::Random;
    lap_fatal("unknown replacement '%s' (lru|rrip|random)",
              value.c_str());
}

} // namespace

std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> parts;
    std::string current;
    for (char ch : text) {
        if (ch == ',') {
            if (!current.empty())
                parts.push_back(current);
            current.clear();
        } else {
            current += ch;
        }
    }
    if (!current.empty())
        parts.push_back(current);
    return parts;
}

CliOptions
parseCliOptions(const std::vector<std::string> &args)
{
    CliOptions opts;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &flag = args[i];
        auto next = [&]() -> const std::string & {
            if (i + 1 >= args.size())
                lap_fatal("%s requires a value", flag.c_str());
            return args[++i];
        };

        if (flag == "--help" || flag == "-h") {
            opts.showHelp = true;
        } else if (flag == "--policy") {
            opts.config.policy = policyKindFromString(next());
        } else if (flag == "--placement") {
            opts.config.placement = parsePlacement(next());
            if (opts.config.placement != PlacementKind::Default)
                opts.config.hybridLlc = true;
        } else if (flag == "--mix") {
            opts.workload = CliOptions::WorkloadKind::Mix;
            opts.mixName = next();
        } else if (flag == "--benchmarks") {
            opts.workload = CliOptions::WorkloadKind::Benchmarks;
            opts.benchmarks = splitList(next());
            if (opts.benchmarks.empty())
                lap_fatal("--benchmarks: empty list");
        } else if (flag == "--parsec") {
            opts.workload = CliOptions::WorkloadKind::Parsec;
            opts.parsec = next();
            opts.config.coherence = true;
        } else if (flag == "--cores") {
            opts.config.numCores =
                static_cast<std::uint32_t>(parseUint(flag, next()));
        } else if (flag == "--llc-mb") {
            opts.config.llcSize = parseUint(flag, next()) * 1024 * 1024;
        } else if (flag == "--llc-assoc") {
            opts.config.llcAssoc =
                static_cast<std::uint32_t>(parseUint(flag, next()));
        } else if (flag == "--l2-kb") {
            opts.config.l2Size = parseUint(flag, next()) * 1024;
        } else if (flag == "--tech") {
            const std::string value = next();
            if (value == "sram")
                opts.config.llcTech = MemTech::SRAM;
            else if (value == "stt" || value == "stt-ram")
                opts.config.llcTech = MemTech::STTRAM;
            else
                lap_fatal("unknown tech '%s' (sram|stt)", value.c_str());
        } else if (flag == "--hybrid") {
            opts.config.hybridLlc = true;
        } else if (flag == "--sram-ways") {
            opts.config.llcSramWays =
                static_cast<std::uint32_t>(parseUint(flag, next()));
        } else if (flag == "--wr-ratio") {
            opts.config.stt = opts.config.stt.withWriteReadRatio(
                parseDouble(flag, next()));
        } else if (flag == "--repl") {
            opts.config.llcRepl = parseRepl(next());
        } else if (flag == "--dasca") {
            opts.config.deadWriteBypass = true;
        } else if (flag == "--refs") {
            opts.config.measureRefs = parseUint(flag, next());
        } else if (flag == "--warmup") {
            opts.config.warmupRefs = parseUint(flag, next());
        } else if (flag == "--seed") {
            opts.config.seedSalt = parseUint(flag, next());
        } else if (flag == "--audit") {
            opts.config.auditInterval = parseUint(flag, next());
            if (opts.config.auditInterval == 0)
                lap_fatal("--audit: interval must be >= 1");
        } else if (flag == "--stats") {
            opts.dumpStats = true;
        } else if (flag == "--json") {
            opts.jsonPath = next();
        } else {
            lap_fatal("unknown flag '%s' (see --help)", flag.c_str());
        }
    }
    return opts;
}

std::string
cliHelpText()
{
    return
        "lapsim — selective-inclusion LLC simulator (LAP, ISCA'16)\n"
        "\n"
        "workload selection:\n"
        "  --mix <WL1..WH5>        Table III mix (default WH1)\n"
        "  --benchmarks a,b,c,d    SPEC2006 models, one per core\n"
        "                          (cycled if fewer than --cores)\n"
        "  --parsec <name>         multi-threaded PARSEC model\n"
        "\n"
        "system configuration (defaults: paper Table II):\n"
        "  --cores N               number of cores (default 4)\n"
        "  --l2-kb N               private L2 size in KB (512)\n"
        "  --llc-mb N              shared LLC size in MB (8)\n"
        "  --llc-assoc N           LLC associativity (16)\n"
        "  --tech sram|stt         LLC technology (stt)\n"
        "  --hybrid                2MB SRAM + 6MB STT hybrid LLC\n"
        "  --sram-ways N           hybrid SRAM ways (4)\n"
        "  --wr-ratio F            scale STT write/read energy ratio\n"
        "  --repl lru|rrip|random  LLC base replacement (lru)\n"
        "\n"
        "policy selection:\n"
        "  --policy P              inclusive|noni|ex|flex|dswitch|\n"
        "                          lap-lru|lap-loop|lap (default noni)\n"
        "  --placement P           default|winv|loopstt|nloopsram|\n"
        "                          lhybrid (implies --hybrid)\n"
        "  --dasca                 add dead-write bypass filter\n"
        "\n"
        "run control:\n"
        "  --refs N / --warmup N   measured / warmup refs per core\n"
        "  --seed N                workload seed salt\n"
        "  --audit N               fail-fast invariant audit of the\n"
        "                          hierarchy every N transactions\n"
        "  --json PATH             write config+metrics as JSON\n"
        "  --stats                 print the full counter dump\n";
}

} // namespace lap
