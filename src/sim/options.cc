#include "sim/options.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "sim/config_fields.hh"

namespace lap
{

namespace
{

std::uint64_t
parseUint(const std::string &flag, const std::string &value)
{
    char *end = nullptr;
    const auto parsed = std::strtoull(value.c_str(), &end, 0);
    if (end == value.c_str() || *end != '\0')
        lap_fatal("%s: expected a number, got '%s'", flag.c_str(),
                  value.c_str());
    return parsed;
}

/** Applies a config-registry field, fatal when the name is unknown. */
void
setField(SimConfig &config, const std::string &field,
         const std::string &value)
{
    if (!applyConfigField(config, field, value))
        lap_fatal("unknown config field '%s'", field.c_str());
}

} // namespace

std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> parts;
    std::string current;
    for (char ch : text) {
        if (ch == ',') {
            if (!current.empty())
                parts.push_back(current);
            current.clear();
        } else {
            current += ch;
        }
    }
    if (!current.empty())
        parts.push_back(current);
    return parts;
}

CliOptions
parseCliOptions(const std::vector<std::string> &args)
{
    CliOptions opts;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &flag = args[i];
        auto next = [&]() -> const std::string & {
            if (i + 1 >= args.size())
                lap_fatal("%s requires a value", flag.c_str());
            return args[++i];
        };
        // Most value flags map 1:1 onto the shared config-field
        // registry (the same names campaign specs use).
        auto field = [&](const char *name) {
            setField(opts.config, name, next());
        };

        if (flag == "--help" || flag == "-h") {
            opts.showHelp = true;
        } else if (flag == "--policy") {
            field("policy");
        } else if (flag == "--placement") {
            field("placement");
        } else if (flag == "--mix") {
            opts.workload = CliOptions::WorkloadKind::Mix;
            opts.mixNames = splitList(next());
            if (opts.mixNames.empty())
                lap_fatal("--mix: empty list");
            opts.mixName = opts.mixNames.front();
        } else if (flag == "--benchmarks") {
            opts.workload = CliOptions::WorkloadKind::Benchmarks;
            opts.benchmarks = splitList(next());
            if (opts.benchmarks.empty())
                lap_fatal("--benchmarks: empty list");
        } else if (flag == "--parsec") {
            opts.workload = CliOptions::WorkloadKind::Parsec;
            opts.parsec = next();
            opts.config.coherence = true;
        } else if (flag == "--cores") {
            field("cores");
        } else if (flag == "--llc-mb") {
            field("llc-mb");
        } else if (flag == "--llc-assoc") {
            field("llc-assoc");
        } else if (flag == "--l2-kb") {
            field("l2-kb");
        } else if (flag == "--tech") {
            field("tech");
        } else if (flag == "--hybrid") {
            setField(opts.config, "hybrid", "1");
        } else if (flag == "--sram-ways") {
            field("sram-ways");
        } else if (flag == "--wr-ratio") {
            field("wr-ratio");
        } else if (flag == "--repl") {
            field("repl");
        } else if (flag == "--dasca") {
            setField(opts.config, "dasca", "1");
        } else if (flag == "--refs") {
            field("refs");
        } else if (flag == "--warmup") {
            field("warmup");
        } else if (flag == "--seed") {
            field("seed");
        } else if (flag == "--set") {
            // Generic registry access: --set field=value.
            const std::string &spec = next();
            const auto eq = spec.find('=');
            if (eq == std::string::npos)
                lap_fatal("--set: expected field=value, got '%s'",
                          spec.c_str());
            setField(opts.config, spec.substr(0, eq),
                     spec.substr(eq + 1));
        } else if (flag == "--jobs") {
            opts.jobs =
                static_cast<std::uint32_t>(parseUint(flag, next()));
            if (opts.jobs == 0)
                lap_fatal("--jobs: must be >= 1");
        } else if (flag == "--audit") {
            field("audit");
            if (opts.config.auditInterval == 0)
                lap_fatal("--audit: interval must be >= 1");
        } else if (flag == "--epoch-stats") {
            field("epoch-stats");
            if (opts.config.epochStatsInterval == 0)
                lap_fatal("--epoch-stats: interval must be >= 1");
        } else if (flag == "--heat") {
            setField(opts.config, "heat", "1");
        } else if (flag == "--trace-events") {
            field("trace-events");
            if (opts.config.traceEventsPath.empty())
                lap_fatal("--trace-events: path must be non-empty");
        } else if (flag == "--stats") {
            opts.dumpStats = true;
        } else if (flag == "--json") {
            opts.jsonPath = next();
        } else {
            lap_fatal("unknown flag '%s' (see --help)", flag.c_str());
        }
    }
    return opts;
}

std::string
cliHelpText()
{
    return
        "lapsim — selective-inclusion LLC simulator (LAP, ISCA'16)\n"
        "\n"
        "workload selection:\n"
        "  --mix <WL1..WH5>[,..]   Table III mixes (default WH1); a\n"
        "                          comma list runs each mix as one job\n"
        "  --benchmarks a,b,c,d    SPEC2006 models, one per core\n"
        "                          (cycled if fewer than --cores)\n"
        "  --parsec <name>         multi-threaded PARSEC model\n"
        "\n"
        "system configuration (defaults: paper Table II):\n"
        "  --cores N               number of cores (default 4)\n"
        "  --l2-kb N               private L2 size in KB (512)\n"
        "  --llc-mb N              shared LLC size in MB (8)\n"
        "  --llc-assoc N           LLC associativity (16)\n"
        "  --tech sram|stt         LLC technology (stt)\n"
        "  --hybrid                2MB SRAM + 6MB STT hybrid LLC\n"
        "  --sram-ways N           hybrid SRAM ways (4)\n"
        "  --wr-ratio F            scale STT write/read energy ratio\n"
        "  --repl lru|rrip|random  LLC base replacement (lru)\n"
        "  --set field=value       any registry field (see below)\n"
        "\n"
        "policy selection:\n"
        "  --policy P              inclusive|noni|ex|flex|dswitch|\n"
        "                          lap-lru|lap-loop|lap (default noni)\n"
        "  --placement P           default|winv|loopstt|nloopsram|\n"
        "                          lhybrid (implies --hybrid)\n"
        "  --dasca                 add dead-write bypass filter\n"
        "\n"
        "run control:\n"
        "  --refs N / --warmup N   measured / warmup refs per core\n"
        "  --seed N                workload seed salt\n"
        "  --jobs N                worker threads for multi-mix runs\n"
        "  --audit N               fail-fast invariant audit of the\n"
        "                          hierarchy every N transactions\n"
        "  --json PATH             write config+metrics as JSON (JSONL\n"
        "                          when more than one mix is run)\n"
        "  --stats                 print the full counter dump\n"
        "\n"
        "observability (passive; never changes results):\n"
        "  --epoch-stats N         sample per-epoch statistics every N\n"
        "                          transactions (appended to --json)\n"
        "  --trace-events PATH     write Chrome trace_event JSON for\n"
        "                          chrome://tracing / Perfetto\n"
        "  --heat                  print the per-set/bank LLC heat\n"
        "                          histogram\n"
        "\n"
        "config-field registry (--set, campaign specs):\n"
        + configFieldsHelp();
}

} // namespace lap
