#include "sim/options.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "sim/config_fields.hh"

namespace lap
{

namespace
{

std::uint64_t
parseUint(const std::string &flag, const std::string &value)
{
    char *end = nullptr;
    const auto parsed = std::strtoull(value.c_str(), &end, 0);
    if (end == value.c_str() || *end != '\0')
        lap_fatal("%s: expected a number, got '%s'", flag.c_str(),
                  value.c_str());
    return parsed;
}

/** Applies a config-registry field, fatal when the name is unknown. */
void
setField(SimConfig &config, const std::string &field,
         const std::string &value)
{
    if (!applyConfigField(config, field, value))
        lap_fatal("unknown config field '%s' (valid: %s)",
                  field.c_str(), configFieldNamesJoined().c_str());
}

/** Intervals/paths that make no sense "enabled but empty". */
void
checkFlagValue(const std::string &name, const SimConfig &config)
{
    if (name == "audit" && config.auditInterval == 0)
        lap_fatal("--audit: interval must be >= 1");
    if (name == "epoch-stats" && config.epochStatsInterval == 0)
        lap_fatal("--epoch-stats: interval must be >= 1");
    if (name == "trace-events" && config.traceEventsPath.empty())
        lap_fatal("--trace-events: path must be non-empty");
    if (name == "checkpoint-every" && config.checkpointEvery == 0)
        lap_fatal("--checkpoint-every: interval must be >= 1");
    if (name == "checkpoint-out" && config.checkpointOut.empty())
        lap_fatal("--checkpoint-out: path must be non-empty");
    if (name == "restore" && config.restorePath.empty())
        lap_fatal("--restore: path must be non-empty");
    if (name == "trace" && config.tracePath.empty())
        lap_fatal("--trace: expected a LAPTR1 file path or "
                  "stressor:<name>");
}

} // namespace

std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> parts;
    std::string current;
    for (char ch : text) {
        if (ch == ',') {
            if (!current.empty())
                parts.push_back(current);
            current.clear();
        } else {
            current += ch;
        }
    }
    if (!current.empty())
        parts.push_back(current);
    return parts;
}

CliOptions
parseCliOptions(const std::vector<std::string> &args)
{
    CliOptions opts;
    // Every registry field is a "--<field>" flag; the loop below only
    // special-cases the flags that are not config fields (workload
    // selection, output, --set) and the "llc-mb" alias.
    const std::vector<ConfigFieldInfo> fields = configFieldInfos();
    auto fieldInfo =
        [&fields](const std::string &name) -> const ConfigFieldInfo * {
        for (const auto &f : fields) {
            if (name == f.name)
                return &f;
        }
        return nullptr;
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &flag = args[i];
        auto next = [&]() -> const std::string & {
            if (i + 1 >= args.size())
                lap_fatal("%s requires a value", flag.c_str());
            return args[++i];
        };

        if (flag == "--help" || flag == "-h") {
            opts.showHelp = true;
        } else if (flag == "--mix") {
            opts.workload = CliOptions::WorkloadKind::Mix;
            opts.mixNames = splitList(next());
            if (opts.mixNames.empty())
                lap_fatal("--mix: empty list");
            opts.mixName = opts.mixNames.front();
        } else if (flag == "--benchmarks") {
            opts.workload = CliOptions::WorkloadKind::Benchmarks;
            opts.benchmarks = splitList(next());
            if (opts.benchmarks.empty())
                lap_fatal("--benchmarks: empty list");
        } else if (flag == "--parsec") {
            opts.workload = CliOptions::WorkloadKind::Parsec;
            opts.parsec = next();
            opts.config.coherence = true;
        } else if (flag == "--set") {
            // Generic registry access: --set field=value.
            const std::string &spec = next();
            const auto eq = spec.find('=');
            if (eq == std::string::npos)
                lap_fatal("--set: expected field=value, got '%s'",
                          spec.c_str());
            const std::string name = spec.substr(0, eq);
            setField(opts.config, name, spec.substr(eq + 1));
            checkFlagValue(name, opts.config);
        } else if (flag == "--jobs") {
            opts.jobs =
                static_cast<std::uint32_t>(parseUint(flag, next()));
            if (opts.jobs == 0)
                lap_fatal("--jobs: must be >= 1");
        } else if (flag == "--stats") {
            opts.dumpStats = true;
        } else if (flag == "--json") {
            opts.jsonPath = next();
        } else if (flag == "--llc-mb") {
            setField(opts.config, "llc-mb", next());
        } else if (flag.rfind("--", 0) == 0) {
            const std::string name = flag.substr(2);
            const ConfigFieldInfo *info = fieldInfo(name);
            if (info == nullptr)
                lap_fatal("unknown flag '%s' (see --help)",
                          flag.c_str());
            setField(opts.config, name, info->isBool ? "1" : next());
            checkFlagValue(name, opts.config);
        } else {
            lap_fatal("unknown flag '%s' (see --help)", flag.c_str());
        }
    }
    return opts;
}

std::string
cliHelpText()
{
    // The configuration block is generated from the field registry so
    // the flag list can never drift from what the parser accepts.
    std::string config_flags;
    for (const ConfigFieldInfo &f : configFieldInfos()) {
        std::string flag = "--" + f.name;
        if (!f.isBool)
            flag += " V";
        config_flags += csprintf("  %-18s %s\n", flag.c_str(),
                                 f.help.c_str());
    }

    return
        "lapsim — selective-inclusion LLC simulator (LAP, ISCA'16)\n"
        "\n"
        "workload selection:\n"
        "  --mix <WL1..WH5>[,..]   Table III mixes (default WH1); a\n"
        "                          comma list runs each mix as one job\n"
        "  --benchmarks a,b,c,d    SPEC2006 models, one per core\n"
        "                          (cycled if fewer than --cores)\n"
        "  --parsec <name>         multi-threaded PARSEC model\n"
        "  --trace <spec>          replay a LAPTR1 trace file or a\n"
        "                          built-in stressor:<name> (gups,\n"
        "                          stencil, stream_triad,\n"
        "                          pointer_chase, mixed_hot_scan)\n"
        "\n"
        "run control and output:\n"
        "  --set field=value       any configuration field (same names\n"
        "                          as below and in campaign specs)\n"
        "  --llc-mb N              alias for --llc-kb in MB\n"
        "  --jobs N                worker threads for multi-mix runs\n"
        "  --json PATH             write config+metrics as JSON (JSONL\n"
        "                          when more than one mix is run)\n"
        "  --stats                 print the full counter dump\n"
        "\n"
        "configuration flags (one per registry field; boolean flags\n"
        "take no value; defaults follow paper Table II):\n"
        + config_flags;
}

} // namespace lap
