/**
 * @file
 * Checkpoint/restore subsystem: versioned, CRC-guarded binary
 * snapshots of the complete simulator state.
 *
 * A checkpoint captures everything the simulation's future depends
 * on — tag-store columns and masks of every cache, replacement and
 * Rng state, DRAM/bank timing, verifier shadow memory, loop-tracker
 * streaks, set-dueling counters, dead-write predictor tables, core
 * clocks, trace-generator cursors and the epoch sampler's record
 * stream — so a run restored at transaction T finishes with metrics
 * and epoch records bit-identical to the uninterrupted run
 * (tests/test_checkpoint_differential.cc).
 *
 * File format (DESIGN.md section 10):
 *
 *   magic   8 B   "LAPCKPT1"
 *   version u32   kCheckpointSchemaVersion (little-endian)
 *   config  u64   FNV-1a hash of configKey(config)
 *   size    u64   payload byte count
 *   payload size B
 *   crc     u32   CRC-32 (IEEE) of the payload bytes
 *
 * Every validation failure is a distinct lap_fatal diagnostic:
 * truncation, wrong magic, unsupported schema version, CRC mismatch
 * and configuration mismatch are told apart so a user knows whether
 * to regenerate the snapshot or fix the invocation. Writes go to
 * "<path>.tmp" and are renamed into place, so an interrupted save
 * never destroys the previous valid checkpoint.
 */

#ifndef LAPSIM_SIM_CHECKPOINT_HH
#define LAPSIM_SIM_CHECKPOINT_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/crc32.hh"
#include "common/serial.hh"
#include "sim/config.hh"

namespace lap
{

class MultiCoreDriver;
class TraceSource;
class EpochSampler;

/** Bumped whenever the payload layout changes incompatibly. */
constexpr std::uint32_t kCheckpointSchemaVersion = 1;

// crc32() lives in common/crc32.hh, shared with the binary trace
// format so both subsystems checksum identically.

/** FNV-1a hash of the configuration's result-shaping key. */
std::uint64_t configKeyHash(const SimConfig &config);

/** Frames @p payload and atomically writes it to @p path. */
void writeCheckpointFile(const std::string &path,
                         const SimConfig &config,
                         const ByteWriter &payload);

/**
 * Reads and fully validates a checkpoint file, returning the payload
 * bytes. Fatal (with the specific failure) on any malformed input.
 */
std::string readCheckpointFile(const std::string &path,
                               const SimConfig &config);

/**
 * True when @p path holds a well-formed checkpoint taken under this
 * configuration. Never fatal: campaign resume uses it to decide
 * between restoring and falling back to a fresh run.
 */
bool checkpointIsValid(const std::string &path, const SimConfig &config);

/**
 * Serializes the full simulation state into @p out: driver phase and
 * core clocks, trace cursors, the whole hierarchy (caches, DRAM,
 * verifier, loop tracker, policy duel, write filter) and the epoch
 * sampler. @p sampler may be null when epoch stats are off.
 */
void buildCheckpointPayload(const MultiCoreDriver &driver,
                            const std::vector<TraceSource *> &traces,
                            const CacheHierarchy &hierarchy,
                            const EpochSampler *sampler,
                            ByteWriter &out);

/** Mirror of buildCheckpointPayload; fatal on any inconsistency. */
void applyCheckpointPayload(MultiCoreDriver &driver,
                            const std::vector<TraceSource *> &traces,
                            CacheHierarchy &hierarchy,
                            EpochSampler *sampler, ByteReader &in);

} // namespace lap

#endif // LAPSIM_SIM_CHECKPOINT_HH
