/**
 * @file
 * Machine-readable experiment reporting.
 *
 * Serializes SimConfig and Metrics into JSON so experiment results
 * can be archived and plotted without screen-scraping the bench
 * tables. No external JSON dependency: the writer emits a small,
 * well-formed subset.
 */

#ifndef LAPSIM_SIM_REPORT_HH
#define LAPSIM_SIM_REPORT_HH

#include <string>

#include "hierarchy/hierarchy.hh"
#include "sim/config.hh"
#include "sim/metrics.hh"

namespace lap
{

/** Minimal JSON object builder (string/number/bool fields). */
class JsonWriter
{
  public:
    JsonWriter &field(const std::string &key, const std::string &value);
    JsonWriter &field(const std::string &key, const char *value);
    JsonWriter &field(const std::string &key, double value);
    JsonWriter &field(const std::string &key, std::uint64_t value);
    JsonWriter &field(const std::string &key, bool value);
    /** Inserts a nested raw JSON value (object or array). */
    JsonWriter &raw(const std::string &key, const std::string &json);

    /** Finishes and returns the object. */
    std::string str() const;

    /** Escapes a string per JSON rules. */
    static std::string escape(const std::string &text);

  private:
    std::string body_;
};

/** Serializes a configuration to JSON. */
std::string configToJson(const SimConfig &config);

/** Serializes run metrics to JSON. */
std::string metricsToJson(const Metrics &metrics);

/** Serializes a full experiment (config + metrics + label). */
std::string experimentToJson(const std::string &label,
                             const SimConfig &config,
                             const Metrics &metrics);

/** Writes text to a file; fatal on I/O errors. */
void writeFile(const std::string &path, const std::string &text);

/**
 * gem5-style flat statistics dump of every counter in the hierarchy
 * (per-cache hit/miss/fill/eviction/energy events, hierarchy write
 * classes, loop/fill tracking, coherence, DRAM).
 */
std::string dumpStats(CacheHierarchy &hierarchy);

} // namespace lap

#endif // LAPSIM_SIM_REPORT_HH
