/**
 * @file
 * Machine-readable experiment reporting.
 *
 * Serializes SimConfig and Metrics into JSON (via the common
 * JsonWriter) so experiment results can be archived and plotted
 * without screen-scraping the bench tables.
 */

#ifndef LAPSIM_SIM_REPORT_HH
#define LAPSIM_SIM_REPORT_HH

#include <string>

#include "common/json.hh"
#include "hierarchy/hierarchy.hh"
#include "sim/config.hh"
#include "sim/metrics.hh"

namespace lap
{

/** Serializes a configuration to JSON. */
std::string configToJson(const SimConfig &config);

/** Serializes run metrics to JSON. */
std::string metricsToJson(const Metrics &metrics);

/** Serializes a full experiment (config + metrics + label). */
std::string experimentToJson(const std::string &label,
                             const SimConfig &config,
                             const Metrics &metrics);

/** Writes text to a file; fatal on I/O errors. */
void writeFile(const std::string &path, const std::string &text);

/**
 * gem5-style flat statistics dump of every counter in the hierarchy
 * (per-cache hit/miss/fill/eviction/energy events, hierarchy write
 * classes, loop/fill tracking, coherence, DRAM).
 */
std::string dumpStats(CacheHierarchy &hierarchy);

} // namespace lap

#endif // LAPSIM_SIM_REPORT_HH
