/**
 * @file
 * Small bit-manipulation helpers used by cache indexing code.
 */

#ifndef LAPSIM_COMMON_BITUTIL_HH
#define LAPSIM_COMMON_BITUTIL_HH

#include <bit>
#include <cstdint>

namespace lap
{

/** Returns true when x is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Returns floor(log2(x)); x must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t x)
{
    return 63u - static_cast<unsigned>(std::countl_zero(x));
}

/** Returns ceil(a / b) for positive integers. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace lap

#endif // LAPSIM_COMMON_BITUTIL_HH
