/**
 * @file
 * Minimal JSON object building.
 *
 * No external JSON dependency: the writer emits a small, well-formed
 * subset (string/number/bool fields plus nested raw values). Shared
 * by experiment reporting (sim/report), the campaign JSONL sink and
 * the observability layer (src/stats).
 */

#ifndef LAPSIM_COMMON_JSON_HH
#define LAPSIM_COMMON_JSON_HH

#include <cstdint>
#include <string>

namespace lap
{

/** Minimal JSON object builder (string/number/bool fields). */
class JsonWriter
{
  public:
    JsonWriter &field(const std::string &key, const std::string &value);
    JsonWriter &field(const std::string &key, const char *value);
    JsonWriter &field(const std::string &key, double value);
    JsonWriter &field(const std::string &key, std::uint64_t value);
    JsonWriter &field(const std::string &key, bool value);
    /** Inserts a nested raw JSON value (object or array). */
    JsonWriter &raw(const std::string &key, const std::string &json);

    /** Finishes and returns the object. */
    std::string str() const;

    /** Escapes a string per JSON rules. */
    static std::string escape(const std::string &text);

  private:
    std::string body_;
};

} // namespace lap

#endif // LAPSIM_COMMON_JSON_HH
