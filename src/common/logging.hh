/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal simulator invariant was violated (a bug);
 *            aborts so the failure can be debugged.
 * fatal()  — the user asked for something unsupported (bad config);
 *            exits with an error code.
 * warn()   — something is approximated but the simulation continues.
 *
 * All diagnostics are emitted as one atomic write per message, so
 * lines from concurrent campaign workers never interleave. A worker
 * that must survive a fatal() (e.g. one job of a sweep hitting a bad
 * config) installs a ScopedFatalThrow, which turns fatal() on that
 * thread into a catchable FatalError instead of exit(1).
 */

#ifndef LAPSIM_COMMON_LOGGING_HH
#define LAPSIM_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace lap
{

/** Thrown by fatal() while a ScopedFatalThrow is active. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg);
};

/**
 * RAII guard: while alive, lap_fatal() on the constructing thread
 * throws FatalError instead of terminating the process. Nests.
 */
class ScopedFatalThrow
{
  public:
    ScopedFatalThrow();
    ~ScopedFatalThrow();
    ScopedFatalThrow(const ScopedFatalThrow &) = delete;
    ScopedFatalThrow &operator=(const ScopedFatalThrow &) = delete;
};

/** True when a ScopedFatalThrow is active on this thread. */
bool fatalThrowsOnThisThread();

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);

/** Formats printf-style arguments into a std::string. */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace lap

#define lap_panic(...) \
    ::lap::panicImpl(__FILE__, __LINE__, ::lap::csprintf(__VA_ARGS__))

#define lap_fatal(...) \
    ::lap::fatalImpl(__FILE__, __LINE__, ::lap::csprintf(__VA_ARGS__))

#define lap_warn(...) \
    ::lap::warnImpl(__FILE__, __LINE__, ::lap::csprintf(__VA_ARGS__))

/** Checks a simulator invariant; active in all build types. */
#define lap_assert(cond, ...)                                            \
    do {                                                                 \
        if (!(cond)) {                                                   \
            ::lap::panicImpl(__FILE__, __LINE__,                         \
                             std::string("assertion failed: " #cond " ") \
                                 + ::lap::csprintf(__VA_ARGS__));        \
        }                                                                \
    } while (0)

#endif // LAPSIM_COMMON_LOGGING_HH
