/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * The simulator never uses std::mt19937 or rand(): all stochastic
 * behaviour must be reproducible from a single 64-bit seed so that
 * experiments are deterministic across runs and platforms.
 */

#ifndef LAPSIM_COMMON_RNG_HH
#define LAPSIM_COMMON_RNG_HH

#include <cstdint>

namespace lap
{

/**
 * xoshiro256** 1.0 by Blackman and Vigna (public domain), seeded
 * through splitmix64 so that any 64-bit value is a good seed.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        reseed(seed);
    }

    /** Re-initializes the state from a 64-bit seed. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Returns the next 64 uniformly random bits. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Returns a uniform integer in [0, bound); bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless bounded sampling; the tiny
        // modulo bias of the simple multiply-shift is irrelevant for
        // workload synthesis, so we keep the branch-free form.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Returns a uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Returns true with the given probability (clamped to [0,1]). */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return uniform() < p;
    }

    /** Copies the raw generator state out (checkpointing). */
    void
    getState(std::uint64_t out[4]) const
    {
        for (int i = 0; i < 4; ++i)
            out[i] = state_[i];
    }

    /** Overwrites the raw generator state (checkpoint restore). */
    void
    setState(const std::uint64_t in[4])
    {
        for (int i = 0; i < 4; ++i)
            state_[i] = in[i];
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace lap

#endif // LAPSIM_COMMON_RNG_HH
