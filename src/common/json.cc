#include "common/json.hh"

#include <cstdio>

namespace lap
{

JsonWriter &
JsonWriter::field(const std::string &key, const std::string &value)
{
    return raw(key, "\"" + escape(value) + "\"");
}

JsonWriter &
JsonWriter::field(const std::string &key, const char *value)
{
    return field(key, std::string(value));
}

JsonWriter &
JsonWriter::field(const std::string &key, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    return raw(key, buf);
}

JsonWriter &
JsonWriter::field(const std::string &key, std::uint64_t value)
{
    return raw(key, std::to_string(value));
}

JsonWriter &
JsonWriter::field(const std::string &key, bool value)
{
    return raw(key, value ? "true" : "false");
}

JsonWriter &
JsonWriter::raw(const std::string &key, const std::string &json)
{
    if (!body_.empty())
        body_ += ",";
    body_ += "\"" + escape(key) + "\":" + json;
    return *this;
}

std::string
JsonWriter::str() const
{
    return "{" + body_ + "}";
}

std::string
JsonWriter::escape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char ch : text) {
        switch (ch) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

} // namespace lap
