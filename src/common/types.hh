/**
 * @file
 * Fundamental scalar types and enums shared across the simulator.
 */

#ifndef LAPSIM_COMMON_TYPES_HH
#define LAPSIM_COMMON_TYPES_HH

#include <cstdint>

namespace lap
{

/** Byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Identifier of a simulated core. */
using CoreId = std::uint32_t;

/** Energy in nanojoules. */
using NanoJoule = double;

/** Power in milliwatts. */
using MilliWatt = double;

/** Kind of a memory reference issued by a core. */
enum class AccessType : std::uint8_t
{
    Read,
    Write,
};

/** Technology a cache region is built from. */
enum class MemTech : std::uint8_t
{
    SRAM,
    STTRAM,
};

/** Returns a short printable name for an access type. */
inline const char *
toString(AccessType type)
{
    return type == AccessType::Read ? "read" : "write";
}

/** Returns a short printable name for a memory technology. */
inline const char *
toString(MemTech tech)
{
    return tech == MemTech::SRAM ? "SRAM" : "STT-RAM";
}

} // namespace lap

#endif // LAPSIM_COMMON_TYPES_HH
