/**
 * @file
 * Clang thread-safety analysis annotations.
 *
 * Wraps the `-Wthread-safety` attribute family (Clang only; the
 * macros expand to nothing elsewhere) behind LAP_* names, following
 * the convention popularized by Abseil. Annotating shared state with
 * LAP_GUARDED_BY and lock-taking functions with LAP_ACQUIRE /
 * LAP_REQUIRES turns "forgot the lock" from a campaign-only data
 * race into a compile error under any Clang build (the CI lint job
 * builds with -Werror=thread-safety).
 *
 * Use together with lap::Mutex / lap::MutexLock (common/mutex.hh):
 * plain std::mutex and std::lock_guard carry no annotations, so the
 * analysis cannot see their acquire/release pairs.
 *
 * lapsim-lint additionally cross-checks these annotations textually
 * (even under GCC): a class owning a Mutex must either guard its
 * mutable members or carry an explicit allow comment, and every
 * LAP_GUARDED_BY argument must name something that exists.
 */

#ifndef LAPSIM_COMMON_THREAD_ANNOTATIONS_HH
#define LAPSIM_COMMON_THREAD_ANNOTATIONS_HH

#if defined(__clang__) && defined(__has_attribute)
#define LAP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define LAP_THREAD_ANNOTATION(x) // no-op outside Clang
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define LAP_CAPABILITY(x) LAP_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type that acquires in its ctor, releases in dtor. */
#define LAP_SCOPED_CAPABILITY LAP_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only while holding the given lock. */
#define LAP_GUARDED_BY(x) LAP_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose pointee is protected by the given lock. */
#define LAP_PT_GUARDED_BY(x) LAP_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function callable only while holding the given lock(s). */
#define LAP_REQUIRES(...) \
    LAP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function callable only while NOT holding the given lock(s). */
#define LAP_EXCLUDES(...) \
    LAP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function that acquires the given lock(s) and holds them on exit. */
#define LAP_ACQUIRE(...) \
    LAP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function that releases the given lock(s). */
#define LAP_RELEASE(...) \
    LAP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function that returns a reference to the given capability. */
#define LAP_RETURN_CAPABILITY(x) \
    LAP_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: disables the analysis inside one function. */
#define LAP_NO_THREAD_SAFETY_ANALYSIS \
    LAP_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // LAPSIM_COMMON_THREAD_ANNOTATIONS_HH
